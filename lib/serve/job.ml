type bias = Simple | Wilson | Cascode

type opamp_spec = {
  gain : float;
  ugf : float;
  ibias : float;
  cl : float;
  bias : bias;
  zout : float option;
  buffer : bool;
}

type synth_mode = Wide_mode | Ape_mode
type sched = Quick | Full
type mc_level = Mc_estimate | Mc_simulate

type payload =
  | Estimate of opamp_spec
  | Synth of {
      spec : opamp_spec;
      mode : synth_mode;
      seed : int option;
      chains : int;
      schedule : sched;
    }
  | Mc of {
      spec : opamp_spec;
      samples : int;
      level : mc_level;
      sigma_scale : float;
      seed : int option;
    }
  | Sim of { file : string; out : string option }
  | Verify of { levels : string list; slew : bool; calibration : string option }

type t = { id : string; timeout : float option; payload : payload }

type error = {
  span : Reader.span option;
  msg : string;
  id : string option;
}

exception Reject of error

let reject ?id ?span msg = raise (Reject { span; msg; id })

let kind_name job =
  match job.payload with
  | Estimate _ -> "estimate"
  | Synth _ -> "synth"
  | Mc _ -> "mc"
  | Sim _ -> "sim"
  | Verify _ -> "verify"

(* FNV-1a over the id, folded to 30 bits: a job's default RNG seed is a
   pure function of its own name, so its stochastic results cannot
   depend on batch composition, batch order or --jobs. *)
let hash_id id =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    id;
  !h

let seed_of job =
  let explicit =
    match job.payload with
    | Synth { seed; _ } | Mc { seed; _ } -> seed
    | Estimate _ | Sim _ | Verify _ -> None
  in
  match explicit with Some s -> s | None -> hash_id job.id

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

(* The fields of one (job ...) form, with every access tracked so
   unknown (misspelled) keys are rejected with their span. *)
type fields = {
  f_id : string option;
  entries : (string * (Reader.t list * Reader.span)) list;
  mutable seen : string list;
}

let field fields key =
  match List.assoc_opt key fields.entries with
  | None -> None
  | Some v ->
    if not (List.mem key fields.seen) then fields.seen <- key :: fields.seen;
    Some v

let collect_fields ~id_hint items =
  let entries =
    List.map
      (fun item ->
        match item with
        | Reader.List (Reader.Atom (key, _) :: args, span) ->
          (key, (args, span))
        | Reader.List (_, span) ->
          reject ?id:id_hint ~span "field must start with a keyword atom"
        | Reader.Atom (a, span) ->
          reject ?id:id_hint ~span
            (Printf.sprintf
               "bare atom '%s' (flags are written as lists, e.g. (buffer))"
               a))
      items
  in
  let rec dup_check = function
    | [] -> ()
    | (key, (_, span)) :: rest ->
      if List.mem_assoc key rest then
        reject ?id:id_hint ~span ("duplicate field '" ^ key ^ "'");
      dup_check rest
  in
  dup_check entries;
  { f_id = id_hint; entries; seen = [] }

let finish_fields fields =
  List.iter
    (fun (key, (_, span)) ->
      if not (List.mem key fields.seen) then
        reject ?id:fields.f_id ~span ("unknown field '" ^ key ^ "'"))
    fields.entries

let the_atom ?id span = function
  | [ Reader.Atom (a, _) ] -> a
  | _ -> reject ?id ~span "expected exactly one atom"

let number ?id span args =
  let a = the_atom ?id span args in
  match Ape_symbolic.Parser.parse_number a with
  | Some v when Float.is_finite v -> v
  | Some _ -> reject ?id ~span "number must be finite"
  | None -> reject ?id ~span (Printf.sprintf "not a number: '%s'" a)

let positive ?id span args =
  let v = number ?id span args in
  if v <= 0. then reject ?id ~span "number must be > 0";
  v

let integer ?id span args =
  let a = the_atom ?id span args in
  match int_of_string_opt a with
  | Some v -> v
  | None -> reject ?id ~span (Printf.sprintf "not an integer: '%s'" a)

let flag fields key =
  match field fields key with
  | None -> false
  | Some ([], _) -> true
  | Some (_, span) ->
    reject ?id:fields.f_id ~span ("(" ^ key ^ ") takes no arguments")

let num_field ?default fields key =
  match field fields key with
  | Some (args, span) -> positive ?id:fields.f_id span args
  | None -> (
    match default with
    | Some d -> d
    | None -> reject ?id:fields.f_id ("missing required field (" ^ key ^ " _)"))

let opt_num_field fields key =
  match field fields key with
  | Some (args, span) -> Some (positive ?id:fields.f_id span args)
  | None -> None

let int_field ~default fields key =
  match field fields key with
  | Some (args, span) -> integer ?id:fields.f_id span args
  | None -> default

let enum_field ~default fields key choices =
  match field fields key with
  | None -> default
  | Some (args, span) -> (
    let a = the_atom ?id:fields.f_id span args in
    match List.assoc_opt a choices with
    | Some v -> v
    | None ->
      reject ?id:fields.f_id ~span
        (Printf.sprintf "unknown %s '%s' (expected %s)" key a
           (String.concat "|" (List.map fst choices))))

let opamp_of_fields fields =
  {
    gain = num_field fields "gain";
    ugf = num_field fields "ugf";
    ibias = num_field ~default:1e-6 fields "ibias";
    cl = num_field ~default:10e-12 fields "cl";
    bias =
      enum_field ~default:Simple fields "bias"
        [ ("simple", Simple); ("wilson", Wilson); ("cascode", Cascode) ];
    zout = opt_num_field fields "zout";
    buffer = flag fields "buffer";
  }

let seed_field fields =
  match field fields "seed" with
  | Some (args, span) -> Some (integer ?id:fields.f_id span args)
  | None -> None

let valid_levels = [ "device"; "basic"; "opamp"; "module" ]

let parse_payload ~id fields kind kind_span =
  match kind with
  | "estimate" -> Estimate (opamp_of_fields fields)
  | "synth" ->
    let spec = opamp_of_fields fields in
    let mode =
      enum_field ~default:Ape_mode fields "mode"
        [ ("ape", Ape_mode); ("wide", Wide_mode) ]
    in
    let seed = seed_field fields in
    let chains = int_field ~default:1 fields "chains" in
    if chains < 1 then reject ~id "chains must be >= 1";
    let schedule =
      enum_field ~default:Full fields "schedule"
        [ ("quick", Quick); ("default", Full) ]
    in
    Synth { spec; mode; seed; chains; schedule }
  | "mc" ->
    let spec = opamp_of_fields fields in
    let samples = int_field ~default:200 fields "samples" in
    if samples < 1 then reject ~id "samples must be >= 1";
    let level =
      enum_field ~default:Mc_estimate fields "level"
        [ ("estimate", Mc_estimate); ("simulate", Mc_simulate) ]
    in
    let sigma_scale = num_field ~default:1.0 fields "sigma-scale" in
    let seed = seed_field fields in
    Mc { spec; samples; level; sigma_scale; seed }
  | "sim" ->
    let file =
      match field fields "file" with
      | Some (args, span) -> the_atom ~id span args
      | None -> reject ~id "missing required field (file \"...\")"
    in
    let out =
      match field fields "out" with
      | Some (args, span) -> Some (the_atom ~id span args)
      | None -> None
    in
    Sim { file; out }
  | "verify" ->
    let levels =
      match field fields "levels" with
      | None -> []
      | Some (args, span) ->
        List.map
          (fun node ->
            match node with
            | Reader.Atom (a, aspan) ->
              if List.mem a valid_levels then a
              else
                reject ~id ~span:aspan
                  (Printf.sprintf "unknown level '%s' (expected %s)" a
                     (String.concat "|" valid_levels))
            | Reader.List (_, lspan) ->
              reject ~id ~span:lspan "levels are atoms")
          (if args = [] then reject ~id ~span "empty (levels) list"
           else args)
    in
    let slew = not (flag fields "no-slew") in
    let calibration =
      match field fields "calibration" with
      | Some (args, span) -> Some (the_atom ~id span args)
      | None -> None
    in
    Verify { levels; slew; calibration }
  | other ->
    reject ~id ~span:kind_span
      (Printf.sprintf
         "unknown job kind '%s' (estimate, synth, mc, sim, verify)" other)

let parse_form ~index form =
  match form with
  | Reader.Atom (_, span) | Reader.List ([], span) ->
    Error { span = Some span; msg = "expected a (job KIND ...) form"; id = None }
  | Reader.List (Reader.Atom ("job", _) :: rest, span) -> (
    match rest with
    | Reader.Atom (kind, kind_span) :: items -> (
      try
        (* Pull the id out first so every later error can carry it. *)
        let id_hint =
          List.find_map
            (function
              | Reader.List
                  ([ Reader.Atom ("id", _); Reader.Atom (v, _) ], _) ->
                Some v
              | _ -> None)
            items
        in
        let id =
          match id_hint with
          | Some v -> v
          | None -> Printf.sprintf "job%d" index
        in
        let fields = collect_fields ~id_hint:(Some id) items in
        (* Mark (id _) consumed; a malformed id field falls through to
           finish_fields as unknown-shaped content. *)
        (match field fields "id" with
        | Some ([ Reader.Atom _ ], _) | None -> ()
        | Some (_, span) -> reject ~id ~span "(id X) takes one atom");
        let timeout =
          match field fields "timeout" with
          | Some (args, tspan) -> Some (positive ~id tspan args)
          | None -> None
        in
        let payload = parse_payload ~id fields kind kind_span in
        finish_fields fields;
        Ok { id; timeout; payload }
      with Reject e ->
        Error { e with span = (match e.span with None -> Some span | s -> s) })
    | _ ->
      Error
        {
          span = Some span;
          msg = "missing job kind (estimate, synth, mc, sim, verify)";
          id = None;
        })
  | Reader.List (_, span) ->
    Error { span = Some span; msg = "expected a (job KIND ...) form"; id = None }

let parse_batch text =
  match Reader.parse text with
  | exception Reader.Error { pos; msg } ->
    [ Error { span = Some { Reader.s_start = pos; s_end = pos }; msg; id = None } ]
  | forms -> List.mapi (fun index form -> parse_form ~index form) forms

(* ------------------------------------------------------------------ *)
(* Canonical printing.                                                 *)
(* ------------------------------------------------------------------ *)

let bare_safe s =
  String.length s > 0
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '/' | '+'
           ->
           true
         | _ -> false)
       s

let print_atom s =
  if bare_safe s then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let num = Ape_util.Units.to_exact

let print_opamp spec =
  let base =
    [
      Printf.sprintf "(gain %s)" (num spec.gain);
      Printf.sprintf "(ugf %s)" (num spec.ugf);
      Printf.sprintf "(ibias %s)" (num spec.ibias);
      Printf.sprintf "(cl %s)" (num spec.cl);
      Printf.sprintf "(bias %s)"
        (match spec.bias with
        | Simple -> "simple"
        | Wilson -> "wilson"
        | Cascode -> "cascode");
    ]
  in
  base
  @ (match spec.zout with
    | Some z -> [ Printf.sprintf "(zout %s)" (num z) ]
    | None -> [])
  @ if spec.buffer then [ "(buffer)" ] else []

let print (job : t) =
  let common =
    Printf.sprintf "(id %s)" (print_atom job.id)
    ::
    (match job.timeout with
    | Some t -> [ Printf.sprintf "(timeout %s)" (num t) ]
    | None -> [])
  in
  let parts =
    match job.payload with
    | Estimate spec -> print_opamp spec
    | Synth { spec; mode; seed; chains; schedule } ->
      print_opamp spec
      @ [
          Printf.sprintf "(mode %s)"
            (match mode with Ape_mode -> "ape" | Wide_mode -> "wide");
        ]
      @ (match seed with
        | Some s -> [ Printf.sprintf "(seed %d)" s ]
        | None -> [])
      @ [
          Printf.sprintf "(chains %d)" chains;
          Printf.sprintf "(schedule %s)"
            (match schedule with Quick -> "quick" | Full -> "default");
        ]
    | Mc { spec; samples; level; sigma_scale; seed } ->
      print_opamp spec
      @ [
          Printf.sprintf "(samples %d)" samples;
          Printf.sprintf "(level %s)"
            (match level with
            | Mc_estimate -> "estimate"
            | Mc_simulate -> "simulate");
          Printf.sprintf "(sigma-scale %s)" (num sigma_scale);
        ]
      @ (match seed with
        | Some s -> [ Printf.sprintf "(seed %d)" s ]
        | None -> [])
    | Sim { file; out } ->
      Printf.sprintf "(file %s)"
        (if bare_safe file then "\"" ^ file ^ "\"" else print_atom file)
      ::
      (match out with
      | Some o -> [ Printf.sprintf "(out %s)" (print_atom o) ]
      | None -> [])
    | Verify { levels; slew; calibration } ->
      (match levels with
      | [] -> []
      | ls -> [ "(levels " ^ String.concat " " ls ^ ")" ])
      @ (if slew then [] else [ "(no-slew)" ])
      @ (match calibration with
        | Some c -> [ Printf.sprintf "(calibration %s)" (print_atom c) ]
        | None -> [])
  in
  Printf.sprintf "(job %s %s)"
    (kind_name job)
    (String.concat " " (common @ parts))

let error_to_string e =
  let where =
    match e.span with
    | Some span -> Reader.pp_span span ^ ": "
    | None -> ""
  in
  let who = match e.id with Some id -> id ^ ": " | None -> "" in
  where ^ who ^ e.msg
