let has_suffix suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let scan dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun name -> has_suffix ".jobs" name)
  |> List.sort String.compare
  |> List.map (fun name -> Filename.concat dir name)

let mark_done path = Sys.rename path (path ^ ".done")

let watch ?(poll = 0.5) ?max_batches ?(stop = fun () -> false) ~once dir
    ~process =
  let processed = ref 0 in
  let budget_left () =
    (not (stop ()))
    && match max_batches with Some m -> !processed < m | None -> true
  in
  let pass () =
    List.iter
      (fun path ->
        if budget_left () then begin
          Fun.protect
            ~finally:(fun () -> mark_done path)
            (fun () -> process path);
          incr processed
        end)
      (scan dir)
  in
  pass ();
  if not once then
    while budget_left () do
      Unix.sleepf poll;
      pass ()
    done;
  !processed
