(** JSON-lines result records — schema [ape-serve/1].

    Every job produces exactly one line on the result stream, and every
    batch is terminated by one summary line, so a consumer can [tail -f]
    the stream and always knows which batch a record belongs to.

    {b Determinism.}  [~deterministic:true] omits every field whose
    value depends on scheduling rather than on the job spec — wall-clock
    seconds and cache statistics — so that a fixed-seed batch renders
    bit-identically at any [--jobs].  The CI gate diffs exactly this
    rendering. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val float_opt : float option -> json

type status =
  | Done  (** the job ran and its own success criterion held *)
  | Unmet  (** ran to completion but the spec/yield/check failed *)
  | Failed of string  (** the engine raised (infeasible, no convergence) *)
  | Parse_error of string  (** the spec never became a job *)
  | Overloaded  (** shed by the backpressure policy *)
  | Timeout  (** queue deadline expired before a worker started it *)
  | Cancelled  (** dropped by fail-fast or daemon shutdown *)

val status_name : status -> string
(** ["ok" | "unmet" | "failed" | "parse-error" | "overloaded" |
    "timeout" | "cancelled"]. *)

type t = {
  id : string;
  kind : string;  (** job kind, or ["-"] for records without a job *)
  status : status;
  seconds : float;  (** wall-clock of the run; 0 for unrun jobs *)
  payload : (string * json) list;  (** kind-specific results *)
}

val render : deterministic:bool -> t -> string
(** One line, no trailing newline:
    [{"schema":"ape-serve/1","id":...,"kind":...,"status":...,
      "seconds":...,"payload":{...}} ].  [deterministic] drops
    ["seconds"]. *)

type summary = {
  batch : string;  (** batch label: file name, ["-"] for stdin *)
  jobs : int;  (** records emitted, summary excluded *)
  ok : int;
  unmet : int;
  failed : int;  (** [Failed] + [Parse_error] *)
  overloaded : int;
  timed_out : int;
  cancelled : int;
  seconds : float;
  cache_lookups : int;  (** estimate-cache traffic of this batch *)
  cache_hits : int;
}

val summarize : batch:string -> seconds:float -> cache_lookups:int ->
  cache_hits:int -> t list -> summary

val render_summary : deterministic:bool -> summary -> string
(** The batch-terminating line:
    [{"schema":"ape-serve/1","batch":...,"summary":{...}}].
    [deterministic] drops ["seconds"], ["cache_lookups"],
    ["cache_hits"] and ["cache_hit_rate"] (hit counts race across
    concurrent jobs sharing a cache). *)
