(** Spool-directory ingestion for the daemon.

    A producer drops [*.jobs] files into a directory; the daemon picks
    each up exactly once, processes it, and renames it to
    [<name>.jobs.done] so a crash-restarted daemon never reruns a batch
    it already answered.  Files are processed in lexicographic name
    order within a scan, so producers control ordering by naming
    ([0001-foo.jobs], [0002-bar.jobs]). *)

val scan : string -> string list
(** The directory's unprocessed [*.jobs] files (full paths), sorted.
    Raises [Sys_error] when the directory cannot be read. *)

val mark_done : string -> unit
(** Rename [path] to [path ^ ".done"]. *)

val watch :
  ?poll:float ->
  ?max_batches:int ->
  ?stop:(unit -> bool) ->
  once:bool ->
  string ->
  process:(string -> unit) ->
  int
(** Scan-process-rename loop.  [process path] handles one batch file;
    when it returns (normally {e or} by exception) the file is marked
    done — a batch whose processing raised must not be retried forever.
    [once] stops after the first scan pass even if it was empty;
    otherwise the loop sleeps [poll] seconds (default 0.5) between
    scans and runs until [max_batches] files have been processed
    ([max_batches] also bounds a [once] pass) or [stop ()] turns true —
    the daemon's SIGINT/SIGTERM flag, polled between batches so a
    signal never interrupts one mid-flight.  Returns the number of
    batches processed. *)
