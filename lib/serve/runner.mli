(** Executes one parsed {!Job.t} and produces its result payload.

    A runner owns the state shared across a daemon's whole lifetime:
    the process corner and the registry of warm estimate caches.

    {b Cache sharing.}  [Est_cache] keys on the quantized sizing vector
    alone, so a cache is only sound between runs of the {e same}
    synthesis problem — the same spec under a different load cap maps
    the same sizing point to a different cost.  The registry therefore
    keeps one cache per problem {e fingerprint} (the spec-defining
    fields plus the interval mode); two synth jobs share warmth exactly
    when their cost functions are provably identical.  Cached values
    are pure functions of the quantized key (see {!Ape_synth.Est_cache}),
    so sharing cannot perturb results — only speed.

    {b Determinism.}  Every stochastic payload seeds its own RNG from
    {!Job.seed_of} and runs with internal [jobs = 1]; parallelism lives
    one level up in the {!Scheduler}, which runs whole jobs on pool
    workers.  A job's payload is thus a pure function of its spec. *)

type t

val create :
  ?cache_quantum:float ->
  ?cache_capacity:int ->
  Ape_process.Process.t ->
  t
(** [cache_capacity] (default 8192) is per fingerprint, not global. *)

val run : t -> Job.t -> Record.status * (string * Record.json) list
(** Execute the payload.  Engine exceptions ([Infeasible],
    [No_convergence], [Engine_error], netlist parse errors, unreadable
    files) are caught and become [Failed]; a job that runs but misses
    its own criterion (synth spec, MC yield, verify tolerance) is
    [Unmet].  Never raises. *)

val cache_stats : t -> int * int
(** [(lookups, hits)] summed over every registered cache — cumulative
    across batches; callers difference them per batch. *)

val cache_count : t -> int
(** Distinct problem fingerprints seen so far. *)
