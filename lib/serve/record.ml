type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let float_opt = function Some v -> Float v | None -> Null

type status =
  | Done
  | Unmet
  | Failed of string
  | Parse_error of string
  | Overloaded
  | Timeout
  | Cancelled

let status_name = function
  | Done -> "ok"
  | Unmet -> "unmet"
  | Failed _ -> "failed"
  | Parse_error _ -> "parse-error"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

type t = {
  id : string;
  kind : string;
  status : status;
  seconds : float;
  payload : (string * json) list;
}

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats print through [Units.to_exact]: the shortest decimal form
   that round-trips, which is both valid JSON and bit-stable — the
   determinism diff gate compares these characters. *)
let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (Ape_util.Units.to_exact f)
    else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_line fields =
  let buf = Buffer.create 256 in
  emit buf (Obj (("schema", Str "ape-serve/1") :: fields));
  Buffer.contents buf

let render ~deterministic r =
  let error =
    match r.status with
    | Failed msg | Parse_error msg -> [ ("error", Str msg) ]
    | _ -> []
  in
  to_line
    ([ ("id", Str r.id);
       ("kind", Str r.kind);
       ("status", Str (status_name r.status));
     ]
    @ error
    @ (if deterministic then [] else [ ("seconds", Float r.seconds) ])
    @ [ ("payload", Obj r.payload) ])

type summary = {
  batch : string;
  jobs : int;
  ok : int;
  unmet : int;
  failed : int;
  overloaded : int;
  timed_out : int;
  cancelled : int;
  seconds : float;
  cache_lookups : int;
  cache_hits : int;
}

let summarize ~batch ~seconds ~cache_lookups ~cache_hits records =
  let count pred = List.length (List.filter pred records) in
  {
    batch;
    jobs = List.length records;
    ok = count (fun r -> r.status = Done);
    unmet = count (fun r -> r.status = Unmet);
    failed =
      count (fun r ->
          match r.status with Failed _ | Parse_error _ -> true | _ -> false);
    overloaded = count (fun r -> r.status = Overloaded);
    timed_out = count (fun r -> r.status = Timeout);
    cancelled = count (fun r -> r.status = Cancelled);
    seconds;
    cache_lookups;
    cache_hits;
  }

let render_summary ~deterministic s =
  let cache =
    if deterministic then []
    else
      [ ("cache_lookups", Int s.cache_lookups);
        ("cache_hits", Int s.cache_hits);
        ( "cache_hit_rate",
          if s.cache_lookups = 0 then Float 0.
          else
            Float (float_of_int s.cache_hits /. float_of_int s.cache_lookups)
        );
      ]
  in
  to_line
    [ ("batch", Str s.batch);
      ( "summary",
        Obj
          ([ ("jobs", Int s.jobs);
             ("ok", Int s.ok);
             ("unmet", Int s.unmet);
             ("failed", Int s.failed);
             ("overloaded", Int s.overloaded);
             ("timeout", Int s.timed_out);
             ("cancelled", Int s.cancelled);
           ]
          @ (if deterministic then [] else [ ("seconds", Float s.seconds) ])
          @ cache) );
    ]
