module E = Ape_estimator
module S = Ape_synth
module Mc = Ape_mc
module R = Record

type t = {
  proc : Ape_process.Process.t;
  quantum : float option;
  capacity : int;
  lock : Mutex.t;
  caches : (string, S.Est_cache.t) Hashtbl.t;
}

let create ?cache_quantum ?(cache_capacity = 8192) proc =
  {
    proc;
    quantum = cache_quantum;
    capacity = cache_capacity;
    lock = Mutex.create ();
    caches = Hashtbl.create 16;
  }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let cache_for t fingerprint =
  with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.caches fingerprint with
      | Some c -> c
      | None ->
        let c =
          S.Est_cache.create ?quantum:t.quantum ~capacity:t.capacity ()
        in
        Hashtbl.add t.caches fingerprint c;
        c)

let cache_stats t =
  with_lock t.lock (fun () ->
      Hashtbl.fold
        (fun _ c (lookups, hits) ->
          (lookups + S.Est_cache.lookups c, hits + S.Est_cache.hits c))
        t.caches (0, 0))

let cache_count t = with_lock t.lock (fun () -> Hashtbl.length t.caches)

let bias_of = function
  | Job.Simple -> E.Bias.Simple
  | Job.Wilson -> E.Bias.Wilson
  | Job.Cascode -> E.Bias.Cascode

let estimator_spec (s : Job.opamp_spec) =
  E.Opamp.spec ~buffer:s.buffer ?zout:s.zout ~bias_topology:(bias_of s.bias)
    ~cl:s.cl ~av:s.gain ~ugf:s.ugf ~ibias:s.ibias ()

(* The cost function of a synthesis run is fully determined by these
   fields; two jobs agreeing on all of them may share a warm cache. *)
let synth_fingerprint (s : Job.opamp_spec) mode =
  let num = Ape_util.Units.to_exact in
  Printf.sprintf "%s|%s|%s|%s|%s|%s|%b|%s" (num s.gain) (num s.ugf)
    (num s.ibias) (num s.cl)
    (match s.bias with
    | Job.Simple -> "simple"
    | Job.Wilson -> "wilson"
    | Job.Cascode -> "cascode")
    (match s.zout with Some z -> num z | None -> "-")
    s.buffer
    (match mode with Job.Ape_mode -> "ape" | Job.Wide_mode -> "wide")

let run_estimate t (spec : Job.opamp_spec) =
  let d = E.Opamp.design t.proc (estimator_spec spec) in
  let p = d.E.Opamp.perf in
  ( R.Done,
    [ ("topology", R.Str (E.Opamp.describe d));
      ("gain", R.float_opt p.E.Perf.gain);
      ("ugf", R.float_opt p.E.Perf.ugf);
      ("gate_area", R.Float p.E.Perf.gate_area);
      ("power", R.Float p.E.Perf.dc_power);
      ("phase_margin", R.float_opt p.E.Perf.phase_margin);
    ] )

let run_synth t (job : Job.t) (spec : Job.opamp_spec) mode chains schedule =
  let proto =
    {
      S.Opamp_problem.name = job.Job.id;
      gain = spec.gain;
      ugf = spec.ugf;
      area = 1.;
      ibias = spec.ibias;
      curr_src = bias_of spec.bias;
      buffer = spec.buffer;
      zout = spec.zout;
      cl = spec.cl;
    }
  in
  let ape = S.Opamp_problem.ape_design t.proc proto in
  let row =
    { proto with
      S.Opamp_problem.area = 1.3 *. ape.E.Opamp.perf.E.Perf.gate_area
    }
  in
  let fingerprint = synth_fingerprint spec mode in
  let mode =
    match mode with
    | Job.Ape_mode -> S.Opamp_problem.Ape_centered 0.2
    | Job.Wide_mode -> S.Opamp_problem.Wide
  in
  let schedule =
    match schedule with
    | Job.Quick -> S.Anneal.quick_schedule
    | Job.Full -> S.Anneal.default_schedule
  in
  let cache = cache_for t fingerprint in
  let rng = Ape_util.Rng.create (Job.seed_of job) in
  let r =
    S.Driver.run ~schedule ~chains ~jobs:1 ~cache ~rng t.proc ~mode row
  in
  ( (if r.S.Driver.meets_spec then R.Done else R.Unmet),
    [ ("comment", R.Str r.S.Driver.comment);
      ("meets_spec", R.Bool r.S.Driver.meets_spec);
      ("works", R.Bool r.S.Driver.works);
      ("gain", R.float_opt r.S.Driver.gain);
      ("ugf", R.float_opt r.S.Driver.ugf);
      ("area", R.Float r.S.Driver.area);
      ("power", R.Float r.S.Driver.power);
      ("evaluations", R.Int r.S.Driver.stats.S.Anneal.evaluations);
    ] )

let run_mc t job (spec : Job.opamp_spec) samples level sigma_scale =
  let level =
    match level with
    | Job.Mc_estimate -> Mc.Scenario.Estimate
    | Job.Mc_simulate -> Mc.Scenario.Simulate
  in
  let sigmas = Mc.Variation.scale sigma_scale Mc.Variation.default in
  let measure, checks =
    Mc.Scenario.opamp ~sigmas ~level t.proc (estimator_spec spec)
  in
  let report =
    Mc.Run.run ~checks
      { Mc.Run.samples; jobs = 1; seed = Job.seed_of job }
      ~measure
  in
  let metrics =
    List.map
      (fun m ->
        ( m.Mc.Run.m_name,
          R.Obj
            [ ("mean", R.Float (Mc.Stats.mean m.Mc.Run.m_stats));
              ("std", R.Float (Mc.Stats.std m.Mc.Run.m_stats));
            ] ))
      report.Mc.Run.metrics
  in
  ( (if report.Mc.Run.yield >= 1.0 then R.Done else R.Unmet),
    [ ("samples", R.Int samples);
      ("pass", R.Int report.Mc.Run.pass);
      ("failures", R.Int report.Mc.Run.failures);
      ("yield", R.Float report.Mc.Run.yield);
      ("metrics", R.Obj metrics);
    ] )

let run_sim t file out =
  let text = In_channel.with_open_text file In_channel.input_all in
  let netlist = Ape_circuit.Spice_parser.parse ~process:t.proc ~title:file text in
  let op = Ape_spice.Dc.solve netlist in
  let ac =
    match out with
    | None -> []
    | Some node ->
      let prep = Ape_spice.Ac.prepare op in
      let module M = Ape_spice.Measure.Prepared in
      [ ("out", R.Str node);
        ("v_out", R.Float (Ape_spice.Dc.voltage op node));
        ("dc_gain", R.Float (M.dc_gain ~out:node prep));
        ("f_minus_3db", R.float_opt (M.f_minus_3db ~out:node prep));
        ("ugf", R.float_opt (M.unity_gain_frequency ~out:node prep));
        ("phase_margin", R.float_opt (M.phase_margin ~out:node prep));
        (* Adjoint noise rides on the same preparation; a gain of zero
           (no AC excitation reaching [node]) reports null. *)
        ( "in_noise",
          R.float_opt
            (match
               Ape_spice.Noise.input_referred_prepared ~out:node ~freq:1e3 prep
             with
            | v -> Some v
            | exception Division_by_zero -> None) );
      ]
  in
  (R.Done, ("file", R.Str file) :: ac)

let run_verify t levels slew calibration =
  let module C = Ape_check in
  let levels =
    match levels with
    | [] -> C.Tolerance.all_levels
    | names ->
      List.filter_map C.Tolerance.level_of_name names
  in
  (* Card problems (missing file, parse error) surface as this job's
     failure record via the catch-list below — the daemon survives. *)
  let calibration = Option.map Ape_calib.Card.load calibration in
  let outcome = C.Check.run ~slew ?calibration ~levels t.proc in
  let rows =
    List.fold_left
      (fun acc lr -> acc + List.length lr.C.Check.rows)
      0 outcome.C.Check.results
  in
  let failures = List.length (C.Check.failures outcome) in
  ( (if C.Check.ok outcome then R.Done else R.Unmet),
    [ ("rows", R.Int rows); ("failures", R.Int failures) ] )

let run t job =
  try
    match job.Job.payload with
    | Job.Estimate spec -> run_estimate t spec
    | Job.Synth { spec; mode; seed = _; chains; schedule } ->
      run_synth t job spec mode chains schedule
    | Job.Mc { spec; samples; level; sigma_scale; seed = _ } ->
      run_mc t job spec samples level sigma_scale
    | Job.Sim { file; out } -> run_sim t file out
    | Job.Verify { levels; slew; calibration } ->
      run_verify t levels slew calibration
  with
  | E.Opamp.Infeasible msg -> (R.Failed ("infeasible: " ^ msg), [])
  | Ape_spice.Dc.No_convergence msg ->
    (R.Failed ("no convergence: " ^ msg), [])
  | Ape_spice.Engine.Engine_error { analysis; node; detail } ->
    ( R.Failed
        (Printf.sprintf "engine error (%s%s): %s" analysis
           (match node with Some n -> " at " ^ n | None -> "")
           detail),
      [] )
  | Ape_spice.Transient.Step_failed time ->
    (R.Failed (Printf.sprintf "transient step failed at t=%g s" time), [])
  | Ape_util.Matrix.Singular -> (R.Failed "singular system", [])
  | Ape_circuit.Spice_parser.Parse_error d ->
    ( R.Failed
        ("netlist parse error: " ^ Ape_circuit.Spice_parser.render_short d),
      [] )
  | Ape_calib.Card.Parse_error { pos; msg } ->
    (R.Failed (Ape_calib.Card.describe_error ~pos ~msg), [])
  | Sys_error msg -> (R.Failed msg, [])
