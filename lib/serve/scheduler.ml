module Pool = Ape_util.Pool

type policy = Block | Shed

type config = {
  jobs : int;
  queue : int;
  policy : policy;
  fail_fast : bool;
  default_timeout : float option;
}

let default =
  { jobs = 1; queue = 64; policy = Block; fail_fast = false;
    default_timeout = None }

(* Raised inside the worker thunk when the queue deadline has already
   passed as the worker picks the job up. *)
exception Timed_out

type in_flight = {
  if_index : int;
  if_job : Job.t;
  if_task : (Record.status * (string * Record.json) list * float) Pool.task;
}

let run_batch ?pool config runner ~batch ~emit inputs =
  if config.queue < 1 then invalid_arg "Scheduler.run_batch: queue < 1";
  if config.jobs < 0 then invalid_arg "Scheduler.run_batch: jobs < 0";
  let t_batch = Unix.gettimeofday () in
  let lookups0, hits0 = Runner.cache_stats runner in
  let owned, pool =
    match pool with
    | Some p -> (None, p)
    | None ->
      (* jobs = 1 still gets one worker domain so a timeout can actually
         expire while the main domain is enqueueing; workers = 0 would
         run thunks inline at submit time. *)
      let p = Pool.create ~workers:(max 1 config.jobs) in
      (Some p, p)
  in
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  (* Records buffer: emission is strictly in input order. *)
  let records : Record.t option array = Array.make n None in
  let next_emit = ref 0 in
  let emitted = ref [] in
  let flush () =
    while
      !next_emit < n
      &&
      match records.(!next_emit) with
      | Some r ->
        emit r;
        emitted := r :: !emitted;
        incr next_emit;
        true
      | None -> false
    do
      ()
    done
  in
  let put index r =
    records.(index) <- Some r;
    flush ()
  in
  let window : in_flight Queue.t = Queue.create () in
  let failed = ref false in
  let record_of_job (job : Job.t) status payload seconds =
    { Record.id = job.Job.id;
      kind = Job.kind_name job;
      status;
      seconds;
      payload;
    }
  in
  let collect_oldest () =
    let inf = Queue.pop window in
    let status, payload, seconds =
      match Pool.await inf.if_task with
      | result -> result
      | exception Timed_out -> (Record.Timeout, [], 0.)
      | exception Pool.Cancelled -> (Record.Cancelled, [], 0.)
      | exception e -> (Record.Failed (Printexc.to_string e), [], 0.)
    in
    (match status with
    | Record.Failed _ | Record.Parse_error _ | Record.Timeout ->
      failed := true
    | _ -> ());
    put inf.if_index (record_of_job inf.if_job status payload seconds)
  in
  let submit index job =
    let deadline =
      match (job.Job.timeout, config.default_timeout) with
      | Some t, _ | None, Some t -> Some (Unix.gettimeofday () +. t)
      | None, None -> None
    in
    let task =
      Pool.submit pool (fun () ->
          (match deadline with
          | Some d when Unix.gettimeofday () >= d -> raise Timed_out
          | _ -> ());
          let t0 = Unix.gettimeofday () in
          let status, payload = Runner.run runner job in
          (status, payload, Unix.gettimeofday () -. t0))
    in
    Queue.push { if_index = index; if_job = job; if_task = task } window
  in
  Array.iteri
    (fun index input ->
      match input with
      | Error (e : Job.error) ->
        let id = match e.Job.id with Some id -> id | None -> "-" in
        (match config.fail_fast with true -> failed := true | false -> ());
        put index
          { Record.id;
            kind = "-";
            status = Record.Parse_error (Job.error_to_string e);
            seconds = 0.;
            payload = [];
          }
      | Ok job ->
        if config.fail_fast && !failed then
          put index (record_of_job job Record.Cancelled [] 0.)
        else begin
          (* Backpressure: the window never exceeds [queue]. *)
          if Queue.length window >= config.queue then begin
            match config.policy with
            | Block ->
              while Queue.length window >= config.queue do
                collect_oldest ()
              done
            | Shed -> ()
          end;
          if Queue.length window >= config.queue then
            (* Shed: refused rather than queued. *)
            put index (record_of_job job Record.Overloaded [] 0.)
          else if config.fail_fast && !failed then
            (* A blocking collect just surfaced a failure. *)
            put index (record_of_job job Record.Cancelled [] 0.)
          else submit index job
        end)
    inputs;
  while not (Queue.is_empty window) do
    collect_oldest ()
  done;
  flush ();
  (match owned with Some p -> Pool.shutdown p | None -> ());
  let lookups1, hits1 = Runner.cache_stats runner in
  Record.summarize ~batch
    ~seconds:(Unix.gettimeofday () -. t_batch)
    ~cache_lookups:(lookups1 - lookups0) ~cache_hits:(hits1 - hits0)
    (List.rev !emitted)
