(** Declarative job specifications for the batch service.

    A job file is a sequence of S-expression forms, one job each (in
    the spirit of TMLE-CLI's estimand configuration files — a plain
    text declaration of work, versioned alongside the design):

    {v
    ; estimate an opamp, synthesise one, yield-check another
    (job estimate (id e0) (gain 200) (ugf 2meg))
    (job synth    (id s0) (gain 200) (ugf 2meg) (seed 7) (schedule quick))
    (job mc       (id m0) (gain 200) (ugf 2meg) (samples 200))
    (job sim      (id x0) (file "examples/jobs/rc.sp") (out out))
    (job verify   (id v0) (levels device basic) (no-slew))
    v}

    Numbers take SPICE suffixes ([2meg], [10u], [4.7k]).  Parsing is
    per-form: a malformed job yields an {!error} carrying the precise
    {!Reader.span} while the rest of the batch parses normally, so one
    bad line can never take down a batch, let alone the daemon.

    {!print} renders the canonical one-line form; [print → parse →
    print] is a fixpoint (floats print via [Units.to_exact], the PR-2
    exact round-trip representation), which the QCheck suite holds the
    parser to. *)

type bias = Simple | Wilson | Cascode

type opamp_spec = {
  gain : float;  (** required DC gain *)
  ugf : float;  (** required unity-gain frequency, Hz *)
  ibias : float;  (** bias reference current, A (default 1u) *)
  cl : float;  (** load capacitance, F (default 10p) *)
  bias : bias;  (** tail-source topology (default simple) *)
  zout : float option;  (** output-impedance requirement, Ω *)
  buffer : bool;  (** include an output buffer *)
}

type synth_mode = Wide_mode | Ape_mode
(** [Ape_mode] = APE-centred ±20 % intervals (the default);
    [Wide_mode] = standalone wide intervals. *)

type sched = Quick | Full
(** Annealing budget: {!Ape_synth.Anneal.quick_schedule} or the default
    schedule. *)

type mc_level = Mc_estimate | Mc_simulate

type payload =
  | Estimate of opamp_spec
  | Synth of {
      spec : opamp_spec;
      mode : synth_mode;
      seed : int option;  (** explicit RNG seed; default keyed on id *)
      chains : int;  (** tempered replicas (default 1) *)
      schedule : sched;  (** default [Full] *)
    }
  | Mc of {
      spec : opamp_spec;
      samples : int;  (** default 200 *)
      level : mc_level;  (** default [Mc_estimate] *)
      sigma_scale : float;  (** default 1.0 *)
      seed : int option;
    }
  | Sim of { file : string; out : string option }
  | Verify of {
      levels : string list;  (** validated level names; [] = all *)
      slew : bool;  (** default true; [(no-slew)] clears it *)
      calibration : string option;
          (** calibration-card path; loaded at run time, so a missing
              or malformed card fails this job, not the daemon *)
    }

type t = {
  id : string;  (** unique-ish label; defaults to ["job<index>"] *)
  timeout : float option;  (** queue-deadline, seconds *)
  payload : payload;
}

type error = {
  span : Reader.span option;  (** location of the offending form/field *)
  msg : string;
  id : string option;  (** the job's id when the form got that far *)
}

val parse_batch : string -> (t, error) result list
(** Parse a whole job file.  Never raises: a structurally broken file
    (unbalanced parenthesis, unterminated string) yields a single
    [Error]; per-form problems (unknown kind, missing or duplicate
    field, bad number) yield one [Error] in that form's position with
    the rest of the batch intact. *)

val print : t -> string
(** Canonical single-line form.  [parse_batch (print j)] yields
    [[Ok j']] with [print j' = print j]. *)

val kind_name : t -> string
(** ["estimate" | "synth" | "mc" | "sim" | "verify"]. *)

val seed_of : t -> int
(** The job's RNG seed: the explicit [(seed N)] when given, otherwise a
    stable FNV-1a hash of the id — so a job's stochastic results depend
    only on its own spec, never on its position in a batch or on batch
    composition. *)

val error_to_string : error -> string
