(* The positioned reader moved to [Ape_util.Sexpr] so that other
   subsystems (calibration cards) can use it without depending on the
   serve stack.  Re-export it here: existing [Ape_serve.Reader.*]
   addresses — including the [Error] exception — keep working. *)
include Ape_util.Sexpr
