(** Positioned S-expression reader for job files.

    The implementation lives in {!Ape_util.Sexpr} (shared with
    calibration-card parsing); this module re-exports it so the job
    parser and its callers keep their historical addresses.  Note that
    [Reader.Error] {e is} [Ape_util.Sexpr.Error] — catching either
    catches both. *)

include module type of Ape_util.Sexpr
