(** Multiplexes a batch of jobs onto the persistent domain {!Pool} with
    a bounded in-flight window, ordered emission, backpressure and
    per-job deadlines.

    {b Window.}  At most [queue] jobs are in flight at once, whatever
    the worker count.  When the window is full the [policy] decides:
    [Block] collects the oldest job (waiting for it) before admitting
    the next; [Shed] refuses further admission for the rest of the
    batch — those jobs get a typed [Overloaded] record immediately and
    never run.  Because a batch arrives as a unit, shed semantics are a
    deterministic per-batch admission cap: the first [queue] jobs run,
    the rest are shed, at any [--jobs].

    {b Ordered emission.}  Records are handed to [emit] in exact input
    order — job [i]'s record never precedes job [i-1]'s — buffering
    out-of-order completions internally.  Combined with per-job RNG
    streams ({!Job.seed_of}) this makes the record stream (under the
    deterministic rendering) bit-identical for every worker count.

    {b Fail-fast.}  With [fail_fast], once a [Failed], [Parse_error] or
    [Timeout] record is {e collected}, no further job is submitted;
    the not-yet-submitted remainder is emitted as [Cancelled].  Jobs
    already in flight run to completion.  Collection only happens at
    the window-full and end-of-batch join points, so at most [queue]
    jobs admitted after the failing one still run — deterministic at
    window granularity.

    {b Deadlines.}  A job's [timeout] (or [default_timeout]) is a queue
    deadline: if a worker picks the job up later than [timeout] seconds
    after submission, it is not run and records [Timeout].  A job that
    has already started is never interrupted (the estimation kernels
    are pure OCaml with no safe preemption point). *)

type policy = Block | Shed

type config = {
  jobs : int;  (** worker domains when the scheduler owns the pool *)
  queue : int;  (** in-flight window, >= 1 *)
  policy : policy;
  fail_fast : bool;
  default_timeout : float option;  (** seconds; per-job timeout wins *)
}

val default : config
(** [jobs = 1; queue = 64; policy = Block; fail_fast = false;
    default_timeout = None]. *)

val run_batch :
  ?pool:Ape_util.Pool.t ->
  config ->
  Runner.t ->
  batch:string ->
  emit:(Record.t -> unit) ->
  (Job.t, Job.error) result list ->
  Record.summary
(** Run one parsed batch.  Parse errors occupy their input position as
    [Parse_error] records.  With [?pool] the caller's pool is used (and
    left open — the daemon owns it); otherwise a pool of [config.jobs]
    workers is created and shut down around the batch.  The summary
    counts the emitted records; its cache statistics are the runner's
    cache traffic differenced across the batch.  Raises
    [Invalid_argument] when [config.queue < 1] or [config.jobs < 0]. *)
