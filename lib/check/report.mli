(** Rendering for verification results: aligned ASCII for humans,
    TSV for machines, plus the per-attribute error summary quoted in
    EXPERIMENTS.md. *)

val ascii : level:Tolerance.level -> Diff.row list -> string

val tsv : Diff.row list -> string
(** Columns: case, attr, est, sim, rel_err, gate, status — floats in
    exact round-trip notation. *)

val summary : Diff.row list -> string
(** Per-attribute row count, mean and max relative error. *)

val attr_stats : Diff.row list -> (string * int * float * float) list
(** [(attr, rows, mean, max)] relative-error statistics. *)

val raw_attr_stats : Diff.row list -> (string * int * float * float) list
(** Same statistics over the raw (pre-calibration) estimates. *)
