(** The differential-verification case catalog: one entry point per
    level of the APE hierarchy, each sizing the level's reference
    designs with the estimator, simulating them with {!Ape_spice}, and
    returning per-attribute {!Diff.row}s under the level's
    {!Tolerance} set.

    The level-2/3/4 catalogs reproduce the circuits of the paper's
    Tables 2, 3 and 5 (same specs as [bench/main.ml]); level 1 biases
    individually sized transistors in a one-device testbench and
    compares the closed-form gm/gds/I_DS against the simulation
    model. *)

val device_rows : Ape_process.Process.t -> Diff.row list

val basic_rows : Ape_process.Process.t -> Diff.row list

val opamp_rows : ?slew:bool -> Ape_process.Process.t -> Diff.row list
(** [slew] (default true) also runs the unity-feedback transient step;
    with [~slew:false] the slew gate is dropped entirely. *)

val module_rows : Ape_process.Process.t -> Diff.row list

val rows_for :
  ?slew:bool -> Ape_process.Process.t -> Tolerance.level -> Diff.row list
