(** The differential-verification case catalog: one entry point per
    level of the APE hierarchy, each sizing the level's reference
    designs with the estimator, simulating them with {!Ape_spice}, and
    returning per-attribute {!Diff.row}s under the level's
    {!Tolerance} set.

    The level-2/3/4 catalogs reproduce the circuits of the paper's
    Tables 2, 3 and 5 (same specs as [bench/main.ml]); level 1 biases
    individually sized transistors in a one-device testbench and
    compares the closed-form gm/gds/I_DS against the simulation
    model.

    A [calibration] card re-gates the rows through its corrections
    ({!Diff.calibrate}): opamp cases look up their own operating
    region (computed from the spec that produced them), basic/module
    cases use the region-free entries, and level-1 rows are never
    calibrated (the closed forms are the model itself). *)

val opamp_specs : unit -> (string * Ape_estimator.Opamp.spec) list
(** Table 3's four opamps, by name. *)

val device_rows :
  ?calibration:Ape_calib.Card.t -> Ape_process.Process.t -> Diff.row list

val basic_rows :
  ?calibration:Ape_calib.Card.t -> Ape_process.Process.t -> Diff.row list

val opamp_rows :
  ?slew:bool ->
  ?calibration:Ape_calib.Card.t ->
  Ape_process.Process.t ->
  Diff.row list
(** [slew] (default true) also runs the unity-feedback transient step;
    with [~slew:false] the slew gate is dropped entirely. *)

val module_rows :
  ?calibration:Ape_calib.Card.t -> Ape_process.Process.t -> Diff.row list

val rows_for :
  ?slew:bool ->
  ?calibration:Ape_calib.Card.t ->
  Ape_process.Process.t ->
  Tolerance.level ->
  Diff.row list
