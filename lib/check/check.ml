type level_result = {
  level : Tolerance.level;
  rows : Diff.row list;
  drifts : Golden.drift list;
  promoted : bool;
}

type outcome = { results : level_result list }

let failures t =
  List.concat_map (fun r -> Diff.failures r.rows) t.results

let drifts t = List.concat_map (fun r -> r.drifts) t.results

let ok t = failures t = [] && drifts t = []

let c_rows = Ape_obs.counter "check.rows"

let run_level ?slew ?calibration ?golden_dir ~update process level =
  Ape_obs.span (Tolerance.level_name level) @@ fun () ->
  let rows = Cases.rows_for ?slew ?calibration process level in
  Ape_obs.add c_rows (List.length rows);
  match golden_dir with
  | None -> { level; rows; drifts = []; promoted = false }
  | Some dir ->
    if update then begin
      Golden.save ~dir level rows;
      { level; rows; drifts = []; promoted = true }
    end
    else (
      match Golden.load ~dir level with
      | None ->
        {
          level;
          rows;
          drifts =
            [
              {
                Golden.case = "*";
                attr = "*";
                what =
                  Printf.sprintf
                    "no golden table %s — run with --update to create it"
                    (Golden.path ~dir level);
              };
            ];
          promoted = false;
        }
      | Some golden ->
        { level; rows; drifts = Golden.compare_rows ~golden rows; promoted = false })

let run ?slew ?calibration ?golden_dir ?(update = false)
    ?(levels = Tolerance.all_levels) process =
  let update = update || Golden.update_requested () in
  (* Verify wall-time per hierarchy level: spans nest as verify/<level>. *)
  Ape_obs.span "verify" @@ fun () ->
  {
    results =
      List.map (run_level ?slew ?calibration ?golden_dir ~update process) levels;
  }

(* Per-(level, attr) max relative error, raw and calibrated, over every
   row that has both sides.  For uncalibrated runs the two columns are
   equal — the frozen snapshot in test/golden then shows exactly what a
   card buys. *)
let error_table t =
  List.concat_map
    (fun r ->
      let level = Tolerance.level_name r.level in
      let tbl = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun (row : Diff.row) ->
          match (Diff.raw_rel_err row, row.Diff.rel_err) with
          | Some raw, Some cal ->
            let attr = row.Diff.attr in
            (match Hashtbl.find_opt tbl attr with
            | Some (r0, c0) ->
              Hashtbl.replace tbl attr (Float.max r0 raw, Float.max c0 cal)
            | None ->
              Hashtbl.replace tbl attr (raw, cal);
              order := attr :: !order)
          | _ -> ())
        r.rows;
      List.rev_map
        (fun attr ->
          let raw_max, cal_max = Hashtbl.find tbl attr in
          { Golden.e_level = level; e_attr = attr; raw_max; cal_max })
        !order)
    t.results

let render ?(tsv = false) t =
  let b = Buffer.create 4096 in
  List.iter
    (fun r ->
      if tsv then Buffer.add_string b (Report.tsv r.rows)
      else begin
        Buffer.add_string b (Report.ascii ~level:r.level r.rows);
        Buffer.add_char b '\n'
      end;
      if r.promoted then
        Buffer.add_string b
          (Printf.sprintf "golden table for level %s updated\n"
             (Tolerance.level_name r.level));
      List.iter
        (fun (d : Golden.drift) ->
          Buffer.add_string b
            (Printf.sprintf "GOLDEN DRIFT [%s] %s/%s: %s\n"
               (Tolerance.level_name r.level)
               d.Golden.case d.Golden.attr d.Golden.what))
        r.drifts)
    t.results;
  if not tsv then begin
    let all_rows = List.concat_map (fun r -> r.rows) t.results in
    Buffer.add_string b "\nPer-attribute relative error:\n";
    Buffer.add_string b (Report.summary all_rows)
  end;
  let nfail = List.length (failures t) and ndrift = List.length (drifts t) in
  Buffer.add_string b
    (if nfail = 0 && ndrift = 0 then "\nVERIFY OK\n"
     else
       Printf.sprintf "\nVERIFY FAILED: %d tolerance failure(s), %d golden drift(s)\n"
         nfail ndrift);
  Buffer.contents b
