type entry = {
  case : string;
  attr : string;
  est : float option;
  sim : float option;
}

type drift = { case : string; attr : string; what : string }

let file_of_level = function
  | Tolerance.Device -> "level1_device.tsv"
  | Tolerance.Basic -> "table2_basic.tsv"
  | Tolerance.Opamp -> "table3_opamps.tsv"
  | Tolerance.Module_level -> "table5_modules.tsv"

let path ~dir level = Filename.concat dir (file_of_level level)

let cell = function
  | None -> "-"
  | Some v -> Ape_util.Units.to_exact v

let parse_cell = function
  | "-" -> None
  | s -> (
    match float_of_string_opt s with
    | Some v -> Some v
    | None -> failwith (Printf.sprintf "golden table: unreadable number %S" s))

(* Tables persist the *raw* estimate, so a calibrated run compares
   against the same goldens as a raw one: the calibration card corrects
   what is gated, not what is frozen. *)
let entries_of_rows rows =
  List.map
    (fun (r : Diff.row) ->
      {
        case = r.Diff.case;
        attr = r.Diff.attr;
        est = r.Diff.raw_est;
        sim = r.Diff.sim;
      })
    rows

let save ~dir level rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (path ~dir level) in
  output_string oc
    "# APE differential-verification golden table (values are exact \
     float round-trips)\n";
  output_string oc "# case\tattr\test\tsim\n";
  List.iter
    (fun (e : entry) ->
      Printf.fprintf oc "%s\t%s\t%s\t%s\n" e.case e.attr (cell e.est)
        (cell e.sim))
    (entries_of_rows rows);
  close_out oc

let load ~dir level =
  let file = path ~dir level in
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          (match String.split_on_char '\t' line with
          | [ case; attr; est; sim ] ->
            go ({ case; attr; est = parse_cell est; sim = parse_cell sim } :: acc)
          | _ ->
            failwith
              (Printf.sprintf "golden table %s: malformed line %S" file line))
    in
    let entries = go [] in
    close_in ic;
    Some entries
  end

let same rtol a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    a = b || Float.abs (a -. b) <= rtol *. Float.max (Float.abs a) (Float.abs b)
  | _ -> false

let describe golden fresh =
  Printf.sprintf "golden %s, fresh %s" (cell golden) (cell fresh)

(* Ill-conditioned attributes (CMRR and anything tests register) get a
   widened comparison tolerance from the {!Tolerance} registry instead
   of a name special-case here. *)
let attr_rtol ~rtol attr = Tolerance.golden_rtol ~rtol attr

let compare_rows ?(rtol = 1e-6) ~golden rows =
  let fresh = entries_of_rows rows in
  let key (e : entry) = (e.case, e.attr) in
  let drifts = ref [] in
  let push case attr what = drifts := { case; attr; what } :: !drifts in
  List.iter
    (fun (g : entry) ->
      let rtol = attr_rtol ~rtol g.attr in
      match List.find_opt (fun f -> key f = key g) fresh with
      | None -> push g.case g.attr "row disappeared from the fresh run"
      | Some f ->
        if not (same rtol g.est f.est) then
          push g.case g.attr ("est drift: " ^ describe g.est f.est)
        else if not (same rtol g.sim f.sim) then
          push g.case g.attr ("sim drift: " ^ describe g.sim f.sim))
    golden;
  List.iter
    (fun f ->
      if not (List.exists (fun g -> key g = key f) golden) then
        push f.case f.attr "new row absent from the golden table")
    fresh;
  List.rev !drifts

let update_requested () =
  match Sys.getenv_opt "APE_UPDATE_GOLDEN" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

(* ------------------------------------------------------------------ *)
(* Calibrated-error snapshot: per-(level, attr) max relative error     *)
(* before and after calibration, frozen alongside the value tables.    *)
(* Error values are ratios of nearly-cancelling quantities, so the     *)
(* comparison takes an absolute floor on top of [rtol].                *)
(* ------------------------------------------------------------------ *)

type error_entry = {
  e_level : string;
  e_attr : string;
  raw_max : float;
  cal_max : float;
}

let errors_file = "calib_errors.tsv"

let errors_path ~dir = Filename.concat dir errors_file

let save_errors ~dir entries =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out (errors_path ~dir) in
  output_string oc
    "# APE calibrated-vs-raw max relative error per (level, attr)\n";
  output_string oc "# level\tattr\traw_max\tcal_max\n";
  List.iter
    (fun e ->
      Printf.fprintf oc "%s\t%s\t%s\t%s\n" e.e_level e.e_attr
        (Ape_util.Units.to_exact e.raw_max)
        (Ape_util.Units.to_exact e.cal_max))
    entries;
  close_out oc

let load_errors ~dir =
  let file = errors_path ~dir in
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> List.rev acc
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          (match String.split_on_char '\t' line with
          | [ e_level; e_attr; raw; cal ] ->
            let num s =
              match float_of_string_opt s with
              | Some v -> v
              | None ->
                failwith
                  (Printf.sprintf "error table %s: unreadable number %S" file s)
            in
            go ({ e_level; e_attr; raw_max = num raw; cal_max = num cal } :: acc)
          | _ ->
            failwith
              (Printf.sprintf "error table %s: malformed line %S" file line))
    in
    let entries = go [] in
    close_in ic;
    Some entries
  end

let compare_errors ?(rtol = 1e-6) ?(atol = 2e-3) ~golden entries =
  let close a b =
    a = b
    || Float.abs (a -. b)
       <= Float.max atol (rtol *. Float.max (Float.abs a) (Float.abs b))
  in
  let key e = (e.e_level, e.e_attr) in
  let drifts = ref [] in
  let push level attr what = drifts := { case = level; attr; what } :: !drifts in
  List.iter
    (fun g ->
      match List.find_opt (fun f -> key f = key g) entries with
      | None -> push g.e_level g.e_attr "row disappeared from the fresh run"
      | Some f ->
        if not (close g.raw_max f.raw_max) then
          push g.e_level g.e_attr
            (Printf.sprintf "raw error drift: golden %s, fresh %s"
               (cell (Some g.raw_max)) (cell (Some f.raw_max)))
        else if not (close g.cal_max f.cal_max) then
          push g.e_level g.e_attr
            (Printf.sprintf "calibrated error drift: golden %s, fresh %s"
               (cell (Some g.cal_max)) (cell (Some f.cal_max))))
    golden;
  List.iter
    (fun f ->
      if not (List.exists (fun g -> key g = key f) golden) then
        push f.e_level f.e_attr "new row absent from the golden table")
    entries;
  List.rev !drifts
