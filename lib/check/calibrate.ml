module Card = Ape_calib.Card
module Fit = Ape_calib.Fit

let samples_of_rows ~level ?(region_of_case = fun _ -> Card.All) rows =
  let level = Tolerance.level_name level in
  List.filter_map
    (fun (r : Diff.row) ->
      match (r.Diff.raw_est, r.Diff.sim) with
      | Some e, Some s ->
        Some
          {
            Fit.s_level = level;
            s_attr = r.Diff.attr;
            s_region = region_of_case r.Diff.case;
            s_est = e;
            s_sim = s;
          }
      | _ -> None)
    rows

let opamp_region_of_case () =
  let regions =
    List.map
      (fun (case, (spec : Ape_estimator.Opamp.spec)) ->
        ( case,
          Card.region_of ~ugf:spec.Ape_estimator.Opamp.ugf
            ~ibias:spec.Ape_estimator.Opamp.ibias
            ~cl:spec.Ape_estimator.Opamp.cl ))
      (Cases.opamp_specs ())
  in
  fun case -> Option.value ~default:Card.All (List.assoc_opt case regions)

let catalog_samples ?slew process =
  List.concat
    [
      samples_of_rows ~level:Tolerance.Basic (Cases.basic_rows process);
      samples_of_rows ~level:Tolerance.Opamp
        ~region_of_case:(opamp_region_of_case ())
        (Cases.opamp_rows ?slew process);
      samples_of_rows ~level:Tolerance.Module_level (Cases.module_rows process);
    ]

(* Do-no-harm pass: a card fitted on grid + catalog samples minimises
   error over the *combined* set, which can in principle trade a little
   catalog error for a lot of grid error.  The CI gate is on the
   catalog (the Tables 2/3/5 goldens), so any (level, attr) whose
   catalog max error got worse is reset to identity — the gate
   "calibrated <= raw" then holds by construction. *)
let harden card ~samples =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Fit.sample) ->
      let key = (s.Fit.s_level, s.Fit.s_attr) in
      let raw = Fit.rel_err ~est:s.Fit.s_est ~sim:s.Fit.s_sim in
      let cal =
        Fit.rel_err
          ~est:
            (Card.apply card ~level:s.Fit.s_level ~attr:s.Fit.s_attr
               ~region:s.Fit.s_region s.Fit.s_est)
          ~sim:s.Fit.s_sim
      in
      match Hashtbl.find_opt tbl key with
      | Some (r0, c0) ->
        Hashtbl.replace tbl key (Float.max r0 raw, Float.max c0 cal)
      | None -> Hashtbl.replace tbl key (raw, cal))
    samples;
  let harmed level attr =
    match Hashtbl.find_opt tbl (level, attr) with
    | Some (raw_max, cal_max) -> cal_max > raw_max
    | None -> false
  in
  {
    card with
    Card.entries =
      List.map
        (fun (e : Card.entry) ->
          if harmed e.Card.level e.Card.attr then
            { e with Card.corr = Card.identity; cal_err = e.Card.raw_err }
          else e)
        card.Card.entries;
  }

let fit ?slew ?tol ?(extra = []) process =
  Ape_obs.span "calib.fit" @@ fun () ->
  let catalog = catalog_samples ?slew process in
  let card =
    Fit.fit ?tol ~process:process.Ape_process.Process.name (catalog @ extra)
  in
  harden card ~samples:catalog
