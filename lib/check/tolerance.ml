type level = Device | Basic | Opamp | Module_level

let level_name = function
  | Device -> "device"
  | Basic -> "basic"
  | Opamp -> "opamp"
  | Module_level -> "module"

let level_of_name s =
  match String.lowercase_ascii s with
  | "device" -> Some Device
  | "basic" -> Some Basic
  | "opamp" -> Some Opamp
  | "module" -> Some Module_level
  | _ -> None

let all_levels = [ Device; Basic; Opamp; Module_level ]

type gate = Rel of float | Report_only

type t = { attr : string; gate : gate }

let rel attr bound = { attr; gate = Rel bound }
let report attr = { attr; gate = Report_only }

(* The bounds encode the agreement the paper claims plus the headroom
   this reproduction actually measures (EXPERIMENTS.md "Verification"):
   areas are exact by construction, powers and currents track within a
   few percent, gains within tens of percent, and the known-weak
   estimates (diode-load UGF, slew, ADC delay) get order-of-magnitude
   gates that still catch a broken estimator. *)

let device =
  [ rel "ids" 0.02; rel "gm" 0.08; rel "gds" 0.30 ]

let basic =
  [
    rel "gate_area" 1e-6;
    report "total_area";
    rel "power" 0.06;
    rel "current" 0.15;
    rel "gain" 0.60;
    rel "ugf" 3.0;
    rel "zout" 0.60;
    report "bandwidth";
    report "cmrr";
    report "noise";
    report "offset";
  ]

let opamp =
  [
    rel "gate_area" 1e-6;
    report "total_area";
    rel "power" 0.06;
    rel "gain" 0.12;
    rel "ugf" 0.80;
    rel "zout" 0.10;
    rel "current" 0.40;
    rel "slew_rate" 1.60;
    report "cmrr";
    report "phase_margin";
    report "offset";
    report "bandwidth";
  ]

let module_ =
  [
    rel "area" 1e-6;
    rel "gain" 0.45;
    rel "bandwidth" 0.45;
    rel "f3db" 0.30;
    rel "f20db" 0.15;
    rel "f0" 0.05;
    rel "delay" 2.60;
    report "power";
  ]

let for_level = function
  | Device -> device
  | Basic -> basic
  | Opamp -> opamp
  | Module_level -> module_

let find tols attr = List.find_opt (fun t -> String.equal t.attr attr) tols

(* Golden-table comparison tolerances for ill-conditioned attributes,
   keyed by name so callers (calibration tests included) register
   entries instead of string-matching inside {!Golden}.  CMRR divides
   the differential gain by a near-cancelled common-mode gain, so a
   last-bit engine difference (dense vs sparse elimination order)
   legitimately moves it by up to ~1e-3 relative. *)
let golden_rtols : (string, float) Hashtbl.t =
  let t = Hashtbl.create 8 in
  Hashtbl.replace t "cmrr" 1e-3;
  t

let register_golden_rtol ~attr rtol = Hashtbl.replace golden_rtols attr rtol

let golden_rtol ~rtol attr =
  match Hashtbl.find_opt golden_rtols attr with
  | Some r -> Float.max rtol r
  | None -> rtol
