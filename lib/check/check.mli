(** Top-level differential verification: run the case catalog for the
    requested levels, gate every attribute against its declared
    tolerance, and (optionally) compare or promote the golden tables.

    This is the engine behind [ape verify] and the CI regression
    gate. *)

type level_result = {
  level : Tolerance.level;
  rows : Diff.row list;
  drifts : Golden.drift list;  (** golden mismatches (empty without a dir) *)
  promoted : bool;  (** true when this run rewrote the golden table *)
}

type outcome = { results : level_result list }

val run :
  ?slew:bool ->
  ?calibration:Ape_calib.Card.t ->
  ?golden_dir:string ->
  ?update:bool ->
  ?levels:Tolerance.level list ->
  Ape_process.Process.t ->
  outcome
(** [update] (or the env var [APE_UPDATE_GOLDEN=1]) promotes the fresh
    values into the golden tables instead of comparing.  [calibration]
    re-gates every estimate through the card's corrections; golden
    tables still persist (and compare) the {e raw} estimates, so one
    set of tables serves calibrated and raw runs alike. *)

val error_table : outcome -> Golden.error_entry list
(** Per-(level, attribute) max relative error, raw and calibrated —
    equal columns for an uncalibrated run.  This is what the frozen
    [calib_errors.tsv] snapshot and [BENCH_calib.json] are built
    from. *)

val failures : outcome -> Diff.row list
val drifts : outcome -> Golden.drift list

val ok : outcome -> bool
(** No tolerance failures and no golden drift. *)

val render : ?tsv:bool -> outcome -> string
(** Per-level tables, drift messages, error summary and final verdict. *)
