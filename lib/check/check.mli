(** Top-level differential verification: run the case catalog for the
    requested levels, gate every attribute against its declared
    tolerance, and (optionally) compare or promote the golden tables.

    This is the engine behind [ape verify] and the CI regression
    gate. *)

type level_result = {
  level : Tolerance.level;
  rows : Diff.row list;
  drifts : Golden.drift list;  (** golden mismatches (empty without a dir) *)
  promoted : bool;  (** true when this run rewrote the golden table *)
}

type outcome = { results : level_result list }

val run :
  ?slew:bool ->
  ?golden_dir:string ->
  ?update:bool ->
  ?levels:Tolerance.level list ->
  Ape_process.Process.t ->
  outcome
(** [update] (or the env var [APE_UPDATE_GOLDEN=1]) promotes the fresh
    values into the golden tables instead of comparing. *)

val failures : outcome -> Diff.row list
val drifts : outcome -> Golden.drift list

val ok : outcome -> bool
(** No tolerance failures and no golden drift. *)

val render : ?tsv:bool -> outcome -> string
(** Per-level tables, drift messages, error summary and final verdict. *)
