(** Named per-attribute tolerances, one set per level of the APE
    hierarchy (paper §4: transistors → basic circuits → opamps →
    modules).

    Each attribute of a level is either {e gated} — the relative
    estimate-vs-simulation error must stay within a declared bound, and
    [ape verify]/CI fail when it does not — or {e report-only}:
    measured and tabulated, but known to be a rough estimate (the
    paper's own tables show CMRR and slew off by large factors) and
    therefore not a gate. *)

type level = Device | Basic | Opamp | Module_level

val level_name : level -> string
val level_of_name : string -> level option
val all_levels : level list

type gate =
  | Rel of float  (** max allowed |est − sim| / |sim| *)
  | Report_only  (** tabulated but never failing *)

type t = { attr : string; gate : gate }

val for_level : level -> t list
(** The declared tolerance set of a level.  Attributes not listed are
    not compared at that level. *)

val find : t list -> string -> t option
