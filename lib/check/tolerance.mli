(** Named per-attribute tolerances, one set per level of the APE
    hierarchy (paper §4: transistors → basic circuits → opamps →
    modules).

    Each attribute of a level is either {e gated} — the relative
    estimate-vs-simulation error must stay within a declared bound, and
    [ape verify]/CI fail when it does not — or {e report-only}:
    measured and tabulated, but known to be a rough estimate (the
    paper's own tables show CMRR and slew off by large factors) and
    therefore not a gate. *)

type level = Device | Basic | Opamp | Module_level

val level_name : level -> string
val level_of_name : string -> level option
val all_levels : level list

type gate =
  | Rel of float  (** max allowed |est − sim| / |sim| *)
  | Report_only  (** tabulated but never failing *)

type t = { attr : string; gate : gate }

val for_level : level -> t list
(** The declared tolerance set of a level.  Attributes not listed are
    not compared at that level. *)

val find : t list -> string -> t option

val register_golden_rtol : attr:string -> float -> unit
(** Declare that golden-table comparisons of [attr] need a widened
    relative tolerance (the entry is global; last registration wins).
    Ill-conditioned attributes — CMRR is pre-registered at 1e-3 — are
    legitimately moved beyond the default 1e-6 by a last-bit change in
    the underlying solve (e.g. switching [--engine dense|sparse]). *)

val golden_rtol : rtol:float -> string -> float
(** The comparison tolerance for one attribute: the registered value
    when wider than [rtol], else [rtol] itself. *)
