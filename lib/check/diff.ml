module Perf = Ape_estimator.Perf

type status = Pass | Fail | Info | Skipped

let status_name = function
  | Pass -> "pass"
  | Fail -> "FAIL"
  | Info -> "info"
  | Skipped -> "skip"

type row = {
  case : string;
  attr : string;
  est : float option;
  raw_est : float option;
  sim : float option;
  rel_err : float option;
  gate : Tolerance.gate;
  status : status;
}

let rel_err ~est ~sim =
  if est = sim then 0.
  else
    let denom = Float.max (Float.abs sim) 1e-300 in
    Float.abs (est -. sim) /. denom

let usable = function
  | Some v -> if Float.is_nan v then None else Some v
  | None -> None

let make ~case ~attr ~gate ~est ~sim =
  let est = usable est and sim = usable sim in
  let err =
    match (est, sim) with
    | Some e, Some s -> Some (rel_err ~est:e ~sim:s)
    | _ -> None
  in
  let status =
    match (gate, est, sim) with
    | _, None, None -> Skipped
    | Tolerance.Report_only, _, _ -> Info
    | Tolerance.Rel _, None, Some _ ->
      (* The estimator stopped producing an attribute the simulator can
         measure: a regression in its own right. *)
      Fail
    | Tolerance.Rel _, Some _, None ->
      (* The testbench has no measurement for this attribute; tabulate
         the estimate.  A *disappearing* measurement is caught by the
         golden tables (the sim column drifts to "-"). *)
      Info
    | Tolerance.Rel bound, Some _, Some _ -> (
      match err with
      | Some e when e <= bound -> Pass
      | _ -> Fail)
  in
  { case; attr; est; raw_est = est; sim; rel_err = err; gate; status }

let calibrated r = r.est <> r.raw_est

let raw_rel_err r =
  match (r.raw_est, r.sim) with
  | Some e, Some s -> Some (rel_err ~est:e ~sim:s)
  | _ -> None

(* Re-gate a row through a correction.  The corrected value replaces
   [est] (status and error are recomputed against the same gate);
   [raw_est] keeps the uncorrected estimate so golden tables stay
   calibration-independent and reports can show both columns. *)
let calibrate ~f r =
  match r.est with
  | None -> r
  | Some e -> (
    match f r.attr e with
    | None -> r
    | Some e' when e' = e -> r
    | Some e' ->
      let r' = make ~case:r.case ~attr:r.attr ~gate:r.gate ~est:(Some e') ~sim:r.sim in
      { r' with raw_est = r.est })

(* The shared attribute naming between {!Tolerance} sets, golden tables
   and reports.  [dc_power] travels as "power". *)
let perf_pairs (est : Perf.t) (sim : Perf.t) =
  [
    ("gate_area", Some est.gate_area, Some sim.gate_area);
    ("total_area", Some est.total_area, Some sim.total_area);
    ("power", Some est.dc_power, Some sim.dc_power);
    ("gain", est.gain, sim.gain);
    ("ugf", est.ugf, sim.ugf);
    ("bandwidth", est.bandwidth, sim.bandwidth);
    ("cmrr", est.cmrr, sim.cmrr);
    ("slew_rate", est.slew_rate, sim.slew_rate);
    ("zout", est.zout, sim.zout);
    ("current", est.current, sim.current);
    ("offset", est.offset, sim.offset);
    ("phase_margin", est.phase_margin, sim.phase_margin);
    ("noise", est.noise, sim.noise);
  ]

let rows_of_perf ~case ~tols est sim =
  List.filter_map
    (fun (attr, e, s) ->
      match Tolerance.find tols attr with
      | None -> None
      | Some t ->
        let r = make ~case ~attr ~gate:t.Tolerance.gate ~est:e ~sim:s in
        if r.status = Skipped then None else Some r)
    (perf_pairs est sim)

let failures rows = List.filter (fun r -> r.status = Fail) rows
