(** Catalog-anchored calibration: fit a {!Ape_calib.Card} from the
    differential-verification catalog (the paper's Tables 2/3/5 cases)
    plus any extra grid samples, then harden it so calibrated error
    can never exceed raw error on the catalog itself.

    This is the engine behind [ape calibrate]: {!Ape_calib.Grid}
    supplies breadth (random design points across the spec space), the
    catalog supplies the anchor the CI gate measures on, and {!harden}
    makes "calibrated ≤ raw on the goldens" true by construction. *)

val samples_of_rows :
  level:Tolerance.level ->
  ?region_of_case:(string -> Ape_calib.Card.region) ->
  Diff.row list ->
  Ape_calib.Fit.sample list
(** Pair each row's raw estimate with its simulation (rows missing a
    side are dropped).  [region_of_case] defaults to [All]. *)

val opamp_region_of_case : unit -> string -> Ape_calib.Card.region
(** The operating region of each Table 3 opamp, by case name
    (unknown cases map to [All]). *)

val catalog_samples :
  ?slew:bool -> Ape_process.Process.t -> Ape_calib.Fit.sample list
(** Fresh basic/opamp/module catalog runs as fitting samples. *)

val harden :
  Ape_calib.Card.t -> samples:Ape_calib.Fit.sample list -> Ape_calib.Card.t
(** Reset to identity every (level, attr) whose max error over
    [samples] the card makes worse. *)

val fit :
  ?slew:bool ->
  ?tol:float ->
  ?extra:Ape_calib.Fit.sample list ->
  Ape_process.Process.t ->
  Ape_calib.Card.t
(** Catalog + [extra] samples → fitted, hardened card ([tol] as in
    {!Ape_calib.Fit.fit}). *)
