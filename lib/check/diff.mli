(** One estimate-vs-simulation comparison per (case, attribute) — the
    cells of the paper's Tables 2/3/5 with an explicit pass/fail
    verdict attached. *)

type status =
  | Pass  (** gated and within tolerance *)
  | Fail
      (** gated and out of tolerance, or the estimate for a measurable
          attribute is missing *)
  | Info
      (** report-only attribute, or a gated attribute this testbench
          cannot measure (disappearing measurements surface as golden
          drift instead) *)
  | Skipped  (** neither side defines the attribute *)

val status_name : status -> string

type row = {
  case : string;
  attr : string;
  est : float option;  (** the gated estimate (corrected when calibrated) *)
  raw_est : float option;
      (** the uncorrected estimate; equal to [est] unless {!calibrate}
          changed it.  Golden tables persist this column, so one set of
          tables serves calibrated and raw runs alike. *)
  sim : float option;
  rel_err : float option;  (** |est − sim| / |sim|, when both exist *)
  gate : Tolerance.gate;
  status : status;
}

val rel_err : est:float -> sim:float -> float

val calibrated : row -> bool
(** True when a correction actually moved this row's estimate. *)

val raw_rel_err : row -> float option
(** |raw_est − sim| / |sim|, when both exist. *)

val calibrate : f:(string -> float -> float option) -> row -> row
(** [calibrate ~f row] replaces the estimate with [f attr est] (when
    [Some] and different), recomputing error and status against the
    unchanged gate; [raw_est] keeps the original. *)

val make :
  case:string ->
  attr:string ->
  gate:Tolerance.gate ->
  est:float option ->
  sim:float option ->
  row

val perf_pairs :
  Ape_estimator.Perf.t ->
  Ape_estimator.Perf.t ->
  (string * float option * float option) list
(** Attribute-aligned (name, est, sim) triples; [dc_power] is named
    "power" to match {!Tolerance} and the golden tables. *)

val rows_of_perf :
  case:string ->
  tols:Tolerance.t list ->
  Ape_estimator.Perf.t ->
  Ape_estimator.Perf.t ->
  row list
(** Rows for every attribute the tolerance set declares; [Skipped]
    rows (absent on both sides) are dropped. *)

val failures : row list -> row list
