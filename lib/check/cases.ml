module E = Ape_estimator
module Mos = Ape_device.Mos
module Proc = Ape_process.Process
module B = Ape_circuit.Builder

module Card = Ape_calib.Card

let gate_of tols attr =
  match Tolerance.find tols attr with
  | Some t -> t.Tolerance.gate
  | None -> Tolerance.Report_only

(* Re-gate one level's rows through a calibration card.  The card is
   keyed by tolerance-level name; opamp cases carry their own operating
   region (from the spec that produced them), everything else uses the
   region-free [All] entries. *)
let apply_card ?calibration ~level ~region rows =
  match calibration with
  | None -> rows
  | Some card ->
    let level = Tolerance.level_name level in
    List.map
      (Diff.calibrate ~f:(fun attr v ->
           match Card.find card ~level ~attr ~region with
           | None -> None
           | Some e -> Some (Card.correct e.Card.corr v)))
      rows

(* ------------------------------------------------------------------ *)
(* Level 1: single sized transistors.  The estimate side is the sized
   object's closed-form gm/gds/ids (paper eqs. (1)-(4)); the simulation
   side biases the same geometry at the same terminal voltages in the
   MNA engine and reads back the smooth-model values.                  *)
(* ------------------------------------------------------------------ *)

let device_bench ~(process : Proc.t) card ~pmos (sized : Mos.sized) =
  let b = B.create ~title:"level-1 device bench" in
  let w = sized.Mos.geom.Mos.w and l = sized.Mos.geom.Mos.l in
  (if pmos then (
     let vdd = process.Proc.vdd in
     B.vsource b ~p:"vdd" ~n:"0" vdd;
     B.mosfet b card ~d:"d" ~g:"g" ~s:"vdd" ~b:"vdd" ~w ~l;
     B.vsource b ~p:"g" ~n:"0" (vdd -. sized.Mos.vgs);
     B.vsource b ~p:"d" ~n:"0" (vdd -. sized.Mos.vds))
   else (
     B.mosfet b card ~d:"d" ~g:"g" ~s:"0" ~b:"0" ~w ~l;
     B.vsource b ~p:"g" ~n:"0" sized.Mos.vgs;
     B.vsource b ~p:"d" ~n:"0" sized.Mos.vds));
  B.finish b

let device_case ~process ~name card ~pmos spec =
  let sized = Mos.size ~process card spec in
  let netlist = device_bench ~process card ~pmos sized in
  let op = Ape_spice.Dc.solve netlist in
  let sim_ids =
    match Ape_spice.Dc.mosfet_regions op with
    | (_, _, ids) :: _ -> Some (Float.abs ids)
    | [] -> None
  in
  let sim_gm, sim_gds =
    match
      Ape_spice.Engine.mosfet_small_signal op.Ape_spice.Dc.netlist
        op.Ape_spice.Dc.index op.Ape_spice.Dc.x
    with
    | (_, ss) :: _ -> (Some ss.Mos.gm, Some ss.Mos.gds)
    | [] -> (None, None)
  in
  let tols = Tolerance.for_level Tolerance.Device in
  [
    Diff.make ~case:name ~attr:"ids" ~gate:(gate_of tols "ids")
      ~est:(Some sized.Mos.ids) ~sim:sim_ids;
    Diff.make ~case:name ~attr:"gm" ~gate:(gate_of tols "gm")
      ~est:(Some sized.Mos.gm) ~sim:sim_gm;
    Diff.make ~case:name ~attr:"gds" ~gate:(gate_of tols "gds")
      ~est:(Some sized.Mos.gds) ~sim:sim_gds;
  ]

let device_rows ?calibration process =
  ignore calibration;
  (* Level-1 closed forms are the model itself; there is nothing to
     calibrate them against that would not just be the simulator. *)
  let l2 = 2. *. process.Proc.lmin in
  let c ~name card ~pmos spec = device_case ~process ~name card ~pmos spec in
  List.concat
    [
      c ~name:"nmos gm=100u id=10u" process.Proc.nmos ~pmos:false
        (Mos.By_gm_id { gm = 100e-6; ids = 10e-6; l = l2 });
      c ~name:"nmos gm=50u id=5u L=2x" process.Proc.nmos ~pmos:false
        (Mos.By_gm_id { gm = 50e-6; ids = 5e-6; l = 2. *. l2 });
      c ~name:"nmos id=20u vov=0.3" process.Proc.nmos ~pmos:false
        (Mos.By_id_vov { ids = 20e-6; vov = 0.3; l = l2 });
      c ~name:"pmos gm=100u id=10u" process.Proc.pmos ~pmos:true
        (Mos.By_gm_id { gm = 100e-6; ids = 10e-6; l = l2 });
      c ~name:"pmos id=10u vov=0.25" process.Proc.pmos ~pmos:true
        (Mos.By_id_vov { ids = 10e-6; vov = 0.25; l = l2 });
    ]

(* ------------------------------------------------------------------ *)
(* Level 2: the paper's Table 2 basic-component set.                   *)
(* ------------------------------------------------------------------ *)

let basic_rows ?calibration process =
  let tols = Tolerance.for_level Tolerance.Basic in
  let rows ~case est sim = Diff.rows_of_perf ~case ~tols est sim in
  let dc_volt =
    let d =
      E.Bias.Dc_volt.design process { E.Bias.Dc_volt.vout = 2.5; i = 100e-6 }
    in
    rows ~case:"DCVolt" d.E.Bias.Dc_volt.perf (E.Verify.sim_dc_volt process d)
  in
  let mirror topology =
    let d =
      E.Bias.Current_mirror.design process
        (E.Bias.Current_mirror.spec ~topology ~iout:100e-6 ())
    in
    rows
      ~case:(E.Bias.mirror_topology_name topology)
      d.E.Bias.Current_mirror.perf
      (E.Verify.sim_mirror process d)
  in
  let stage kind av i =
    let d =
      E.Gain_stage.design process (E.Gain_stage.spec ~av ~cl:1e-12 kind ~i)
    in
    rows
      ~case:(E.Gain_stage.kind_name kind)
      d.E.Gain_stage.perf
      (E.Verify.sim_gain_stage process d)
  in
  let diff load av =
    let d =
      E.Diff_pair.design process
        (E.Diff_pair.spec ~av ~cl:1e-12 load ~itail:1e-6)
    in
    rows
      ~case:(E.Diff_pair.load_name load)
      d.E.Diff_pair.perf
      (E.Verify.sim_diff_pair process d)
  in
  apply_card ?calibration ~level:Tolerance.Basic ~region:Card.All
    (List.concat
       [
         dc_volt;
         mirror E.Bias.Simple;
         mirror E.Bias.Wilson;
         mirror E.Bias.Cascode;
         stage E.Gain_stage.Gain_nmos 8.5 120e-6;
         stage E.Gain_stage.Gain_cmos 19. 120e-6;
         stage E.Gain_stage.Gain_cmosh 5.1 45e-6;
         stage E.Gain_stage.Follower_stage 0.8 100e-6;
         diff E.Diff_pair.Nmos_diode 4.;
         diff E.Diff_pair.Cmos_mirror 1000.;
       ])

(* ------------------------------------------------------------------ *)
(* Level 3: the paper's Table 3 opamps.                                *)
(* ------------------------------------------------------------------ *)

let opamp_specs () =
  [
    ( "OpAmp1",
      E.Opamp.spec ~buffer:true ~zout:1e3 ~bias_topology:E.Bias.Wilson
        ~av:206. ~ugf:1.3e6 ~ibias:1e-6 ~cl:10e-12 () );
    ( "OpAmp2",
      E.Opamp.spec ~buffer:true ~zout:1e3 ~bias_topology:E.Bias.Wilson
        ~av:374. ~ugf:8e6 ~ibias:2e-6 ~cl:10e-12 () );
    ( "OpAmp3",
      E.Opamp.spec ~buffer:true ~zout:2e3 ~bias_topology:E.Bias.Wilson
        ~av:167. ~ugf:12.4e6 ~ibias:1.5e-6 ~cl:10e-12 () );
    ( "OpAmp4",
      E.Opamp.spec ~bias_topology:E.Bias.Simple ~av:514. ~ugf:2.6e6
        ~ibias:1e-6 ~cl:10e-12 () );
  ]

let opamp_rows ?(slew = true) ?calibration process =
  let tols = Tolerance.for_level Tolerance.Opamp in
  let tols =
    (* Without the transient step there is nothing to gate slew on. *)
    if slew then tols
    else List.filter (fun t -> t.Tolerance.attr <> "slew_rate") tols
  in
  List.concat_map
    (fun (case, (spec : E.Opamp.spec)) ->
      let d = E.Opamp.design process spec in
      let region =
        Card.region_of ~ugf:spec.E.Opamp.ugf ~ibias:spec.E.Opamp.ibias
          ~cl:spec.E.Opamp.cl
      in
      apply_card ?calibration ~level:Tolerance.Opamp ~region
        (Diff.rows_of_perf ~case ~tols d.E.Opamp.perf
           (E.Verify.sim_opamp ~slew process d)))
    (opamp_specs ())

(* ------------------------------------------------------------------ *)
(* Level 4: the paper's Table 5 module examples.  The attribute lists
   mirror bench/main.ml's est/sim metric extraction; the S&H response
   time travels as "delay" so both timed modules share one gate.       *)
(* ------------------------------------------------------------------ *)

let module_specs () =
  [
    ( "S&H",
      E.Module_lib.Sample_hold_m
        (E.Sample_hold.spec ~gain:2.0 ~bandwidth:20e3 ~sr:1e4 ()) );
    ("AudioAmp", E.Module_lib.Audio_amp { gain = 100.; bandwidth = 20e3 });
    ( "FlashADC",
      E.Module_lib.Flash_adc_m (E.Data_conv.Flash_adc.spec ~bits:4 ~delay:5e-6 ())
    );
    ( "LPF4",
      E.Module_lib.Lowpass_m
        { E.Filter.order = 4; f_cutoff = 1e3; r_base = 1e6 } );
    ( "BPF",
      E.Module_lib.Bandpass_m
        { E.Filter.f_center = 1e3; q = 1.; gain = 1.5; c_base = 10e-9 } );
  ]

let module_est_metrics design =
  let p = E.Module_lib.perf design in
  let common =
    [
      ("gain", p.E.Perf.gain);
      ("bandwidth", p.E.Perf.bandwidth);
      ("area", Some p.E.Perf.gate_area);
      ("power", Some p.E.Perf.dc_power);
    ]
  in
  let extra =
    match design with
    | E.Module_lib.D_lpf d ->
      [
        ("f3db", Some d.E.Filter.f3db_est);
        ("f20db", Some d.E.Filter.f20db_est);
      ]
    | E.Module_lib.D_bpf d -> [ ("f0", Some d.E.Filter.f0_est) ]
    | E.Module_lib.D_adc d ->
      [ ("delay", Some d.E.Data_conv.Flash_adc.delay_est) ]
    | E.Module_lib.D_sh d ->
      [ ("delay", Some d.E.Sample_hold.response_time_est) ]
    | E.Module_lib.D_audio _ | E.Module_lib.D_dac _ | E.Module_lib.D_closed _
    | E.Module_lib.D_comp _ ->
      []
  in
  List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) (common @ extra)

let module_sim_metrics (sim : E.Verify.module_sim) =
  let p = sim.E.Verify.perf in
  List.filter_map
    (fun (k, v) -> Option.map (fun v -> (k, v)) v)
    [
      ("gain", p.E.Perf.gain);
      ("bandwidth", p.E.Perf.bandwidth);
      ("f3db", p.E.Perf.bandwidth);
      ("f20db", sim.E.Verify.f_20db);
      ("f0", sim.E.Verify.f0);
      ("delay", sim.E.Verify.response_time);
      ("area", Some p.E.Perf.gate_area);
      ("power", Some p.E.Perf.dc_power);
    ]

(* Which attributes make sense for which module — mirrors the row
   selection of the paper's Table 5 (e.g. the ADC is judged on delay,
   the band-pass on its centre frequency, not the other way round). *)
let module_keys = function
  | E.Module_lib.Sample_hold_m _ ->
    [ "gain"; "bandwidth"; "delay"; "area"; "power" ]
  | E.Module_lib.Flash_adc_m _ -> [ "delay"; "area"; "power" ]
  | E.Module_lib.Lowpass_m _ ->
    [ "gain"; "bandwidth"; "f3db"; "f20db"; "area"; "power" ]
  | E.Module_lib.Bandpass_m _ ->
    [ "gain"; "bandwidth"; "f0"; "area"; "power" ]
  | E.Module_lib.Audio_amp _ | E.Module_lib.Dac_m _
  | E.Module_lib.Closed_loop_m _ | E.Module_lib.Comparator_m _ ->
    [ "gain"; "bandwidth"; "area"; "power" ]

let module_rows ?calibration process =
  let tols = Tolerance.for_level Tolerance.Module_level in
  apply_card ?calibration ~level:Tolerance.Module_level ~region:Card.All
  @@ List.concat_map
    (fun (case, spec) ->
      let keys = module_keys spec in
      let design = E.Module_lib.design process spec in
      let est = module_est_metrics design in
      let sim = module_sim_metrics (E.Verify.sim_module process design) in
      List.filter_map
        (fun (t : Tolerance.t) ->
          let attr = t.Tolerance.attr in
          if not (List.mem attr keys) then None
          else
            let r =
              Diff.make ~case ~attr ~gate:t.Tolerance.gate
                ~est:(List.assoc_opt attr est) ~sim:(List.assoc_opt attr sim)
            in
            if r.Diff.status = Diff.Skipped then None else Some r)
        tols)
    (module_specs ())

(* ------------------------------------------------------------------ *)

let rows_for ?slew ?calibration process = function
  | Tolerance.Device -> device_rows ?calibration process
  | Tolerance.Basic -> basic_rows ?calibration process
  | Tolerance.Opamp -> opamp_rows ?slew ?calibration process
  | Tolerance.Module_level -> module_rows ?calibration process
