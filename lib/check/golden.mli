(** Golden-table persistence for the differential verifier.

    A golden table is a TSV snapshot of one level's (case, attribute,
    estimate, simulation) quadruples, checked into [test/golden/].
    Values are printed with {!Ape_util.Units.to_exact}, so a re-run on
    the same code recomputes them bit-identically; [compare_rows] then
    flags any drift beyond a tiny [rtol] (default 1e-6, i.e. only real
    behaviour changes, not formatting).  One exception: ill-conditioned
    attributes (currently [cmrr], a ratio against a near-cancelled
    common-mode gain) are compared at 1e-3, so both linear-solver
    engines ([--engine dense|sparse]) pass against one set of tables.

    Promotion: rerun with [APE_UPDATE_GOLDEN=1] (or [ape verify
    --update]) to overwrite the tables with the fresh values, then
    review the diff like any other code change. *)

type entry = {
  case : string;
  attr : string;
  est : float option;
  sim : float option;
}

type drift = { case : string; attr : string; what : string }

val path : dir:string -> Tolerance.level -> string

val save : dir:string -> Tolerance.level -> Diff.row list -> unit
(** Creates [dir] if missing; overwrites the level's table. *)

val load : dir:string -> Tolerance.level -> entry list option
(** [None] when the level's table does not exist yet. *)

val compare_rows :
  ?rtol:float -> golden:entry list -> Diff.row list -> drift list
(** Empty list = fresh run matches the golden table. *)

val update_requested : unit -> bool
(** True when [APE_UPDATE_GOLDEN] is set to 1/true/yes. *)

(** {1 Calibrated-error snapshot}

    A frozen per-(level, attribute) table of max relative error before
    and after calibration ([calib_errors.tsv]), promoted through the
    same [--update]/[APE_UPDATE_GOLDEN=1] path as the value tables.
    Error values are ratios of nearly-cancelling quantities — est≈sim
    makes the relative error itself ill-conditioned — so comparisons
    take an absolute floor [atol] (default 2e-3) on top of [rtol]. *)

type error_entry = {
  e_level : string;
  e_attr : string;
  raw_max : float;
  cal_max : float;
}

val errors_path : dir:string -> string

val save_errors : dir:string -> error_entry list -> unit

val load_errors : dir:string -> error_entry list option
(** [None] when the table does not exist yet. *)

val compare_errors :
  ?rtol:float -> ?atol:float -> golden:error_entry list -> error_entry list ->
  drift list
(** Empty list = fresh errors match the frozen table.  [drift.case]
    carries the level name. *)
