module Table = Ape_util.Table
module Units = Ape_util.Units

let opt_cell = function None -> "-" | Some v -> Units.to_eng v

let gate_cell = function
  | Tolerance.Rel b -> Printf.sprintf "<= %.0f%%" (100. *. b)
  | Tolerance.Report_only -> "report"

let err_cell = function
  | None -> "-"
  | Some e when e >= 10. -> Printf.sprintf "%.0fx" e
  | Some e -> Printf.sprintf "%.1f%%" (100. *. e)

(* Calibrated runs grow raw-estimate/raw-error columns so the card's
   effect is visible per cell; raw runs keep the historical layout. *)
let ascii ~level rows =
  let calibrated = List.exists Diff.calibrated rows in
  let body =
    List.map
      (fun (r : Diff.row) ->
        [ r.Diff.case; r.Diff.attr; opt_cell r.Diff.est; opt_cell r.Diff.sim ]
        @ (if calibrated then
             [ opt_cell r.Diff.raw_est; err_cell (Diff.raw_rel_err r) ]
           else [])
        @ [
            err_cell r.Diff.rel_err;
            gate_cell r.Diff.gate;
            Diff.status_name r.Diff.status;
          ])
      rows
  in
  let header =
    [ "case"; "attr"; "est"; "sim" ]
    @ (if calibrated then [ "raw est"; "raw err" ] else [])
    @ [ (if calibrated then "cal err" else "rel err"); "gate"; "status" ]
  in
  Table.render_titled
    ~title:
      (Printf.sprintf "APE vs simulation, level: %s%s"
         (Tolerance.level_name level)
         (if calibrated then " (calibrated)" else ""))
    ~header body

let tsv rows =
  let calibrated = List.exists Diff.calibrated rows in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (if calibrated then
       "case\tattr\test\tsim\traw_est\traw_err\trel_err\tgate\tstatus\n"
     else "case\tattr\test\tsim\trel_err\tgate\tstatus\n");
  let cell = function None -> "-" | Some v -> Units.to_exact v in
  List.iter
    (fun (r : Diff.row) ->
      Buffer.add_string b
        (Printf.sprintf "%s\t%s\t%s\t%s\t%s%s\t%s\t%s\n" r.Diff.case r.Diff.attr
           (cell r.Diff.est) (cell r.Diff.sim)
           (if calibrated then
              Printf.sprintf "%s\t%s\t"
                (cell r.Diff.raw_est)
                (cell (Diff.raw_rel_err r))
            else "")
           (cell r.Diff.rel_err)
           (gate_cell r.Diff.gate)
           (Diff.status_name r.Diff.status)))
    rows;
  Buffer.contents b

(* Per-attribute error statistics over every row that produced one. *)
let stats_of err_of rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Diff.row) ->
      match err_of r with
      | None -> ()
      | Some e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl r.Diff.attr) in
        Hashtbl.replace tbl r.Diff.attr (e :: prev))
    rows;
  let stats =
    Hashtbl.fold
      (fun attr errs acc ->
        let n = List.length errs in
        let sum = List.fold_left ( +. ) 0. errs in
        let mx = List.fold_left Float.max 0. errs in
        (attr, n, sum /. float_of_int n, mx) :: acc)
      tbl []
  in
  List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) stats

let attr_stats rows = stats_of (fun (r : Diff.row) -> r.Diff.rel_err) rows

let raw_attr_stats rows = stats_of Diff.raw_rel_err rows

let summary rows =
  if not (List.exists Diff.calibrated rows) then
    let body =
      List.map
        (fun (attr, n, mean, mx) ->
          [ attr; string_of_int n; err_cell (Some mean); err_cell (Some mx) ])
        (attr_stats rows)
    in
    Table.render ~header:[ "attr"; "rows"; "mean err"; "max err" ] body
  else
    let raw = raw_attr_stats rows in
    let body =
      List.map
        (fun (attr, n, mean, mx) ->
          let raw_max =
            List.find_map
              (fun (a, _, _, m) -> if a = attr then Some m else None)
              raw
          in
          [
            attr;
            string_of_int n;
            err_cell raw_max;
            err_cell (Some mean);
            err_cell (Some mx);
          ])
        (attr_stats rows)
    in
    Table.render
      ~header:[ "attr"; "rows"; "raw max"; "cal mean"; "cal max" ]
      body
