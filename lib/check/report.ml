module Table = Ape_util.Table
module Units = Ape_util.Units

let opt_cell = function None -> "-" | Some v -> Units.to_eng v

let gate_cell = function
  | Tolerance.Rel b -> Printf.sprintf "<= %.0f%%" (100. *. b)
  | Tolerance.Report_only -> "report"

let err_cell = function
  | None -> "-"
  | Some e when e >= 10. -> Printf.sprintf "%.0fx" e
  | Some e -> Printf.sprintf "%.1f%%" (100. *. e)

let ascii ~level rows =
  let body =
    List.map
      (fun (r : Diff.row) ->
        [
          r.Diff.case;
          r.Diff.attr;
          opt_cell r.Diff.est;
          opt_cell r.Diff.sim;
          err_cell r.Diff.rel_err;
          gate_cell r.Diff.gate;
          Diff.status_name r.Diff.status;
        ])
      rows
  in
  Table.render_titled
    ~title:
      (Printf.sprintf "APE vs simulation, level: %s"
         (Tolerance.level_name level))
    ~header:[ "case"; "attr"; "est"; "sim"; "rel err"; "gate"; "status" ]
    body

let tsv rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "case\tattr\test\tsim\trel_err\tgate\tstatus\n";
  List.iter
    (fun (r : Diff.row) ->
      Buffer.add_string b
        (Printf.sprintf "%s\t%s\t%s\t%s\t%s\t%s\t%s\n" r.Diff.case r.Diff.attr
           (match r.Diff.est with None -> "-" | Some v -> Units.to_exact v)
           (match r.Diff.sim with None -> "-" | Some v -> Units.to_exact v)
           (match r.Diff.rel_err with
           | None -> "-"
           | Some e -> Units.to_exact e)
           (gate_cell r.Diff.gate)
           (Diff.status_name r.Diff.status)))
    rows;
  Buffer.contents b

(* Per-attribute error statistics over every row that produced one. *)
let attr_stats rows =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (r : Diff.row) ->
      match r.Diff.rel_err with
      | None -> ()
      | Some e ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl r.Diff.attr) in
        Hashtbl.replace tbl r.Diff.attr (e :: prev))
    rows;
  let stats =
    Hashtbl.fold
      (fun attr errs acc ->
        let n = List.length errs in
        let sum = List.fold_left ( +. ) 0. errs in
        let mx = List.fold_left Float.max 0. errs in
        (attr, n, sum /. float_of_int n, mx) :: acc)
      tbl []
  in
  List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) stats

let summary rows =
  let body =
    List.map
      (fun (attr, n, mean, mx) ->
        [ attr; string_of_int n; err_cell (Some mean); err_cell (Some mx) ])
      (attr_stats rows)
  in
  Table.render ~header:[ "attr"; "rows"; "mean err"; "max err" ] body
