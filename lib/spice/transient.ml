module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat

type method_ = Backward_euler | Trapezoidal
type waveform = float -> float

let step ?(t0 = 0.) ?(low = 0.) ~high () t = if t < t0 then low else high

let pulse ?(delay = 0.) ?(rise = 1e-9) ~low ~high ~width ~period () t =
  if t < delay then low
  else begin
    let tau = Float.rem (t -. delay) period in
    if tau < rise then low +. ((high -. low) *. tau /. rise)
    else if tau < rise +. width then high
    else if tau < (2. *. rise) +. width then
      high -. ((high -. low) *. (tau -. rise -. width) /. rise)
    else low
  end

let sine ?(offset = 0.) ~ampl ~freq () t =
  offset +. (ampl *. Float.sin (2. *. Float.pi *. freq *. t))

type result = { times : float array; nodes : (string * float array) list }

exception Step_failed of float

(* Step-acceptance observability: [transient.steps] counts requested
   top-level steps, [transient.solves] every Newton solve attempt
   (including the sub-steps step cutting introduces), and
   [transient.step_cuts] each halving — together they pin the
   controller's accept/retry behaviour for a given deck. *)
let c_steps = Ape_obs.counter "transient.steps"
let c_solves = Ape_obs.counter "transient.solves"
let c_newton_iters = Ape_obs.counter "transient.newton_iters"
let c_step_cuts = Ape_obs.counter "transient.step_cuts"

let max_norm a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. a

module Sp = Ape_util.Sparse

(* Sparse workspace for a whole transient run: the factor's symbolic
   analysis survives across time steps and Newton iterations (one
   pattern for the Jacobian + companion stamps); only the numeric part
   is replayed per iteration. *)
type tr_sparse = {
  ts_plan : Engine.plan;
  ts_jvals : Sp.Real.t;  (* Jacobian + gc·C companion, per iteration *)
  ts_cvals : Sp.Real.t;  (* capacitance stamps at x_prev, per step *)
  mutable ts_fac : Sp.Real.factor option;
}

let tr_sparse netlist index =
  match Backend.current () with
  | Backend.Dense -> None
  | Backend.Sparse ->
    let plan = Engine.plan netlist index in
    let pat = Engine.plan_pattern plan in
    Some
      {
        ts_plan = plan;
        ts_jvals = Sp.Real.create pat;
        ts_cvals = Sp.Real.create pat;
        ts_fac = None;
      }

let tr_sparse_step ts neg_f =
  let fresh () =
    match Sp.Real.factor ts.ts_jvals with
    | exception Sp.Singular -> None
    | fac ->
      ts.ts_fac <- Some fac;
      Some (Sp.Real.solve fac neg_f)
  in
  match ts.ts_fac with
  | None -> fresh ()
  | Some fac -> (
    match Sp.Real.refactor fac ts.ts_jvals with
    | () -> Some (Sp.Real.solve fac neg_f)
    | exception (Sp.Unstable | Sp.Singular) ->
      ts.ts_fac <- None;
      fresh ())

(* Newton solve of F(x) + C·(x - x_prev)/h [BE] = 0 at time t, starting
   from x (modified in place).  For trapezoidal the companion term is
   (2C/h)(x - x_prev) - i_prev where i_prev is the capacitor current at
   the previous time point. *)
let solve_step ?sparse ~method_ ~max_newton ~stimulus ~time ~dt netlist index
    ~x_prev ~icap_prev x =
  let n = Engine.size index in
  Ape_obs.incr c_solves;
  let ok = ref false and iter = ref 0 in
  let c =
    match sparse with
    | None -> Some (Engine.stamp_capacitances netlist index x_prev)
    | Some ts ->
      Engine.sparse_capacitances ts.ts_plan netlist index x_prev ts.ts_cvals;
      None
  in
  let coeff = match method_ with Backward_euler -> 1. | Trapezoidal -> 2. in
  let gc = coeff /. dt in
  let trap_term row =
    match method_ with
    | Backward_euler -> 0.
    | Trapezoidal -> icap_prev.(row)
  in
  while (not !ok) && !iter < max_newton do
    incr iter;
    let step =
      match (sparse, c) with
      | None, Some c -> (
        let f, j =
          Engine.residual_jacobian ~gmin:1e-12 ~time ~stimulus netlist index x
        in
        (* Capacitor companion: i = gc·C·(x - x_prev) - icap_prev_term. *)
        for row = 0 to n - 1 do
          let acc = ref 0. in
          for col = 0 to n - 1 do
            let cv = Rmat.get c row col in
            if cv <> 0. then begin
              acc := !acc +. (gc *. cv *. (x.(col) -. x_prev.(col)));
              Rmat.add_to j row col (gc *. cv)
            end
          done;
          f.(row) <- f.(row) +. !acc -. trap_term row
        done;
        match Rmat.lu_factor j with
        | exception Ape_util.Matrix.Singular -> None
        | lu -> Some (Rmat.lu_solve lu (Array.map (fun v -> -.v) f)))
      | Some ts, _ ->
        let f =
          Engine.sparse_residual ~gmin:1e-12 ~time ~stimulus ts.ts_plan
            netlist index x ts.ts_jvals
        in
        (* Companion stamps ride the shared pattern: the C slots are a
           subset of the plan's union pattern by construction. *)
        Sp.iter
          (Engine.plan_pattern ts.ts_plan)
          (fun s row col ->
            let cv = Sp.Real.get_slot ts.ts_cvals s in
            if cv <> 0. then begin
              f.(row) <- f.(row) +. (gc *. cv *. (x.(col) -. x_prev.(col)));
              Sp.Real.add_slot ts.ts_jvals s (gc *. cv)
            end);
        for row = 0 to n - 1 do
          f.(row) <- f.(row) -. trap_term row
        done;
        tr_sparse_step ts (Array.map (fun v -> -.v) f)
      | None, None -> assert false
    in
    match step with
    | None -> iter := max_newton
    | Some dx ->
      if Array.exists Float.is_nan dx then iter := max_newton
      else begin
        Array.iteri
          (fun i d ->
            let d = Ape_util.Float_ext.clamp ~lo:(-1.) ~hi:1. d in
            x.(i) <- x.(i) +. d)
          dx;
        if max_norm dx < 1e-9 then ok := true
      end
  done;
  Ape_obs.add c_newton_iters !iter;
  if not !ok then None
  else begin
    (* Capacitor current at the accepted point (for trapezoidal). *)
    let icap = Array.make n 0. in
    (match (sparse, c) with
    | None, Some c ->
      for row = 0 to n - 1 do
        let acc = ref 0. in
        for col = 0 to n - 1 do
          let cv = Rmat.get c row col in
          if cv <> 0. then
            acc := !acc +. (gc *. cv *. (x.(col) -. x_prev.(col)))
        done;
        icap.(row) <- !acc -. trap_term row
      done
    | Some ts, _ ->
      Sp.iter
        (Engine.plan_pattern ts.ts_plan)
        (fun s row col ->
          let cv = Sp.Real.get_slot ts.ts_cvals s in
          if cv <> 0. then
            icap.(row) <- icap.(row) +. (gc *. cv *. (x.(col) -. x_prev.(col))));
      for row = 0 to n - 1 do
        icap.(row) <- icap.(row) -. trap_term row
      done
    | None, None -> assert false);
    Some icap
  end

let run ?(method_ = Backward_euler) ?(max_newton = 60) ~stimulus ~tstop ~dt
    (op : Dc.op) =
  if dt <= 0. || tstop <= 0. then invalid_arg "Transient.run: bad times";
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  let node_names = N.nodes netlist in
  let n_steps = int_of_float (Float.ceil (tstop /. dt)) in
  let times = Array.make (n_steps + 1) 0. in
  let store =
    List.map (fun name -> (name, Array.make (n_steps + 1) 0.)) node_names
  in
  let record k x =
    List.iter
      (fun (name, arr) -> arr.(k) <- Engine.node_voltage index x name)
      store
  in
  let x = Array.copy op.Dc.x in
  record 0 x;
  let sparse = tr_sparse netlist index in
  let x_prev = ref (Array.copy x) in
  let icap_prev = ref (Array.make n 0.) in
  for k = 1 to n_steps do
    Ape_obs.incr c_steps;
    let t = float_of_int k *. dt in
    times.(k) <- t;
    (* Step cutting: retry a failing Newton with smaller internal
       sub-steps. *)
    let rec advance ~t_from ~t_to ~depth x_start icap_start =
      let h = t_to -. t_from in
      let x_try = Array.copy x_start in
      match
        solve_step ?sparse ~method_ ~max_newton ~stimulus ~time:t_to ~dt:h
          netlist index ~x_prev:x_start ~icap_prev:icap_start x_try
      with
      | Some icap -> (x_try, icap)
      | None ->
        Ape_obs.incr c_step_cuts;
        if depth >= 8 then raise (Step_failed t_to);
        let mid = 0.5 *. (t_from +. t_to) in
        let x_mid, icap_mid =
          advance ~t_from ~t_to:mid ~depth:(depth + 1) x_start icap_start
        in
        advance ~t_from:mid ~t_to ~depth:(depth + 1) x_mid icap_mid
    in
    let x_new, icap = advance ~t_from:(t -. dt) ~t_to:t ~depth:0 !x_prev !icap_prev in
    Array.blit x_new 0 x 0 n;
    x_prev := x_new;
    icap_prev := icap;
    record k x
  done;
  { times; nodes = store }

let samples result name = List.assoc name result.nodes

let value_at result name t =
  let ys = samples result name in
  let ts = result.times in
  let n = Array.length ts in
  if t <= ts.(0) then ys.(0)
  else if t >= ts.(n - 1) then ys.(n - 1)
  else begin
    (* Fixed step: direct index. *)
    let dt = ts.(1) -. ts.(0) in
    let k = int_of_float (t /. dt) in
    let k = min (n - 2) (max 0 k) in
    let frac = (t -. ts.(k)) /. (ts.(k + 1) -. ts.(k)) in
    Ape_util.Float_ext.lerp ys.(k) ys.(k + 1) frac
  end

let max_slope result name =
  let ys = samples result name and ts = result.times in
  let best = ref 0. in
  for k = 0 to Array.length ys - 2 do
    let dt = ts.(k + 1) -. ts.(k) in
    if dt > 0. then
      best := Float.max !best (Float.abs ((ys.(k + 1) -. ys.(k)) /. dt))
  done;
  !best

let crossing_time ?(rising = true) result name ~level =
  let ys = samples result name and ts = result.times in
  let n = Array.length ys in
  let rec find k =
    if k >= n - 1 then None
    else begin
      let a = ys.(k) and b = ys.(k + 1) in
      let crossed =
        if rising then a < level && b >= level else a > level && b <= level
      in
      if crossed then begin
        let frac = (level -. a) /. (b -. a) in
        Some (Ape_util.Float_ext.lerp ts.(k) ts.(k + 1) frac)
      end
      else find (k + 1)
    end
  in
  find 0

let settling_time result name ~final ~band =
  let ys = samples result name and ts = result.times in
  let n = Array.length ys in
  let tol = Float.abs (band *. final) in
  let rec last_violation k worst =
    if k >= n then worst
    else if Float.abs (ys.(k) -. final) > tol then last_violation (k + 1) (Some k)
    else last_violation (k + 1) worst
  in
  match last_violation 0 None with
  | None -> Some ts.(0)
  | Some k -> if k >= n - 1 then None else Some ts.(k + 1)
