(** Linear-solver engine selection.

    [Dense] is the historical dense-LU path ([Matrix.Rmat]/[Csplit]) and
    stays the differential reference: its arithmetic is bit-for-bit what
    it was before the sparse engine existed.  [Sparse] routes the AC
    prepared path and the DC/transient Newton loops through
    [Ape_util.Sparse]'s symbolic-once/numeric-many LU.

    The default comes from the [APE_ENGINE] environment variable
    (["sparse"] selects the sparse engine, anything else is dense); the
    [--engine] CLI flag overrides it via {!set}.  Selection is read at
    {!Ac.prepare}/solve time, so set it before spawning worker domains. *)

type t = Dense | Sparse

val current : unit -> t
val set : t -> unit

val use : t -> (unit -> 'a) -> 'a
(** Run the thunk under a temporary engine selection (restored on
    exception) — for tests and differential comparisons. *)

val of_string : string -> t option
(** ["dense"]/["sparse"], case-insensitive. *)

val to_string : t -> string
