module N = Ape_circuit.Netlist

type point = { value : float; op : Dc.op }

let c_solves = Ape_obs.counter "sweep.solves"
let c_warm_hits = Ape_obs.counter "sweep.warm_hits"
let c_warm_fallbacks = Ape_obs.counter "sweep.warm_fallbacks"

(* Shared warm-start step: solve with the previous solution as the
   starting point, falling back to the cold strategies when that fails.
   The counters record how often the warm start actually paid off. *)
let solve_warm warm nl =
  Ape_obs.incr c_solves;
  let op =
    match !warm with
    | None -> Dc.solve nl
    | Some x0 -> (
      match Dc.solve ~x0 nl with
      | op ->
        Ape_obs.incr c_warm_hits;
        op
      | exception Dc.No_convergence _ ->
        Ape_obs.incr c_warm_fallbacks;
        Dc.solve nl)
  in
  warm := Some op.Dc.x;
  op

let set_source_dc ~name ~dc netlist =
  let found = ref false in
  let elements =
    List.map
      (fun e ->
        match e with
        | N.Vsource ({ name = n; _ } as v) when String.equal n name ->
          found := true;
          N.Vsource { v with dc }
        | N.Isource ({ name = n; _ } as i) when String.equal n name ->
          found := true;
          N.Isource { i with dc }
        | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Vsource _
        | N.Isource _ | N.Vcvs _ | N.Switch _ ->
          e)
      (N.elements netlist)
  in
  if not !found then raise Not_found;
  N.make ~title:netlist.N.title elements

let run ~source ~values netlist =
  let warm = ref None in
  List.map
    (fun value ->
      let nl = set_source_dc ~name:source ~dc:value netlist in
      { value; op = solve_warm warm nl })
    values

let transfer ~source ~out ~values netlist =
  List.map (fun p -> (p.value, Dc.voltage p.op out)) (run ~source ~values netlist)

let crossing ~source ~out ~level ~lo ~hi netlist =
  let warm = ref None in
  let solve v =
    let nl = set_source_dc ~name:source ~dc:v netlist in
    let op = solve_warm warm nl in
    Dc.voltage op out -. level
  in
  (* [solve] threads the warm-start state, so the two endpoint solves
     must be sequenced explicitly: a [let ... and ...] binding leaves
     the evaluation order unspecified, and solving [hi] first would
     warm-start the [lo] endpoint (and the whole bisection) from the
     wrong side. *)
  let f_lo = solve lo in
  let f_hi = solve hi in
  if f_lo = 0. then Some lo
  else if f_hi = 0. then Some hi
  else if f_lo *. f_hi > 0. then None
  else begin
    (* Warm-started bisection: 40 halvings reach machine-level input
       resolution on any practical range. *)
    let rec bisect lo hi f_lo k =
      if k = 0 then Some (0.5 *. (lo +. hi))
      else begin
        let mid = 0.5 *. (lo +. hi) in
        let f_mid = solve mid in
        if f_mid = 0. then Some mid
        else if f_lo *. f_mid < 0. then bisect lo mid f_lo (k - 1)
        else bisect mid hi f_mid (k - 1)
      end
    in
    bisect lo hi f_lo 40
  end
