type t = Dense | Sparse

let of_string s =
  match String.lowercase_ascii s with
  | "dense" -> Some Dense
  | "sparse" -> Some Sparse
  | _ -> None

let to_string = function Dense -> "dense" | Sparse -> "sparse"

let default () =
  match Sys.getenv_opt "APE_ENGINE" with
  | Some s -> ( match of_string s with Some e -> e | None -> Dense)
  | None -> Dense

let state = ref None

let current () =
  match !state with
  | Some e -> e
  | None ->
    let e = default () in
    state := Some e;
    e

let set e = state := Some e

let use e f =
  let saved = current () in
  set e;
  Fun.protect ~finally:(fun () -> set saved) f
