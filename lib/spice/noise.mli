(** Small-signal noise analysis.

    Each noisy element contributes a current-noise power spectral
    density between two terminals (resistor thermal 4kT/R; MOSFET channel
    thermal 4kT·(2/3)·gm plus 1/f flicker KF·I_D^AF/(C_ox·L_eff²·f)
    referred to the channel); contributions add in power.

    Transfer impedances come from {e reciprocity}: with [y] solving the
    adjoint system [Aᵀy = e_out], the impedance seen by a 1 A source
    from node [a] to node [b] is [y(b) − y(a)] — one transposed solve
    per frequency covers every source, however many the deck has
    (counted under [noise.adjoint_solves]).  The system is factored
    through the backend-aware {!Ac.system_at}, so [--engine sparse]
    covers noise too.  {!output_noise_direct_prepared} keeps the
    historical one-solve-per-source evaluation as an independent
    reference (counted under [noise.direct_solves]).

    Input-referred noise divides by the circuit's own signal gain (from
    the netlist's declared AC excitation).

    All routines run on the prepared AC engine ({!Ac.prepare}): the
    [_prepared] variants reuse a caller-supplied preparation (one
    stamping for a whole noise integration plus any other measurements
    on the same operating point); the [Dc.op] forms prepare once per
    call. *)

type contribution = {
  element : string;
  psd : float;  (** contribution at the output, V²/Hz *)
}

val noise_sources :
  Dc.op ->
  float ->
  (string * Ape_circuit.Netlist.node * Ape_circuit.Netlist.node * float) list
(** [(element, a, b, psd)] of every noisy element at one frequency: a
    current-noise PSD (A²/Hz) injected from node [a] to node [b].
    Exposed for the bench's solve-count accounting. *)

val output_noise :
  out:Ape_circuit.Netlist.node ->
  freq:float ->
  Dc.op ->
  float * contribution list
(** Total output noise PSD (V²/Hz) at [freq] and the per-element
    breakdown, sorted descending. *)

val output_noise_prepared :
  out:Ape_circuit.Netlist.node ->
  freq:float ->
  Ac.prepared ->
  float * contribution list
(** {!output_noise} on a shared preparation. *)

val output_noise_direct_prepared :
  out:Ape_circuit.Netlist.node ->
  freq:float ->
  Ac.prepared ->
  float * contribution list
(** Reference evaluation with one direct solve per source instead of
    the single adjoint solve; agrees with {!output_noise_prepared} to
    rounding (the differential suite pins ≤ 1e-10 relative). *)

val input_referred :
  out:Ape_circuit.Netlist.node -> freq:float -> Dc.op -> float
(** Input-referred noise density, V/√Hz: output noise voltage density
    divided by the gain from the netlist's AC excitation to [out].
    Raises [Division_by_zero] when that gain is 0. *)

val input_referred_prepared :
  out:Ape_circuit.Netlist.node -> freq:float -> Ac.prepared -> float
(** {!input_referred} on a shared preparation. *)

val integrated_output :
  out:Ape_circuit.Netlist.node ->
  fstart:float ->
  fstop:float ->
  ?points_per_decade:int ->
  Dc.op ->
  float
(** RMS output noise over a band (trapezoidal integration of the PSD on
    a log grid), volts. *)

val integrated_output_prepared :
  out:Ape_circuit.Netlist.node ->
  fstart:float ->
  fstop:float ->
  ?points_per_decade:int ->
  Ac.prepared ->
  float
(** {!integrated_output} on a shared preparation. *)
