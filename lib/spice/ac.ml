module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat

type solution = { freq : float; x : Complex.t array }
type sweep = { op : Dc.op; points : solution list }

let c_prepare = Ape_obs.counter "ac.prepare"
let c_solve_at = Ape_obs.counter "ac.solve_at"
let c_solve_prepared = Ape_obs.counter "ac.solve_prepared"
let c_sweep_points = Ape_obs.counter "ac.sweep_points"
let c_panels = Ape_obs.counter "ac.panels"
let c_workspaces = Ape_obs.counter "ac.workspaces"

(* Width of the frequency panels blocked sweeps solve at once under the
   sparse backend (width 1 selects the scalar per-frequency path; the
   dense backend always solves per frequency).  Results are bit-identical
   for every width — the panel kernel keeps lane arithmetic independent —
   so this is purely a throughput knob. *)
let default_panel_width = 8

let panel_width_state =
  ref
    (match Sys.getenv_opt "APE_PANEL_WIDTH" with
    | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | Some _ | None -> default_panel_width)
    | None -> default_panel_width)

let panel_width () = !panel_width_state

let set_panel_width k =
  if k < 1 then invalid_arg "Ac.set_panel_width";
  panel_width_state := k

let complex re im = { Complex.re; im }

(* RHS: AC source magnitudes (constant over frequency). *)
let stamp_rhs (op : Dc.op) =
  let index = op.Dc.index in
  let n = Engine.size index in
  let b = Array.make n Complex.zero in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; ac; _ } when ac <> 0. ->
        let br = Engine.branch_id_exn index ~analysis:"ac" name in
        b.(br) <- Complex.add b.(br) (complex ac 0.)
      | N.Isource { p; n = nn; ac; _ } when ac <> 0. ->
        (* AC current leaves p, enters n; the residual convention puts
           source injections on the RHS with opposite sign. *)
        (match Engine.node_id index p with
        | Some i -> b.(i) <- Complex.sub b.(i) (complex ac 0.)
        | None -> ());
        (match Engine.node_id index nn with
        | Some i -> b.(i) <- Complex.add b.(i) (complex ac 0.)
        | None -> ())
      | N.Vsource _ | N.Isource _ | N.Mosfet _ | N.Resistor _
      | N.Capacitor _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements op.Dc.netlist);
  b

let solve_at (op : Dc.op) freq =
  Ape_obs.incr c_solve_at;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  (* Real part: DC Jacobian at the operating point (gmin kept tiny). *)
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gre = Rmat.get g i j and cim = Rmat.get c i j in
      if gre <> 0. || cim <> 0. then
        Cmat.set a i j (complex gre (omega *. cim))
    done
  done;
  let b = stamp_rhs op in
  { freq; x = Cmat.solve a b }

(* ------------------------------------------------------------------ *)
(* Prepared solves: stamp once, evaluate per frequency.                *)
(* ------------------------------------------------------------------ *)

module Sp = Ape_util.Sparse

type dense_prep = {
  g : float array array;
      (** conductance (DC Jacobian), read-only after prepare *)
  c : float array array;  (** capacitance, read-only after prepare *)
  work : Ape_util.Matrix.Csplit.t;
      (** G + jωC assembly (split re/im), overwritten per solve *)
  perm : int array;  (** LU pivot workspace *)
}

type sparse_prep = {
  sp_g : Sp.Real.t;  (** conductance slots, read-only after prepare *)
  sp_c : Sp.Real.t;  (** capacitance slots, read-only after prepare *)
  sp_vals : Sp.Csplit.t;  (** G + jωC assembly, overwritten per solve *)
  sp_fac : Sp.Csplit.factor;
      (** symbolic analysis pinned at ω = 0 (the DC Jacobian); numeric
          part refactored per frequency *)
}

type impl = Dense_prep of dense_prep | Sparse_prep of sparse_prep

(* One domain's worth of blocked-sweep scratch: everything a panel (or a
   scalar fallback lane) mutates, cloned off the read-only stamps so
   several domains can work one preparation concurrently.  Contents are
   fully overwritten before every use, so which workspace serves which
   panel can never show up in the results. *)
type workspace =
  | Dense_ws of { w_work : Ape_util.Matrix.Csplit.t; w_perm : int array }
  | Sparse_ws of {
      w_vals : Sp.Csplit.t;  (** scalar assembly, for fallback lanes *)
      w_fac : Sp.Csplit.factor;  (** private numeric clone *)
      w_panel : Sp.Csplit.Panel.vals;
      w_pfac : Sp.Csplit.Panel.pfactor;
    }

type prepared = {
  p_op : Dc.op;
  size : int;
  rhs : Complex.t array;  (** AC excitation pattern, read-only *)
  impl : impl;
  mutable p_ws : (int * workspace) option;
      (** cached (panel width, workspace) for single-domain blocked
          solves; lazily (re)built when the width changes *)
}

let prepare (op : Dc.op) =
  Ape_obs.incr c_prepare;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  let impl =
    match Backend.current () with
    | Backend.Dense ->
      let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
      let c = Engine.stamp_capacitances netlist index op.Dc.x in
      Dense_prep
        {
          (* Plain float snapshots: row access in the per-frequency
             assembly loop goes straight to unboxed storage, no functor
             call. *)
          g = Rmat.to_arrays g;
          c = Rmat.to_arrays c;
          work = Ape_util.Matrix.Csplit.create n;
          perm = Array.make n 0;
        }
    | Backend.Sparse ->
      let plan = Engine.plan netlist index in
      let pat = Engine.plan_pattern plan in
      let sp_g = Sp.Real.create pat in
      let (_ : float array) =
        Engine.sparse_residual ~gmin:1e-12 plan netlist index op.Dc.x sp_g
      in
      let sp_c = Sp.Real.create pat in
      Engine.sparse_capacitances plan netlist index op.Dc.x sp_c;
      let sp_vals = Sp.Csplit.create pat in
      (* Pivot order fixed at ω = 0, i.e. on the DC Jacobian alone —
         nonsingular by construction (the operating point converged) and
         the most stable basis for the low-frequency end of a sweep.
         Every per-frequency solve is then a numeric refactorisation. *)
      Sp.Csplit.assemble_gc sp_vals ~g:sp_g ~c:sp_c ~omega:0.;
      let sp_fac = Sp.Csplit.factor sp_vals in
      Sparse_prep { sp_g; sp_c; sp_vals; sp_fac }
  in
  { p_op = op; size = n; rhs = stamp_rhs op; impl; p_ws = None }

let op p = p.p_op

(* ------------------------- dense path ----------------------------- *)

(* Fill [dst] with G + jωC.  The entry values are exactly the ones
   {!solve_at} assembles: when both stamps are zero the complex entry is
   (0, ω·0) = Complex.zero, so skipping the sparsity test changes
   nothing bitwise. *)
let assemble d ~n omega dst =
  for i = 0 to n - 1 do
    let gi = d.g.(i) and ci = d.c.(i) in
    for j = 0 to n - 1 do
      Cmat.set dst i j (complex gi.(j) (omega *. ci.(j)))
    done
  done

(* Same fill into a split-storage workspace — identical entry values,
   just stored as separate re/im floats for the allocation-free LU. *)
let assemble_split d ~n omega (dst : Ape_util.Matrix.Csplit.t) =
  for i = 0 to n - 1 do
    Array.blit d.g.(i) 0 dst.Ape_util.Matrix.Csplit.re.(i) 0 n;
    let ci = d.c.(i) and dim = dst.Ape_util.Matrix.Csplit.im.(i) in
    for j = 0 to n - 1 do
      dim.(j) <- omega *. ci.(j)
    done
  done

(* Core evaluation given an assembly workspace and pivot workspace; the
   solution vector escapes, so it is the one unavoidable allocation. *)
let dense_solve_in p d ~work ~perm freq =
  assemble_split d ~n:p.size (2. *. Float.pi *. freq) work;
  Ape_util.Matrix.Csplit.factor_in_place work perm;
  { freq; x = Ape_util.Matrix.Csplit.solve work perm p.rhs }

(* ------------------------- sparse path ---------------------------- *)

(* Per-frequency evaluation: assemble G + jωC into the slot values and
   replay the ω=0 pivot sequence numerically.  When the frozen pivots go
   bad at some frequency (values far from the DC basis), fall back to a
   local fresh pivoting factorisation for that point only — [fac] is
   left untouched by the fallback, so a sweep's points never depend on
   the order frequencies are visited in. *)
let sparse_solve p s ~vals ~fac freq =
  let omega = 2. *. Float.pi *. freq in
  Sp.Csplit.assemble_gc vals ~g:s.sp_g ~c:s.sp_c ~omega;
  let x =
    match Sp.Csplit.refactor fac vals with
    | () -> Sp.Csplit.solve fac p.rhs
    | exception Sp.Unstable -> Sp.Csplit.solve (Sp.Csplit.factor vals) p.rhs
  in
  { freq; x }

let matrix_at p freq =
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create p.size p.size in
  (match p.impl with
  | Dense_prep d -> assemble d ~n:p.size omega a
  | Sparse_prep s ->
    (* Structural entries carry the same bitwise values as the dense
       assembly (same stamp adds in the same order); entries outside the
       pattern are exactly the dense path's (0, ω·0) = zero. *)
    Sp.iter
      (Sp.Real.pattern s.sp_g)
      (fun slot row col ->
        let gv = Sp.Real.get_slot s.sp_g slot
        and cv = Sp.Real.get_slot s.sp_c slot in
        Cmat.set a row col (complex gv (omega *. cv))));
  a

let solve_prepared p freq =
  Ape_obs.incr c_solve_prepared;
  match p.impl with
  | Dense_prep d -> dense_solve_in p d ~work:d.work ~perm:d.perm freq
  | Sparse_prep s -> sparse_solve p s ~vals:s.sp_vals ~fac:s.sp_fac freq

(* Parallel-safe variant: fresh workspaces (for sparse, a private clone
   of the numeric factor over the shared symbolic skeleton), touching
   only the read-only parts of [p] — and arithmetically identical to
   {!solve_prepared}, so every [~jobs] value produces the same
   bit-identical points. *)
let solve_fresh p freq =
  Ape_obs.incr c_solve_prepared;
  Ape_obs.incr c_workspaces;
  match p.impl with
  | Dense_prep d ->
    dense_solve_in p d
      ~work:(Ape_util.Matrix.Csplit.create p.size)
      ~perm:(Array.make p.size 0) freq
  | Sparse_prep s ->
    sparse_solve p s
      ~vals:(Sp.Csplit.create (Sp.Real.pattern s.sp_g))
      ~fac:(Sp.Csplit.clone s.sp_fac) freq

(* ------------------------- blocked path --------------------------- *)

let create_workspace p ~k =
  Ape_obs.incr c_workspaces;
  match p.impl with
  | Dense_prep _ ->
    Dense_ws
      { w_work = Ape_util.Matrix.Csplit.create p.size;
        w_perm = Array.make p.size 0 }
  | Sparse_prep s ->
    let pat = Sp.Real.pattern s.sp_g in
    Sparse_ws
      { w_vals = Sp.Csplit.create pat;
        w_fac = Sp.Csplit.clone s.sp_fac;
        w_panel = Sp.Csplit.Panel.create pat ~k;
        w_pfac = Sp.Csplit.Panel.prepare s.sp_fac ~k }

(* The cached single-domain workspace (not safe to share across domains;
   parallel sweeps draw from a per-call pool instead). *)
let cached_workspace p ~k =
  match p.p_ws with
  | Some (k', ws) when k' = k -> ws
  | Some _ | None ->
    let ws = create_workspace p ~k in
    p.p_ws <- Some (k, ws);
    ws

(* Solve [freqs.(lo .. lo+len-1)] into the same indices of [dst] using
   one workspace.  Sparse panels of the workspace's width; a lane whose
   frozen pivots go bad is re-solved through the exact scalar
   refactor-or-refactor-fresh path, so every point is bit-identical to
   [solve_prepared] whatever the panel width. *)
let solve_block p ws freqs lo len (dst : solution array) =
  match (p.impl, ws) with
  | Dense_prep d, Dense_ws w ->
    for i = lo to lo + len - 1 do
      Ape_obs.incr c_solve_prepared;
      dst.(i) <- dense_solve_in p d ~work:w.w_work ~perm:w.w_perm freqs.(i)
    done
  | Sparse_prep s, Sparse_ws w ->
    let k = Sp.Csplit.Panel.width w.w_panel in
    let pos = ref lo in
    while !pos < lo + len do
      let m = min k (lo + len - !pos) in
      if m = 1 then begin
        Ape_obs.incr c_solve_prepared;
        dst.(!pos) <- sparse_solve p s ~vals:w.w_vals ~fac:w.w_fac freqs.(!pos)
      end
      else begin
        Ape_obs.incr c_panels;
        Ape_obs.add c_solve_prepared m;
        let omegas =
          Array.init m (fun kk -> 2. *. Float.pi *. freqs.(!pos + kk))
        in
        Sp.Csplit.Panel.assemble_gc w.w_panel ~g:s.sp_g ~c:s.sp_c ~omegas;
        Sp.Csplit.Panel.refactor w.w_pfac w.w_panel;
        let xs = Sp.Csplit.Panel.solve w.w_pfac p.rhs in
        for kk = 0 to m - 1 do
          let i = !pos + kk in
          if Sp.Csplit.Panel.ok w.w_pfac kk then
            dst.(i) <- { freq = freqs.(i); x = xs.(kk) }
          else
            dst.(i) <- sparse_solve p s ~vals:w.w_vals ~fac:w.w_fac freqs.(i)
        done
      end;
      pos := !pos + m
    done
  | Dense_prep _, Sparse_ws _ | Sparse_prep _, Dense_ws _ -> assert false

let dummy_solution = { freq = 0.; x = [||] }

let solve_many p (freqs : float array) =
  let n = Array.length freqs in
  let dst = Array.make n dummy_solution in
  if n > 0 then solve_block p (cached_workspace p ~k:(panel_width ())) freqs 0 n dst;
  dst

(* ------------------------- factored systems ----------------------- *)

(* A factored G + jωC at one frequency, for analyses that solve many
   right-hand sides (and their adjoints) themselves — e.g. noise.
   Backend-aware, unlike the dense-only {!matrix_at}. *)
type system =
  | Dense_sys of { sy_work : Ape_util.Matrix.Csplit.t; sy_perm : int array }
  | Sparse_sys of { sy_fac : Sp.Csplit.factor }

let system_at p freq =
  match p.impl with
  | Dense_prep d ->
    let work = Ape_util.Matrix.Csplit.create p.size in
    let perm = Array.make p.size 0 in
    assemble_split d ~n:p.size (2. *. Float.pi *. freq) work;
    Ape_util.Matrix.Csplit.factor_in_place work perm;
    Dense_sys { sy_work = work; sy_perm = perm }
  | Sparse_prep s ->
    let omega = 2. *. Float.pi *. freq in
    let vals = Sp.Csplit.create (Sp.Real.pattern s.sp_g) in
    Sp.Csplit.assemble_gc vals ~g:s.sp_g ~c:s.sp_c ~omega;
    let fac = Sp.Csplit.clone s.sp_fac in
    let fac =
      match Sp.Csplit.refactor fac vals with
      | () -> fac
      | exception Sp.Unstable -> Sp.Csplit.factor vals
    in
    Sparse_sys { sy_fac = fac }

let system_solve sys b =
  match sys with
  | Dense_sys { sy_work; sy_perm } -> Ape_util.Matrix.Csplit.solve sy_work sy_perm b
  | Sparse_sys { sy_fac } -> Sp.Csplit.solve sy_fac b

let system_solve_transposed sys b =
  match sys with
  | Dense_sys { sy_work; sy_perm } ->
    Ape_util.Matrix.Csplit.solve_transposed sy_work sy_perm b
  | Sparse_sys { sy_fac } -> Sp.Csplit.solve_transposed sy_fac b

let voltage (op : Dc.op) solution node =
  match Engine.node_id op.Dc.index node with
  | None -> Complex.zero
  | Some i -> solution.x.(i)

let voltage_prepared p solution node = voltage p.p_op solution node

let magnitude_prepared ~node p freq =
  Complex.norm (voltage_prepared p (solve_prepared p freq) node)

let sweep_frequencies ?(points_per_decade = 10) ~fstart ~fstop () =
  if fstart <= 0. || fstop <= fstart then invalid_arg "Ac.sweep: bad range";
  let decades = Float.log10 (fstop /. fstart) in
  let n =
    max 2 (1 + int_of_float (Float.ceil (decades *. float_of_int points_per_decade)))
  in
  Ape_util.Float_ext.logspace fstart fstop n

let sweep_prepared ?(jobs = 1) p freqs =
  let jobs = if jobs = 0 then Ape_util.Pool.recommended_jobs () else jobs in
  let freqs = Array.of_list freqs in
  let n = Array.length freqs in
  Ape_obs.add c_sweep_points n;
  let k = panel_width () in
  let points =
    if jobs <= 1 || n <= k then begin
      let dst = Array.make n dummy_solution in
      if n > 0 then solve_block p (cached_workspace p ~k) freqs 0 n dst;
      dst
    end
    else begin
      (* Panels are k-aligned index ranges of the grid — fixed by (n, k)
         alone, never by the worker count — and workspace contents are
         fully overwritten per panel, so every [jobs] value produces the
         same bit-identical points.  Workspaces are pooled per call: one
         clone per domain that actually runs, not one per point. *)
      let npanels = (n + k - 1) / k in
      let dst = Array.make n dummy_solution in
      let lock = Mutex.create () in
      let free = ref [] in
      let with_ws f =
        Mutex.lock lock;
        let ws =
          match !free with
          | [] -> None
          | w :: tl ->
            free := tl;
            Some w
        in
        Mutex.unlock lock;
        let ws = match ws with Some w -> w | None -> create_workspace p ~k in
        Fun.protect
          ~finally:(fun () ->
            Mutex.lock lock;
            free := ws :: !free;
            Mutex.unlock lock)
          (fun () -> f ws)
      in
      ignore
        (Ape_util.Pool.map ~jobs npanels (fun pi ->
             let lo = pi * k in
             let len = min k (n - lo) in
             with_ws (fun ws -> solve_block p ws freqs lo len dst)));
      dst
    end
  in
  { op = p.p_op; points = Array.to_list points }

let sweep ?jobs ?points_per_decade ~fstart ~fstop op =
  let freqs = sweep_frequencies ?points_per_decade ~fstart ~fstop () in
  sweep_prepared ?jobs (prepare op) freqs

let transfer ~node sweep =
  List.map (fun s -> (s.freq, voltage sweep.op s node)) sweep.points

let magnitude_at ~node op freq =
  Complex.norm (voltage op (solve_at op freq) node)
