module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat

type solution = { freq : float; x : Complex.t array }
type sweep = { op : Dc.op; points : solution list }

let c_prepare = Ape_obs.counter "ac.prepare"
let c_solve_at = Ape_obs.counter "ac.solve_at"
let c_solve_prepared = Ape_obs.counter "ac.solve_prepared"
let c_sweep_points = Ape_obs.counter "ac.sweep_points"

let complex re im = { Complex.re; im }

(* RHS: AC source magnitudes (constant over frequency). *)
let stamp_rhs (op : Dc.op) =
  let index = op.Dc.index in
  let n = Engine.size index in
  let b = Array.make n Complex.zero in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; ac; _ } when ac <> 0. ->
        let br = Engine.branch_id_exn index ~analysis:"ac" name in
        b.(br) <- Complex.add b.(br) (complex ac 0.)
      | N.Isource { p; n = nn; ac; _ } when ac <> 0. ->
        (* AC current leaves p, enters n; the residual convention puts
           source injections on the RHS with opposite sign. *)
        (match Engine.node_id index p with
        | Some i -> b.(i) <- Complex.sub b.(i) (complex ac 0.)
        | None -> ());
        (match Engine.node_id index nn with
        | Some i -> b.(i) <- Complex.add b.(i) (complex ac 0.)
        | None -> ())
      | N.Vsource _ | N.Isource _ | N.Mosfet _ | N.Resistor _
      | N.Capacitor _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements op.Dc.netlist);
  b

let solve_at (op : Dc.op) freq =
  Ape_obs.incr c_solve_at;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  (* Real part: DC Jacobian at the operating point (gmin kept tiny). *)
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gre = Rmat.get g i j and cim = Rmat.get c i j in
      if gre <> 0. || cim <> 0. then
        Cmat.set a i j (complex gre (omega *. cim))
    done
  done;
  let b = stamp_rhs op in
  { freq; x = Cmat.solve a b }

(* ------------------------------------------------------------------ *)
(* Prepared solves: stamp once, evaluate per frequency.                *)
(* ------------------------------------------------------------------ *)

module Sp = Ape_util.Sparse

type dense_prep = {
  g : float array array;
      (** conductance (DC Jacobian), read-only after prepare *)
  c : float array array;  (** capacitance, read-only after prepare *)
  work : Ape_util.Matrix.Csplit.t;
      (** G + jωC assembly (split re/im), overwritten per solve *)
  perm : int array;  (** LU pivot workspace *)
}

type sparse_prep = {
  sp_g : Sp.Real.t;  (** conductance slots, read-only after prepare *)
  sp_c : Sp.Real.t;  (** capacitance slots, read-only after prepare *)
  sp_vals : Sp.Csplit.t;  (** G + jωC assembly, overwritten per solve *)
  sp_fac : Sp.Csplit.factor;
      (** symbolic analysis pinned at ω = 0 (the DC Jacobian); numeric
          part refactored per frequency *)
}

type impl = Dense_prep of dense_prep | Sparse_prep of sparse_prep

type prepared = {
  p_op : Dc.op;
  size : int;
  rhs : Complex.t array;  (** AC excitation pattern, read-only *)
  impl : impl;
}

let prepare (op : Dc.op) =
  Ape_obs.incr c_prepare;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  let impl =
    match Backend.current () with
    | Backend.Dense ->
      let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
      let c = Engine.stamp_capacitances netlist index op.Dc.x in
      Dense_prep
        {
          (* Plain float snapshots: row access in the per-frequency
             assembly loop goes straight to unboxed storage, no functor
             call. *)
          g = Rmat.to_arrays g;
          c = Rmat.to_arrays c;
          work = Ape_util.Matrix.Csplit.create n;
          perm = Array.make n 0;
        }
    | Backend.Sparse ->
      let plan = Engine.plan netlist index in
      let pat = Engine.plan_pattern plan in
      let sp_g = Sp.Real.create pat in
      let (_ : float array) =
        Engine.sparse_residual ~gmin:1e-12 plan netlist index op.Dc.x sp_g
      in
      let sp_c = Sp.Real.create pat in
      Engine.sparse_capacitances plan netlist index op.Dc.x sp_c;
      let sp_vals = Sp.Csplit.create pat in
      (* Pivot order fixed at ω = 0, i.e. on the DC Jacobian alone —
         nonsingular by construction (the operating point converged) and
         the most stable basis for the low-frequency end of a sweep.
         Every per-frequency solve is then a numeric refactorisation. *)
      Sp.Csplit.assemble_gc sp_vals ~g:sp_g ~c:sp_c ~omega:0.;
      let sp_fac = Sp.Csplit.factor sp_vals in
      Sparse_prep { sp_g; sp_c; sp_vals; sp_fac }
  in
  { p_op = op; size = n; rhs = stamp_rhs op; impl }

let op p = p.p_op

(* ------------------------- dense path ----------------------------- *)

(* Fill [dst] with G + jωC.  The entry values are exactly the ones
   {!solve_at} assembles: when both stamps are zero the complex entry is
   (0, ω·0) = Complex.zero, so skipping the sparsity test changes
   nothing bitwise. *)
let assemble d ~n omega dst =
  for i = 0 to n - 1 do
    let gi = d.g.(i) and ci = d.c.(i) in
    for j = 0 to n - 1 do
      Cmat.set dst i j (complex gi.(j) (omega *. ci.(j)))
    done
  done

(* Same fill into a split-storage workspace — identical entry values,
   just stored as separate re/im floats for the allocation-free LU. *)
let assemble_split d ~n omega (dst : Ape_util.Matrix.Csplit.t) =
  for i = 0 to n - 1 do
    Array.blit d.g.(i) 0 dst.Ape_util.Matrix.Csplit.re.(i) 0 n;
    let ci = d.c.(i) and dim = dst.Ape_util.Matrix.Csplit.im.(i) in
    for j = 0 to n - 1 do
      dim.(j) <- omega *. ci.(j)
    done
  done

(* Core evaluation given an assembly workspace and pivot workspace; the
   solution vector escapes, so it is the one unavoidable allocation. *)
let dense_solve_in p d ~work ~perm freq =
  assemble_split d ~n:p.size (2. *. Float.pi *. freq) work;
  Ape_util.Matrix.Csplit.factor_in_place work perm;
  { freq; x = Ape_util.Matrix.Csplit.solve work perm p.rhs }

(* ------------------------- sparse path ---------------------------- *)

(* Per-frequency evaluation: assemble G + jωC into the slot values and
   replay the ω=0 pivot sequence numerically.  When the frozen pivots go
   bad at some frequency (values far from the DC basis), fall back to a
   local fresh pivoting factorisation for that point only — [fac] is
   left untouched by the fallback, so a sweep's points never depend on
   the order frequencies are visited in. *)
let sparse_solve p s ~vals ~fac freq =
  let omega = 2. *. Float.pi *. freq in
  Sp.Csplit.assemble_gc vals ~g:s.sp_g ~c:s.sp_c ~omega;
  let x =
    match Sp.Csplit.refactor fac vals with
    | () -> Sp.Csplit.solve fac p.rhs
    | exception Sp.Unstable -> Sp.Csplit.solve (Sp.Csplit.factor vals) p.rhs
  in
  { freq; x }

let matrix_at p freq =
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create p.size p.size in
  (match p.impl with
  | Dense_prep d -> assemble d ~n:p.size omega a
  | Sparse_prep s ->
    (* Structural entries carry the same bitwise values as the dense
       assembly (same stamp adds in the same order); entries outside the
       pattern are exactly the dense path's (0, ω·0) = zero. *)
    Sp.iter
      (Sp.Real.pattern s.sp_g)
      (fun slot row col ->
        let gv = Sp.Real.get_slot s.sp_g slot
        and cv = Sp.Real.get_slot s.sp_c slot in
        Cmat.set a row col (complex gv (omega *. cv))));
  a

let solve_prepared p freq =
  Ape_obs.incr c_solve_prepared;
  match p.impl with
  | Dense_prep d -> dense_solve_in p d ~work:d.work ~perm:d.perm freq
  | Sparse_prep s -> sparse_solve p s ~vals:s.sp_vals ~fac:s.sp_fac freq

(* Parallel-safe variant: fresh workspaces (for sparse, a private clone
   of the numeric factor over the shared symbolic skeleton), touching
   only the read-only parts of [p] — and arithmetically identical to
   {!solve_prepared}, so every [~jobs] value produces the same
   bit-identical points. *)
let solve_fresh p freq =
  Ape_obs.incr c_solve_prepared;
  match p.impl with
  | Dense_prep d ->
    dense_solve_in p d
      ~work:(Ape_util.Matrix.Csplit.create p.size)
      ~perm:(Array.make p.size 0) freq
  | Sparse_prep s ->
    sparse_solve p s
      ~vals:(Sp.Csplit.create (Sp.Real.pattern s.sp_g))
      ~fac:(Sp.Csplit.clone s.sp_fac) freq

let voltage (op : Dc.op) solution node =
  match Engine.node_id op.Dc.index node with
  | None -> Complex.zero
  | Some i -> solution.x.(i)

let voltage_prepared p solution node = voltage p.p_op solution node

let magnitude_prepared ~node p freq =
  Complex.norm (voltage_prepared p (solve_prepared p freq) node)

let sweep_frequencies ?(points_per_decade = 10) ~fstart ~fstop () =
  if fstart <= 0. || fstop <= fstart then invalid_arg "Ac.sweep: bad range";
  let decades = Float.log10 (fstop /. fstart) in
  let n =
    max 2 (1 + int_of_float (Float.ceil (decades *. float_of_int points_per_decade)))
  in
  Ape_util.Float_ext.logspace fstart fstop n

let sweep_prepared ?(jobs = 1) p freqs =
  let jobs = if jobs = 0 then Ape_util.Pool.recommended_jobs () else jobs in
  let freqs = Array.of_list freqs in
  let n = Array.length freqs in
  Ape_obs.add c_sweep_points n;
  let points =
    if jobs <= 1 then Array.map (solve_prepared p) freqs
    else
      (* Workspaces must not be shared across domains; [solve_fresh]
         reads only the immutable stamps, so every jobs value produces
         the same (bit-identical) points. *)
      Ape_util.Pool.map ~jobs n (fun i -> solve_fresh p freqs.(i))
  in
  { op = p.p_op; points = Array.to_list points }

let sweep ?jobs ?points_per_decade ~fstart ~fstop op =
  let freqs = sweep_frequencies ?points_per_decade ~fstart ~fstop () in
  sweep_prepared ?jobs (prepare op) freqs

let transfer ~node sweep =
  List.map (fun s -> (s.freq, voltage sweep.op s node)) sweep.points

let magnitude_at ~node op freq =
  Complex.norm (voltage op (solve_at op freq) node)
