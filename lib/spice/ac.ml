module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat

type solution = { freq : float; x : Complex.t array }
type sweep = { op : Dc.op; points : solution list }

let c_prepare = Ape_obs.counter "ac.prepare"
let c_solve_at = Ape_obs.counter "ac.solve_at"
let c_solve_prepared = Ape_obs.counter "ac.solve_prepared"
let c_sweep_points = Ape_obs.counter "ac.sweep_points"

let complex re im = { Complex.re; im }

(* RHS: AC source magnitudes (constant over frequency). *)
let stamp_rhs (op : Dc.op) =
  let index = op.Dc.index in
  let n = Engine.size index in
  let b = Array.make n Complex.zero in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; ac; _ } when ac <> 0. ->
        let br = Engine.branch_id_exn index ~analysis:"ac" name in
        b.(br) <- Complex.add b.(br) (complex ac 0.)
      | N.Isource { p; n = nn; ac; _ } when ac <> 0. ->
        (* AC current leaves p, enters n; the residual convention puts
           source injections on the RHS with opposite sign. *)
        (match Engine.node_id index p with
        | Some i -> b.(i) <- Complex.sub b.(i) (complex ac 0.)
        | None -> ());
        (match Engine.node_id index nn with
        | Some i -> b.(i) <- Complex.add b.(i) (complex ac 0.)
        | None -> ())
      | N.Vsource _ | N.Isource _ | N.Mosfet _ | N.Resistor _
      | N.Capacitor _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements op.Dc.netlist);
  b

let solve_at (op : Dc.op) freq =
  Ape_obs.incr c_solve_at;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  (* Real part: DC Jacobian at the operating point (gmin kept tiny). *)
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gre = Rmat.get g i j and cim = Rmat.get c i j in
      if gre <> 0. || cim <> 0. then
        Cmat.set a i j (complex gre (omega *. cim))
    done
  done;
  let b = stamp_rhs op in
  { freq; x = Cmat.solve a b }

(* ------------------------------------------------------------------ *)
(* Prepared solves: stamp once, evaluate per frequency.                *)
(* ------------------------------------------------------------------ *)

type prepared = {
  p_op : Dc.op;
  size : int;
  g : float array array;
      (** conductance (DC Jacobian), read-only after prepare *)
  c : float array array;  (** capacitance, read-only after prepare *)
  rhs : Complex.t array;  (** AC excitation pattern, read-only *)
  work : Ape_util.Matrix.Csplit.t;
      (** G + jωC assembly (split re/im), overwritten per solve *)
  perm : int array;  (** LU pivot workspace *)
}

let prepare (op : Dc.op) =
  Ape_obs.incr c_prepare;
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  {
    p_op = op;
    size = n;
    (* Plain float snapshots: row access in the per-frequency assembly
       loop goes straight to unboxed storage, no functor call. *)
    g = Rmat.to_arrays g;
    c = Rmat.to_arrays c;
    rhs = stamp_rhs op;
    work = Ape_util.Matrix.Csplit.create n;
    perm = Array.make n 0;
  }

let op p = p.p_op

(* Fill [dst] with G + jωC.  The entry values are exactly the ones
   {!solve_at} assembles: when both stamps are zero the complex entry is
   (0, ω·0) = Complex.zero, so skipping the sparsity test changes
   nothing bitwise. *)
let assemble p omega dst =
  let n = p.size in
  for i = 0 to n - 1 do
    let gi = p.g.(i) and ci = p.c.(i) in
    for j = 0 to n - 1 do
      Cmat.set dst i j (complex gi.(j) (omega *. ci.(j)))
    done
  done

let matrix_at p freq =
  let a = Cmat.create p.size p.size in
  assemble p (2. *. Float.pi *. freq) a;
  a

(* Same fill into a split-storage workspace — identical entry values,
   just stored as separate re/im floats for the allocation-free LU. *)
let assemble_split p omega (dst : Ape_util.Matrix.Csplit.t) =
  let n = p.size in
  for i = 0 to n - 1 do
    Array.blit p.g.(i) 0 dst.Ape_util.Matrix.Csplit.re.(i) 0 n;
    let ci = p.c.(i) and dim = dst.Ape_util.Matrix.Csplit.im.(i) in
    for j = 0 to n - 1 do
      dim.(j) <- omega *. ci.(j)
    done
  done

(* Core evaluation given an assembly workspace and pivot workspace; the
   solution vector escapes, so it is the one unavoidable allocation. *)
let solve_in p ~work ~perm freq =
  Ape_obs.incr c_solve_prepared;
  assemble_split p (2. *. Float.pi *. freq) work;
  Ape_util.Matrix.Csplit.factor_in_place work perm;
  { freq; x = Ape_util.Matrix.Csplit.solve work perm p.rhs }

let solve_prepared p freq = solve_in p ~work:p.work ~perm:p.perm freq

(* Parallel-safe variant: fresh workspaces, touching only the read-only
   parts of [p].  Used by the domain-parallel sweep below. *)
let solve_fresh p freq =
  solve_in p
    ~work:(Ape_util.Matrix.Csplit.create p.size)
    ~perm:(Array.make p.size 0) freq

let voltage (op : Dc.op) solution node =
  match Engine.node_id op.Dc.index node with
  | None -> Complex.zero
  | Some i -> solution.x.(i)

let voltage_prepared p solution node = voltage p.p_op solution node

let magnitude_prepared ~node p freq =
  Complex.norm (voltage_prepared p (solve_prepared p freq) node)

let sweep_frequencies ?(points_per_decade = 10) ~fstart ~fstop () =
  if fstart <= 0. || fstop <= fstart then invalid_arg "Ac.sweep: bad range";
  let decades = Float.log10 (fstop /. fstart) in
  let n =
    max 2 (1 + int_of_float (Float.ceil (decades *. float_of_int points_per_decade)))
  in
  Ape_util.Float_ext.logspace fstart fstop n

let sweep_prepared ?(jobs = 1) p freqs =
  let jobs = if jobs = 0 then Ape_util.Pool.recommended_jobs () else jobs in
  let freqs = Array.of_list freqs in
  let n = Array.length freqs in
  Ape_obs.add c_sweep_points n;
  let points =
    if jobs <= 1 then Array.map (solve_prepared p) freqs
    else
      (* Workspaces must not be shared across domains; [solve_fresh]
         reads only the immutable stamps, so every jobs value produces
         the same (bit-identical) points. *)
      Ape_util.Pool.map ~jobs n (fun i -> solve_fresh p freqs.(i))
  in
  { op = p.p_op; points = Array.to_list points }

let sweep ?jobs ?points_per_decade ~fstart ~fstop op =
  let freqs = sweep_frequencies ?points_per_decade ~fstart ~fstop () in
  sweep_prepared ?jobs (prepare op) freqs

let transfer ~node sweep =
  List.map (fun s -> (s.freq, voltage sweep.op s node)) sweep.points

let magnitude_at ~node op freq =
  Complex.norm (voltage op (solve_at op freq) node)
