module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat

type solution = { freq : float; x : Complex.t array }
type sweep = { op : Dc.op; points : solution list }

let complex re im = { Complex.re; im }

let solve_at (op : Dc.op) freq =
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  (* Real part: DC Jacobian at the operating point (gmin kept tiny). *)
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gre = Rmat.get g i j and cim = Rmat.get c i j in
      if gre <> 0. || cim <> 0. then
        Cmat.set a i j (complex gre (omega *. cim))
    done
  done;
  (* RHS: AC source magnitudes. *)
  let b = Array.make n Complex.zero in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; ac; _ } when ac <> 0. ->
        let br = Engine.branch_id_exn index ~analysis:"ac" name in
        b.(br) <- Complex.add b.(br) (complex ac 0.)
      | N.Isource { p; n = nn; ac; _ } when ac <> 0. ->
        (* AC current leaves p, enters n; the residual convention puts
           source injections on the RHS with opposite sign. *)
        (match Engine.node_id index p with
        | Some i -> b.(i) <- Complex.sub b.(i) (complex ac 0.)
        | None -> ());
        (match Engine.node_id index nn with
        | Some i -> b.(i) <- Complex.add b.(i) (complex ac 0.)
        | None -> ())
      | N.Vsource _ | N.Isource _ | N.Mosfet _ | N.Resistor _
      | N.Capacitor _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements netlist);
  { freq; x = Cmat.solve a b }

let voltage (op : Dc.op) solution node =
  match Engine.node_id op.Dc.index node with
  | None -> Complex.zero
  | Some i -> solution.x.(i)

let sweep ?(points_per_decade = 10) ~fstart ~fstop op =
  if fstart <= 0. || fstop <= fstart then invalid_arg "Ac.sweep: bad range";
  let decades = Float.log10 (fstop /. fstart) in
  let n = max 2 (1 + int_of_float (Float.ceil (decades *. float_of_int points_per_decade))) in
  let freqs = Ape_util.Float_ext.logspace fstart fstop n in
  { op; points = List.map (solve_at op) freqs }

let transfer ~node sweep =
  List.map (fun s -> (s.freq, voltage sweep.op s node)) sweep.points

let magnitude_at ~node op freq =
  Complex.norm (voltage op (solve_at op freq) node)
