module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat
module Poly = Ape_util.Poly

type approximant = {
  moments : float array;
  poles : Complex.t list;
  residues : Complex.t list;
  dc_value : float;
}

exception Moment_failure of string

let rhs_vector netlist index =
  let n = Engine.size index in
  let b = Array.make n 0. in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; ac; _ } when ac <> 0. ->
        let br = Engine.branch_id_exn index ~analysis:"awe" name in
        b.(br) <- b.(br) +. ac
      | N.Isource { p; n = nn; ac; _ } when ac <> 0. ->
        (match Engine.node_id index p with
        | Some i -> b.(i) <- b.(i) -. ac
        | None -> ());
        (match Engine.node_id index nn with
        | Some i -> b.(i) <- b.(i) +. ac
        | None -> ())
      | N.Vsource _ | N.Isource _ | N.Mosfet _ | N.Resistor _
      | N.Capacitor _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements netlist);
  b

let moments ?(count = 8) ~out (op : Dc.op) =
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let lu =
    match Rmat.lu_factor g with
    | lu -> lu
    | exception Ape_util.Matrix.Singular ->
      raise (Moment_failure "G matrix singular")
  in
  let out_id =
    match Engine.node_id index out with
    | Some i -> i
    | None -> raise (Moment_failure "output node is ground")
  in
  let b = rhs_vector netlist index in
  let mus = Array.make count 0. in
  let m = ref (Rmat.lu_solve lu b) in
  mus.(0) <- !m.(out_id);
  for k = 1 to count - 1 do
    let cm = Rmat.mat_vec c !m in
    let neg_cm = Array.map (fun v -> -.v) cm in
    m := Rmat.lu_solve lu neg_cm;
    mus.(k) <- !m.(out_id)
  done;
  mus

(* Padé [q-1 / q] with denominator D(s) = 1 + b1·s + ... + bq·s^q:
   matching moments q..2q−1 gives  Σ_{j=1..q} b_j·μ_{q+k−j} = −μ_{q+k}
   for k = 0..q−1. *)
let pade ?(q = 2) ~out op =
  if q < 1 then invalid_arg "Awe.pade: q < 1";
  let mus = moments ~count:(2 * q) ~out op in
  let h = Rmat.create q q in
  let rhs = Array.make q 0. in
  for k = 0 to q - 1 do
    for j = 1 to q do
      Rmat.set h k (j - 1) mus.(q + k - j)
    done;
    rhs.(k) <- -.mus.(q + k)
  done;
  let b =
    match Rmat.solve h rhs with
    | b -> b
    | exception Ape_util.Matrix.Singular ->
      raise (Moment_failure "Hankel system singular (reduce q)")
  in
  let denom = Poly.of_coeffs (Array.append [| 1. |] b) in
  let poles = Poly.roots denom in
  (* Residues k_i from the moment-matching conditions:
     μ_k = Σ_i −k_i / p_i^{k+1}. Solve the q×q Vandermonde-like system in
     complex arithmetic. *)
  let cq = List.length poles in
  let module Cmat = Ape_util.Matrix.Cmat in
  let v = Cmat.create cq cq in
  let rhsc = Array.make cq Complex.zero in
  List.iteri
    (fun k () ->
      List.iteri
        (fun i p ->
          (* coefficient of k_i in μ_k: −1 / p^{k+1} *)
          let pk = Complex.pow p { Complex.re = float_of_int (k + 1); im = 0. } in
          Cmat.set v k i (Complex.neg (Complex.inv pk)))
        poles;
      rhsc.(k) <- { Complex.re = mus.(k); im = 0. })
    (List.init cq (fun _ -> ()));
  let residues =
    match Cmat.solve v rhsc with
    | r -> Array.to_list r
    | exception Ape_util.Matrix.Singular -> List.map (fun _ -> Complex.zero) poles
  in
  { moments = mus; poles; residues; dc_value = mus.(0) }

let dominant_pole_hz approx =
  let stable =
    List.filter_map
      (fun (p : Complex.t) ->
        let m = Complex.norm p in
        if m > 0. then Some m else None)
      approx.poles
  in
  match List.sort compare stable with
  | [] -> None
  | slowest :: _ -> Some (slowest /. (2. *. Float.pi))

let unity_gain_frequency_hz approx =
  let a0 = Float.abs approx.dc_value in
  if a0 <= 1. then None
  else
    match dominant_pole_hz approx with
    | None -> None
    | Some f3db -> Some (a0 *. f3db)

let unity_crossing_hz ?(fmin = 1e2) ?(fmax = 1e10) approx =
  if Float.abs approx.dc_value <= 1. then None
  else begin
    let eval_mag f =
      let s = { Complex.re = 0.; im = 2. *. Float.pi *. f } in
      Complex.norm
        (List.fold_left2
           (fun acc k p -> Complex.add acc (Complex.div k (Complex.sub s p)))
           Complex.zero approx.residues approx.poles)
    in
    let g lf = eval_mag (10. ** lf) -. 1. in
    let llo = Float.log10 fmin and lhi = Float.log10 fmax in
    if g llo <= 0. || g lhi >= 0. then None
    else begin
      let rec bisect lo hi k =
        if k = 0 then Some (10. ** (0.5 *. (lo +. hi)))
        else begin
          let mid = 0.5 *. (lo +. hi) in
          if g mid > 0. then bisect mid hi (k - 1) else bisect lo mid (k - 1)
        end
      in
      bisect llo lhi 40
    end
  end

let eval approx freq_hz =
  let s = { Complex.re = 0.; im = 2. *. Float.pi *. freq_hz } in
  List.fold_left2
    (fun acc k p ->
      Complex.add acc (Complex.div k (Complex.sub s p)))
    Complex.zero approx.residues approx.poles
