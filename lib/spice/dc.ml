module N = Ape_circuit.Netlist
module Rmat = Ape_util.Matrix.Rmat

type op = {
  netlist : N.t;
  index : Engine.index;
  x : float array;
  iterations : int;
}

exception No_convergence of string

let c_solves = Ape_obs.counter "dc.solves"
let c_newton_iters = Ape_obs.counter "dc.newton_iters"
let c_failures = Ape_obs.counter "dc.no_convergence"

let max_norm a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0. a

module Sp = Ape_util.Sparse

(* Sparse Newton workspace: the stamp plan and slot values are built
   once per solve; the factor's symbolic analysis (pivot order) is done
   on the first iteration and replayed numerically on every later one —
   across gmin/source-stepping stages too, since the pattern never
   changes.  [ss_fac] drops back to [None] when a replay goes unstable
   so the next iteration re-pivots. *)
type sparse_state = {
  ss_plan : Engine.plan;
  ss_vals : Sp.Real.t;
  mutable ss_fac : Sp.Real.factor option;
}

let sparse_state netlist index =
  match Backend.current () with
  | Backend.Dense -> None
  | Backend.Sparse ->
    let plan = Engine.plan netlist index in
    Some
      {
        ss_plan = plan;
        ss_vals = Sp.Real.create (Engine.plan_pattern plan);
        ss_fac = None;
      }

(* Factor (first time / after instability) or refactor, then solve.
   [None] means numerically singular — same contract as the dense
   [lu_factor] raising [Singular]. *)
let sparse_step ss neg_f =
  let fresh () =
    match Sp.Real.factor ss.ss_vals with
    | exception Sp.Singular -> None
    | fac ->
      ss.ss_fac <- Some fac;
      Some (Sp.Real.solve fac neg_f)
  in
  match ss.ss_fac with
  | None -> fresh ()
  | Some fac -> (
    match Sp.Real.refactor fac ss.ss_vals with
    | () -> Some (Sp.Real.solve fac neg_f)
    | exception (Sp.Unstable | Sp.Singular) ->
      ss.ss_fac <- None;
      fresh ())

(* One damped-Newton solve at a fixed (gmin, source_scale); updates [x]
   in place and returns iterations used, or None on failure. *)
let newton ?(max_iter = 150) ?(tol_v = 1e-9) ?(tol_i = 1e-12)
    ?(damping = 0.5) ?sparse ~gmin ~source_scale netlist index x =
  let n_nodes = Engine.n_nodes index in
  let rec loop iter =
    if iter > max_iter then None
    else begin
      let step =
        match sparse with
        | None -> (
          let f, j =
            Engine.residual_jacobian ~gmin ~source_scale netlist index x
          in
          match Rmat.lu_factor j with
          | exception Ape_util.Matrix.Singular -> None
          | lu -> Some (f, Rmat.lu_solve lu (Array.map (fun v -> -.v) f)))
        | Some ss -> (
          let f =
            Engine.sparse_residual ~gmin ~source_scale ss.ss_plan netlist
              index x ss.ss_vals
          in
          match sparse_step ss (Array.map (fun v -> -.v) f) with
          | None -> None
          | Some dx -> Some (f, dx))
      in
      match step with
      | None -> None
      | Some (f, dx) ->
        if Array.exists (fun v -> Float.is_nan v) dx then None
        else begin
        (* Damping: limit node-voltage steps to 0.5 V. *)
        let worst_dv = ref 0. in
        Array.iteri
          (fun i d ->
            let d =
              if i < n_nodes then
                Ape_util.Float_ext.clamp ~lo:(-.damping) ~hi:damping d
              else d
            in
            if i < n_nodes then worst_dv := Float.max !worst_dv (Float.abs d);
            x.(i) <- x.(i) +. d)
          dx;
          if !worst_dv < tol_v && max_norm f < Float.max tol_i (1e-6 *. gmin)
          then Some iter
          else loop (iter + 1)
        end
    end
  in
  loop 1

let initial_guess netlist index =
  let x = Array.make (Engine.size index) 0. in
  (* Start from the average of supply values: keeps diff pairs away from
     the flat region at 0 V. *)
  let supplies =
    List.filter_map
      (fun e ->
        match e with
        | N.Vsource { dc; _ } -> Some dc
        | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Isource _ | N.Vcvs _
        | N.Switch _ ->
          None)
      (N.elements netlist)
  in
  let v0 =
    match supplies with
    | [] -> 1.
    | _ ->
      List.fold_left Float.max 0. supplies /. 2.
  in
  for i = 0 to Engine.n_nodes index - 1 do
    x.(i) <- v0
  done;
  x

let solve_impl ?(max_iter = 150) ?(tol_v = 1e-9) ?(tol_i = 1e-12) ?x0 netlist =
  N.validate netlist;
  let index = Engine.build_index netlist in
  let x =
    match x0 with
    | Some x ->
      if Array.length x <> Engine.size index then
        invalid_arg "Dc.solve: x0 size mismatch";
      Array.copy x
    | None -> initial_guess netlist index
  in
  let sparse = sparse_state netlist index in
  let try_newton ~gmin ~source_scale x =
    newton ~max_iter ~tol_v ~tol_i ?sparse ~gmin ~source_scale netlist index x
  in
  (* Plain Newton first. *)
  match try_newton ~gmin:1e-12 ~source_scale:1. x with
  | Some iters -> { netlist; index; x; iterations = iters }
  | None -> (
    (* gmin stepping: heavy shunt conductance first, relax gradually,
       warm-starting each stage. *)
    let x = initial_guess netlist index in
    let gmins = [ 1e-2; 1e-4; 1e-6; 1e-8; 1e-10; 1e-12 ] in
    let gmin_ok =
      List.for_all
        (fun gmin ->
          match try_newton ~gmin ~source_scale:1. x with
          | Some _ -> true
          | None -> false)
        gmins
    in
    if gmin_ok then
      match try_newton ~gmin:1e-12 ~source_scale:1. x with
      | Some iters -> { netlist; index; x; iterations = iters }
      | None ->
        raise
          (No_convergence
             (Printf.sprintf
                "dc(%s): gmin stepping converged at every stage but lost \
                 convergence at the final gmin"
                netlist.N.title))
    else begin
      (* Source stepping. *)
      let x = Array.make (Engine.size index) 0. in
      let steps = [ 0.1; 0.2; 0.4; 0.6; 0.8; 0.9; 1.0 ] in
      let ok =
        List.for_all
          (fun scale ->
            match try_newton ~gmin:1e-9 ~source_scale:scale x with
            | Some _ -> true
            | None -> false)
          steps
      in
      let finish_from x =
        match try_newton ~gmin:1e-12 ~source_scale:1. x with
        | Some iters -> Some { netlist; index; x; iterations = iters }
        | None -> None
      in
      let result =
        if ok then finish_from x
        else begin
          (* Last resort: heavily damped Newton (small steps track the
             continuation path through near-singular regions). *)
          let x = initial_guess netlist index in
          match
            newton ~max_iter:800 ~tol_v ~tol_i ~damping:0.05 ?sparse
              ~gmin:1e-9 ~source_scale:1. netlist index x
          with
          | Some _ -> finish_from x
          | None -> None
        end
      in
      match result with
      | Some op -> op
      | None ->
        raise
          (No_convergence
             (Printf.sprintf
                "dc(%s): Newton, gmin stepping, source stepping and damped \
                 Newton all failed (max_iter=%d, %d unknowns)"
                netlist.N.title max_iter (Engine.size index)))
    end)

let solve ?max_iter ?tol_v ?tol_i ?x0 netlist =
  Ape_obs.incr c_solves;
  match solve_impl ?max_iter ?tol_v ?tol_i ?x0 netlist with
  | op ->
    Ape_obs.add c_newton_iters op.iterations;
    op
  | exception (No_convergence _ as e) ->
    Ape_obs.incr c_failures;
    raise e

let voltage op node = Engine.node_voltage op.index op.x node

let branch_current op name =
  match Engine.branch_id op.index name with
  | None -> None
  | Some i -> Some op.x.(i)

let supply_current op name =
  match branch_current op name with
  | Some i -> Float.abs i
  | None -> raise Not_found

let static_power op ~supply =
  let dc =
    List.find_map
      (fun e ->
        match e with
        | N.Vsource { name; dc; _ } when String.equal name supply -> Some dc
        | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Vsource _
        | N.Isource _ | N.Vcvs _ | N.Switch _ ->
          None)
      (N.elements op.netlist)
  in
  match dc with
  | None -> raise Not_found
  | Some v -> Float.abs v *. supply_current op supply

let mosfet_regions op =
  List.filter_map
    (fun e ->
      match e with
      | N.Mosfet { name; card; d; g; s; b; geom; m; _ } ->
        let geom =
          { geom with Ape_device.Mos.w = geom.Ape_device.Mos.w *. m }
        in
        let vd = voltage op d
        and vg = voltage op g
        and vs = voltage op s
        and vb = voltage op b in
        let point =
          Ape_device.Mos.operating_point card geom ~vgs:(vg -. vs)
            ~vds:(vd -. vs) ~vsb:(vs -. vb)
        in
        Some (name, point.Ape_device.Mos.region, point.Ape_device.Mos.ids)
      | N.Resistor _ | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Switch _ ->
        None)
    (N.elements op.netlist)

let pp fmt op =
  Format.fprintf fmt "operating point (%d iterations):@." op.iterations;
  List.iter
    (fun n -> Format.fprintf fmt "  V(%s) = %.6g@." n (voltage op n))
    (N.nodes op.netlist);
  List.iter
    (fun (name, region, ids) ->
      Format.fprintf fmt "  %s: %s Id=%s@." name
        (match region with
        | Ape_device.Mos.Cutoff -> "cutoff"
        | Ape_device.Mos.Triode -> "triode"
        | Ape_device.Mos.Saturation -> "saturation")
        (Ape_util.Units.to_eng ids))
    (mosfet_regions op)
