module N = Ape_circuit.Netlist
module Card = Ape_process.Model_card
module Mos = Ape_device.Mos
module Cmat = Ape_util.Matrix.Cmat
module Rmat = Ape_util.Matrix.Rmat

type contribution = { element : string; psd : float }

let four_kt = 4. *. Ape_util.Units.k_boltzmann *. 300.15

(* Current-noise PSD (A²/Hz) of each element between its two noise
   terminals at the operating point. *)
let noise_sources (op : Dc.op) freq =
  List.filter_map
    (fun e ->
      match e with
      | N.Resistor { name; a; b; r } -> Some (name, a, b, four_kt /. r)
      | N.Mosfet { name; card; d; g; s; b; geom; m; _ } ->
        let geom = { geom with Mos.w = geom.Mos.w *. m } in
        let vd = Dc.voltage op d
        and vg = Dc.voltage op g
        and vs = Dc.voltage op s
        and vb = Dc.voltage op b in
        let ss =
          Mos.small_signal card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let point =
          Mos.operating_point card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let id = Float.abs point.Mos.ids in
        let thermal = four_kt *. (2. /. 3.) *. ss.Mos.gm in
        let leff =
          Float.max 1e-9 (geom.Mos.l -. (2. *. card.Card.ld))
        in
        (* SPICE flicker model: KF·I^AF / (Cox·Leff²·f), as a drain
           current PSD. *)
        let flicker =
          card.Card.kf
          *. (id ** card.Card.af)
          /. (Card.cox card *. leff *. leff *. Float.max 1e-3 freq)
        in
        Some (name, d, s, thermal +. flicker)
      | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ ->
        None)
    (N.elements op.Dc.netlist)

let output_noise_prepared ~out ~freq p =
  let op = Ac.op p in
  let index = op.Dc.index in
  (* G + jωC comes pre-stamped from the shared AC preparation; only the
     per-frequency assembly and factorisation remain. *)
  let a = Ac.matrix_at p freq in
  let lu = Cmat.lu_factor a in
  let n = Engine.size index in
  let inject a_node b_node =
    (* Transfer impedance |v(out)| for a 1 A source from a to b. *)
    let rhs = Array.make n Complex.zero in
    (match Engine.node_id index a_node with
    | Some i -> rhs.(i) <- Complex.sub rhs.(i) Complex.one
    | None -> ());
    (match Engine.node_id index b_node with
    | Some i -> rhs.(i) <- Complex.add rhs.(i) Complex.one
    | None -> ());
    let x = Cmat.lu_solve lu rhs in
    match Engine.node_id index out with
    | Some i -> Complex.norm x.(i)
    | None -> 0.
  in
  let contributions =
    List.map
      (fun (element, a_node, b_node, s_i) ->
        let z = inject a_node b_node in
        { element; psd = s_i *. z *. z })
      (noise_sources op freq)
  in
  let total = List.fold_left (fun acc c -> acc +. c.psd) 0. contributions in
  ( total,
    List.sort (fun x y -> compare y.psd x.psd) contributions )

let output_noise ~out ~freq op =
  output_noise_prepared ~out ~freq (Ac.prepare op)

let input_referred_prepared ~out ~freq p =
  let total, _ = output_noise_prepared ~out ~freq p in
  let gain = Ac.magnitude_prepared ~node:out p freq in
  if gain = 0. then raise Division_by_zero;
  Float.sqrt total /. gain

let input_referred ~out ~freq op =
  input_referred_prepared ~out ~freq (Ac.prepare op)

let integrated_output_prepared ~out ~fstart ~fstop ?(points_per_decade = 5) p =
  if fstart <= 0. || fstop <= fstart then
    invalid_arg "Noise.integrated_output: bad band";
  let n =
    max 2
      (1
      + int_of_float
          (Float.ceil
             (Float.log10 (fstop /. fstart)
             *. float_of_int points_per_decade)))
  in
  let freqs = Ape_util.Float_ext.logspace fstart fstop n in
  let psds =
    List.map (fun f -> fst (output_noise_prepared ~out ~freq:f p)) freqs
  in
  (* Trapezoidal integration on the linear frequency axis. *)
  let rec integrate acc = function
    | (f1, p1) :: ((f2, p2) :: _ as rest) ->
      integrate (acc +. (0.5 *. (p1 +. p2) *. (f2 -. f1))) rest
    | [ _ ] | [] -> acc
  in
  Float.sqrt (integrate 0. (List.combine freqs psds))

let integrated_output ~out ~fstart ~fstop ?points_per_decade op =
  integrated_output_prepared ~out ~fstart ~fstop ?points_per_decade
    (Ac.prepare op)
