module N = Ape_circuit.Netlist
module Card = Ape_process.Model_card
module Mos = Ape_device.Mos

type contribution = { element : string; psd : float }

let c_adjoint = Ape_obs.counter "noise.adjoint_solves"
let c_direct = Ape_obs.counter "noise.direct_solves"

let four_kt = 4. *. Ape_util.Units.k_boltzmann *. 300.15

(* Current-noise PSD (A²/Hz) of each element between its two noise
   terminals at the operating point. *)
let noise_sources (op : Dc.op) freq =
  List.filter_map
    (fun e ->
      match e with
      | N.Resistor { name; a; b; r } -> Some (name, a, b, four_kt /. r)
      | N.Mosfet { name; card; d; g; s; b; geom; m; _ } ->
        let geom = { geom with Mos.w = geom.Mos.w *. m } in
        let vd = Dc.voltage op d
        and vg = Dc.voltage op g
        and vs = Dc.voltage op s
        and vb = Dc.voltage op b in
        let ss =
          Mos.small_signal card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let point =
          Mos.operating_point card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let id = Float.abs point.Mos.ids in
        let thermal = four_kt *. (2. /. 3.) *. ss.Mos.gm in
        let leff =
          Float.max 1e-9 (geom.Mos.l -. (2. *. card.Card.ld))
        in
        (* SPICE flicker model: KF·I^AF / (Cox·Leff²·f), as a drain
           current PSD. *)
        let flicker =
          card.Card.kf
          *. (id ** card.Card.af)
          /. (Card.cox card *. leff *. leff *. Float.max 1e-3 freq)
        in
        Some (name, d, s, thermal +. flicker)
      | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ ->
        None)
    (N.elements op.Dc.netlist)

let sorted_total contributions =
  let total = List.fold_left (fun acc c -> acc +. c.psd) 0. contributions in
  (total, List.sort (fun x y -> compare y.psd x.psd) contributions)

(* Adjoint (reciprocity) evaluation: with y solving Aᵀy = e_out, the
   transfer impedance of a 1 A source from node a to node b is
   z = e_outᵀ A⁻¹ (e_b − e_a) = y(b) − y(a) — so one transposed solve
   per frequency yields every source's transfer impedance, however many
   sources the deck has.  The system is factored through the
   backend-aware {!Ac.system_at}, so [--engine sparse] covers noise
   too. *)
let output_noise_prepared ~out ~freq p =
  let op = Ac.op p in
  let index = op.Dc.index in
  let n = Engine.size index in
  let sources = noise_sources op freq in
  let y =
    match Engine.node_id index out with
    | None -> None
    | Some iout ->
      let sys = Ac.system_at p freq in
      let e_out = Array.make n Complex.zero in
      e_out.(iout) <- Complex.one;
      Ape_obs.incr c_adjoint;
      Some (Ac.system_solve_transposed sys e_out)
  in
  let zmag a_node b_node =
    match y with
    | None -> 0.
    | Some y ->
      let term node =
        match Engine.node_id index node with
        | Some i -> y.(i)
        | None -> Complex.zero
      in
      Complex.norm (Complex.sub (term b_node) (term a_node))
  in
  sorted_total
    (List.map
       (fun (element, a_node, b_node, s_i) ->
         let z = zmag a_node b_node in
         { element; psd = s_i *. z *. z })
       sources)

(* The pre-adjoint evaluation — one direct solve per source per
   frequency — kept as an independent reference implementation for the
   differential test suite and the bench's solve-count comparison. *)
let output_noise_direct_prepared ~out ~freq p =
  let op = Ac.op p in
  let index = op.Dc.index in
  let n = Engine.size index in
  let sys = Ac.system_at p freq in
  let inject a_node b_node =
    let rhs = Array.make n Complex.zero in
    (match Engine.node_id index a_node with
    | Some i -> rhs.(i) <- Complex.sub rhs.(i) Complex.one
    | None -> ());
    (match Engine.node_id index b_node with
    | Some i -> rhs.(i) <- Complex.add rhs.(i) Complex.one
    | None -> ());
    Ape_obs.incr c_direct;
    let x = Ac.system_solve sys rhs in
    match Engine.node_id index out with
    | Some i -> Complex.norm x.(i)
    | None -> 0.
  in
  sorted_total
    (List.map
       (fun (element, a_node, b_node, s_i) ->
         let z = inject a_node b_node in
         { element; psd = s_i *. z *. z })
       (noise_sources op freq))

let output_noise ~out ~freq op =
  output_noise_prepared ~out ~freq (Ac.prepare op)

let input_referred_prepared ~out ~freq p =
  let total, _ = output_noise_prepared ~out ~freq p in
  let gain = Ac.magnitude_prepared ~node:out p freq in
  if gain = 0. then raise Division_by_zero;
  Float.sqrt total /. gain

let input_referred ~out ~freq op =
  input_referred_prepared ~out ~freq (Ac.prepare op)

let integrated_output_prepared ~out ~fstart ~fstop ?(points_per_decade = 5) p =
  if fstart <= 0. || fstop <= fstart then
    invalid_arg "Noise.integrated_output: bad band";
  let n =
    max 2
      (1
      + int_of_float
          (Float.ceil
             (Float.log10 (fstop /. fstart)
             *. float_of_int points_per_decade)))
  in
  let freqs = Ape_util.Float_ext.logspace fstart fstop n in
  let psds =
    List.map (fun f -> fst (output_noise_prepared ~out ~freq:f p)) freqs
  in
  (* Trapezoidal integration on the linear frequency axis. *)
  let rec integrate acc = function
    | (f1, p1) :: ((f2, p2) :: _ as rest) ->
      integrate (acc +. (0.5 *. (p1 +. p2) *. (f2 -. f1))) rest
    | [ _ ] | [] -> acc
  in
  Float.sqrt (integrate 0. (List.combine freqs psds))

let integrated_output ~out ~fstart ~fstop ?points_per_decade op =
  integrated_output_prepared ~out ~fstart ~fstop ?points_per_decade
    (Ac.prepare op)
