(** Shared modified-nodal-analysis machinery: unknown indexing, nonlinear
    residual/Jacobian evaluation and linear C-matrix stamping.  The DC, AC,
    transient and AWE analyses are all thin layers over this module. *)

type index

exception
  Engine_error of { analysis : string; node : string option; detail : string }
(** Typed failure of the MNA machinery itself (as opposed to a
    circuit-level outcome such as {!Dc.No_convergence}): [analysis] names
    the pass that failed ("mna", "ac", "awe", …), [node] the offending
    node or element name when one is identifiable. *)

val engine_error : analysis:string -> ?node:string -> string -> 'a
(** Raise {!Engine_error} — shared by the analyses layered on this
    module. *)

val build_index : Ape_circuit.Netlist.t -> index
(** Unknown layout: node voltages first (non-ground nodes in sorted
    order), then one branch current per V-source and VCVS. *)

val size : index -> int
val n_nodes : index -> int

val node_id : index -> Ape_circuit.Netlist.node -> int option
(** [None] for ground. *)

val branch_id : index -> string -> int option
(** Branch-current unknown of a named V-source/VCVS. *)

val branch_id_exn : index -> analysis:string -> string -> int
(** Like {!branch_id} but raises {!Engine_error} tagged with the calling
    [analysis] when the element has no branch unknown — the hot error
    path of every source stamp. *)

val node_voltage : index -> float array -> Ape_circuit.Netlist.node -> float
(** Read a node voltage out of a solution vector (0 for ground). *)

type stimulus = (string * (float -> float)) list
(** Per-source time waveforms for transient analysis: overrides the DC
    value of the named V/I source. *)

val residual_jacobian :
  ?gmin:float ->
  ?source_scale:float ->
  ?time:float ->
  ?stimulus:stimulus ->
  Ape_circuit.Netlist.t ->
  index ->
  float array ->
  float array * Ape_util.Matrix.Rmat.t
(** [residual_jacobian netlist index x] evaluates the KCL/branch residual
    [F(x)] and its Jacobian at the point [x].  Newton solves
    [J dx = -F].  [gmin] (default 1e-12) is a stabilising conductance
    from every node to ground; [source_scale] scales all independent
    sources (source stepping); [time]/[stimulus] evaluate time-dependent
    source values for the transient analysis. *)

val stamp_capacitances :
  Ape_circuit.Netlist.t ->
  index ->
  float array ->
  Ape_util.Matrix.Rmat.t
(** The C matrix (susceptance stamps / jω) linearised at the operating
    point [x]: explicit capacitors plus the MOS intrinsic and junction
    capacitances in their bias-dependent values. *)

type plan
(** A precompiled sparse stamp plan: the union sparsity pattern of the
    Jacobian and capacitance stamps plus the slot sequence of every
    [add] call.  Built once per (netlist, index); numeric passes replay
    the deterministic stamp sequence through a cursor with no hash or
    binary-search lookups.  The stamp sequence is independent of [x],
    [gmin], [source_scale], [time] and [stimulus], which is what makes
    the replay valid. *)

val plan : Ape_circuit.Netlist.t -> index -> plan

val plan_pattern : plan -> Ape_util.Sparse.pattern

val sparse_residual :
  ?gmin:float ->
  ?source_scale:float ->
  ?time:float ->
  ?stimulus:stimulus ->
  plan ->
  Ape_circuit.Netlist.t ->
  index ->
  float array ->
  Ape_util.Sparse.Real.t ->
  float array
(** Sparse twin of {!residual_jacobian}: stamps the Jacobian into [vals]
    (cleared first; must share the plan's pattern) and returns the
    residual [F(x)].  Each slot value is bitwise equal to the
    corresponding dense matrix entry — the two engines differ only
    through elimination order. *)

val sparse_capacitances :
  plan ->
  Ape_circuit.Netlist.t ->
  index ->
  float array ->
  Ape_util.Sparse.Real.t ->
  unit
(** Sparse twin of {!stamp_capacitances}, stamping into [vals] (cleared
    first) over the plan's shared pattern. *)

val mosfet_small_signal :
  Ape_circuit.Netlist.t ->
  index ->
  float array ->
  (string * Ape_device.Mos.small_signal) list
(** Per-MOSFET small-signal parameters at the operating point — exposed
    for tests and reporting. *)
