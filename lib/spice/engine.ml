module N = Ape_circuit.Netlist
module Mos = Ape_device.Mos
module Rmat = Ape_util.Matrix.Rmat

type index = {
  node_ids : (string, int) Hashtbl.t;
  branch_ids : (string, int) Hashtbl.t;
  n_nodes : int;
  total : int;
}

exception
  Engine_error of { analysis : string; node : string option; detail : string }

let engine_error ~analysis ?node detail =
  raise (Engine_error { analysis; node; detail })

let build_index netlist =
  let node_ids = Hashtbl.create 16 in
  List.iteri
    (fun i n -> Hashtbl.replace node_ids n i)
    (N.nodes netlist);
  let n_nodes = Hashtbl.length node_ids in
  let branch_ids = Hashtbl.create 4 in
  let next = ref n_nodes in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { name; _ } | N.Vcvs { name; _ } ->
        Hashtbl.replace branch_ids name !next;
        incr next
      | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Isource _ | N.Switch _
        ->
        ())
    (N.elements netlist);
  { node_ids; branch_ids; n_nodes; total = !next }

let size idx = idx.total
let n_nodes idx = idx.n_nodes

let node_id idx n =
  if N.is_ground n then None else Hashtbl.find_opt idx.node_ids n

let branch_id idx name = Hashtbl.find_opt idx.branch_ids name

let branch_id_exn idx ~analysis name =
  match Hashtbl.find_opt idx.branch_ids name with
  | Some i -> i
  | None ->
    engine_error ~analysis ~node:name
      "no branch-current unknown for this element (index built from a \
       different netlist?)"

let node_voltage idx x n =
  match node_id idx n with
  | None -> 0.
  | Some i -> x.(i)

type stimulus = (string * (float -> float)) list

let volt idx x n = node_voltage idx x n

(* Accumulate [v] into residual slot for node [n] (ground rows are
   dropped). *)
let add_residual idx f n v =
  match node_id idx n with None -> () | Some i -> f.(i) <- f.(i) +. v

let source_value ~time ~stimulus ~name ~dc =
  match stimulus with
  | [] -> dc
  | list -> (
    match List.assoc_opt name list with
    | Some wave -> wave time
    | None -> dc)

(* Finite-difference partial derivatives of the drain current with
   respect to the four terminal voltages.  Differencing the same function
   the residual uses guarantees a consistent Jacobian. *)
let mos_partials card geom ~vd ~vg ~vs ~vb =
  let id vd vg vs vb =
    Mos.drain_current card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
      ~vsb:(vs -. vb)
  in
  let i0 = id vd vg vs vb in
  let h = 1e-6 in
  let gd = (id (vd +. h) vg vs vb -. id (vd -. h) vg vs vb) /. (2. *. h) in
  let gg = (id vd (vg +. h) vs vb -. id vd (vg -. h) vs vb) /. (2. *. h) in
  let gs = (id vd vg (vs +. h) vb -. id vd vg (vs -. h) vb) /. (2. *. h) in
  let gb = (id vd vg vs (vb +. h) -. id vd vg vs (vb -. h)) /. (2. *. h) in
  (i0, gd, gg, gs, gb)

(* Stamping core, parameterised on the Jacobian sink: the dense path
   passes [Rmat.add_to] (so its arithmetic and call order are exactly
   the historical ones, keeping dense results bit-identical), the
   sparse path a slot-cursor writer, and the plan builder a coordinate
   recorder.  The [add] call sequence is deterministic and independent
   of [x], [gmin], [source_scale] and [stimulus] — every element stamps
   the same positions in the same order whatever its state (the Switch
   stamps both branches identically) — which is what lets one recorded
   plan replay any number of numeric evaluations. *)
let stamp_core ~gmin ~source_scale ~time ~stimulus netlist idx x
    ~(add : int -> int -> float -> unit) f =
  let add_jac row col v =
    match (node_id idx row, node_id idx col) with
    | Some r, Some c -> add r c v
    | _ -> ()
  in
  let add_jac_row_unknown row col_unknown v =
    match node_id idx row with Some r -> add r col_unknown v | None -> ()
  in
  let add_jac_unknown_col row_unknown col v =
    match node_id idx col with Some c -> add row_unknown c v | None -> ()
  in
  (* gmin from every node to ground. *)
  for i = 0 to idx.n_nodes - 1 do
    f.(i) <- f.(i) +. (gmin *. x.(i));
    add i i gmin
  done;
  let conductance_stamp a b g =
    let va = volt idx x a and vb = volt idx x b in
    let i = g *. (va -. vb) in
    add_residual idx f a i;
    add_residual idx f b (-.i);
    add_jac a a g;
    add_jac a b (-.g);
    add_jac b a (-.g);
    add_jac b b g
  in
  List.iter
    (fun e ->
      match e with
      | N.Resistor { a; b; r; _ } -> conductance_stamp a b (1. /. r)
      | N.Capacitor _ -> () (* open in DC; transient adds companions *)
      | N.Switch { a; b; ctrl; ron; roff; vthreshold; _ } ->
        let g =
          if volt idx x ctrl > vthreshold then 1. /. ron else 1. /. roff
        in
        conductance_stamp a b g
      | N.Isource { name; p; n = nn; dc; _ } ->
        let value = source_scale *. source_value ~time ~stimulus ~name ~dc in
        (* Current flows from p through the source to n: leaves p. *)
        add_residual idx f p value;
        add_residual idx f nn (-.value)
      | N.Vsource { name; p; n = nn; dc; _ } ->
        let value = source_scale *. source_value ~time ~stimulus ~name ~dc in
        let br = branch_id_exn idx ~analysis:"mna" name in
        let ibr = x.(br) in
        add_residual idx f p ibr;
        add_residual idx f nn (-.ibr);
        add_jac_row_unknown p br 1.;
        add_jac_row_unknown nn br (-1.);
        f.(br) <- volt idx x p -. volt idx x nn -. value;
        add_jac_unknown_col br p 1.;
        add_jac_unknown_col br nn (-1.)
      | N.Vcvs { name; p; n = nn; cp; cn; gain } ->
        let br = branch_id_exn idx ~analysis:"mna" name in
        let ibr = x.(br) in
        add_residual idx f p ibr;
        add_residual idx f nn (-.ibr);
        add_jac_row_unknown p br 1.;
        add_jac_row_unknown nn br (-1.);
        f.(br) <-
          volt idx x p -. volt idx x nn
          -. (gain *. (volt idx x cp -. volt idx x cn));
        add_jac_unknown_col br p 1.;
        add_jac_unknown_col br nn (-1.);
        add_jac_unknown_col br cp (-.gain);
        add_jac_unknown_col br cn gain
      | N.Mosfet { card; d; g; s; b; geom; m; _ } ->
        (* M= parallel devices behave as one device of width m·W under
           the width-proportional current and capacitance models. *)
        let geom = { geom with Mos.w = geom.Mos.w *. m } in
        let vd = volt idx x d
        and vg = volt idx x g
        and vs = volt idx x s
        and vb = volt idx x b in
        let i0, gd, gg, gs, gb = mos_partials card geom ~vd ~vg ~vs ~vb in
        (* Drain current i0 enters the drain terminal: leaves node d,
           re-enters the circuit at the source node. *)
        add_residual idx f d i0;
        add_residual idx f s (-.i0);
        add_jac d d gd;
        add_jac d g gg;
        add_jac d s gs;
        add_jac d b gb;
        add_jac s d (-.gd);
        add_jac s g (-.gg);
        add_jac s s (-.gs);
        add_jac s b (-.gb))
    (N.elements netlist)

let residual_jacobian ?(gmin = 1e-12) ?(source_scale = 1.) ?(time = 0.)
    ?(stimulus = []) netlist idx x =
  let n = idx.total in
  let f = Array.make n 0. in
  let j = Rmat.create n n in
  stamp_core ~gmin ~source_scale ~time ~stimulus netlist idx x
    ~add:(fun r c v -> Rmat.add_to j r c v)
    f;
  (f, j)

(* Capacitance stamping core, same sink parameterisation. *)
let caps_core netlist idx x ~(add : int -> int -> float -> unit) =
  let add_jac row col v =
    match (node_id idx row, node_id idx col) with
    | Some r, Some c -> add r c v
    | _ -> ()
  in
  let cap_stamp a b value =
    add_jac a a value;
    add_jac a b (-.value);
    add_jac b a (-.value);
    add_jac b b value
  in
  List.iter
    (fun e ->
      match e with
      | N.Capacitor { a; b; c = value; _ } -> cap_stamp a b value
      | N.Mosfet { card; d; g; s; b; geom; m; _ } ->
        (* M= parallel devices behave as one device of width m·W under
           the width-proportional current and capacitance models. *)
        let geom = { geom with Mos.w = geom.Mos.w *. m } in
        let vd = volt idx x d
        and vg = volt idx x g
        and vs = volt idx x s
        and vb = volt idx x b in
        let ss =
          Mos.small_signal card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        cap_stamp g s ss.Mos.cgs;
        cap_stamp g d ss.Mos.cgd;
        cap_stamp g b ss.Mos.cgb;
        cap_stamp d b ss.Mos.cdb;
        cap_stamp s b ss.Mos.csb
      | N.Resistor _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ ->
        ())
    (N.elements netlist)

let stamp_capacitances netlist idx x =
  let n = idx.total in
  let c = Rmat.create n n in
  caps_core netlist idx x ~add:(fun r col v -> Rmat.add_to c r col v);
  c

(* ------------------------------------------------------------------ *)
(* Sparse stamp plans                                                  *)
(* ------------------------------------------------------------------ *)

module Sp = Ape_util.Sparse

(* A plan compiles the deterministic stamp sequences into slot arrays
   over one shared sparsity pattern (the union of Jacobian and
   capacitance stamps, so one symbolic factorisation serves DC, AC and
   transient).  Built once per (netlist, index); every numeric pass is
   then a cursor replay with no hash lookups. *)
type plan = {
  p_pattern : Sp.pattern;
  p_jac : int array;  (* slot of the k-th Jacobian [add] call *)
  p_cap : int array;  (* slot of the k-th capacitance [add] call *)
}

let plan netlist idx =
  let n = idx.total in
  let x0 = Array.make n 0. in
  let f0 = Array.make n 0. in
  let b = Sp.Builder.create n in
  let jac_coords = ref [] and cap_coords = ref [] in
  stamp_core ~gmin:1e-12 ~source_scale:1. ~time:0. ~stimulus:[] netlist idx x0
    ~add:(fun r c _ ->
      Sp.Builder.add b r c;
      jac_coords := (r, c) :: !jac_coords)
    f0;
  caps_core netlist idx x0 ~add:(fun r c _ ->
      Sp.Builder.add b r c;
      cap_coords := (r, c) :: !cap_coords);
  let pattern = Sp.Builder.compile b in
  let slots coords =
    List.rev_map (fun (r, c) -> Sp.slot pattern ~row:r ~col:c) coords
    |> Array.of_list
  in
  { p_pattern = pattern; p_jac = slots !jac_coords; p_cap = slots !cap_coords }

let plan_pattern p = p.p_pattern

let sparse_residual ?(gmin = 1e-12) ?(source_scale = 1.) ?(time = 0.)
    ?(stimulus = []) plan netlist idx x vals =
  if Sp.Real.pattern vals != plan.p_pattern then
    invalid_arg "Engine.sparse_residual: pattern mismatch";
  Sp.Real.clear vals;
  let n = idx.total in
  let f = Array.make n 0. in
  let cursor = ref 0 in
  stamp_core ~gmin ~source_scale ~time ~stimulus netlist idx x
    ~add:(fun _ _ v ->
      Sp.Real.add_slot vals plan.p_jac.(!cursor) v;
      incr cursor)
    f;
  f

let sparse_capacitances plan netlist idx x vals =
  if Sp.Real.pattern vals != plan.p_pattern then
    invalid_arg "Engine.sparse_capacitances: pattern mismatch";
  Sp.Real.clear vals;
  let cursor = ref 0 in
  caps_core netlist idx x ~add:(fun _ _ v ->
      Sp.Real.add_slot vals plan.p_cap.(!cursor) v;
      incr cursor)

let mosfet_small_signal netlist idx x =
  List.filter_map
    (fun e ->
      match e with
      | N.Mosfet { name; card; d; g; s; b; geom; m; _ } ->
        let geom = { geom with Mos.w = geom.Mos.w *. m } in
        let vd = volt idx x d
        and vg = volt idx x g
        and vs = volt idx x s
        and vb = volt idx x b in
        Some
          ( name,
            Mos.small_signal card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
              ~vsb:(vs -. vb) )
      | N.Resistor _ | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Switch _ ->
        None)
    (N.elements netlist)
