(** Small-signal AC analysis.

    Linearises the circuit at a DC operating point — the AC system matrix
    is exactly the DC Newton Jacobian plus jω·C, so the linearisation can
    never disagree with the nonlinear model — and solves the complex MNA
    system at each requested frequency.  AC excitations are the [ac]
    magnitudes declared on the netlist's independent sources.

    Two evaluation paths coexist:
    - {!solve_at} re-stamps the netlist on every call (the historical
      path, kept as an independent reference implementation);
    - {!prepare} stamps the operating point {e once} into separate real
      G (conductance) and C (capacitance) matrices plus the RHS pattern,
      after which {!solve_prepared} only assembles [G + jωC] into a
      reusable workspace and factors it — no netlist traversal, no
      finite-difference Jacobian, no per-call matrix allocation.

    Under the dense backend ({!Backend.Dense}) the two paths produce
    bit-identical solutions.  Under {!Backend.Sparse} the prepared path
    performs one symbolic analysis at ω = 0 and then only numeric
    refactorisations per frequency; it agrees with the dense reference
    to rounding (the elimination order differs), which
    [test/test_sparse.ml] pins differentially on every golden deck. *)

type solution = {
  freq : float;  (** Hz *)
  x : Complex.t array;  (** node phasors then branch currents *)
}

type sweep = {
  op : Dc.op;
  points : solution list;  (** ascending frequency *)
}

val solve_at : Dc.op -> float -> solution
(** Single-frequency solve, re-stamping the full MNA system. *)

type prepared
(** One-time preparation of a circuit for repeated AC evaluation. *)

val prepare : Dc.op -> prepared
(** Stamp G, C and the AC RHS once.  Cost is one {!solve_at} minus the
    factorisation; every subsequent {!solve_prepared} skips the netlist
    traversal entirely. *)

val op : prepared -> Dc.op
(** The operating point the preparation was built from. *)

val solve_prepared : prepared -> float -> solution
(** Assemble [G + jωC] in the preparation's workspace and solve.
    Bit-identical to [solve_at (op p) freq] under the dense backend
    (agrees to rounding under the sparse one).  Reuses internal mutable
    workspaces: do not call concurrently from several domains on the
    same [prepared] (use {!sweep_prepared}[ ~jobs] for that). *)

val solve_fresh : prepared -> float -> solution
(** Like {!solve_prepared} but with per-call workspaces, touching only
    the read-only stamps — safe to call concurrently on a shared
    [prepared] from multiple domains. *)

val panel_width : unit -> int
(** Width of the frequency panels blocked solves use under the sparse
    backend (how many frequencies one traversal of the symbolic
    structure refactors and solves).  Defaults to 8, overridable with
    the [APE_PANEL_WIDTH] environment variable; width 1 selects the
    scalar per-frequency path.  Purely a throughput knob — results are
    bit-identical for every width. *)

val set_panel_width : int -> unit
(** Override {!panel_width} for this process ([k >= 1]). *)

val solve_many : prepared -> float array -> solution array
(** Blocked multi-frequency solve on the preparation's cached
    single-domain workspace: under the sparse backend the grid is cut
    into {!panel_width} panels, each refactored and solved by one
    symbolic traversal ([Sparse.Csplit.Panel]); under the dense backend
    it loops {!solve_prepared}.  Every point is bit-identical to
    [solve_prepared p f].  Not safe to call concurrently on one
    [prepared] (use {!sweep_prepared}[ ~jobs]). *)

(** {2 Factored systems} *)

type system
(** A factored [G + jωC] at one frequency, for analyses that solve many
    right-hand sides — and their adjoints — themselves (e.g. noise).
    Backend-aware: dense split-complex LU or sparse numeric
    refactorisation depending on {!Backend.current}. *)

val system_at : prepared -> float -> system
(** Assemble and factor the AC system at one frequency, with private
    workspaces (safe to use from any domain). *)

val system_solve : system -> Complex.t array -> Complex.t array
(** Solve [A x = b].  Under the dense backend, bit-identical to
    factoring {!matrix_at} with [Cmat.lu_factor] and solving. *)

val system_solve_transposed : system -> Complex.t array -> Complex.t array
(** Solve [Aᵀ y = b] with the same factorisation — one adjoint solve
    against an output selector yields the transfer impedance from every
    injection site at once (reciprocity). *)

val matrix_at : prepared -> float -> Ape_util.Matrix.Cmat.t
(** Freshly allocated [G + jωC] at one frequency, for analyses that
    factor the system themselves and solve many right-hand sides
    (e.g. {!Noise}). *)

val voltage : Dc.op -> solution -> Ape_circuit.Netlist.node -> Complex.t

val voltage_prepared :
  prepared -> solution -> Ape_circuit.Netlist.node -> Complex.t

val magnitude_prepared :
  node:Ape_circuit.Netlist.node -> prepared -> float -> float
(** |V(node)| at one frequency through the prepared path. *)

val sweep_frequencies :
  ?points_per_decade:int -> fstart:float -> fstop:float -> unit -> float list
(** The logarithmic grid {!sweep} evaluates (inclusive endpoints,
    default 10 points/decade). *)

val sweep_prepared : ?jobs:int -> prepared -> float list -> sweep
(** Solve an explicit frequency list on one preparation, in
    {!panel_width} blocks.  [jobs > 1] distributes whole panels over
    that many domains with the deterministic chunking of
    {!Ape_util.Pool} (0 = hardware recommendation), drawing from a pool
    of per-domain cloned workspaces — one clone per domain that runs,
    not one per point.  Panel boundaries depend only on the grid and
    the width, so results are bit-identical for every [jobs] value. *)

val sweep :
  ?jobs:int ->
  ?points_per_decade:int ->
  fstart:float ->
  fstop:float ->
  Dc.op ->
  sweep
(** Logarithmic sweep, inclusive of both endpoints.  Default 10
    points/decade, sequential ([jobs] as in {!sweep_prepared}).
    Prepares once internally — every point shares the same stamps. *)

val transfer :
  node:Ape_circuit.Netlist.node -> sweep -> (float * Complex.t) list
(** [(frequency, phasor)] of one node over the sweep. *)

val magnitude_at :
  node:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** |V(node)| at one frequency — the building block the measurement
    search routines refine with (re-stamping path). *)
