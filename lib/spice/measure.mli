(** Measurement extraction — the "sim" columns of the paper's tables.

    These routines play the role of SPICE [.MEASURE] post-processing:
    given a solved operating point they hunt for level crossings on the
    AC response with a coarse log scan refined by Brent's method.

    Every search is implemented against a prepared AC engine
    ({!Ac.prepare}): the circuit is stamped once and each probe
    frequency is a cheap assemble-and-factor.  The {!Prepared}
    submodule exposes that form directly, so callers extracting several
    figures from one operating point (gain, UGF, phase margin, …) can
    share a single preparation; the top-level functions keep the
    historical [Dc.op]-based signatures and prepare once per call. *)

(** Measurements over a shared {!Ac.prepared}. *)
module Prepared : sig
  val dc_gain : out:Ape_circuit.Netlist.node -> Ac.prepared -> float
  (** |V(out)| at s = 0 with the netlist's declared AC excitation (the
      AC system reduces to the real conductance matrix). *)

  val dc_gain_signed : out:Ape_circuit.Netlist.node -> Ac.prepared -> float
  (** {!dc_gain} with the sign taken from the real ω → 0 solve: the DC
      phasor is real, so inverting paths show up as a negative real
      part.  (Unlike probing the phase at a fixed nonzero frequency,
      this stays correct when the circuit has poles below that
      frequency.) *)

  val gain_at : out:Ape_circuit.Netlist.node -> Ac.prepared -> float -> float

  val phase_at : out:Ape_circuit.Netlist.node -> Ac.prepared -> float -> float
  (** Principal-value phase in degrees, in (−180, 180]. *)

  val unwrapped_phase_at :
    ?points_per_decade:int ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    float ->
    float
  (** Continuous phase in degrees at a frequency, unwrapped along a log
      grid from DC (default 8 points/decade over the 12 decades below
      the target).  Equals {!phase_at} exactly when the response never
      crosses ±180°; beyond that it keeps accumulating lag (−200°,
      −300°, …) instead of wrapping. *)

  val unity_gain_frequency :
    ?fmin:float ->
    ?fmax:float ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    float option

  val f_minus_3db :
    ?fmin:float ->
    ?fmax:float ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    float option

  val f_level_db :
    ?fmin:float ->
    ?fmax:float ->
    level_db:float ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    float option

  val phase_margin :
    ?fmin:float ->
    ?fmax:float ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    float option
  (** 180° + {!unwrapped_phase_at} the unity-gain frequency, so a
      response that lags more than 180° before reaching unity gain
      reports the true (negative) margin rather than a value shifted by
      360°. *)

  type bandpass = {
    f_center : float;
    peak_gain : float;
    f_low : float;
    f_high : float;
    bandwidth : float;
  }

  val bandpass_characteristics :
    ?fmin:float ->
    ?fmax:float ->
    out:Ape_circuit.Netlist.node ->
    Ac.prepared ->
    bandpass option

  val output_impedance_magnitude :
    out:Ape_circuit.Netlist.node -> freq:float -> Ac.prepared -> float
end

val dc_gain : out:Ape_circuit.Netlist.node -> Dc.op -> float
(** |V(out)| at s = 0 with the netlist's declared AC excitation (the AC
    system reduces to the real conductance matrix). *)

val dc_gain_signed : out:Ape_circuit.Netlist.node -> Dc.op -> float
(** {!dc_gain} with the sign recovered from the real ω → 0 solve
    (inverting stages report negative gain, matching the estimator's
    convention); see {!Prepared.dc_gain_signed}. *)

val gain_at : out:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** |V(out)| at a frequency in Hz. *)

val phase_at : out:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** Principal-value phase in degrees. *)

val unwrapped_phase_at :
  ?points_per_decade:int ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float ->
  float
(** See {!Prepared.unwrapped_phase_at}. *)

val unity_gain_frequency :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** Lowest frequency where |H| falls to 1, searched on
    [[fmin, fmax]] (defaults 1 Hz .. 10 GHz).  [None] if |H| never
    reaches 1 (e.g. the DC gain is already below unity). *)

val f_minus_3db :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** −3 dB bandwidth relative to the DC gain. *)

val f_level_db :
  ?fmin:float ->
  ?fmax:float ->
  level_db:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** Frequency where the response is [level_db] below DC (e.g. −20 dB
    for the paper's f_{−20dB} LPF row). *)

val phase_margin :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** 180° + the {e unwrapped} phase at the unity-gain frequency; see
    {!Prepared.phase_margin}. *)

type bandpass = Prepared.bandpass = {
  f_center : float;  (** peak frequency, Hz *)
  peak_gain : float;
  f_low : float;  (** lower −3 dB edge *)
  f_high : float;  (** upper −3 dB edge *)
  bandwidth : float;
}

val bandpass_characteristics :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  bandpass option
(** Peak search + two-sided −3 dB edges for band-pass responses. *)

val output_impedance_magnitude :
  out:Ape_circuit.Netlist.node -> freq:float -> Dc.op -> float
(** |V(out)| per 1 A of AC injection: the caller's netlist must contain
    a 1 A AC current source at [out] and no other AC excitation. *)
