(** Measurement extraction — the "sim" columns of the paper's tables.

    These routines play the role of SPICE [.MEASURE] post-processing:
    given a solved operating point they hunt for level crossings on the
    AC response with a coarse log scan refined by Brent's method, and
    post-process transient runs for slew and settling figures. *)

val dc_gain : out:Ape_circuit.Netlist.node -> Dc.op -> float
(** |V(out)| at s = 0 with the netlist's declared AC excitation (the AC
    system reduces to the real conductance matrix). *)

val dc_gain_signed : out:Ape_circuit.Netlist.node -> Dc.op -> float
(** {!dc_gain} with the sign recovered from the phase at 1 Hz (inverting
    stages report negative gain, matching the estimator's convention). *)

val gain_at : out:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** |V(out)| at a frequency in Hz. *)

val phase_at : out:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** Phase in degrees. *)

val unity_gain_frequency :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** Lowest frequency where |H| falls to 1, searched on
    [[fmin, fmax]] (defaults 1 Hz .. 10 GHz).  [None] if |H| never
    reaches 1 (e.g. the DC gain is already below unity). *)

val f_minus_3db :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** −3 dB bandwidth relative to the DC gain. *)

val f_level_db :
  ?fmin:float ->
  ?fmax:float ->
  level_db:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** Frequency where the response is [level_db] below DC (e.g. −20 dB
    for the paper's f_{−20dB} LPF row). *)

val phase_margin :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  float option
(** 180° + phase at the unity-gain frequency. *)

type bandpass = {
  f_center : float;  (** peak frequency, Hz *)
  peak_gain : float;
  f_low : float;  (** lower −3 dB edge *)
  f_high : float;  (** upper −3 dB edge *)
  bandwidth : float;
}

val bandpass_characteristics :
  ?fmin:float ->
  ?fmax:float ->
  out:Ape_circuit.Netlist.node ->
  Dc.op ->
  bandpass option
(** Peak search + two-sided −3 dB edges for band-pass responses. *)

val output_impedance_magnitude :
  out:Ape_circuit.Netlist.node -> freq:float -> Dc.op -> float
(** |V(out)| per 1 A of AC injection: the caller's netlist must contain
    a 1 A AC current source at [out] and no other AC excitation. *)
