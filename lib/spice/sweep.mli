(** DC sweep analysis: repeated operating-point solves over a source
    value, warm-starting each point from the previous solution (the
    continuation every SPICE ".DC" sweep uses).  Used for converter
    transfer curves and comparator trip points. *)

type point = {
  value : float;  (** swept source value *)
  op : Dc.op;
}

val run :
  source:string ->
  values:float list ->
  Ape_circuit.Netlist.t ->
  point list
(** Sweep the named V/I source through [values] (solved in the given
    order; sort them for best warm-start behaviour).  Raises
    {!Dc.No_convergence} if some point cannot be solved even from the
    neighbouring solution, and [Not_found] if the source does not
    exist. *)

val transfer :
  source:string ->
  out:Ape_circuit.Netlist.node ->
  values:float list ->
  Ape_circuit.Netlist.t ->
  (float * float) list
(** [(input, V(out))] pairs. *)

val crossing :
  source:string ->
  out:Ape_circuit.Netlist.node ->
  level:float ->
  lo:float ->
  hi:float ->
  Ape_circuit.Netlist.t ->
  float option
(** Input value at which [V(out)] crosses [level], located with a
    warm-started bisection; [None] when the output never crosses.  The
    endpoints are solved in order ([lo] first, cold; then [hi], warm
    from [lo]) so the result is independent of compiler evaluation
    order. *)
