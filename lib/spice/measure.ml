let dc_gain ~out op = Ac.magnitude_at ~node:out op 0.
let gain_at ~out op freq = Ac.magnitude_at ~node:out op freq

let phase_at ~out op freq =
  let v = Ac.voltage op (Ac.solve_at op freq) out in
  Complex.arg v *. 180. /. Float.pi

let dc_gain_signed ~out op =
  let mag = dc_gain ~out op in
  (* Recover the sign from the phase at a low frequency: an inverting
     path sits near ±180°. *)
  let ph = phase_at ~out op 1.0 in
  if Float.abs ph > 90. then -.mag else mag

(* Find the lowest crossing of |H(f)| = level by scanning a log grid for
   a bracket and refining with Brent in log-frequency. *)
let find_crossing ~fmin ~fmax ~level ~out op =
  let g f = gain_at ~out op f -. level in
  let n = max 8 (int_of_float (8. *. Float.log10 (fmax /. fmin))) in
  let grid = Ape_util.Float_ext.logspace fmin fmax n in
  let rec scan = function
    | a :: (b :: _ as rest) ->
      let ga = g a and gb = g b in
      if ga = 0. then Some a
      else if ga *. gb < 0. then begin
        let h lf = g (10. ** lf) in
        let lf =
          Ape_util.Rootfind.brent ~tol:1e-9 h (Float.log10 a) (Float.log10 b)
        in
        Some (10. ** lf)
      end
      else scan rest
    | [ last ] -> if g last = 0. then Some last else None
    | [] -> None
  in
  scan grid

let unity_gain_frequency ?(fmin = 1.) ?(fmax = 1e10) ~out op =
  find_crossing ~fmin ~fmax ~level:1. ~out op

let f_minus_3db ?(fmin = 1.) ?(fmax = 1e10) ~out op =
  let a0 = dc_gain ~out op in
  if a0 <= 0. then None
  else find_crossing ~fmin ~fmax ~level:(a0 /. Float.sqrt 2.) ~out op

let f_level_db ?(fmin = 1.) ?(fmax = 1e10) ~level_db ~out op =
  let a0 = dc_gain ~out op in
  if a0 <= 0. then None
  else
    let level = a0 *. Ape_util.Float_ext.gain_of_db level_db in
    find_crossing ~fmin ~fmax ~level ~out op

let phase_margin ?fmin ?fmax ~out op =
  match unity_gain_frequency ?fmin ?fmax ~out op with
  | None -> None
  | Some ugf -> Some (180. +. phase_at ~out op ugf)

type bandpass = {
  f_center : float;
  peak_gain : float;
  f_low : float;
  f_high : float;
  bandwidth : float;
}

let bandpass_characteristics ?(fmin = 1.) ?(fmax = 1e8) ~out op =
  (* Coarse peak search on a dense log grid, then golden-section refine. *)
  let n = max 16 (int_of_float (24. *. Float.log10 (fmax /. fmin))) in
  let grid = Array.of_list (Ape_util.Float_ext.logspace fmin fmax n) in
  let gains = Array.map (fun f -> gain_at ~out op f) grid in
  let peak_idx = ref 0 in
  Array.iteri (fun i g -> if g > gains.(!peak_idx) then peak_idx := i) gains;
  if !peak_idx = 0 || !peak_idx = Array.length grid - 1 then None
  else begin
    (* Golden-section refinement in log f around the grid peak. *)
    let lg f = Float.log10 f in
    let obj lf = -.gain_at ~out op (10. ** lf) in
    let a = ref (lg grid.(!peak_idx - 1)) and b = ref (lg grid.(!peak_idx + 1)) in
    let phi = 0.6180339887498949 in
    for _ = 1 to 40 do
      let x1 = !b -. (phi *. (!b -. !a)) and x2 = !a +. (phi *. (!b -. !a)) in
      if obj x1 < obj x2 then b := x2 else a := x1
    done;
    let f_center = 10. ** (0.5 *. (!a +. !b)) in
    let peak_gain = gain_at ~out op f_center in
    let level = peak_gain /. Float.sqrt 2. in
    let g f = gain_at ~out op f -. level in
    let low =
      match
        (try
           Some
             (Ape_util.Rootfind.brent
                (fun lf -> g (10. ** lf))
                (lg fmin) (lg f_center))
         with Ape_util.Rootfind.No_bracket -> None)
      with
      | Some lf -> Some (10. ** lf)
      | None -> None
    in
    let high =
      match
        (try
           Some
             (Ape_util.Rootfind.brent
                (fun lf -> g (10. ** lf))
                (lg f_center) (lg fmax))
         with Ape_util.Rootfind.No_bracket -> None)
      with
      | Some lf -> Some (10. ** lf)
      | None -> None
    in
    match (low, high) with
    | Some f_low, Some f_high ->
      Some { f_center; peak_gain; f_low; f_high; bandwidth = f_high -. f_low }
    | _ -> None
  end

let output_impedance_magnitude ~out ~freq op = gain_at ~out op freq
