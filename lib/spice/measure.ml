(* All searches are expressed against a prepared AC engine so that one
   netlist stamping serves every solve; the historical op-based API at
   the bottom prepares once per call. *)

module Prepared = struct
  let solution ~out p freq =
    Ac.voltage_prepared p (Ac.solve_prepared p freq) out

  let dc_gain ~out p = Complex.norm (solution ~out p 0.)
  let gain_at ~out p freq = Complex.norm (solution ~out p freq)

  let phase_at ~out p freq =
    Complex.arg (solution ~out p freq) *. 180. /. Float.pi

  let dc_gain_signed ~out p =
    (* At ω → 0 the AC system is real, so the output phasor is real up
       to a ±0 imaginary part: the sign of the gain is the sign of its
       real part.  (Probing the phase at a fixed nonzero frequency, as
       this function once did, misreads circuits whose poles sit below
       the probe frequency.) *)
    let v = solution ~out p 0. in
    if v.Complex.re < 0. then -.Complex.norm v else Complex.norm v

  (* Gains of a frequency grid, evaluated lazily in panel-width blocks:
     the scan below usually brackets its crossing early, so whole-grid
     evaluation would waste solves, but per-point evaluation would waste
     the blocked sparse kernel.  Values are bit-identical to per-point
     [gain_at] — [Ac.solve_many] guarantees it. *)
  let blocked_gains ~out p (grid : float array) =
    let npts = Array.length grid in
    let k = max 1 (Ac.panel_width ()) in
    let gains = Array.make npts Float.nan in
    let have = ref 0 in
    fun i ->
      while !have <= i do
        let lo = !have in
        let m = min k (npts - lo) in
        let sols = Ac.solve_many p (Array.sub grid lo m) in
        Array.iteri
          (fun kk s ->
            gains.(lo + kk) <- Complex.norm (Ac.voltage_prepared p s out))
          sols;
        have := lo + m
      done;
      gains.(i)

  (* Find the lowest crossing of |H(f)| = level by scanning a log grid
     for a bracket and refining with Brent in log-frequency. *)
  let find_crossing ~fmin ~fmax ~level ~out p =
    let n = max 8 (int_of_float (8. *. Float.log10 (fmax /. fmin))) in
    let grid = Array.of_list (Ape_util.Float_ext.logspace fmin fmax n) in
    let npts = Array.length grid in
    let gain = blocked_gains ~out p grid in
    let g i = gain i -. level in
    let rec scan i =
      if i >= npts - 1 then
        if npts > 0 && g (npts - 1) = 0. then Some grid.(npts - 1) else None
      else begin
        let ga = g i and gb = g (i + 1) in
        if ga = 0. then Some grid.(i)
        else if ga *. gb < 0. then begin
          let h lf = gain_at ~out p (10. ** lf) -. level in
          let lf =
            Ape_util.Rootfind.brent ~tol:1e-9 h
              (Float.log10 grid.(i))
              (Float.log10 grid.(i + 1))
          in
          Some (10. ** lf)
        end
        else scan (i + 1)
      end
    in
    scan 0

  let unity_gain_frequency ?(fmin = 1.) ?(fmax = 1e10) ~out p =
    find_crossing ~fmin ~fmax ~level:1. ~out p

  let f_minus_3db ?(fmin = 1.) ?(fmax = 1e10) ~out p =
    let a0 = dc_gain ~out p in
    if a0 <= 0. then None
    else find_crossing ~fmin ~fmax ~level:(a0 /. Float.sqrt 2.) ~out p

  let f_level_db ?(fmin = 1.) ?(fmax = 1e10) ~level_db ~out p =
    let a0 = dc_gain ~out p in
    if a0 <= 0. then None
    else
      let level = a0 *. Ape_util.Float_ext.gain_of_db level_db in
      find_crossing ~fmin ~fmax ~level ~out p

  let unwrapped_phase_at ?(points_per_decade = 8) ~out p freq =
    if freq <= 0. then phase_at ~out p freq
    else begin
      (* Continuous phase from DC: anchor at the exact DC phase (0° or
         180° — the ω → 0 phasor is real), then walk a log grid up to
         [freq] counting the ±360° wraps of the principal value.  The
         returned value is the principal-value phase at [freq] minus
         the accumulated wraps, so when no wrap occurs it equals
         {!phase_at} exactly. *)
      let ph0 =
        let v = solution ~out p 0. in
        if v.Complex.re < 0. then 180. else 0.
      in
      let fstart = freq *. 1e-12 in
      let n =
        max 2 (1 + (12 * points_per_decade))
        (* 12 decades below [freq] — comfortably under any pole the
           simulator can resolve. *)
      in
      let grid =
        match List.rev (Ape_util.Float_ext.logspace fstart freq n) with
        | _approx_endpoint :: rest -> List.rev (freq :: rest)
        | [] -> [ freq ]
      in
      let wraps = ref 0 and prev = ref ph0 in
      (* The walk needs every grid point anyway — solve them blocked. *)
      Array.iter
        (fun s ->
          let ph =
            Complex.arg (Ac.voltage_prepared p s out) *. 180. /. Float.pi
          in
          let d = ph -. !prev in
          wraps := !wraps + int_of_float (Float.round (d /. 360.));
          prev := ph)
        (Ac.solve_many p (Array.of_list grid));
      !prev -. (360. *. float_of_int !wraps)
    end

  let phase_margin ?fmin ?fmax ~out p =
    match unity_gain_frequency ?fmin ?fmax ~out p with
    | None -> None
    | Some ugf -> Some (180. +. unwrapped_phase_at ~out p ugf)

  type bandpass = {
    f_center : float;
    peak_gain : float;
    f_low : float;
    f_high : float;
    bandwidth : float;
  }

  let bandpass_characteristics ?(fmin = 1.) ?(fmax = 1e8) ~out p =
    (* Coarse peak search on a dense log grid, then golden-section
       refine. *)
    let n = max 16 (int_of_float (24. *. Float.log10 (fmax /. fmin))) in
    let grid = Array.of_list (Ape_util.Float_ext.logspace fmin fmax n) in
    let gains =
      (* The peak search reads the whole grid — solve it blocked. *)
      Array.map
        (fun s -> Complex.norm (Ac.voltage_prepared p s out))
        (Ac.solve_many p grid)
    in
    let peak_idx = ref 0 in
    Array.iteri (fun i g -> if g > gains.(!peak_idx) then peak_idx := i) gains;
    if !peak_idx = 0 || !peak_idx = Array.length grid - 1 then None
    else begin
      (* Golden-section refinement in log f around the grid peak. *)
      let lg f = Float.log10 f in
      let obj lf = -.gain_at ~out p (10. ** lf) in
      let a = ref (lg grid.(!peak_idx - 1))
      and b = ref (lg grid.(!peak_idx + 1)) in
      let phi = 0.6180339887498949 in
      for _ = 1 to 40 do
        let x1 = !b -. (phi *. (!b -. !a)) and x2 = !a +. (phi *. (!b -. !a)) in
        if obj x1 < obj x2 then b := x2 else a := x1
      done;
      let f_center = 10. ** (0.5 *. (!a +. !b)) in
      let peak_gain = gain_at ~out p f_center in
      let level = peak_gain /. Float.sqrt 2. in
      let g f = gain_at ~out p f -. level in
      let low =
        match
          (try
             Some
               (Ape_util.Rootfind.brent
                  (fun lf -> g (10. ** lf))
                  (lg fmin) (lg f_center))
           with Ape_util.Rootfind.No_bracket -> None)
        with
        | Some lf -> Some (10. ** lf)
        | None -> None
      in
      let high =
        match
          (try
             Some
               (Ape_util.Rootfind.brent
                  (fun lf -> g (10. ** lf))
                  (lg f_center) (lg fmax))
           with Ape_util.Rootfind.No_bracket -> None)
        with
        | Some lf -> Some (10. ** lf)
        | None -> None
      in
      match (low, high) with
      | Some f_low, Some f_high ->
        Some
          { f_center; peak_gain; f_low; f_high; bandwidth = f_high -. f_low }
      | _ -> None
    end

  let output_impedance_magnitude ~out ~freq p = gain_at ~out p freq
end

(* Op-based entry points: prepare once per call.  Callers making several
   measurements on one operating point should [Ac.prepare] themselves
   and use {!Prepared} directly to share the stamping. *)

let dc_gain ~out op = Prepared.dc_gain ~out (Ac.prepare op)
let dc_gain_signed ~out op = Prepared.dc_gain_signed ~out (Ac.prepare op)
let gain_at ~out op freq = Prepared.gain_at ~out (Ac.prepare op) freq
let phase_at ~out op freq = Prepared.phase_at ~out (Ac.prepare op) freq

let unity_gain_frequency ?fmin ?fmax ~out op =
  Prepared.unity_gain_frequency ?fmin ?fmax ~out (Ac.prepare op)

let f_minus_3db ?fmin ?fmax ~out op =
  Prepared.f_minus_3db ?fmin ?fmax ~out (Ac.prepare op)

let f_level_db ?fmin ?fmax ~level_db ~out op =
  Prepared.f_level_db ?fmin ?fmax ~level_db ~out (Ac.prepare op)

let unwrapped_phase_at ?points_per_decade ~out op freq =
  Prepared.unwrapped_phase_at ?points_per_decade ~out (Ac.prepare op) freq

let phase_margin ?fmin ?fmax ~out op =
  Prepared.phase_margin ?fmin ?fmax ~out (Ac.prepare op)

type bandpass = Prepared.bandpass = {
  f_center : float;
  peak_gain : float;
  f_low : float;
  f_high : float;
  bandwidth : float;
}

let bandpass_characteristics ?fmin ?fmax ~out op =
  Prepared.bandpass_characteristics ?fmin ?fmax ~out (Ac.prepare op)

let output_impedance_magnitude ~out ~freq op =
  Prepared.output_impedance_magnitude ~out ~freq (Ac.prepare op)
