exception Cancelled

let recommended_jobs () = Domain.recommended_domain_count ()

let c_maps = Ape_obs.counter "pool.maps"
let c_spawns = Ape_obs.counter "pool.domain_spawns"
let c_tasks = Ape_obs.counter "pool.tasks"
let c_pools = Ape_obs.counter "pool.creates"
let c_cancelled = Ape_obs.counter "pool.cancelled_tasks"

(* ------------------------------------------------------------------ *)
(* Persistent pool: long-lived worker domains draining a job queue.    *)
(* ------------------------------------------------------------------ *)

type 'a outcome = Pending | Returned of 'a | Raised of exn

type 'a task = {
  t_lock : Mutex.t;
  t_done : Condition.t;
  mutable t_outcome : 'a outcome;
}

(* A queued job is the pair of continuations submit built around the
   user thunk: [run] computes and publishes the outcome, [cancel]
   publishes [Raised Cancelled] without running the thunk.  Neither
   ever raises. *)
type job = { run : unit -> unit; cancel : unit -> unit }

type t = {
  p_lock : Mutex.t;
  p_wake : Condition.t;  (* signalled on submit and on shutdown *)
  p_queue : job Queue.t;
  mutable p_open : bool;  (* accepting submissions *)
  mutable p_domains : unit Domain.t array;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Worker loop: pop-run until the pool is closed AND the queue is
   drained.  A job never raises (submit wraps the thunk), so a raise in
   user code can neither kill a worker nor deadlock a join. *)
let rec worker_loop pool =
  Mutex.lock pool.p_lock;
  while Queue.is_empty pool.p_queue && pool.p_open do
    Condition.wait pool.p_wake pool.p_lock
  done;
  match Queue.take_opt pool.p_queue with
  | Some job ->
    Mutex.unlock pool.p_lock;
    job.run ();
    worker_loop pool
  | None ->
    (* closed and drained *)
    Mutex.unlock pool.p_lock

let create ~workers =
  let workers = Int.max 0 workers in
  Ape_obs.incr c_pools;
  let pool =
    {
      p_lock = Mutex.create ();
      p_wake = Condition.create ();
      p_queue = Queue.create ();
      p_open = true;
      p_domains = [||];
    }
  in
  pool.p_domains <-
    Array.init workers (fun _ ->
        Ape_obs.incr c_spawns;
        Domain.spawn (fun () ->
            (* Merge this worker's observability sink into the global
               accumulator whether or not a job raised through [run]
               (it cannot) or the loop itself fails, so joined pools
               aggregate every recorded metric. *)
            Fun.protect ~finally:Ape_obs.flush_domain (fun () ->
                worker_loop pool)));
  pool

let size pool = Array.length pool.p_domains

let publish task outcome =
  with_lock task.t_lock (fun () ->
      task.t_outcome <- outcome;
      Condition.broadcast task.t_done)

let submit pool f =
  Ape_obs.incr c_tasks;
  let task =
    { t_lock = Mutex.create (); t_done = Condition.create (); t_outcome = Pending }
  in
  let run () =
    let outcome = match f () with v -> Returned v | exception e -> Raised e in
    publish task outcome
  in
  if Array.length pool.p_domains = 0 then
    (* No workers: run inline so await can never block forever. *)
    run ()
  else begin
    let accepted =
      with_lock pool.p_lock (fun () ->
          if pool.p_open then begin
            Queue.add
              { run; cancel = (fun () ->
                    Ape_obs.incr c_cancelled;
                    publish task (Raised Cancelled)) }
              pool.p_queue;
            Condition.signal pool.p_wake;
            true
          end
          else false)
    in
    if not accepted then invalid_arg "Pool.submit: pool is shut down"
  end;
  task

let await task =
  let outcome =
    with_lock task.t_lock (fun () ->
        while match task.t_outcome with Pending -> true | _ -> false do
          Condition.wait task.t_done task.t_lock
        done;
        task.t_outcome)
  in
  match outcome with
  | Returned v -> v
  | Raised e -> raise e
  | Pending -> assert false

(* Only the first shutdown closes the pool and joins the workers:
   [Domain.join] raises on a second join, and the daemon signal path
   (serve's SIGINT handler racing the normal exit path) legitimately
   calls shutdown twice.  [p_open = false] doubles as the
   shutdown-started marker — nothing else ever clears it. *)
let shutdown ?(cancel_pending = false) pool =
  let cancelled, first =
    with_lock pool.p_lock (fun () ->
        if not pool.p_open then ([], false)
        else begin
          pool.p_open <- false;
          let cancelled =
            if cancel_pending then begin
              let jobs = List.of_seq (Queue.to_seq pool.p_queue) in
              Queue.clear pool.p_queue;
              jobs
            end
            else []
          in
          Condition.broadcast pool.p_wake;
          (cancelled, true)
        end)
  in
  if first then begin
    List.iter (fun job -> job.cancel ()) cancelled;
    Array.iter Domain.join pool.p_domains
  end

let with_pool ~workers f =
  let pool = create ~workers in
  match f pool with
  | v ->
    shutdown pool;
    v
  | exception e ->
    (* The body failed: don't run work it will never collect. *)
    shutdown ~cancel_pending:true pool;
    raise e

(* ------------------------------------------------------------------ *)
(* Deterministic parallel map, expressed over the persistent pool.     *)
(* ------------------------------------------------------------------ *)

(* Fixed contiguous chunks rather than work stealing: task cost is
   near-uniform for the workloads this pool serves (same measurement on
   perturbed parameters, same solve on different frequencies), so static
   partitioning loses little balance and keeps the execution plan a pure
   function of (n, jobs) — nothing about scheduling can leak into
   results. *)
let chunk_bounds ~jobs n =
  let jobs = Int.max 1 (Int.min jobs n) in
  let base = n / jobs and rem = n mod jobs in
  Array.init jobs (fun k ->
      let lo = (k * base) + Int.min k rem in
      let len = base + if k < rem then 1 else 0 in
      (lo, len))

let map ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative length";
  Ape_obs.incr c_maps;
  Ape_obs.add c_tasks n;
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let fill (lo, len) =
      for i = lo to lo + len - 1 do
        results.(i) <- Some (f i)
      done
    in
    let chunks = chunk_bounds ~jobs n in
    with_pool ~workers:(Array.length chunks - 1) (fun pool ->
        let tasks =
          Array.init
            (Array.length chunks - 1)
            (fun k -> submit pool (fun () -> fill chunks.(k + 1)))
        in
        (* The calling domain works too; collect the first exception from
           any chunk but always await every task so no result is torn. *)
        let main_exn =
          match fill chunks.(0) with () -> None | exception e -> Some e
        in
        let first_exn =
          Array.fold_left
            (fun acc t ->
              match await t with
              | () -> acc
              | exception e -> (match acc with None -> Some e | some -> some))
            main_exn tasks
        in
        match first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* every index filled *))
      results
  end
