let recommended_jobs () = Domain.recommended_domain_count ()

let c_maps = Ape_obs.counter "pool.maps"
let c_spawns = Ape_obs.counter "pool.domain_spawns"
let c_tasks = Ape_obs.counter "pool.tasks"

(* Fixed contiguous chunks rather than work stealing: task cost is
   near-uniform for the workloads this pool serves (same measurement on
   perturbed parameters, same solve on different frequencies), so static
   partitioning loses little balance and keeps the execution plan a pure
   function of (n, jobs) — nothing about scheduling can leak into
   results. *)
let chunk_bounds ~jobs n =
  let jobs = Int.max 1 (Int.min jobs n) in
  let base = n / jobs and rem = n mod jobs in
  Array.init jobs (fun k ->
      let lo = (k * base) + Int.min k rem in
      let len = base + if k < rem then 1 else 0 in
      (lo, len))

let map ~jobs n f =
  if n < 0 then invalid_arg "Pool.map: negative length";
  Ape_obs.incr c_maps;
  Ape_obs.add c_tasks n;
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let fill (lo, len) =
      for i = lo to lo + len - 1 do
        results.(i) <- Some (f i)
      done
    in
    let chunks = chunk_bounds ~jobs n in
    let workers =
      Array.init
        (Array.length chunks - 1)
        (fun k ->
          Ape_obs.incr c_spawns;
          Domain.spawn (fun () ->
              (* Merge this worker's observability sink into the global
                 accumulator whether or not its chunk raises, so joined
                 parallel runs aggregate every recorded metric. *)
              Fun.protect ~finally:Ape_obs.flush_domain (fun () ->
                  fill chunks.(k + 1))))
    in
    (* Always join every worker, even if a chunk raises, so no domain
       outlives the call; the first exception is re-raised after. *)
    let main_exn =
      match fill chunks.(0) with () -> None | exception e -> Some e
    in
    let first_exn =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e -> (match acc with None -> Some e | some -> some))
        main_exn workers
    in
    (match first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* every index filled *))
      results
  end
