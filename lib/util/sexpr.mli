(** Positioned S-expression reader.

    The [Ape_vase.Sexp] reader throws positions away, which is fine for
    a spec file a human just wrote but useless for anything that must
    answer "entry 17 of your 1000-entry file is malformed {e here}".
    This reader keeps a line/column span on every atom and list, so
    parsers layered on top (serve job files, calibration cards) can
    attach precise locations to error records.

    Syntax: atoms are bare tokens or double-quoted strings (with
    backslash escapes for backslash, double quote, [n] and [t] — needed
    for netlist file paths); comments run from [;] to end of line. *)

type pos = { line : int; col : int }  (** 1-based *)

type span = { s_start : pos; s_end : pos }
(** [s_end] is the position one past the last character. *)

type t = Atom of string * span | List of t list * span

exception Error of { pos : pos; msg : string }
(** Structural failure: unbalanced parenthesis, unterminated string. *)

val parse : string -> t list
(** Parse a sequence of top-level S-expressions.  Raises {!Error} on
    structural failure; never on content (any token is a valid atom). *)

val span_of : t -> span

val pp_span : span -> string
(** ["3:14-3:21"] — or ["3:14"] when the span covers one column. *)

val atom : t -> string
(** The atom's text; raises {!Error} at the node's position when the
    node is a list. *)
