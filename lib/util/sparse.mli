(** Sparse matrices in compressed-sparse-column form with a
    symbolic-once/numeric-many LU (KLU-style).

    MNA systems are >90 % zeros and every analysis re-solves the same
    sparsity pattern with different values: AC sweeps per frequency,
    Newton per iteration.  This module splits the work accordingly:

    - a {!pattern} is built once per (netlist, index) pair through
      {!Builder} and never changes;
    - {!Real.factor}/{!Csplit.factor} run a full left-looking
      Gilbert–Peierls LU with partial pivoting over a greedy
      minimum-degree column ordering — the {e symbolic analysis}: it
      fixes the column order, the row-pivot sequence and the exact
      nonzero structure of L and U;
    - {!Real.refactor}/{!Csplit.refactor} replay only the numeric part
      over the stored structure with the {e same} pivot sequence — no
      graph traversal, no allocation — which is the per-frequency /
      per-iteration hot path.

    A refactorisation with frozen pivots can go numerically bad when the
    values drift far from the ones the pivots were chosen for; it then
    raises {!Unstable} and the caller falls back to a fresh pivoting
    {!Real.factor} (counted under [sparse.refactor_unstable]).

    All factor value storage and workspaces are unboxed
    [Bigarray.Array1] float buffers.  Unlike the dense
    [Matrix.Csplit] path there is {e no} bit-identity contract with the
    dense LU: the elimination order differs, so results agree only to
    rounding (the differential suite in [test/test_sparse.ml] pins the
    tolerance). *)

exception Singular
(** The matrix is numerically (or structurally) singular. *)

exception Unstable
(** A fixed-pivot {!Real.refactor}/{!Csplit.refactor} met a pivot too
    small relative to its column — re-run the full pivoting
    factorisation. *)

type pattern
(** Immutable compressed-sparse-column nonzero structure of an n×n
    matrix (rows sorted and unique within each column). *)

module Builder : sig
  type t

  val create : int -> t
  (** [create n] starts an empty n×n pattern ([n >= 0]). *)

  val add : t -> int -> int -> unit
  (** [add b row col] declares a structural nonzero.  Duplicates are
      fine (collapsed by {!compile}).  Raises [Invalid_argument] out of
      range. *)

  val compile : t -> pattern
end

val dim : pattern -> int
val nnz : pattern -> int

val slot : pattern -> row:int -> col:int -> int
(** Index of (row, col) in the value arrays.  Raises [Not_found] when
    the entry is not part of the pattern. *)

val iter : pattern -> (int -> int -> int -> unit) -> unit
(** [iter p f] calls [f slot row col] for every structural entry,
    column-major, rows ascending. *)

(** Real-valued matrices over a shared {!pattern}. *)
module Real : sig
  type t
  (** Per-slot values (unboxed float64 bigarray) over a pattern. *)

  val create : pattern -> t
  (** All-zero values. *)

  val pattern : t -> pattern
  val clear : t -> unit

  val add_slot : t -> int -> float -> unit
  (** Accumulate into one slot — the MNA stamp primitive (slots come
      from {!slot} or a precompiled stamp plan). *)

  val get_slot : t -> int -> float
  val set_slot : t -> int -> float -> unit

  type factor
  (** Symbolic structure (column order, pivot sequence, L/U patterns)
      plus current numeric L/U values and workspaces. *)

  val factor : t -> factor
  (** Full pivoting factorisation (the symbolic analysis).  Raises
      {!Singular}. *)

  val refactor : factor -> t -> unit
  (** Numeric-only refactorisation with the stored pivot sequence; the
      values [t] must share the factor's pattern (physical equality).
      Raises {!Unstable} on a degenerate frozen pivot, {!Singular} on an
      exactly vanishing one. *)

  val solve : factor -> float array -> float array
  (** [solve f b] returns [x] with [A x = b] for the last
      (re)factorised values.  [b] is not modified. *)

  val solve_transposed : factor -> float array -> float array
  (** [solve_transposed f b] returns [y] with [Aᵀ y = b] for the last
      (re)factorised values — no transposed factorisation needed. *)

  val clone : factor -> factor
  (** Copy the mutable numeric storage, sharing the immutable symbolic
      skeleton — gives an independent workspace for another domain whose
      {!refactor}/{!solve} arithmetic is identical to the original's. *)

  val lnz : factor -> int
  (** Strictly-lower entries of L (unit diagonal implicit). *)

  val unz : factor -> int
  (** Entries of U including the diagonal. *)
end

(** Split-storage complex matrices over a shared {!pattern} — separate
    re/im float64 bigarrays, Smith's division and [Float.hypot] pivot
    magnitudes exactly as the dense [Matrix.Csplit]. *)
module Csplit : sig
  type t

  val create : pattern -> t
  val pattern : t -> pattern
  val clear : t -> unit
  val add_slot : t -> int -> float -> float -> unit
  val get_slot : t -> int -> float * float
  val set_slot : t -> int -> float -> float -> unit

  val assemble_gc : t -> g:Real.t -> c:Real.t -> omega:float -> unit
  (** The AC hot-path fill: [re(s) <- g(s); im(s) <- omega *. c(s)] over
      every slot.  All three must share one pattern. *)

  type factor

  val factor : t -> factor
  val refactor : factor -> t -> unit
  val solve : factor -> Complex.t array -> Complex.t array

  val solve_transposed : factor -> Complex.t array -> Complex.t array
  (** [solve_transposed f b] returns [y] with [Aᵀ y = b] for the last
      (re)factorised values.  This is the reciprocity workhorse: one
      transposed solve against an output selector [e_out] yields the
      transfer impedance from {e every} injection site to the output at
      once (adjoint noise analysis). *)

  val clone : factor -> factor
  val lnz : factor -> int
  val unz : factor -> int

  (** Frequency panels: the numeric values of K same-pattern systems in
      a slot-major, lane-stride-K structure-of-arrays layout, refactored
      and solved by {e one} traversal of the frozen symbolic structure.
      Lanes never mix arithmetically, so each lane's result is bitwise
      identical to the scalar {!refactor}/{!solve} path; a lane whose
      frozen pivot goes degenerate is flagged via {!Panel.ok} instead of
      raising, leaving the other lanes valid. *)
  module Panel : sig
    type vals
    (** K value sets over one shared pattern. *)

    val create : pattern -> k:int -> vals
    (** [create pat ~k] allocates a panel of physical width [k >= 1]. *)

    val width : vals -> int
    (** Physical lane count (the allocation stride). *)

    val lanes : vals -> int
    (** Lanes currently in use (set by {!assemble_gc}/{!use_lanes}). *)

    val use_lanes : vals -> int -> unit
    (** Narrow the active lane count for a final partial panel. *)

    val set_slot : vals -> int -> lane:int -> float -> float -> unit
    (** [set_slot v s ~lane re im] writes one slot of one lane (tests
        and bespoke assemblies; the sweep uses {!assemble_gc}). *)

    val assemble_gc : vals -> g:Real.t -> c:Real.t -> omegas:float array -> unit
    (** Per-lane AC fill: lane [kk] gets [re(s) = g(s)],
        [im(s) = omegas.(kk) *. c(s)]; sets the active lane count to
        [Array.length omegas] (which must be in [1..width]). *)

    type pfactor
    (** Panel numeric storage bound to one scalar {!factor}'s symbolic
        skeleton. *)

    val prepare : factor -> k:int -> pfactor
    (** Allocate panel L/U/workspace storage replaying [factor]'s pivot
        sequence over [k] lanes. *)

    val refactor : pfactor -> vals -> unit
    (** One symbolic traversal, K numeric refactorisations.  Never
        raises on a degenerate lane — the lane is excluded from
        {!ok} and the caller re-solves it through the scalar path. *)

    val solve : pfactor -> Complex.t array -> Complex.t array array
    (** [solve pf b] solves all active lanes against the shared
        right-hand side [b]; element [kk] is lane [kk]'s solution
        (garbage when [ok pf kk] is false). *)

    val ok : pfactor -> int -> bool
    (** Whether lane [kk] of the last {!refactor} passed every
        pivot-stability test (mirrors the scalar path's
        {!Unstable}/{!Singular} conditions exactly). *)
  end
end

val min_degree : pattern -> int array
(** The greedy minimum-degree column ordering {!Real.factor} uses
    (computed on the symmetrised pattern; deterministic smallest-index
    tie-break).  Exposed for tests. *)
