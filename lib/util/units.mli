(** Engineering units: SI prefixes, engineering-notation formatting and the
    handful of physical constants the device models need.

    All quantities in the code base are SI (volts, amperes, farads, metres,
    hertz, watts, seconds).  Helpers such as {!micro} and {!mega} make the
    source read like the paper's tables ([5000. *. micro *. micro] is
    5000 square microns). *)

(** {1 SI prefixes} *)

val tera : float
val giga : float
val mega : float
val kilo : float
val milli : float
val micro : float
val nano : float
val pico : float
val femto : float

(** {1 Common derived helpers} *)

val um : float
(** One micrometre in metres (alias of {!micro}). *)

val um2 : float
(** One square micrometre in square metres. *)

val khz : float
val mhz : float
val pf : float
val ua : float
val mw : float

(** {1 Physical constants} *)

val q_electron : float
(** Elementary charge, C. *)

val k_boltzmann : float
(** Boltzmann constant, J/K. *)

val eps_0 : float
(** Vacuum permittivity, F/m. *)

val eps_ox : float
(** Permittivity of SiO2, F/m. *)

val eps_si : float
(** Permittivity of silicon, F/m. *)

val thermal_voltage : ?temp_k:float -> unit -> float
(** [thermal_voltage ()] is kT/q at [temp_k] (default 300.15 K). *)

(** {1 Formatting} *)

val to_eng : ?digits:int -> float -> string
(** [to_eng x] renders [x] in engineering notation with an SI prefix:
    [to_eng 4.67e6 = "4.67M"], [to_eng 1.3e-5 = "13u"].  [digits] is the
    number of significant digits (default 3). *)

val to_eng_unit : ?digits:int -> string -> float -> string
(** [to_eng_unit "Hz" 2.64e6 = "2.64MHz"]. *)

val to_exact : float -> string
(** Shortest decimal representation that parses back (with
    [float_of_string]) to the identical IEEE double — for machine-read
    output such as netlists and golden tables, where {!to_eng}'s 3-digit
    rounding would lose information. *)

val pp : Format.formatter -> float -> unit
(** Pretty-print with {!to_eng}. *)
