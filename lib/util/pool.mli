(** Deterministic parallel execution over OCaml 5 domains.

    Two layers:

    {2 Persistent pool}

    [create ~workers] spawns [workers] long-lived domains that drain a
    shared job queue; [submit] enqueues a thunk and returns a join
    handle, [await] blocks until it finishes and returns its value — or
    re-raises the exception the thunk died with, so a failing worker
    task surfaces at the join instead of hanging the caller.  One pool
    can serve many submission rounds (the parallel-tempering annealer
    reuses one pool across every exchange round), amortising domain
    spawns.

    [shutdown] closes the pool: no new submissions are accepted, queued
    work is drained (or completed with {!Cancelled} when
    [~cancel_pending:true]) and every worker domain is joined.  Worker
    domains flush their {!Ape_obs} sinks into the global accumulator as
    they exit, so joined pools aggregate every recorded metric.
    [with_pool] brackets a pool's lifetime and cancels outstanding work
    if the body raises.

    A pool created with [workers = 0] runs every submitted thunk inline
    on the calling domain — [await] can never block forever.

    {2 One-shot map}

    [map ~jobs n f] computes [|f 0; ...; f (n-1)|], splitting the index
    range into [jobs] fixed contiguous chunks over a temporary pool (the
    calling domain works too).  Because the partition is a pure function
    of [(n, jobs)] and [f] is applied to every index exactly once, the
    result array — and hence any order-respecting aggregation of it — is
    identical for every [jobs] value, provided [f i] itself depends only
    on [i] (give each sample its own {!Rng.split_n} stream, or per-call
    workspaces for solver tasks).  [jobs <= 1] runs sequentially with no
    domain spawned.  An exception raised by [f] is re-raised by [map]
    after every chunk has been joined.

    This pool serves the Monte Carlo runner (re-exported as
    [Ape_mc.Pool]), the AC sweep's parallel frequency grids
    ([Ape_spice.Ac.sweep ~jobs]) and the multi-chain synthesis engine
    ([Ape_synth.Anneal.optimize_tempered]). *)

exception Cancelled
(** Raised by {!await} for tasks discarded by
    [shutdown ~cancel_pending:true] (or an exceptional {!with_pool}
    exit) before a worker picked them up. *)

type t
(** A persistent worker pool. *)

type 'a task
(** The join handle for one submitted thunk. *)

val create : workers:int -> t
(** Spawn [max 0 workers] long-lived worker domains.  [workers = 0]
    degenerates to inline execution at {!submit} time. *)

val size : t -> int
(** Number of worker domains (0 for an inline pool). *)

val submit : t -> (unit -> 'a) -> 'a task
(** Enqueue a thunk.  Raises [Invalid_argument] if the pool has been
    shut down.  The thunk's exceptions are captured and re-raised by
    {!await}, never by the worker. *)

val await : 'a task -> 'a
(** Block until the task finishes; return its value or re-raise its
    exception ({!Cancelled} if the task was discarded). *)

val shutdown : ?cancel_pending:bool -> t -> unit
(** Close the pool and join every worker.  Queued-but-unstarted jobs
    are run to completion by default, or completed with {!Cancelled}
    when [cancel_pending] is true.  Idempotent: only the first call
    cancels and joins; any later call (a daemon's signal handler racing
    its normal exit path) returns immediately without touching the
    already-joined domains. *)

val with_pool : workers:int -> (t -> 'a) -> 'a
(** [with_pool ~workers f] brackets [create]/[shutdown] around [f].  If
    [f] raises, outstanding queued work is cancelled before the
    exception propagates. *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-appropriate cap
    for [~jobs] / [~workers]. *)
