(** Deterministic parallel map over OCaml 5 domains.

    [map ~jobs n f] computes [|f 0; ...; f (n-1)|], splitting the index
    range into [jobs] fixed contiguous chunks, one spawned domain per
    extra chunk (the calling domain works too).  Each index is written
    by exactly one domain and [Domain.join] publishes the writes, so no
    other synchronisation is needed.

    Because the partition is a pure function of [(n, jobs)] and [f] is
    applied to every index exactly once, the result array — and hence
    any order-respecting aggregation of it — is identical for every
    [jobs] value, provided [f i] itself depends only on [i] (give each
    sample its own {!Rng.split_n} stream, or per-call workspaces for
    solver tasks).  [jobs <= 1] runs sequentially with no domain
    spawned.

    An exception raised by [f] in a worker is re-raised by [map] at the
    join; wrap fallible measurements in a result type to keep the other
    samples.

    This pool serves both the Monte Carlo runner (re-exported as
    [Ape_mc.Pool]) and the AC sweep's parallel frequency grids
    ([Ape_spice.Ac.sweep ~jobs]). *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-appropriate cap
    for [~jobs]. *)
