(** Dense matrices over an arbitrary field, with LU factorisation.

    The modified-nodal-analysis matrices the simulator assembles are small
    (tens of rows), so a straightforward dense LU with partial pivoting is
    both adequate and robust.  The functor is instantiated twice: over
    floats for the DC Newton iteration and over [Complex.t] for the AC
    small-signal sweep. *)

module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t

  val norm : t -> float
  (** Magnitude used for pivot selection and singularity tests. *)

  val pp : Format.formatter -> t -> unit
end

exception Singular
(** Raised by factorisation/solve when the matrix is numerically
    singular. *)

module Make (F : FIELD) : sig
  type elt = F.t
  type t

  val create : int -> int -> t
  (** [create rows cols], initialised to zero.  A dimension of 0 is
      valid (and arises from a ground-only netlist with no unknowns):
      the empty system is trivially nonsingular — {!lu_factor} succeeds,
      {!lu_solve} and {!mat_vec} return [[||]].  Negative dimensions
      raise [Invalid_argument]. *)

  val identity : int -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> elt
  val set : t -> int -> int -> elt -> unit

  val add_to : t -> int -> int -> elt -> unit
  (** [add_to m i j x] accumulates: [m.(i).(j) <- m.(i).(j) + x].  This is
      the MNA "stamp" primitive. *)

  val of_arrays : elt array array -> t
  val to_arrays : t -> elt array array
  val copy : t -> t
  val map : (elt -> elt) -> t -> t
  val transpose : t -> t
  val mat_mul : t -> t -> t
  val mat_vec : t -> elt array -> elt array

  type lu
  (** LU factorisation with partial pivoting. *)

  val lu_factor : t -> lu
  (** Raises {!Singular} on a singular matrix.  The input is not
      modified. *)

  val lu_factor_in_place : t -> int array -> lu
  (** Like {!lu_factor} but factors the matrix in its own storage
      (destroying the contents) and records pivoting in the caller's
      [perm] workspace (length = rows) — no allocation per call, for
      hot loops that re-assemble and re-factor the same system.  The
      arithmetic is identical to {!lu_factor}, so solutions are bitwise
      equal. *)

  val lu_solve : lu -> elt array -> elt array
  (** Solve [A x = b] given the factorisation of [A]. *)

  val solve : t -> elt array -> elt array
  (** [lu_factor] + [lu_solve] in one step. *)

  val residual_norm : t -> elt array -> elt array -> float
  (** [residual_norm a x b] is [max_i |(A x - b)_i|], for tests. *)

  val pp : Format.formatter -> t -> unit
end

module Rmat : module type of Make (struct
  type t = float

  let zero = 0.
  let one = 1.
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let norm = Float.abs
  let pp fmt x = Format.fprintf fmt "%.6g" x
end)

module Cmat : module type of Make (struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let norm = Complex.norm
  let pp fmt (c : Complex.t) = Format.fprintf fmt "%.6g%+.6gi" c.re c.im
end)

(** Split-storage complex LU for hot per-frequency loops.

    Stores real and imaginary parts in separate float matrices so the
    factorisation's inner loops run on unboxed floats with no per-op
    allocation (the {!Cmat} functor path boxes a [Complex.t] record per
    add/mul).  Every arithmetic step replicates the stdlib [Complex]
    operations (Smith's scaled division, [Float.hypot] pivot magnitude)
    in the exact operation order of the functor's factorisation, so
    solutions are bitwise equal to [Cmat.lu_factor] + [Cmat.lu_solve]. *)
module Csplit : sig
  type t = {
    n : int;
    re : float array array;  (** row-major real parts, n×n *)
    im : float array array;  (** row-major imaginary parts, n×n *)
  }

  val create : int -> t
  (** [create n]: an n×n zero matrix.  Fill [re]/[im] directly. *)

  val factor_in_place : t -> int array -> unit
  (** LU with partial pivoting, in place; pivoting recorded in the
      caller's [perm] (length n).  Raises {!Singular}. *)

  val solve : t -> int array -> Complex.t array -> Complex.t array
  (** [solve m perm b] with [m] holding the factors from
      {!factor_in_place} and [perm] its pivot record. *)

  val solve_transposed : t -> int array -> Complex.t array -> Complex.t array
  (** [solve_transposed m perm b] returns [y] with [Aᵀ y = b] from the
      same factors — the dense reference for adjoint (reciprocity)
      analyses; no transposed factorisation needed. *)
end
