(** Seeded random sources for the annealing engine and the property tests.

    A thin wrapper over [Random.State] so every stochastic component takes
    an explicit, reproducible source. *)

type t

val create : int -> t
(** Deterministic source from an integer seed. *)

val split : t -> t
(** Independent child source (used to give each synthesis run its own
    stream).  The child is seeded from six 30-bit parent draws, so
    sibling streams do not share seed material. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent child sources keyed by index
    from a {e single} batch of parent draws: element [i] depends only on
    the parent state at call time and on [i], never on how many siblings
    exist or in what order they are consumed.  This is the Monte Carlo
    per-sample stream constructor — handing stream [i] to sample [i]
    makes results independent of worker count and scheduling. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] in [[lo, hi)]. *)

val log_uniform : t -> float -> float -> float
(** Log-uniform sample; [lo] and [hi] must be positive.  Natural for
    device widths spanning decades. *)

val gauss : t -> mean:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val int : t -> int -> int
(** [int t n] in [[0, n)]. *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val state : t -> Random.State.t
(** The underlying state, for interoperating with [Interval.sample]. *)
