type pos = { line : int; col : int }
type span = { s_start : pos; s_end : pos }
type t = Atom of string * span | List of t list * span

exception Error of { pos : pos; msg : string }

let fail pos msg = raise (Error { pos; msg })

let span_of = function Atom (_, s) -> s | List (_, s) -> s

let pp_pos p = Printf.sprintf "%d:%d" p.line p.col

let pp_span s =
  if s.s_start.line = s.s_end.line && s.s_end.col <= s.s_start.col + 1 then
    pp_pos s.s_start
  else Printf.sprintf "%s-%s" (pp_pos s.s_start) (pp_pos s.s_end)

let atom = function
  | Atom (a, _) -> a
  | List (_, s) -> fail s.s_start "expected an atom, got a list"

(* One pass over the text, tracking line/col as we go.  Tokens carry
   their spans; the recursive-descent pass below only assembles lists. *)
type token =
  | T_open of pos
  | T_close of pos
  | T_atom of string * span

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let here () = { line = !line; col = !col } in
  let advance c =
    if Char.equal c '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let read_quoted () =
    let start = here () in
    let buf = Buffer.create 16 in
    advance '"';
    let rec loop () =
      if !i >= n then fail start "unterminated string"
      else
        match text.[!i] with
        | '"' ->
          advance '"';
          Buffer.contents buf
        | '\\' ->
          advance '\\';
          if !i >= n then fail start "unterminated string"
          else begin
            let c = text.[!i] in
            (match c with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | other ->
              fail (here ()) (Printf.sprintf "unknown escape '\\%c'" other));
            advance c;
            loop ()
          end
        | c ->
          Buffer.add_char buf c;
          advance c;
          loop ()
    in
    let contents = loop () in
    tokens := T_atom (contents, { s_start = start; s_end = here () }) :: !tokens
  in
  let read_bare () =
    let start = here () in
    let buf = Buffer.create 16 in
    let rec loop () =
      if !i < n then
        match text.[!i] with
        | '(' | ')' | ';' | '"' | ' ' | '\t' | '\n' | '\r' -> ()
        | c ->
          Buffer.add_char buf c;
          advance c;
          loop ()
    in
    loop ();
    tokens :=
      T_atom (Buffer.contents buf, { s_start = start; s_end = here () })
      :: !tokens
  in
  while !i < n do
    match text.[!i] with
    | ';' ->
      while !i < n && text.[!i] <> '\n' do
        advance text.[!i]
      done
    | '(' ->
      tokens := T_open (here ()) :: !tokens;
      advance '('
    | ')' ->
      tokens := T_close (here ()) :: !tokens;
      advance ')'
    | '"' -> read_quoted ()
    | (' ' | '\t' | '\n' | '\r') as c -> advance c
    | _ -> read_bare ()
  done;
  List.rev !tokens

let parse text =
  let rec parse_list opened acc = function
    | [] -> fail opened "unbalanced '(': no matching ')'"
    | T_close close :: rest ->
      let span =
        { s_start = opened; s_end = { close with col = close.col + 1 } }
      in
      (List (List.rev acc, span), rest)
    | T_open pos :: rest ->
      let inner, rest = parse_list pos [] rest in
      parse_list opened (inner :: acc) rest
    | T_atom (a, span) :: rest ->
      parse_list opened (Atom (a, span) :: acc) rest
  in
  let rec top acc = function
    | [] -> List.rev acc
    | T_open pos :: rest ->
      let inner, rest = parse_list pos [] rest in
      top (inner :: acc) rest
    | T_atom (a, span) :: rest -> top (Atom (a, span) :: acc) rest
    | T_close pos :: _ -> fail pos "unbalanced ')'"
  in
  top [] (tokenize text)
