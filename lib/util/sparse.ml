(* Compressed-sparse-column LU, split into a pivoting symbolic-once
   factorisation (left-looking Gilbert–Peierls with depth-first reach,
   the CSparse cs_lu shape) and a numeric-many refactorisation that
   replays the stored pivot sequence over the frozen L/U structure
   (KLU's refactor).  Real and split-complex variants share the
   pattern, ordering and reach machinery; their numeric kernels are
   deliberately written out twice — a functor over an unboxed scalar
   would box the complex pairs and lose exactly the locality this
   module exists for. *)

exception Singular
exception Unstable

(* Refactor stability: the frozen pivot must not be [tau] times smaller
   than the largest magnitude in its eliminated column, or element
   growth could wash out the answer; the caller re-pivots instead. *)
let refactor_tau = 1e-6

let c_symbolic = Ape_obs.counter "sparse.symbolic"
let c_refactor = Ape_obs.counter "sparse.refactor"
let c_unstable = Ape_obs.counter "sparse.refactor_unstable"
let c_panel_refactor = Ape_obs.counter "sparse.panel_refactor"
let g_nnz = Ape_obs.gauge "sparse.nnz"
let g_fill = Ape_obs.gauge "sparse.fill_ratio"

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Static alias so unchecked accesses below are direct full applications
   of the primitive (the compiler only emits the intrinsic — rather than
   a closure call that boxes every float — for those). *)
module A1 = Bigarray.Array1

let fcreate n : farr =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill a 0.;
  a

let fcopy (a : farr) : farr =
  let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (Bigarray.Array1.dim a) in
  Bigarray.Array1.blit a b;
  b

type pattern = { n : int; colptr : int array; rowind : int array }

let dim p = p.n
let nnz p = Array.length p.rowind

module Builder = struct
  type t = { bn : int; mutable keys : int array; mutable len : int }

  let create n =
    if n < 0 then invalid_arg "Sparse.Builder.create";
    { bn = n; keys = Array.make 16 0; len = 0 }

  let add b row col =
    if row < 0 || row >= b.bn || col < 0 || col >= b.bn then
      invalid_arg "Sparse.Builder.add";
    if b.len = Array.length b.keys then begin
      let keys = Array.make (2 * b.len) 0 in
      Array.blit b.keys 0 keys 0 b.len;
      b.keys <- keys
    end;
    (* One int key keeps the sort allocation-free: n² fits comfortably
       in OCaml's 63-bit ints for any deck this simulator can hold. *)
    b.keys.(b.len) <- (col * b.bn) + row;
    b.len <- b.len + 1

  let compile b =
    let keys = Array.sub b.keys 0 b.len in
    Array.sort compare keys;
    let uniq = ref 0 in
    for i = 0 to b.len - 1 do
      if i = 0 || keys.(i) <> keys.(i - 1) then begin
        keys.(!uniq) <- keys.(i);
        incr uniq
      end
    done;
    let nnz = !uniq in
    let colptr = Array.make (b.bn + 1) 0 in
    let rowind = Array.make nnz 0 in
    for s = 0 to nnz - 1 do
      let col = keys.(s) / b.bn and row = keys.(s) mod b.bn in
      rowind.(s) <- row;
      colptr.(col + 1) <- colptr.(col + 1) + 1
    done;
    for c = 0 to b.bn - 1 do
      colptr.(c + 1) <- colptr.(c + 1) + colptr.(c)
    done;
    { n = b.bn; colptr; rowind }
end

let slot p ~row ~col =
  if col < 0 || col >= p.n then raise Not_found;
  let lo = ref p.colptr.(col) and hi = ref (p.colptr.(col + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = p.rowind.(mid) in
    if r = row then found := mid
    else if r < row then lo := mid + 1
    else hi := mid - 1
  done;
  if !found < 0 then raise Not_found else !found

let iter p f =
  for col = 0 to p.n - 1 do
    for s = p.colptr.(col) to p.colptr.(col + 1) - 1 do
      f s p.rowind.(s) col
    done
  done

(* Greedy minimum degree on the symmetrised pattern, with
   clique-on-elimination adjacency updates.  Quadratic scans are fine:
   the orderings are computed once per pattern and the decks this
   serves are at most a few thousand unknowns. *)
let min_degree p =
  let n = p.n in
  let module S = Set.Make (Int) in
  let adj = Array.make (max n 1) S.empty in
  iter p (fun _ row col ->
      if row <> col then begin
        adj.(row) <- S.add col adj.(row);
        adj.(col) <- S.add row adj.(col)
      end);
  let deg = Array.init n (fun v -> S.cardinal adj.(v)) in
  let eliminated = Array.make n false in
  let order = Array.make n 0 in
  for k = 0 to n - 1 do
    let best = ref (-1) and bestd = ref max_int in
    for v = 0 to n - 1 do
      if (not eliminated.(v)) && deg.(v) < !bestd then begin
        bestd := deg.(v);
        best := v
      end
    done;
    let v = !best in
    order.(k) <- v;
    eliminated.(v) <- true;
    let nbrs = adj.(v) in
    S.iter
      (fun u ->
        if not eliminated.(u) then begin
          adj.(u) <- S.remove v (S.remove u (S.union adj.(u) nbrs));
          deg.(u) <- S.cardinal adj.(u)
        end)
      nbrs;
    adj.(v) <- S.empty
  done;
  order

(* ------------------------------------------------------------------ *)
(* Shared symbolic machinery                                           *)
(* ------------------------------------------------------------------ *)

(* Growable int/float pair used while the L/U structures are being
   discovered (first factorisation only; refactor never allocates). *)
type dyn = { mutable di : int array; mutable dx : float array; mutable dlen : int }

let dyn_make () = { di = Array.make 16 0; dx = Array.make 16 0.; dlen = 0 }

let dyn_push d i x =
  if d.dlen = Array.length d.di then begin
    let di = Array.make (2 * d.dlen) 0 and dx = Array.make (2 * d.dlen) 0. in
    Array.blit d.di 0 di 0 d.dlen;
    Array.blit d.dx 0 dx 0 d.dlen;
    d.di <- di;
    d.dx <- dx
  end;
  d.di.(d.dlen) <- i;
  d.dx.(d.dlen) <- x;
  d.dlen <- d.dlen + 1

(* Second value channel for the split-complex build (indices shared). *)
let dyn_push2 d d2 i x x2 =
  dyn_push d i x;
  dyn_push d2 i x2

(* Sort the tail [start..len-1] of a dyn (and a parallel value dyn) by
   index, ascending — the U columns must replay in pivot order during
   refactorisation. *)
let dyn_sort_tail d extra start =
  let len = d.dlen - start in
  if len > 1 then begin
    let perm = Array.init len (fun i -> i) in
    Array.sort (fun a b -> compare d.di.(start + a) d.di.(start + b)) perm;
    let ti = Array.init len (fun i -> d.di.(start + perm.(i))) in
    let tx = Array.init len (fun i -> d.dx.(start + perm.(i))) in
    Array.blit ti 0 d.di start len;
    Array.blit tx 0 d.dx start len;
    match extra with
    | None -> ()
    | Some e ->
      let ex = Array.init len (fun i -> e.dx.(start + perm.(i))) in
      Array.blit ex 0 e.dx start len
  end

(* Depth-first reach of one right-hand-side column through the partial
   L (CSparse cs_reach/cs_dfs, iterative).  Nodes are original row
   indices; a node with an assigned pivot position has the rows of its
   L column as children.  On return, [xi.(!top .. n-1)] holds the reach
   in topological order.  [mark.(i) = gen] flags visited nodes. *)
let reach ~pat ~col ~pinv ~lp ~(ldyn : dyn) ~mark ~gen ~stack ~pstack ~xi ~top =
  let dfs root =
    let head = ref 0 in
    stack.(0) <- root;
    while !head >= 0 do
      let i = stack.(!head) in
      if mark.(i) <> gen then begin
        mark.(i) <- gen;
        pstack.(!head) <- (if pinv.(i) >= 0 then lp.(pinv.(i)) else 0)
      end;
      let k = pinv.(i) in
      let descended = ref false in
      if k >= 0 then begin
        let t = ref pstack.(!head) in
        let tend = lp.(k + 1) in
        while (not !descended) && !t < tend do
          let child = ldyn.di.(!t) in
          if mark.(child) <> gen then begin
            pstack.(!head) <- !t + 1;
            incr head;
            stack.(!head) <- child;
            descended := true
          end
          else incr t
        done;
        if not !descended then pstack.(!head) <- tend
      end;
      if not !descended then begin
        decr head;
        decr top;
        xi.(!top) <- i
      end
    done
  in
  for s = pat.colptr.(col) to pat.colptr.(col + 1) - 1 do
    let i = pat.rowind.(s) in
    if mark.(i) <> gen then dfs i
  done

(* ------------------------------------------------------------------ *)
(* Real variant                                                        *)
(* ------------------------------------------------------------------ *)

module Real = struct
  type t = { pat : pattern; v : farr }

  let create pat = { pat; v = fcreate (nnz pat) }
  let pattern t = t.pat
  let clear t = Bigarray.Array1.fill t.v 0.
  let add_slot t s x = t.v.{s} <- t.v.{s} +. x
  let get_slot t s = t.v.{s}
  let set_slot t s x = t.v.{s} <- x

  type factor = {
    f_pat : pattern;
    q : int array;  (* column order: position jj eliminates column q.(jj) *)
    pinv : int array;  (* original row -> pivot position *)
    lp : int array;  (* n+1; strictly-lower L columns in li/lx *)
    li : int array;  (* pivot-position rows *)
    lx : farr;
    up : int array;  (* n+1; strictly-upper U columns, ascending rows *)
    ui : int array;
    ux : farr;
    udiag : farr;
    w : farr;  (* length-n elimination workspace *)
  }

  let lnz f = Array.length f.li
  let unz f = Array.length f.ui + f.f_pat.n

  let clone f =
    { f with lx = fcopy f.lx; ux = fcopy f.ux; udiag = fcopy f.udiag;
      w = fcreate f.f_pat.n }

  let factor (a : t) =
    Ape_obs.incr c_symbolic;
    let pat = a.pat in
    let n = pat.n in
    let q = min_degree pat in
    let pinv = Array.make n (-1) in
    let lp = Array.make (n + 1) 0 and up = Array.make (n + 1) 0 in
    let l = dyn_make () and u = dyn_make () in
    let udiag = fcreate n in
    let w = Array.make (max n 1) 0. in
    let mark = Array.make (max n 1) (-1) in
    let stack = Array.make (max n 1) 0 in
    let pstack = Array.make (max n 1) 0 in
    let xi = Array.make (max n 1) 0 in
    for jj = 0 to n - 1 do
      let col = q.(jj) in
      let top = ref n in
      reach ~pat ~col ~pinv ~lp ~ldyn:l ~mark ~gen:jj ~stack ~pstack ~xi ~top;
      (* Numeric: clear the reached workspace, scatter A's column, then
         eliminate through the finished columns in topological order. *)
      for s = !top to n - 1 do
        w.(xi.(s)) <- 0.
      done;
      for s = pat.colptr.(col) to pat.colptr.(col + 1) - 1 do
        w.(pat.rowind.(s)) <- a.v.{s}
      done;
      let u_start = u.dlen in
      for s = !top to n - 1 do
        let i = xi.(s) in
        let k = pinv.(i) in
        if k >= 0 then begin
          let xval = w.(i) in
          dyn_push u k xval;
          for t = lp.(k) to lp.(k + 1) - 1 do
            w.(l.di.(t)) <- w.(l.di.(t)) -. (l.dx.(t) *. xval)
          done
        end
      done;
      (* Partial pivoting over the not-yet-pivotal reached rows. *)
      let ipiv = ref (-1) and best = ref 0. in
      for s = !top to n - 1 do
        let i = xi.(s) in
        if pinv.(i) < 0 then begin
          let m = Float.abs w.(i) in
          if m > !best then begin
            best := m;
            ipiv := i
          end
        end
      done;
      if !ipiv < 0 || !best < 1e-300 then raise Singular;
      pinv.(!ipiv) <- jj;
      let piv = w.(!ipiv) in
      udiag.{jj} <- piv;
      dyn_sort_tail u None u_start;
      up.(jj + 1) <- u.dlen;
      for s = !top to n - 1 do
        let i = xi.(s) in
        if pinv.(i) < 0 then dyn_push l i (w.(i) /. piv)
      done;
      lp.(jj + 1) <- l.dlen
    done;
    (* The L rows were original indices while the pivot order was still
       forming; solve and refactor want pivot positions. *)
    for t = 0 to l.dlen - 1 do
      l.di.(t) <- pinv.(l.di.(t))
    done;
    let li = Array.sub l.di 0 l.dlen in
    let lx = fcreate l.dlen in
    for t = 0 to l.dlen - 1 do
      lx.{t} <- l.dx.(t)
    done;
    let ui = Array.sub u.di 0 u.dlen in
    let ux = fcreate u.dlen in
    for t = 0 to u.dlen - 1 do
      ux.{t} <- u.dx.(t)
    done;
    let f =
      { f_pat = pat; q; pinv; lp; li; lx; up; ui; ux; udiag;
        w = fcreate n }
    in
    Ape_obs.set g_nnz (float_of_int (nnz pat));
    if nnz pat > 0 then
      Ape_obs.set g_fill (float_of_int (lnz f + unz f) /. float_of_int (nnz pat));
    f

  let refactor f (a : t) =
    if f.f_pat != a.pat then invalid_arg "Sparse.Real.refactor: pattern mismatch";
    Ape_obs.incr c_refactor;
    let pat = f.f_pat in
    let n = pat.n in
    let w = f.w in
    for jj = 0 to n - 1 do
      let col = f.q.(jj) in
      (* The reach of this column is exactly {U rows} ∪ {jj} ∪ {L rows}
         from the symbolic factorisation — zero it, scatter A, replay. *)
      w.{jj} <- 0.;
      for t = f.up.(jj) to f.up.(jj + 1) - 1 do
        w.{f.ui.(t)} <- 0.
      done;
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        w.{f.li.(t)} <- 0.
      done;
      for s = pat.colptr.(col) to pat.colptr.(col + 1) - 1 do
        w.{f.pinv.(pat.rowind.(s))} <- a.v.{s}
      done;
      for t = f.up.(jj) to f.up.(jj + 1) - 1 do
        let k = f.ui.(t) in
        let xval = w.{k} in
        f.ux.{t} <- xval;
        for tt = f.lp.(k) to f.lp.(k + 1) - 1 do
          w.{f.li.(tt)} <- w.{f.li.(tt)} -. (f.lx.{tt} *. xval)
        done
      done;
      let piv = w.{jj} in
      let apiv = Float.abs piv in
      if apiv < 1e-300 then begin
        Ape_obs.incr c_unstable;
        raise Singular
      end;
      let colmax = ref apiv in
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        let m = Float.abs w.{f.li.(t)} in
        if m > !colmax then colmax := m
      done;
      if apiv < refactor_tau *. !colmax then begin
        Ape_obs.incr c_unstable;
        raise Unstable
      end;
      f.udiag.{jj} <- piv;
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        f.lx.{t} <- w.{f.li.(t)} /. piv
      done
    done

  let solve f b =
    let n = f.f_pat.n in
    if Array.length b <> n then invalid_arg "Sparse.Real.solve";
    let y = Array.make (max n 1) 0. in
    for i = 0 to n - 1 do
      y.(f.pinv.(i)) <- b.(i)
    done;
    for j = 0 to n - 1 do
      let xj = y.(j) in
      for t = f.lp.(j) to f.lp.(j + 1) - 1 do
        y.(f.li.(t)) <- y.(f.li.(t)) -. (f.lx.{t} *. xj)
      done
    done;
    for j = n - 1 downto 0 do
      let xj = y.(j) /. f.udiag.{j} in
      y.(j) <- xj;
      for t = f.up.(j) to f.up.(j + 1) - 1 do
        y.(f.ui.(t)) <- y.(f.ui.(t)) -. (f.ux.{t} *. xj)
      done
    done;
    let x = Array.make n 0. in
    for jj = 0 to n - 1 do
      x.(f.q.(jj)) <- y.(jj)
    done;
    x

  (* Solve Aᵀy = b with the factorisation of A.  Writing the permuted
     system as Â = P A Qᵀ = L U, the transposed solve runs Uᵀ forward
     (U columns gather instead of scatter, divide by the diagonal) and
     Lᵀ backward (unit diagonal), with the roles of the two
     permutations swapped relative to [solve]. *)
  let solve_transposed f b =
    let n = f.f_pat.n in
    if Array.length b <> n then invalid_arg "Sparse.Real.solve_transposed";
    let y = Array.make (max n 1) 0. in
    for jj = 0 to n - 1 do
      y.(jj) <- b.(f.q.(jj))
    done;
    for j = 0 to n - 1 do
      let acc = ref y.(j) in
      for t = f.up.(j) to f.up.(j + 1) - 1 do
        acc := !acc -. (f.ux.{t} *. y.(f.ui.(t)))
      done;
      y.(j) <- !acc /. f.udiag.{j}
    done;
    for j = n - 1 downto 0 do
      let acc = ref y.(j) in
      for t = f.lp.(j) to f.lp.(j + 1) - 1 do
        acc := !acc -. (f.lx.{t} *. y.(f.li.(t)))
      done;
      y.(j) <- !acc
    done;
    let x = Array.make n 0. in
    for i = 0 to n - 1 do
      x.(i) <- y.(f.pinv.(i))
    done;
    x
end

(* ------------------------------------------------------------------ *)
(* Split-complex variant                                               *)
(* ------------------------------------------------------------------ *)

module Csplit = struct
  type t = { pat : pattern; re : farr; im : farr }

  let create pat = { pat; re = fcreate (nnz pat); im = fcreate (nnz pat) }
  let pattern t = t.pat

  let clear t =
    Bigarray.Array1.fill t.re 0.;
    Bigarray.Array1.fill t.im 0.

  let add_slot t s re im =
    t.re.{s} <- t.re.{s} +. re;
    t.im.{s} <- t.im.{s} +. im

  let get_slot t s = (t.re.{s}, t.im.{s})

  let set_slot t s re im =
    t.re.{s} <- re;
    t.im.{s} <- im

  let assemble_gc t ~(g : Real.t) ~(c : Real.t) ~omega =
    if g.Real.pat != t.pat || c.Real.pat != t.pat then
      invalid_arg "Sparse.Csplit.assemble_gc: pattern mismatch";
    let gv = g.Real.v and cv = c.Real.v in
    for s = 0 to nnz t.pat - 1 do
      t.re.{s} <- gv.{s};
      t.im.{s} <- omega *. cv.{s}
    done

  (* Complex.div (Smith's algorithm) on split operands — same code as
     Matrix.Csplit.cdiv so the two engines disagree only through
     elimination order, never through scalar arithmetic. *)
  let[@inline] cdiv xre xim yre yim =
    if Float.abs yre >= Float.abs yim then begin
      let r = yim /. yre in
      let d = yre +. (r *. yim) in
      ((xre +. (r *. xim)) /. d, (xim -. (r *. xre)) /. d)
    end
    else begin
      let r = yre /. yim in
      let d = yim +. (r *. yre) in
      (((r *. xre) +. xim) /. d, ((r *. xim) -. xre) /. d)
    end

  type factor = {
    f_pat : pattern;
    q : int array;
    pinv : int array;
    lp : int array;
    li : int array;
    lxre : farr;
    lxim : farr;
    up : int array;
    ui : int array;
    uxre : farr;
    uxim : farr;
    udre : farr;
    udim : farr;
    wre : farr;
    wim : farr;
  }

  let lnz f = Array.length f.li
  let unz f = Array.length f.ui + f.f_pat.n

  let clone f =
    { f with lxre = fcopy f.lxre; lxim = fcopy f.lxim; uxre = fcopy f.uxre;
      uxim = fcopy f.uxim; udre = fcopy f.udre; udim = fcopy f.udim;
      wre = fcreate f.f_pat.n; wim = fcreate f.f_pat.n }

  let factor (a : t) =
    Ape_obs.incr c_symbolic;
    let pat = a.pat in
    let n = pat.n in
    let q = min_degree pat in
    let pinv = Array.make n (-1) in
    let lp = Array.make (n + 1) 0 and up = Array.make (n + 1) 0 in
    let l = dyn_make () and lim = dyn_make () in
    let u = dyn_make () and uim = dyn_make () in
    let udre = fcreate n and udim = fcreate n in
    let wre = Array.make (max n 1) 0. and wim = Array.make (max n 1) 0. in
    let mark = Array.make (max n 1) (-1) in
    let stack = Array.make (max n 1) 0 in
    let pstack = Array.make (max n 1) 0 in
    let xi = Array.make (max n 1) 0 in
    for jj = 0 to n - 1 do
      let col = q.(jj) in
      let top = ref n in
      reach ~pat ~col ~pinv ~lp ~ldyn:l ~mark ~gen:jj ~stack ~pstack ~xi ~top;
      for s = !top to n - 1 do
        wre.(xi.(s)) <- 0.;
        wim.(xi.(s)) <- 0.
      done;
      for s = pat.colptr.(col) to pat.colptr.(col + 1) - 1 do
        wre.(pat.rowind.(s)) <- a.re.{s};
        wim.(pat.rowind.(s)) <- a.im.{s}
      done;
      let u_start = u.dlen in
      for s = !top to n - 1 do
        let i = xi.(s) in
        let k = pinv.(i) in
        if k >= 0 then begin
          let xr = wre.(i) and xim_ = wim.(i) in
          dyn_push2 u uim k xr xim_;
          for t = lp.(k) to lp.(k + 1) - 1 do
            let lr = l.dx.(t) and li_ = lim.dx.(t) in
            let r = l.di.(t) in
            wre.(r) <- wre.(r) -. ((lr *. xr) -. (li_ *. xim_));
            wim.(r) <- wim.(r) -. ((lr *. xim_) +. (li_ *. xr))
          done
        end
      done;
      let ipiv = ref (-1) and best = ref 0. in
      for s = !top to n - 1 do
        let i = xi.(s) in
        if pinv.(i) < 0 then begin
          let m = Float.hypot wre.(i) wim.(i) in
          if m > !best then begin
            best := m;
            ipiv := i
          end
        end
      done;
      if !ipiv < 0 || !best < 1e-300 then raise Singular;
      pinv.(!ipiv) <- jj;
      let pr = wre.(!ipiv) and pi = wim.(!ipiv) in
      udre.{jj} <- pr;
      udim.{jj} <- pi;
      dyn_sort_tail u (Some uim) u_start;
      up.(jj + 1) <- u.dlen;
      for s = !top to n - 1 do
        let i = xi.(s) in
        if pinv.(i) < 0 then begin
          let lr, li_ = cdiv wre.(i) wim.(i) pr pi in
          dyn_push2 l lim i lr li_
        end
      done;
      lp.(jj + 1) <- l.dlen
    done;
    for t = 0 to l.dlen - 1 do
      l.di.(t) <- pinv.(l.di.(t))
    done;
    let li = Array.sub l.di 0 l.dlen in
    let lxre = fcreate l.dlen and lxim = fcreate l.dlen in
    for t = 0 to l.dlen - 1 do
      lxre.{t} <- l.dx.(t);
      lxim.{t} <- lim.dx.(t)
    done;
    let ui = Array.sub u.di 0 u.dlen in
    let uxre = fcreate u.dlen and uxim = fcreate u.dlen in
    for t = 0 to u.dlen - 1 do
      uxre.{t} <- u.dx.(t);
      uxim.{t} <- uim.dx.(t)
    done;
    let f =
      { f_pat = pat; q; pinv; lp; li; lxre; lxim; up; ui; uxre; uxim;
        udre; udim; wre = fcreate n; wim = fcreate n }
    in
    Ape_obs.set g_nnz (float_of_int (nnz pat));
    if nnz pat > 0 then
      Ape_obs.set g_fill (float_of_int (lnz f + unz f) /. float_of_int (nnz pat));
    f

  let refactor f (a : t) =
    if f.f_pat != a.pat then
      invalid_arg "Sparse.Csplit.refactor: pattern mismatch";
    Ape_obs.incr c_refactor;
    let pat = f.f_pat in
    let n = pat.n in
    let wre = f.wre and wim = f.wim in
    for jj = 0 to n - 1 do
      let col = f.q.(jj) in
      wre.{jj} <- 0.;
      wim.{jj} <- 0.;
      for t = f.up.(jj) to f.up.(jj + 1) - 1 do
        wre.{f.ui.(t)} <- 0.;
        wim.{f.ui.(t)} <- 0.
      done;
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        wre.{f.li.(t)} <- 0.;
        wim.{f.li.(t)} <- 0.
      done;
      for s = pat.colptr.(col) to pat.colptr.(col + 1) - 1 do
        let r = f.pinv.(pat.rowind.(s)) in
        wre.{r} <- a.re.{s};
        wim.{r} <- a.im.{s}
      done;
      for t = f.up.(jj) to f.up.(jj + 1) - 1 do
        let k = f.ui.(t) in
        let xr = wre.{k} and xi_ = wim.{k} in
        f.uxre.{t} <- xr;
        f.uxim.{t} <- xi_;
        for tt = f.lp.(k) to f.lp.(k + 1) - 1 do
          let r = f.li.(tt) in
          let lr = f.lxre.{tt} and li_ = f.lxim.{tt} in
          wre.{r} <- wre.{r} -. ((lr *. xr) -. (li_ *. xi_));
          wim.{r} <- wim.{r} -. ((lr *. xi_) +. (li_ *. xr))
        done
      done;
      let pr = wre.{jj} and pi = wim.{jj} in
      let apiv = Float.hypot pr pi in
      if apiv < 1e-300 then begin
        Ape_obs.incr c_unstable;
        raise Singular
      end;
      let colmax = ref apiv in
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        let m = Float.hypot wre.{f.li.(t)} wim.{f.li.(t)} in
        if m > !colmax then colmax := m
      done;
      if apiv < refactor_tau *. !colmax then begin
        Ape_obs.incr c_unstable;
        raise Unstable
      end;
      f.udre.{jj} <- pr;
      f.udim.{jj} <- pi;
      for t = f.lp.(jj) to f.lp.(jj + 1) - 1 do
        let r = f.li.(t) in
        let lr, li_ = cdiv wre.{r} wim.{r} pr pi in
        f.lxre.{t} <- lr;
        f.lxim.{t} <- li_
      done
    done

  let solve f (b : Complex.t array) =
    let n = f.f_pat.n in
    if Array.length b <> n then invalid_arg "Sparse.Csplit.solve";
    let yre = Array.make (max n 1) 0. and yim = Array.make (max n 1) 0. in
    for i = 0 to n - 1 do
      yre.(f.pinv.(i)) <- b.(i).Complex.re;
      yim.(f.pinv.(i)) <- b.(i).Complex.im
    done;
    for j = 0 to n - 1 do
      let xr = yre.(j) and xi_ = yim.(j) in
      for t = f.lp.(j) to f.lp.(j + 1) - 1 do
        let r = f.li.(t) in
        let lr = f.lxre.{t} and li_ = f.lxim.{t} in
        yre.(r) <- yre.(r) -. ((lr *. xr) -. (li_ *. xi_));
        yim.(r) <- yim.(r) -. ((lr *. xi_) +. (li_ *. xr))
      done
    done;
    for j = n - 1 downto 0 do
      let xr, xi_ = cdiv yre.(j) yim.(j) f.udre.{j} f.udim.{j} in
      yre.(j) <- xr;
      yim.(j) <- xi_;
      for t = f.up.(j) to f.up.(j + 1) - 1 do
        let r = f.ui.(t) in
        let ur = f.uxre.{t} and ui_ = f.uxim.{t} in
        yre.(r) <- yre.(r) -. ((ur *. xr) -. (ui_ *. xi_));
        yim.(r) <- yim.(r) -. ((ur *. xi_) +. (ui_ *. xr))
      done
    done;
    let x = Array.make n Complex.zero in
    for jj = 0 to n - 1 do
      x.(f.q.(jj)) <- { Complex.re = yre.(jj); im = yim.(jj) }
    done;
    x

  (* Solve Aᵀy = b with the factorisation of A — the reciprocity
     workhorse: one transposed solve against the output selector gives
     the transfer impedance from *every* injection site at once.  Same
     permutation bookkeeping as [Real.solve_transposed]. *)
  let solve_transposed f (b : Complex.t array) =
    let n = f.f_pat.n in
    if Array.length b <> n then invalid_arg "Sparse.Csplit.solve_transposed";
    let yre = Array.make (max n 1) 0. and yim = Array.make (max n 1) 0. in
    for jj = 0 to n - 1 do
      yre.(jj) <- b.(f.q.(jj)).Complex.re;
      yim.(jj) <- b.(f.q.(jj)).Complex.im
    done;
    (* Forward with Uᵀ: U columns gather, then divide by the diagonal. *)
    for j = 0 to n - 1 do
      let accre = ref yre.(j) and accim = ref yim.(j) in
      for t = f.up.(j) to f.up.(j + 1) - 1 do
        let r = f.ui.(t) in
        let ur = f.uxre.{t} and ui_ = f.uxim.{t} in
        accre := !accre -. ((ur *. yre.(r)) -. (ui_ *. yim.(r)));
        accim := !accim -. ((ur *. yim.(r)) +. (ui_ *. yre.(r)))
      done;
      let xr, xi_ = cdiv !accre !accim f.udre.{j} f.udim.{j} in
      yre.(j) <- xr;
      yim.(j) <- xi_
    done;
    (* Backward with Lᵀ (unit diagonal). *)
    for j = n - 1 downto 0 do
      let accre = ref yre.(j) and accim = ref yim.(j) in
      for t = f.lp.(j) to f.lp.(j + 1) - 1 do
        let r = f.li.(t) in
        let lr = f.lxre.{t} and li_ = f.lxim.{t} in
        accre := !accre -. ((lr *. yre.(r)) -. (li_ *. yim.(r)));
        accim := !accim -. ((lr *. yim.(r)) +. (li_ *. yre.(r)))
      done;
      yre.(j) <- !accre;
      yim.(j) <- !accim
    done;
    let x = Array.make n Complex.zero in
    for i = 0 to n - 1 do
      x.(i) <- { Complex.re = yre.(f.pinv.(i)); im = yim.(f.pinv.(i)) }
    done;
    x

  (* ---------------------------------------------------------------- *)
  (* Frequency panels                                                  *)
  (* ---------------------------------------------------------------- *)

  (* A panel carries the numeric values of K systems that share one
     pattern and one frozen pivot sequence, laid out slot-major with
     lane stride K (structure of arrays): the value of slot [s] in lane
     [kk] lives at [s*K + kk].  One traversal of the symbolic structure
     then refactors and solves all K lanes — the index arithmetic is
     amortised and the inner loop is a contiguous stride-K stream.
     Lanes never mix arithmetically, so each lane reproduces the scalar
     [refactor]/[solve] floating-point sequence bit for bit; a lane
     whose frozen pivot fails the stability test is marked bad and the
     caller re-solves just that lane through the scalar path. *)
  module Panel = struct
    type vals = {
      v_pat : pattern;
      vk : int;  (* physical lane count (the stride) *)
      mutable vm : int;  (* lanes in use, <= vk *)
      vre : farr;  (* nnz * vk *)
      vim : farr;
    }

    let create pat ~k =
      if k < 1 then invalid_arg "Sparse.Csplit.Panel.create";
      { v_pat = pat; vk = k; vm = k;
        vre = fcreate (nnz pat * k); vim = fcreate (nnz pat * k) }

    let width v = v.vk
    let lanes v = v.vm

    let use_lanes v m =
      if m < 1 || m > v.vk then invalid_arg "Sparse.Csplit.Panel.use_lanes";
      v.vm <- m

    let set_slot v s ~lane re im =
      if lane < 0 || lane >= v.vk then invalid_arg "Sparse.Csplit.Panel.set_slot";
      v.vre.{(s * v.vk) + lane} <- re;
      v.vim.{(s * v.vk) + lane} <- im

    (* The kernels below use unchecked loads and stores: every index is
       derived from the factor's own pattern arrays (colptr/rowind/lp/
       li/up/ui all bounded by construction) scaled by the width the
       entry checks pin down, so the bounds are invariants, not inputs.
       On a non-flambda compiler the checked [.{}] form costs a compare
       and branch per access — in these stride-[k] streams that is most
       of the runtime. *)

    let assemble_gc v ~(g : Real.t) ~(c : Real.t) ~omegas =
      if g.Real.pat != v.v_pat || c.Real.pat != v.v_pat then
        invalid_arg "Sparse.Csplit.Panel.assemble_gc: pattern mismatch";
      let m = Array.length omegas in
      if m < 1 || m > v.vk then
        invalid_arg "Sparse.Csplit.Panel.assemble_gc: lane count";
      v.vm <- m;
      let k = v.vk in
      let gv = g.Real.v and cv = c.Real.v in
      let vre = v.vre and vim = v.vim in
      for s = 0 to nnz v.v_pat - 1 do
        let gs = A1.unsafe_get gv s and cs = A1.unsafe_get cv s in
        let base = s * k in
        for kk = 0 to m - 1 do
          A1.unsafe_set vre (base + kk) gs;
          A1.unsafe_set vim (base + kk) (Array.unsafe_get omegas kk *. cs)
        done
      done

    type pfactor = {
      base : factor;  (* symbolic skeleton: q/pinv/lp/li/up/ui, read-only *)
      pk : int;
      mutable pm : int;
      plre : farr;  (* lnz * pk *)
      plim : farr;
      puxre : farr;  (* |ui| * pk *)
      puxim : farr;
      pudre : farr;  (* n * pk *)
      pudim : farr;
      pwre : farr;  (* n * pk elimination / solve workspace *)
      pwim : farr;
      pok : bool array;  (* pk; lane passed every pivot-stability test *)
    }

    let prepare (f : factor) ~k =
      if k < 1 then invalid_arg "Sparse.Csplit.Panel.prepare";
      let n = f.f_pat.n in
      { base = f; pk = k; pm = k;
        plre = fcreate (Array.length f.li * k);
        plim = fcreate (Array.length f.li * k);
        puxre = fcreate (Array.length f.ui * k);
        puxim = fcreate (Array.length f.ui * k);
        pudre = fcreate (n * k); pudim = fcreate (n * k);
        pwre = fcreate (n * k); pwim = fcreate (n * k);
        pok = Array.make k true }

    let ok pf kk = pf.pok.(kk)

    (* One symbolic traversal, K numeric refactorisations.  The lane
       loop is innermost at every arithmetic site, so per-lane values
       replay the exact scalar [refactor] operation sequence.  A lane
       that trips the stability test just drops its [pok] flag — its
       arithmetic keeps running (possibly to inf/nan) but can never
       leak into another lane. *)
    let refactor pf (v : vals) =
      let f = pf.base in
      if f.f_pat != v.v_pat then
        invalid_arg "Sparse.Csplit.Panel.refactor: pattern mismatch";
      if v.vk <> pf.pk then
        invalid_arg "Sparse.Csplit.Panel.refactor: width mismatch";
      Ape_obs.incr c_panel_refactor;
      let m = v.vm in
      pf.pm <- m;
      for kk = 0 to pf.pk - 1 do
        pf.pok.(kk) <- kk < m
      done;
      let pat = f.f_pat in
      let n = pat.n in
      let k = pf.pk in
      let wre = pf.pwre and wim = pf.pwim in
      let plre = pf.plre and plim = pf.plim in
      let puxre = pf.puxre and puxim = pf.puxim in
      let pudre = pf.pudre and pudim = pf.pudim in
      let vre = v.vre and vim = v.vim in
      let q = f.q and pinv = f.pinv in
      let lp = f.lp and li = f.li and up = f.up and ui = f.ui in
      let colptr = pat.colptr and rowind = pat.rowind in
      let pok = pf.pok in
      for jj = 0 to n - 1 do
        let col = Array.unsafe_get q jj in
        let up0 = Array.unsafe_get up jj and up1 = Array.unsafe_get up (jj + 1) in
        let lp0 = Array.unsafe_get lp jj and lp1 = Array.unsafe_get lp (jj + 1) in
        let jb = jj * k in
        for kk = 0 to m - 1 do
          A1.unsafe_set wre (jb + kk) 0.;
          A1.unsafe_set wim (jb + kk) 0.
        done;
        for t = up0 to up1 - 1 do
          let b = Array.unsafe_get ui t * k in
          for kk = 0 to m - 1 do
            A1.unsafe_set wre (b + kk) 0.;
            A1.unsafe_set wim (b + kk) 0.
          done
        done;
        for t = lp0 to lp1 - 1 do
          let b = Array.unsafe_get li t * k in
          for kk = 0 to m - 1 do
            A1.unsafe_set wre (b + kk) 0.;
            A1.unsafe_set wim (b + kk) 0.
          done
        done;
        for s = Array.unsafe_get colptr col to Array.unsafe_get colptr (col + 1) - 1 do
          let rb = Array.unsafe_get pinv (Array.unsafe_get rowind s) * k and sb = s * k in
          for kk = 0 to m - 1 do
            A1.unsafe_set wre (rb + kk) (A1.unsafe_get vre (sb + kk));
            A1.unsafe_set wim (rb + kk) (A1.unsafe_get vim (sb + kk))
          done
        done;
        for t = up0 to up1 - 1 do
          let kc = Array.unsafe_get ui t in
          let kb = kc * k and tb = t * k in
          for kk = 0 to m - 1 do
            A1.unsafe_set puxre (tb + kk) (A1.unsafe_get wre (kb + kk));
            A1.unsafe_set puxim (tb + kk) (A1.unsafe_get wim (kb + kk))
          done;
          for tt = Array.unsafe_get lp kc to Array.unsafe_get lp (kc + 1) - 1 do
            let rb = Array.unsafe_get li tt * k and ttb = tt * k in
            for kk = 0 to m - 1 do
              let xr = A1.unsafe_get wre (kb + kk) and xi_ = A1.unsafe_get wim (kb + kk) in
              let lr = A1.unsafe_get plre (ttb + kk) and li_ = A1.unsafe_get plim (ttb + kk) in
              A1.unsafe_set wre (rb + kk)
                (A1.unsafe_get wre (rb + kk) -. ((lr *. xr) -. (li_ *. xi_)));
              A1.unsafe_set wim (rb + kk)
                (A1.unsafe_get wim (rb + kk) -. ((lr *. xi_) +. (li_ *. xr)))
            done
          done
        done;
        (* Stability, decided exactly as the scalar [refactor] does but
           with a conservative screen first: max(|re|,|im|) bounds the
           pivot magnitude from below and |re|+|im| bounds any column
           entry from above, so a pivot that passes on those bounds
           passes the hypot test a fortiori — the two libm hypots per
           eliminated entry only run for pivots near the threshold
           (where both tests agree by construction). *)
        for kk = 0 to m - 1 do
          if Array.unsafe_get pok kk then begin
            let pr = A1.unsafe_get wre (jb + kk) and pi = A1.unsafe_get wim (jb + kk) in
            let piv_lo = Float.max (Float.abs pr) (Float.abs pi) in
            let col_hi = ref 0. in
            for t = lp0 to lp1 - 1 do
              let rb = Array.unsafe_get li t * k in
              let s =
                Float.abs (A1.unsafe_get wre (rb + kk)) +. Float.abs (A1.unsafe_get wim (rb + kk))
              in
              if s > !col_hi then col_hi := s
            done;
            if not (piv_lo >= 1e-300 && piv_lo >= refactor_tau *. !col_hi)
            then begin
              let apiv = Float.hypot pr pi in
              if apiv < 1e-300 then Array.unsafe_set pok kk false
              else begin
                let colmax = ref apiv in
                for t = lp0 to lp1 - 1 do
                  let rb = Array.unsafe_get li t * k in
                  let mgn =
                    Float.hypot (A1.unsafe_get wre (rb + kk)) (A1.unsafe_get wim (rb + kk))
                  in
                  if mgn > !colmax then colmax := mgn
                done;
                if apiv < refactor_tau *. !colmax then
                  Array.unsafe_set pok kk false
              end
            end
          end
        done;
        for kk = 0 to m - 1 do
          A1.unsafe_set pudre (jb + kk) (A1.unsafe_get wre (jb + kk));
          A1.unsafe_set pudim (jb + kk) (A1.unsafe_get wim (jb + kk))
        done;
        for t = lp0 to lp1 - 1 do
          let rb = Array.unsafe_get li t * k and tb = t * k in
          for kk = 0 to m - 1 do
            (* [cdiv] inlined (same Smith's-algorithm operation order)
               to keep the tuple it returns off the minor heap. *)
            let xre = A1.unsafe_get wre (rb + kk) and xim = A1.unsafe_get wim (rb + kk) in
            let yre = A1.unsafe_get pudre (jb + kk) and yim = A1.unsafe_get pudim (jb + kk) in
            if Float.abs yre >= Float.abs yim then begin
              let r = yim /. yre in
              let d = yre +. (r *. yim) in
              A1.unsafe_set plre (tb + kk) ((xre +. (r *. xim)) /. d);
              A1.unsafe_set plim (tb + kk) ((xim -. (r *. xre)) /. d)
            end
            else begin
              let r = yre /. yim in
              let d = yim +. (r *. yre) in
              A1.unsafe_set plre (tb + kk) (((r *. xre) +. xim) /. d);
              A1.unsafe_set plim (tb + kk) (((r *. xim) -. xre) /. d)
            end
          done
        done
      done

    (* K triangular solves of one shared right-hand side; returns one
       solution vector per lane (bad lanes return garbage — check
       [ok]). *)
    let solve pf (b : Complex.t array) =
      let f = pf.base in
      let n = f.f_pat.n in
      if Array.length b <> n then invalid_arg "Sparse.Csplit.Panel.solve";
      let k = pf.pk and m = pf.pm in
      let yre = pf.pwre and yim = pf.pwim in
      let plre = pf.plre and plim = pf.plim in
      let puxre = pf.puxre and puxim = pf.puxim in
      let pudre = pf.pudre and pudim = pf.pudim in
      let q = f.q and pinv = f.pinv in
      let lp = f.lp and li = f.li and up = f.up and ui = f.ui in
      for i = 0 to n - 1 do
        let rb = Array.unsafe_get pinv i * k in
        let bi = Array.unsafe_get b i in
        let re = bi.Complex.re and im = bi.Complex.im in
        for kk = 0 to m - 1 do
          A1.unsafe_set yre (rb + kk) re;
          A1.unsafe_set yim (rb + kk) im
        done
      done;
      for j = 0 to n - 1 do
        let jb = j * k in
        for t = Array.unsafe_get lp j to Array.unsafe_get lp (j + 1) - 1 do
          let rb = Array.unsafe_get li t * k and tb = t * k in
          for kk = 0 to m - 1 do
            let xr = A1.unsafe_get yre (jb + kk) and xi_ = A1.unsafe_get yim (jb + kk) in
            let lr = A1.unsafe_get plre (tb + kk) and li_ = A1.unsafe_get plim (tb + kk) in
            A1.unsafe_set yre (rb + kk)
              (A1.unsafe_get yre (rb + kk) -. ((lr *. xr) -. (li_ *. xi_)));
            A1.unsafe_set yim (rb + kk)
              (A1.unsafe_get yim (rb + kk) -. ((lr *. xi_) +. (li_ *. xr)))
          done
        done
      done;
      for j = n - 1 downto 0 do
        let jb = j * k in
        for kk = 0 to m - 1 do
          (* [cdiv] inlined, as in [refactor]. *)
          let xre = A1.unsafe_get yre (jb + kk) and xim = A1.unsafe_get yim (jb + kk) in
          let yre_ = A1.unsafe_get pudre (jb + kk) and yim_ = A1.unsafe_get pudim (jb + kk) in
          if Float.abs yre_ >= Float.abs yim_ then begin
            let r = yim_ /. yre_ in
            let d = yre_ +. (r *. yim_) in
            A1.unsafe_set yre (jb + kk) ((xre +. (r *. xim)) /. d);
            A1.unsafe_set yim (jb + kk) ((xim -. (r *. xre)) /. d)
          end
          else begin
            let r = yre_ /. yim_ in
            let d = yim_ +. (r *. yre_) in
            A1.unsafe_set yre (jb + kk) (((r *. xre) +. xim) /. d);
            A1.unsafe_set yim (jb + kk) (((r *. xim) -. xre) /. d)
          end
        done;
        for t = Array.unsafe_get up j to Array.unsafe_get up (j + 1) - 1 do
          let rb = Array.unsafe_get ui t * k and tb = t * k in
          for kk = 0 to m - 1 do
            let xr = A1.unsafe_get yre (jb + kk) and xi_ = A1.unsafe_get yim (jb + kk) in
            let ur = A1.unsafe_get puxre (tb + kk) and ui_ = A1.unsafe_get puxim (tb + kk) in
            A1.unsafe_set yre (rb + kk)
              (A1.unsafe_get yre (rb + kk) -. ((ur *. xr) -. (ui_ *. xi_)));
            A1.unsafe_set yim (rb + kk)
              (A1.unsafe_get yim (rb + kk) -. ((ur *. xi_) +. (ui_ *. xr)))
          done
        done
      done;
      Array.init m (fun kk ->
          let x = Array.make n Complex.zero in
          for jj = 0 to n - 1 do
            x.(Array.unsafe_get q jj) <-
              { Complex.re = A1.unsafe_get yre ((jj * k) + kk);
                im = A1.unsafe_get yim ((jj * k) + kk) }
          done;
          x)
  end
end
