(* CLOCK_MONOTONIC via bechamel's C stub: immune to wall-clock jumps
   (NTP slews, manual resets), which matters for durations reported in
   anneal stats and bench artifacts. *)

let now_ns () = Monotonic_clock.now ()

let now_s () = Int64.to_float (now_ns ()) /. 1e9

let elapsed_s since = now_s () -. since
