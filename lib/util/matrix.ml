module type FIELD = sig
  type t

  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val norm : t -> float
  val pp : Format.formatter -> t -> unit
end

exception Singular

(* Factorisation counters, shared by both functor instantiations (the
   per-analysis counters in Ape_spice give the real/complex breakdown).
   Pure observation: nothing numeric flows through them. *)
let c_lu_factor = Ape_obs.counter "matrix.lu_factor"
let c_lu_factor_in_place = Ape_obs.counter "matrix.lu_factor_in_place"
let c_csplit_factor = Ape_obs.counter "matrix.csplit_factor"

module Make (F : FIELD) = struct
  type elt = F.t
  type t = { nr : int; nc : int; a : F.t array array }

  let create nr nc =
    if nr < 0 || nc < 0 then invalid_arg "Matrix.create";
    { nr; nc; a = Array.make_matrix nr nc F.zero }

  let identity n =
    let m = create n n in
    for i = 0 to n - 1 do
      m.a.(i).(i) <- F.one
    done;
    m

  let rows m = m.nr
  let cols m = m.nc
  let get m i j = m.a.(i).(j)
  let set m i j x = m.a.(i).(j) <- x
  let add_to m i j x = m.a.(i).(j) <- F.add m.a.(i).(j) x

  let of_arrays a =
    let nr = Array.length a in
    let nc = if nr = 0 then 0 else Array.length a.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> nc then invalid_arg "Matrix.of_arrays: ragged")
      a;
    { nr; nc; a = Array.map Array.copy a }

  let to_arrays m = Array.map Array.copy m.a
  let copy m = { m with a = Array.map Array.copy m.a }
  let map f m = { m with a = Array.map (Array.map f) m.a }

  let transpose m =
    let t = create m.nc m.nr in
    for i = 0 to m.nr - 1 do
      for j = 0 to m.nc - 1 do
        t.a.(j).(i) <- m.a.(i).(j)
      done
    done;
    t

  let mat_mul x y =
    if x.nc <> y.nr then invalid_arg "Matrix.mat_mul: dimension mismatch";
    let r = create x.nr y.nc in
    for i = 0 to x.nr - 1 do
      for j = 0 to y.nc - 1 do
        let acc = ref F.zero in
        for k = 0 to x.nc - 1 do
          acc := F.add !acc (F.mul x.a.(i).(k) y.a.(k).(j))
        done;
        r.a.(i).(j) <- !acc
      done
    done;
    r

  let mat_vec m v =
    if m.nc <> Array.length v then invalid_arg "Matrix.mat_vec";
    if m.nr = 0 then [||]  (* explicit empty-system short-circuit *)
    else
      Array.init m.nr (fun i ->
          let acc = ref F.zero in
          for j = 0 to m.nc - 1 do
            acc := F.add !acc (F.mul m.a.(i).(j) v.(j))
          done;
          !acc)

  type lu = { lu_a : F.t array array; perm : int array; n : int }

  (* Doolittle LU with partial pivoting; L has unit diagonal and is stored
     below the diagonal of [lu_a], U on and above it.  [factor_arrays]
     destroys [a] and fills [perm]; both entry points below share it so
     the copying and in-place factorisations are arithmetically (and
     hence bitwise) identical. *)
  let factor_arrays a perm n =
    for i = 0 to n - 1 do
      perm.(i) <- i
    done;
    (* n = 0 is a valid empty system: the pivot loop below vanishes and
       [lu_solve] returns [||].  Kept explicit rather than incidental so
       the contract survives refactoring — a 0-unknown netlist (ground
       only) must not trip the singularity test. *)
    for k = 0 to n - 1 do
      let pivot = ref k and best = ref (F.norm a.(k).(k)) in
      for i = k + 1 to n - 1 do
        let v = F.norm a.(i).(k) in
        if v > !best then begin
          best := v;
          pivot := i
        end
      done;
      if !best < 1e-300 then raise Singular;
      if !pivot <> k then begin
        let tmp = a.(k) in
        a.(k) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp
      end;
      for i = k + 1 to n - 1 do
        let factor = F.div a.(i).(k) a.(k).(k) in
        a.(i).(k) <- factor;
        for j = k + 1 to n - 1 do
          a.(i).(j) <- F.sub a.(i).(j) (F.mul factor a.(k).(j))
        done
      done
    done;
    { lu_a = a; perm; n }

  let lu_factor m =
    if m.nr <> m.nc then invalid_arg "Matrix.lu_factor: not square";
    Ape_obs.incr c_lu_factor;
    let n = m.nr in
    let a = Array.map Array.copy m.a in
    let perm = Array.make n 0 in
    factor_arrays a perm n

  let lu_factor_in_place m perm =
    if m.nr <> m.nc then invalid_arg "Matrix.lu_factor_in_place: not square";
    Ape_obs.incr c_lu_factor_in_place;
    let n = m.nr in
    if Array.length perm <> n then
      invalid_arg "Matrix.lu_factor_in_place: perm size";
    factor_arrays m.a perm n

  let lu_solve { lu_a = a; perm; n } b =
    if Array.length b <> n then invalid_arg "Matrix.lu_solve";
    if n = 0 then [||]  (* explicit empty-system short-circuit *)
    else begin
    let y = Array.init n (fun i -> b.(perm.(i))) in
    (* Forward substitution with unit-diagonal L. *)
    for i = 1 to n - 1 do
      for j = 0 to i - 1 do
        y.(i) <- F.sub y.(i) (F.mul a.(i).(j) y.(j))
      done
    done;
    (* Back substitution with U. *)
    for i = n - 1 downto 0 do
      for j = i + 1 to n - 1 do
        y.(i) <- F.sub y.(i) (F.mul a.(i).(j) y.(j))
      done;
      y.(i) <- F.div y.(i) a.(i).(i)
    done;
    y
    end

  let solve m b = lu_solve (lu_factor m) b

  let residual_norm m x b =
    let ax = mat_vec m x in
    let worst = ref 0. in
    Array.iteri
      (fun i v -> worst := Float.max !worst (F.norm (F.sub v b.(i))))
      ax;
    !worst

  let pp fmt m =
    for i = 0 to m.nr - 1 do
      Format.fprintf fmt "[";
      for j = 0 to m.nc - 1 do
        if j > 0 then Format.fprintf fmt ", ";
        F.pp fmt m.a.(i).(j)
      done;
      Format.fprintf fmt "]@."
    done
end

module Rmat = Make (struct
  type t = float

  let zero = 0.
  let one = 1.
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let norm = Float.abs
  let pp fmt x = Format.fprintf fmt "%.6g" x
end)

module Cmat = Make (struct
  type t = Complex.t

  let zero = Complex.zero
  let one = Complex.one
  let add = Complex.add
  let sub = Complex.sub
  let mul = Complex.mul
  let div = Complex.div
  let neg = Complex.neg
  let norm = Complex.norm
  let pp fmt (c : Complex.t) = Format.fprintf fmt "%.6g%+.6gi" c.re c.im
end)

(* Split-storage complex LU: real and imaginary parts live in separate
   float matrices, so OCaml's flat-float-array representation keeps the
   inner loops allocation-free (the functor path boxes a [Complex.t]
   record per arithmetic operation).

   Bit-identity contract: every arithmetic step replicates the stdlib's
   [Complex] operations — textbook mul, Smith's scaled division, and
   [Float.hypot] for the pivot magnitude — in the exact operation order
   of [factor_arrays]/[lu_solve] above, so solutions are bitwise equal
   to the [Cmat] path's. *)
module Csplit = struct
  type t = { n : int; re : float array array; im : float array array }

  let create n =
    if n < 0 then invalid_arg "Matrix.Csplit.create";
    { n; re = Array.make_matrix n n 0.; im = Array.make_matrix n n 0. }

  (* Complex.div (Smith's algorithm), on split operands. *)
  let[@inline] cdiv xre xim yre yim =
    if Float.abs yre >= Float.abs yim then begin
      let r = yim /. yre in
      let d = yre +. (r *. yim) in
      ((xre +. (r *. xim)) /. d, (xim -. (r *. xre)) /. d)
    end
    else begin
      let r = yre /. yim in
      let d = yim +. (r *. yre) in
      (((r *. xre) +. xim) /. d, ((r *. xim) -. xre) /. d)
    end

  let factor_in_place m perm =
    let n = m.n and are = m.re and aim = m.im in
    if Array.length perm <> n then
      invalid_arg "Matrix.Csplit.factor_in_place: perm size";
    Ape_obs.incr c_csplit_factor;
    for i = 0 to n - 1 do
      perm.(i) <- i
    done;
    for k = 0 to n - 1 do
      let pivot = ref k
      and best = ref (Float.hypot are.(k).(k) aim.(k).(k)) in
      for i = k + 1 to n - 1 do
        let v = Float.hypot are.(i).(k) aim.(i).(k) in
        if v > !best then begin
          best := v;
          pivot := i
        end
      done;
      if !best < 1e-300 then raise Singular;
      if !pivot <> k then begin
        let tr = are.(k) in
        are.(k) <- are.(!pivot);
        are.(!pivot) <- tr;
        let ti = aim.(k) in
        aim.(k) <- aim.(!pivot);
        aim.(!pivot) <- ti;
        let tp = perm.(k) in
        perm.(k) <- perm.(!pivot);
        perm.(!pivot) <- tp
      end;
      for i = k + 1 to n - 1 do
        let fre, fim = cdiv are.(i).(k) aim.(i).(k) are.(k).(k) aim.(k).(k) in
        are.(i).(k) <- fre;
        aim.(i).(k) <- fim;
        let rre = are.(i) and rim = aim.(i) in
        let pre = are.(k) and pim = aim.(k) in
        for j = k + 1 to n - 1 do
          (* a(i,j) - factor * a(k,j), with Complex.mul's formula. *)
          let bre = pre.(j) and bim = pim.(j) in
          rre.(j) <- rre.(j) -. ((fre *. bre) -. (fim *. bim));
          rim.(j) <- rim.(j) -. ((fre *. bim) +. (fim *. bre))
        done
      done
    done

  let solve m perm (b : Complex.t array) =
    let n = m.n in
    if Array.length b <> n then invalid_arg "Matrix.Csplit.solve";
    if n = 0 then [||]  (* explicit empty-system short-circuit *)
    else begin
    let yre = Array.init n (fun i -> b.(perm.(i)).Complex.re) in
    let yim = Array.init n (fun i -> b.(perm.(i)).Complex.im) in
    (* Forward substitution with unit-diagonal L. *)
    for i = 1 to n - 1 do
      let rre = m.re.(i) and rim = m.im.(i) in
      for j = 0 to i - 1 do
        let are = rre.(j) and aim = rim.(j) in
        yre.(i) <- yre.(i) -. ((are *. yre.(j)) -. (aim *. yim.(j)));
        yim.(i) <- yim.(i) -. ((are *. yim.(j)) +. (aim *. yre.(j)))
      done
    done;
    (* Back substitution with U. *)
    for i = n - 1 downto 0 do
      let rre = m.re.(i) and rim = m.im.(i) in
      for j = i + 1 to n - 1 do
        let are = rre.(j) and aim = rim.(j) in
        yre.(i) <- yre.(i) -. ((are *. yre.(j)) -. (aim *. yim.(j)));
        yim.(i) <- yim.(i) -. ((are *. yim.(j)) +. (aim *. yre.(j)))
      done;
      let re, im = cdiv yre.(i) yim.(i) rre.(i) rim.(i) in
      yre.(i) <- re;
      yim.(i) <- im
    done;
    Array.init n (fun i -> { Complex.re = yre.(i); im = yim.(i) })
    end

  (* Solve Aᵀy = b with the factorisation of A.  With PA = LU the
     transposed system is Uᵀ(Lᵀ(Py)) = b: run Uᵀ forward (row i of Uᵀ
     is column i of U, divide by the diagonal), Lᵀ backward (unit
     diagonal), then undo the row permutation on the way out. *)
  let solve_transposed m perm (b : Complex.t array) =
    let n = m.n in
    if Array.length b <> n then invalid_arg "Matrix.Csplit.solve_transposed";
    if n = 0 then [||]
    else begin
      let yre = Array.init n (fun i -> b.(i).Complex.re) in
      let yim = Array.init n (fun i -> b.(i).Complex.im) in
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          let are = m.re.(j).(i) and aim = m.im.(j).(i) in
          yre.(i) <- yre.(i) -. ((are *. yre.(j)) -. (aim *. yim.(j)));
          yim.(i) <- yim.(i) -. ((are *. yim.(j)) +. (aim *. yre.(j)))
        done;
        let re, im = cdiv yre.(i) yim.(i) m.re.(i).(i) m.im.(i).(i) in
        yre.(i) <- re;
        yim.(i) <- im
      done;
      for i = n - 1 downto 0 do
        for j = i + 1 to n - 1 do
          let are = m.re.(j).(i) and aim = m.im.(j).(i) in
          yre.(i) <- yre.(i) -. ((are *. yre.(j)) -. (aim *. yim.(j)));
          yim.(i) <- yim.(i) -. ((are *. yim.(j)) +. (aim *. yre.(j)))
        done
      done;
      let y = Array.make n Complex.zero in
      for i = 0 to n - 1 do
        y.(perm.(i)) <- { Complex.re = yre.(i); im = yim.(i) }
      done;
      y
    end
end
