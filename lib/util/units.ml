let tera = 1e12
let giga = 1e9
let mega = 1e6
let kilo = 1e3
let milli = 1e-3
let micro = 1e-6
let nano = 1e-9
let pico = 1e-12
let femto = 1e-15
let um = micro
let um2 = micro *. micro
let khz = kilo
let mhz = mega
let pf = pico
let ua = micro
let mw = milli
let q_electron = 1.602176634e-19
let k_boltzmann = 1.380649e-23
let eps_0 = 8.8541878128e-12
let eps_ox = 3.9 *. eps_0
let eps_si = 11.7 *. eps_0

let thermal_voltage ?(temp_k = 300.15) () =
  k_boltzmann *. temp_k /. q_electron

(* Prefix ladder indexed from 1e-18; engineering notation walks it in
   steps of three decades. *)
let prefixes = [| "a"; "f"; "p"; "n"; "u"; "m"; ""; "k"; "M"; "G"; "T" |]

let to_eng ?(digits = 3) x =
  if x = 0. then "0"
  else if Float.is_nan x then "nan"
  else if Float.abs x = infinity then if x > 0. then "inf" else "-inf"
  else
    let sign = if x < 0. then "-" else "" in
    let ax = Float.abs x in
    let exp3 = int_of_float (Float.floor (Float.log10 ax /. 3.)) in
    let exp3 = max (-6) (min 4 exp3) in
    let mant = ax /. (10. ** float_of_int (3 * exp3)) in
    (* Significant digits: mantissa is in [1, 1000). *)
    let int_digits =
      if mant >= 100. then 3 else if mant >= 10. then 2 else 1
    in
    let frac = max 0 (digits - int_digits) in
    let s = Printf.sprintf "%.*f" frac mant in
    (* Strip trailing zeros and a dangling dot. *)
    let s =
      if String.contains s '.' then begin
        let n = ref (String.length s) in
        while !n > 1 && s.[!n - 1] = '0' do decr n done;
        if !n > 1 && s.[!n - 1] = '.' then decr n;
        String.sub s 0 !n
      end
      else s
    in
    sign ^ s ^ prefixes.(exp3 + 6)

let to_eng_unit ?digits unit x = to_eng ?digits x ^ unit
let pp fmt x = Format.pp_print_string fmt (to_eng x)

let to_exact x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else
    (* Shortest of %.15g/%.16g/%.17g that parses back bit-identically;
       17 significant digits always round-trip an IEEE double. *)
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" x)
