(** Monotonic time for durations.

    [Unix.gettimeofday] is wall-clock time: NTP slews and manual clock
    resets can make intervals negative or wildly wrong.  Everything
    that reports a duration (anneal stats, bench artifacts) should
    difference this clock instead. *)

val now_ns : unit -> int64
(** Nanoseconds on CLOCK_MONOTONIC.  Only differences are meaningful. *)

val now_s : unit -> float
(** [now_ns] in seconds. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now_s () -. t0]. *)
