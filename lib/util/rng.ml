type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66 |]

(* Children are seeded from several parent draws: two 30-bit words give
   only ~2^60 distinct child streams and leave sibling seeds sharing
   most of the parent's state trajectory; six words keep siblings
   statistically independent (test/test_util.ml checks correlation). *)
let split_words = 6

let split t =
  Random.State.make (Array.init split_words (fun _ -> Random.State.bits t))

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative";
  let base = Array.init split_words (fun _ -> Random.State.bits t) in
  Array.init n (fun i ->
      Random.State.make (Array.append base [| i; i lxor 0x2545f491 |]))

let uniform t lo hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. (Random.State.float t 1.0 *. (hi -. lo))

let log_uniform t lo hi =
  if lo <= 0. || hi <= 0. then invalid_arg "Rng.log_uniform: bounds <= 0";
  Float.exp (uniform t (Float.log lo) (Float.log hi))

let gauss t ~mean ~sigma =
  let u1 = Float.max 1e-300 (Random.State.float t 1.0) in
  let u2 = Random.State.float t 1.0 in
  mean
  +. sigma
     *. Float.sqrt (-2. *. Float.log u1)
     *. Float.cos (2. *. Float.pi *. u2)

let int t n = Random.State.int t n
let bool t = Random.State.bool t

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty";
  arr.(Random.State.int t (Array.length arr))

let state t = t
