(* Metrics registry + per-domain sinks.

   Hot-path discipline: every recording entry point opens with
   [if not !on then ()] — one load and one conditional branch when
   observation is disabled, no allocation, no function call.  When
   enabled, a site touches only its own domain's sink (via DLS), so
   there is no synchronisation on the hot path either; sinks meet the
   shared accumulator only at flush points (worker join, snapshot). *)

let now = Unix.gettimeofday

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

type kind = Counter | Gauge | Histogram

type metric = { id : int; name : string; kind : kind }
type counter = metric
type gauge = metric
type histogram = metric

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let registry_lock = Mutex.create ()
let metric_count = ref 0 (* length of the registry, read by [ensure] *)
let by_name : (string, metric) Hashtbl.t = Hashtbl.create 64

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register kind name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt by_name name with
      | Some m ->
        if m.kind <> kind then
          invalid_arg
            (Printf.sprintf "Ape_obs: %s is already a %s, not a %s" name
               (kind_name m.kind) (kind_name kind));
        m
      | None ->
        let m = { id = !metric_count; name; kind } in
        incr metric_count;
        Hashtbl.add by_name name m;
        m)

let counter name = register Counter name
let gauge name = register Gauge name
let histogram name = register Histogram name

let all_metrics () =
  with_lock registry_lock (fun () ->
      let l = Hashtbl.fold (fun _ m acc -> m :: acc) by_name [] in
      List.sort (fun a b -> compare a.id b.id) l)

(* ------------------------------------------------------------------ *)
(* Welford summaries with log-scale buckets                            *)
(* ------------------------------------------------------------------ *)

(* 4 buckets per decade over [1e-9, 1e3): wide enough for nanosecond
   solver kernels and hundred-second verify phases alike.  Out-of-range
   samples clamp into the end buckets. *)
let n_buckets = 48
let bucket_le i = 10. ** (-9. +. (float_of_int (i + 1) /. 4.))

let bucket_of x =
  if not (x > 0.) then 0
  else begin
    let b = int_of_float (Float.floor (4. *. (Float.log10 x +. 9.))) in
    if b < 0 then 0 else if b > n_buckets - 1 then n_buckets - 1 else b
  end

type wf = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

let wf_create () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    sum = 0.;
    lo = infinity;
    hi = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

let wf_add w x =
  w.n <- w.n + 1;
  let delta = x -. w.mean in
  w.mean <- w.mean +. (delta /. float_of_int w.n);
  w.m2 <- w.m2 +. (delta *. (x -. w.mean));
  w.sum <- w.sum +. x;
  if x < w.lo then w.lo <- x;
  if x > w.hi then w.hi <- x;
  let b = bucket_of x in
  w.buckets.(b) <- w.buckets.(b) + 1

(* Chan's parallel-merge update for the streaming moments. *)
let wf_merge ~into:a b =
  if b.n > 0 then begin
    if a.n = 0 then begin
      a.n <- b.n;
      a.mean <- b.mean;
      a.m2 <- b.m2;
      a.sum <- b.sum;
      a.lo <- b.lo;
      a.hi <- b.hi
    end
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let delta = b.mean -. a.mean in
      a.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. (na +. nb));
      a.mean <- a.mean +. (delta *. nb /. (na +. nb));
      a.n <- a.n + b.n;
      a.sum <- a.sum +. b.sum;
      if b.lo < a.lo then a.lo <- b.lo;
      if b.hi > a.hi then a.hi <- b.hi
    end;
    Array.iteri (fun i c -> a.buckets.(i) <- a.buckets.(i) + c) b.buckets
  end

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink = {
  mutable counts : int array; (* indexed by metric id *)
  mutable gvals : float array;
  mutable gset : bool array;
  mutable wfs : wf option array;
  spans : (string, wf) Hashtbl.t;
  mutable stack : string list; (* current span paths, innermost first *)
}

let sink_create () =
  {
    counts = [||];
    gvals = [||];
    gset = [||];
    wfs = [||];
    spans = Hashtbl.create 16;
    stack = [];
  }

(* Grow the id-indexed arrays to cover the whole registry.  Metrics are
   only ever added, so a length check suffices. *)
let ensure s =
  let m = !metric_count in
  if Array.length s.counts < m then begin
    let counts = Array.make m 0 in
    Array.blit s.counts 0 counts 0 (Array.length s.counts);
    s.counts <- counts;
    let gvals = Array.make m 0. in
    Array.blit s.gvals 0 gvals 0 (Array.length s.gvals);
    s.gvals <- gvals;
    let gset = Array.make m false in
    Array.blit s.gset 0 gset 0 (Array.length s.gset);
    s.gset <- gset;
    let wfs = Array.make m None in
    Array.blit s.wfs 0 wfs 0 (Array.length s.wfs);
    s.wfs <- wfs
  end

let sink_clear s =
  Array.fill s.counts 0 (Array.length s.counts) 0;
  Array.fill s.gvals 0 (Array.length s.gvals) 0.;
  Array.fill s.gset 0 (Array.length s.gset) false;
  Array.fill s.wfs 0 (Array.length s.wfs) None;
  Hashtbl.reset s.spans
(* the span stack belongs to control flow, not recorded data *)

let sink_merge ~into:dst src =
  ensure dst;
  ensure src;
  Array.iteri
    (fun i c -> if c <> 0 then dst.counts.(i) <- dst.counts.(i) + c)
    src.counts;
  Array.iteri
    (fun i set ->
      if set then begin
        dst.gvals.(i) <- src.gvals.(i);
        dst.gset.(i) <- true
      end)
    src.gset;
  Array.iteri
    (fun i w ->
      match w with
      | None -> ()
      | Some w -> (
        match dst.wfs.(i) with
        | Some d -> wf_merge ~into:d w
        | None ->
          let d = wf_create () in
          wf_merge ~into:d w;
          dst.wfs.(i) <- Some d))
    src.wfs;
  Hashtbl.iter
    (fun path w ->
      match Hashtbl.find_opt dst.spans path with
      | Some d -> wf_merge ~into:d w
      | None ->
        let d = wf_create () in
        wf_merge ~into:d w;
        Hashtbl.add dst.spans path d)
    src.spans

let dls_key = Domain.DLS.new_key sink_create
let local () = Domain.DLS.get dls_key

let global_lock = Mutex.create ()
let global = sink_create ()

let flush_domain () =
  let s = local () in
  with_lock global_lock (fun () -> sink_merge ~into:global s);
  sink_clear s

(* ------------------------------------------------------------------ *)
(* Switch + recording                                                  *)
(* ------------------------------------------------------------------ *)

(* Plain ref, written only from enable/disable: the hot-path read is a
   single load.  Cross-domain visibility is best-effort by design —
   workloads flip the switch before spawning workers. *)
let on = ref false

let enabled () = !on
let enable () = on := true
let disable () = on := false

let reset () =
  sink_clear (local ());
  with_lock global_lock (fun () -> sink_clear global)

let add c k =
  if !on then begin
    let s = local () in
    ensure s;
    s.counts.(c.id) <- s.counts.(c.id) + k
  end

let incr c = add c 1

let set g v =
  if !on then begin
    let s = local () in
    ensure s;
    s.gvals.(g.id) <- v;
    s.gset.(g.id) <- true
  end

let wf_for s (h : metric) =
  ensure s;
  match s.wfs.(h.id) with
  | Some w -> w
  | None ->
    let w = wf_create () in
    s.wfs.(h.id) <- Some w;
    w

let observe h x = if !on then wf_add (wf_for (local ()) h) x

let time h f =
  if not !on then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> observe h (now () -. t0)) f
  end

let span_wf s path =
  match Hashtbl.find_opt s.spans path with
  | Some w -> w
  | None ->
    let w = wf_create () in
    Hashtbl.add s.spans path w;
    w

let span name f =
  if not !on then f ()
  else begin
    let s = local () in
    let path =
      match s.stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    s.stack <- path :: s.stack;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        (match s.stack with _ :: tl -> s.stack <- tl | [] -> ());
        wf_add (span_wf s path) (now () -. t0))
      f
  end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type summary = {
  s_count : int;
  s_mean : float;
  s_std : float;
  s_min : float;
  s_max : float;
  s_sum : float;
  s_buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * summary) list;
  spans : (string * summary) list;
}

let summary_of (w : wf) =
  {
    s_count = w.n;
    s_mean = (if w.n = 0 then 0. else w.mean);
    s_std = (if w.n < 2 then 0. else Float.sqrt (w.m2 /. float_of_int (w.n - 1)));
    s_min = (if w.n = 0 then 0. else w.lo);
    s_max = (if w.n = 0 then 0. else w.hi);
    s_sum = w.sum;
    s_buckets =
      Array.to_list w.buckets
      |> List.mapi (fun i c -> (bucket_le i, c))
      |> List.filter (fun (_, c) -> c > 0);
  }

let snapshot () =
  flush_domain ();
  let metrics = all_metrics () in
  with_lock global_lock (fun () ->
      ensure global;
      let by_name_order sel =
        List.sort (fun (a, _) (b, _) -> String.compare a b) sel
      in
      let counters =
        List.filter_map
          (fun m ->
            if m.kind = Counter && global.counts.(m.id) <> 0 then
              Some (m.name, global.counts.(m.id))
            else None)
          metrics
        |> by_name_order
      in
      let gauges =
        List.filter_map
          (fun m ->
            if m.kind = Gauge && global.gset.(m.id) then
              Some (m.name, global.gvals.(m.id))
            else None)
          metrics
        |> by_name_order
      in
      let histograms =
        List.filter_map
          (fun m ->
            match (m.kind, global.wfs.(m.id)) with
            | Histogram, Some w when w.n > 0 -> Some (m.name, summary_of w)
            | _ -> None)
          metrics
        |> by_name_order
      in
      let spans =
        Hashtbl.fold
          (fun path w acc -> (path, summary_of w) :: acc)
          global.spans []
        |> by_name_order
      in
      { counters; gauges; histograms; spans })

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let eng v =
  (* Engineering-ish formatting without depending on Ape_util (which
     sits above this library). *)
  let a = Float.abs v in
  if a = 0. then "0"
  else if a >= 1e9 then Printf.sprintf "%.3g G" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.3g M" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.3g k" (v /. 1e3)
  else if a >= 1. then Printf.sprintf "%.4g" v
  else if a >= 1e-3 then Printf.sprintf "%.3g m" (v *. 1e3)
  else if a >= 1e-6 then Printf.sprintf "%.3g u" (v *. 1e6)
  else if a >= 1e-9 then Printf.sprintf "%.3g n" (v *. 1e9)
  else Printf.sprintf "%.3g" v

let render t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  if t.counters <> [] then begin
    pf "counters:\n";
    List.iter (fun (n, v) -> pf "  %-36s %12d\n" n v) t.counters
  end;
  if t.gauges <> [] then begin
    pf "gauges:\n";
    List.iter (fun (n, v) -> pf "  %-36s %12s\n" n (eng v)) t.gauges
  end;
  if t.histograms <> [] then begin
    pf "histograms:%45s\n" "count        mean         std         max";
    List.iter
      (fun (n, s) ->
        pf "  %-36s %8d %11s %11s %11s\n" n s.s_count (eng s.s_mean)
          (eng s.s_std) (eng s.s_max))
      t.histograms
  end;
  if t.spans <> [] then begin
    pf "spans:%51s\n" "count     total s        mean         max";
    List.iter
      (fun (path, s) ->
        let depth =
          String.fold_left (fun d c -> if c = '/' then d + 1 else d) 0 path
        in
        let leaf =
          match String.rindex_opt path '/' with
          | Some i -> String.sub path (i + 1) (String.length path - i - 1)
          | None -> path
        in
        let label = String.make (2 * depth) ' ' ^ leaf in
        pf "  %-36s %8d %11.3f %11s %11s\n" label s.s_count s.s_sum
          (eng s.s_mean) (eng s.s_max))
      t.spans
  end;
  if
    t.counters = [] && t.gauges = [] && t.histograms = [] && t.spans = []
  then pf "no observations recorded (was the registry enabled?)\n";
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

let render_json t =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let list items f =
    List.iteri
      (fun i x ->
        if i > 0 then pf ",";
        f x)
      items
  in
  pf "{\n  \"schema\": \"ape-obs/1\",\n  \"counters\": [";
  list t.counters (fun (n, v) ->
      pf "\n    {\"name\": \"%s\", \"value\": %d}" (json_escape n) v);
  pf "\n  ],\n  \"gauges\": [";
  list t.gauges (fun (n, v) ->
      pf "\n    {\"name\": \"%s\", \"value\": %s}" (json_escape n)
        (json_float v));
  pf "\n  ],\n  \"histograms\": [";
  list t.histograms (fun (n, s) ->
      pf
        "\n    {\"name\": \"%s\", \"count\": %d, \"mean\": %s, \"std\": %s, \
         \"min\": %s, \"max\": %s, \"sum\": %s, \"buckets\": ["
        (json_escape n) s.s_count (json_float s.s_mean) (json_float s.s_std)
        (json_float s.s_min) (json_float s.s_max) (json_float s.s_sum);
      list s.s_buckets (fun (le, c) ->
          pf "{\"le\": %s, \"count\": %d}" (json_float le) c);
      pf "]}");
  pf "\n  ],\n  \"spans\": [";
  list t.spans (fun (path, s) ->
      pf
        "\n    {\"path\": \"%s\", \"count\": %d, \"total_s\": %s, \"mean_s\": \
         %s, \"std_s\": %s, \"min_s\": %s, \"max_s\": %s}"
        (json_escape path) s.s_count (json_float s.s_sum)
        (json_float s.s_mean) (json_float s.s_std) (json_float s.s_min)
        (json_float s.s_max));
  pf "\n  ]\n}\n";
  Buffer.contents b
