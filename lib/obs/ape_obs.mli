(** Low-overhead observability: metrics registry, hierarchical span
    timing and per-domain sinks for the estimator/synthesis stack.

    The registry is compiled into the hot paths but disabled by default:
    every instrumentation site costs one load and one branch when
    observation is off, and none of the instrumented code paths compute
    differently when it is on — numeric results are bit-identical with
    observation enabled or disabled.

    Three metric families:

    - {e counters}: monotonic integer counts (solver calls, cache hits,
      accepted moves).
    - {e gauges}: last-written float values (annealer temperature,
      cache occupancy).
    - {e histograms}: log-scale latency/value histograms with a
      Welford-style single-pass summary (count/mean/std/min/max/sum),
      the same streaming-moment idiom as [Ape_mc.Stats].

    {b Spans} time hierarchical phases: [span "anneal" f] runs [f] and
    records its wall time under the path formed by the enclosing spans
    of the current domain ("synth/anneal" when nested inside
    [span "synth"]).  Span statistics reuse the histogram summary.

    {b Domains.}  Every domain records into its own sink — no atomics
    or locks on the hot path.  Worker domains spawned by
    [Ape_util.Pool.map] flush their sinks into the global accumulator
    when they are joined, so parallel sweeps and Monte Carlo runs
    aggregate correctly; {!snapshot} flushes the calling domain.
    Metric handles ({!counter} and friends) may be created from any
    domain and are idempotent by name. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or look up) a monotonic counter.  Raises [Invalid_argument]
    if the name is already registered with a different kind. *)

val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Switching} *)

val enabled : unit -> bool

val enable : unit -> unit
(** Start recording.  Does not clear previously recorded data — call
    {!reset} for a fresh start. *)

val disable : unit -> unit

val reset : unit -> unit
(** Zero the global accumulator and the calling domain's sink. *)

(** {1 Recording} — all no-ops (one load + branch) when disabled. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one sample (histograms bucket positive values on a log scale;
    zero/negative samples land in the lowest bucket). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall time in seconds (also on
    exception).  When disabled, just runs the thunk. *)

val span : string -> (unit -> 'a) -> 'a
(** Time a hierarchical phase.  The recorded path is the "/"-joined
    chain of enclosing span names in this domain.  Exception-safe; when
    disabled, just runs the thunk. *)

val flush_domain : unit -> unit
(** Merge the calling domain's sink into the global accumulator and
    clear it.  [Ape_util.Pool] calls this as each worker domain
    finishes; user code only needs it for hand-rolled [Domain.spawn]. *)

(** {1 Snapshots and rendering} *)

type summary = {
  s_count : int;
  s_mean : float;
  s_std : float;  (** sample standard deviation; 0 when count < 2 *)
  s_min : float;
  s_max : float;
  s_sum : float;
  s_buckets : (float * int) list;
      (** non-empty log buckets as (inclusive upper bound, count) *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name; non-zero only *)
  gauges : (string * float) list;  (** sorted by name; written only *)
  histograms : (string * summary) list;  (** sorted by name *)
  spans : (string * summary) list;  (** sorted by path *)
}

val snapshot : unit -> snapshot
(** Flush the calling domain and read the merged totals.  Does not
    clear anything. *)

val render : snapshot -> string
(** ASCII tables: counters, gauges, histograms and an indented span
    tree. *)

val render_json : snapshot -> string
(** Machine-readable dump, schema ["ape-obs/1"]:
    {v
    { "schema": "ape-obs/1",
      "counters":   [{"name": n, "value": int}],
      "gauges":     [{"name": n, "value": float}],
      "histograms": [{"name": n, "count": int, "mean": f, "std": f,
                      "min": f, "max": f, "sum": f,
                      "buckets": [{"le": f, "count": int}]}],
      "spans":      [{"path": p, "count": int, "total_s": f, "mean_s": f,
                      "std_s": f, "min_s": f, "max_s": f}] }
    v} *)
