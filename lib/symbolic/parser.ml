exception Parse_error of string * int

type token =
  | Tnum of float
  | Tident of string
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tcaret
  | Tlparen
  | Trparen
  | Teof

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c

(* SPICE-style magnitude suffixes, matched case-insensitively with the
   multi-letter ones ("meg", "mil") tried before the single letters.
   One deliberate exception to case-insensitivity: a single leading 'm'
   keeps the engineering-notation convention used throughout this repo —
   "M" is 1e6 and "m" is 1e-3 (classic SPICE treats both as milli). *)
let suffix_multiplier suffix =
  let lc = String.lowercase_ascii suffix in
  let starts p =
    String.length lc >= String.length p && String.sub lc 0 (String.length p) = p
  in
  if starts "meg" then Some 1e6
  else if starts "mil" then Some 25.4e-6
  else
    match lc.[0] with
    | 't' -> Some 1e12
    | 'g' -> Some 1e9
    | 'k' -> Some 1e3
    | 'm' -> Some (if suffix.[0] = 'M' then 1e6 else 1e-3)
    | 'u' -> Some 1e-6
    | 'n' -> Some 1e-9
    | 'p' -> Some 1e-12
    | 'f' -> Some 1e-15
    | 'a' -> Some 1e-18
    | _ -> None

let parse_number s =
  let n = String.length s in
  if n = 0 then None
  else begin
    (* Split the numeric prefix from an alphabetic suffix. *)
    let i = ref 0 in
    let seen_digit = ref false in
    if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
    while
      !i < n
      && (is_digit s.[!i] || s.[!i] = '.'
         || ((s.[!i] = 'e' || s.[!i] = 'E')
            && !seen_digit
            && !i + 1 < n
            && (is_digit s.[!i + 1] || s.[!i + 1] = '+' || s.[!i + 1] = '-')))
    do
      if is_digit s.[!i] then seen_digit := true;
      if s.[!i] = 'e' || s.[!i] = 'E' then begin
        incr i;
        if s.[!i] = '+' || s.[!i] = '-' then incr i
      end
      else incr i
    done;
    if not !seen_digit then None
    else begin
      let mantissa = String.sub s 0 !i in
      let suffix = String.sub s !i (n - !i) in
      match float_of_string_opt mantissa with
      | None -> None
      | Some v ->
        if suffix = "" then Some v
        else
          (* SPICE ignores trailing unit letters after the magnitude
             suffix (e.g. "10pF", "4.7kOhm"). *)
          Option.map (fun mult -> v *. mult) (suffix_multiplier suffix)
    end
  end

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit s.[!i] || s.[!i] = '.'
           || ((s.[!i] = 'e' || s.[!i] = 'E')
              && !i + 1 < n
              && (is_digit s.[!i + 1] || s.[!i + 1] = '+' || s.[!i + 1] = '-')))
      do
        if s.[!i] = 'e' || s.[!i] = 'E' then begin
          incr i;
          if s.[!i] = '+' || s.[!i] = '-' then incr i
        end
        else incr i
      done;
      let text = String.sub s start (!i - start) in
      (* A letter glued to the mantissa is a SPICE magnitude suffix:
         "5k", "10meg", "2.2u".  The grammar has no juxtaposition
         product, so this is unambiguous. *)
      let sstart = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      let suffix = String.sub s sstart (!i - sstart) in
      match float_of_string_opt text with
      | None -> raise (Parse_error ("bad number " ^ text, start))
      | Some v ->
        if suffix = "" then tokens := (Tnum v, start) :: !tokens
        else (
          match suffix_multiplier suffix with
          | Some mult -> tokens := (Tnum (v *. mult), start) :: !tokens
          | None ->
            raise
              (Parse_error ("unknown magnitude suffix " ^ suffix, sstart)))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      tokens := (Tident (String.sub s start (!i - start)), start) :: !tokens
    end
    else begin
      let tok =
        match c with
        | '+' -> Tplus
        | '-' -> Tminus
        | '*' -> Tstar
        | '/' -> Tslash
        | '^' -> Tcaret
        | '(' -> Tlparen
        | ')' -> Trparen
        | _ -> raise (Parse_error (Printf.sprintf "unexpected '%c'" c, !i))
      in
      tokens := (tok, !i) :: !tokens;
      incr i
    end
  done;
  tokens := (Teof, n) :: !tokens;
  Array.of_list (List.rev !tokens)

type state = { toks : (token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let pos_of st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let expect st tok msg =
  if peek st = tok then advance st else raise (Parse_error (msg, pos_of st))

let functions = [ "sqrt"; "abs"; "log"; "exp" ]

let rec parse_expr st =
  let lhs = ref (parse_term st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Tplus ->
      advance st;
      lhs := Expr.Add (!lhs, parse_term st)
    | Tminus ->
      advance st;
      lhs := Expr.Sub (!lhs, parse_term st)
    | Tnum _ | Tident _ | Tstar | Tslash | Tcaret | Tlparen | Trparen | Teof
      ->
      continue := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Tstar ->
      advance st;
      lhs := Expr.Mul (!lhs, parse_unary st)
    | Tslash ->
      advance st;
      lhs := Expr.Div (!lhs, parse_unary st)
    | Tnum _ | Tident _ | Tplus | Tminus | Tcaret | Tlparen | Trparen | Teof
      ->
      continue := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Tminus ->
    advance st;
    Expr.Neg (parse_unary st)
  | Tnum _ | Tident _ | Tplus | Tstar | Tslash | Tcaret | Tlparen | Trparen
  | Teof ->
    parse_power st

and parse_power st =
  let base = parse_atom st in
  match peek st with
  | Tcaret -> (
    advance st;
    let sign =
      if peek st = Tminus then begin
        advance st;
        -1.
      end
      else 1.
    in
    match peek st with
    | Tnum v ->
      advance st;
      Expr.Pow (base, sign *. v)
    | _ -> raise (Parse_error ("exponent must be a number", pos_of st)))
  | Tnum _ | Tident _ | Tplus | Tminus | Tstar | Tslash | Tlparen | Trparen
  | Teof ->
    base

and parse_atom st =
  match peek st with
  | Tnum v ->
    advance st;
    Expr.Const v
  | Tident name ->
    advance st;
    if peek st = Tlparen then begin
      if not (List.mem name functions) then
        raise (Parse_error ("unknown function " ^ name, pos_of st));
      advance st;
      let arg = parse_expr st in
      expect st Trparen "expected ')'";
      match name with
      | "sqrt" -> Expr.Sqrt arg
      | "abs" -> Expr.Abs arg
      | "log" -> Expr.Log arg
      | "exp" -> Expr.Exp arg
      | _ -> assert false
    end
    else Expr.Var name
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen "expected ')'";
    e
  | Tplus | Tminus | Tstar | Tslash | Tcaret | Trparen | Teof ->
    raise (Parse_error ("expected an atom", pos_of st))

let parse s =
  let st = { toks = tokenize s; pos = 0 } in
  let e = parse_expr st in
  if peek st <> Teof then raise (Parse_error ("trailing input", pos_of st));
  e
