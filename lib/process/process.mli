(** A fabrication process: the pair of MOS model cards plus the
    process-wide constants (supplies, minimum geometry, passive
    densities) the estimator and simulator share. *)

type perturbation = {
  nmos : Model_card.perturbation;
  pmos : Model_card.perturbation;
  rsh_factor : float;  (** multiplies the poly sheet resistance *)
  cap_factor : float;  (** multiplies the capacitor density *)
}
(** One sampled inter-die deviation of the whole process (declared
    before {!t} so [t]'s [nmos]/[pmos] labels take precedence).
    [Mc.Variation] samples these (shared oxide factor, per-polarity
    KP/VTO/λ); the deterministic {!corner}s are special cases. *)

type t = {
  name : string;
  lmin : float;  (** minimum drawn channel length, m *)
  wmin : float;  (** minimum drawn channel width, m *)
  wmax : float;  (** sanity cap on widths during synthesis, m *)
  vdd : float;  (** positive supply, V *)
  vss : float;  (** negative supply, V *)
  nmos : Model_card.t;
  pmos : Model_card.t;
  rsh_poly : float;  (** poly sheet resistance, Ω/□ (for resistors) *)
  cap_density : float;  (** poly-poly capacitor density, F/m² *)
}

val c12 : t
(** Built-in 1.2 µm-class process at 5 V, the default everywhere
    (matches the paper's mid-90s MOSIS setting). *)

val c08 : t
(** Built-in 0.8 µm-class process at 5 V, for cross-process tests. *)

val card : t -> Model_card.mos_type -> Model_card.t
(** Select the card of a polarity. *)

val with_model_level : Model_card.level -> t -> t
(** Both cards re-tagged at the given model level. *)

type corner = Typical | Slow | Fast

val corner : corner -> t -> t
(** Process corners: [Slow] weakens both polarities (KP ×0.85,
    |VTO| +0.1 V), [Fast] strengthens them (KP ×1.15, |VTO| −0.1 V);
    [Typical] is the identity.  Used for estimator-robustness
    experiments. *)

val corner_name : corner -> string

(** {1 Process variation} *)

val no_perturbation : perturbation

val perturb : perturbation -> t -> t
(** Apply a sampled deviation to both cards and the passive densities. *)

val resistor_area : t -> float -> float
(** Estimated layout area of a poly resistor of the given value, m²
    (2 µm-wide serpentine). *)

val capacitor_area : t -> float -> float
(** Estimated layout area of a poly-poly capacitor of the given value,
    m². *)

val pp : Format.formatter -> t -> unit
