(** MOS device model cards.

    APE "uses technology process parameters and SPICE models of analog
    circuit elements at the lowest level" and "can use Level 1, 2, 3 or
    BSIM SPICE device models" (paper §4.1).  A {!t} bundles the parameters
    of one device polarity at one model level; {!Process.t} pairs the two
    polarities with the process-wide constants. *)

type mos_type = Nmos | Pmos

type level =
  | Level1  (** Shichman–Hodges square law *)
  | Level2  (** + mobility degradation (theta) *)
  | Level3  (** + velocity saturation (vmax/ecrit) *)
  | Bsim1   (** lite BSIM1: both refinements + body-bias mobility term *)

type t = {
  name : string;
  mos_type : mos_type;
  level : level;
  vto : float;  (** zero-bias threshold, V; negative for PMOS *)
  kp : float;  (** transconductance parameter µ0·Cox, A/V² *)
  gamma : float;  (** body-effect coefficient, √V *)
  phi : float;  (** surface potential 2φ_f, V *)
  lambda : float;  (** channel-length modulation at {!field-lref}, 1/V *)
  lref : float;  (** channel length at which [lambda] was extracted, m *)
  tox : float;  (** gate-oxide thickness, m *)
  u0 : float;  (** low-field mobility, m²/(V·s) *)
  theta : float;  (** mobility degradation, 1/V (Level ≥ 2) *)
  vmax : float;  (** carrier saturation velocity, m/s (Level ≥ 3) *)
  eta : float;  (** DIBL-style threshold shift per V_DS (Bsim1) *)
  cgso : float;  (** G-S overlap capacitance, F/m of width *)
  cgdo : float;  (** G-D overlap capacitance, F/m of width *)
  cgbo : float;  (** G-B overlap capacitance, F/m of length *)
  cj : float;  (** junction bottom capacitance, F/m² *)
  mj : float;  (** bottom grading coefficient *)
  cjsw : float;  (** junction sidewall capacitance, F/m *)
  mjsw : float;  (** sidewall grading coefficient *)
  pb : float;  (** junction built-in potential, V *)
  ld : float;  (** lateral diffusion, m *)
  is_leak : float;  (** subthreshold leak scale, A (continuity aid) *)
  kf : float;  (** flicker-noise coefficient (SPICE KF), V²·F *)
  af : float;  (** flicker-noise current exponent (SPICE AF) *)
  avt : float;  (** Pelgrom threshold-mismatch coefficient, V·m *)
}

val cox : t -> float
(** Oxide capacitance per unit area, [eps_ox / tox], F/m². *)

val polarity : t -> float
(** +1. for NMOS, −1. for PMOS: multiplies voltages/currents so the same
    equations serve both. *)

val lambda_at : t -> float -> float
(** [lambda_at card l] is the channel-length modulation for drawn length
    [l]: λ(L) = λ0·L_ref/L (design choice D2 in DESIGN.md). *)

val vth : t -> vsb:float -> float
(** Threshold magnitude including body effect:
    VT = |VTO| + γ(√(2φ_f + V_SB) − √(2φ_f)), with V_SB clamped at
    −2φ_f + ε for Newton robustness. *)

val default_nmos : t
(** The built-in 1.2 µm NMOS Level-1 card (see {!Process.c12}). *)

val default_pmos : t

val with_level : level -> t -> t
(** Same card re-tagged at another model level (the refinement
    parameters are already present). *)

(** {1 Process variation} *)

type perturbation = {
  kp_factor : float;  (** multiplies KP (and u0, keeping KP = u0·Cox) *)
  vto_shift : float;
      (** threshold-magnitude shift, V: added with the device polarity so
          a positive shift always {e slows} the device *)
  tox_factor : float;  (** multiplies tox (and scales u0 to keep KP) *)
  gamma_factor : float;
  lambda_factor : float;
}
(** One sampled inter-die deviation of a card, in the same parameter
    basis as {!Process.corner} — a corner is just a deterministic
    perturbation.  Constructed by [Mc.Variation] from a {!Ape_util.Rng}
    stream; kept Rng-free here so the process layer stays deterministic. *)

val no_perturbation : perturbation
(** The identity (all factors 1, shift 0). *)

val perturb : perturbation -> t -> t
(** Apply a sampled deviation, keeping KP, u0 and tox mutually
    consistent (KP = u0·eps_ox/tox). *)

val to_spice : t -> string
(** Render as a SPICE [.MODEL] line. *)

val pp : Format.formatter -> t -> unit
