(* Declared before [t] so the [nmos]/[pmos] field labels of [t] take
   precedence for record access throughout the codebase. *)
type perturbation = {
  nmos : Model_card.perturbation;
  pmos : Model_card.perturbation;
  rsh_factor : float;
  cap_factor : float;
}

type t = {
  name : string;
  lmin : float;
  wmin : float;
  wmax : float;
  vdd : float;
  vss : float;
  nmos : Model_card.t;
  pmos : Model_card.t;
  rsh_poly : float;
  cap_density : float;
}

let c12 =
  {
    name = "c12";
    lmin = 1.2e-6;
    wmin = 1.8e-6;
    wmax = 2000e-6;
    vdd = 5.0;
    vss = 0.0;
    nmos = Model_card.default_nmos;
    pmos = Model_card.default_pmos;
    rsh_poly = 25.;
    cap_density = 0.5e-3;
  }

let c08 =
  let scale_card (card : Model_card.t) kp_scale =
    {
      card with
      Model_card.kp = card.Model_card.kp *. kp_scale;
      tox = 16e-9;
      u0 =
        card.Model_card.kp *. kp_scale /. (Ape_util.Units.eps_ox /. 16e-9);
      lref = 1.6e-6;
      lambda = card.Model_card.lambda *. 1.2;
      ld = 0.1e-6;
    }
  in
  {
    name = "c08";
    lmin = 0.8e-6;
    wmin = 1.2e-6;
    wmax = 2000e-6;
    vdd = 5.0;
    vss = 0.0;
    nmos =
      { (scale_card Model_card.default_nmos 1.5) with
        Model_card.name = "CMOSN08";
        vto = 0.70
      };
    pmos =
      { (scale_card Model_card.default_pmos 1.5) with
        Model_card.name = "CMOSP08";
        vto = -0.80
      };
    rsh_poly = 22.;
    cap_density = 0.8e-3;
  }

let card t = function
  | Model_card.Nmos -> t.nmos
  | Model_card.Pmos -> t.pmos

let with_model_level level t =
  {
    t with
    nmos = Model_card.with_level level t.nmos;
    pmos = Model_card.with_level level t.pmos;
  }

type corner = Typical | Slow | Fast

let corner_name = function
  | Typical -> "typical"
  | Slow -> "slow"
  | Fast -> "fast"

let corner c t =
  match c with
  | Typical -> t
  | Slow | Fast ->
    let kp_scale, vto_shift =
      match c with Slow -> (0.85, 0.1) | Fast | Typical -> (1.15, -0.1)
    in
    let shift (card : Model_card.t) =
      let sign = Model_card.polarity card in
      {
        card with
        Model_card.kp = card.Model_card.kp *. kp_scale;
        u0 = card.Model_card.u0 *. kp_scale;
        vto = card.Model_card.vto +. (sign *. vto_shift);
      }
    in
    { t with nmos = shift t.nmos; pmos = shift t.pmos }

let no_perturbation =
  {
    nmos = Model_card.no_perturbation;
    pmos = Model_card.no_perturbation;
    rsh_factor = 1.;
    cap_factor = 1.;
  }

let perturb (p : perturbation) t =
  {
    t with
    nmos = Model_card.perturb p.nmos t.nmos;
    pmos = Model_card.perturb p.pmos t.pmos;
    rsh_poly = t.rsh_poly *. p.rsh_factor;
    cap_density = t.cap_density *. p.cap_factor;
  }

(* Serpentine of 2 µm-wide poly: squares = R / Rsh, each square 2x2 µm,
   plus 30 % routing overhead. *)
let resistor_area t r =
  if r < 0. then invalid_arg "Process.resistor_area: negative";
  let squares = r /. t.rsh_poly in
  squares *. (2e-6 *. 2e-6) *. 1.3

let capacitor_area t c =
  if c < 0. then invalid_arg "Process.capacitor_area: negative";
  c /. t.cap_density

let pp fmt t =
  Format.fprintf fmt
    "process %s: Lmin=%s Wmin=%s VDD=%g V@.  nmos: %a@.  pmos: %a" t.name
    (Ape_util.Units.to_eng t.lmin)
    (Ape_util.Units.to_eng t.wmin)
    t.vdd Model_card.pp t.nmos Model_card.pp t.pmos
