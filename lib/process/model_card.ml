type mos_type = Nmos | Pmos
type level = Level1 | Level2 | Level3 | Bsim1

type t = {
  name : string;
  mos_type : mos_type;
  level : level;
  vto : float;
  kp : float;
  gamma : float;
  phi : float;
  lambda : float;
  lref : float;
  tox : float;
  u0 : float;
  theta : float;
  vmax : float;
  eta : float;
  cgso : float;
  cgdo : float;
  cgbo : float;
  cj : float;
  mj : float;
  cjsw : float;
  mjsw : float;
  pb : float;
  ld : float;
  is_leak : float;
  kf : float;
  af : float;
  avt : float;
}

let cox card = Ape_util.Units.eps_ox /. card.tox
let polarity card = match card.mos_type with Nmos -> 1. | Pmos -> -1.

let lambda_at card l =
  if l <= 0. then invalid_arg "Model_card.lambda_at: l <= 0";
  card.lambda *. card.lref /. l

let vth card ~vsb =
  let phi = card.phi in
  (* Clamp forward body bias so sqrt stays real during Newton steps. *)
  let arg = Float.max 1e-3 (phi +. vsb) in
  Float.abs card.vto +. (card.gamma *. (Float.sqrt arg -. Float.sqrt phi))

(* 1.2 µm-class CMOS, MOSIS-era values; tox 25 nm gives
   Cox = 1.38 mF/m², u0 chosen so KP = u0 * Cox. *)
let default_nmos =
  {
    name = "CMOSN12";
    mos_type = Nmos;
    level = Level1;
    vto = 0.75;
    kp = 75e-6;
    gamma = 0.40;
    phi = 0.60;
    lambda = 0.05;
    lref = 2.4e-6;
    tox = 25e-9;
    u0 = 75e-6 /. (Ape_util.Units.eps_ox /. 25e-9);
    theta = 0.08;
    vmax = 1.5e5;
    eta = 0.01;
    cgso = 3.0e-10;
    cgdo = 3.0e-10;
    cgbo = 4.0e-10;
    cj = 3.0e-4;
    mj = 0.5;
    cjsw = 3.0e-10;
    mjsw = 0.33;
    pb = 0.8;
    ld = 0.15e-6;
    is_leak = 1e-14;
    kf = 3e-24;
    af = 1.0;
    avt = 15e-9;
  }

let default_pmos =
  {
    default_nmos with
    name = "CMOSP12";
    mos_type = Pmos;
    vto = -0.85;
    kp = 25e-6;
    gamma = 0.50;
    lambda = 0.06;
    u0 = 25e-6 /. (Ape_util.Units.eps_ox /. 25e-9);
    theta = 0.10;
    vmax = 1.0e5;
    cj = 4.5e-4;
    kf = 1e-24;
    avt = 20e-9;
  }

let with_level level card = { card with level }

type perturbation = {
  kp_factor : float;
  vto_shift : float;
  tox_factor : float;
  gamma_factor : float;
  lambda_factor : float;
}

let no_perturbation =
  {
    kp_factor = 1.;
    vto_shift = 0.;
    tox_factor = 1.;
    gamma_factor = 1.;
    lambda_factor = 1.;
  }

(* KP, tox and u0 are kept mutually consistent (KP = u0 * Cox, Cox =
   eps_ox / tox): the sampled KP factor is the net current-factor
   variation, tox moves the capacitances, and u0 absorbs the difference
   so the level-1 equations and the simulation view agree on KP. *)
let perturb p card =
  let sign = polarity card in
  let tox = card.tox *. p.tox_factor in
  let kp = card.kp *. p.kp_factor in
  {
    card with
    kp;
    tox;
    u0 = kp /. (Ape_util.Units.eps_ox /. tox);
    vto = card.vto +. (sign *. p.vto_shift);
    gamma = card.gamma *. p.gamma_factor;
    lambda = card.lambda *. p.lambda_factor;
  }

let level_to_int = function
  | Level1 -> 1
  | Level2 -> 2
  | Level3 -> 3
  | Bsim1 -> 4

let to_spice card =
  (* Exact decimals so a printed card re-parses to the identical record
     (the netlist round-trip tests rely on it). *)
  let x = Ape_util.Units.to_exact in
  Printf.sprintf
    ".MODEL %s %s (LEVEL=%d VTO=%s KP=%s GAMMA=%s PHI=%s LAMBDA=%s TOX=%s \
     U0=%s THETA=%s VMAX=%s ETA=%s CGSO=%s CGDO=%s CGBO=%s CJ=%s MJ=%s \
     CJSW=%s MJSW=%s PB=%s LD=%s IS=%s LREF=%s KF=%s AF=%s AVT=%s)"
    card.name
    (match card.mos_type with Nmos -> "NMOS" | Pmos -> "PMOS")
    (level_to_int card.level) (x card.vto) (x card.kp) (x card.gamma)
    (x card.phi) (x card.lambda) (x card.tox) (x card.u0) (x card.theta)
    (x card.vmax) (x card.eta) (x card.cgso) (x card.cgdo) (x card.cgbo)
    (x card.cj) (x card.mj) (x card.cjsw) (x card.mjsw) (x card.pb) (x card.ld)
    (x card.is_leak) (x card.lref) (x card.kf) (x card.af) (x card.avt)

let pp fmt card = Format.pp_print_string fmt (to_spice card)
