(** Parser for SPICE [.MODEL] cards.

    Accepts the classic format
    [.MODEL <name> NMOS|PMOS (KEY=value KEY=value ...)], case-insensitive
    keys, SPICE magnitude suffixes on values, continuation lines starting
    with [+], and [*] comments.  Unknown keys are ignored (SPICE decks
    carry many parameters the Level-1..3 equations never read); missing
    keys fall back to the built-in defaults of the polarity. *)

exception Bad_card of string

val join_lines : string -> string
(** Strip [*]-comment lines, trailing [$]/[;] comments (recognised only
    at a token boundary, so names containing [$] survive) and join
    [+]-continuation lines.  A [+] line with no preceding card raises
    {!Bad_card} instead of being silently promoted to a card of its
    own. *)

val parse_card : string -> Model_card.t
(** Parse a single (possibly multi-line) [.MODEL] card.  Raises
    {!Bad_card}. *)

val parse_deck : string -> Model_card.t list
(** Parse every [.MODEL] card in a deck, ignoring other lines. *)

val process_of_deck :
  ?name:string -> ?base:Process.t -> string -> Process.t
(** Build a process from a deck containing one NMOS and one PMOS card;
    remaining process constants come from [base] (default {!Process.c12}).
    Raises {!Bad_card} when a polarity is missing. *)
