exception Bad_card of string

(* Trailing '$'/';' comments start a comment only at a token boundary
   (start of line or after whitespace): "R$2 a b 1k$ load" keeps the
   name "R$2" and drops " load". *)
let strip_inline line =
  let n = String.length line in
  let rec find i =
    if i >= n then n
    else if
      (line.[i] = '$' || line.[i] = ';')
      && (i = 0 || line.[i - 1] = ' ' || line.[i - 1] = '\t')
    then i
    else find (i + 1)
  in
  String.sub line 0 (find 0)

let strip_comments text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         let trimmed = String.trim line in
         not (String.length trimmed > 0 && trimmed.[0] = '*'))
  |> List.map strip_inline
  |> String.concat "\n"

(* Join SPICE continuation lines ('+' in column 1) into their parent. *)
let join_continuations text =
  let lines = String.split_on_char '\n' text in
  let rec loop acc = function
    | [] -> List.rev acc
    | line :: rest ->
      let trimmed = String.trim line in
      if String.length trimmed > 0 && trimmed.[0] = '+' then begin
        match acc with
        | prev :: acc' when String.trim prev <> "" ->
          let joined =
            prev ^ " " ^ String.sub trimmed 1 (String.length trimmed - 1)
          in
          loop (joined :: acc') rest
        | _ -> raise (Bad_card "continuation line with no preceding card")
      end
      else loop (line :: acc) rest
  in
  String.concat "\n" (loop [] lines)

let join_lines text = join_continuations (strip_comments text)

let tokenize_card body =
  (* Split "KEY=VAL KEY = VAL ..." into pairs, tolerating spaces around
     '='. *)
  let body =
    String.map (fun c -> if c = '(' || c = ')' || c = ',' then ' ' else c) body
  in
  (* "K = V" / "K =V" / "K= V" -> "K=V" *)
  let body =
    Ape_util.Strings.replace_fixpoint ~pattern:" =" ~with_:"=" body
  in
  let body =
    Ape_util.Strings.replace_fixpoint ~pattern:"= " ~with_:"=" body
  in
  String.split_on_char ' ' body
  |> List.filter (fun s -> String.length s > 0)
  |> List.filter_map (fun tok ->
         match String.index_opt tok '=' with
         | None -> None
         | Some i ->
           let key = String.uppercase_ascii (String.sub tok 0 i) in
           let value = String.sub tok (i + 1) (String.length tok - i - 1) in
           Some (key, value))

let float_value key value =
  match Ape_symbolic.Parser.parse_number value with
  | Some v -> v
  | None -> raise (Bad_card (Printf.sprintf "bad value for %s: %s" key value))

let apply_params (card : Model_card.t) params =
  List.fold_left
    (fun (card : Model_card.t) (key, value) ->
      let v () = float_value key value in
      match key with
      | "LEVEL" ->
        let level =
          match int_of_float (v ()) with
          | 1 -> Model_card.Level1
          | 2 -> Model_card.Level2
          | 3 -> Model_card.Level3
          | 4 | 13 -> Model_card.Bsim1
          | n -> raise (Bad_card (Printf.sprintf "unsupported LEVEL=%d" n))
        in
        { card with Model_card.level }
      | "VTO" | "VTH0" -> { card with Model_card.vto = v () }
      | "KP" -> { card with Model_card.kp = v () }
      | "GAMMA" -> { card with Model_card.gamma = v () }
      | "PHI" -> { card with Model_card.phi = v () }
      | "LAMBDA" -> { card with Model_card.lambda = v () }
      | "LREF" -> { card with Model_card.lref = v () }
      | "TOX" -> { card with Model_card.tox = v () }
      | "U0" | "UO" ->
        (* SPICE U0 is in cm²/Vs; accept SI if the magnitude is tiny. *)
        let raw = v () in
        let u0 = if raw > 1. then raw *. 1e-4 else raw in
        { card with Model_card.u0 = u0 }
      | "THETA" -> { card with Model_card.theta = v () }
      | "VMAX" -> { card with Model_card.vmax = v () }
      | "ETA" -> { card with Model_card.eta = v () }
      | "CGSO" -> { card with Model_card.cgso = v () }
      | "CGDO" -> { card with Model_card.cgdo = v () }
      | "CGBO" -> { card with Model_card.cgbo = v () }
      | "CJ" -> { card with Model_card.cj = v () }
      | "MJ" -> { card with Model_card.mj = v () }
      | "CJSW" -> { card with Model_card.cjsw = v () }
      | "MJSW" -> { card with Model_card.mjsw = v () }
      | "PB" -> { card with Model_card.pb = v () }
      | "LD" -> { card with Model_card.ld = v () }
      | "IS" -> { card with Model_card.is_leak = v () }
      | "KF" -> { card with Model_card.kf = v () }
      | "AF" -> { card with Model_card.af = v () }
      | "AVT" -> { card with Model_card.avt = v () }
      | _ -> card (* unknown keys are legal in real decks; skip *))
    card params

let parse_card text =
  let text = join_continuations (strip_comments text) in
  let text = String.trim text in
  let upper = String.uppercase_ascii text in
  if not (String.length upper >= 6 && String.sub upper 0 6 = ".MODEL") then
    raise (Bad_card "card must start with .MODEL");
  let rest = String.trim (String.sub text 6 (String.length text - 6)) in
  (* name, type, then parameter body *)
  let split_word s =
    match String.index_opt s ' ' with
    | None -> (s, "")
    | Some i ->
      ( String.sub s 0 i,
        String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let name, rest = split_word rest in
  let type_word, body = split_word rest in
  let mos_type =
    match String.uppercase_ascii type_word with
    | "NMOS" -> Model_card.Nmos
    | "PMOS" -> Model_card.Pmos
    | other -> raise (Bad_card ("unsupported device type " ^ other))
  in
  let base =
    match mos_type with
    | Model_card.Nmos -> Model_card.default_nmos
    | Model_card.Pmos -> Model_card.default_pmos
  in
  let card = apply_params { base with Model_card.name; mos_type } (tokenize_card body) in
  (* Keep u0 and kp consistent: KP wins if both were given. *)
  let kp_given = List.exists (fun (k, _) -> k = "KP") (tokenize_card body) in
  let u0_given =
    List.exists (fun (k, _) -> k = "U0" || k = "UO") (tokenize_card body)
  in
  let cox = Model_card.cox card in
  if kp_given then { card with Model_card.u0 = card.Model_card.kp /. cox }
  else if u0_given then
    { card with Model_card.kp = card.Model_card.u0 *. cox }
  else card

let parse_deck text =
  let text = join_continuations (strip_comments text) in
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let trimmed = String.trim line in
         let upper = String.uppercase_ascii trimmed in
         if String.length upper >= 6 && String.sub upper 0 6 = ".MODEL" then
           Some (parse_card trimmed)
         else None)

let process_of_deck ?name ?(base = Process.c12) text =
  let cards = parse_deck text in
  let find mt =
    match
      List.find_opt (fun c -> c.Model_card.mos_type = mt) cards
    with
    | Some c -> c
    | None ->
      raise
        (Bad_card
           (match mt with
           | Model_card.Nmos -> "deck has no NMOS card"
           | Model_card.Pmos -> "deck has no PMOS card"))
  in
  {
    base with
    Process.name = (match name with Some n -> n | None -> base.Process.name);
    nmos = find Model_card.Nmos;
    pmos = find Model_card.Pmos;
  }
