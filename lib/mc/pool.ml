(* The deterministic domain pool now lives in Ape_util.Pool so that
   other subsystems (the AC sweep's parallel frequency grids, bench
   harnesses) can use it without depending on lib/mc; this module keeps
   the historical [Ape_mc.Pool] address working. *)
include Ape_util.Pool
