module Rng = Ape_util.Rng
module Card = Ape_process.Model_card
module Process = Ape_process.Process

type sigmas = {
  s_kp : float;
  s_vto : float;
  s_tox : float;
  s_gamma : float;
  s_lambda : float;
  s_rsh : float;
  s_cap : float;
}

(* 3σ of every parameter sits inside the deterministic Slow/Fast corner
   (KP ±15 %, VTO ±0.1 V — Process.corner), which the corner-bracketing
   test in test/test_mc.ml relies on. *)
let default =
  {
    s_kp = 0.04;
    s_vto = 0.02;
    s_tox = 0.015;
    s_gamma = 0.03;
    s_lambda = 0.05;
    s_rsh = 0.08;
    s_cap = 0.05;
  }

let scale k s =
  if k < 0. then invalid_arg "Variation.scale: negative";
  {
    s_kp = k *. s.s_kp;
    s_vto = k *. s.s_vto;
    s_tox = k *. s.s_tox;
    s_gamma = k *. s.s_gamma;
    s_lambda = k *. s.s_lambda;
    s_rsh = k *. s.s_rsh;
    s_cap = k *. s.s_cap;
  }

(* Multiplicative factors are (1 + σ·z) clamped away from zero; with the
   default σ ≤ 8 % the clamp is ~6σ out and statistically invisible, but
   it keeps a user-scaled distribution from producing nonphysical
   negative KP/tox. *)
let factor rng sigma =
  Float.max 0.05 (1. +. Rng.gauss rng ~mean:0. ~sigma)

let sample_card rng ~tox_factor s : Card.perturbation =
  let kp_factor = factor rng s.s_kp in
  let vto_shift = Rng.gauss rng ~mean:0. ~sigma:s.s_vto in
  let gamma_factor = factor rng s.s_gamma in
  let lambda_factor = factor rng s.s_lambda in
  { kp_factor; vto_shift; tox_factor; gamma_factor; lambda_factor }

let sample rng s : Process.perturbation =
  (* One gate-oxide run serves both polarities, so the tox factor is
     shared; KP/VTO/γ/λ extraction varies per polarity.  The draw order
     below is part of the deterministic contract: reordering changes
     every downstream statistic. *)
  let tox_factor = factor rng s.s_tox in
  let nmos = sample_card rng ~tox_factor s in
  let pmos = sample_card rng ~tox_factor s in
  let rsh_factor = factor rng s.s_rsh in
  let cap_factor = factor rng s.s_cap in
  { Process.nmos; pmos; rsh_factor; cap_factor }

let perturb rng s process = Process.perturb (sample rng s) process

let sigma_delta_vto (card : Card.t) ~w ~l =
  if w <= 0. || l <= 0. then invalid_arg "Variation.sigma_delta_vto: W,L <= 0";
  card.Card.avt /. Float.sqrt (w *. l)

let mismatch_vto rng (card : Card.t) ~w ~l =
  Rng.gauss rng ~mean:0. ~sigma:(sigma_delta_vto card ~w ~l)
