module Table = Ape_util.Table

let eng = Ape_util.Units.to_eng
let pct x = Printf.sprintf "%.1f %%" (100. *. x)

let summary (r : Run.report) =
  let b = Buffer.create 256 in
  let cfg = r.Run.config in
  Buffer.add_string b
    (Printf.sprintf "Monte Carlo: %d samples, %d job%s, seed %d, %.2f s (%s samples/s)\n"
       cfg.Run.samples cfg.Run.jobs
       (if cfg.Run.jobs = 1 then "" else "s")
       cfg.Run.seed r.Run.seconds
       (eng (float_of_int cfg.Run.samples /. Float.max 1e-9 r.Run.seconds)));
  if r.Run.failures > 0 then
    Buffer.add_string b
      (Printf.sprintf "failures: %d%s\n" r.Run.failures
         (match r.Run.failure_example with
         | Some (i, msg) -> Printf.sprintf " (first: sample %d, %s)" i msg
         | None -> ""));
  if r.Run.check_pass <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "yield: %s (%d/%d pass every check)\n" (pct r.Run.yield)
         r.Run.pass cfg.Run.samples);
    List.iter
      (fun (c, n) ->
        Buffer.add_string b
          (Printf.sprintf "  %-28s %s\n"
             (Format.asprintf "%a" Run.pp_check c)
             (pct (float_of_int n /. float_of_int cfg.Run.samples))))
      r.Run.check_pass
  end;
  Buffer.contents b

let metric_table (r : Run.report) =
  let row (m : Run.metric_summary) =
    let s = m.Run.m_stats in
    let q p = eng (Stats.quantile s p) in
    [
      m.Run.m_name;
      eng (Stats.mean s);
      eng (Stats.std s);
      eng (Stats.min_value s);
      q 0.05;
      q 0.5;
      q 0.95;
      eng (Stats.max_value s);
    ]
  in
  Table.render
    ~header:[ "metric"; "mean"; "std"; "min"; "q05"; "q50"; "q95"; "max" ]
    (List.map row r.Run.metrics)

let histogram ?(bins = 10) ?(width = 40) (r : Run.report) name =
  match Run.metric r name with
  | None -> Printf.sprintf "%s: no samples\n" name
  | Some m ->
    let h = Stats.histogram ~bins m.Run.m_stats in
    let peak =
      Array.fold_left (fun acc b -> Int.max acc b.Stats.b_count) 1 h
    in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%s  (worst low: sample %d at %s; worst high: sample %d at %s)\n"
         name m.Run.m_min.Run.sample
         (eng m.Run.m_min.Run.value)
         m.Run.m_max.Run.sample
         (eng m.Run.m_max.Run.value));
    Array.iter
      (fun bin ->
        let bar = bin.Stats.b_count * width / peak in
        Buffer.add_string b
          (Printf.sprintf "  %10s .. %-10s |%-*s %d\n"
             (eng bin.Stats.b_lo) (eng bin.Stats.b_hi) width
             (String.make bar '#') bin.Stats.b_count))
      h;
    Buffer.contents b

let to_string ?bins ?(histograms = []) (r : Run.report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b (summary r);
  if r.Run.metrics <> [] then Buffer.add_string b (metric_table r);
  List.iter
    (fun name ->
      Buffer.add_char b '\n';
      Buffer.add_string b (histogram ?bins r name))
    histograms;
  Buffer.contents b

let pp fmt r = Format.pp_print_string fmt (to_string r)
