(** Ready-made Monte Carlo measurement closures for the opamp workload,
    shared by [ape mc], the bench harness and the tests.

    Two fidelity levels, mirroring the estimate/simulate columns of the
    paper's Table 3:

    - {!Estimate} re-runs the full APE sizing + closed-form estimation
      on each perturbed process — "how robust are APE's estimates and
      design points to inter-die variation" (microseconds per sample;
      the bench throughput workload).
    - {!Simulate} sizes the opamp {e once} on the nominal process, then
      re-measures that fixed design on each perturbed die with the
      MNA/Newton SPICE substitute — true yield of a committed design
      (milliseconds per sample).

    Both append a Pelgrom input-pair offset sample ([offset], V) drawn
    from the input devices' A_VT/√(WL).  Samples where sizing is
    infeasible or DC fails to converge raise, which {!Run.run} records
    as failed dies. *)

type level = Estimate | Simulate

val level_name : level -> string

val opamp :
  ?sigmas:Variation.sigmas ->
  level:level ->
  Ape_process.Process.t ->
  Ape_estimator.Opamp.spec ->
  (Ape_util.Rng.t -> int -> (string * float) list) * Run.check list
(** The measurement closure plus the default spec checks:
    [gain >= spec.av] at both levels, [ugf >= spec.ugf] at the simulate
    level only — at the estimate level APE re-closes the UGF to spec on
    every die by construction, so a UGF check there would measure the
    sizing equations' systematic skew rather than variation.  Metrics:
    [gain] (magnitude), [ugf] (Hz), [power] (W), [area] (m², estimate
    level only), [phase_margin] (deg, estimate level only), [offset]
    (V). *)

val sim_testbench :
  Ape_process.Process.t -> Ape_estimator.Opamp.design -> Ape_circuit.Netlist.t
(** The simulate-level testbench (supply + differential drive at the
    design's input common mode + load cap), exposed for the bench. *)
