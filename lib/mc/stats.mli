(** Streaming summary statistics for one Monte Carlo metric.

    Mean and variance are maintained by Welford's single-pass update
    (numerically stable even when σ ≪ |µ|, the usual situation for
    e.g. a 5 V supply with millivolt variation); the raw samples are
    also retained so exact quantiles and histograms are available after
    the run.  Accumulators are mutable and single-owner: the MC runner
    aggregates worker results sequentially in sample order, which is
    what makes statistics independent of the worker count. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (n−1); [nan] when fewer than 2 samples. *)

val std : t -> float

val min_value : t -> float
val max_value : t -> float

val values : t -> float array
(** The raw samples in insertion order (a copy). *)

val quantile : t -> float -> float
(** [quantile t q] for q in [[0,1]], linearly interpolated between order
    statistics (type-7); [nan] when empty. *)

val quantiles : t -> float list -> (float * float) list
(** Sorts once and evaluates each requested quantile. *)

type bin = { b_lo : float; b_hi : float; b_count : int }

val histogram : ?bins:int -> t -> bin array
(** Equal-width bins over [[min, max]]; empty array when no samples.
    All-identical samples land in bin 0. *)
