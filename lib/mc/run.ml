module Rng = Ape_util.Rng

let c_runs = Ape_obs.counter "mc.runs"
let c_samples = Ape_obs.counter "mc.samples"
let c_sample_failures = Ape_obs.counter "mc.sample_failures"
let h_sample_seconds = Ape_obs.histogram "mc.sample_seconds"

type check = { metric : string; lower : float option; upper : float option }

let at_least metric bound = { metric; lower = Some bound; upper = None }
let at_most metric bound = { metric; lower = None; upper = Some bound }

let check_passes c value =
  (match c.lower with None -> true | Some b -> value >= b)
  && (match c.upper with None -> true | Some b -> value <= b)

let pp_check fmt c =
  let eng = Ape_util.Units.to_eng in
  match (c.lower, c.upper) with
  | Some lo, Some hi ->
    Format.fprintf fmt "%s in [%s, %s]" c.metric (eng lo) (eng hi)
  | Some lo, None -> Format.fprintf fmt "%s >= %s" c.metric (eng lo)
  | None, Some hi -> Format.fprintf fmt "%s <= %s" c.metric (eng hi)
  | None, None -> Format.fprintf fmt "%s (always)" c.metric

type config = { samples : int; jobs : int; seed : int }

type extreme = { sample : int; value : float }

type metric_summary = {
  m_name : string;
  m_stats : Stats.t;
  m_min : extreme;
  m_max : extreme;
}

type report = {
  config : config;
  failures : int;
  failure_example : (int * string) option;
  metrics : metric_summary list;
  check_pass : (check * int) list;
  pass : int;
  yield : float;
  seconds : float;
}

let metric report name =
  List.find_opt (fun m -> String.equal m.m_name name) report.metrics

let run ?(checks = []) config ~measure =
  if config.samples <= 0 then invalid_arg "Run.run: samples <= 0";
  Ape_obs.span "mc.run" @@ fun () ->
  Ape_obs.incr c_runs;
  Ape_obs.add c_samples config.samples;
  let t0 = Unix.gettimeofday () in
  (* One child stream per sample, keyed by index: the sample outcome is a
     pure function of (seed, index), never of jobs or scheduling. *)
  let streams = Rng.split_n (Rng.create config.seed) config.samples in
  let outcomes =
    Pool.map ~jobs:config.jobs config.samples (fun i ->
        (* Per-scenario throughput: each sample's wall time lands in the
           worker's own sink; Pool merges them at the join. *)
        Ape_obs.time h_sample_seconds (fun () ->
            match measure streams.(i) i with
            | metrics -> Ok metrics
            | exception e ->
              Ape_obs.incr c_sample_failures;
              Error (Printexc.to_string e)))
  in
  (* Sequential aggregation in sample order keeps every statistic
     bit-identical across jobs values. *)
  let order = ref [] in
  let table : (string, metric_summary) Hashtbl.t = Hashtbl.create 8 in
  let observe i name value =
    match Hashtbl.find_opt table name with
    | None ->
      let s = Stats.create () in
      Stats.add s value;
      let e = { sample = i; value } in
      Hashtbl.add table name { m_name = name; m_stats = s; m_min = e; m_max = e };
      order := name :: !order
    | Some m ->
      Stats.add m.m_stats value;
      let m =
        if value < m.m_min.value then { m with m_min = { sample = i; value } }
        else m
      in
      let m =
        if value > m.m_max.value then { m with m_max = { sample = i; value } }
        else m
      in
      Hashtbl.replace table name m
  in
  let failures = ref 0 in
  let failure_example = ref None in
  let pass = ref 0 in
  let check_pass = Array.make (List.length checks) 0 in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Error msg ->
        incr failures;
        if !failure_example = None then failure_example := Some (i, msg)
      | Ok metrics ->
        List.iter (fun (name, value) -> observe i name value) metrics;
        let all_ok = ref true in
        List.iteri
          (fun k c ->
            let ok =
              match List.assoc_opt c.metric metrics with
              | None -> false
              | Some v -> check_passes c v
            in
            if ok then check_pass.(k) <- check_pass.(k) + 1
            else all_ok := false)
          checks;
        if !all_ok then incr pass)
    outcomes;
  {
    config;
    failures = !failures;
    failure_example = !failure_example;
    metrics =
      List.rev_map (fun name -> Hashtbl.find table name) !order;
    check_pass = List.mapi (fun k c -> (c, check_pass.(k))) checks;
    pass = !pass;
    yield = float_of_int !pass /. float_of_int config.samples;
    seconds = Unix.gettimeofday () -. t0;
  }
