(** Deterministic parallel map over OCaml 5 domains.

    Re-export of {!Ape_util.Pool} (the implementation moved to lib/util
    so the SPICE layer can parallelise frequency grids with the same
    deterministic chunking); see that module for the full contract.
    Statistics aggregated from [map] are identical for every [jobs]
    value. *)

val map : jobs:int -> int -> (int -> 'a) -> 'a array

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-appropriate cap
    for [~jobs]. *)
