(** Deterministic parallel execution over OCaml 5 domains.

    Re-export of {!Ape_util.Pool} (the implementation moved to lib/util
    so the SPICE layer can parallelise frequency grids with the same
    deterministic chunking); see that module for the full contract.
    The historical [Ape_mc.Pool] address keeps working, and — unlike the
    first re-export, which only surfaced [map] — the whole persistent
    pool API is visible here too, so Monte Carlo callers can hold a
    long-lived pool across submission rounds.  Statistics aggregated
    from [map] are identical for every [jobs] value. *)

exception Cancelled
(** Raised by {!await} for tasks discarded by
    [shutdown ~cancel_pending:true] before a worker picked them up. *)

type t = Ape_util.Pool.t
(** A persistent worker pool. *)

type 'a task = 'a Ape_util.Pool.task
(** The join handle for one submitted thunk. *)

val create : workers:int -> t
val size : t -> int
val submit : t -> (unit -> 'a) -> 'a task
val await : 'a task -> 'a

val shutdown : ?cancel_pending:bool -> t -> unit
(** Idempotent — see {!Ape_util.Pool.shutdown}. *)

val with_pool : workers:int -> (t -> 'a) -> 'a

val map : jobs:int -> int -> (int -> 'a) -> 'a array

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware-appropriate cap
    for [~jobs]. *)
