type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable data : float array;  (* capacity >= n; retained for quantiles *)
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity;
    data = [||] }

let add t x =
  if t.n = Array.length t.data then begin
    let cap = Int.max 16 (2 * Array.length t.data) in
    let grown = Array.make cap 0. in
    Array.blit t.data 0 grown 0 t.n;
    t.data <- grown
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  (* Welford's update: numerically stable single pass. *)
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean

let variance t =
  if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let std t = Float.sqrt (variance t)
let min_value t = if t.n = 0 then nan else t.lo
let max_value t = if t.n = 0 then nan else t.hi
let values t = Array.sub t.data 0 t.n

let sorted t =
  let v = values t in
  Array.sort Float.compare v;
  v

let quantile_of_sorted v q =
  let n = Array.length v in
  if n = 0 then nan
  else if q <= 0. then v.(0)
  else if q >= 1. then v.(n - 1)
  else begin
    (* Linear interpolation between order statistics (type-7, the R and
       NumPy default). *)
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. Float.floor pos in
    if i + 1 >= n then v.(n - 1)
    else v.(i) +. (frac *. (v.(i + 1) -. v.(i)))
  end

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q outside [0,1]";
  quantile_of_sorted (sorted t) q

let quantiles t qs =
  List.iter
    (fun q ->
      if q < 0. || q > 1. then invalid_arg "Stats.quantiles: q outside [0,1]")
    qs;
  let v = sorted t in
  List.map (fun q -> (q, quantile_of_sorted v q)) qs

type bin = { b_lo : float; b_hi : float; b_count : int }

let histogram ?(bins = 10) t =
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  if t.n = 0 then [||]
  else begin
    let lo = t.lo and hi = t.hi in
    let width = (hi -. lo) /. float_of_int bins in
    let counts = Array.make bins 0 in
    if width <= 0. then counts.(0) <- t.n  (* all samples identical *)
    else
      for i = 0 to t.n - 1 do
        let b = int_of_float ((t.data.(i) -. lo) /. width) in
        let b = Int.min (bins - 1) (Int.max 0 b) in
        counts.(b) <- counts.(b) + 1
      done;
    Array.init bins (fun b ->
        {
          b_lo = lo +. (float_of_int b *. width);
          b_hi = (if b = bins - 1 then hi else lo +. (float_of_int (b + 1) *. width));
          b_count = counts.(b);
        })
  end
