(** The statistical variation model: global (inter-die) parameter
    spread plus Pelgrom-style per-device mismatch.

    Global variation samples a {!Ape_process.Process.perturbation} —
    Gaussian multiplicative factors on KP/tox/γ/λ/Rsh/C-density and an
    additive threshold shift — with the gate-oxide factor shared between
    NMOS and PMOS (one oxide run) and everything else drawn per
    polarity.  The {!default} σ values are chosen so the deterministic
    Slow/Fast corners of {!Ape_process.Process.corner} bracket ±3σ of
    every sampled parameter.

    Per-device mismatch follows Pelgrom's law: between two identically
    drawn devices, σ(ΔV_T) = A_VT / √(W·L) with [A_VT] taken from the
    model card's [avt] field. *)

type sigmas = {
  s_kp : float;  (** relative σ of KP *)
  s_vto : float;  (** absolute σ of the threshold magnitude, V *)
  s_tox : float;  (** relative σ of tox (shared NMOS/PMOS) *)
  s_gamma : float;  (** relative σ of γ *)
  s_lambda : float;  (** relative σ of λ *)
  s_rsh : float;  (** relative σ of the poly sheet resistance *)
  s_cap : float;  (** relative σ of the capacitor density *)
}

val default : sigmas
(** A mid-90s mixed-signal CMOS spread: KP 4 %, VTO 20 mV, tox 1.5 %,
    γ 3 %, λ 5 %, Rsh 8 %, C 5 % — all 1σ. *)

val scale : float -> sigmas -> sigmas
(** Scale every σ by a common factor (0 disables global variation). *)

val sample : Ape_util.Rng.t -> sigmas -> Ape_process.Process.perturbation
(** Draw one inter-die deviation.  The draw order is fixed and part of
    the deterministic contract. *)

val perturb :
  Ape_util.Rng.t -> sigmas -> Ape_process.Process.t -> Ape_process.Process.t
(** [Process.perturb (sample rng s)]. *)

val sigma_delta_vto : Ape_process.Model_card.t -> w:float -> l:float -> float
(** Pelgrom mismatch σ(ΔV_T) between two matched W×L devices, V. *)

val mismatch_vto :
  Ape_util.Rng.t -> Ape_process.Model_card.t -> w:float -> l:float -> float
(** One sampled ΔV_T between a matched pair, V. *)
