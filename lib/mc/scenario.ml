module E = Ape_estimator
module Mos = Ape_device.Mos
module Netlist = Ape_circuit.Netlist
module Process = Ape_process.Process

type level = Estimate | Simulate

let level_name = function Estimate -> "estimate" | Simulate -> "simulate"

(* The input-pair mismatch draw happens at a fixed position in the
   sample's stream (after the global perturbation draws), keeping the
   metric list a pure function of (seed, index). *)
let offset_metric rng (d : E.Opamp.design) =
  let pair = d.E.Opamp.diff.E.Diff_pair.pair in
  let geom = pair.Mos.geom in
  Float.abs
    (Variation.mismatch_vto rng pair.Mos.card ~w:geom.Mos.w ~l:geom.Mos.l)

let estimate_measure sigmas process spec rng _i =
  let proc = Variation.perturb rng sigmas process in
  let d = E.Opamp.design proc spec in
  let p = d.E.Opamp.perf in
  let offset = offset_metric rng d in
  List.filter_map
    (fun (k, v) -> Option.map (fun v -> (k, v)) v)
    [
      ("gain", Option.map Float.abs p.E.Perf.gain);
      ("ugf", p.E.Perf.ugf);
      ("power", Some p.E.Perf.dc_power);
      ("area", Some p.E.Perf.gate_area);
      ("phase_margin", p.E.Perf.phase_margin);
      ("offset", Some offset);
    ]

(* A fixed nominal design measured on perturbed dies: the netlist is
   elaborated once and each sample only retargets the model cards. *)
let sim_testbench process (d : E.Opamp.design) =
  let frag = E.Opamp.fragment process d in
  let base = E.Fragment.with_supply ~vdd:process.Process.vdd frag in
  let vcm = d.E.Opamp.input_cm in
  Netlist.append base
    [
      Netlist.Vsource { name = "VINP"; p = "inp"; n = "0"; dc = vcm; ac = 0.5 };
      Netlist.Vsource { name = "VINN"; p = "inn"; n = "0"; dc = vcm; ac = -0.5 };
      Netlist.Capacitor
        { name = "CLMC"; a = "out"; b = "0"; c = d.E.Opamp.spec.E.Opamp.cl };
    ]

let simulate_measure sigmas process spec =
  let d = E.Opamp.design process spec in
  let base = sim_testbench process d in
  fun rng _i ->
    let proc = Variation.perturb rng sigmas process in
    let offset = offset_metric rng d in
    let nl = Netlist.retarget_process proc base in
    let op = Ape_spice.Dc.solve nl in
    (* One AC preparation per die serves both the gain and the UGF
       search. *)
    let prep = Ape_spice.Ac.prepare op in
    let gain = Float.abs (Ape_spice.Measure.Prepared.dc_gain ~out:"out" prep) in
    let ugf =
      Ape_spice.Measure.Prepared.unity_gain_frequency ~fmin:1e3 ~fmax:1e9
        ~out:"out" prep
    in
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> (k, v)) v)
      [
        ("gain", Some gain);
        ("ugf", ugf);
        ("power", Some (Ape_spice.Dc.static_power op ~supply:"VDD"));
        ("offset", Some offset);
      ]

(* At the estimate level APE re-sizes each die and *closes* the UGF back
   to spec (the UGF requirement fixes gm through the compensation cap),
   so a ">= spec" UGF check would only measure the sizing equations'
   systematic parasitic skew, not variation; UGF is reported as a
   distribution but checked only at the simulate level, where the design
   is frozen and the spec applies exactly. *)
let opamp_checks ~level (spec : E.Opamp.spec) =
  let gain = Run.at_least "gain" spec.E.Opamp.av in
  match level with
  | Estimate -> [ gain ]
  | Simulate -> [ gain; Run.at_least "ugf" spec.E.Opamp.ugf ]

let opamp ?(sigmas = Variation.default) ~level process spec =
  let measure =
    match level with
    | Estimate -> estimate_measure sigmas process spec
    | Simulate -> simulate_measure sigmas process spec
  in
  (measure, opamp_checks ~level spec)
