(** Plain-ASCII rendering of Monte Carlo reports, shared by the
    [ape mc] CLI, the bench harness and the tests. *)

val summary : Run.report -> string
(** Header (samples/jobs/seed/throughput), failure count, overall yield
    and per-check yields. *)

val metric_table : Run.report -> string
(** One row per metric: mean, std, min, q05/q50/q95, max
    (engineering-formatted). *)

val histogram : ?bins:int -> ?width:int -> Run.report -> string -> string
(** ASCII histogram of one metric, annotated with the worst-case low and
    high sample indices ("which die was the outlier").  [bins] defaults
    to 10, [width] to 40 columns. *)

val to_string : ?bins:int -> ?histograms:string list -> Run.report -> string
(** [summary] + [metric_table] + a histogram per requested metric. *)

val pp : Format.formatter -> Run.report -> unit
