(** Monte Carlo orchestration: sample → measure → classify → aggregate.

    [run config ~measure ~checks] evaluates [measure stream_i i] for
    each sample index, in parallel over {!Pool}, where [stream_i] is the
    sample's private RNG stream ({!Ape_util.Rng.split_n} keyed by
    index).  A sample is therefore a pure function of [(config.seed, i)]
    and the whole report is bit-identical for every [config.jobs] value
    — the determinism test in [test/test_mc.ml] holds the subsystem to
    exactly that.

    [measure] returns named metric values (e.g. [("gain", 212.4)]).  An
    exception inside [measure] marks that sample failed (a die that
    "doesn't work": DC non-convergence, infeasible sizing, ...); failed
    samples stay in the yield denominator but contribute to no metric
    distribution. *)

type check = { metric : string; lower : float option; upper : float option }
(** A spec-compliance predicate on one metric.  A sample passes the
    check when the metric is present and within bounds; a sample passes
    {e the spec} when it passes every check. *)

val at_least : string -> float -> check
val at_most : string -> float -> check
val check_passes : check -> float -> bool
val pp_check : Format.formatter -> check -> unit

type config = {
  samples : int;  (** number of Monte Carlo samples, > 0 *)
  jobs : int;  (** worker domains; <= 1 runs sequentially *)
  seed : int;  (** master seed; same seed → same report, any [jobs] *)
}

type extreme = { sample : int; value : float }

type metric_summary = {
  m_name : string;
  m_stats : Stats.t;
  m_min : extreme;  (** worst-case low sample — which die, what value *)
  m_max : extreme;  (** worst-case high sample *)
}

type report = {
  config : config;
  failures : int;  (** samples whose measurement raised *)
  failure_example : (int * string) option;
      (** first failing sample index and its exception text *)
  metrics : metric_summary list;  (** in order of first appearance *)
  check_pass : (check * int) list;  (** per-check pass counts *)
  pass : int;  (** samples passing every check *)
  yield : float;  (** [pass / samples] *)
  seconds : float;  (** wall-clock of the whole run *)
}

val metric : report -> string -> metric_summary option

val run :
  ?checks:check list ->
  config ->
  measure:(Ape_util.Rng.t -> int -> (string * float) list) ->
  report
