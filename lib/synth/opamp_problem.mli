(** Opamp synthesis problems — the Table 1 / Table 4 experiments.

    The formulation follows ASTRX/OBLX (paper §3): the topology is fixed,
    the transistor sizes (W and L of every matched group), the
    compensation capacitor, the bias resistor {e and the circuit's node
    voltages} are annealing unknowns; Kirchhoff's current law enters the
    cost as a penalty ("a cost function from the objectives,
    specifications, constraints and Kirchoff Laws"), and the small-signal
    performance of each candidate is evaluated by AWE at the relaxed bias
    point — exactly OBLX's trick for avoiding an inner DC solve.

    Two interval modes reproduce the paper's two experiments:
    - {!Wide}: no initial knowledge — geometry over the whole process
      range, node voltages anywhere in [0, VDD], random start (Table 1);
    - {!Ape_centered}: sizes within ±pct of the APE values and node
      voltages within ±0.25 V of the APE design's operating point,
      started at the APE point (Table 4, pct = 0.2).

    The final verdict always comes from a true Newton DC solve plus full
    AC measurements on the best candidate — the paper's "results after
    simulating the sized circuits". *)

type row = {
  name : string;
  gain : float;  (** required DC gain *)
  ugf : float;  (** required unity-gain frequency, Hz *)
  area : float;  (** gate-area budget, m² *)
  ibias : float;  (** bias reference current, A *)
  curr_src : Ape_estimator.Bias.mirror_topology;
  buffer : bool;
  zout : float option;
  cl : float;
}

val ape_design : Ape_process.Process.t -> row -> Ape_estimator.Opamp.design
(** The APE front-end pass for this row (UGF designed with a 35 %
    hand-off margin). *)

val strawman_design :
  Ape_process.Process.t -> row -> Ape_estimator.Opamp.design
(** Topology-only starting design for the standalone (Table 1) runs:
    sized for a neutral low-spec point so no requirement-specific APE
    knowledge leaks into the wide search. *)

type mode = Wide | Ape_centered of float

type problem = {
  row : row;
  mode : mode;
  dim : int;  (** sizes/passives + relaxed node voltages *)
  cost : float array -> float;
      (** KCL penalty + AWE-evaluated spec penalties at the relaxed
          point *)
  start : Ape_util.Rng.t -> float array;
  final : float array -> Ape_circuit.Netlist.t * Cost.measurement option;
      (** true DC solve + full measurements of a candidate's netlist *)
  values : float array -> (string * float) list;
      (** named size/passive values (for reporting) *)
  cost_model : Cost.t;  (** the specification part, for verdicts *)
  cache : Est_cache.t;
      (** the LRU memo behind [cost] — keyed on the quantized point, so
          re-visited sizings skip the relaxed estimation entirely *)
}

val build :
  ?cache:Est_cache.t ->
  ?cache_quantum:float ->
  ?cache_capacity:int ->
  ?calibration:Ape_calib.Card.t ->
  Ape_process.Process.t ->
  mode:mode ->
  row ->
  Ape_estimator.Opamp.design ->
  problem
(** [cache_quantum]/[cache_capacity] tune the {!Est_cache} behind
    [cost] (defaults: {!Est_cache.default_quantum}, 8192 entries).
    [cache] instead hands the problem an externally-owned cache — the
    serve layer keeps one warm cache per problem fingerprint so repeated
    synthesis of the same spec skips already-evaluated points; when
    given, [cache_quantum]/[cache_capacity] are ignored.  Sharing is
    sound because memoised values are pure functions of the quantized
    key (see {!Est_cache}) — callers sharing a cache must also share
    the (or no) calibration card, since corrections feed the memoised
    cost.  [calibration] corrects the in-loop gain/UGF estimates
    (opamp level, region from the row's spec); the final verdict is
    always measured raw. *)

val measure_netlist :
  ?out_dc_target:float ->
  Ape_process.Process.t ->
  row ->
  Ape_circuit.Netlist.t ->
  Cost.measurement option
(** Full-fidelity measurement (Newton DC + AC search): keys [gain],
    [ugf], [area], [power], [vout_center].  [None] on DC
    non-convergence. *)
