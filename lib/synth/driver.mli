(** Synthesis driver: runs the annealer on a problem and reports in the
    shape of the paper's Tables 1 and 4. *)

type result = {
  row : Opamp_problem.row;
  mode : Opamp_problem.mode;
  meets_spec : bool;
  works : bool;  (** DC converged and the output is biased *)
  gain : float option;
  ugf : float option;
  area : float;  (** m² *)
  power : float;  (** W *)
  stats : Anneal.stats;
  best_values : (string * float) list;  (** named unknown values *)
  best_netlist : Ape_circuit.Netlist.t;
  comment : string;  (** the paper's "Comments" column *)
  yield : Ape_mc.Run.report option;
      (** Monte Carlo yield of the best candidate, when requested *)
  cache_hits : int;  (** estimation-cache hits during the anneal *)
  cache_lookups : int;  (** total cost evaluations requested *)
}

val run :
  ?schedule:Anneal.schedule ->
  ?mc:Ape_mc.Run.config ->
  ?mc_sigmas:Ape_mc.Variation.sigmas ->
  ?chains:int ->
  ?jobs:int ->
  ?exchange_period:int ->
  ?cache:Est_cache.t ->
  ?cache_quantum:float ->
  ?cache_capacity:int ->
  ?calibration:Ape_calib.Card.t ->
  rng:Ape_util.Rng.t ->
  Ape_process.Process.t ->
  mode:Opamp_problem.mode ->
  Opamp_problem.row ->
  result
(** Build the APE design (topology; also the interval centres in
    [Ape_centered] mode), anneal, re-measure the best candidate and
    classify the outcome.  With [?mc], additionally run a post-synthesis
    Monte Carlo yield check on the best candidate: its sized netlist is
    re-measured on [mc.samples] perturbed dies ([mc_sigmas] defaults to
    {!Ape_mc.Variation.default}) against the row's gain/UGF spec.

    [chains > 1] switches the search to
    {!Anneal.optimize_tempered} — [chains] tempered replicas over a
    persistent domain pool of [jobs] workers (default 1), exchanging
    every [exchange_period] stages (default 1) and sharing the
    problem's {!Est_cache} ([cache_quantum]/[cache_capacity] tune it).
    For a fixed seed the result is bit-identical for any [jobs].

    [cache] hands the run an externally-owned cache instead (see
    {!Opamp_problem.build}); [cache_hits]/[cache_lookups] in the result
    are then that cache's {e cumulative} totals, so callers sharing a
    cache across runs should difference them. *)

val yield_check :
  ?sigmas:Ape_mc.Variation.sigmas ->
  Ape_process.Process.t ->
  Opamp_problem.row ->
  Ape_circuit.Netlist.t ->
  Ape_mc.Run.config ->
  Ape_mc.Run.report
(** The standalone form of the [?mc] check, for re-running on a stored
    netlist. *)

val comment_of : Opamp_problem.row -> Cost.measurement option -> string
(** "Meets spec", "Gain << Spec", "UGF < spec", "Area >> Spec" or
    "doesn't work.", following the paper's wording. *)
