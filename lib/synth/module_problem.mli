(** Module-level synthesis problems — the Table 5 experiment: audio
    amplifier, sample-and-hold, flash ADC, low-pass and band-pass
    filters, each synthesised (a) standalone with wide intervals and a
    random start, and (b) APE-presized with ±20 % intervals.

    Unknown discovery is structural: MOSFETs of identical geometry and
    polarity inside the elaborated module are treated as matched groups
    sharing one width unknown; every fragment resistor and capacitor
    becomes a value unknown.  The flash ADC is synthesised through its
    unit comparator (all 2ⁿ−1 are identical replicas; the ladder is
    linear) with the area requirement scaled back to the full
    converter. *)

type kind =
  | M_audio of { gain : float; bandwidth : float }
  | M_sh of { gain : float; bandwidth : float; sr : float }
  | M_adc of { bits : int; delay : float }
  | M_lpf of { order : int; f_cutoff : float }
  | M_bpf of { f_center : float; q : float; gain : float }

val kind_name : kind -> string

type mode = Wide | Ape_centered of float

type problem = {
  kind : kind;
  template : Template.t;
  cost_model : Cost.t;
  dim : int;  (** sizes/passives + relaxed node voltages *)
  cost : float array -> float;
      (** KCL penalty + spec penalties measured at the relaxed bias
          point (see {!Relax}) *)
  final : float array -> Cost.measurement option;
      (** true Newton-DC measurement of a candidate, for verdicts *)
  start : Ape_util.Rng.t -> float array;
  area_scale : float;
      (** multiplier from the synthesised core's area to the full module
          (1 except for the ADC, where it is 2ⁿ−1) *)
  cache : Est_cache.t;
      (** the LRU memo behind [cost] — keyed on the quantized point, so
          re-visited sizings skip the relaxed estimation entirely *)
}

val ape_module :
  Ape_process.Process.t -> kind -> Ape_estimator.Module_lib.design
(** The APE pass for the module. *)

val build :
  ?cache_quantum:float ->
  ?cache_capacity:int ->
  rng:Ape_util.Rng.t ->
  Ape_process.Process.t ->
  mode:mode ->
  area_max:float ->
  kind ->
  problem
(** [area_max] is the gate-area budget (of the full module), m².
    [cache_quantum]/[cache_capacity] tune the {!Est_cache} behind
    [cost] (defaults: {!Est_cache.default_quantum}, 8192 entries). *)

type result = {
  kind : kind;
  mode : mode;
  meets_spec : bool;
  works : bool;
  measured : Cost.measurement option;
  area : float;  (** full-module gate area, m² *)
  stats : Anneal.stats;
  cache_hits : int;  (** estimation-cache hits during the anneal *)
  cache_lookups : int;  (** total cost evaluations requested *)
}

val run :
  ?schedule:Anneal.schedule ->
  ?chains:int ->
  ?jobs:int ->
  ?exchange_period:int ->
  ?cache_quantum:float ->
  ?cache_capacity:int ->
  rng:Ape_util.Rng.t ->
  Ape_process.Process.t ->
  mode:mode ->
  area_max:float ->
  kind ->
  result
(** [chains > 1] uses {!Anneal.optimize_tempered} over [jobs] pool
    workers (exchange every [exchange_period] stages); see
    {!Driver.run} for the determinism contract. *)
