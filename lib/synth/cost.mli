(** Cost-function construction: "ASTRX/OBLX generates a cost function
    from the objectives, specifications, constraints and Kirchoff Laws"
    (paper §3).  Kirchhoff's laws are enforced by the embedded MNA solve;
    specifications become relative-violation penalties; objectives add a
    small pressure so the annealer prefers cheaper circuits among
    feasible ones. *)

type bound = At_least of float | At_most of float

type requirement = {
  metric : string;  (** key into the measurement *)
  bound : bound;
  weight : float;
}

val at_least : ?weight:float -> string -> float -> requirement
val at_most : ?weight:float -> string -> float -> requirement

type measurement = (string * float) list
(** metric name → measured value.  A missing metric counts as a gross
    violation (the circuit "doesn't work"). *)

val find : measurement -> string -> float option

val violation : requirement -> measurement -> float
(** Relative violation in [[0, ∞)]; 0 when satisfied; a fixed large
    value (3.0) when the metric is absent. *)

val satisfied : requirement -> measurement -> bool

type objective = { metric_o : string; scale : float; weight_o : float }
(** Adds [weight · value/scale] to the cost (minimisation pressure). *)

val minimize : ?weight:float -> string -> scale:float -> objective

type t = {
  requirements : requirement list;
  objectives : objective list;
  failure_cost : float;  (** cost of an unevaluable candidate *)
}

val make :
  ?failure_cost:float -> requirement list -> objective list -> t

val evaluate : t -> measurement option -> float
(** Total cost; [None] (e.g. DC non-convergence) costs [failure_cost]. *)

val all_satisfied : t -> measurement -> bool

val report : t -> measurement -> (string * float * bool) list
(** Per-requirement (metric, measured-or-nan, satisfied). *)

val calibrate : (string -> float -> float) -> measurement -> measurement
(** Map every metric value through a correction (e.g. a calibration
    card's per-attribute fit) before {!evaluate} judges it. *)
