type bound = At_least of float | At_most of float

type requirement = { metric : string; bound : bound; weight : float }

let at_least ?(weight = 1.) metric v =
  { metric; bound = At_least v; weight }

let at_most ?(weight = 1.) metric v = { metric; bound = At_most v; weight }

type measurement = (string * float) list

let find m key = List.assoc_opt key m

let violation req m =
  match find m req.metric with
  | None -> 3.0
  | Some x -> (
    match req.bound with
    | At_least v ->
      if x >= v then 0. else (v -. x) /. Float.max 1e-30 (Float.abs v)
    | At_most v ->
      if x <= v then 0. else (x -. v) /. Float.max 1e-30 (Float.abs v))

let satisfied req m = violation req m = 0.

type objective = { metric_o : string; scale : float; weight_o : float }

let minimize ?(weight = 0.05) metric ~scale =
  { metric_o = metric; scale; weight_o = weight }

type t = {
  requirements : requirement list;
  objectives : objective list;
  failure_cost : float;
}

let make ?(failure_cost = 50.) requirements objectives =
  { requirements; objectives; failure_cost }

let evaluate t = function
  | None -> t.failure_cost
  | Some m ->
    let penalty =
      List.fold_left
        (fun acc req -> acc +. (req.weight *. violation req m))
        0. t.requirements
    in
    let pressure =
      List.fold_left
        (fun acc o ->
          match find m o.metric_o with
          | Some x -> acc +. (o.weight_o *. (x /. o.scale))
          | None -> acc)
        0. t.objectives
    in
    penalty +. pressure

let all_satisfied t m = List.for_all (fun req -> satisfied req m) t.requirements

let report t m =
  List.map
    (fun req ->
      ( req.metric,
        (match find m req.metric with Some x -> x | None -> Float.nan),
        satisfied req m ))
    t.requirements

let calibrate f m = List.map (fun (k, v) -> (k, f k v)) m
