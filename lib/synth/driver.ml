module E = Ape_estimator
module Obs = Ape_obs

type result = {
  row : Opamp_problem.row;
  mode : Opamp_problem.mode;
  meets_spec : bool;
  works : bool;
  gain : float option;
  ugf : float option;
  area : float;
  power : float;
  stats : Anneal.stats;
  best_values : (string * float) list;
  best_netlist : Ape_circuit.Netlist.t;
  comment : string;
  yield : Ape_mc.Run.report option;
  cache_hits : int;
  cache_lookups : int;
}

let comment_of (row : Opamp_problem.row) measurement =
  match measurement with
  | None -> "doesn't work."
  | Some m ->
    let get k = Cost.find m k in
    let biased =
      match get "vout_center" with Some v -> v <= 0.8 | None -> false
    in
    if not biased then "doesn't work."
    else begin
      let gain_ok =
        match get "gain" with
        | Some g -> g >= row.Opamp_problem.gain
        | None -> false
      in
      let ugf_ok =
        match get "ugf" with
        | Some u -> u >= row.Opamp_problem.ugf
        | None -> false
      in
      let area_ok =
        match get "area" with
        | Some a -> a <= row.Opamp_problem.area
        | None -> false
      in
      if gain_ok && ugf_ok && area_ok then "Meets spec"
      else begin
        let gain_val = Option.value ~default:0. (get "gain") in
        if gain_val < 0.5 *. row.Opamp_problem.gain then "Gain << Spec"
        else if not gain_ok then "Gain < spec"
        else if not ugf_ok then "UGF < spec"
        else begin
          let area_val = Option.value ~default:infinity (get "area") in
          if area_val > 3. *. row.Opamp_problem.area then "Area >> Spec"
          else "Area > spec"
        end
      end
    end

(* Post-synthesis yield: re-measure the best candidate's netlist on
   perturbed dies.  The sizing is frozen — only the model cards move —
   so this answers "how much of the spec margin did the annealer leave
   against process variation". *)
let yield_check ?(sigmas = Ape_mc.Variation.default) process
    (row : Opamp_problem.row) netlist config =
  let checks =
    [
      Ape_mc.Run.at_least "gain" row.Opamp_problem.gain;
      Ape_mc.Run.at_least "ugf" row.Opamp_problem.ugf;
    ]
  in
  let measure rng _i =
    let proc = Ape_mc.Variation.perturb rng sigmas process in
    let nl = Ape_circuit.Netlist.retarget_process proc netlist in
    match Opamp_problem.measure_netlist proc row nl with
    | None ->
      raise
        (Ape_spice.Dc.No_convergence
           (Printf.sprintf "mc-yield(%s): perturbed die did not converge"
              row.Opamp_problem.name))
    | Some m ->
      List.filter_map
        (fun k -> Option.map (fun v -> (k, v)) (Cost.find m k))
        [ "gain"; "ugf"; "power"; "area" ]
  in
  Ape_mc.Run.run ~checks config ~measure

let run ?(schedule = Anneal.default_schedule) ?mc ?mc_sigmas ?chains
    ?(jobs = 1) ?(exchange_period = 1) ?cache ?cache_quantum ?cache_capacity
    ?calibration ~rng process ~mode row =
  Obs.span "synth" @@ fun () ->
  let design =
    Obs.span "seed_design" (fun () ->
        match mode with
        | Opamp_problem.Wide -> Opamp_problem.strawman_design process row
        | Opamp_problem.Ape_centered _ -> Opamp_problem.ape_design process row)
  in
  let problem =
    Obs.span "build" (fun () ->
        Opamp_problem.build ?cache ?cache_quantum ?cache_capacity ?calibration
          process ~mode row design)
  in
  (* Time-to-spec: stop once every requirement is met, KCL is satisfied
     and only the small objective pressure remains. *)
  let stop_below = 0.05 in
  let best, stats =
    Obs.span "anneal" (fun () ->
        match chains with
        | Some k when k > 1 ->
          Anneal.optimize_tempered ~schedule ~stop_below
            ~tempering:{ Anneal.default_tempering with chains = k; exchange_period }
            ~jobs ~rng ~dim:problem.Opamp_problem.dim
            ~cost:problem.Opamp_problem.cost
            ~start:problem.Opamp_problem.start ()
        | _ ->
          let x0 = problem.Opamp_problem.start rng in
          Anneal.optimize ~schedule ~stop_below ~rng
            ~dim:problem.Opamp_problem.dim ~cost:problem.Opamp_problem.cost
            ~x0 ())
  in
  let best_netlist, measurement =
    Obs.span "final_measure" (fun () -> problem.Opamp_problem.final best)
  in
  let comment = comment_of row measurement in
  let get k =
    match measurement with Some m -> Cost.find m k | None -> None
  in
  let meets_spec = String.equal comment "Meets spec" in
  let works = comment <> "doesn't work." in
  let yield =
    match mc with
    | None -> None
    | Some config ->
      Some
        (Obs.span "yield_check" (fun () ->
             yield_check ?sigmas:mc_sigmas process row best_netlist config))
  in
  {
    row;
    mode;
    meets_spec;
    works;
    gain = get "gain";
    ugf = get "ugf";
    area = Option.value ~default:0. (get "area");
    power = Option.value ~default:0. (get "power");
    stats;
    best_values = problem.Opamp_problem.values best;
    best_netlist;
    comment;
    yield;
    cache_hits = Est_cache.hits problem.Opamp_problem.cache;
    cache_lookups = Est_cache.lookups problem.Opamp_problem.cache;
  }
