type schedule = {
  t_start : float;
  t_end : float;
  cooling : float;
  moves_per_stage : int;
  max_evaluations : int;
}

let default_schedule =
  {
    t_start = 1.0;
    t_end = 1e-4;
    cooling = 0.9;
    moves_per_stage = 60;
    max_evaluations = 20_000;
  }

let quick_schedule =
  {
    t_start = 1.0;
    t_end = 1e-3;
    cooling = 0.85;
    moves_per_stage = 25;
    max_evaluations = 2_500;
  }

type stats = {
  evaluations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  seconds : float;
}

let clamp01 x = Ape_util.Float_ext.clamp ~lo:0. ~hi:1. x

let c_evals = Ape_obs.counter "anneal.evaluations"
let c_accepts = Ape_obs.counter "anneal.accepts"
let c_rejects = Ape_obs.counter "anneal.rejects"
let c_improvements = Ape_obs.counter "anneal.best_improvements"
let c_stages = Ape_obs.counter "anneal.stages"
let g_temperature = Ape_obs.gauge "anneal.temperature"

let optimize ?(schedule = default_schedule) ?(stop_below = neg_infinity)
    ~rng ~dim ~cost ~x0 () =
  if dim <= 0 then invalid_arg "Anneal.optimize: dim <= 0";
  if Array.length x0 <> dim then invalid_arg "Anneal.optimize: x0 size";
  let start_time = Unix.gettimeofday () in
  let x = Array.map clamp01 x0 in
  let evaluations = ref 0 in
  let eval p =
    incr evaluations;
    Ape_obs.incr c_evals;
    let c = cost p in
    if Float.is_nan c then infinity else c
  in
  let current = ref (eval x) in
  let initial_cost = !current in
  let best = ref (Array.copy x) in
  let best_cost = ref !current in
  let accepted = ref 0 in
  let temp = ref schedule.t_start in
  (* Move amplitude tracks temperature: wide exploration early, local
     polishing late. *)
  let sigma_of_temp t =
    0.02 +. (0.3 *. (t /. schedule.t_start))
  in
  while
    !temp > schedule.t_end
    && !evaluations < schedule.max_evaluations
    && !best_cost >= stop_below
  do
    for _ = 1 to schedule.moves_per_stage do
      if !evaluations < schedule.max_evaluations && !best_cost >= stop_below
      then begin
        let coord = Ape_util.Rng.int rng dim in
        let old_value = x.(coord) in
        let sigma = sigma_of_temp !temp in
        x.(coord) <-
          clamp01 (Ape_util.Rng.gauss rng ~mean:old_value ~sigma);
        let candidate = eval x in
        let delta = candidate -. !current in
        let accept =
          delta <= 0.
          || Ape_util.Rng.uniform rng 0. 1. < Float.exp (-.delta /. !temp)
        in
        if accept then begin
          current := candidate;
          incr accepted;
          Ape_obs.incr c_accepts;
          if candidate < !best_cost then begin
            best_cost := candidate;
            Ape_obs.incr c_improvements;
            best := Array.copy x
          end
        end
        else begin
          Ape_obs.incr c_rejects;
          x.(coord) <- old_value
        end
      end
    done;
    (* Temperature trace: the gauge holds the last completed stage's
       temperature; the stage counter gives the trace length. *)
    Ape_obs.incr c_stages;
    Ape_obs.set g_temperature !temp;
    temp := !temp *. schedule.cooling
  done;
  ( !best,
    {
      evaluations = !evaluations;
      accepted = !accepted;
      best_cost = !best_cost;
      initial_cost;
      seconds = Unix.gettimeofday () -. start_time;
    } )
