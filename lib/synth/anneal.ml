type schedule = {
  t_start : float;
  t_end : float;
  cooling : float;
  moves_per_stage : int;
  max_evaluations : int;
}

let default_schedule =
  {
    t_start = 1.0;
    t_end = 1e-4;
    cooling = 0.9;
    moves_per_stage = 60;
    max_evaluations = 20_000;
  }

let quick_schedule =
  {
    t_start = 1.0;
    t_end = 1e-3;
    cooling = 0.85;
    moves_per_stage = 25;
    max_evaluations = 2_500;
  }

type stats = {
  evaluations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  seconds : float;
  chains : int;
  exchanges : int;
  exchange_accepted : int;
}

let clamp01 x = Ape_util.Float_ext.clamp ~lo:0. ~hi:1. x

(* Move amplitude tracks temperature: wide exploration early, local
   polishing late. *)
let sigma_of_temp schedule t = 0.02 +. (0.3 *. (t /. schedule.t_start))

let c_evals = Ape_obs.counter "anneal.evaluations"
let c_accepts = Ape_obs.counter "anneal.accepts"
let c_rejects = Ape_obs.counter "anneal.rejects"
let c_improvements = Ape_obs.counter "anneal.best_improvements"
let c_stages = Ape_obs.counter "anneal.stages"
let g_temperature = Ape_obs.gauge "anneal.temperature"

let optimize ?(schedule = default_schedule) ?(stop_below = neg_infinity)
    ~rng ~dim ~cost ~x0 () =
  if dim <= 0 then invalid_arg "Anneal.optimize: dim <= 0";
  if Array.length x0 <> dim then invalid_arg "Anneal.optimize: x0 size";
  let start_time = Ape_util.Clock.now_s () in
  let x = Array.map clamp01 x0 in
  let evaluations = ref 0 in
  let eval p =
    incr evaluations;
    Ape_obs.incr c_evals;
    let c = cost p in
    if Float.is_nan c then infinity else c
  in
  let current = ref (eval x) in
  let initial_cost = !current in
  let best = ref (Array.copy x) in
  let best_cost = ref !current in
  let accepted = ref 0 in
  let temp = ref schedule.t_start in
  while
    !temp > schedule.t_end
    && !evaluations < schedule.max_evaluations
    && !best_cost >= stop_below
  do
    for _ = 1 to schedule.moves_per_stage do
      if !evaluations < schedule.max_evaluations && !best_cost >= stop_below
      then begin
        let coord = Ape_util.Rng.int rng dim in
        let old_value = x.(coord) in
        let sigma = sigma_of_temp schedule !temp in
        x.(coord) <-
          clamp01 (Ape_util.Rng.gauss rng ~mean:old_value ~sigma);
        let candidate = eval x in
        let delta = candidate -. !current in
        let accept =
          delta <= 0.
          || Ape_util.Rng.uniform rng 0. 1. < Float.exp (-.delta /. !temp)
        in
        if accept then begin
          current := candidate;
          incr accepted;
          Ape_obs.incr c_accepts;
          if candidate < !best_cost then begin
            best_cost := candidate;
            Ape_obs.incr c_improvements;
            best := Array.copy x
          end
        end
        else begin
          Ape_obs.incr c_rejects;
          x.(coord) <- old_value
        end
      end
    done;
    (* Temperature trace: the gauge holds the last completed stage's
       temperature; the stage counter gives the trace length. *)
    Ape_obs.incr c_stages;
    Ape_obs.set g_temperature !temp;
    temp := !temp *. schedule.cooling
  done;
  ( !best,
    {
      evaluations = !evaluations;
      accepted = !accepted;
      best_cost = !best_cost;
      initial_cost;
      seconds = Ape_util.Clock.elapsed_s start_time;
      chains = 1;
      exchanges = 0;
      exchange_accepted = 0;
    } )

(* ------------------------------------------------------------------ *)
(* Parallel tempering (replica exchange).                              *)
(* ------------------------------------------------------------------ *)

type tempering = { chains : int; exchange_period : int; ladder : float }

let default_tempering = { chains = 4; exchange_period = 1; ladder = 1.6 }

let c_x_attempts = Ape_obs.counter "anneal.exchange_attempts"
let c_x_accepts = Ape_obs.counter "anneal.exchange_accepts"
let c_rounds = Ape_obs.counter "anneal.exchange_rounds"

let exchange_probability ~t_cold ~t_hot ~e_cold ~e_hot =
  if not (t_cold > 0. && t_hot > 0.) then
    invalid_arg "Anneal.exchange_probability: non-positive temperature";
  let p =
    Float.exp (((1. /. t_cold) -. (1. /. t_hot)) *. (e_cold -. e_hot))
  in
  (* Both energies infinite gives inf - inf = NaN; neither replica is
     better, so don't swap. *)
  if Float.is_nan p then 0. else Float.min 1. p

(* One replica: the full Metropolis state plus its private RNG stream.
   Everything a chain touches during a stage is either in this record,
   the shared read-only schedule, or the (thread-safe) cost closure, so
   a stage is a pure function of the chain's pre-stage state — which
   domain runs it cannot matter. *)
type chain_state = {
  ch_rng : Ape_util.Rng.t;
  ch_x : float array;
  mutable ch_current : float;
  mutable ch_best : float array;
  mutable ch_best_cost : float;
  mutable ch_accepted : int;
  mutable ch_evals : int;
}

let chain_eval ch cost p =
  ch.ch_evals <- ch.ch_evals + 1;
  Ape_obs.incr c_evals;
  let c = cost p in
  if Float.is_nan c then infinity else c

(* Identical move/accept mechanics to the sequential engine, at the
   replica's own temperature. *)
let run_stage schedule ~stop_below ~dim ~cost ~sigma ~temp ch =
  for _ = 1 to schedule.moves_per_stage do
    if ch.ch_evals < schedule.max_evaluations && ch.ch_best_cost >= stop_below
    then begin
      let coord = Ape_util.Rng.int ch.ch_rng dim in
      let old_value = ch.ch_x.(coord) in
      ch.ch_x.(coord) <-
        clamp01 (Ape_util.Rng.gauss ch.ch_rng ~mean:old_value ~sigma);
      let candidate = chain_eval ch cost ch.ch_x in
      let delta = candidate -. ch.ch_current in
      let accept =
        delta <= 0.
        || Ape_util.Rng.uniform ch.ch_rng 0. 1. < Float.exp (-.delta /. temp)
      in
      if accept then begin
        ch.ch_current <- candidate;
        ch.ch_accepted <- ch.ch_accepted + 1;
        Ape_obs.incr c_accepts;
        if candidate < ch.ch_best_cost then begin
          ch.ch_best_cost <- candidate;
          Ape_obs.incr c_improvements;
          Array.blit ch.ch_x 0 ch.ch_best 0 dim
        end
      end
      else begin
        Ape_obs.incr c_rejects;
        ch.ch_x.(coord) <- old_value
      end
    end
  done

let optimize_tempered ?(schedule = default_schedule)
    ?(stop_below = neg_infinity) ?(tempering = default_tempering) ?(jobs = 1)
    ~rng ~dim ~cost ~start () =
  if dim <= 0 then invalid_arg "Anneal.optimize_tempered: dim <= 0";
  let k = tempering.chains in
  if k <= 0 then invalid_arg "Anneal.optimize_tempered: chains <= 0";
  if tempering.exchange_period <= 0 then
    invalid_arg "Anneal.optimize_tempered: exchange_period <= 0";
  if not (tempering.ladder > 1.) then
    invalid_arg "Anneal.optimize_tempered: ladder <= 1";
  let start_time = Ape_util.Clock.now_s () in
  (* One independent stream per replica plus one for exchange decisions:
     a chain's trajectory between exchanges depends only on its own
     stream and its own state, and the exchange sweep runs on the
     calling domain — the execution interleaving (and hence [jobs])
     cannot reach the arithmetic. *)
  let streams = Ape_util.Rng.split_n rng (k + 1) in
  let x_rng = streams.(k) in
  (* Geometric ladder above the base schedule: replica i anneals at
     ladder^i times the cold temperature throughout the cooling. *)
  let mult = Array.init k (fun i -> tempering.ladder ** float_of_int i) in
  let chains =
    Array.init k (fun i ->
        let ch_rng = streams.(i) in
        let x = Array.map clamp01 (start ch_rng) in
        if Array.length x <> dim then
          invalid_arg "Anneal.optimize_tempered: start size";
        let ch =
          {
            ch_rng;
            ch_x = x;
            ch_current = 0.;
            ch_best = Array.copy x;
            ch_best_cost = infinity;
            ch_accepted = 0;
            ch_evals = 0;
          }
        in
        ch.ch_current <- chain_eval ch cost x;
        ch.ch_best_cost <- ch.ch_current;
        ch)
  in
  let initial_cost = chains.(0).ch_current in
  let exchanges = ref 0 in
  let exchange_accepted = ref 0 in
  (* Adjacent-pair sweep with alternating parity (0-1,2-3 then 1-2,3-4)
     so every neighbour pair is attempted on alternating rounds.  Swap
     the replica states, not the temperatures: the cold slot keeps
     annealing whatever configuration it inherits. *)
  let exchange_sweep ~temp ~parity =
    Ape_obs.incr c_rounds;
    let i = ref (parity land 1) in
    while !i + 1 < k do
      let cold = chains.(!i) and hot = chains.(!i + 1) in
      incr exchanges;
      Ape_obs.incr c_x_attempts;
      let p =
        exchange_probability ~t_cold:(temp *. mult.(!i))
          ~t_hot:(temp *. mult.(!i + 1))
          ~e_cold:cold.ch_current ~e_hot:hot.ch_current
      in
      (* Always draw, so the exchange stream advances by a fixed amount
         per pair whatever the outcome. *)
      let u = Ape_util.Rng.uniform x_rng 0. 1. in
      if u < p then begin
        incr exchange_accepted;
        Ape_obs.incr c_x_accepts;
        for c = 0 to dim - 1 do
          let t = cold.ch_x.(c) in
          cold.ch_x.(c) <- hot.ch_x.(c);
          hot.ch_x.(c) <- t
        done;
        let t = cold.ch_current in
        cold.ch_current <- hot.ch_current;
        hot.ch_current <- t
      end;
      i := !i + 2
    done
  in
  let best_cost () =
    Array.fold_left (fun acc ch -> Float.min acc ch.ch_best_cost) infinity
      chains
  in
  let budget_left () =
    Array.exists (fun ch -> ch.ch_evals < schedule.max_evaluations) chains
  in
  let temp = ref schedule.t_start in
  let stage = ref 0 in
  let workers = Int.max 0 (Int.min jobs k - 1) in
  Ape_util.Pool.with_pool ~workers (fun pool ->
      while
        !temp > schedule.t_end && budget_left () && best_cost () >= stop_below
      do
        let t = !temp in
        (* Hot replicas go to the pool; the calling domain anneals the
           cold chain, then joins.  Stop decisions happen only here, at
           the round barrier, from chain-local state. *)
        let tasks =
          Array.init (k - 1) (fun j ->
              let ch = chains.(j + 1) in
              let temp = t *. mult.(j + 1) in
              Ape_util.Pool.submit pool (fun () ->
                  run_stage schedule ~stop_below ~dim ~cost
                    ~sigma:(sigma_of_temp schedule temp) ~temp ch))
        in
        run_stage schedule ~stop_below ~dim ~cost
          ~sigma:(sigma_of_temp schedule t) ~temp:t chains.(0);
        Array.iter Ape_util.Pool.await tasks;
        Ape_obs.incr c_stages;
        Ape_obs.set g_temperature t;
        incr stage;
        if !stage mod tempering.exchange_period = 0 then
          exchange_sweep ~temp:t ~parity:(!stage / tempering.exchange_period);
        temp := t *. schedule.cooling
      done);
  let winner =
    Array.fold_left
      (fun acc ch -> if ch.ch_best_cost < acc.ch_best_cost then ch else acc)
      chains.(0) chains
  in
  ( Array.copy winner.ch_best,
    {
      evaluations = Array.fold_left (fun a ch -> a + ch.ch_evals) 0 chains;
      accepted = Array.fold_left (fun a ch -> a + ch.ch_accepted) 0 chains;
      best_cost = winner.ch_best_cost;
      initial_cost;
      seconds = Ape_util.Clock.elapsed_s start_time;
      chains = k;
      exchanges = !exchanges;
      exchange_accepted = !exchange_accepted;
    } )
