module N = Ape_circuit.Netlist
module I = Ape_util.Interval
module Proc = Ape_process.Process
module E = Ape_estimator
module Mos = Ape_device.Mos
module Measure = Ape_spice.Measure

type kind =
  | M_audio of { gain : float; bandwidth : float }
  | M_sh of { gain : float; bandwidth : float; sr : float }
  | M_adc of { bits : int; delay : float }
  | M_lpf of { order : int; f_cutoff : float }
  | M_bpf of { f_center : float; q : float; gain : float }

let kind_name = function
  | M_audio _ -> "amp"
  | M_sh _ -> "s&h"
  | M_adc _ -> "adc"
  | M_lpf _ -> "lpf"
  | M_bpf _ -> "bpf"

type mode = Wide | Ape_centered of float

type problem = {
  kind : kind;
  template : Template.t;
  cost_model : Cost.t;
  dim : int;  (** sizes/passives + relaxed node voltages *)
  cost : float array -> float;
  final : float array -> Cost.measurement option;
  start : Ape_util.Rng.t -> float array;
  area_scale : float;
  cache : Est_cache.t;
}

let ape_module (process : Proc.t) kind =
  let spec =
    match kind with
    | M_audio { gain; bandwidth } -> E.Module_lib.Audio_amp { gain; bandwidth }
    | M_sh { gain; bandwidth; sr } ->
      E.Module_lib.Sample_hold_m (E.Sample_hold.spec ~gain ~bandwidth ~sr ())
    | M_adc { bits; delay } ->
      E.Module_lib.Flash_adc_m (E.Data_conv.Flash_adc.spec ~bits ~delay ())
    | M_lpf { order; f_cutoff } ->
      E.Module_lib.Lowpass_m { E.Filter.order; f_cutoff; r_base = 1e6 }
    | M_bpf { f_center; q; gain } ->
      E.Module_lib.Bandpass_m { E.Filter.f_center; q; gain; c_base = 10e-9 }
  in
  E.Module_lib.design process spec

(* The netlist the annealer sizes: the module fragment (ADC: its unit
   comparator) plus the drive/load testbench. *)
let core_and_testbench (process : Proc.t) kind design =
  let vmid = process.Proc.vdd /. 2. in
  let vin ?(ac = 1.) ?(dc = vmid) port name =
    N.Vsource { name; p = port; n = N.ground; dc; ac }
  in
  match (kind, design) with
  | M_adc _, E.Module_lib.D_adc adc ->
    let comp = adc.E.Data_conv.Flash_adc.comparator in
    let frag = E.Data_conv.Comparator.fragment process comp in
    let nl = E.Fragment.with_supply ~vdd:process.Proc.vdd frag in
    ( N.append nl
        [
          vin ~ac:0.5 "inp" "VINP";
          vin ~ac:(-0.5) "inn" "VINN";
          N.Capacitor { name = "CLT"; a = "out"; b = N.ground; c = 0.5e-12 };
        ],
      float_of_int
        ((1 lsl adc.E.Data_conv.Flash_adc.spec.E.Data_conv.Flash_adc.bits) - 1)
    )
  | M_audio _, E.Module_lib.D_audio _ ->
    let frag = E.Module_lib.fragment process design in
    let nl = E.Fragment.with_supply ~vdd:process.Proc.vdd frag in
    ( N.append nl
        [
          vin ~ac:0.5 "inp" "VINP";
          vin ~ac:(-0.5) "inn" "VINN";
          N.Capacitor { name = "CLT"; a = "out"; b = N.ground; c = 10e-12 };
        ],
      1. )
  | M_sh _, E.Module_lib.D_sh _ ->
    let frag = E.Module_lib.fragment process design in
    let nl = E.Fragment.with_supply ~vdd:process.Proc.vdd frag in
    ( N.append nl
        [
          vin "in" "VIN";
          N.Vsource
            {
              name = "VCTRL";
              p = "ctrl";
              n = N.ground;
              dc = process.Proc.vdd;
              ac = 0.;
            };
          N.Capacitor { name = "CLT"; a = "out"; b = N.ground; c = 10e-12 };
        ],
      1. )
  | (M_lpf _ | M_bpf _), (E.Module_lib.D_lpf _ | E.Module_lib.D_bpf _) ->
    let frag = E.Module_lib.fragment process design in
    let nl = E.Fragment.with_supply ~vdd:process.Proc.vdd frag in
    (N.append nl [ vin "in" "VIN" ], 1.)
  | ( (M_audio _ | M_sh _ | M_adc _ | M_lpf _ | M_bpf _),
      ( E.Module_lib.D_audio _ | E.Module_lib.D_sh _ | E.Module_lib.D_adc _
      | E.Module_lib.D_dac _ | E.Module_lib.D_lpf _ | E.Module_lib.D_bpf _
      | E.Module_lib.D_closed _ | E.Module_lib.D_comp _ ) ) ->
    invalid_arg "Module_problem: kind/design mismatch"

let testbench_names = [ "VDD"; "VINP"; "VINN"; "VIN"; "VCTRL"; "CLT" ]

(* Structural unknown discovery: mosfets matched by (polarity, W, L);
   every other fragment R/C is its own unknown. *)
let discover_params ~mode netlist =
  let groups = Hashtbl.create 16 in
  let passive_r = ref [] and passive_c = ref [] in
  List.iter
    (fun e ->
      match e with
      | N.Mosfet { name; card; geom; _ } ->
        let key =
          ( card.Ape_process.Model_card.mos_type,
            Float.round (geom.Mos.w *. 1e9),
            Float.round (geom.Mos.l *. 1e9) )
        in
        let members =
          Option.value ~default:[] (Hashtbl.find_opt groups key)
        in
        Hashtbl.replace groups key ((name, geom.Mos.w) :: members)
      | N.Resistor { name; r; _ } when not (List.mem name testbench_names) ->
        passive_r := (name, r) :: !passive_r
      | N.Capacitor { name; c; _ } when not (List.mem name testbench_names) ->
        passive_c := (name, c) :: !passive_c
      | N.Resistor _ | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _
      | N.Switch _ ->
        ())
    (N.elements netlist);
  let range ~wide current =
    match mode with
    | Wide -> I.make (current /. 30.) (Float.min wide (current *. 30.))
    | Ape_centered pct -> I.of_center ~pct current
  in
  let log_scale = match mode with Wide -> true | Ape_centered _ -> false in
  let mos_params =
    Hashtbl.fold
      (fun _ members acc ->
        match members with
        | [] -> acc
        | (first, w) :: _ ->
          let names = List.map fst members in
          Template.param ~log_scale
            ~name:("w_" ^ first)
            ~range:(range ~wide:500e-6 w)
            (Template.Mos_width names)
          :: acc)
      groups []
  in
  let r_params =
    List.map
      (fun (name, r) ->
        Template.param ~log_scale ~name:("r_" ^ name)
          ~range:(range ~wide:1e9 r)
          (Template.Res_value [ name ]))
      !passive_r
  in
  let c_params =
    List.map
      (fun (name, c) ->
        Template.param ~log_scale ~name:("c_" ^ name)
          ~range:(range ~wide:1e-6 c)
          (Template.Cap_value [ name ]))
      !passive_c
  in
  mos_params @ r_params @ c_params

let add m key = function Some v -> (key, v) :: m | None -> m

(* Metric extraction from an operating point — real (Newton-solved) for
   final verdicts, relaxed for the in-loop cost. *)
let measure_at (process : Proc.t) kind ~area_scale netlist op =
  begin
    let vmid = process.Proc.vdd /. 2. in
    let area = area_scale *. N.gate_area netlist in
    let base =
      [
        ("area", area);
        ("power", area_scale *. Ape_spice.Dc.static_power op ~supply:"VDD");
      ]
    in
    let vout_center = Float.abs (Ape_spice.Dc.voltage op "out" -. vmid) in
    let m = ("vout_center", vout_center) :: base in
    (* One AC preparation serves every search this kind performs. *)
    let prep = Ape_spice.Ac.prepare op in
    let m =
      match kind with
      | M_audio _ | M_sh _ ->
        let gain = Measure.Prepared.dc_gain ~out:"out" prep in
        let bw =
          Measure.Prepared.f_minus_3db ~fmin:10. ~fmax:1e9 ~out:"out" prep
        in
        add (("gain", gain) :: m) "bandwidth" bw
      | M_adc { delay = _; bits } ->
        let gain = Measure.Prepared.dc_gain ~out:"out" prep in
        (* Default [1 V, 4 V] conversion window (see Flash_adc.spec). *)
        let lsb = 3.0 /. float_of_int (1 lsl bits) in
        let ugf =
          if gain <= 1. then None
          else
            Measure.Prepared.unity_gain_frequency ~fmin:1e3 ~fmax:1e9
              ~out:"out" prep
        in
        let delay_proxy =
          Option.map
            (fun u ->
              process.Proc.vdd /. 2.
              /. (2. *. Float.pi *. u *. (lsb /. 2.)))
            ugf
        in
        add (add (("gain", gain) :: m) "ugf" ugf) "delay" delay_proxy
      | M_lpf { f_cutoff; _ } ->
        let gain = Measure.Prepared.dc_gain ~out:"out" prep in
        let f3 =
          Measure.Prepared.f_minus_3db ~fmin:(f_cutoff /. 100.)
            ~fmax:(f_cutoff *. 100.) ~out:"out" prep
        in
        let f20 =
          Measure.Prepared.f_level_db ~fmin:(f_cutoff /. 100.)
            ~fmax:(f_cutoff *. 100.) ~level_db:(-20.) ~out:"out" prep
        in
        add (add (("gain", gain) :: m) "f3db" f3) "f20db" f20
      | M_bpf { f_center; _ } -> (
        match
          Measure.Prepared.bandpass_characteristics ~fmin:(f_center /. 50.)
            ~fmax:(f_center *. 50.) ~out:"out" prep
        with
        | Some bp ->
          ("f0", bp.Measure.f_center)
          :: ("gain", bp.Measure.peak_gain)
          :: ("bandwidth", bp.Measure.bandwidth)
          :: m
        | None -> m)
    in
    Some m
  end

let measure_for (process : Proc.t) kind ~area_scale netlist =
  match Ape_spice.Dc.solve netlist with
  | exception Ape_spice.Dc.No_convergence _ -> None
  | op -> measure_at process kind ~area_scale netlist op

let cost_for kind ~area_max =
  let reqs =
    match kind with
    | M_audio { gain; bandwidth } ->
      [
        Cost.at_least ~weight:2. "gain" (0.9 *. gain);
        Cost.at_most ~weight:1. "gain" (1.5 *. gain);
        Cost.at_least ~weight:2. "bandwidth" bandwidth;
        Cost.at_most ~weight:1. "vout_center" 1.0;
      ]
    | M_sh { gain; bandwidth; sr = _ } ->
      [
        Cost.at_least ~weight:2. "gain" (0.93 *. gain);
        Cost.at_most ~weight:2. "gain" (1.1 *. gain);
        Cost.at_least ~weight:2. "bandwidth" bandwidth;
        Cost.at_most ~weight:1. "vout_center" 1.0;
      ]
    | M_adc { delay; _ } ->
      [
        Cost.at_most ~weight:2. "delay" delay;
        Cost.at_least ~weight:1. "gain" 50.;
        Cost.at_most ~weight:1. "vout_center" 1.5;
      ]
    | M_lpf { f_cutoff; _ } ->
      [
        Cost.at_least ~weight:2. "f3db" (0.8 *. f_cutoff);
        Cost.at_most ~weight:2. "f3db" (1.25 *. f_cutoff);
        Cost.at_most ~weight:1. "f20db" (2.2 *. f_cutoff);
        Cost.at_least ~weight:1. "gain" 1.0;
      ]
    | M_bpf { f_center; q; gain } ->
      [
        Cost.at_least ~weight:2. "f0" (0.8 *. f_center);
        Cost.at_most ~weight:2. "f0" (1.25 *. f_center);
        Cost.at_least ~weight:1. "gain" (0.7 *. gain);
        Cost.at_most ~weight:1. "bandwidth" (2. *. f_center /. q);
      ]
  in
  Cost.make
    (reqs @ [ Cost.at_most ~weight:1. "area" area_max ])
    [ Cost.minimize ~weight:0.02 "area" ~scale:area_max ]

let build ?cache_quantum ?(cache_capacity = 8192) ~rng (process : Proc.t)
    ~mode ~area_max kind =
  ignore rng;
  let design = ape_module process kind in
  let base, area_scale = core_and_testbench process kind design in
  let params = discover_params ~mode base in
  let template = Template.make base params in
  let n_sizes = Template.dim template in
  (* OBLX-style bias relaxation, shared with the opamp problems. *)
  let relax =
    Relax.create
      ~mode:(match mode with Wide -> `Wide | Ape_centered _ -> `Centered)
      ~vdd:process.Proc.vdd base
  in
  let n_free = Relax.n_free relax in
  let dim = n_sizes + n_free in
  let cost_model = cost_for kind ~area_max in
  let split point =
    (Array.sub point 0 n_sizes, Array.sub point n_sizes n_free)
  in
  let evaluate_point point =
    let sizes, nodes = split point in
    let nl = Template.instantiate template sizes in
    let x = Relax.x_engine relax nodes in
    let kcl = Relax.kcl_penalty relax nl x in
    let op = Relax.fake_op relax nl x in
    let measurement = measure_at process kind ~area_scale nl op in
    Cost.evaluate cost_model measurement +. (3. *. kcl)
  in
  let cache =
    Est_cache.create ?quantum:cache_quantum ~capacity:cache_capacity ()
  in
  (* Evaluate at the cell's representative point so the memoised value
     is a pure function of the key (see Est_cache's determinism note). *)
  let cost point = Est_cache.find_or_add cache point evaluate_point in
  let final point =
    let sizes, _ = split point in
    measure_for process kind ~area_scale (Template.instantiate template sizes)
  in
  let start rng =
    match mode with
    | Wide -> Array.init dim (fun _ -> Ape_util.Rng.uniform rng 0. 1.)
    | Ape_centered _ ->
      let node_units = Relax.centers_unit relax in
      Array.init dim (fun k ->
          if k < n_sizes then 0.5 else node_units.(k - n_sizes))
  in
  { kind; template; cost_model; dim; cost; final; start; area_scale; cache }

type result = {
  kind : kind;
  mode : mode;
  meets_spec : bool;
  works : bool;
  measured : Cost.measurement option;
  area : float;
  stats : Anneal.stats;
  cache_hits : int;
  cache_lookups : int;
}

let run ?(schedule = Anneal.default_schedule) ?chains ?(jobs = 1)
    ?(exchange_period = 1) ?cache_quantum ?cache_capacity ~rng process ~mode
    ~area_max kind =
  let problem =
    build ?cache_quantum ?cache_capacity ~rng process ~mode ~area_max kind
  in
  let best, stats =
    match chains with
    | Some k when k > 1 ->
      Anneal.optimize_tempered ~schedule ~stop_below:0.05
        ~tempering:{ Anneal.default_tempering with chains = k; exchange_period }
        ~jobs ~rng ~dim:problem.dim ~cost:problem.cost ~start:problem.start ()
    | _ ->
      let x0 = problem.start rng in
      Anneal.optimize ~schedule ~stop_below:0.05 ~rng ~dim:problem.dim
        ~cost:problem.cost ~x0 ()
  in
  let measured = problem.final best in
  let meets_spec, works =
    match measured with
    | None -> (false, false)
    | Some m ->
      ( Cost.all_satisfied problem.cost_model m,
        (match Cost.find m "vout_center" with
        | Some v -> v < 2.0
        | None -> true) )
  in
  let area =
    match measured with
    | Some m -> Option.value ~default:0. (Cost.find m "area")
    | None -> 0.
  in
  {
    kind;
    mode;
    meets_spec;
    works;
    measured;
    area;
    stats;
    cache_hits = Est_cache.hits problem.cache;
    cache_lookups = Est_cache.lookups problem.cache;
  }
