(** Concurrent sharded LRU cache for point evaluations of the synthesis
    cost function.

    The annealer revisits sizing points — rejected moves that clamp back
    onto a hypercube face, and late polishing stages whose step size
    shrinks below the cache quantum — and each evaluation runs a full
    relaxed estimation (template instantiation, KCL penalty, AWE).  The
    cache keys on the sizing vector quantized to a fixed grid
    ([Float.round (x /. quantum)] per coordinate), so points closer than
    half a quantum share an entry; with the default quantum on unit-cube
    coordinates the aliasing error is far below the cost model's
    resolution.

    The table is striped into independently-locked shards (the shard is
    a deterministic hash of the quantized key), so parallel-tempering
    chains running on separate domains share one cache with little lock
    contention.  Per-shard hit/miss/eviction counts feed
    [est_cache.shard<i>.*] {!Ape_obs} counters alongside the
    [est_cache.*] aggregates.

    {b Determinism.}  [find_or_add] hands the evaluation callback the
    key's {e representative point} ([key * quantum] per coordinate),
    never the caller's raw point.  The stored value is therefore a pure
    function of the key: under concurrent insertion every racing chain
    computes the bit-identical value, and an eviction merely forces
    recomputation of that same value — cache hits, shard interleaving
    and [--jobs] cannot leak into synthesis results.

    Non-finite coordinates quantize to reserved keys (NaN, +inf and
    -inf each to their own), and the representative maps them back to
    the same non-finite value, so pathological points are memoised
    deterministically instead of hitting [int_of_float]'s undefined
    behaviour. *)

type t

val default_quantum : float
(** 1e-2 — see EXPERIMENTS.md for the measurement behind the choice. *)

val create : ?quantum:float -> ?shards:int -> capacity:int -> unit -> t
(** [quantum] defaults to {!default_quantum} (coordinates live in the
    unit cube); [shards] defaults to 8; [capacity] is the total across
    shards (each shard holds [capacity/shards], rounded up).  Raises
    [Invalid_argument] when any of the three is non-positive. *)

val find_or_add : t -> float array -> (float array -> float) -> float
(** [find_or_add t point f] returns the cached value for [point]'s
    quantized key, or runs [f] on the key's representative point,
    stores the result (evicting that shard's least-recently-used entry
    when over capacity) and returns it.  Thread-safe; [f] runs outside
    any lock. *)

val hits : t -> int
val lookups : t -> int
val evictions : t -> int

val hit_rate : t -> float
(** [hits / lookups], 0 before the first lookup. *)

val length : t -> int
(** Entries currently stored (≤ capacity). *)

val capacity : t -> int
val shards : t -> int
val quantum : t -> float
val clear : t -> unit
