(** LRU cache for point evaluations of the synthesis cost function.

    The annealer revisits sizing points — rejected moves that clamp back
    onto a hypercube face, and late polishing stages whose step size
    shrinks below the cache quantum — and each evaluation runs a full
    relaxed estimation (template instantiation, KCL penalty, AWE).  The
    cache keys on the sizing vector quantized to a fixed grid
    ([Float.round (x /. quantum)] per coordinate), so points closer than
    half a quantum share an entry; with the default 1e-3 quantum on
    unit-cube coordinates the aliasing error is far below the cost
    model's resolution.

    Not thread-safe: one cache per annealing run. *)

type t

val create : ?quantum:float -> capacity:int -> unit -> t
(** [quantum] defaults to 1e-3 (coordinates live in the unit cube).
    Raises [Invalid_argument] on a non-positive capacity or quantum. *)

val find_or_add : t -> float array -> (unit -> float) -> float
(** [find_or_add t point f] returns the cached value for [point]'s
    quantized key, or runs [f], stores its result (evicting the
    least-recently-used entry when over capacity) and returns it. *)

val hits : t -> int
val lookups : t -> int

val hit_rate : t -> float
(** [hits / lookups], 0 before the first lookup. *)

val length : t -> int
(** Entries currently stored (≤ capacity). *)

val capacity : t -> int
val clear : t -> unit
