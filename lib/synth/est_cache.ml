(* LRU memo table for point evaluations: hash map from the quantized
   sizing vector to a doubly-linked recency list (most recent at the
   front), evicting from the back once over capacity. *)

type node = {
  n_key : int array;
  n_value : float;
  mutable n_prev : node option;  (* toward most-recently-used *)
  mutable n_next : node option;  (* toward least-recently-used *)
}

let c_hits = Ape_obs.counter "est_cache.hits"
let c_misses = Ape_obs.counter "est_cache.misses"
let c_evictions = Ape_obs.counter "est_cache.evictions"

type t = {
  quantum : float;
  capacity : int;
  table : (int array, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable hits : int;
  mutable lookups : int;
}

let create ?(quantum = 1e-3) ~capacity () =
  if capacity <= 0 then invalid_arg "Est_cache.create: capacity <= 0";
  if not (quantum > 0.) then invalid_arg "Est_cache.create: quantum <= 0";
  {
    quantum;
    capacity;
    table = Hashtbl.create (2 * capacity);
    mru = None;
    lru = None;
    hits = 0;
    lookups = 0;
  }

let quantize t point =
  Array.map (fun x -> int_of_float (Float.round (x /. t.quantum))) point

let unlink t n =
  (match n.n_prev with
  | None -> t.mru <- n.n_next
  | Some p -> p.n_next <- n.n_next);
  (match n.n_next with
  | None -> t.lru <- n.n_prev
  | Some s -> s.n_prev <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_prev <- None;
  n.n_next <- t.mru;
  (match t.mru with Some m -> m.n_prev <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let find_or_add t point f =
  t.lookups <- t.lookups + 1;
  let key = quantize t point in
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    Ape_obs.incr c_hits;
    unlink t n;
    push_front t n;
    n.n_value
  | None ->
    Ape_obs.incr c_misses;
    let v = f () in
    let n = { n_key = key; n_value = v; n_prev = None; n_next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    if Hashtbl.length t.table > t.capacity then begin
      match t.lru with
      | Some victim ->
        Ape_obs.incr c_evictions;
        unlink t victim;
        Hashtbl.remove t.table victim.n_key
      | None -> ()
    end;
    v

let hits t = t.hits
let lookups t = t.lookups
let length t = Hashtbl.length t.table
let capacity t = t.capacity

let hit_rate t =
  if t.lookups = 0 then 0. else float_of_int t.hits /. float_of_int t.lookups

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None;
  t.hits <- 0;
  t.lookups <- 0
