(* Concurrent LRU memo table for point evaluations, striped into
   independently-locked shards so parallel-tempering chains share one
   cache without serialising on a single mutex.  Each shard is the old
   single-threaded structure: hash map from the quantized sizing vector
   to a doubly-linked recency list (most recent at the front), evicting
   from the back once over capacity.

   Determinism contract: the stored value must be a pure function of
   the *key*, not of whichever point happened to insert the cell first
   (two points half a quantum apart share a key; under --jobs > 1 the
   first inserter races).  So [find_or_add] evaluates the callback at
   the key's representative point (key * quantum), never at the caller's
   raw point: any racing inserter computes the bit-identical value, and
   an eviction merely forces recomputation of that same value. *)

let c_hits = Ape_obs.counter "est_cache.hits"
let c_misses = Ape_obs.counter "est_cache.misses"
let c_evictions = Ape_obs.counter "est_cache.evictions"

type node = {
  n_key : int array;
  n_value : float;
  mutable n_prev : node option;  (* toward most-recently-used *)
  mutable n_next : node option;  (* toward least-recently-used *)
}

type shard = {
  s_lock : Mutex.t;
  s_capacity : int;
  s_table : (int array, node) Hashtbl.t;
  mutable s_mru : node option;
  mutable s_lru : node option;
  mutable s_hits : int;
  mutable s_lookups : int;
  mutable s_evictions : int;
  sc_hits : Ape_obs.counter;
  sc_misses : Ape_obs.counter;
  sc_evictions : Ape_obs.counter;
}

type t = { quantum : float; shards : shard array }

let default_quantum = 1e-2

let create ?(quantum = default_quantum) ?(shards = 8) ~capacity () =
  if capacity <= 0 then invalid_arg "Est_cache.create: capacity <= 0";
  if shards <= 0 then invalid_arg "Est_cache.create: shards <= 0";
  if not (quantum > 0.) then invalid_arg "Est_cache.create: quantum <= 0";
  let per_shard = Int.max 1 ((capacity + shards - 1) / shards) in
  {
    quantum;
    shards =
      Array.init shards (fun i ->
          {
            s_lock = Mutex.create ();
            s_capacity = per_shard;
            s_table = Hashtbl.create (2 * per_shard);
            s_mru = None;
            s_lru = None;
            s_hits = 0;
            s_lookups = 0;
            s_evictions = 0;
            sc_hits = Ape_obs.counter (Printf.sprintf "est_cache.shard%d.hits" i);
            sc_misses =
              Ape_obs.counter (Printf.sprintf "est_cache.shard%d.misses" i);
            sc_evictions =
              Ape_obs.counter (Printf.sprintf "est_cache.shard%d.evictions" i);
          });
  }

(* int_of_float is undefined on NaN and on values outside the int
   range, and the annealer's cost can be probed on vectors an upstream
   bug or a user-supplied start point made non-finite.  Map each bad
   class to its own reserved key so distinct pathologies don't alias,
   and clamp huge finite quotients (1e18 < max_int on 64-bit). *)
let quantize_coord quantum x =
  if Float.is_nan x then min_int
  else
    let q = Float.round (x /. quantum) in
    if q >= 1e18 then max_int
    else if q <= -1e18 then min_int + 1
    else int_of_float q

let quantize t point = Array.map (quantize_coord t.quantum) point

(* Inverse of [quantize_coord] onto the cell's representative point:
   reserved keys map back to the non-finite value they stand for, so an
   evaluator sees NaN/inf exactly as it would have from the raw point. *)
let representative_coord quantum k =
  if k = min_int then Float.nan
  else if k = max_int then Float.infinity
  else if k = min_int + 1 then Float.neg_infinity
  else float_of_int k *. quantum

let representative t key = Array.map (representative_coord t.quantum) key

let shard_of_key t key =
  t.shards.((Hashtbl.hash key land max_int) mod Array.length t.shards)

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let unlink s n =
  (match n.n_prev with
  | None -> s.s_mru <- n.n_next
  | Some p -> p.n_next <- n.n_next);
  (match n.n_next with
  | None -> s.s_lru <- n.n_prev
  | Some nx -> nx.n_prev <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front s n =
  n.n_prev <- None;
  n.n_next <- s.s_mru;
  (match s.s_mru with Some m -> m.n_prev <- Some n | None -> s.s_lru <- Some n);
  s.s_mru <- Some n

let insert s key v =
  let n = { n_key = key; n_value = v; n_prev = None; n_next = None } in
  Hashtbl.replace s.s_table key n;
  push_front s n;
  if Hashtbl.length s.s_table > s.s_capacity then
    match s.s_lru with
    | Some victim ->
      s.s_evictions <- s.s_evictions + 1;
      Ape_obs.incr c_evictions;
      Ape_obs.incr s.sc_evictions;
      unlink s victim;
      Hashtbl.remove s.s_table victim.n_key
    | None -> ()

let find_or_add t point f =
  let key = quantize t point in
  let s = shard_of_key t key in
  let cached =
    with_lock s.s_lock (fun () ->
        s.s_lookups <- s.s_lookups + 1;
        match Hashtbl.find_opt s.s_table key with
        | Some n ->
          s.s_hits <- s.s_hits + 1;
          Ape_obs.incr c_hits;
          Ape_obs.incr s.sc_hits;
          unlink s n;
          push_front s n;
          Some n.n_value
        | None ->
          Ape_obs.incr c_misses;
          Ape_obs.incr s.sc_misses;
          None)
  in
  match cached with
  | Some v -> v
  | None ->
    (* Evaluate outside the lock so a slow cost function doesn't stall
       the shard.  A racing inserter computed the same value (pure
       function of the key), so losing the race costs nothing. *)
    let v = f (representative t key) in
    with_lock s.s_lock (fun () ->
        match Hashtbl.find_opt s.s_table key with
        | Some n ->
          unlink s n;
          push_front s n
        | None -> insert s key v);
    v

let fold_shards t f =
  Array.fold_left
    (fun acc s -> with_lock s.s_lock (fun () -> acc + f s))
    0 t.shards

let hits t = fold_shards t (fun s -> s.s_hits)
let lookups t = fold_shards t (fun s -> s.s_lookups)
let evictions t = fold_shards t (fun s -> s.s_evictions)
let length t = fold_shards t (fun s -> Hashtbl.length s.s_table)
let capacity t = Array.length t.shards * t.shards.(0).s_capacity
let shards t = Array.length t.shards
let quantum t = t.quantum

let hit_rate t =
  let lookups = lookups t in
  if lookups = 0 then 0. else float_of_int (hits t) /. float_of_int lookups

let clear t =
  Array.iter
    (fun s ->
      with_lock s.s_lock (fun () ->
          Hashtbl.reset s.s_table;
          s.s_mru <- None;
          s.s_lru <- None;
          s.s_hits <- 0;
          s.s_lookups <- 0;
          s.s_evictions <- 0))
    t.shards
