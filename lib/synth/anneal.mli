(** Generic simulated annealing over a box-constrained real vector —
    the optimisation engine of the ASTRX/OBLX substitute (the paper §3:
    "the optimization engine is based on a simulated annealing
    algorithm").

    The state lives in the unit hypercube; problems map it onto their
    parameter ranges.  Moves perturb one coordinate with a
    temperature-scaled Gaussian; the classic Metropolis criterion
    accepts, and a geometric schedule cools. *)

type schedule = {
  t_start : float;  (** initial temperature (cost units) *)
  t_end : float;
  cooling : float;  (** geometric factor per stage, in (0, 1) *)
  moves_per_stage : int;
  max_evaluations : int;  (** hard budget *)
}

val default_schedule : schedule
(** t 1.0 → 1e-4, cooling 0.9, 60 moves/stage, 20 000 evaluations. *)

val quick_schedule : schedule
(** Smaller budget for tests and quick benches. *)

type stats = {
  evaluations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  seconds : float;  (** monotonic-clock wall time *)
  chains : int;  (** 1 for {!optimize} *)
  exchanges : int;  (** replica-exchange attempts *)
  exchange_accepted : int;
}

val optimize :
  ?schedule:schedule ->
  ?stop_below:float ->
  rng:Ape_util.Rng.t ->
  dim:int ->
  cost:(float array -> float) ->
  x0:float array ->
  unit ->
  float array * stats
(** [optimize ~rng ~dim ~cost ~x0 ()] returns the best point found and
    run statistics.  [cost] must accept any point of [[0,1]^dim]; return
    [infinity] (or large values) for unevaluable candidates.  [x0] is
    clamped into the cube.  [stop_below] terminates the run as soon as
    the best cost drops under the threshold (time-to-spec
    measurements). *)

(** {1 Parallel tempering}

    Replica exchange (Swendsen–Wang / Geyer): [chains] Metropolis
    replicas anneal the same cost concurrently, replica [i] at
    [ladder^i] times the cold chain's temperature, all cooling by the
    same geometric schedule.  Every [exchange_period] stages, adjacent
    replicas attempt a state swap with the detailed-balance probability
    [min(1, exp((1/T_cold − 1/T_hot)·(E_cold − E_hot)))] — hot chains
    tunnel between basins and hand good configurations down the ladder,
    which is what makes multi-chain annealing more than K independent
    restarts. *)

type tempering = {
  chains : int;  (** number of replicas, ≥ 1 *)
  exchange_period : int;  (** stages between exchange sweeps, ≥ 1 *)
  ladder : float;  (** temperature ratio between adjacent replicas, > 1 *)
}

val default_tempering : tempering
(** 4 chains, exchange every stage, ladder 1.6. *)

val exchange_probability :
  t_cold:float -> t_hot:float -> e_cold:float -> e_hot:float -> float
(** The replica-exchange acceptance probability above.  Total when the
    hot replica has found the lower cost; 0 when both energies are
    infinite.  Raises [Invalid_argument] on non-positive temperatures. *)

val optimize_tempered :
  ?schedule:schedule ->
  ?stop_below:float ->
  ?tempering:tempering ->
  ?jobs:int ->
  rng:Ape_util.Rng.t ->
  dim:int ->
  cost:(float array -> float) ->
  start:(Ape_util.Rng.t -> float array) ->
  unit ->
  float array * stats
(** Multi-chain variant of {!optimize}.  [start] produces each
    replica's starting point from that replica's private RNG stream
    (random-start problems give every chain a different basin; a
    constant function pins them all to one point).  [cost] must be
    thread-safe: chains evaluate it concurrently from [jobs] domains
    (a persistent {!Ape_util.Pool}; [jobs = 1] runs every chain on the
    calling domain).  [max_evaluations] and [stop_below] are enforced
    per chain at move granularity and globally at round barriers.

    {b Determinism:} for a fixed [rng] seed, [chains] and schedule, the
    returned point and every stats field except [seconds] are
    bit-identical for any [jobs] — replicas draw from per-chain
    {!Ape_util.Rng.split_n} streams, exchange decisions from their own
    stream on the calling domain, and a shared {!Est_cache} can only
    memoise values that are pure functions of the cache key. *)
