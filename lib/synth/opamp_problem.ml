module N = Ape_circuit.Netlist
module I = Ape_util.Interval
module Proc = Ape_process.Process
module E = Ape_estimator
module Mos = Ape_device.Mos
module Rmat = Ape_util.Matrix.Rmat

type row = {
  name : string;
  gain : float;
  ugf : float;
  area : float;
  ibias : float;
  curr_src : E.Bias.mirror_topology;
  buffer : bool;
  zout : float option;
  cl : float;
}

(* APE designs with a 50 % UGF margin when handing off to synthesis:
   the detailed simulation realises ~20 % less bandwidth than the
   square-law estimate (moderate inversion + junction parasitics), and
   the ±20 % search window must contain a satisfying point. *)
let ape_design process row =
  E.Opamp.design process
    (E.Opamp.spec ~buffer:row.buffer ?zout:row.zout
       ~bias_topology:row.curr_src ~cl:row.cl ~area_max:row.area
       ~av:row.gain ~ugf:(1.5 *. row.ugf) ~ibias:row.ibias ())

(* The uninformed starting design for standalone runs: the topology is
   selected (as ASTRX requires) but sized for a neutral low-spec point,
   so no APE knowledge about the actual requirements leaks in. *)
let strawman_design process row =
  E.Opamp.design process
    (E.Opamp.spec ~buffer:row.buffer ?zout:row.zout
       ~bias_topology:row.curr_src ~cl:row.cl ~av:20. ~ugf:1e6
       ~ibias:row.ibias ())

type mode = Wide | Ape_centered of float

type problem = {
  row : row;
  mode : mode;
  dim : int;
  cost : float array -> float;
  start : Ape_util.Rng.t -> float array;
  final : float array -> N.t * Cost.measurement option;
  values : float array -> (string * float) list;
  cost_model : Cost.t;
  cache : Est_cache.t;
}

(* Deterministic element names produced by the estimator's elaboration;
   see Diff_pair.fragment / Bias.Current_mirror.fragment /
   Opamp.fragment. *)
let width_groups (design : E.Opamp.design) =
  let tail_groups =
    match design.E.Opamp.spec.E.Opamp.bias_topology with
    | E.Bias.Simple ->
      [ ("w_tail_in", [ "d1.tail.M1" ]); ("w_tail_out", [ "d1.tail.M2" ]) ]
    | E.Bias.Cascode ->
      [
        ("w_tail_in", [ "d1.tail.M1"; "d1.tail.M2" ]);
        ("w_tail_out", [ "d1.tail.M3"; "d1.tail.M4" ]);
      ]
    | E.Bias.Wilson ->
      [
        ("w_tail_in", [ "d1.tail.M1" ]);
        ("w_tail_out", [ "d1.tail.M2"; "d1.tail.M3" ]);
      ]
  in
  let stage_groups =
    match (design.E.Opamp.stage2, design.E.Opamp.buffer) with
    | Some _, Some _ ->
      [
        ("w_cs2", [ "M1" ]);
        ("w_cs2_sink", [ "M2" ]);
        ("w_buf", [ "M3" ]);
        ("w_buf_sink", [ "M4" ]);
      ]
    | Some _, None -> [ ("w_cs2", [ "M1" ]); ("w_cs2_sink", [ "M2" ]) ]
    | None, Some _ -> [ ("w_buf", [ "M1" ]); ("w_buf_sink", [ "M2" ]) ]
    | None, None -> []
  in
  [ ("w_pair", [ "d1.M1"; "d1.M2" ]); ("w_load", [ "d1.M3"; "d1.M4" ]) ]
  @ tail_groups @ stage_groups

(* Current geometry of the first element of a group (members match). *)
let group_geom netlist names =
  match names with
  | [] -> invalid_arg "group_geom: empty group"
  | first :: _ -> (
    match
      List.find_opt
        (fun e -> String.equal (N.element_name e) first)
        (N.elements netlist)
    with
    | Some (N.Mosfet { geom; _ }) -> geom
    | Some _ | None ->
      invalid_arg (Printf.sprintf "group_geom: %s not a mosfet" first))

let element_value netlist name =
  List.find_map
    (fun e ->
      if String.equal (N.element_name e) name then
        match e with
        | N.Capacitor { c; _ } -> Some c
        | N.Resistor { r; _ } -> Some r
        | N.Mosfet _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ ->
          None
      else None)
    (N.elements netlist)

let testbench (process : Proc.t) row (design : E.Opamp.design) =
  let frag = E.Opamp.fragment process design in
  let netlist = E.Fragment.with_supply ~vdd:process.Proc.vdd frag in
  let vcm = design.E.Opamp.input_cm in
  N.append netlist
    [
      N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vcm; ac = 0.5 };
      N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vcm; ac = -0.5 };
      N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = row.cl };
    ]

let measure_netlist ?(out_dc_target = 2.5) (process : Proc.t) row netlist =
  ignore row;
  ignore process;
  match Ape_spice.Dc.solve netlist with
  | exception Ape_spice.Dc.No_convergence _ -> None
  | op ->
    (* One AC preparation serves the gain and the UGF search. *)
    let prep = Ape_spice.Ac.prepare op in
    let gain = Ape_spice.Measure.Prepared.dc_gain ~out:"out" prep in
    let base =
      [
        ("gain", gain);
        ("area", N.gate_area netlist);
        ("power", Ape_spice.Dc.static_power op ~supply:"VDD");
        ( "vout_center",
          Float.abs (Ape_spice.Dc.voltage op "out" -. out_dc_target) );
      ]
    in
    let ugf =
      if gain <= 1. then None
      else
        Ape_spice.Measure.Prepared.unity_gain_frequency ~fmin:1e3 ~fmax:1e9
          ~out:"out" prep
    in
    Some (match ugf with Some u -> ("ugf", u) :: base | None -> base)

(* The size/passive template shared by both modes. *)
let size_template (process : Proc.t) ~mode base design =
  let wmin = process.Proc.wmin and wmax = 500e-6 in
  let make_param ~name ~current ~wide_range target =
    match mode with
    | Wide -> Template.param ~name ~range:wide_range target
    | Ape_centered pct ->
      (* Physical floors keep wide windows (pct >= 1) out of zero or
         sub-minimum geometry. *)
      let floor_v = I.lo wide_range in
      let centered = I.of_center ~pct current in
      let lo = Float.max floor_v (I.lo centered) in
      let hi = Float.max (lo *. 1.000001) (I.hi centered) in
      Template.param ~log_scale:false ~name ~range:(I.make lo hi) target
  in
  (* ASTRX sets the transistor *sizes* as unknowns: both W and L of
     every matched group. *)
  let params =
    List.concat_map
      (fun (name, members) ->
        let geom = group_geom base members in
        [
          make_param ~name ~current:geom.Mos.w
            ~wide_range:(I.make wmin wmax)
            (Template.Mos_width members);
          make_param ~name:(name ^ "_l") ~current:geom.Mos.l
            ~wide_range:(I.make process.Proc.lmin (12. *. process.Proc.lmin))
            (Template.Mos_length members);
        ])
      (width_groups design)
  in
  let params =
    match element_value base "C1" with
    | Some current ->
      params
      @ [
          make_param ~name:"c_comp" ~current
            ~wide_range:(I.make 0.1e-12 100e-12)
            (Template.Cap_value [ "C1" ]);
        ]
    | None -> params
  in
  let params =
    if design.E.Opamp.stage2 <> None && element_value base "R1" <> None then
      let current = Option.get (element_value base "R1") in
      params
      @ [
          make_param ~name:"r_z" ~current
            ~wide_range:(I.make 10. 100e3)
            (Template.Res_value [ "R1" ]);
        ]
    else params
  in
  let current = Option.get (element_value base "d1.tail.R1") in
  params
  @ [
      make_param ~name:"r_bias" ~current
        ~wide_range:(I.make 10e3 10e6)
        (Template.Res_value [ "d1.tail.R1" ]);
    ]

let build ?cache ?cache_quantum ?(cache_capacity = 8192) ?calibration
    (process : Proc.t) ~mode row design =
  let vdd = process.Proc.vdd in
  let base = testbench process row design in
  let template = Template.make base (size_template process ~mode base design) in
  let n_sizes = Template.dim template in
  (* OBLX-style bias relaxation; the APE centres come from a true DC
     solve of the APE-sized circuit (APE hands the optimiser its
     operating points, paper §3). *)
  let relax =
    Relax.create
      ~mode:(match mode with Wide -> `Wide | Ape_centered _ -> `Centered)
      ~vdd base
  in
  let n_free = Relax.n_free relax in
  let dim = n_sizes + n_free in
  let out_dc_target = design.E.Opamp.output_dc in
  (* The in-loop model aims slightly above the verdict thresholds: the
     relaxed AWE evaluation is a few percent optimistic relative to the
     full measurement, and early-stop must only fire on comfortably
     satisfying points. *)
  let cost_model =
    Cost.make
      [
        Cost.at_least ~weight:2. "gain" (1.05 *. row.gain);
        Cost.at_least ~weight:2. "ugf" (1.08 *. row.ugf);
        Cost.at_most ~weight:1. "area" row.area;
        Cost.at_most ~weight:1.5 "vout_center" 0.8;
      ]
      [ Cost.minimize ~weight:0.02 "area" ~scale:row.area ]
  in
  let split point =
    (Array.sub point 0 n_sizes, Array.sub point n_sizes n_free)
  in
  (* In-loop calibration corrects the AWE *estimates* the annealer
     steers by, narrowing the estimate↔measurement gap the 1.05/1.08
     margins above paper over.  Only the dynamic attributes are
     corrected — area is exact by construction, and the final verdict
     below ([measure_netlist]) always judges the raw measurement. *)
  let correct =
    match calibration with
    | None -> Fun.id
    | Some card ->
      let module Card = Ape_calib.Card in
      let region =
        Card.region_of ~ugf:row.ugf ~ibias:row.ibias ~cl:row.cl
      in
      Cost.calibrate (fun metric v ->
          match metric with
          | "gain" | "ugf" -> Card.apply card ~level:"opamp" ~attr:metric ~region v
          | _ -> v)
  in
  let evaluate_point point =
    let sizes, nodes = split point in
    let nl = Template.instantiate template sizes in
    let x = Relax.x_engine relax nodes in
    let kcl = Relax.kcl_penalty relax nl x in
    (* AWE at the relaxed point (OBLX's evaluation): DC transfer and a
       2-pole unity-gain estimate, one LU of G. *)
    let fake_op = Relax.fake_op relax nl x in
    let measurement =
      match Ape_spice.Awe.pade ~q:2 ~out:"out" fake_op with
      | exception Ape_spice.Awe.Moment_failure _ -> None
      | approx ->
        let gain = Float.abs approx.Ape_spice.Awe.dc_value in
        let base =
          [
            ("gain", gain);
            ("area", N.gate_area nl);
            ( "vout_center",
              Float.abs (Relax.node_voltage relax x "out" -. out_dc_target)
            );
          ]
        in
        Some
          (match Ape_spice.Awe.unity_crossing_hz approx with
          | Some u -> ("ugf", u) :: base
          | None -> base)
    in
    Cost.evaluate cost_model (Option.map correct measurement) +. (3. *. kcl)
  in
  let cache =
    (* A caller-owned cache (the serve scheduler's per-problem warm
       cache, shared across every job with this fingerprint) wins over
       a fresh one; its quantum/capacity were fixed at creation. *)
    match cache with
    | Some c -> c
    | None ->
      Est_cache.create ?quantum:cache_quantum ~capacity:cache_capacity ()
  in
  (* The callback evaluates the quantized cell's representative point,
     not [point] itself, so the memoised value is a pure function of
     the key — a determinism requirement once chains share the cache. *)
  let cost point = Est_cache.find_or_add cache point evaluate_point in
  let start rng =
    match mode with
    | Wide -> Array.init dim (fun _ -> Ape_util.Rng.uniform rng 0. 1.)
    | Ape_centered _ ->
      let node_units = Relax.centers_unit relax in
      Array.init dim (fun k ->
          if k < n_sizes then 0.5 else node_units.(k - n_sizes))
  in
  let final point =
    let sizes, _ = split point in
    let nl = Template.instantiate template sizes in
    (nl, measure_netlist ~out_dc_target process row nl)
  in
  let values point =
    let sizes, _ = split point in
    Template.values_of_point template sizes
  in
  { row; mode; dim; cost; start; final; values; cost_model; cache }
