module N = Ape_circuit.Netlist
module Proc = Ape_process.Process
module Dc = Ape_spice.Dc
module Measure = Ape_spice.Measure

exception Verification_failed of string

let rebuild netlist found elements =
  if not found then raise Not_found;
  N.make ~title:netlist.N.title elements

let set_source_dc ~name ~dc netlist =
  let found = ref false in
  let elements =
    List.map
      (fun e ->
        match e with
        | N.Vsource ({ name = n; _ } as v) when String.equal n name ->
          found := true;
          N.Vsource { v with dc }
        | N.Isource ({ name = n; _ } as i) when String.equal n name ->
          found := true;
          N.Isource { i with dc }
        | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Vsource _
        | N.Isource _ | N.Vcvs _ | N.Switch _ ->
          e)
      (N.elements netlist)
  in
  rebuild netlist !found elements

let set_source_ac ~name ~ac netlist =
  let found = ref false in
  let elements =
    List.map
      (fun e ->
        match e with
        | N.Vsource ({ name = n; _ } as v) when String.equal n name ->
          found := true;
          N.Vsource { v with ac }
        | N.Isource ({ name = n; _ } as i) when String.equal n name ->
          found := true;
          N.Isource { i with ac }
        | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Vsource _
        | N.Isource _ | N.Vcvs _ | N.Switch _ ->
          e)
      (N.elements netlist)
  in
  rebuild netlist !found elements

let servo_dc ~source ~out ~target ~lo ~hi netlist =
  let solve dc =
    let nl = set_source_dc ~name:source ~dc netlist in
    (nl, Dc.solve nl)
  in
  let err dc =
    let _, op = solve dc in
    Dc.voltage op out -. target
  in
  let dc =
    try Ape_util.Rootfind.brent ~tol:1e-7 err lo hi with
    | Ape_util.Rootfind.No_bracket ->
      raise
        (Verification_failed
           (Printf.sprintf "servo on %s cannot reach V(%s)=%g" source out
              target))
  in
  solve dc

(* Shared testbench assembly: fragment netlist + VDD source. *)
let with_vdd process fragment =
  Fragment.with_supply ~vdd:process.Proc.vdd fragment

let power op = Dc.static_power op ~supply:"VDD"

let sim_dc_volt (process : Proc.t) (design : Bias.Dc_volt.design) =
  let frag = Bias.Dc_volt.fragment process design in
  let netlist = with_vdd process frag in
  let op = Dc.solve netlist in
  let vout = Dc.voltage op "out" in
  let current = (process.Proc.vdd -. vout) /. design.Bias.Dc_volt.r_bias in
  {
    Perf.empty with
    Perf.gate_area = N.gate_area netlist;
    total_area =
      N.gate_area netlist
      +. Proc.resistor_area process design.Bias.Dc_volt.r_bias;
    dc_power = power op;
    gain = Some vout;
    current = Some current;
  }

let sim_mirror (process : Proc.t) (design : Bias.Current_mirror.design) =
  let frag = Bias.Current_mirror.fragment process design in
  let netlist = with_vdd process frag in
  (* Hold the output at mid-supply and read the sunk current; a 1 A AC
     probe on the same source gives the output resistance. *)
  let netlist =
    N.append netlist
      [
        N.Vsource
          { name = "VOUT"; p = "out"; n = N.ground; dc = 2.5; ac = 0. };
      ]
  in
  let op = Dc.solve netlist in
  let iout =
    match Dc.branch_current op "VOUT" with
    | Some i -> Float.abs i
    | None -> raise (Verification_failed "mirror: VOUT branch missing")
  in
  (* Output resistance: finite-difference the output current against the
     output voltage. *)
  let dv = 0.2 in
  let op_hi = Dc.solve (set_source_dc ~name:"VOUT" ~dc:(2.5 +. dv) netlist) in
  let i_hi =
    match Dc.branch_current op_hi "VOUT" with
    | Some i -> Float.abs i
    | None -> iout
  in
  let rout = if i_hi = iout then infinity else dv /. (i_hi -. iout) in
  {
    Perf.empty with
    Perf.gate_area = N.gate_area netlist;
    total_area =
      N.gate_area netlist
      +. Proc.resistor_area process design.Bias.Current_mirror.r_bias;
    dc_power = power op;
    current = Some iout;
    zout = Some (Float.abs rout);
  }

let sim_gain_stage (process : Proc.t) (design : Gain_stage.design) =
  let frag = Gain_stage.fragment process design in
  let netlist = with_vdd process frag in
  let netlist =
    N.append netlist
      [
        N.Vsource
          {
            name = "VIN";
            p = "in";
            n = N.ground;
            dc = design.Gain_stage.input_dc;
            ac = 1.;
          };
        N.Capacitor
          { name = "CL"; a = "out"; b = N.ground; c = design.Gain_stage.spec.Gain_stage.cl };
      ]
  in
  let netlist, op =
    if design.Gain_stage.needs_servo then
      servo_dc ~source:"VIN" ~out:"out" ~target:design.Gain_stage.output_dc
        ~lo:(design.Gain_stage.input_dc -. 0.5)
        ~hi:(design.Gain_stage.input_dc +. 0.5)
        netlist
    else (netlist, Dc.solve netlist)
  in
  (* One AC preparation serves the gain and both frequency searches. *)
  let prep = Ape_spice.Ac.prepare op in
  let signed_gain = Measure.Prepared.dc_gain_signed ~out:"out" prep in
  let ugf = Measure.Prepared.unity_gain_frequency ~out:"out" prep in
  let bw = Measure.Prepared.f_minus_3db ~out:"out" prep in
  (* Output impedance: null the input drive, inject 1 A AC at the
     output. *)
  let zout =
    let nl = set_source_ac ~name:"VIN" ~ac:0. netlist in
    let nl =
      N.append nl
        [
          N.Isource { name = "IPROBE"; p = "out"; n = N.ground; dc = 0.; ac = 1. };
        ]
    in
    let opz = Dc.solve nl in
    Measure.output_impedance_magnitude ~out:"out" ~freq:1.0 opz
  in
  {
    Perf.empty with
    Perf.gate_area = N.gate_area netlist;
    total_area = N.gate_area netlist;
    dc_power = power op;
    gain = Some signed_gain;
    ugf;
    bandwidth = bw;
    zout = Some zout;
    current = design.Gain_stage.perf.Perf.current;
  }

let sim_opamp ?(slew = true) (process : Proc.t) (design : Opamp.design) =
  let frag = Opamp.fragment process design in
  let netlist = with_vdd process frag in
  let vcm = design.Opamp.input_cm in
  let cl = design.Opamp.spec.Opamp.cl in
  let base =
    N.append netlist
      [
        N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vcm; ac = 0.5 };
        N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vcm; ac = -0.5 };
        N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = cl };
      ]
  in
  let solve_with_offset off =
    let nl = set_source_dc ~name:"VINP" ~dc:(vcm +. (off /. 2.)) base in
    let nl = set_source_dc ~name:"VINN" ~dc:(vcm -. (off /. 2.)) nl in
    (nl, Dc.solve nl)
  in
  let err off =
    let _, op = solve_with_offset off in
    Dc.voltage op "out" -. design.Opamp.output_dc
  in
  let offset =
    try Ape_util.Rootfind.brent ~tol:1e-10 err (-0.3) 0.3 with
    | Ape_util.Rootfind.No_bracket -> 0.
  in
  let netlist, op = solve_with_offset offset in
  let prep = Ape_spice.Ac.prepare op in
  let adm = Measure.Prepared.dc_gain ~out:"out" prep in
  let ugf = Measure.Prepared.unity_gain_frequency ~out:"out" prep in
  let pm = Measure.Prepared.phase_margin ~out:"out" prep in
  let acm =
    let nl = set_source_ac ~name:"VINP" ~ac:1. netlist in
    let nl = set_source_ac ~name:"VINN" ~ac:1. nl in
    Measure.dc_gain ~out:"out" (Dc.solve nl)
  in
  let cmrr = if acm > 0. then adm /. acm else infinity in
  let zout =
    let nl = set_source_ac ~name:"VINP" ~ac:0. netlist in
    let nl = set_source_ac ~name:"VINN" ~ac:0. nl in
    let nl =
      N.append nl
        [ N.Isource { name = "IPROBE"; p = "out"; n = N.ground; dc = 0.; ac = 1. } ]
    in
    Measure.output_impedance_magnitude ~out:"out" ~freq:1.0 (Dc.solve nl)
  in
  (* Bias reference current: the drop across the tail mirror's reference
     resistor (named R1 inside the spliced tail instance). *)
  let ibias =
    let v_ref = Dc.voltage op "d1.tail.min" in
    (process.Proc.vdd -. v_ref)
    /. design.Opamp.diff.Diff_pair.tail.Bias.Current_mirror.r_bias
  in
  let slew_rate =
    if not slew then None
    else begin
      (* Unity-feedback buffer: a 0 V source wires out to inn; step the
         positive input and watch the output ramp. *)
      let nl =
        N.append netlist
          [
            N.Vsource { name = "VFB"; p = "out"; n = "inn"; dc = 0.; ac = 0. };
          ]
      in
      let nl = set_source_ac ~name:"VINP" ~ac:0. nl in
      (* DC-bias the step input at its t=0 level so the transient starts
         from equilibrium. *)
      let nl = set_source_dc ~name:"VINP" ~dc:(vcm -. 0.5) nl in
      (* Detach VINN's drive: the feedback wire now sets inn. *)
      let nl =
        N.make ~title:nl.N.title
          (List.filter
             (fun e ->
               not (String.equal (N.element_name e) "VINN"))
             (N.elements nl))
      in
      match Dc.solve nl with
      | exception Dc.No_convergence _ -> None
      | op_fb ->
        let est_sr = Float.max 1e3 design.Opamp.slew_rate in
        let tstop = Ape_util.Float_ext.clamp ~lo:1e-7 ~hi:1e-3 (4. /. est_sr) in
        let dt = tstop /. 600. in
        let step_wave =
          Ape_spice.Transient.step ~t0:(2. *. dt)
            ~low:(vcm -. 0.5) ~high:(vcm +. 0.5) ()
        in
        (match
           Ape_spice.Transient.run
             ~stimulus:[ ("VINP", step_wave) ]
             ~tstop ~dt op_fb
         with
        | exception Ape_spice.Transient.Step_failed _ -> None
        | result ->
          (* 10 %→90 % transition slope, immune to capacitive
             feedthrough spikes at the step edge. *)
          let lo = vcm -. 0.5 +. 0.1 and hi = vcm -. 0.5 +. 0.9 in
          let t10 = Ape_spice.Transient.crossing_time result "out" ~level:lo in
          let t90 = Ape_spice.Transient.crossing_time result "out" ~level:hi in
          (match (t10, t90) with
          | Some t10, Some t90 when t90 > t10 -> Some (0.8 /. (t90 -. t10))
          | _ -> Some (Ape_spice.Transient.max_slope result "out")))
    end
  in
  {
    Perf.empty with
    Perf.gate_area = N.gate_area netlist;
    total_area = N.gate_area netlist;
    dc_power = power op;
    gain = Some adm;
    ugf;
    cmrr = Some cmrr;
    zout = Some zout;
    current = Some ibias;
    offset = Some offset;
    slew_rate;
    phase_margin = pm;
  }

let sim_diff_pair (process : Proc.t) (design : Diff_pair.design) =
  let frag = Diff_pair.fragment process design in
  let netlist = with_vdd process frag in
  let vcm = design.Diff_pair.input_cm in
  let cl = design.Diff_pair.spec.Diff_pair.cl in
  let netlist =
    N.append netlist
      [
        N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vcm; ac = 0.5 };
        N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vcm; ac = -0.5 };
        N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = cl };
      ]
  in
  (* Servo the differential offset so the output sits at its intended
     level (real benches do the same with a feedback loop). *)
  let solve_with_offset off =
    let nl = set_source_dc ~name:"VINP" ~dc:(vcm +. (off /. 2.)) netlist in
    let nl = set_source_dc ~name:"VINN" ~dc:(vcm -. (off /. 2.)) nl in
    (nl, Dc.solve nl)
  in
  let err off =
    let _, op = solve_with_offset off in
    Dc.voltage op "out" -. design.Diff_pair.output_dc
  in
  let offset =
    try Ape_util.Rootfind.brent ~tol:1e-9 err (-0.3) 0.3 with
    | Ape_util.Rootfind.No_bracket -> 0.
  in
  let netlist, op = solve_with_offset offset in
  let prep = Ape_spice.Ac.prepare op in
  let adm = Measure.Prepared.dc_gain ~out:"out" prep in
  let signed_adm = Measure.Prepared.dc_gain_signed ~out:"out" prep in
  let ugf = Measure.Prepared.unity_gain_frequency ~out:"out" prep in
  (* Common-mode run: both inputs driven in phase. *)
  let acm =
    let nl = set_source_ac ~name:"VINP" ~ac:1. netlist in
    let nl = set_source_ac ~name:"VINN" ~ac:1. nl in
    let opc = Dc.solve nl in
    Measure.dc_gain ~out:"out" opc
  in
  let cmrr = if acm > 0. then adm /. acm else infinity in
  let noise =
    match Ape_spice.Noise.input_referred_prepared ~out:"out" ~freq:1e3 prep with
    | v -> Some v
    | exception Division_by_zero -> None
  in
  {
    Perf.empty with
    Perf.gate_area = N.gate_area netlist;
    total_area = N.gate_area netlist;
    dc_power = power op;
    gain = Some signed_adm;
    ugf;
    cmrr = Some cmrr;
    current = design.Diff_pair.perf.Perf.current;
    offset = Some offset;
    noise;
  }

(* Perturb every MOSFET's threshold with a Pelgrom-distributed sample. *)
let jitter_thresholds rng netlist =
  let elements =
    List.map
      (fun e ->
        match e with
        | N.Mosfet ({ card; geom; _ } as m) ->
          let sigma =
            card.Ape_process.Model_card.avt
            /. Float.sqrt (Ape_device.Mos.gate_area geom)
          in
          let delta = Ape_util.Rng.gauss rng ~mean:0. ~sigma in
          N.Mosfet
            {
              m with
              card =
                {
                  card with
                  Ape_process.Model_card.vto =
                    card.Ape_process.Model_card.vto +. delta;
                };
            }
        | N.Resistor _ | N.Capacitor _ | N.Vsource _ | N.Isource _
        | N.Vcvs _ | N.Switch _ ->
          e)
      (N.elements netlist)
  in
  N.make ~title:netlist.N.title elements

let monte_carlo_offset ?(runs = 25) ?(seed = 1) (process : Proc.t)
    (design : Diff_pair.design) =
  let frag = Diff_pair.fragment process design in
  let netlist = with_vdd process frag in
  let vcm = design.Diff_pair.input_cm in
  let netlist =
    N.append netlist
      [
        N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vcm; ac = 0. };
        N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vcm; ac = 0. };
        N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = 1e-12 };
      ]
  in
  let rng = Ape_util.Rng.create seed in
  let offsets =
    List.init runs (fun _ ->
        let sample = jitter_thresholds rng netlist in
        let solve_with_offset off =
          let nl = set_source_dc ~name:"VINP" ~dc:(vcm +. (off /. 2.)) sample in
          let nl = set_source_dc ~name:"VINN" ~dc:(vcm -. (off /. 2.)) nl in
          Dc.solve nl
        in
        let err off =
          Dc.voltage (solve_with_offset off) "out"
          -. design.Diff_pair.output_dc
        in
        try Some (Ape_util.Rootfind.brent ~tol:1e-8 err (-0.08) 0.08) with
        | Ape_util.Rootfind.No_bracket -> None
        | Dc.No_convergence _ -> None)
    |> List.filter_map Fun.id
  in
  match offsets with
  | [] -> 0.
  | _ ->
    let n = float_of_int (List.length offsets) in
    let mean = List.fold_left ( +. ) 0. offsets /. n in
    let var =
      List.fold_left
        (fun acc o -> acc +. ((o -. mean) *. (o -. mean)))
        0. offsets
      /. Float.max 1. (n -. 1.)
    in
    Float.sqrt var

(* ------------------------------------------------------------------ *)
(* Level-4 module verification.                                        *)
(* ------------------------------------------------------------------ *)

type module_sim = {
  perf : Perf.t;
  response_time : float option;
  f0 : float option;
  f_20db : float option;
  dc_code_error : float option;
}

let module_sim_of_perf perf =
  { perf; response_time = None; f0 = None; f_20db = None; dc_code_error = None }

let signed_gain = Measure.dc_gain_signed

(* Audio amplifier: open-loop AC testbench on the trimmed two-stage
   core. *)
let sim_audio process (d : Audio_amp.design) =
  let frag = Audio_amp.fragment process d in
  let netlist = with_vdd process frag in
  let core = d.Audio_amp.opamp in
  let vcm = core.Opamp.input_cm in
  let netlist =
    N.append netlist
      [
        N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vcm; ac = 0.5 };
        N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vcm; ac = -0.5 };
        N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = 10e-12 };
      ]
  in
  let solve_with_offset off =
    let nl = set_source_dc ~name:"VINP" ~dc:(vcm +. (off /. 2.)) netlist in
    let nl = set_source_dc ~name:"VINN" ~dc:(vcm -. (off /. 2.)) nl in
    Dc.solve nl
  in
  (* The trim divider already centres the output; servo the residual. *)
  let err off =
    Dc.voltage (solve_with_offset off) "out" -. (process.Proc.vdd /. 2.)
  in
  let offset =
    try Ape_util.Rootfind.brent ~tol:1e-10 err (-0.3) 0.3 with
    | Ape_util.Rootfind.No_bracket -> 0.
  in
  let op = solve_with_offset offset in
  let prep = Ape_spice.Ac.prepare op in
  let gain = Measure.Prepared.dc_gain ~out:"out" prep in
  let bw = Measure.Prepared.f_minus_3db ~out:"out" prep in
  let ugf = Measure.Prepared.unity_gain_frequency ~out:"out" prep in
  module_sim_of_perf
    {
      Perf.empty with
      Perf.gate_area = N.gate_area netlist;
      total_area = N.gate_area netlist;
      dc_power = power op;
      gain = Some gain;
      bandwidth = bw;
      ugf;
      offset = Some offset;
    }

let sim_closed process (d : Closed_loop.design) =
  let frag = Closed_loop.fragment process d in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let in_ports =
    match d.Closed_loop.spec.Closed_loop.kind with
    | Closed_loop.Adder { gains } ->
      List.mapi (fun i _ -> Printf.sprintf "in%d" (i + 1)) gains
    | Closed_loop.Inverting _ | Closed_loop.Non_inverting _
    | Closed_loop.Integrator _ ->
      [ "in" ]
  in
  let sources =
    List.mapi
      (fun i port ->
        N.Vsource
          {
            name = Printf.sprintf "VIN%d" (i + 1);
            p = port;
            n = N.ground;
            dc = vmid;
            ac = (if i = 0 then 1. else 0.);
          })
      in_ports
  in
  let netlist =
    N.append netlist
      (sources
      @ [
          N.Capacitor
            {
              name = "CL";
              a = "out";
              b = N.ground;
              c = d.Closed_loop.spec.Closed_loop.cl;
            };
        ])
  in
  let op = Dc.solve netlist in
  let gain, bw =
    match d.Closed_loop.spec.Closed_loop.kind with
    | Closed_loop.Integrator { f_unity } ->
      (* Gain magnitude at the unity frequency; "bandwidth" is the
         frequency where the response crosses 1. *)
      let g = Measure.gain_at ~out:"out" op f_unity in
      let f1 = Measure.unity_gain_frequency ~fmin:1. ~out:"out" op in
      (-.g, f1)
    | Closed_loop.Inverting _ | Closed_loop.Non_inverting _
    | Closed_loop.Adder _ ->
      (signed_gain ~out:"out" op, Measure.f_minus_3db ~out:"out" op)
  in
  module_sim_of_perf
    {
      Perf.empty with
      Perf.gate_area = N.gate_area netlist;
      total_area = N.gate_area netlist;
      dc_power = power op;
      gain = Some gain;
      bandwidth = bw;
    }

let sim_lpf process (d : Filter.lp_design) =
  let frag = Filter.fragment_lp process d in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let netlist =
    N.append netlist
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = vmid; ac = 1. } ]
  in
  let op = Dc.solve netlist in
  let fc = d.Filter.lp_spec.Filter.f_cutoff in
  let prep = Ape_spice.Ac.prepare op in
  let gain = Measure.Prepared.dc_gain ~out:"out" prep in
  let f3 =
    Measure.Prepared.f_minus_3db ~fmin:(fc /. 100.) ~fmax:(fc *. 100.)
      ~out:"out" prep
  in
  let f20 =
    Measure.Prepared.f_level_db ~fmin:(fc /. 100.) ~fmax:(fc *. 100.)
      ~level_db:(-20.) ~out:"out" prep
  in
  {
    (module_sim_of_perf
       {
         Perf.empty with
         Perf.gate_area = N.gate_area netlist;
         total_area = N.gate_area netlist;
         dc_power = power op;
         gain = Some gain;
         bandwidth = f3;
       })
    with
    f_20db = f20;
  }

let sim_bpf process (d : Filter.bp_design) =
  let frag = Filter.fragment_bp process d in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let netlist =
    N.append netlist
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = vmid; ac = 1. } ]
  in
  let op = Dc.solve netlist in
  let f0_spec = d.Filter.bp_spec.Filter.f_center in
  let bp =
    Measure.bandpass_characteristics ~fmin:(f0_spec /. 100.)
      ~fmax:(f0_spec *. 100.) ~out:"out" op
  in
  let gain, bw, f0 =
    match bp with
    | Some b ->
      (Some b.Measure.peak_gain, Some b.Measure.bandwidth, Some b.Measure.f_center)
    | None -> (None, None, None)
  in
  {
    (module_sim_of_perf
       {
         Perf.empty with
         Perf.gate_area = N.gate_area netlist;
         total_area = N.gate_area netlist;
         dc_power = power op;
         gain;
         bandwidth = bw;
       })
    with
    f0;
  }

let sim_sample_hold process (d : Sample_hold.design) =
  let frag = Sample_hold.fragment process d in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let netlist =
    N.append netlist
      [
        N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = vmid; ac = 1. };
        N.Vsource
          { name = "VCTRL"; p = "ctrl"; n = N.ground; dc = process.Proc.vdd; ac = 0. };
        N.Capacitor { name = "CLOAD"; a = "out"; b = N.ground; c = 10e-12 };
      ]
  in
  let op = Dc.solve netlist in
  let prep = Ape_spice.Ac.prepare op in
  let gain = Measure.Prepared.dc_gain ~out:"out" prep in
  let bw = Measure.Prepared.f_minus_3db ~out:"out" prep in
  (* Acquisition: step the input by 0.4 V in track mode, settle to 1 %. *)
  let t_est = Float.max 1e-6 d.Sample_hold.response_time_est in
  let tstop = 6. *. t_est in
  let dt = tstop /. 900. in
  let dv = 0.4 in
  let response_time, slew =
    match
      Ape_spice.Transient.run
        ~stimulus:
          [ ("VIN", Ape_spice.Transient.step ~t0:(5. *. dt) ~low:vmid ~high:(vmid +. dv) ()) ]
        ~tstop ~dt op
    with
    | exception Ape_spice.Transient.Step_failed _ -> (None, None)
    | result ->
      (* Settle to the waveform's own final value (the large-signal gain
         compresses slightly relative to the small-signal measurement). *)
      let v0 = Ape_spice.Transient.value_at result "out" 0. in
      let final = Ape_spice.Transient.value_at result "out" tstop in
      let swing = Float.abs (final -. v0) in
      let settle =
        if swing < 1e-3 then None
        else
          Ape_spice.Transient.settling_time result "out" ~final
            ~band:(0.02 *. swing /. Float.abs final)
      in
      let settle = Option.map (fun t -> t -. (5. *. dt)) settle in
      (settle, Some (Ape_spice.Transient.max_slope result "out"))
  in
  {
    (module_sim_of_perf
       {
         Perf.empty with
         Perf.gate_area = N.gate_area netlist;
         total_area = N.gate_area netlist;
         dc_power = power op;
         gain = Some gain;
         bandwidth = bw;
         slew_rate = slew;
       })
    with
    response_time;
  }

let sim_comparator process (d : Data_conv.Comparator.design) =
  let frag = Data_conv.Comparator.fragment process d in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let od = d.Data_conv.Comparator.spec.Data_conv.Comparator.overdrive in
  let netlist =
    N.append netlist
      [
        N.Vsource { name = "VINP"; p = "inp"; n = N.ground; dc = vmid -. od; ac = 0. };
        N.Vsource { name = "VINN"; p = "inn"; n = N.ground; dc = vmid; ac = 0. };
        N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = 0.5e-12 };
      ]
  in
  let op = Dc.solve netlist in
  let t_est = Float.max 1e-8 d.Data_conv.Comparator.delay_est in
  let tstop = 8. *. t_est in
  let dt = tstop /. 800. in
  let t0 = 5. *. dt in
  let wave =
    Ape_spice.Transient.step ~t0 ~low:(vmid -. od) ~high:(vmid +. od) ()
  in
  let response_time =
    match
      Ape_spice.Transient.run ~stimulus:[ ("VINP", wave) ] ~tstop ~dt op
    with
    | exception Ape_spice.Transient.Step_failed _ -> None
    | result -> (
      match
        Ape_spice.Transient.crossing_time result "out" ~level:vmid
      with
      | Some t when t > t0 -> Some (t -. t0)
      | Some _ | None -> None)
  in
  {
    (module_sim_of_perf
       {
         Perf.empty with
         Perf.gate_area = N.gate_area netlist;
         total_area = N.gate_area netlist;
         dc_power = power op;
       })
    with
    response_time;
  }

let sim_flash_adc process (d : Data_conv.Flash_adc.design) =
  let frag = Data_conv.Flash_adc.fragment process d in
  (* The converter's "out" port aliases the mid comparator's output node
     (named dN inside the fragment). *)
  let out_node = Fragment.port frag "out" in
  let netlist = with_vdd process frag in
  let vmid = process.Proc.vdd /. 2. in
  let netlist =
    N.append netlist
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = vmid; ac = 0. } ]
  in
  let op = Dc.solve netlist in
  let static_perf =
    {
      Perf.empty with
      Perf.gate_area = N.gate_area netlist;
      total_area = N.gate_area netlist;
      dc_power = power op;
    }
  in
  (* Mid-code trip point: bisect the input for the mid comparator's
     output crossing. *)
  let spec_adc = d.Data_conv.Flash_adc.spec in
  let bits = spec_adc.Data_conv.Flash_adc.bits in
  let lsb =
    (spec_adc.Data_conv.Flash_adc.vref_hi
    -. spec_adc.Data_conv.Flash_adc.vref_lo)
    /. float_of_int (1 lsl bits)
  in
  let mid_level =
    spec_adc.Data_conv.Flash_adc.vref_lo
    +. (float_of_int (1 lsl (bits - 1)) *. lsb)
  in
  let trip =
    let err vin =
      let nl = set_source_dc ~name:"VIN" ~dc:vin netlist in
      Dc.voltage (Dc.solve nl) out_node -. vmid
    in
    try
      Some
        (Ape_util.Rootfind.brent ~tol:1e-6 err (mid_level -. lsb)
           (mid_level +. lsb))
    with
    | Ape_util.Rootfind.No_bracket -> None
  in
  let dc_code_error =
    Option.map (fun t -> Float.abs (t -. mid_level) /. lsb) trip
  in
  (* Delay: one comparator's step response (all comparators are
     identical; simulating 2^n of them in transient buys nothing). *)
  let comp_sim = sim_comparator process d.Data_conv.Flash_adc.comparator in
  {
    (module_sim_of_perf static_perf) with
    response_time = comp_sim.response_time;
    dc_code_error;
  }

let sim_dac process (d : Data_conv.Dac.design) =
  let frag = Data_conv.Dac.fragment process d in
  let netlist = with_vdd process frag in
  let bits = d.Data_conv.Dac.spec.Data_conv.Dac.bits in
  let vdd = process.Proc.vdd in
  (* Code 100..0 (MSB set): ideal output = VDD/2. *)
  let sources =
    List.init bits (fun k ->
        N.Vsource
          {
            name = Printf.sprintf "VB%d" k;
            p = Printf.sprintf "b%d" k;
            n = N.ground;
            dc = (if k = bits - 1 then vdd else 0.);
            ac = 0.;
          })
  in
  let netlist =
    N.append netlist
      (sources
      @ [ N.Capacitor { name = "CL"; a = "out"; b = N.ground; c = 5e-12 } ])
  in
  let op = Dc.solve netlist in
  let vout = Dc.voltage op "out" in
  let lsb = vdd /. float_of_int (1 lsl bits) in
  let dc_code_error = Some (Float.abs (vout -. (vdd /. 2.)) /. lsb) in
  (* Settling: drop the MSB (half-scale step). *)
  let t_est = Float.max 1e-7 d.Data_conv.Dac.settling_est in
  let tstop = 8. *. t_est in
  let dt = tstop /. 800. in
  let t0 = 5. *. dt in
  (* Quarter-scale step 1000→0100: target stays well inside the output
     range of the single-supply buffer. *)
  let msb = Printf.sprintf "VB%d" (bits - 1) in
  let next = Printf.sprintf "VB%d" (bits - 2) in
  let response_time =
    match
      Ape_spice.Transient.run
        ~stimulus:
          [
            (msb, fun t -> if t < t0 then vdd else 0.);
            (next, fun t -> if t < t0 then 0. else vdd);
          ]
        ~tstop ~dt op
    with
    | exception Ape_spice.Transient.Step_failed _ -> None
    | result ->
      let final = vout -. (vdd /. 4.) in
      (match
         Ape_spice.Transient.settling_time result "out" ~final
           ~band:(0.5 *. lsb /. Float.max 1e-3 (Float.abs final))
       with
      | Some t when t > t0 -> Some (t -. t0)
      | Some _ | None -> None)
  in
  {
    (module_sim_of_perf
       {
         Perf.empty with
         Perf.gate_area = N.gate_area netlist;
         total_area = N.gate_area netlist;
         dc_power = power op;
         gain = Some vout;
       })
    with
    response_time;
    dc_code_error;
  }

let sim_module process = function
  | Module_lib.D_audio d -> sim_audio process d
  | Module_lib.D_sh d -> sim_sample_hold process d
  | Module_lib.D_adc d -> sim_flash_adc process d
  | Module_lib.D_dac d -> sim_dac process d
  | Module_lib.D_lpf d -> sim_lpf process d
  | Module_lib.D_bpf d -> sim_bpf process d
  | Module_lib.D_closed d -> sim_closed process d
  | Module_lib.D_comp d -> sim_comparator process d
