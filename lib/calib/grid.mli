(** Deterministic design-grid sampling for calibration.

    [run] sweeps the opamp synthesis template's spec space — gain, UGF,
    tail current, load capacitance drawn log-uniformly, plus
    buffer/topology variants — running the estimator {e and} the
    simulator at every point and pairing their attribute values into
    {!Fit.sample}s tagged with the point's {!Card.region}.

    Determinism: point [i] draws from stream [i] of a single
    {!Ape_util.Rng.split_n}, and points are evaluated with
    {!Ape_mc.Pool.map}, so the sample list is bit-identical for any
    [jobs] value — the property behind CI's jobs-1-vs-3 card diff.
    Points where the template is infeasible or the simulator fails to
    converge are skipped (and counted): a calibration grid deliberately
    walks past the feasibility edge. *)

type range = float * float

type spec = {
  points : int;
  seed : int;
  jobs : int;
  av : range;
  ugf : range;
  ibias : range;
  cl : range;
  slew : bool;  (** also run the transient step (slow) *)
}

val default : spec
(** 16 points, seed 1, sequential, ranges bracketing Table 3's specs,
    no transient. *)

val parse_spec : string -> spec
(** Parse a [(grid (points 32) (ugf 800k 14meg) ...)] spec; every field
    optional over {!default}; numbers take SPICE suffixes.  Raises
    {!Card.Parse_error} with positions. *)

val load_spec : string -> spec

type result = {
  samples : Fit.sample list;  (** in point order *)
  evaluated : int;
  skipped : int;
}

val run : Ape_process.Process.t -> spec -> result
