type sample = {
  s_level : string;
  s_attr : string;
  s_region : Card.region;
  s_est : float;
  s_sim : float;
}

(* Area attributes are exact by construction (the estimator and the
   layout generator share one gate-count model); "correcting" them
   against simulated parasitics would break the 1e-6 verify gate for
   nothing.  Everything else is fair game. *)
let calibratable attr =
  match attr with "gate_area" | "total_area" | "area" -> false | _ -> true

let rel_err ~est ~sim =
  if est = sim then 0.
  else Float.abs (est -. sim) /. Float.max (Float.abs sim) 1e-300

let max_err corr samples =
  List.fold_left
    (fun acc s -> Float.max acc (rel_err ~est:(Card.correct corr s.s_est) ~sim:s.s_sim))
    0. samples

(* Least-squares candidates on one (level, attr, region) group.  Scale
   must stay positive: a fit that flips an attribute's sign is noise,
   not calibration. *)
let candidates samples =
  let n = List.length samples in
  let fn = float_of_int n in
  let sx, sy, sxx, sxy =
    List.fold_left
      (fun (sx, sy, sxx, sxy) s ->
        ( sx +. s.s_est,
          sy +. s.s_sim,
          sxx +. (s.s_est *. s.s_est),
          sxy +. (s.s_est *. s.s_sim) ))
      (0., 0., 0., 0.) samples
  in
  let ok c =
    Float.is_finite c.Card.scale && Float.is_finite c.Card.bias
    && c.Card.scale > 0.
  in
  let scale_only =
    if sxx > 0. then
      let c = { Card.scale = sxy /. sxx; bias = 0. } in
      if ok c then [ c ] else []
    else []
  in
  let affine =
    let mean_x = sx /. fn in
    let var_x = (sxx /. fn) -. (mean_x *. mean_x) in
    if n >= 3 && var_x > 1e-18 *. (1. +. (mean_x *. mean_x)) then begin
      let det = (fn *. sxx) -. (sx *. sx) in
      let c =
        {
          Card.scale = ((fn *. sxy) -. (sx *. sy)) /. det;
          bias = ((sy *. sxx) -. (sx *. sxy)) /. det;
        }
      in
      if ok c then [ c ] else []
    end
    else []
  in
  (* Identity first: it wins ties, so a correction must strictly earn
     its place. *)
  Card.identity :: (scale_only @ affine)

let fit_group samples =
  let raw_err = max_err Card.identity samples in
  List.fold_left
    (fun (best, best_err) c ->
      let e = max_err c samples in
      if e < best_err then (c, e) else (best, best_err))
    (Card.identity, raw_err)
    (candidates samples)

let fit ?(tol = 0.02) ~process samples =
  let samples =
    List.filter
      (fun s ->
        calibratable s.s_attr
        && Float.is_finite s.s_est
        && Float.is_finite s.s_sim)
      samples
  in
  let groups = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
      let key = (s.s_level, s.s_attr, s.s_region) in
      match Hashtbl.find_opt groups key with
      | Some prev -> Hashtbl.replace groups key (s :: prev)
      | None ->
        Hashtbl.replace groups key [ s ];
        order := key :: !order)
    samples;
  let entries =
    List.rev_map
      (fun ((level, attr, region) as key) ->
        let group = List.rev (Hashtbl.find groups key) in
        let raw_err = max_err Card.identity group in
        let corr, cal_err =
          (* Residual already inside tolerance: record the check, keep
             the estimator untouched. *)
          if raw_err <= tol then (Card.identity, raw_err)
          else fit_group group
        in
        {
          Card.level;
          attr;
          region;
          corr;
          n = List.length group;
          raw_err;
          cal_err;
        })
      !order
  in
  {
    Card.version = Card.version;
    process;
    entries = Card.sort_entries entries;
  }
