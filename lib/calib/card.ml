module Sexpr = Ape_util.Sexpr
module Units = Ape_util.Units

type region = Low | Mid | High | All

let region_name = function
  | Low -> "low"
  | Mid -> "mid"
  | High -> "high"
  | All -> "all"

let region_of_name s =
  match String.lowercase_ascii s with
  | "low" -> Some Low
  | "mid" -> Some Mid
  | "high" -> Some High
  | "all" -> Some All
  | _ -> None

let region_rank = function Low -> 0 | Mid -> 1 | High -> 2 | All -> 3

(* The paper's level-3 composition error concentrates where the design
   is pushed for speed: the input pair leaves square-law saturation and
   the single-pole UGF model under-predicts.  2π·UGF·C_L/I_bias — the
   inverse of the slew-limited overdrive the tail can support — is a
   dimensionally natural (1/V) pressure measure: Table 3's OpAmp1 sits
   at ~82, OpAmp4 at ~163, OpAmp2 at ~251, OpAmp3 at ~519. *)
let region_of ~ugf ~ibias ~cl =
  let pressure = 2. *. Float.pi *. ugf *. cl /. Float.max ibias 1e-30 in
  if pressure < 120. then Low else if pressure < 300. then Mid else High

type corr = { scale : float; bias : float }

let identity = { scale = 1.; bias = 0. }
let is_identity c = c.scale = 1. && c.bias = 0.
let correct c v = (c.scale *. v) +. c.bias

type entry = {
  level : string;
  attr : string;
  region : region;
  corr : corr;
  n : int;
  raw_err : float;
  cal_err : float;
}

type t = { version : int; process : string; entries : entry list }

let version = 1

exception Parse_error of { pos : Sexpr.pos option; msg : string }

let describe_error ~pos ~msg =
  match pos with
  | None -> Printf.sprintf "calibration card: %s" msg
  | Some p ->
    Printf.sprintf "calibration card: %d:%d: %s" p.Sexpr.line p.Sexpr.col msg

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

let find t ~level ~attr ~region =
  let matches r e =
    String.equal e.level level && String.equal e.attr attr && e.region = r
  in
  match List.find_opt (matches region) t.entries with
  | Some _ as e -> e
  | None when region <> All -> List.find_opt (matches All) t.entries
  | None -> None

let apply t ~level ~attr ~region v =
  match find t ~level ~attr ~region with
  | None -> v
  | Some e -> correct e.corr v

let is_identity_card t = List.for_all (fun e -> is_identity e.corr) t.entries

(* ------------------------------------------------------------------ *)
(* Canonical print                                                     *)
(* ------------------------------------------------------------------ *)

let compare_entries a b =
  let c = String.compare a.level b.level in
  if c <> 0 then c
  else
    let c = String.compare a.attr b.attr in
    if c <> 0 then c else compare (region_rank a.region) (region_rank b.region)

let sort_entries entries = List.sort compare_entries entries

let print t =
  let b = Buffer.create 512 in
  Buffer.add_string b "(calibration-card\n";
  Buffer.add_string b (Printf.sprintf " (version %d)\n" t.version);
  Buffer.add_string b (Printf.sprintf " (process %s)\n" t.process);
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           " (fit (level %s) (attr %s) (region %s) (scale %s) (bias %s) (n \
            %d) (raw-err %s) (cal-err %s))\n"
           e.level e.attr (region_name e.region)
           (Units.to_exact e.corr.scale)
           (Units.to_exact e.corr.bias)
           e.n
           (Units.to_exact e.raw_err)
           (Units.to_exact e.cal_err)))
    (sort_entries t.entries);
  Buffer.add_string b ")\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

let fail_at span msg =
  raise (Parse_error { pos = Some span.Sexpr.s_start; msg })

let fail_no_pos msg = raise (Parse_error { pos = None; msg })

let atom_of = function
  | Sexpr.Atom (a, _) -> a
  | Sexpr.List (_, s) -> fail_at s "expected an atom"

let number_of node =
  let a = atom_of node in
  match float_of_string_opt a with
  | Some v -> v
  | None -> (
    (* Hand-edited cards get the full SPICE suffix notation (1.5meg,
       10p); canonical prints round-trip through the exact branch. *)
    match Ape_symbolic.Parser.parse_number a with
    | Some v -> v
    | None ->
      fail_at (Sexpr.span_of node) (Printf.sprintf "unreadable number %S" a))

let int_of node =
  let a = atom_of node in
  match int_of_string_opt a with
  | Some v -> v
  | None ->
    fail_at (Sexpr.span_of node) (Printf.sprintf "unreadable integer %S" a)

let keyed = function
  | Sexpr.List (Sexpr.Atom (key, _) :: values, span) -> (key, values, span)
  | node -> fail_at (Sexpr.span_of node) "expected a (key value ...) list"

let one span = function
  | [ v ] -> v
  | _ -> fail_at span "expected exactly one value"

let parse_fit values span =
  let level = ref None
  and attr = ref None
  and region = ref None
  and scale = ref None
  and bias = ref None
  and n = ref 0
  and raw_err = ref 0.
  and cal_err = ref 0. in
  List.iter
    (fun node ->
      let key, vs, kspan = keyed node in
      let v () = one kspan vs in
      match key with
      | "level" -> level := Some (atom_of (v ()))
      | "attr" -> attr := Some (atom_of (v ()))
      | "region" -> (
        let node = v () in
        match region_of_name (atom_of node) with
        | Some r -> region := Some r
        | None ->
          fail_at (Sexpr.span_of node)
            "unknown region (expected low, mid, high or all)")
      | "scale" -> scale := Some (number_of (v ()))
      | "bias" -> bias := Some (number_of (v ()))
      | "n" -> n := int_of (v ())
      | "raw-err" -> raw_err := number_of (v ())
      | "cal-err" -> cal_err := number_of (v ())
      | other ->
        fail_at kspan (Printf.sprintf "unknown fit field %S" other))
    values;
  let req name = function
    | Some v -> v
    | None -> fail_at span (Printf.sprintf "fit entry is missing (%s ...)" name)
  in
  {
    level = req "level" !level;
    attr = req "attr" !attr;
    region = Option.value ~default:All !region;
    corr = { scale = req "scale" !scale; bias = req "bias" !bias };
    n = !n;
    raw_err = !raw_err;
    cal_err = !cal_err;
  }

let parse text =
  let nodes =
    try Sexpr.parse text
    with Sexpr.Error { pos; msg } -> raise (Parse_error { pos = Some pos; msg })
  in
  match nodes with
  | [ Sexpr.List (Sexpr.Atom ("calibration-card", _) :: fields, span) ] ->
    let ver = ref None and proc = ref None and entries = ref [] in
    List.iter
      (fun node ->
        let key, vs, kspan = keyed node in
        match key with
        | "version" -> ver := Some (int_of (one kspan vs))
        | "process" -> proc := Some (atom_of (one kspan vs))
        | "fit" -> entries := parse_fit vs kspan :: !entries
        | other ->
          fail_at kspan (Printf.sprintf "unknown card field %S" other))
      fields;
    let v =
      match !ver with
      | Some v -> v
      | None -> fail_at span "card is missing (version ...)"
    in
    if v <> version then
      fail_at span
        (Printf.sprintf "unsupported card version %d (this build reads %d)" v
           version);
    let p =
      match !proc with
      | Some p -> p
      | None -> fail_at span "card is missing (process ...)"
    in
    { version = v; process = p; entries = sort_entries (List.rev !entries) }
  | [ node ] ->
    fail_at (Sexpr.span_of node) "expected a (calibration-card ...) form"
  | [] -> fail_no_pos "empty calibration card"
  | _ :: node :: _ ->
    fail_at (Sexpr.span_of node) "expected a single (calibration-card ...) form"

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load file = parse (read_file file)

let save file t =
  let oc = open_out file in
  output_string oc (print t);
  close_out oc
