module E = Ape_estimator
module Rng = Ape_util.Rng
module Sexpr = Ape_util.Sexpr

type range = float * float

type spec = {
  points : int;
  seed : int;
  jobs : int;
  av : range;
  ugf : range;
  ibias : range;
  cl : range;
  slew : bool;
}

(* The default ranges bracket Table 3's corner specs (gain 167–514,
   UGF 1.3–12.4 MHz, tail 1–2 µA, C_L 10 pF) with some margin so the
   fit sees both sides of each paper point. *)
let default =
  {
    points = 16;
    seed = 1;
    jobs = 1;
    av = (60., 600.);
    ugf = (8e5, 1.4e7);
    ibias = (6e-7, 2.5e-6);
    cl = (5e-12, 2e-11);
    slew = false;
  }

(* ------------------------------------------------------------------ *)
(* Grid-spec files: every field optional over {!default}.              *)
(*   (grid (points 32) (seed 7) (av 60 600) (ugf 800k 14meg)           *)
(*         (ibias 0.6u 2.5u) (cl 5p 20p) (slew false))                 *)
(* ------------------------------------------------------------------ *)

let fail_at span msg =
  raise (Card.Parse_error { pos = Some span.Sexpr.s_start; msg })

let atom_of = function
  | Sexpr.Atom (a, _) -> a
  | Sexpr.List (_, s) -> fail_at s "expected an atom"

let number_of node =
  let a = atom_of node in
  match Ape_symbolic.Parser.parse_number a with
  | Some v -> v
  | None ->
    fail_at (Sexpr.span_of node) (Printf.sprintf "unreadable number %S" a)

let int_of node =
  let a = atom_of node in
  match int_of_string_opt a with
  | Some v -> v
  | None ->
    fail_at (Sexpr.span_of node) (Printf.sprintf "unreadable integer %S" a)

let bool_of node =
  match atom_of node with
  | "true" | "yes" | "1" -> true
  | "false" | "no" | "0" -> false
  | other ->
    fail_at (Sexpr.span_of node) (Printf.sprintf "unreadable boolean %S" other)

let range_of span = function
  | [ lo; hi ] ->
    let lo = number_of lo and hi = number_of hi in
    if not (lo > 0. && hi >= lo) then
      fail_at span "range bounds must be positive and ordered"
    else (lo, hi)
  | _ -> fail_at span "expected (field LO HI)"

let parse_spec text =
  let nodes =
    try Sexpr.parse text
    with Sexpr.Error { pos; msg } ->
      raise (Card.Parse_error { pos = Some pos; msg })
  in
  match nodes with
  | [ Sexpr.List (Sexpr.Atom ("grid", _) :: fields, _) ] ->
    List.fold_left
      (fun spec node ->
        match node with
        | Sexpr.List (Sexpr.Atom (key, _) :: values, kspan) -> (
          let one () =
            match values with
            | [ v ] -> v
            | _ -> fail_at kspan "expected exactly one value"
          in
          match key with
          | "points" -> { spec with points = int_of (one ()) }
          | "seed" -> { spec with seed = int_of (one ()) }
          | "jobs" -> { spec with jobs = int_of (one ()) }
          | "av" -> { spec with av = range_of kspan values }
          | "ugf" -> { spec with ugf = range_of kspan values }
          | "ibias" -> { spec with ibias = range_of kspan values }
          | "cl" -> { spec with cl = range_of kspan values }
          | "slew" -> { spec with slew = bool_of (one ()) }
          | other ->
            fail_at kspan (Printf.sprintf "unknown grid field %S" other))
        | node ->
          fail_at (Sexpr.span_of node) "expected a (key value ...) list")
      default fields
  | [ node ] -> fail_at (Sexpr.span_of node) "expected a (grid ...) form"
  | [] -> raise (Card.Parse_error { pos = None; msg = "empty grid spec" })
  | _ :: node :: _ ->
    fail_at (Sexpr.span_of node) "expected a single (grid ...) form"

let load_spec file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_spec text

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

type result = { samples : Fit.sample list; evaluated : int; skipped : int }

let c_points = Ape_obs.counter "calib.grid.points"
let c_skipped = Ape_obs.counter "calib.grid.skipped"

let attr_pairs (est : E.Perf.t) (sim : E.Perf.t) =
  [
    ("power", Some est.E.Perf.dc_power, Some sim.E.Perf.dc_power);
    ("gain", est.E.Perf.gain, sim.E.Perf.gain);
    ("ugf", est.E.Perf.ugf, sim.E.Perf.ugf);
    ("cmrr", est.E.Perf.cmrr, sim.E.Perf.cmrr);
    ("slew_rate", est.E.Perf.slew_rate, sim.E.Perf.slew_rate);
    ("zout", est.E.Perf.zout, sim.E.Perf.zout);
    ("current", est.E.Perf.current, sim.E.Perf.current);
  ]

(* One point: draw a full opamp spec from the per-index stream (every
   draw happens before anything can fail, so the stream use is fixed),
   design it with the estimator and measure it with the simulator.
   Infeasible or non-convergent points are skipped — a calibration grid
   deliberately walks past the template's feasibility edge. *)
let eval_point process spec rng =
  let log_uniform (lo, hi) = Rng.log_uniform rng lo hi in
  let av = log_uniform spec.av in
  let ugf = log_uniform spec.ugf in
  let ibias = log_uniform spec.ibias in
  let cl = log_uniform spec.cl in
  let buffer = Rng.bool rng in
  let zout = Rng.log_uniform rng 8e2 2.5e3 in
  let bias_topology = Rng.choice rng [| E.Bias.Simple; E.Bias.Wilson |] in
  let region = Card.region_of ~ugf ~ibias ~cl in
  let ospec =
    if buffer then
      E.Opamp.spec ~buffer ~zout ~bias_topology ~av ~ugf ~ibias ~cl ()
    else E.Opamp.spec ~bias_topology ~av ~ugf ~ibias ~cl ()
  in
  match
    let d = E.Opamp.design process ospec in
    (d.E.Opamp.perf, E.Verify.sim_opamp ~slew:spec.slew process d)
  with
  | exception
      ( E.Opamp.Infeasible _ | E.Verify.Verification_failed _
      | Ape_spice.Dc.No_convergence _ | Ape_spice.Awe.Moment_failure _
      | Ape_spice.Transient.Step_failed _ ) ->
    None
  | est, sim ->
    Some
      (List.filter_map
         (fun (attr, e, s) ->
           match (e, s) with
           | Some e, Some s when Float.is_finite e && Float.is_finite s ->
             Some
               {
                 Fit.s_level = "opamp";
                 s_attr = attr;
                 s_region = region;
                 s_est = e;
                 s_sim = s;
               }
           | _ -> None)
         (attr_pairs est sim))

let run process spec =
  Ape_obs.span "calib.grid" @@ fun () ->
  let streams = Rng.split_n (Rng.create spec.seed) spec.points in
  let per_point =
    Ape_mc.Pool.map ~jobs:spec.jobs spec.points (fun i ->
        eval_point process spec streams.(i))
  in
  Ape_obs.add c_points spec.points;
  let samples, skipped =
    Array.fold_left
      (fun (samples, skipped) point ->
        match point with
        | None -> (samples, skipped + 1)
        | Some s -> (s :: samples, skipped))
      ([], 0) per_point
  in
  Ape_obs.add c_skipped skipped;
  {
    samples = List.concat (List.rev samples);
    evaluated = spec.points - skipped;
    skipped;
  }
