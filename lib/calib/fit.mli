(** Correction-model fitting: turn (estimate, simulation) sample pairs
    into a {!Card}.

    Samples are grouped by (level, attr, region); each group gets the
    best of three candidates — identity, scale-only least squares, and
    affine least squares (normal equations, requiring n ≥ 3 and
    x-variance) — judged by {e max} relative error over the group's
    own samples, so the selected correction is never worse than
    identity on its fitting data.  Groups whose raw residual is
    already within [tol] (default 2 %) keep the identity correction,
    recorded as an explicit "checked, already fine" entry.  Fits with
    non-positive or non-finite scale are discarded.  Area attributes
    are never calibrated (they are exact by construction and gated at
    1e-6). *)

type sample = {
  s_level : string;  (** tolerance-level name: basic / opamp / module *)
  s_attr : string;
  s_region : Card.region;
  s_est : float;
  s_sim : float;
}

val calibratable : string -> bool
(** False for the area attributes. *)

val rel_err : est:float -> sim:float -> float

val max_err : Card.corr -> sample list -> float
(** Max relative error of the corrected estimates over the samples. *)

val fit : ?tol:float -> process:string -> sample list -> Card.t
(** Non-finite samples and non-calibratable attributes are dropped;
    entries come out in canonical card order. *)
