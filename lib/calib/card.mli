(** Versioned calibration cards: persisted per-attribute, per-region
    affine corrections fitted by {!Fit} and consumed by the estimator
    composition paths ([Check.run ?calibration],
    [Synth.Driver.run ?calibration]).

    Card format (canonical print, one fit per line):
    {v
    (calibration-card
     (version 1)
     (process c12)
     (fit (level opamp) (attr gain) (region low)
          (scale 1.02) (bias -3.1) (n 24) (raw-err 0.12) (cal-err 0.02)))
    v}

    [print] is canonical — entries sorted by (level, attr, region),
    floats in exact round-trip notation — so print→parse→print is a
    fixpoint, the property CI relies on for the jobs-1-vs-3 card diff.
    Parsing reports positioned errors in the style of
    {!Ape_util.Sexpr}; numbers additionally accept SPICE suffixes
    ([1.5meg]) for hand-edited cards. *)

(** Operating region of the fitted correction.  [All] entries act as
    the fallback when no exact-region entry matches. *)
type region = Low | Mid | High | All

val region_name : region -> string
val region_of_name : string -> region option

val region_of : ugf:float -> ibias:float -> cl:float -> region
(** Classify an opamp design point by speed pressure
    2π·UGF·C_L/I_bias (1/V): < 120 → [Low], < 300 → [Mid], else
    [High].  Composition error concentrates at high pressure, where
    the single-pole model under-predicts. *)

type corr = { scale : float; bias : float }
(** Corrected value = [scale]·raw + [bias]. *)

val identity : corr
val is_identity : corr -> bool
val correct : corr -> float -> float

type entry = {
  level : string;  (** tolerance-level name: basic / opamp / module *)
  attr : string;
  region : region;
  corr : corr;
  n : int;  (** fitting-sample count *)
  raw_err : float;  (** max relative error before correction *)
  cal_err : float;  (** max relative error after correction *)
}

type t = { version : int; process : string; entries : entry list }

val version : int
(** The card format version this build reads and writes. *)

exception Parse_error of { pos : Ape_util.Sexpr.pos option; msg : string }

val describe_error : pos:Ape_util.Sexpr.pos option -> msg:string -> string
(** ["calibration card: 3:14: unknown fit field ..."]. *)

val find : t -> level:string -> attr:string -> region:region -> entry option
(** Exact (level, attr, region) entry, falling back to the (level,
    attr, [All]) entry when the region has none. *)

val apply : t -> level:string -> attr:string -> region:region -> float -> float
(** Corrected value; the raw value when the card has no entry. *)

val is_identity_card : t -> bool

val sort_entries : entry list -> entry list
(** Canonical (level, attr, region) order. *)

val print : t -> string
val parse : string -> t
val load : string -> t

val save : string -> t -> unit
(** [save file t] writes [print t]. *)
