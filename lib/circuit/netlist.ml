module Card = Ape_process.Model_card
module Mos = Ape_device.Mos

type node = string

let ground = "0"
let is_ground n = n = "0" || String.lowercase_ascii n = "gnd"

type element =
  | Mosfet of {
      name : string;
      card : Card.t;
      d : node;
      g : node;
      s : node;
      b : node;
      geom : Mos.geom;
      m : float;
    }
  | Resistor of { name : string; a : node; b : node; r : float }
  | Capacitor of { name : string; a : node; b : node; c : float }
  | Vsource of { name : string; p : node; n : node; dc : float; ac : float }
  | Isource of { name : string; p : node; n : node; dc : float; ac : float }
  | Vcvs of {
      name : string;
      p : node;
      n : node;
      cp : node;
      cn : node;
      gain : float;
    }
  | Switch of {
      name : string;
      a : node;
      b : node;
      ctrl : node;
      ron : float;
      roff : float;
      vthreshold : float;
    }

type t = { title : string; elements : element list }

let make ~title elements = { title; elements }

let element_name = function
  | Mosfet { name; _ }
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vcvs { name; _ }
  | Switch { name; _ } ->
    name

let element_nodes = function
  | Mosfet { d; g; s; b; _ } -> [ d; g; s; b ]
  | Resistor { a; b; _ } | Capacitor { a; b; _ } -> [ a; b ]
  | Vsource { p; n; _ } | Isource { p; n; _ } -> [ p; n ]
  | Vcvs { p; n; cp; cn; _ } -> [ p; n; cp; cn ]
  | Switch { a; b; ctrl; _ } -> [ a; b; ctrl ]

module String_set = Set.Make (String)

let nodes t =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc n -> if is_ground n then acc else String_set.add n acc)
        acc (element_nodes e))
    String_set.empty t.elements
  |> String_set.elements

let elements t = t.elements
let append t es = { t with elements = t.elements @ es }

let merge ~title ts =
  { title; elements = List.concat_map (fun t -> t.elements) ts }

let mosfet_count t =
  List.length
    (List.filter (function Mosfet _ -> true | _ -> false) t.elements)

let device_count t = List.length t.elements

let gate_area t =
  List.fold_left
    (fun acc -> function
      | Mosfet { geom; m; _ } -> acc +. (m *. Mos.gate_area geom)
      | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Vcvs _ | Switch _
        ->
        acc)
    0. t.elements

exception Invalid_netlist of string

let validate t =
  (* Unique names. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = element_name e in
      if Hashtbl.mem seen name then
        raise (Invalid_netlist ("duplicate element name " ^ name));
      Hashtbl.add seen name ())
    t.elements;
  (* Ground reference. *)
  let touches_ground =
    List.exists (fun e -> List.exists is_ground (element_nodes e)) t.elements
  in
  if not touches_ground then
    raise (Invalid_netlist "no element touches ground");
  (* Dangling nodes: every non-ground node needs >= 2 terminal
     connections for the MNA matrix to be non-singular. *)
  let counts = Hashtbl.create 16 in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          if not (is_ground n) then
            Hashtbl.replace counts n
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        (element_nodes e))
    t.elements;
  Hashtbl.iter
    (fun n c ->
      if c < 2 then raise (Invalid_netlist ("dangling node " ^ n)))
    counts;
  (* Element value sanity. *)
  List.iter
    (function
      | Resistor { name; r; _ } when r <= 0. ->
        raise (Invalid_netlist ("non-positive resistor " ^ name))
      | Capacitor { name; c; _ } when c <= 0. ->
        raise (Invalid_netlist ("non-positive capacitor " ^ name))
      | Mosfet { name; m; _ } when m <= 0. ->
        raise (Invalid_netlist ("non-positive multiplier on " ^ name))
      | Switch { name; ron; roff; _ } when ron <= 0. || roff <= ron ->
        raise (Invalid_netlist ("bad switch resistances " ^ name))
      | Mosfet _ | Resistor _ | Capacitor _ | Vsource _ | Isource _
      | Vcvs _ | Switch _ ->
        ())
    t.elements

let instantiate ~prefix ~port_map child =
  let map_node n =
    if is_ground n then ground
    else
      match List.assoc_opt n port_map with
      | Some parent -> parent
      | None -> prefix ^ "." ^ n
  in
  let map_name name = prefix ^ "." ^ name in
  List.map
    (function
      | Mosfet m ->
        Mosfet
          {
            m with
            name = map_name m.name;
            d = map_node m.d;
            g = map_node m.g;
            s = map_node m.s;
            b = map_node m.b;
          }
      | Resistor r ->
        Resistor
          { r with name = map_name r.name; a = map_node r.a; b = map_node r.b }
      | Capacitor c ->
        Capacitor
          { c with name = map_name c.name; a = map_node c.a; b = map_node c.b }
      | Vsource v ->
        Vsource
          { v with name = map_name v.name; p = map_node v.p; n = map_node v.n }
      | Isource i ->
        Isource
          { i with name = map_name i.name; p = map_node i.p; n = map_node i.n }
      | Vcvs e ->
        Vcvs
          {
            e with
            name = map_name e.name;
            p = map_node e.p;
            n = map_node e.n;
            cp = map_node e.cp;
            cn = map_node e.cn;
          }
      | Switch s ->
        Switch
          {
            s with
            name = map_name s.name;
            a = map_node s.a;
            b = map_node s.b;
            ctrl = map_node s.ctrl;
          })
    child.elements

let rename_node ~from ~to_ t =
  let map_node n = if String.equal n from then to_ else n in
  let elements =
    List.map
      (function
        | Mosfet m ->
          Mosfet
            {
              m with
              d = map_node m.d;
              g = map_node m.g;
              s = map_node m.s;
              b = map_node m.b;
            }
        | Resistor r -> Resistor { r with a = map_node r.a; b = map_node r.b }
        | Capacitor c ->
          Capacitor { c with a = map_node c.a; b = map_node c.b }
        | Vsource v -> Vsource { v with p = map_node v.p; n = map_node v.n }
        | Isource i -> Isource { i with p = map_node i.p; n = map_node i.n }
        | Vcvs e ->
          Vcvs
            {
              e with
              p = map_node e.p;
              n = map_node e.n;
              cp = map_node e.cp;
              cn = map_node e.cn;
            }
        | Switch s ->
          Switch
            { s with a = map_node s.a; b = map_node s.b; ctrl = map_node s.ctrl })
      t.elements
  in
  { t with elements }

let retarget_process process t =
  let elements =
    List.map
      (fun e ->
        match e with
        | Mosfet m ->
          Mosfet
            {
              m with
              card =
                Ape_process.Process.card process m.card.Card.mos_type;
            }
        | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Vcvs _
        | Switch _ ->
          e)
      t.elements
  in
  { t with elements }

(* Element values must survive print -> parse exactly (the golden deck
   round-trip tests depend on it): use the readable engineering form when
   it parses back to the identical double, the shortest exact decimal
   otherwise. *)
let spice_num x =
  let s = Ape_util.Units.to_eng x in
  match Ape_symbolic.Parser.parse_number s with
  | Some v when v = x -> s
  | Some _ | None -> Ape_util.Units.to_exact x

let element_to_spice = function
  | Mosfet { name; card; d; g; s; b; geom; m } ->
    let base =
      Printf.sprintf "%s %s %s %s %s %s W=%s L=%s" name d g s b
        card.Card.name (spice_num geom.Mos.w) (spice_num geom.Mos.l)
    in
    if m = 1. then base else base ^ " M=" ^ spice_num m
  | Resistor { name; a; b; r } ->
    Printf.sprintf "%s %s %s %s" name a b (spice_num r)
  | Capacitor { name; a; b; c } ->
    Printf.sprintf "%s %s %s %s" name a b (spice_num c)
  | Vsource { name; p; n; dc; ac } ->
    if ac = 0. then Printf.sprintf "%s %s %s DC %s" name p n (spice_num dc)
    else
      Printf.sprintf "%s %s %s DC %s AC %s" name p n (spice_num dc)
        (spice_num ac)
  | Isource { name; p; n; dc; ac } ->
    if ac = 0. then Printf.sprintf "%s %s %s DC %s" name p n (spice_num dc)
    else
      Printf.sprintf "%s %s %s DC %s AC %s" name p n (spice_num dc)
        (spice_num ac)
  | Vcvs { name; p; n; cp; cn; gain } ->
    Printf.sprintf "%s %s %s %s %s %s" name p n cp cn (spice_num gain)
  | Switch { name; a; b; ctrl; ron; roff; vthreshold } ->
    Printf.sprintf "%s %s %s %s RON=%s ROFF=%s VT=%s" name a b ctrl
      (spice_num ron) (spice_num roff) (spice_num vthreshold)

let to_spice t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("* " ^ t.title ^ "\n");
  (* Distinct model cards. *)
  let models = Hashtbl.create 4 in
  List.iter
    (function
      | Mosfet { card; _ } ->
        if not (Hashtbl.mem models card.Card.name) then
          Hashtbl.add models card.Card.name card
      | Resistor _ | Capacitor _ | Vsource _ | Isource _ | Vcvs _ | Switch _
        ->
        ())
    t.elements;
  Hashtbl.iter
    (fun _ card -> Buffer.add_string buf (Card.to_spice card ^ "\n"))
    models;
  List.iter
    (fun e -> Buffer.add_string buf (element_to_spice e ^ "\n"))
    t.elements;
  Buffer.add_string buf ".END\n";
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_spice t)
