type error = { span : Token.span; msg : string }

type t = {
  cards : Token.t list list;
  errors : error list;
  lines : string array;
}

let source_line t n =
  if n >= 1 && n <= Array.length t.lines then Some t.lines.(n - 1) else None

let is_blank c = c = ' ' || c = '\t' || c = '\r'

(* '(' ')' ',' separate tokens like whitespace does: SPICE model cards
   write ".MODEL N NMOS (VTO=0.7)" and sources "SIN(0 1 1k)". *)
let is_sep c = is_blank c || c = '(' || c = ')' || c = ','

(* Tokenize one physical line starting at byte [start] (0-based), line
   number [lnum] (1-based).  Tokens are prepended to [acc] (reversed);
   lexical errors are prepended to [errs]. *)
let tokenize_line ~comment_chars ~lnum line start acc errs =
  let n = String.length line in
  let acc = ref acc and errs = ref errs in
  let i = ref start in
  let word_char c = not (is_sep c) && c <> '=' && c <> '{' && c <> '\'' in
  (try
     while !i < n do
       let c = line.[!i] in
       if is_sep c then incr i
       else if List.mem c comment_chars then
         (* Inline comment: only when the character starts a token
            (separator or line start just before it) — "1k$x" keeps the
            '$' inside the word, like ngspice. *)
         raise Exit
       else if c = '=' then begin
         acc :=
           {
             Token.kind = Token.Equals;
             text = "=";
             span = Token.span_of ~line:lnum ~col:(!i + 1) ~len:1;
           }
           :: !acc;
         incr i
       end
       else if c = '{' || c = '\'' then begin
         let closing = if c = '{' then '}' else '\'' in
         let opened = !i in
         incr i;
         let depth = ref 1 in
         while !i < n && !depth > 0 do
           if c = '{' && line.[!i] = '{' then incr depth;
           if line.[!i] = closing then decr depth;
           if !depth > 0 then incr i
         done;
         if !depth > 0 then begin
           errs :=
             {
               span = Token.span_of ~line:lnum ~col:(opened + 1) ~len:1;
               msg =
                 Printf.sprintf "unterminated '%c' expression (missing '%c')"
                   c closing;
             }
             :: !errs;
           (* Recover: take the rest of the line as the expression. *)
           acc :=
             {
               Token.kind = Token.Braced;
               text = String.trim (String.sub line (opened + 1) (n - opened - 1));
               span =
                 Token.span_of ~line:lnum ~col:(opened + 1) ~len:(n - opened);
             }
             :: !acc;
           i := n
         end
         else begin
           acc :=
             {
               Token.kind = Token.Braced;
               text = String.trim (String.sub line (opened + 1) (!i - opened - 1));
               span =
                 Token.span_of ~line:lnum ~col:(opened + 1)
                   ~len:(!i - opened + 1);
             }
             :: !acc;
           incr i
         end
       end
       else begin
         let wstart = !i in
         while !i < n && word_char line.[!i] do
           incr i
         done;
         acc :=
           {
             Token.kind = Token.Word;
             text = String.sub line wstart (!i - wstart);
             span =
               Token.span_of ~line:lnum ~col:(wstart + 1) ~len:(!i - wstart);
           }
           :: !acc
       end
     done
   with Exit -> ());
  (!acc, !errs)

let first_nonblank line =
  let n = String.length line in
  let rec go i = if i < n && is_blank line.[i] then go (i + 1) else i in
  let i = go 0 in
  if i < n then Some (i, line.[i]) else None

let lex ?(comment_chars = [ '$'; ';' ]) text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let cards = ref [] and errors = ref [] in
  (* The current card under construction, tokens reversed.  [None]
     means no card is open (start of file, or just after a flush). *)
  let current = ref None in
  let flush () =
    match !current with
    | Some toks when toks <> [] -> cards := List.rev toks :: !cards
    | Some _ | None -> ()
  in
  Array.iteri
    (fun idx line ->
      let lnum = idx + 1 in
      match first_nonblank line with
      | None -> () (* blank: does not interrupt continuations *)
      | Some (_, '*') -> () (* comment line *)
      | Some (i, '+') -> (
        match !current with
        | Some toks ->
          let toks, errs =
            tokenize_line ~comment_chars ~lnum line (i + 1) toks !errors
          in
          current := Some toks;
          errors := errs
        | None ->
          errors :=
            {
              span = Token.span_of ~line:lnum ~col:(i + 1) ~len:1;
              msg = "continuation '+' with no preceding card";
            }
            :: !errors)
      | Some (i, _) ->
        let toks, errs = tokenize_line ~comment_chars ~lnum line i [] !errors in
        errors := errs;
        if toks = [] then () (* line was only an inline comment *)
        else begin
          flush ();
          current := Some toks
        end)
    lines;
  flush ();
  { cards = List.rev !cards; errors = List.rev !errors; lines }
