module Proc = Ape_process.Process

type t = {
  title : string;
  mutable rev_elements : Netlist.element list;
  mutable node_counter : int;
  counters : (char, int ref) Hashtbl.t;
}

let create ~title =
  { title; rev_elements = []; node_counter = 0; counters = Hashtbl.create 8 }

let fresh_node ?(hint = "n") t =
  t.node_counter <- t.node_counter + 1;
  Printf.sprintf "%s%d" hint t.node_counter

let fresh_name t kind =
  let counter =
    match Hashtbl.find_opt t.counters kind with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.counters kind r;
      r
  in
  incr counter;
  Printf.sprintf "%c%d" kind !counter

let add t e = t.rev_elements <- e :: t.rev_elements

let mosfet t card ~d ~g ~s ~b ~w ~l =
  add t
    (Netlist.Mosfet
       {
         name = fresh_name t 'M';
         card;
         d;
         g;
         s;
         b;
         geom = Ape_device.Mos.geom ~w ~l;
         m = 1.;
       })

let nmos t process ~d ~g ~s ~w ~l =
  mosfet t process.Proc.nmos ~d ~g ~s ~b:Netlist.ground ~w ~l

let pmos t process ~d ~g ~s ~vdd_node ~w ~l =
  mosfet t process.Proc.pmos ~d ~g ~s ~b:vdd_node ~w ~l

let resistor t ~a ~b r =
  add t (Netlist.Resistor { name = fresh_name t 'R'; a; b; r })

let capacitor t ~a ~b c =
  add t (Netlist.Capacitor { name = fresh_name t 'C'; a; b; c })

let vsource ?(ac = 0.) t ~p ~n dc =
  add t (Netlist.Vsource { name = fresh_name t 'V'; p; n; dc; ac })

let isource ?(ac = 0.) t ~p ~n dc =
  add t (Netlist.Isource { name = fresh_name t 'I'; p; n; dc; ac })

let ammeter t ~a ~b =
  let name = fresh_name t 'V' in
  add t (Netlist.Vsource { name; p = a; n = b; dc = 0.; ac = 0. });
  name

let vcvs t ~p ~n ~cp ~cn gain =
  add t (Netlist.Vcvs { name = fresh_name t 'E'; p; n; cp; cn; gain })

let switch ?(ron = 1e3) ?(roff = 1e12) ?(vthreshold = 2.5) t ~a ~b ~ctrl =
  add t
    (Netlist.Switch
       { name = fresh_name t 'W'; a; b; ctrl; ron; roff; vthreshold })

let instance t ~prefix ~port_map child =
  List.iter (add t) (Netlist.instantiate ~prefix ~port_map child)

let finish_unvalidated t =
  Netlist.make ~title:t.title (List.rev t.rev_elements)

let finish t =
  let netlist = finish_unvalidated t in
  Netlist.validate netlist;
  netlist
