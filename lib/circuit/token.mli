(** Positioned tokens for the SPICE netlist front end.

    Every token remembers where it came from in the {e original} source
    text — line and column survive comment stripping and
    [+]-continuation joining, so a diagnostic raised deep inside a
    flattened subcircuit can still point at the exact character of the
    deck that caused it. *)

type pos = { line : int; col : int }
(** 1-based line and column in the source file. *)

type span = { first : pos; last : pos }
(** Inclusive character range. *)

type kind =
  | Word  (** a bare word: name, node, number, keyword *)
  | Equals  (** a '=' separator (keyed parameters) *)
  | Braced
      (** a brace- or quote-delimited expression; [text] is the body
          without the delimiters *)

type t = { kind : kind; text : string; span : span }

val span_of : line:int -> col:int -> len:int -> span
(** Single-line span starting at [col] covering [len] characters. *)

val merge : span -> span -> span
(** Smallest span covering both (source order). *)

val pp_pos : pos -> string
(** ["line:col"]. *)
