type pos = { line : int; col : int }
type span = { first : pos; last : pos }

type kind =
  | Word
  | Equals
  | Braced

type t = { kind : kind; text : string; span : span }

let span_of ~line ~col ~len =
  { first = { line; col }; last = { line; col = col + Int.max 0 (len - 1) } }

let before a b = a.line < b.line || (a.line = b.line && a.col <= b.col)

let merge a b =
  {
    first = (if before a.first b.first then a.first else b.first);
    last = (if before a.last b.last then b.last else a.last);
  }

let pp_pos p = Printf.sprintf "%d:%d" p.line p.col
