(** Dialect-aware SPICE netlist ingestion.

    The front end is built on the span-preserving {!Lexer}: comments
    and continuation lines are removed without destroying positions,
    so every diagnostic points at the exact line/column of the
    original deck and quotes the offending source line with a caret.

    Supported dialect subset (ngspice-flavoured baseline):

    - elements: MOSFETs ([Mname d g s b model W=.. L=.. \[M=..\]]),
      resistors/capacitors (positional or [R=]/[C=] keyed value),
      independent V/I sources ([\[value\] \[DC v\] \[AC mag \[phase\]\]]),
      VCVS ([Ename p n cp cn gain]), switches
      ([Wname a b ctrl RON=.. ROFF=.. VT=..]) and subcircuit
      instances ([Xname n1 .. nk subname \[p=v ..\]]);
    - [.MODEL] (delegated to {!Ape_process.Card_parser});
    - parameterized [.SUBCKT]/[.ENDS] with recursive flattening,
      hierarchical node renaming ([X1.node]) and ngspice-style
      element paths ([R.X1.R1]); instantiation cycles are detected;
    - [.PARAM] and brace/quote expression values ([{2*rbase}]),
      evaluated with {!Ape_symbolic.Parser};
    - [.INCLUDE]/[.LIB] resolution relative to the including file,
      with cycle detection; [.LIB file section] extracts the
      [.LIB section] … [.ENDL] slice;
    - analysis control lines [.OP]/[.AC]/[.DC]/[.TRAN] recorded as
      {!directive}s instead of raising; [.TITLE]; a list of known
      housekeeping directives ([.OPTIONS], [.SAVE], …) is accepted
      with a warning; [.CONTROL] blocks are skipped.

    Keyed parameters tolerate whitespace around [=].  Errors are
    recovering: one bad card yields a diagnostic and parsing
    continues, so a broken deck reports {e all} of its problems. *)

type dialect =
  | Ngspice  (** inline comments [$] and [;] (default) *)
  | Hspice  (** inline comment [$] only *)
  | Spice2  (** no inline comments *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  file : string;
  span : Token.span;
  msg : string;
  source : string option;  (** the offending source line, if known *)
}

exception Parse_error of diagnostic
(** Raised by {!parse} on the first error (compatibility entry
    point); {!parse_result} never raises. *)

type directive = { d_name : string; d_args : string list }
(** A recorded analysis directive: [d_name] is lowercase without the
    leading dot (["ac"]), [d_args] are the raw argument tokens. *)

type result = {
  netlist : Netlist.t;  (** flattened; partial if [diagnostics] has errors *)
  analyses : directive list;  (** in deck order *)
  diagnostics : diagnostic list;  (** in source order *)
}

val parse_result :
  ?process:Ape_process.Process.t ->
  ?dialect:dialect ->
  ?path:string ->
  title:string ->
  string ->
  result
(** Parse a deck with error recovery.  [path] is the file the text
    was read from; it labels diagnostics and anchors [.INCLUDE]
    resolution (default: [title] as the label, includes resolved
    relative to the working directory).  Model references resolve
    against the deck's own [.MODEL] cards first, then the process
    cards (by name, or the generic [NMOS]/[PMOS]).  The netlist is
    validated with {!Netlist.validate} only when no errors were
    recorded. *)

val parse :
  ?process:Ape_process.Process.t ->
  ?dialect:dialect ->
  ?path:string ->
  title:string ->
  string ->
  Netlist.t
(** [parse_result] that raises {!Parse_error} on the first error. *)

val errors : result -> diagnostic list
val warnings : result -> diagnostic list

val render : diagnostic -> string
(** Multi-line rendering: ["file:line:col: error: msg"], the source
    line, and a caret marking the span.  Ends with a newline. *)

val render_short : diagnostic -> string
(** One-line rendering without the source quote (no newline). *)

val to_canonical : result -> string
(** The canonical printed form: the flattened netlist in
    {!Netlist.to_spice} syntax followed by [.TITLE] and the recorded
    analysis directives.  Feeding the output back through
    {!parse_result} reaches a byte-identical fixpoint ([ape convert]
    relies on this). *)
