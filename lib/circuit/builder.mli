(** Imperative netlist builder with automatic element naming and node
    gensym — the elaboration code in the estimator reads like a schematic
    when written against this. *)

type t

val create : title:string -> t

val fresh_node : ?hint:string -> t -> Netlist.node
(** A new unique internal node, e.g. [n7] or [hint7]. *)

val add : t -> Netlist.element -> unit

val mosfet :
  t ->
  Ape_process.Model_card.t ->
  d:Netlist.node ->
  g:Netlist.node ->
  s:Netlist.node ->
  b:Netlist.node ->
  w:float ->
  l:float ->
  unit

val nmos :
  t ->
  Ape_process.Process.t ->
  d:Netlist.node ->
  g:Netlist.node ->
  s:Netlist.node ->
  w:float ->
  l:float ->
  unit
(** NMOS with bulk tied to ground (VSS). *)

val pmos :
  t ->
  Ape_process.Process.t ->
  d:Netlist.node ->
  g:Netlist.node ->
  s:Netlist.node ->
  vdd_node:Netlist.node ->
  w:float ->
  l:float ->
  unit
(** PMOS with bulk tied to the supply node. *)

val resistor : t -> a:Netlist.node -> b:Netlist.node -> float -> unit
val capacitor : t -> a:Netlist.node -> b:Netlist.node -> float -> unit

val vsource :
  ?ac:float -> t -> p:Netlist.node -> n:Netlist.node -> float -> unit

val isource :
  ?ac:float -> t -> p:Netlist.node -> n:Netlist.node -> float -> unit

val ammeter : t -> a:Netlist.node -> b:Netlist.node -> string
(** Insert a 0 V source between [a] and [b] (the SPICE current-probe
    idiom) and return its name; read the probed current — positive when
    flowing [a]→[b] — with [Dc.branch_current]. *)

val vcvs :
  t ->
  p:Netlist.node ->
  n:Netlist.node ->
  cp:Netlist.node ->
  cn:Netlist.node ->
  float ->
  unit

val switch :
  ?ron:float ->
  ?roff:float ->
  ?vthreshold:float ->
  t ->
  a:Netlist.node ->
  b:Netlist.node ->
  ctrl:Netlist.node ->
  unit

val instance :
  t -> prefix:string -> port_map:(Netlist.node * Netlist.node) list ->
  Netlist.t -> unit
(** Splice a child netlist (see {!Netlist.instantiate}). *)

val finish : t -> Netlist.t
(** The accumulated netlist, validated. *)

val finish_unvalidated : t -> Netlist.t
(** For deliberately partial fragments (e.g. component cores before the
    testbench adds sources). *)
