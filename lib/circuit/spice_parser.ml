module Card = Ape_process.Model_card
module Card_parser = Ape_process.Card_parser
module Proc = Ape_process.Process
module T = Token
module Expr = Ape_symbolic.Expr
module Sym_parser = Ape_symbolic.Parser
module SMap = Map.Make (String)

type dialect = Ngspice | Hspice | Spice2

let comment_chars = function
  | Ngspice -> [ '$'; ';' ]
  | Hspice -> [ '$' ]
  | Spice2 -> []

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  file : string;
  span : T.span;
  msg : string;
  source : string option;
}

exception Parse_error of diagnostic

type directive = { d_name : string; d_args : string list }

type result = {
  netlist : Netlist.t;
  analyses : directive list;
  diagnostics : diagnostic list;
}

let errors r = List.filter (fun d -> d.severity = Error) r.diagnostics
let warnings r = List.filter (fun d -> d.severity = Warning) r.diagnostics

(* ---------- rendering ---------- *)

let render_short d =
  Printf.sprintf "%s:%s: %s: %s" d.file
    (T.pp_pos d.span.T.first)
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.msg

let render d =
  match d.source with
  | None -> render_short d ^ "\n"
  | Some line ->
    (* Tabs become single spaces so the caret column stays aligned
       with the displayed text. *)
    let display = String.map (fun c -> if c = '\t' then ' ' else c) line in
    let len = String.length display in
    let c0 = Int.min d.span.T.first.T.col (len + 1) in
    let c1 =
      if d.span.T.last.T.line = d.span.T.first.T.line then
        Int.min d.span.T.last.T.col (len + 1)
      else c0
    in
    Printf.sprintf "%s\n  %s\n  %s%s\n" (render_short d) display
      (String.make (c0 - 1) ' ')
      (String.make (Int.max 1 (c1 - c0 + 1)) '^')

(* ---------- parser state ---------- *)

type src = { file : string; lx : Lexer.t }
type stmt = { src : src; toks : T.t list (* non-empty *) }

type subckt = {
  s_name : string;
  s_ports : string list;
  s_defaults : (string * T.t) list;  (* lowercase key, value token *)
  s_body : stmt list;
  s_src : src;
}

type state = {
  proc : Proc.t;
  dialect : dialect;
  mutable diags : diagnostic list;  (* reversed *)
  models : (string, Card.t) Hashtbl.t;
  subckts : (string, subckt) Hashtbl.t;  (* lowercase name *)
  mutable params : float SMap.t;  (* lowercase name *)
  mutable analyses : directive list;  (* reversed *)
  mutable elements : Netlist.element list;  (* reversed *)
  mutable title : string;
}

let diag st (src : src) severity span msg =
  st.diags <-
    {
      severity;
      file = src.file;
      span;
      msg;
      source = Lexer.source_line src.lx span.T.first.T.line;
    }
    :: st.diags

let error st src span msg = diag st src Error span msg
let warn st src span msg = diag st src Warning span msg

let card_span toks =
  List.fold_left
    (fun acc (t : T.t) -> T.merge acc t.T.span)
    (List.hd toks).T.span toks

let tok_text (t : T.t) =
  match t.T.kind with
  | T.Word -> t.T.text
  | T.Equals -> "="
  | T.Braced -> "{" ^ t.T.text ^ "}"

let keyword (s : stmt) =
  match s.toks with
  | { T.kind = T.Word; text; _ } :: _ when String.length text > 0 && text.[0] = '.'
    ->
    Some (String.lowercase_ascii text)
  | _ -> None

let unquote s =
  let n = String.length s in
  if n >= 2 && ((s.[0] = '"' && s.[n - 1] = '"') || (s.[0] = '\'' && s.[n - 1] = '\''))
  then String.sub s 1 (n - 2)
  else s

(* ---------- values & expressions ---------- *)

let lookup_param env name = SMap.find_opt (String.lowercase_ascii name) env

let eval_expr st src env (tok : T.t) =
  match Sym_parser.parse tok.T.text with
  | exception Sym_parser.Parse_error (msg, _) ->
    error st src tok.T.span ("bad expression: " ^ msg);
    None
  | e -> (
    let rec bind acc = function
      | [] -> Some acc
      | v :: tl -> (
        match lookup_param env v with
        | Some x -> bind (Expr.Env.add v x acc) tl
        | None ->
          error st src tok.T.span ("undefined parameter '" ^ v ^ "'");
          None)
    in
    match bind Expr.Env.empty (Expr.vars e) with
    | None -> None
    | Some bound -> (
      match Expr.eval bound e with
      | v when Float.is_finite v -> Some v
      | _ ->
        error st src tok.T.span "expression is not a finite number";
        None
      | exception Expr.Domain_error msg ->
        error st src tok.T.span ("expression error: " ^ msg);
        None))

let value_of st src env (tok : T.t) =
  match tok.T.kind with
  | T.Braced -> eval_expr st src env tok
  | T.Word -> (
    match Sym_parser.parse_number tok.T.text with
    | Some v -> Some v
    | None -> (
      match lookup_param env tok.T.text with
      | Some v -> Some v
      | None ->
        error st src tok.T.span
          (Printf.sprintf "bad number or unknown parameter '%s'" tok.T.text);
        None))
  | T.Equals ->
    error st src tok.T.span "expected a value, got '='";
    None

(* Split a token list into positional tokens and KEY=value pairs,
   tolerating whitespace around '=' (the lexer makes '=' its own
   token, so "W = 5u", "W= 5u" and "W=5u" are identical here). *)
let split_params st src toks =
  let rec go pos keyed = function
    | [] -> (List.rev pos, List.rev keyed)
    | ({ T.kind = T.Word; _ } as k)
      :: { T.kind = T.Equals; _ }
      :: (({ T.kind = T.Word | T.Braced; _ } as v) :: tl) ->
      go pos ((String.uppercase_ascii k.T.text, v) :: keyed) tl
    | ({ T.kind = T.Word; _ } as k) :: ({ T.kind = T.Equals; _ } as eq) :: tl ->
      error st src (T.merge k.T.span eq.T.span)
        (Printf.sprintf "%s= is missing a value" k.T.text);
      go pos keyed tl
    | ({ T.kind = T.Equals; _ } as t) :: tl ->
      error st src t.T.span "stray '='";
      go pos keyed tl
    | t :: tl -> go (t :: pos) keyed tl
  in
  go [] [] toks

let positional_words st src toks =
  List.filter_map
    (fun (t : T.t) ->
      match t.T.kind with
      | T.Word -> Some t
      | T.Braced | T.Equals ->
        error st src t.T.span
          (Printf.sprintf "unexpected %s (expected a node or name)" (tok_text t));
        None)
    toks

(* ---------- loading: lexing + .include/.lib expansion ---------- *)

let resolve_path dir p =
  let p = unquote p in
  if Filename.is_relative p then Filename.concat dir p else p

let max_include_depth = 32

let rec load st ~inc_stack ~file ~dir text =
  let lx = Lexer.lex ~comment_chars:(comment_chars st.dialect) text in
  let src = { file; lx } in
  List.iter
    (fun (e : Lexer.error) -> error st src e.Lexer.span e.Lexer.msg)
    lx.Lexer.errors;
  expand_includes st ~inc_stack ~dir src lx.Lexer.cards

and expand_includes st ~inc_stack ~dir src cards =
  List.concat_map
    (fun toks ->
      let stmt = { src; toks } in
      match keyword stmt with
      | Some (".include" | ".inc") -> (
        match List.tl toks with
        | [ ({ T.kind = T.Word; _ } as p) ] ->
          include_file st ~inc_stack ~dir src p.T.span (resolve_path dir p.T.text)
            ~section:None
        | _ ->
          error st src (card_span toks) ".include expects one file name";
          [])
      | Some ".lib" -> (
        match List.tl toks with
        | [ ({ T.kind = T.Word; _ } as p) ] ->
          (* one argument: behaves like .include (ngspice) *)
          include_file st ~inc_stack ~dir src p.T.span (resolve_path dir p.T.text)
            ~section:None
        | [ ({ T.kind = T.Word; _ } as p); { T.kind = T.Word; text = sect; _ } ]
          ->
          include_file st ~inc_stack ~dir src p.T.span (resolve_path dir p.T.text)
            ~section:(Some sect)
        | _ ->
          error st src (card_span toks) ".lib expects 'file' or 'file section'";
          [])
      | _ -> [ stmt ])
    cards

and include_file st ~inc_stack ~dir:_ src span path ~section =
  if List.mem path inc_stack then begin
    error st src span ("circular inclusion of " ^ path);
    []
  end
  else if List.length inc_stack > max_include_depth then begin
    error st src span "include depth exceeded";
    []
  end
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg ->
      error st src span ("cannot read include file: " ^ msg);
      []
    | text -> (
      let inc_stack = path :: inc_stack in
      let dir' = Filename.dirname path in
      match section with
      | None -> load st ~inc_stack ~file:path ~dir:dir' text
      | Some sect ->
        (* .lib file section: lex the file, keep the cards between the
           ".lib section" marker and its ".endl", then expand those. *)
        let lx = Lexer.lex ~comment_chars:(comment_chars st.dialect) text in
        let src' = { file = path; lx } in
        List.iter
          (fun (e : Lexer.error) -> error st src' e.Lexer.span e.Lexer.msg)
          lx.Lexer.errors;
        let want = String.lowercase_ascii sect in
        let rec find = function
          | [] ->
            error st src span
              (Printf.sprintf "%s has no library section '%s'" path sect);
            []
          | toks :: tl -> (
            match toks with
            | { T.kind = T.Word; text; _ } :: [ { T.kind = T.Word; text = s; _ } ]
              when String.lowercase_ascii text = ".lib"
                   && String.lowercase_ascii s = want ->
              take [] tl
            | _ -> find tl)
        and take acc = function
          | [] ->
            error st src' (T.span_of ~line:1 ~col:1 ~len:1)
              (Printf.sprintf "library section '%s' is missing .endl" sect);
            List.rev acc
          | toks :: tl -> (
            match toks with
            | { T.kind = T.Word; text; _ } :: _
              when String.lowercase_ascii text = ".endl" ->
              List.rev acc
            | _ -> take (toks :: acc) tl)
        in
        expand_includes st ~inc_stack ~dir:dir' src' (find lx.Lexer.cards))

(* ---------- structuring: .subckt / .ends ---------- *)

type frame = {
  f_header : stmt;
  f_name : string;
  f_ports : string list;
  f_defaults : (string * T.t) list;
  mutable f_body : stmt list;  (* reversed *)
}

let structure st stmts =
  let top = ref [] (* reversed *) in
  let stack = ref [] in
  let emit stmt =
    match !stack with
    | f :: _ -> f.f_body <- stmt :: f.f_body
    | [] -> top := stmt :: !top
  in
  List.iter
    (fun stmt ->
      match keyword stmt with
      | Some ".subckt" -> (
        let rest = List.tl stmt.toks in
        let pos, keyed = split_params st stmt.src rest in
        (* drop an optional bare "params:" separator word *)
        let pos =
          List.filter
            (fun (t : T.t) ->
              String.lowercase_ascii t.T.text <> "params:")
            pos
        in
        match positional_words st stmt.src pos with
        | [] ->
          error st stmt.src (card_span stmt.toks) ".subckt needs a name"
        | name :: ports ->
          stack :=
            {
              f_header = stmt;
              f_name = name.T.text;
              f_ports = List.map (fun (t : T.t) -> t.T.text) ports;
              f_defaults =
                List.map (fun (k, v) -> (String.lowercase_ascii k, v)) keyed;
              f_body = [];
            }
            :: !stack)
      | Some ".ends" -> (
        match !stack with
        | [] ->
          error st stmt.src (card_span stmt.toks) ".ends without open .subckt"
        | f :: tl ->
          stack := tl;
          let key = String.lowercase_ascii f.f_name in
          if Hashtbl.mem st.subckts key then
            error st stmt.src (card_span f.f_header.toks)
              ("duplicate .subckt " ^ f.f_name)
          else
            Hashtbl.add st.subckts key
              {
                s_name = f.f_name;
                s_ports = f.f_ports;
                s_defaults = f.f_defaults;
                s_body = List.rev f.f_body;
                s_src = f.f_header.src;
              })
      | _ -> emit stmt)
    stmts;
  List.iter
    (fun f ->
      error st f.f_header.src (card_span f.f_header.toks)
        (".subckt " ^ f.f_name ^ " is missing its .ends"))
    !stack;
  List.rev !top

(* ---------- .param and .model passes ---------- *)

let param_pass st stmts =
  List.iter
    (fun stmt ->
      if keyword stmt = Some ".param" then begin
        let pos, keyed = split_params st stmt.src (List.tl stmt.toks) in
        List.iter
          (fun (t : T.t) ->
            error st stmt.src t.T.span
              (Printf.sprintf "malformed .param entry %s (expected name=value)"
                 (tok_text t)))
          pos;
        List.iter
          (fun (k, v) ->
            match value_of st stmt.src st.params v with
            | Some x ->
              st.params <- SMap.add (String.lowercase_ascii k) x st.params
            | None -> ())
          keyed
      end)
    stmts

let register_model st stmt =
  let rest = List.tl stmt.toks in
  let pos, keyed = split_params st stmt.src rest in
  match positional_words st stmt.src pos with
  | [ name; mtype ] -> (
    (* Rebuild a clean card text for Card_parser: expression-valued
       parameters are evaluated here, everything else verbatim. *)
    let pairs =
      List.filter_map
        (fun (k, (v : T.t)) ->
          match v.T.kind with
          | T.Word -> Some (k ^ "=" ^ v.T.text)
          | T.Braced -> (
            match eval_expr st stmt.src st.params v with
            | Some x -> Some (Printf.sprintf "%s=%.17g" k x)
            | None -> None)
          | T.Equals -> None)
        keyed
    in
    let text =
      Printf.sprintf ".MODEL %s %s (%s)" name.T.text mtype.T.text
        (String.concat " " pairs)
    in
    match Card_parser.parse_card text with
    | card ->
      Hashtbl.replace st.models (String.uppercase_ascii card.Card.name) card
    | exception Card_parser.Bad_card msg ->
      error st stmt.src (card_span stmt.toks) msg)
  | _ ->
    error st stmt.src (card_span stmt.toks)
      ".model expects a name and a device type"

let rec model_pass st stmts =
  List.iter
    (fun stmt -> if keyword stmt = Some ".model" then register_model st stmt)
    stmts;
  (* Models defined inside subcircuit bodies are registered globally. *)
  Hashtbl.iter (fun _ sub -> model_pass_body st sub.s_body) st.subckts

and model_pass_body st stmts =
  List.iter
    (fun stmt -> if keyword stmt = Some ".model" then register_model st stmt)
    stmts

let find_model st src (tok : T.t) =
  match Hashtbl.find_opt st.models (String.uppercase_ascii tok.T.text) with
  | Some card -> Some card
  | None ->
    error st src tok.T.span ("unknown model " ^ tok.T.text);
    None

(* ---------- elements ---------- *)

(* Flattened element names follow the ngspice convention: the element
   R1 inside instance X1 of a subcircuit becomes "R.X1.R1" — the
   device letter stays first, so the flattened deck re-parses. *)
let flat_name path name =
  match path with
  | [] -> name
  | _ -> Printf.sprintf "%c.%s.%s" name.[0] (String.concat "." path) name

let keyed_value st src env keyed key =
  match List.assoc_opt key keyed with
  | Some v -> value_of st src env v
  | None -> None

let require_keyed st src env ~span keyed name key =
  match List.assoc_opt key keyed with
  | Some v -> value_of st src env v
  | None ->
    error st src span (Printf.sprintf "%s: missing %s=" name key);
    None

let warn_ignored_keys st src name keyed known =
  List.iter
    (fun (k, (v : T.t)) ->
      if not (List.mem k known) then
        warn st src v.T.span
          (Printf.sprintf "%s: parameter %s is ignored" name k))
    keyed

let transient_specs = [ "SIN"; "PULSE"; "PWL"; "EXP"; "SFFM"; "AM" ]

(* DC/AC clauses for independent sources.  Accepted forms, in order:
   an optional leading bare value (the DC value), then any of "DC v"
   and "AC mag [phase]".  A bare value *after* a clause is an error —
   "V1 1 0 DC 0 5" used to silently overwrite the explicit DC 0. *)
let parse_source_values st src env name toks =
  let uc (t : T.t) =
    if t.T.kind = T.Word then String.uppercase_ascii t.T.text else ""
  in
  let rec loop dc ac ~seen_dc ~seen_ac ~seen_bare = function
    | [] -> Some (dc, ac)
    | t :: tl when uc t = "DC" ->
      if seen_dc then begin
        error st src t.T.span (name ^ ": duplicate DC clause");
        None
      end
      else (
        match tl with
        | v :: tl -> (
          match value_of st src env v with
          | Some x -> loop x ac ~seen_dc:true ~seen_ac ~seen_bare tl
          | None -> None)
        | [] ->
          error st src t.T.span (name ^ ": DC needs a value");
          None)
    | t :: tl when uc t = "AC" ->
      if seen_ac then begin
        error st src t.T.span (name ^ ": duplicate AC clause");
        None
      end
      else (
        match tl with
        | v :: tl -> (
          match value_of st src env v with
          | None -> None
          | Some x ->
            (* optional numeric phase argument *)
            let tl =
              match tl with
              | (p : T.t) :: tl'
                when p.T.kind = T.Word
                     && Sym_parser.parse_number p.T.text <> None ->
                (match Sym_parser.parse_number p.T.text with
                | Some ph when ph <> 0. ->
                  warn st src p.T.span
                    (name ^ ": AC phase is ignored (magnitude only)")
                | Some _ | None -> ());
                tl'
              | _ -> tl
            in
            loop dc x ~seen_dc ~seen_ac:true ~seen_bare tl)
        | [] ->
          error st src t.T.span (name ^ ": AC needs a value");
          None)
    | t :: _ when List.mem (uc t) transient_specs ->
      error st src t.T.span
        (Printf.sprintf "%s: transient source specification %s is not supported"
           name t.T.text);
      None
    | t :: tl ->
      if seen_dc || seen_ac || seen_bare then begin
        error st src t.T.span
          (Printf.sprintf "%s: unexpected trailing value %s after DC/AC clauses"
             name (tok_text t));
        None
      end
      else (
        match value_of st src env t with
        | Some x -> loop x ac ~seen_dc ~seen_ac ~seen_bare:true tl
        | None -> None)
  in
  loop 0. 0. ~seen_dc:false ~seen_ac:false ~seen_bare:false toks

let node_of st src ~map_node (t : T.t) =
  match t.T.kind with
  | T.Word -> Some (map_node t.T.text)
  | T.Braced | T.Equals ->
    error st src t.T.span
      (Printf.sprintf "expected a node name, got %s" (tok_text t));
    None

(* Parse one element card; the parsed element is appended to
   st.elements.  [map_node]/[path] implement hierarchical flattening;
   [stack] is the chain of open subcircuit names for cycle
   detection. *)
let rec parse_element st ~env ~map_node ~path ~stack (stmt : stmt) =
  let src = stmt.src in
  match stmt.toks with
  | ({ T.kind = T.Word; text = name; _ } as t0) :: rest -> (
    let span = card_span stmt.toks in
    let add e = st.elements <- e :: st.elements in
    let node t = node_of st src ~map_node t in
    let fname = flat_name path name in
    match Char.uppercase_ascii name.[0] with
    | 'M' -> (
      let pos, keyed = split_params st src rest in
      match pos with
      | [ d; g; s; b; model ] -> (
        match
          ( node d,
            node g,
            node s,
            node b,
            match model.T.kind with
            | T.Word -> find_model st src model
            | _ ->
              error st src model.T.span "expected a model name";
              None )
        with
        | Some d, Some g, Some s, Some b, Some card -> (
          let w = require_keyed st src env ~span keyed name "W" in
          let l = require_keyed st src env ~span keyed name "L" in
          let m =
            match keyed_value st src env keyed "M" with
            | Some m -> m
            | None -> if List.mem_assoc "M" keyed then Float.nan else 1.
          in
          warn_ignored_keys st src name keyed [ "W"; "L"; "M" ];
          match (w, l) with
          | Some w, Some l when Float.is_finite m -> (
            match Ape_device.Mos.geom ~w ~l with
            | geom -> add (Netlist.Mosfet { name = fname; card; d; g; s; b; geom; m })
            | exception Invalid_argument msg -> error st src span (name ^ ": " ^ msg))
          | _ -> ())
        | _ -> ())
      | _ ->
        error st src span
          (name ^ ": MOSFET needs 'd g s b model' followed by W= L="))
    | ('R' | 'C') as kind -> (
      let pos, keyed = split_params st src rest in
      let key = String.make 1 kind in
      let nodes, v =
        match pos with
        | [ a; b; v ] -> (Some (a, b), value_of st src env v)
        | [ a; b ] -> (
          ( Some (a, b),
            match List.assoc_opt key keyed with
            | Some v -> value_of st src env v
            | None ->
              error st src span (name ^ ": missing value");
              None ))
        | _ ->
          error st src span (name ^ ": expected 'a b value'");
          (None, None)
      in
      warn_ignored_keys st src name keyed [ key ];
      match (nodes, v) with
      | Some (a, b), Some v -> (
        match (node a, node b) with
        | Some a, Some b ->
          if kind = 'R' then add (Netlist.Resistor { name = fname; a; b; r = v })
          else add (Netlist.Capacitor { name = fname; a; b; c = v })
        | _ -> ())
      | _ -> ())
    | ('V' | 'I') as kind -> (
      match rest with
      | p :: n :: values -> (
        match (node p, node n, parse_source_values st src env name values) with
        | Some p, Some n, Some (dc, ac) ->
          if kind = 'V' then add (Netlist.Vsource { name = fname; p; n; dc; ac })
          else add (Netlist.Isource { name = fname; p; n; dc; ac })
        | _ -> ())
      | _ -> error st src span (name ^ ": expected 'p n [values]'"))
    | 'E' -> (
      let pos, _keyed = split_params st src rest in
      match pos with
      | [ p; n; cp; cn; g ] -> (
        match (node p, node n, node cp, node cn, value_of st src env g) with
        | Some p, Some n, Some cp, Some cn, Some gain ->
          add (Netlist.Vcvs { name = fname; p; n; cp; cn; gain })
        | _ -> ())
      | _ -> error st src span (name ^ ": VCVS needs 'p n cp cn gain'"))
    | 'W' -> (
      let pos, keyed = split_params st src rest in
      match pos with
      | [ a; b; ctrl ] -> (
        let get key default =
          match keyed_value st src env keyed key with
          | Some v -> v
          | None -> default
        in
        let ron = get "RON" 1e3 in
        let roff = get "ROFF" 1e12 in
        let vthreshold = get "VT" 2.5 in
        warn_ignored_keys st src name keyed [ "RON"; "ROFF"; "VT" ];
        match (node a, node b, node ctrl) with
        | Some a, Some b, Some ctrl ->
          add (Netlist.Switch { name = fname; a; b; ctrl; ron; roff; vthreshold })
        | _ -> ())
      | _ -> error st src span (name ^ ": switch needs 'a b ctrl'"))
    | 'X' -> (
      let pos, keyed = split_params st src rest in
      let pos =
        List.filter
          (fun (t : T.t) -> String.lowercase_ascii t.T.text <> "params:")
          pos
      in
      match List.rev (positional_words st src pos) with
      | subtok :: rev_nodes ->
        expand_instance st ~env ~map_node ~path ~stack src ~span ~inst:name
          ~subtok
          ~nodes:(List.rev_map (fun (t : T.t) -> t.T.text) rev_nodes)
          ~overrides:keyed
      | [] -> error st src span (name ^ ": expected 'nodes... subckt-name'"))
    | _ ->
      error st src t0.T.span
        (Printf.sprintf "unknown element type '%c' (supported: M R C V I E W X)"
           name.[0]))
  | t0 :: _ ->
    error st src t0.T.span
      (Printf.sprintf "expected an element or directive, got %s" (tok_text t0))
  | [] -> ()

and expand_instance st ~env ~map_node ~path ~stack src ~span ~inst ~subtok
    ~nodes ~overrides =
  let subname = (subtok : T.t).T.text in
  let key = String.lowercase_ascii subname in
  match Hashtbl.find_opt st.subckts key with
  | None -> error st src subtok.T.span ("unknown subcircuit " ^ subname)
  | Some sub ->
    if List.mem key stack then
      error st src subtok.T.span
        ("recursive instantiation of subcircuit " ^ subname)
    else if List.length nodes <> List.length sub.s_ports then
      error st src span
        (Printf.sprintf "%s: subcircuit %s has %d ports, got %d nodes" inst
           sub.s_name (List.length sub.s_ports) (List.length nodes))
    else begin
      (* Instance overrides are evaluated in the caller's environment;
         remaining defaults from the .subckt header are evaluated next
         (earlier defaults are visible to later ones). *)
      let overridden =
        List.filter_map
          (fun (k, v) ->
            match value_of st src env v with
            | Some x -> Some (String.lowercase_ascii k, x)
            | None -> None)
          overrides
      in
      let env' =
        List.fold_left (fun e (k, v) -> SMap.add k v e) env overridden
      in
      let env' =
        List.fold_left
          (fun e (k, v) ->
            if List.mem_assoc k overridden then e
            else
              match value_of st sub.s_src e v with
              | Some x -> SMap.add k x e
              | None -> e)
          env' sub.s_defaults
      in
      let path' = path @ [ inst ] in
      let port_map = List.combine sub.s_ports (List.map map_node nodes) in
      let child_map n =
        if Netlist.is_ground n then Netlist.ground
        else
          match List.assoc_opt n port_map with
          | Some parent -> parent
          | None -> String.concat "." (path' @ [ n ])
      in
      List.iter
        (fun body_stmt ->
          match keyword body_stmt with
          | Some ".model" -> () (* registered globally by the model pass *)
          | Some ".param" ->
            warn st body_stmt.src (card_span body_stmt.toks)
              ".param inside .subckt is ignored (define parameters at top \
               level)"
          | Some kw ->
            warn st body_stmt.src (card_span body_stmt.toks)
              (kw ^ " inside .subckt is ignored")
          | None ->
            parse_element st ~env:env' ~map_node:child_map ~path:path'
              ~stack:(key :: stack) body_stmt)
        sub.s_body
    end

(* ---------- directives & the top-level walk ---------- *)

let ignored_directives =
  [
    ".option"; ".options"; ".temp"; ".global"; ".save"; ".print"; ".plot";
    ".probe"; ".ic"; ".nodeset"; ".width"; ".meas"; ".measure"; ".four";
    ".noise"; ".pz"; ".sens"; ".disto"; ".tf"; ".csparam"; ".func"; ".if";
    ".elseif"; ".else"; ".endif";
  ]

let analysis_directives = [ ".op"; ".ac"; ".dc"; ".tran" ]

let rec run_top st stmts =
  match stmts with
  | [] -> ()
  | stmt :: tl -> (
    match keyword stmt with
    | Some ".end" -> () (* rest of the deck is ignored *)
    | Some ".control" ->
      warn st stmt.src (card_span stmt.toks)
        "interactive .control block is ignored";
      let rec skip = function
        | [] -> []
        | s :: tl when keyword s = Some ".endc" -> tl
        | _ :: tl -> skip tl
      in
      run_top st (skip tl)
    | Some (".param" | ".model") ->
      (* handled by their dedicated passes *)
      run_top st tl
    | Some kw when List.mem kw analysis_directives ->
      st.analyses <-
        {
          d_name = String.sub kw 1 (String.length kw - 1);
          d_args = List.map tok_text (List.tl stmt.toks);
        }
        :: st.analyses;
      run_top st tl
    | Some ".title" ->
      st.title <- String.concat " " (List.map tok_text (List.tl stmt.toks));
      run_top st tl
    | Some kw when List.mem kw ignored_directives ->
      warn st stmt.src (card_span stmt.toks) ("directive " ^ kw ^ " is ignored");
      run_top st tl
    | Some (".ends" | ".endl" | ".endc") ->
      error st stmt.src (card_span stmt.toks)
        (Option.get (keyword stmt) ^ " without a matching opener");
      run_top st tl
    | Some kw ->
      error st stmt.src (card_span stmt.toks) ("unknown directive " ^ kw);
      run_top st tl
    | None ->
      parse_element st ~env:st.params ~map_node:Fun.id ~path:[] ~stack:[] stmt;
      run_top st tl)

(* ---------- entry points ---------- *)

let parse_result ?(process = Proc.c12) ?(dialect = Ngspice) ?path ~title text =
  let st =
    {
      proc = process;
      dialect;
      diags = [];
      models = Hashtbl.create 8;
      subckts = Hashtbl.create 4;
      params = SMap.empty;
      analyses = [];
      elements = [];
      title;
    }
  in
  (* Process cards are visible under their own names and the generic
     NMOS/PMOS; deck-local .MODEL cards override them. *)
  Hashtbl.replace st.models "NMOS" st.proc.Proc.nmos;
  Hashtbl.replace st.models "PMOS" st.proc.Proc.pmos;
  Hashtbl.replace st.models
    (String.uppercase_ascii st.proc.Proc.nmos.Card.name)
    st.proc.Proc.nmos;
  Hashtbl.replace st.models
    (String.uppercase_ascii st.proc.Proc.pmos.Card.name)
    st.proc.Proc.pmos;
  let file = Option.value path ~default:title in
  let dir =
    match path with
    | Some p -> Filename.dirname p
    | None -> Filename.current_dir_name
  in
  let inc_stack = match path with Some p -> [ p ] | None -> [] in
  let stmts = load st ~inc_stack ~file ~dir text in
  let tops = structure st stmts in
  param_pass st tops;
  model_pass st tops;
  run_top st tops;
  let netlist = Netlist.make ~title:st.title (List.rev st.elements) in
  let had_errors = List.exists (fun d -> d.severity = Error) st.diags in
  if not had_errors then begin
    match Netlist.validate netlist with
    | () -> ()
    | exception Netlist.Invalid_netlist msg ->
      st.diags <-
        {
          severity = Error;
          file;
          span = T.span_of ~line:1 ~col:1 ~len:1;
          msg;
          source = None;
        }
        :: st.diags
  end;
  (* Defaults in a .subckt header are re-evaluated per instance, so a
     broken default would be reported once per X-card; keep the first. *)
  let diagnostics =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun d ->
        let key = (d.severity, d.file, d.span, d.msg) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      (List.rev st.diags)
  in
  { netlist; analyses = List.rev st.analyses; diagnostics }

let parse ?process ?dialect ?path ~title text =
  let r = parse_result ?process ?dialect ?path ~title text in
  match errors r with
  | [] -> r.netlist
  | d :: _ -> raise (Parse_error d)

let to_canonical r =
  let base = Netlist.to_spice r.netlist in
  (* Netlist.to_spice always ends with ".END\n"; splice the title and
     the recorded analysis directives in front of it. *)
  let stem =
    let suffix = ".END\n" in
    let bl = String.length base and sl = String.length suffix in
    if bl >= sl && String.sub base (bl - sl) sl = suffix then
      String.sub base 0 (bl - sl)
    else base
  in
  let buf = Buffer.create (String.length base + 128) in
  Buffer.add_string buf stem;
  if r.netlist.Netlist.title <> "" then
    Buffer.add_string buf (".TITLE " ^ r.netlist.Netlist.title ^ "\n");
  List.iter
    (fun d ->
      Buffer.add_string buf ("." ^ String.uppercase_ascii d.d_name);
      if d.d_args <> [] then
        Buffer.add_string buf (" " ^ String.concat " " d.d_args);
      Buffer.add_char buf '\n')
    r.analyses;
  Buffer.add_string buf ".END\n";
  Buffer.contents buf
