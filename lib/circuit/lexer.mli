(** Line-disciplined tokenizer for SPICE netlists.

    The lexer turns raw deck text into {e cards} (logical statements):
    it strips [*]-comment lines and inline [$]/[;] trailing comments,
    joins [+]-continuation lines into their parent card, splits each
    card into {!Token.t}s (treating [( ) ,] as whitespace and [=] as
    its own token) and recognises brace- and single-quote-delimited
    expression tokens.  Unlike a string-level rewrite, every token
    keeps its original line/column span, so downstream diagnostics can
    quote the offending source line with a caret. *)

type error = { span : Token.span; msg : string }
(** A lexical problem (orphan continuation, unterminated expression).
    The lexer never raises: errors are collected so one bad line does
    not hide the rest of the deck. *)

type t = {
  cards : Token.t list list;
      (** logical statements in source order; every card is non-empty *)
  errors : error list;  (** in source order *)
  lines : string array;  (** raw physical lines, for diagnostics *)
}

val lex : ?comment_chars:char list -> string -> t
(** [comment_chars] are the characters that start an inline trailing
    comment when they appear at the beginning of a token (default
    [['$'; ';']], the ngspice convention). *)

val source_line : t -> int -> string option
(** The raw 1-based physical line, for caret rendering. *)
