(** Circuit netlists.

    A netlist is a flat bag of elements over named nodes; node ["0"]
    (alias ["gnd"]) is ground.  Hierarchy is handled by {!instantiate},
    which splices a child netlist in with prefixed internal nodes — the
    estimator uses this to elaborate opamps inside filters, ADCs inside
    converters, and so on. *)

type node = string

val ground : node

val is_ground : node -> bool
(** ["0"], ["gnd"], ["GND"] are all ground. *)

type element =
  | Mosfet of {
      name : string;
      card : Ape_process.Model_card.t;
      d : node;
      g : node;
      s : node;
      b : node;
      geom : Ape_device.Mos.geom;
      m : float;
          (** parallel-device multiplier (SPICE [M=], default 1).  The
              simulator models it as an effective width [m·W]; gate
              area is [m·W·L]. *)
    }
  | Resistor of { name : string; a : node; b : node; r : float }
  | Capacitor of { name : string; a : node; b : node; c : float }
  | Vsource of { name : string; p : node; n : node; dc : float; ac : float }
      (** Independent voltage source; [ac] is the small-signal magnitude. *)
  | Isource of { name : string; p : node; n : node; dc : float; ac : float }
      (** Independent current source; positive current flows from [p]
          through the source to [n] (SPICE convention). *)
  | Vcvs of {
      name : string;
      p : node;
      n : node;
      cp : node;
      cn : node;
      gain : float;
    }  (** Voltage-controlled voltage source (ideal amplifier/testbench). *)
  | Switch of {
      name : string;
      a : node;
      b : node;
      ctrl : node;
      ron : float;
      roff : float;
      vthreshold : float;
    }
      (** Voltage-controlled switch: resistance [ron] when
          [v(ctrl) > vthreshold], else [roff].  Models the S&H sampling
          switch. *)

type t = { title : string; elements : element list }

val make : title:string -> element list -> t
val element_name : element -> string
val element_nodes : element -> node list
val nodes : t -> node list
(** All non-ground nodes, sorted, unique. *)

val elements : t -> element list
val append : t -> element list -> t
val merge : title:string -> t list -> t

val mosfet_count : t -> int
val device_count : t -> int

val gate_area : t -> float
(** Σ M·W·L over MOSFETs, m² — the paper's area metric. *)

exception Invalid_netlist of string

val validate : t -> unit
(** Checks: unique element names, a ground reference exists, every node
    touches at least two terminals (warnings as exceptions), positive
    R/C values.  Raises {!Invalid_netlist}. *)

val instantiate :
  prefix:string -> port_map:(node * node) list -> t -> element list
(** Splice a child netlist into a parent: nodes listed in [port_map]
    (child name, parent name) are connected to parent nodes, every other
    child node and all element names get [prefix ^ "."] prepended.
    Ground stays ground. *)

val rename_node : from:node -> to_:node -> t -> t

val retarget_process : Ape_process.Process.t -> t -> t
(** Swap every MOSFET's model card for the given process's card of the
    same polarity (geometry untouched) — re-simulating a sized design at
    a different corner or deck. *)

val to_spice : t -> string
(** Render in SPICE syntax (with .MODEL cards for every distinct model
    used). *)

val pp : Format.formatter -> t -> unit
