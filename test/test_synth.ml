(* Tests for Ape_synth: the annealer, parameter templates, the cost
   model, and the Table-1/Table-4 driver behaviour. *)

module S = Ape_synth
module E = Ape_estimator
module N = Ape_circuit.Netlist
module I = Ape_util.Interval
module F = Ape_util.Float_ext

let proc = Ape_process.Process.c12

(* ---------- anneal ---------- *)

let test_anneal_quadratic () =
  let rng = Ape_util.Rng.create 5 in
  let target = [| 0.3; 0.7; 0.5 |] in
  let cost x =
    Array.to_list (Array.mapi (fun i v -> F.sq (v -. target.(i))) x)
    |> List.fold_left ( +. ) 0.
  in
  let best, stats =
    S.Anneal.optimize ~schedule:S.Anneal.quick_schedule ~rng ~dim:3 ~cost
      ~x0:[| 0.; 0.; 0. |] ()
  in
  Alcotest.(check bool) "found minimum" true (stats.S.Anneal.best_cost < 1e-2);
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "coordinate %d near target" i)
        true
        (Float.abs (v -. target.(i)) < 0.1))
    best

let test_anneal_early_stop () =
  let rng = Ape_util.Rng.create 5 in
  let cost _ = 0.001 in
  let _, stats =
    S.Anneal.optimize ~stop_below:0.01 ~rng ~dim:2 ~cost ~x0:[| 0.5; 0.5 |] ()
  in
  Alcotest.(check int) "stopped after first eval" 1 stats.S.Anneal.evaluations

let test_anneal_budget () =
  let rng = Ape_util.Rng.create 5 in
  let schedule = { S.Anneal.quick_schedule with S.Anneal.max_evaluations = 50 } in
  let evals = ref 0 in
  let cost _ = incr evals; 1.0 in
  let _, stats =
    S.Anneal.optimize ~schedule ~rng ~dim:2 ~cost ~x0:[| 0.5; 0.5 |] ()
  in
  Alcotest.(check bool) "respects budget" true (stats.S.Anneal.evaluations <= 50)

let test_anneal_nan_hostile () =
  let rng = Ape_util.Rng.create 5 in
  let cost x = if x.(0) > 0.5 then Float.nan else x.(0) in
  let best, _ =
    S.Anneal.optimize ~schedule:S.Anneal.quick_schedule ~rng ~dim:1 ~cost
      ~x0:[| 0.4 |] ()
  in
  Alcotest.(check bool) "avoids NaN region" true (best.(0) <= 0.5)

(* ---------- template ---------- *)

let base_netlist () =
  let b = Ape_circuit.Builder.create ~title:"t" in
  Ape_circuit.Builder.vsource b ~p:"vdd" ~n:"0" 5.;
  Ape_circuit.Builder.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  Ape_circuit.Builder.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  Ape_circuit.Builder.resistor b ~a:"vdd" ~b:"0" 1e3;
  Ape_circuit.Builder.capacitor b ~a:"vdd" ~b:"0" 1e-12;
  Ape_circuit.Builder.finish b

let test_template_instantiate () =
  let nl = base_netlist () in
  let t =
    S.Template.make nl
      [
        S.Template.param ~name:"w" ~range:(I.make 1e-6 100e-6)
          (S.Template.Mos_width [ "M1"; "M2" ]);
        S.Template.param ~name:"r" ~range:(I.make 100. 1e6)
          (S.Template.Res_value [ "R1" ]);
      ]
  in
  Alcotest.(check int) "dim" 2 (S.Template.dim t);
  let out = S.Template.instantiate t [| 1.; 0. |] in
  List.iter
    (fun e ->
      match e with
      | N.Mosfet { geom; _ } ->
        Alcotest.(check (float 1e-9)) "w at max" 100e-6 geom.Ape_device.Mos.w
      | N.Resistor { r; _ } ->
        Alcotest.(check (float 1e-6)) "r at min" 100. r
      | _ -> ())
    (N.elements out)

let test_template_bad_references () =
  let nl = base_netlist () in
  let bad name target =
    match S.Template.make nl [ S.Template.param ~name ~range:(I.make 1. 2.) target ] with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("expected Invalid_argument for " ^ name)
  in
  bad "missing" (S.Template.Mos_width [ "M99" ]);
  bad "wrong kind" (S.Template.Cap_value [ "R1" ])

let prop_value_unit_roundtrip =
  QCheck.Test.make ~name:"value_of_unit / unit_of_value inverse" ~count:200
    QCheck.(pair (float_range 0. 1.) bool)
    (fun (u, log_scale) ->
      let p =
        S.Template.param ~log_scale ~name:"p" ~range:(I.make 1e-6 1e-3)
          (S.Template.Res_value [ "R1" ])
      in
      let v = S.Template.value_of_unit p u in
      F.approx_equal ~rtol:1e-9 ~atol:1e-9 u (S.Template.unit_of_value p v))

let test_center_point () =
  let nl = base_netlist () in
  let t =
    S.Template.make nl
      [
        S.Template.param ~log_scale:false ~name:"r" ~range:(I.make 100. 300.)
          (S.Template.Res_value [ "R1" ]);
      ]
  in
  let values = S.Template.values_of_point t (S.Template.center_point t) in
  Alcotest.(check (float 1e-6)) "linear center" 200. (List.assoc "r" values)

(* ---------- cost ---------- *)

let test_cost_violations () =
  let model =
    S.Cost.make
      [ S.Cost.at_least "gain" 100.; S.Cost.at_most "area" 1e-9 ]
      [ S.Cost.minimize "power" ~scale:1e-3 ]
  in
  let good = [ ("gain", 150.); ("area", 0.5e-9); ("power", 1e-4) ] in
  let bad = [ ("gain", 50.); ("area", 2e-9); ("power", 1e-4) ] in
  Alcotest.(check bool) "good satisfied" true (S.Cost.all_satisfied model good);
  Alcotest.(check bool) "bad violates" false (S.Cost.all_satisfied model bad);
  Alcotest.(check bool) "good cheaper" true
    (S.Cost.evaluate model (Some good) < S.Cost.evaluate model (Some bad));
  Alcotest.(check bool) "failure is most expensive" true
    (S.Cost.evaluate model None > S.Cost.evaluate model (Some bad));
  (* Missing metric = gross violation. *)
  Alcotest.(check bool) "missing metric violates" false
    (S.Cost.all_satisfied model [ ("area", 0.5e-9) ])

let test_cost_report () =
  let model = S.Cost.make [ S.Cost.at_least "gain" 100. ] [] in
  match S.Cost.report model [ ("gain", 120.) ] with
  | [ ("gain", v, true) ] -> Alcotest.(check (float 1e-9)) "reported" 120. v
  | _ -> Alcotest.fail "bad report shape"

(* ---------- opamp problem / driver ---------- *)

let small_row =
  {
    S.Opamp_problem.name = "t1";
    gain = 150.;
    ugf = 2e6;
    area = 1.;
    ibias = 1e-6;
    curr_src = E.Bias.Simple;
    buffer = false;
    zout = None;
    cl = 10e-12;
  }

let row_with_budget () =
  let ape = S.Opamp_problem.ape_design proc small_row in
  { small_row with S.Opamp_problem.area = 1.3 *. ape.E.Opamp.perf.E.Perf.gate_area }

let test_ape_centered_meets_fast () =
  let row = row_with_budget () in
  let rng = Ape_util.Rng.create 31 in
  let r =
    S.Driver.run ~schedule:S.Anneal.quick_schedule ~rng proc
      ~mode:(S.Opamp_problem.Ape_centered 0.2) row
  in
  Alcotest.(check bool) "meets spec" true r.S.Driver.meets_spec;
  (* The relaxed in-loop metrics carry safety margins, so the annealer
     may use its whole (small) budget even though the start point already
     satisfies the true specs. *)
  Alcotest.(check bool) "stays within the quick budget" true
    (r.S.Driver.stats.S.Anneal.evaluations
    <= S.Anneal.quick_schedule.S.Anneal.max_evaluations)

let test_template_groups_matched () =
  let row = row_with_budget () in
  let design = S.Opamp_problem.ape_design proc row in
  let problem =
    S.Opamp_problem.build proc ~mode:(S.Opamp_problem.Ape_centered 0.2) row
      design
  in
  (* Instantiating any point must keep the diff pair matched. *)
  let rng = Ape_util.Rng.create 9 in
  for _ = 1 to 5 do
    let point =
      Array.init problem.S.Opamp_problem.dim (fun _ ->
          Ape_util.Rng.uniform rng 0. 1.)
    in
    let nl, _ = problem.S.Opamp_problem.final point in
    let w name =
      List.find_map
        (fun e ->
          match e with
          | N.Mosfet { name = n; geom; _ } when n = name ->
            Some geom.Ape_device.Mos.w
          | _ -> None)
        (N.elements nl)
    in
    match (w "d1.M1", w "d1.M2") with
    | Some w1, Some w2 ->
      Alcotest.(check (float 1e-15)) "pair matched" w1 w2
    | _ -> Alcotest.fail "pair devices missing"
  done

let test_measure_keys () =
  let row = row_with_budget () in
  let design = S.Opamp_problem.ape_design proc row in
  let problem =
    S.Opamp_problem.build proc ~mode:(S.Opamp_problem.Ape_centered 0.2) row
      design
  in
  let rng = Ape_util.Rng.create 9 in
  let start = problem.S.Opamp_problem.start rng in
  (* The true measurement of the APE-centred candidate carries all the
     verdict keys. *)
  (match snd (problem.S.Opamp_problem.final start) with
  | None -> Alcotest.fail "measurement failed at APE center"
  | Some m ->
    List.iter
      (fun key ->
        Alcotest.(check bool) ("has " ^ key) true (S.Cost.find m key <> None))
      [ "gain"; "ugf"; "area"; "power"; "vout_center" ]);
  (* At the APE centre, KCL is satisfied and the relaxed cost is small
     (specs met + tiny pressure). *)
  let c = problem.S.Opamp_problem.cost start in
  Alcotest.(check bool)
    (Printf.sprintf "relaxed cost small at APE centre (%.4f)" c)
    true (c < 0.3)

let test_comment_classification () =
  let row = { small_row with S.Opamp_problem.area = 1e-9 } in
  Alcotest.(check string) "none = doesn't work" "doesn't work."
    (S.Driver.comment_of row None);
  Alcotest.(check string) "railed = doesn't work" "doesn't work."
    (S.Driver.comment_of row (Some [ ("vout_center", 2.0) ]));
  Alcotest.(check string) "meets"
    "Meets spec"
    (S.Driver.comment_of row
       (Some
          [
            ("gain", 200.); ("ugf", 3e6); ("area", 0.5e-9); ("vout_center", 0.1);
          ]));
  Alcotest.(check string) "gain collapse" "Gain << Spec"
    (S.Driver.comment_of row
       (Some [ ("gain", 1.); ("ugf", 3e6); ("area", 0.5e-9); ("vout_center", 0.1) ]));
  Alcotest.(check string) "area blowup" "Area >> Spec"
    (S.Driver.comment_of row
       (Some [ ("gain", 200.); ("ugf", 3e6); ("area", 9e-9); ("vout_center", 0.1) ]))

(* ---------- estimation cache ---------- *)

let test_est_cache_hits_and_quantization () =
  let cache = S.Est_cache.create ~quantum:1e-3 ~capacity:8 () in
  let evals = ref 0 in
  let f v = fun _rep -> incr evals; v in
  Alcotest.(check (float 0.)) "miss computes" 1.
    (S.Est_cache.find_or_add cache [| 0.5; 0.5 |] (f 1.));
  Alcotest.(check (float 0.)) "exact revisit hits" 1.
    (S.Est_cache.find_or_add cache [| 0.5; 0.5 |] (f 99.));
  (* Within half a quantum: same key. *)
  Alcotest.(check (float 0.)) "sub-quantum alias hits" 1.
    (S.Est_cache.find_or_add cache [| 0.5004; 0.5 |] (f 99.));
  (* A full quantum away: different key. *)
  Alcotest.(check (float 0.)) "next cell misses" 2.
    (S.Est_cache.find_or_add cache [| 0.501; 0.5 |] (f 2.));
  Alcotest.(check int) "two evaluations ran" 2 !evals;
  Alcotest.(check int) "hits" 2 (S.Est_cache.hits cache);
  Alcotest.(check int) "lookups" 4 (S.Est_cache.lookups cache);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (S.Est_cache.hit_rate cache)

let test_est_cache_lru_eviction () =
  (* One shard so the recency list spans all keys, as in the classic
     LRU this test pins down. *)
  let cache = S.Est_cache.create ~quantum:1e-3 ~shards:1 ~capacity:2 () in
  let const v _rep = v in
  ignore (S.Est_cache.find_or_add cache [| 0.1 |] (const 1.));
  ignore (S.Est_cache.find_or_add cache [| 0.2 |] (const 2.));
  (* Touch 0.1 so 0.2 becomes least recently used... *)
  ignore (S.Est_cache.find_or_add cache [| 0.1 |] (const 99.));
  (* ...then insert a third point, evicting 0.2 but not 0.1. *)
  ignore (S.Est_cache.find_or_add cache [| 0.3 |] (const 3.));
  Alcotest.(check int) "capacity respected" 2 (S.Est_cache.length cache);
  let hits_before = S.Est_cache.hits cache in
  ignore (S.Est_cache.find_or_add cache [| 0.1 |] (const 99.));
  Alcotest.(check int) "0.1 survived" (hits_before + 1)
    (S.Est_cache.hits cache);
  Alcotest.(check (float 0.)) "0.2 was evicted" 22.
    (S.Est_cache.find_or_add cache [| 0.2 |] (const 22.));
  S.Est_cache.clear cache;
  Alcotest.(check int) "clear empties" 0 (S.Est_cache.length cache);
  Alcotest.(check int) "clear resets stats" 0 (S.Est_cache.lookups cache)

let test_driver_reports_cache_stats () =
  let row = row_with_budget () in
  let rng = Ape_util.Rng.create 31 in
  let r =
    S.Driver.run ~schedule:S.Anneal.quick_schedule ~rng proc
      ~mode:(S.Opamp_problem.Ape_centered 0.2) row
  in
  (* Every annealer evaluation goes through the cache. *)
  Alcotest.(check int) "lookups = evaluations"
    r.S.Driver.stats.S.Anneal.evaluations r.S.Driver.cache_lookups;
  Alcotest.(check bool) "hits within lookups" true
    (r.S.Driver.cache_hits >= 0
    && r.S.Driver.cache_hits <= r.S.Driver.cache_lookups)

(* ---------- module problems ---------- *)

let test_module_problem_ape_centered () =
  let rng = Ape_util.Rng.create 17 in
  let kind = S.Module_problem.M_sh { gain = 2.0; bandwidth = 20e3; sr = 1e4 } in
  let design = S.Module_problem.ape_module proc kind in
  let area_max = 1.4 *. (E.Module_lib.perf design).E.Perf.gate_area in
  let r =
    S.Module_problem.run ~schedule:S.Anneal.quick_schedule ~rng proc
      ~mode:(S.Module_problem.Ape_centered 0.2) ~area_max kind
  in
  Alcotest.(check bool) "s&h ape-centered meets" true r.S.Module_problem.meets_spec

let test_module_problem_adc_scaling () =
  let rng = Ape_util.Rng.create 23 in
  let kind = S.Module_problem.M_adc { bits = 4; delay = 5e-6 } in
  let problem =
    S.Module_problem.build ~rng proc ~mode:(S.Module_problem.Ape_centered 0.2)
      ~area_max:1e-7 kind
  in
  Alcotest.(check (float 1e-9)) "adc area scale = 2^n - 1" 15.
    problem.S.Module_problem.area_scale

(* ---------- relax ---------- *)

let relax_divider () =
  let b = Ape_circuit.Builder.create ~title:"relax_div" in
  Ape_circuit.Builder.vsource b ~p:"vdd" ~n:"0" 5.;
  Ape_circuit.Builder.resistor b ~a:"vdd" ~b:"mid" 1e3;
  Ape_circuit.Builder.resistor b ~a:"mid" ~b:"0" 1e3;
  Ape_circuit.Builder.finish b

let test_relax_centered_zero_penalty () =
  let nl = relax_divider () in
  let t = S.Relax.create ~mode:`Centered ~vdd:5. nl in
  Alcotest.(check bool) "has free nodes" true (S.Relax.n_free t >= 1);
  (* `Centered` seeds the unknowns from a true DC solve, so Kirchhoff
     holds exactly at the centre point. *)
  let pen =
    S.Relax.kcl_penalty t nl (S.Relax.x_engine t (S.Relax.centers_unit t))
  in
  Alcotest.(check bool)
    (Printf.sprintf "penalty ~0 at the DC solution (got %g)" pen)
    true (pen < 1e-3);
  let x = S.Relax.x_engine t (S.Relax.centers_unit t) in
  Alcotest.(check (float 1e-2))
    "centre decodes to the solved 2.5 V" 2.5
    (S.Relax.node_voltage t x "mid")

let test_relax_wide_mapping () =
  let nl = relax_divider () in
  let t = S.Relax.create ~mode:`Wide ~vdd:5. nl in
  let n = S.Relax.n_free t in
  let at u =
    S.Relax.node_voltage t (S.Relax.x_engine t (Array.make n u)) "mid"
  in
  Alcotest.(check (float 1e-9)) "u=0 maps to 0 V" 0. (at 0.);
  Alcotest.(check (float 1e-9)) "u=1 maps to vdd" 5. (at 1.);
  Alcotest.(check (float 1e-9)) "u=0.5 maps to mid-rail" 2.5 (at 0.5);
  Array.iter
    (fun c -> Alcotest.(check (float 1e-9)) "wide centres mid-rail" 0.5 c)
    (S.Relax.centers_unit t)

let test_relax_fake_op_reads_back () =
  let nl = relax_divider () in
  let t = S.Relax.create ~mode:`Centered ~vdd:5. nl in
  let u = S.Relax.centers_unit t in
  let op = S.Relax.fake_op t nl (S.Relax.x_engine t u) in
  Alcotest.(check (float 1e-9))
    "fake op exposes the relaxed voltage"
    (S.Relax.node_voltage t (S.Relax.x_engine t u) "mid")
    (Ape_spice.Dc.voltage op "mid")

let prop_relax_penalty_monotone =
  (* The divider is linear, so the KCL residual grows linearly along any
     ray from the (exact) centre: penalty(a*d) <= penalty(b*d) for
     0 <= a <= b. *)
  QCheck.Test.make ~name:"kcl penalty monotone along rays" ~count:100
    QCheck.(
      triple (float_range (-1.) 1.) (float_range 0. 0.45) (float_range 0. 1.))
    (fun (d, b, frac) ->
      let nl = relax_divider () in
      let t = S.Relax.create ~mode:`Centered ~vdd:5. nl in
      let centres = S.Relax.centers_unit t in
      let point s =
        S.Relax.x_engine t (Array.map (fun c -> c +. (s *. d)) centres)
      in
      let a = frac *. b in
      let pa = S.Relax.kcl_penalty t nl (point a) in
      let pb = S.Relax.kcl_penalty t nl (point b) in
      pa >= 0. && pa <= pb +. 1e-9)

(* ---------- parallel tempering ---------- *)

(* A multimodal test landscape: two basins, the deeper one narrow.
   Cheap to evaluate, so determinism properties can afford many runs. *)
let two_basin x =
  let d2 c =
    Array.fold_left (fun acc v -> acc +. F.sq (v -. c)) 0. x
    /. float_of_int (Array.length x)
  in
  Float.min (0.5 +. d2 0.2) (40. *. d2 0.85)

let test_exchange_probability_rule () =
  let p = S.Anneal.exchange_probability in
  Alcotest.(check (float 1e-12))
    "hot replica strictly better swaps surely" 1.
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:5.0 ~e_hot:1.0);
  Alcotest.(check (float 1e-12))
    "equal energies swap surely" 1.
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:2.0 ~e_hot:2.0);
  (* Cold replica better: p = exp((1/Tc - 1/Th)(Ec - Eh)) < 1. *)
  let expected = Float.exp ((10. -. 1.) *. (1.0 -. 3.0)) in
  Alcotest.(check (float 1e-12))
    "cold better: detailed-balance factor" expected
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:1.0 ~e_hot:3.0);
  Alcotest.(check (float 1e-12))
    "both unevaluable: no swap" 0.
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:infinity ~e_hot:infinity);
  Alcotest.(check (float 1e-12))
    "hot unevaluable: no swap" 0.
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:1.0 ~e_hot:infinity);
  Alcotest.(check (float 1e-12))
    "cold unevaluable: certain swap" 1.
    (p ~t_cold:0.1 ~t_hot:1.0 ~e_cold:infinity ~e_hot:1.0);
  Alcotest.check_raises "non-positive temperature"
    (Invalid_argument "Anneal.exchange_probability: non-positive temperature")
    (fun () -> ignore (p ~t_cold:0. ~t_hot:1. ~e_cold:1. ~e_hot:1.))

let tempered_run ~seed ~jobs ~chains =
  let rng = Ape_util.Rng.create seed in
  let cache = S.Est_cache.create ~capacity:512 () in
  let cost p = S.Est_cache.find_or_add cache p two_basin in
  S.Anneal.optimize_tempered ~schedule:S.Anneal.quick_schedule
    ~tempering:{ S.Anneal.default_tempering with chains }
    ~jobs ~rng ~dim:4 ~cost
    ~start:(fun rng -> Array.init 4 (fun _ -> Ape_util.Rng.uniform rng 0. 1.))
    ()

let test_tempered_finds_minimum () =
  let best, stats = tempered_run ~seed:3 ~jobs:2 ~chains:4 in
  Alcotest.(check bool) "found a basin" true (stats.S.Anneal.best_cost < 0.6);
  Alcotest.(check int) "chains recorded" 4 stats.S.Anneal.chains;
  Alcotest.(check bool) "exchanges attempted" true
    (stats.S.Anneal.exchanges > 0);
  Alcotest.(check int) "dim preserved" 4 (Array.length best)

let prop_tempered_jobs_deterministic =
  (* The tentpole determinism contract: same seed, same chain count =>
     bit-identical best vector and stats for any worker count, shared
     sharded cache included. *)
  QCheck.Test.make ~name:"tempered result independent of jobs" ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 2 4))
    (fun (seed, chains) ->
      let strip (best, stats) =
        (best, { stats with S.Anneal.seconds = 0. })
      in
      let r1 = strip (tempered_run ~seed ~jobs:1 ~chains) in
      let r2 = strip (tempered_run ~seed ~jobs:2 ~chains) in
      let r4 = strip (tempered_run ~seed ~jobs:4 ~chains) in
      r1 = r2 && r2 = r4)

(* ---------- sharded cache: hardening and concurrency ---------- *)

let test_est_cache_nonfinite_keys () =
  let cache = S.Est_cache.create ~quantum:1e-3 ~capacity:32 () in
  let seen = ref [] in
  let record v rep =
    seen := Array.copy rep :: !seen;
    v
  in
  (* Each pathology gets its own cell... *)
  Alcotest.(check (float 0.)) "nan" 1.
    (S.Est_cache.find_or_add cache [| Float.nan |] (record 1.));
  Alcotest.(check (float 0.)) "+inf" 2.
    (S.Est_cache.find_or_add cache [| infinity |] (record 2.));
  Alcotest.(check (float 0.)) "-inf" 3.
    (S.Est_cache.find_or_add cache [| neg_infinity |] (record 3.));
  (* ...and revisiting one hits instead of re-evaluating. *)
  Alcotest.(check (float 0.)) "nan revisit hits" 1.
    (S.Est_cache.find_or_add cache [| Float.nan |] (record 99.));
  Alcotest.(check int) "three evaluations" 3 (List.length !seen);
  (* The representative point hands the evaluator back the non-finite
     value the key stands for. *)
  (match !seen with
  | [ [| ni |]; [| pi |]; [| na |] ] ->
    Alcotest.(check bool) "nan representative" true (Float.is_nan na);
    Alcotest.(check (float 0.)) "+inf representative" infinity pi;
    Alcotest.(check (float 0.)) "-inf representative" neg_infinity ni
  | _ -> Alcotest.fail "expected three recorded representatives");
  (* Out-of-int-range magnitudes clamp onto the ±inf cells instead of
     hitting undefined int_of_float behaviour. *)
  Alcotest.(check (float 0.)) "huge positive clamps to the +inf cell" 2.
    (S.Est_cache.find_or_add cache [| 1e300 |] (fun _ -> 99.));
  Alcotest.(check (float 0.)) "huge negative clamps to the -inf cell" 3.
    (S.Est_cache.find_or_add cache [| -1e300 |] (fun _ -> 99.))

let test_est_cache_representative_evaluation () =
  (* The callback sees the cell's representative, not the raw point:
     this is what makes the stored value a pure function of the key. *)
  let cache = S.Est_cache.create ~quantum:1e-2 ~capacity:32 () in
  let got = ref [||] in
  ignore
    (S.Est_cache.find_or_add cache [| 0.5434; 0.2965 |] (fun rep ->
         got := Array.copy rep;
         0.));
  Alcotest.(check (float 1e-12)) "snapped x" 0.54 !got.(0);
  Alcotest.(check (float 1e-12)) "snapped y" 0.30 !got.(1)

let test_est_cache_concurrent_smoke () =
  (* Four domains hammer one sharded cache with overlapping keys: every
     returned value must equal the pure function of the snapped point,
     and the shards' books must stay consistent. *)
  let cache = S.Est_cache.create ~quantum:1e-3 ~shards:4 ~capacity:64 () in
  let f rep = (10. *. rep.(0)) +. rep.(1) in
  let worker seed () =
    let rng = Ape_util.Rng.create seed in
    let ok = ref true in
    for _ = 1 to 2_000 do
      let p =
        [| Ape_util.Rng.uniform rng 0. 0.05; Ape_util.Rng.uniform rng 0. 0.05 |]
      in
      let v = S.Est_cache.find_or_add cache p f in
      let expected =
        f (Array.map (fun x -> Float.round (x /. 1e-3) *. 1e-3) p)
      in
      if v <> expected then ok := false
    done;
    !ok
  in
  let domains = Array.init 4 (fun i -> Domain.spawn (worker (i + 1))) in
  let all_ok = Array.for_all (fun d -> Domain.join d) domains in
  Alcotest.(check bool) "every value is the pure function of its key" true
    all_ok;
  Alcotest.(check bool) "length within capacity" true
    (S.Est_cache.length cache <= S.Est_cache.capacity cache);
  Alcotest.(check int) "lookups all accounted" 8_000
    (S.Est_cache.lookups cache);
  Alcotest.(check bool) "keyspace overflow forced evictions" true
    (S.Est_cache.evictions cache > 0);
  Alcotest.(check bool) "hits within lookups" true
    (S.Est_cache.hits cache <= S.Est_cache.lookups cache)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_synth"
    [
      ( "anneal",
        [
          Alcotest.test_case "quadratic" `Quick test_anneal_quadratic;
          Alcotest.test_case "early stop" `Quick test_anneal_early_stop;
          Alcotest.test_case "budget" `Quick test_anneal_budget;
          Alcotest.test_case "nan hostile" `Quick test_anneal_nan_hostile;
        ] );
      ( "template",
        [
          Alcotest.test_case "instantiate" `Quick test_template_instantiate;
          Alcotest.test_case "bad references" `Quick test_template_bad_references;
          Alcotest.test_case "center point" `Quick test_center_point;
        ] );
      qsuite "template-properties" [ prop_value_unit_roundtrip ];
      ( "cost",
        [
          Alcotest.test_case "violations" `Quick test_cost_violations;
          Alcotest.test_case "report" `Quick test_cost_report;
        ] );
      ( "driver",
        [
          Alcotest.test_case "ape-centered meets quickly" `Quick
            test_ape_centered_meets_fast;
          Alcotest.test_case "matched groups" `Quick test_template_groups_matched;
          Alcotest.test_case "measurement keys" `Quick test_measure_keys;
          Alcotest.test_case "comment classification" `Quick
            test_comment_classification;
        ] );
      ( "tempering",
        [
          Alcotest.test_case "exchange acceptance rule" `Quick
            test_exchange_probability_rule;
          Alcotest.test_case "finds minimum" `Quick
            test_tempered_finds_minimum;
        ] );
      qsuite "tempering-properties" [ prop_tempered_jobs_deterministic ];
      ( "est-cache",
        [
          Alcotest.test_case "hits and quantization" `Quick
            test_est_cache_hits_and_quantization;
          Alcotest.test_case "lru eviction" `Quick test_est_cache_lru_eviction;
          Alcotest.test_case "non-finite hardening" `Quick
            test_est_cache_nonfinite_keys;
          Alcotest.test_case "representative evaluation" `Quick
            test_est_cache_representative_evaluation;
          Alcotest.test_case "concurrent smoke" `Quick
            test_est_cache_concurrent_smoke;
          Alcotest.test_case "driver reports stats" `Quick
            test_driver_reports_cache_stats;
        ] );
      ( "relax",
        [
          Alcotest.test_case "centered penalty ~0" `Quick
            test_relax_centered_zero_penalty;
          Alcotest.test_case "wide unit-cube mapping" `Quick
            test_relax_wide_mapping;
          Alcotest.test_case "fake op reads back" `Quick
            test_relax_fake_op_reads_back;
        ] );
      qsuite "relax-properties" [ prop_relax_penalty_monotone ];
      ( "module-problems",
        [
          Alcotest.test_case "s&h ape-centered" `Quick
            test_module_problem_ape_centered;
          Alcotest.test_case "adc area scaling" `Quick
            test_module_problem_adc_scaling;
        ] );
    ]
