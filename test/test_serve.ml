(* The serve subsystem: job-spec parsing with spans, the print → parse
   → print fixpoint, scheduler backpressure/fail-fast/timeout
   semantics, worker-count determinism of the record stream, the
   runner's payload dispatch, and spool-directory ingestion. *)

module Sv = Ape_serve
module Job = Sv.Job
module Record = Sv.Record
module Scheduler = Sv.Scheduler

let proc = Ape_process.Process.c12

let contains ~affix s =
  let la = String.length affix and ls = String.length s in
  let rec at i = i + la <= ls && (String.sub s i la = affix || at (i + 1)) in
  la = 0 || at 0

(* ---------- parsing: values, defaults, spans ---------- *)

let test_parse_values () =
  match
    Job.parse_batch
      "(job synth (id s0) (gain 200) (ugf 2meg) (ibias 2u) (cl 4.7p)\n\
      \ (bias wilson) (zout 1k) (buffer) (seed 9) (chains 3)\n\
      \ (schedule quick) (timeout 2.5) (mode wide))"
  with
  | [ Ok j ] ->
    Alcotest.(check string) "id" "s0" j.Job.id;
    Alcotest.(check (option (float 0.))) "timeout" (Some 2.5) j.Job.timeout;
    (match j.Job.payload with
    | Job.Synth { spec; mode; seed; chains; schedule } ->
      Alcotest.(check (float 0.)) "gain" 200. spec.Job.gain;
      Alcotest.(check (float 0.)) "ugf" 2e6 spec.Job.ugf;
      Alcotest.(check (float 1e-12)) "ibias" 2e-6 spec.Job.ibias;
      Alcotest.(check (float 1e-18)) "cl" 4.7e-12 spec.Job.cl;
      Alcotest.(check bool) "wilson" true (spec.Job.bias = Job.Wilson);
      Alcotest.(check (option (float 0.))) "zout" (Some 1e3) spec.Job.zout;
      Alcotest.(check bool) "buffer" true spec.Job.buffer;
      Alcotest.(check bool) "wide" true (mode = Job.Wide_mode);
      Alcotest.(check (option int)) "seed" (Some 9) seed;
      Alcotest.(check int) "chains" 3 chains;
      Alcotest.(check bool) "quick" true (schedule = Job.Quick)
    | _ -> Alcotest.fail "expected a synth payload")
  | rs -> Alcotest.failf "expected one job, got %d results" (List.length rs)

let test_parse_defaults () =
  match Job.parse_batch "(job mc (gain 100) (ugf 1meg))" with
  | [ Ok j ] ->
    (* No (id _): position-derived default. *)
    Alcotest.(check string) "default id" "job0" j.Job.id;
    Alcotest.(check (option (float 0.))) "no timeout" None j.Job.timeout;
    (match j.Job.payload with
    | Job.Mc { spec; samples; level; sigma_scale; seed } ->
      Alcotest.(check (float 1e-12)) "ibias default" 1e-6 spec.Job.ibias;
      Alcotest.(check (float 1e-18)) "cl default" 10e-12 spec.Job.cl;
      Alcotest.(check bool) "simple bias" true (spec.Job.bias = Job.Simple);
      Alcotest.(check int) "samples default" 200 samples;
      Alcotest.(check bool) "estimate level" true (level = Job.Mc_estimate);
      Alcotest.(check (float 0.)) "sigma default" 1.0 sigma_scale;
      Alcotest.(check (option int)) "no seed" None seed
    | _ -> Alcotest.fail "expected an mc payload")
  | _ -> Alcotest.fail "expected one job"

let error_of = function
  | Error (e : Job.error) -> e
  | Ok j -> Alcotest.fail ("expected an error, parsed " ^ Job.print j)

let span_string (e : Job.error) =
  match e.Job.span with
  | Some s -> Sv.Reader.pp_span s
  | None -> "-"

let test_parse_error_spans () =
  (* The bad field's own span, not the whole form's. *)
  let e =
    error_of (List.hd (Job.parse_batch "(job estimate (gain x) (ugf 1meg))"))
  in
  Alcotest.(check string) "bad number span" "1:15-1:23" (span_string e);
  Alcotest.(check bool) "mentions the token" true
    (String.length e.Job.msg > 0 && e.Job.id = Some "job0");
  (* Line information survives multi-line files. *)
  let rs =
    Job.parse_batch
      "(job estimate (id a) (gain 10) (ugf 1k))\n\
       (job estimate (id b) (gain 10) (ugf 1k)\n\
      \  (bias bogus))"
  in
  (match rs with
  | [ Ok _; Error e ] ->
    Alcotest.(check string) "error id" "b" (Option.get e.Job.id);
    Alcotest.(check string) "bias span on line 3" "3:3-3:15" (span_string e)
  | _ -> Alcotest.fail "expected [Ok; Error]");
  (* Unknown and duplicate keys are rejected, with spans. *)
  let e =
    error_of
      (List.hd (Job.parse_batch "(job estimate (gain 1) (ugf 1) (gian 2))"))
  in
  Alcotest.(check bool) "unknown field" true (contains ~affix:"gian" e.Job.msg);
  let e =
    error_of
      (List.hd (Job.parse_batch "(job estimate (gain 1) (gain 2) (ugf 1))"))
  in
  Alcotest.(check bool) "duplicate field" true
    (String.length (span_string e) > 1)

let test_parse_never_raises () =
  (* Structural garbage: one error record, no exception. *)
  List.iter
    (fun text ->
      match Job.parse_batch text with
      | rs ->
        Alcotest.(check bool)
          ("no Ok for: " ^ text)
          true
          (List.for_all (function Error _ -> true | Ok _ -> false) rs)
      | exception e ->
        Alcotest.failf "parse_batch raised %s on %s" (Printexc.to_string e)
          text)
    [ "(job estimate (gain 1)"; (* unbalanced *)
      ")"; "\"unterminated"; "(job)"; "atom"; "()";
      "(job estimate (gain 1) (ugf))"; (* empty field *)
      "(job sim)"; (* missing file *)
      "(job mc (gain 1) (ugf 1) (samples 0))";
      "(job estimate (gain -3) (ugf 1k))";
      "(job estimate (gain nan) (ugf 1k))";
      "(job verify (levels bogus))";
      "(job estimate (gain 1) (ugf 1k) (buffer yes))";
    ];
  (* And a good job after a bad one still parses. *)
  match Job.parse_batch "(job)\n(job estimate (id g) (gain 5) (ugf 1k))" with
  | [ Error _; Ok j ] -> Alcotest.(check string) "survivor" "g" j.Job.id
  | _ -> Alcotest.fail "expected [Error; Ok]"

(* ---------- print → parse → print (QCheck) ---------- *)

let gen_spec =
  QCheck.Gen.(
    let* gain = float_range 1.5 1e4 in
    let* ugf = float_range 1e3 1e8 in
    let* ibias = float_range 1e-7 1e-4 in
    let* cl = float_range 1e-13 1e-10 in
    let* bias = oneofl [ Job.Simple; Job.Wilson; Job.Cascode ] in
    let* zout = opt (float_range 10. 1e6) in
    let* buffer = bool in
    return { Job.gain; ugf; ibias; cl; bias; zout; buffer })

let gen_id =
  QCheck.Gen.(
    oneof
      [ small_string ~gen:(char_range 'a' 'z');
        small_string ~gen:printable;
        (* force the quoting path *)
        map (fun s -> "weird \"" ^ s ^ "\\\n\t;()") string_printable;
      ])

let gen_job =
  QCheck.Gen.(
    let* id = gen_id in
    let* timeout = opt (float_range 0.001 100.) in
    let* payload =
      oneof
        [ map (fun s -> Job.Estimate s) gen_spec;
          ( let* spec = gen_spec in
            let* mode = oneofl [ Job.Ape_mode; Job.Wide_mode ] in
            let* seed = opt (int_bound 99999) in
            let* chains = int_range 1 5 in
            let* schedule = oneofl [ Job.Quick; Job.Full ] in
            return (Job.Synth { spec; mode; seed; chains; schedule }) );
          ( let* spec = gen_spec in
            let* samples = int_range 1 5000 in
            let* level = oneofl [ Job.Mc_estimate; Job.Mc_simulate ] in
            let* sigma_scale = float_range 0.1 4. in
            let* seed = opt (int_bound 99999) in
            return (Job.Mc { spec; samples; level; sigma_scale; seed }) );
          ( let* file = gen_id in
            let* out = opt (small_string ~gen:(char_range 'a' 'z')) in
            return (Job.Sim { file; out }) );
          ( let* levels =
              oneofl
                [ []; [ "device" ]; [ "basic"; "opamp" ];
                  [ "device"; "basic"; "opamp"; "module" ];
                ]
            in
            let* slew = bool in
            let* calibration = opt gen_id in
            return (Job.Verify { levels; slew; calibration }) );
        ]
    in
    return { Job.id; timeout; payload })

let arbitrary_job =
  QCheck.make ~print:Job.print gen_job

let prop_print_parse_print =
  QCheck.Test.make ~name:"print → parse → print is a fixpoint" ~count:500
    arbitrary_job (fun job ->
      let printed = Job.print job in
      match Job.parse_batch printed with
      | [ Ok job' ] ->
        let again = Job.print job' in
        if again <> printed then
          QCheck.Test.fail_reportf "reprint differs:\n  %s\n  %s" printed
            again
        else true
      | [ Error e ] ->
        QCheck.Test.fail_reportf "printed form rejected: %s\n  %s"
          (Job.error_to_string e) printed
      | rs ->
        QCheck.Test.fail_reportf "%d results for one printed job"
          (List.length rs))

let prop_seed_stable =
  QCheck.Test.make ~name:"seed_of is position-independent" ~count:200
    arbitrary_job (fun job ->
      (* Same job, different surrounding batch: same seed. *)
      Job.seed_of job = Job.seed_of { job with Job.timeout = None }
      && Job.seed_of job >= 0)

(* ---------- scheduler semantics ---------- *)

let batch_of_text text = Job.parse_batch text

let run_collect ?(config = Scheduler.default) ?runner text =
  let runner =
    match runner with Some r -> r | None -> Sv.Runner.create proc
  in
  let records = ref [] in
  let summary =
    Scheduler.run_batch config runner ~batch:"test"
      ~emit:(fun r -> records := r :: !records)
      (batch_of_text text)
  in
  (List.rev !records, summary)

let statuses records =
  List.map (fun (r : Record.t) -> Record.status_name r.Record.status) records

let cheap_jobs n =
  String.concat "\n"
    (List.init n (fun i ->
         Printf.sprintf "(job estimate (id e%d) (gain 150) (ugf 1meg))" i))

let test_shed_policy () =
  (* queue=2, shed: a 5-job batch admits two jobs, refuses three with
     typed overloaded records — deterministically, at any job count. *)
  let config =
    { Scheduler.default with Scheduler.queue = 2; policy = Scheduler.Shed;
      jobs = 2 }
  in
  let records, summary = run_collect ~config (cheap_jobs 5) in
  Alcotest.(check (list string))
    "first two run, rest shed"
    [ "ok"; "ok"; "overloaded"; "overloaded"; "overloaded" ]
    (statuses records);
  Alcotest.(check int) "summary.overloaded" 3 summary.Record.overloaded;
  Alcotest.(check int) "summary.ok" 2 summary.Record.ok

let test_fail_fast_parse_error () =
  let config = { Scheduler.default with Scheduler.fail_fast = true } in
  let text = "(job bogus (id bad))\n" ^ cheap_jobs 3 in
  let records, summary = run_collect ~config text in
  Alcotest.(check (list string))
    "parse error cancels the rest"
    [ "parse-error"; "cancelled"; "cancelled"; "cancelled" ]
    (statuses records);
  Alcotest.(check int) "summary.cancelled" 3 summary.Record.cancelled

let test_fail_fast_engine_failure () =
  (* queue=1 so the failure is collected before job 3 is admitted; the
     gain is unreachable, so the estimator raises Infeasible. *)
  let config =
    { Scheduler.default with Scheduler.fail_fast = true; queue = 1 }
  in
  let text =
    "(job estimate (id bad) (gain 1e9) (ugf 1meg))\n" ^ cheap_jobs 2
  in
  let records, _ = run_collect ~config text in
  match statuses records with
  | [ "failed"; s2; "cancelled" ] ->
    (* Job 2 was admitted while job 1 was in flight (window 1 drains
       before each admission), so it may have run or been cancelled
       depending on when the failure was collected — but job 3 is
       always cancelled. *)
    Alcotest.(check bool) "middle ran or cancelled" true
      (s2 = "ok" || s2 = "cancelled")
  | other ->
    Alcotest.failf "unexpected statuses: %s" (String.concat "," other)

let test_continue_on_error_default () =
  let text =
    "(job estimate (id bad) (gain 1e9) (ugf 1meg))\n" ^ cheap_jobs 2
  in
  let records, summary = run_collect text in
  Alcotest.(check (list string))
    "later jobs unaffected"
    [ "failed"; "ok"; "ok" ]
    (statuses records);
  Alcotest.(check int) "summary.failed" 1 summary.Record.failed

let test_missing_calibration_card () =
  (* A verify job naming a card that doesn't exist fails as that job's
     own record — the daemon survives and later jobs still run. *)
  let text =
    "(job verify (id v) (levels device) (no-slew) \
     (calibration /nonexistent/card.calib))\n" ^ cheap_jobs 2
  in
  let records, summary = run_collect text in
  Alcotest.(check (list string))
    "card failure is per-job"
    [ "failed"; "ok"; "ok" ]
    (statuses records);
  Alcotest.(check int) "summary.failed" 1 summary.Record.failed;
  match records with
  | (r : Record.t) :: _ -> (
    match r.Record.status with
    | Record.Failed msg ->
      (* Sys_error text names the path — a clean message, not an
         exception dump. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the card" msg)
        true
        (contains msg "/nonexistent/card.calib")
    | _ -> Alcotest.fail "first record did not fail")
  | [] -> Alcotest.fail "no records"

let test_timeout_zero () =
  let records, summary =
    run_collect "(job estimate (id t0) (timeout 1e-9) (gain 150) (ugf 1meg))"
  in
  Alcotest.(check (list string)) "deadline expired" [ "timeout" ]
    (statuses records);
  Alcotest.(check int) "summary.timeout" 1 summary.Record.timed_out

let test_ordered_emission () =
  (* Records come back in input order even with many workers. *)
  let config = { Scheduler.default with Scheduler.jobs = 4; queue = 16 } in
  let records, _ = run_collect ~config (cheap_jobs 12) in
  Alcotest.(check (list string))
    "input order"
    (List.init 12 (fun i -> Printf.sprintf "e%d" i))
    (List.map (fun (r : Record.t) -> r.Record.id) records)

(* ---------- determinism across worker counts ---------- *)

let det_batch =
  "(job synth (id s0) (gain 200) (ugf 2meg) (seed 7) (schedule quick))\n\
   (job mc (id m0) (gain 150) (ugf 1meg) (samples 40) (seed 3))\n\
   (job estimate (id e0) (gain 120) (ugf 500k))"

let rendered_batch ~jobs =
  let config = { Scheduler.default with Scheduler.jobs; queue = 8 } in
  let records, summary = run_collect ~config det_batch in
  String.concat "\n"
    (List.map (Record.render ~deterministic:true) records
    @ [ Record.render_summary ~deterministic:true summary ])

let test_deterministic_across_jobs () =
  let one = rendered_batch ~jobs:1 in
  let three = rendered_batch ~jobs:3 in
  Alcotest.(check string) "jobs=1 equals jobs=3" one three

(* ---------- runner payloads ---------- *)

let run_one job =
  let runner = Sv.Runner.create proc in
  Sv.Runner.run runner job

let parse_one text =
  match Job.parse_batch text with
  | [ Ok j ] -> j
  | _ -> Alcotest.fail ("bad test job: " ^ text)

let assoc key payload =
  match List.assoc_opt key payload with
  | Some v -> v
  | None -> Alcotest.fail ("payload missing " ^ key)

let test_runner_sim () =
  let job =
    parse_one "(job sim (id x) (file \"golden/decks/rc_ladder.sp\") (out out))"
  in
  let status, payload = run_one job in
  Alcotest.(check string) "sim ok" "ok" (Record.status_name status);
  (match assoc "dc_gain" payload with
  | Record.Float g -> Alcotest.(check (float 1e-6)) "unity DC gain" 1.0 g
  | _ -> Alcotest.fail "dc_gain not a float");
  match assoc "f_minus_3db" payload with
  | Record.Float f ->
    Alcotest.(check bool) "corner in band" true (f > 1. && f < 1e6)
  | other ->
    Alcotest.failf "f_minus_3db: unexpected %s"
      (match other with Record.Null -> "null" | _ -> "value")

let test_runner_sim_missing_file () =
  let job = parse_one "(job sim (id x) (file \"no/such/file.sp\"))" in
  let status, _ = run_one job in
  Alcotest.(check string) "failed, not raised" "failed"
    (Record.status_name status)

let test_runner_verify () =
  let job = parse_one "(job verify (id v) (levels device) (no-slew))" in
  let status, payload = run_one job in
  Alcotest.(check string) "device level passes" "ok"
    (Record.status_name status);
  match assoc "rows" payload with
  | Record.Int n -> Alcotest.(check bool) "measured rows" true (n > 0)
  | _ -> Alcotest.fail "rows not an int"

let test_runner_cache_shared_by_fingerprint () =
  let runner = Sv.Runner.create proc in
  let j seed id =
    parse_one
      (Printf.sprintf
         "(job synth (id %s) (gain 200) (ugf 2meg) (seed %d) (schedule \
          quick))"
         id seed)
  in
  ignore (Sv.Runner.run runner (j 7 "a"));
  let lookups1, hits1 = Sv.Runner.cache_stats runner in
  (* Same fingerprint, same seed: the whole trajectory is warm. *)
  ignore (Sv.Runner.run runner (j 7 "b"));
  let lookups2, hits2 = Sv.Runner.cache_stats runner in
  Alcotest.(check int) "one fingerprint" 1 (Sv.Runner.cache_count runner);
  Alcotest.(check int) "second run fully cached"
    (lookups2 - lookups1) (hits2 - hits1);
  Alcotest.(check bool) "first run had misses" true (hits1 < lookups1);
  (* A different spec must not share the cache. *)
  ignore
    (Sv.Runner.run runner
       (parse_one
          "(job synth (id c) (gain 150) (ugf 1meg) (seed 7) (schedule \
           quick))"));
  Alcotest.(check int) "second fingerprint" 2 (Sv.Runner.cache_count runner)

(* ---------- record rendering ---------- *)

let test_record_rendering () =
  let r =
    { Record.id = "a\"b\n"; kind = "estimate"; status = Record.Done;
      seconds = 1.5;
      payload = [ ("x", Record.Float 0.1); ("s", Record.Str "t\"") ];
    }
  in
  Alcotest.(check string) "escaped, with seconds"
    "{\"schema\":\"ape-serve/1\",\"id\":\"a\\\"b\\n\",\"kind\":\"estimate\",\
     \"status\":\"ok\",\"seconds\":1.5,\"payload\":{\"x\":0.1,\"s\":\"t\\\"\"}}"
    (Record.render ~deterministic:false r);
  Alcotest.(check string) "deterministic drops seconds"
    "{\"schema\":\"ape-serve/1\",\"id\":\"a\\\"b\\n\",\"kind\":\"estimate\",\
     \"status\":\"ok\",\"payload\":{\"x\":0.1,\"s\":\"t\\\"\"}}"
    (Record.render ~deterministic:true r);
  (* Non-finite floats must not produce invalid JSON. *)
  let r2 = { r with Record.payload = [ ("bad", Record.Float Float.nan) ] } in
  Alcotest.(check bool) "nan renders as null" true
    (contains ~affix:"\"bad\":null" (Record.render ~deterministic:true r2))

(* ---------- spool ---------- *)

let test_spool () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ape_spool_test_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)
  else Sys.mkdir dir 0o755;
  let write name text =
    Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
        Out_channel.output_string oc text)
  in
  write "b.jobs" "(job estimate (id b) (gain 1) (ugf 1))";
  write "a.jobs" "(job estimate (id a) (gain 1) (ugf 1))";
  write "ignored.txt" "not a batch";
  Alcotest.(check (list string))
    "scan finds .jobs sorted"
    [ Filename.concat dir "a.jobs"; Filename.concat dir "b.jobs" ]
    (Sv.Spool.scan dir);
  let seen = ref [] in
  let n =
    Sv.Spool.watch ~once:true dir ~process:(fun path ->
        seen := Filename.basename path :: !seen)
  in
  Alcotest.(check int) "two batches" 2 n;
  Alcotest.(check (list string)) "in name order" [ "a.jobs"; "b.jobs" ]
    (List.rev !seen);
  Alcotest.(check (list string)) "nothing left" [] (Sv.Spool.scan dir);
  Alcotest.(check bool) "renamed done" true
    (Sys.file_exists (Filename.concat dir "a.jobs.done"));
  (* max_batches caps a pass; the un-processed file stays spooled. *)
  write "c.jobs" "x";
  write "d.jobs" "y";
  let n = Sv.Spool.watch ~once:true ~max_batches:1 dir ~process:ignore in
  Alcotest.(check int) "capped" 1 n;
  Alcotest.(check (list string))
    "d still pending"
    [ Filename.concat dir "d.jobs" ]
    (Sv.Spool.scan dir)

(* ---------- suite ---------- *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "serve"
    [
      ( "job-parse",
        [
          Alcotest.test_case "field values" `Quick test_parse_values;
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "error spans" `Quick test_parse_error_spans;
          Alcotest.test_case "never raises" `Quick test_parse_never_raises;
        ] );
      qsuite "job-roundtrip" [ prop_print_parse_print; prop_seed_stable ];
      ( "scheduler",
        [
          Alcotest.test_case "shed policy" `Quick test_shed_policy;
          Alcotest.test_case "fail-fast on parse error" `Quick
            test_fail_fast_parse_error;
          Alcotest.test_case "fail-fast on engine failure" `Quick
            test_fail_fast_engine_failure;
          Alcotest.test_case "continue on error" `Quick
            test_continue_on_error_default;
          Alcotest.test_case "missing calibration card" `Quick
            test_missing_calibration_card;
          Alcotest.test_case "timeout" `Quick test_timeout_zero;
          Alcotest.test_case "ordered emission" `Quick test_ordered_emission;
          Alcotest.test_case "deterministic across jobs" `Slow
            test_deterministic_across_jobs;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sim payload" `Quick test_runner_sim;
          Alcotest.test_case "sim missing file" `Quick
            test_runner_sim_missing_file;
          Alcotest.test_case "verify payload" `Quick test_runner_verify;
          Alcotest.test_case "cache by fingerprint" `Slow
            test_runner_cache_shared_by_fingerprint;
        ] );
      ( "record",
        [ Alcotest.test_case "rendering" `Quick test_record_rendering ] );
      ( "spool", [ Alcotest.test_case "scan/watch/done" `Quick test_spool ] );
    ]
