(* Tests for Ape_check: diff/tolerance semantics, golden-table
   persistence, metamorphic estimator properties (monotonicity, scaling,
   corner bracketing), and the checked-in golden regression gate. *)

module C = Ape_check
module E = Ape_estimator
module Mos = Ape_device.Mos
module Proc = Ape_process.Process

let proc = Proc.c12

(* ---------- diff semantics ---------- *)

let row ?(case = "c") ?(attr = "a") ~gate est sim =
  C.Diff.make ~case ~attr ~gate ~est ~sim

let test_diff_status () =
  let open C.Diff in
  let gate = C.Tolerance.Rel 0.10 in
  Alcotest.(check string) "within bound" "pass"
    (status_name (row ~gate (Some 1.0) (Some 1.05)).status);
  Alcotest.(check string) "out of bound" "FAIL"
    (status_name (row ~gate (Some 1.0) (Some 1.2)).status);
  Alcotest.(check string) "estimate missing" "FAIL"
    (status_name (row ~gate None (Some 1.0)).status);
  Alcotest.(check string) "measurement missing" "info"
    (status_name (row ~gate (Some 1.0) None).status);
  Alcotest.(check string) "both missing" "skip"
    (status_name (row ~gate None None).status);
  Alcotest.(check string) "report-only never fails" "info"
    (status_name
       (row ~gate:C.Tolerance.Report_only (Some 1.0) (Some 99.)).status);
  Alcotest.(check string) "NaN treated as missing" "info"
    (status_name (row ~gate (Some 1.0) (Some Float.nan)).status)

let test_rel_err () =
  Alcotest.(check (float 1e-12)) "symmetric zero" 0.
    (C.Diff.rel_err ~est:3. ~sim:3.);
  Alcotest.(check (float 1e-12)) "10% high" 0.1
    (C.Diff.rel_err ~est:1.1 ~sim:1.0);
  Alcotest.(check (float 1e-12)) "signed values" 0.1
    (C.Diff.rel_err ~est:(-1.1) ~sim:(-1.0));
  Alcotest.(check bool) "zero sim, nonzero est = huge" true
    (C.Diff.rel_err ~est:1. ~sim:0. > 1e10)

(* ---------- golden persistence ---------- *)

let tmp_dir () =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ape_golden_test_%d" (Unix.getpid ()))
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let sample_rows () =
  let gate = C.Tolerance.Rel 0.5 in
  [
    row ~case:"A" ~attr:"gain" ~gate (Some 101.25) (Some 99.5);
    row ~case:"A" ~attr:"ugf" ~gate (Some 1.2345e6) (Some 1.1e6);
    row ~case:"B" ~attr:"zout" ~gate (Some 1e3) None;
  ]

let test_golden_save_load () =
  let dir = tmp_dir () in
  let level = C.Tolerance.Basic in
  let rows = sample_rows () in
  C.Golden.save ~dir level rows;
  match C.Golden.load ~dir level with
  | None -> Alcotest.fail "table not written"
  | Some entries ->
    Alcotest.(check int) "row count" 3 (List.length entries);
    let e = List.nth entries 1 in
    Alcotest.(check string) "case" "A" e.C.Golden.case;
    Alcotest.(check string) "attr" "ugf" e.C.Golden.attr;
    Alcotest.(check bool) "est bit-identical" true
      (e.C.Golden.est = Some 1.2345e6);
    Alcotest.(check bool) "missing sim stays missing" true
      ((List.nth entries 2).C.Golden.sim = None);
    Alcotest.(check int) "no drift against itself" 0
      (List.length (C.Golden.compare_rows ~golden:entries rows))

let test_golden_drift_detection () =
  let dir = tmp_dir () in
  let level = C.Tolerance.Opamp in
  C.Golden.save ~dir level (sample_rows ());
  let golden = Option.get (C.Golden.load ~dir level) in
  (* Perturb one value beyond rtol. *)
  let gate = C.Tolerance.Rel 0.5 in
  let perturbed =
    [
      row ~case:"A" ~attr:"gain" ~gate (Some 101.25) (Some 99.5);
      row ~case:"A" ~attr:"ugf" ~gate (Some 1.2346e6) (Some 1.1e6);
      row ~case:"B" ~attr:"zout" ~gate (Some 1e3) None;
    ]
  in
  (match C.Golden.compare_rows ~golden perturbed with
  | [ d ] ->
    Alcotest.(check string) "drifted attr" "ugf" d.C.Golden.attr;
    Alcotest.(check bool) "describes est drift" true
      (String.length d.C.Golden.what > 0)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 drift, got %d" (List.length l)));
  (* Tiny perturbation inside rtol is not drift. *)
  let nudged =
    [
      row ~case:"A" ~attr:"gain" ~gate (Some (101.25 *. (1. +. 1e-9))) (Some 99.5);
      row ~case:"A" ~attr:"ugf" ~gate (Some 1.2345e6) (Some 1.1e6);
      row ~case:"B" ~attr:"zout" ~gate (Some 1e3) None;
    ]
  in
  Alcotest.(check int) "within rtol is clean" 0
    (List.length (C.Golden.compare_rows ~golden nudged));
  (* Removed and added rows are both drift. *)
  let shrunk = [ List.hd (sample_rows ()) ] in
  Alcotest.(check int) "disappeared rows flagged" 2
    (List.length (C.Golden.compare_rows ~golden shrunk));
  Alcotest.(check int) "new rows flagged" 2
    (List.length
       (C.Golden.compare_rows ~golden:[ List.hd golden ] (sample_rows ())))

(* ---------- per-attribute golden tolerances ---------- *)

let test_golden_rtol_table () =
  (* The registry replaces the old hard-coded "cmrr" string match: the
     table entry must widen the comparison, everything else keeps the
     caller's rtol, and the wider of the two always wins. *)
  Alcotest.(check (float 0.)) "cmrr widened" 1e-3
    (C.Tolerance.golden_rtol ~rtol:1e-6 "cmrr");
  Alcotest.(check (float 0.)) "unlisted attr untouched" 1e-6
    (C.Tolerance.golden_rtol ~rtol:1e-6 "gain");
  Alcotest.(check (float 0.)) "caller rtol can exceed the table" 1e-2
    (C.Tolerance.golden_rtol ~rtol:1e-2 "cmrr");
  C.Tolerance.register_golden_rtol ~attr:"test_attr_xyz" 5e-4;
  Alcotest.(check (float 0.)) "registered attr widened" 5e-4
    (C.Tolerance.golden_rtol ~rtol:1e-6 "test_attr_xyz");
  (* End to end: a cmrr estimate drifting 5e-4 is inside the table
     tolerance; the same drift on gain is flagged. *)
  let gate = C.Tolerance.Rel 0.5 in
  let mk attr est = row ~case:"A" ~attr ~gate (Some est) (Some 100.) in
  let golden_rows attr = [ mk attr 100. ] in
  let dir = tmp_dir () in
  List.iter
    (fun (attr, expected_drifts) ->
      C.Golden.save ~dir C.Tolerance.Basic (golden_rows attr);
      let golden = Option.get (C.Golden.load ~dir C.Tolerance.Basic) in
      let fresh = [ mk attr (100. *. (1. +. 5e-4)) ] in
      Alcotest.(check int)
        (attr ^ " drift count")
        expected_drifts
        (List.length (C.Golden.compare_rows ~golden fresh)))
    [ ("cmrr", 0); ("gain", 1) ]

(* ---------- frozen calibrated-vs-raw error table ---------- *)

let test_calibrated_errors_frozen () =
  (* Fit a card from the catalog itself, re-run the checker through it,
     and hold the per-(level, attribute) error table against the frozen
     test/golden/calib_errors.tsv — promotable with APE_UPDATE_GOLDEN=1
     (or ape verify --update), like the value tables.  Hardening makes
     "calibrated never worse than raw" structural; gate it anyway. *)
  let card = C.Calibrate.fit ~slew:false proc in
  let outcome = C.Check.run ~slew:false ~calibration:card proc in
  let errors = C.Check.error_table outcome in
  Alcotest.(check bool) "has error rows" true (List.length errors >= 10);
  List.iter
    (fun (e : C.Golden.error_entry) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s calibrated %.4f <= raw %.4f" e.C.Golden.e_level
           e.C.Golden.e_attr e.C.Golden.cal_max e.C.Golden.raw_max)
        true
        (e.C.Golden.cal_max <= e.C.Golden.raw_max +. 1e-12))
    errors;
  let dir = "golden" in
  if C.Golden.update_requested () then begin
    C.Golden.save_errors ~dir errors;
    Printf.printf "promoted %s\n" (C.Golden.errors_path ~dir)
  end
  else
    match C.Golden.load_errors ~dir with
    | None ->
      Alcotest.fail
        "golden/calib_errors.tsv missing — promote it with \
         APE_UPDATE_GOLDEN=1"
    | Some golden ->
      (* Error values are ratios of nearly-cancelling est/sim pairs, so
         the cross-engine comparison needs the wider rtol on top of the
         absolute floor. *)
      let drifts = C.Golden.compare_errors ~rtol:1e-2 ~golden errors in
      List.iter
        (fun (d : C.Golden.drift) ->
          Printf.printf "error drift %s/%s: %s\n" d.C.Golden.case
            d.C.Golden.attr d.C.Golden.what)
        drifts;
      Alcotest.(check int) "no error drift" 0 (List.length drifts)

(* ---------- metamorphic properties ---------- *)

let prop_gm_monotone_in_wl =
  QCheck.Test.make ~name:"est_gm monotone in W/L" ~count:200
    QCheck.(pair (float_range 1. 50.) (float_range 1. 50.))
    (fun (a, b) ->
      QCheck.assume (Float.abs (a -. b) > 1e-9);
      let lo = Float.min a b and hi = Float.max a b in
      let gm w_over_l = Mos.est_gm proc.Proc.nmos ~w_over_l ~ids:10e-6 in
      gm lo < gm hi)

let prop_gm_monotone_in_ids =
  QCheck.Test.make ~name:"est_gm monotone in Ids" ~count:200
    QCheck.(pair (float_range 1e-6 1e-3) (float_range 1e-6 1e-3))
    (fun (a, b) ->
      QCheck.assume (Float.abs (a -. b) > 1e-12);
      let lo = Float.min a b and hi = Float.max a b in
      let gm ids = Mos.est_gm proc.Proc.nmos ~w_over_l:20. ~ids in
      gm lo < gm hi)

let prop_corner_bracketing =
  (* Slow / Typical / Fast corners must bracket the drain current at
     any saturated bias point. *)
  QCheck.Test.make ~name:"corner currents bracket typical" ~count:50
    QCheck.(float_range 1.5 3.0)
    (fun vgs ->
      let geom = Mos.geom ~w:10e-6 ~l:2.4e-6 in
      let ids corner =
        let p = Proc.corner corner proc in
        Mos.drain_current p.Proc.nmos geom ~vgs ~vds:2.5 ~vsb:0.
      in
      let slow = ids Proc.Slow
      and typ = ids Proc.Typical
      and fast = ids Proc.Fast in
      slow < typ && typ < fast)

let test_ugf_scales_with_itail () =
  (* Quadrupling the tail current roughly doubles gm and therefore the
     estimated UGF of the same diff-pair topology (gm ~ sqrt(I)). *)
  let ugf itail =
    let d =
      E.Diff_pair.design proc
        (E.Diff_pair.spec ~av:1000. ~cl:1e-12 E.Diff_pair.Cmos_mirror ~itail)
    in
    Option.get d.E.Diff_pair.perf.E.Perf.ugf
  in
  let u1 = ugf 1e-6 and u4 = ugf 4e-6 in
  Alcotest.(check bool)
    (Printf.sprintf "ugf(4I)=%g > ugf(I)=%g" u4 u1)
    true (u4 > 1.5 *. u1)

let test_opamp_corners_bracket_power () =
  (* The same opamp design re-simulated at Slow/Typical/Fast corners:
     static power must come out ordered with the corner mobility. *)
  let d =
    E.Opamp.design proc
      (E.Opamp.spec ~av:206. ~ugf:1.3e6 ~ibias:1e-6 ~cl:10e-12 ())
  in
  let frag = E.Opamp.fragment proc d in
  let base = E.Fragment.with_supply ~vdd:proc.Proc.vdd frag in
  let vcm = d.E.Opamp.input_cm in
  let base =
    Ape_circuit.Netlist.append base
      [
        Ape_circuit.Netlist.Vsource
          { name = "VINP"; p = "inp"; n = "0"; dc = vcm; ac = 0.5 };
        Ape_circuit.Netlist.Vsource
          { name = "VINN"; p = "inn"; n = "0"; dc = vcm; ac = -0.5 };
      ]
  in
  let power corner =
    let p = Proc.corner corner proc in
    let nl = Ape_circuit.Netlist.retarget_process p base in
    let op = Ape_spice.Dc.solve nl in
    Ape_spice.Dc.static_power op ~supply:"VDD"
  in
  let slow = power Proc.Slow
  and typ = power Proc.Typical
  and fast = power Proc.Fast in
  Alcotest.(check bool)
    (Printf.sprintf "slow %g <= typ %g <= fast %g" slow typ fast)
    true
    (slow <= typ && typ <= fast)

(* ---------- the regression gate itself ---------- *)

let test_device_level_all_pass () =
  let rows = C.Cases.device_rows proc in
  Alcotest.(check bool) "has rows" true (List.length rows >= 15);
  List.iter
    (fun (r : C.Diff.row) ->
      if r.C.Diff.status = C.Diff.Fail then
        Alcotest.fail
          (Printf.sprintf "%s/%s failed (est %s, sim %s)" r.C.Diff.case
             r.C.Diff.attr
             (match r.C.Diff.est with
             | Some v -> string_of_float v
             | None -> "-")
             (match r.C.Diff.sim with
             | Some v -> string_of_float v
             | None -> "-")))
    rows

let test_verify_against_checked_in_goldens () =
  (* The CI gate: every level inside tolerance AND bit-stable against
     the promoted tables in test/golden/. *)
  let outcome = C.Check.run ~golden_dir:"golden" proc in
  List.iter
    (fun (d : C.Golden.drift) ->
      Printf.printf "drift %s/%s: %s\n" d.C.Golden.case d.C.Golden.attr
        d.C.Golden.what)
    (C.Check.drifts outcome);
  List.iter
    (fun (r : C.Diff.row) ->
      Printf.printf "fail %s/%s\n" r.C.Diff.case r.C.Diff.attr)
    (C.Check.failures outcome);
  Alcotest.(check bool) "verify ok" true (C.Check.ok outcome)

let test_tolerance_tables () =
  List.iter
    (fun level ->
      let tols = C.Tolerance.for_level level in
      Alcotest.(check bool)
        (C.Tolerance.level_name level ^ " has gates")
        true
        (List.exists
           (fun t ->
             match t.C.Tolerance.gate with
             | C.Tolerance.Rel b -> b > 0.
             | C.Tolerance.Report_only -> false)
           tols);
      Alcotest.(check bool)
        (C.Tolerance.level_name level ^ " name round-trip")
        true
        (C.Tolerance.level_of_name (C.Tolerance.level_name level) = Some level))
    C.Tolerance.all_levels

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_check"
    [
      ( "diff",
        [
          Alcotest.test_case "status semantics" `Quick test_diff_status;
          Alcotest.test_case "relative error" `Quick test_rel_err;
        ] );
      ( "golden",
        [
          Alcotest.test_case "save/load round-trip" `Quick
            test_golden_save_load;
          Alcotest.test_case "drift detection" `Quick
            test_golden_drift_detection;
          Alcotest.test_case "per-attribute rtol table" `Quick
            test_golden_rtol_table;
        ] );
      ( "errors",
        [
          Alcotest.test_case "calibrated-vs-raw table frozen" `Quick
            test_calibrated_errors_frozen;
        ] );
      qsuite "metamorphic"
        [ prop_gm_monotone_in_wl; prop_gm_monotone_in_ids; prop_corner_bracketing ];
      ( "scaling",
        [
          Alcotest.test_case "UGF grows with tail current" `Quick
            test_ugf_scales_with_itail;
          Alcotest.test_case "corner power bracketing" `Quick
            test_opamp_corners_bracket_power;
        ] );
      ( "gate",
        [
          Alcotest.test_case "tolerance tables" `Quick test_tolerance_tables;
          Alcotest.test_case "device level passes" `Quick
            test_device_level_all_pass;
          Alcotest.test_case "golden tables match" `Quick
            test_verify_against_checked_in_goldens;
        ] );
    ]
