(* Tests for Ape_symbolic: expression evaluation, differentiation,
   simplification, the infix parser and the equation solver. *)

module Expr = Ape_symbolic.Expr
module Parser = Ape_symbolic.Parser
module Solver = Ape_symbolic.Solver
module F = Ape_util.Float_ext

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.8g vs %.8g" msg expected actual)
    true
    (F.approx_equal ~rtol:tol ~atol:tol expected actual)

let env = Expr.Env.of_list [ ("x", 2.); ("y", 3.); ("kp", 75e-6) ]

(* ---------- eval ---------- *)

let test_eval_basic () =
  let open Expr in
  check_close "add" 5. (eval env (var "x" + var "y"));
  check_close "mul" 6. (eval env (var "x" * var "y"));
  check_close "div" (2. /. 3.) (eval env (var "x" / var "y"));
  check_close "pow" 8. (eval env (var "x" ** 3.));
  check_close "sqrt" (Float.sqrt 2.) (eval env (sqrt (var "x")));
  check_close "nested" 7. (eval env ((var "x" * var "x") + var "y"))

let test_eval_errors () =
  Alcotest.check_raises "unbound" (Expr.Unbound_variable "z") (fun () ->
      ignore (Expr.eval env (Expr.var "z")));
  Alcotest.check_raises "div0" (Expr.Domain_error "division by zero")
    (fun () ->
      ignore (Expr.eval env Expr.(const 1. / (var "x" - const 2.))));
  Alcotest.check_raises "sqrt neg" (Expr.Domain_error "sqrt of negative")
    (fun () -> ignore (Expr.eval env Expr.(sqrt (const (-1.)))))

(* ---------- diff ---------- *)

let numeric_diff f x =
  let h = 1e-6 *. (1. +. Float.abs x) in
  (f (x +. h) -. f (x -. h)) /. (2. *. h)

let check_derivative name expr at =
  let f v = Expr.eval (Expr.Env.of_list [ ("x", v) ]) expr in
  let symbolic =
    Expr.eval (Expr.Env.of_list [ ("x", at) ]) (Expr.diff "x" expr)
  in
  check_close name (numeric_diff f at) symbolic ~tol:1e-4

let test_diff () =
  let x = Expr.var "x" in
  check_derivative "d(x^2)" Expr.(x * x) 1.7;
  check_derivative "d(sqrt)" Expr.(sqrt x) 2.3;
  check_derivative "d(1/x)" Expr.(const 1. / x) 1.4;
  check_derivative "d(exp)" Expr.(exp x) 0.8;
  check_derivative "d(log)" Expr.(log x) 2.9;
  check_derivative "d(x^2.5)" Expr.(x ** 2.5) 1.3;
  check_derivative "paper gm eq" Expr.(sqrt (const 2. * x)) 1.1

let test_diff_constant () =
  Alcotest.(check bool) "d(const) simplifies to 0" true
    (Expr.equal (Expr.diff "x" (Expr.const 5.)) (Expr.const 0.));
  Alcotest.(check bool) "d(y)/dx = 0" true
    (Expr.equal (Expr.diff "x" (Expr.var "y")) (Expr.const 0.))

(* ---------- simplify ---------- *)

let expr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun c -> Expr.Const c) (float_range 0.5 4.);
                return (Expr.Var "x");
              ]
          else
            frequency
              [
                (2, map2 (fun a b -> Expr.Add (a, b)) (self (n / 2)) (self (n / 2)));
                (2, map2 (fun a b -> Expr.Mul (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun a b -> Expr.Sub (a, b)) (self (n / 2)) (self (n / 2)));
                (1, map (fun a -> Expr.Sqrt (Expr.Abs a)) (self (n - 1)));
                (1, map (fun a -> Expr.Neg a) (self (n - 1)));
              ])
        (min n 6))

let arb_expr = QCheck.make ~print:Expr.to_string expr_gen

let prop_simplify_preserves_value =
  QCheck.Test.make ~name:"simplify preserves value" ~count:300
    (QCheck.pair arb_expr (QCheck.float_range 0.5 3.)) (fun (e, x) ->
      let env = Expr.Env.of_list [ ("x", x) ] in
      let v1 = try Some (Expr.eval env e) with Expr.Domain_error _ -> None in
      match v1 with
      | None -> QCheck.assume_fail ()
      | Some v1 ->
        let v2 = Expr.eval env (Expr.simplify e) in
        F.approx_equal ~rtol:1e-9 ~atol:1e-9 v1 v2)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent" ~count:300 arb_expr
    (fun e ->
      let s = Expr.simplify e in
      Expr.simplify s = s)

let test_simplify_rules () =
  let open Expr in
  Alcotest.(check bool) "x+0" true (equal (var "x" + const 0.) (var "x"));
  Alcotest.(check bool) "x*1" true (equal (var "x" * const 1.) (var "x"));
  Alcotest.(check bool) "x*0" true (equal (var "x" * const 0.) (const 0.));
  Alcotest.(check bool) "const fold" true
    (equal (const 2. + const 3.) (const 5.));
  Alcotest.(check bool) "neg neg" true (equal (neg (neg (var "x"))) (var "x"))

(* ---------- parser ---------- *)

let test_parse_numbers () =
  let check s expected =
    match Parser.parse_number s with
    | Some v -> check_close s expected v
    | None -> Alcotest.fail ("parse_number failed on " ^ s)
  in
  check "4.7k" 4.7e3;
  check "10u" 10e-6;
  check "2MEG" 2e6;
  check "1e-3" 1e-3;
  check "3.3" 3.3;
  check "10pF" 10e-12;
  check "-2.5m" (-2.5e-3);
  Alcotest.(check bool) "garbage" true (Parser.parse_number "abc" = None)

let test_parse_suffixes () =
  let check s expected =
    match Parser.parse_number s with
    | Some v -> check_close s expected v
    | None -> Alcotest.fail ("parse_number failed on " ^ s)
  in
  (* Every SPICE magnitude suffix, both cases.  The single letter "m"
     is the repo's one deliberate case-significant suffix (m = milli,
     M = mega); "meg"/"mil" and all other letters are case-free. *)
  check "1t" 1e12;
  check "1T" 1e12;
  check "1g" 1e9;
  check "1G" 1e9;
  check "2meg" 2e6;
  check "2MEG" 2e6;
  check "2mEg" 2e6;
  check "2Meg" 2e6;
  check "1k" 1e3;
  check "1K" 1e3;
  check "1m" 1e-3;
  check "1M" 1e6;
  check "1u" 1e-6;
  check "1U" 1e-6;
  check "1n" 1e-9;
  check "1N" 1e-9;
  check "1p" 1e-12;
  check "1P" 1e-12;
  check "1f" 1e-15;
  check "1F" 1e-15;
  check "1a" 1e-18;
  check "1A" 1e-18;
  check "1mil" 25.4e-6;
  check "1MIL" 25.4e-6;
  check "1Mil" 25.4e-6;
  (* Trailing unit letters after the suffix are conventional noise. *)
  check "10pF" 10e-12;
  check "4.7kOhm" 4.7e3;
  check "100nH" 100e-9

let suffix_table =
  [
    ("t", 1e12); ("g", 1e9); ("meg", 1e6); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15); ("a", 1e-18);
    ("mil", 25.4e-6);
  ]

let prop_suffix_scaling =
  QCheck.Test.make ~name:"mantissa*suffix = value*multiplier" ~count:500
    QCheck.(pair (float_range (-1e4) 1e4) (oneofl suffix_table))
    (fun (v, (suffix, mult)) ->
      match Parser.parse_number (Printf.sprintf "%.17g%s" v suffix) with
      | Some got ->
        let expected = v *. mult in
        Float.abs (got -. expected)
        <= 1e-12 *. Float.max 1. (Float.abs expected)
      | None -> false)

let prop_suffix_case_insensitive =
  (* Uppercasing any suffix except the bare "m" must not change the
     value; "m" uppercases to mega by design. *)
  QCheck.Test.make ~name:"suffix case-insensitivity" ~count:200
    QCheck.(
      pair (float_range 0.5 999.)
        (oneofl (List.filter (fun (s, _) -> s <> "m") suffix_table)))
    (fun (v, (suffix, _)) ->
      let s = Printf.sprintf "%.6g" v in
      Parser.parse_number (s ^ suffix)
      = Parser.parse_number (s ^ String.uppercase_ascii suffix))

let prop_to_exact_roundtrip =
  QCheck.Test.make ~name:"Units.to_exact round-trips through parse_number"
    ~count:500
    QCheck.(float_range (-1e15) 1e15)
    (fun v ->
      QCheck.assume (Float.is_finite v);
      match Parser.parse_number (Ape_util.Units.to_exact v) with
      | Some got -> got = v
      | None -> false)

let prop_to_eng_parses_close =
  (* to_eng keeps 3 significant digits, so parsing its output must land
     within 0.5 ulp of the third digit (5e-3 relative). *)
  QCheck.Test.make ~name:"Units.to_eng output parses back within 3 digits"
    ~count:500
    QCheck.(float_range (-1e9) 1e9)
    (fun v ->
      QCheck.assume (Float.abs v > 1e-12);
      match Parser.parse_number (Ape_util.Units.to_eng v) with
      | Some got -> Float.abs (got -. v) <= 5.01e-3 *. Float.abs v
      | None -> false)

let test_parse_expr () =
  let e = Parser.parse "2 * x + sqrt(y) / 3" in
  let env = Expr.Env.of_list [ ("x", 5.); ("y", 9.) ] in
  check_close "parsed value" 11. (Expr.eval env e);
  let e2 = Parser.parse "x^2 - 1" in
  check_close "pow" 24. (Expr.eval env e2);
  let e3 = Parser.parse "-(x + 1) * 2" in
  check_close "unary minus" (-12.) (Expr.eval env e3)

let test_parse_precedence () =
  let env = Expr.Env.of_list [] in
  check_close "mul before add" 7. (Expr.eval env (Parser.parse "1 + 2 * 3"));
  check_close "parens" 9. (Expr.eval env (Parser.parse "(1 + 2) * 3"));
  check_close "div assoc" 2. (Expr.eval env (Parser.parse "12 / 3 / 2"))

let test_parse_errors () =
  let expect_error s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected parse error for " ^ s)
  in
  expect_error "1 +";
  expect_error "(1 + 2";
  expect_error "foo(3)";
  expect_error "1 2"

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp then parse preserves value" ~count:300
    (QCheck.pair arb_expr (QCheck.float_range 0.5 3.)) (fun (e, x) ->
      let env = Expr.Env.of_list [ ("x", x) ] in
      match Expr.eval env e with
      | exception Expr.Domain_error _ -> QCheck.assume_fail ()
      | v1 ->
        let reparsed = Parser.parse (Expr.to_string e) in
        F.approx_equal ~rtol:1e-9 ~atol:1e-9 v1 (Expr.eval env reparsed))

(* ---------- solver ---------- *)

let test_solve_linear () =
  (* 3x + 1 = 10 -> x = 3 *)
  let eqn =
    Solver.equation
      Expr.((const 3. * var "x") + const 1.)
      (Expr.const 10.)
  in
  let x = Solver.solve_for ~var:"x" ~env:Expr.Env.empty eqn in
  check_close "linear solve" 3. x ~tol:1e-6

let test_solve_gm_equation () =
  (* The paper's Eq.(2): gm = sqrt(2 KP (W/L) Id); solve for W/L given
     gm = 100u, Id = 10u, KP = 75u -> W/L = gm^2/(2 KP Id) = 6.667 *)
  let eqn =
    Solver.equation (Expr.var "gm")
      Expr.(sqrt (const 2. * var "kp" * var "wl" * var "id"))
  in
  let env = Expr.Env.of_list [ ("gm", 100e-6); ("kp", 75e-6); ("id", 10e-6) ] in
  let wl = Solver.solve_for ~var:"wl" ~env eqn in
  check_close "W/L from gm" (100e-6 ** 2. /. (2. *. 75e-6 *. 10e-6)) wl
    ~tol:1e-6

let test_solve_unbound () =
  let eqn = Solver.equation (Expr.var "x") (Expr.var "q") in
  match Solver.solve_for ~var:"x" ~env:Expr.Env.empty eqn with
  | exception Solver.No_solution _ -> ()
  | _ -> Alcotest.fail "expected No_solution for unbound variable"

let test_solve_system () =
  let e1 =
    Solver.equation Expr.(var "x" * const 2.) (Expr.const 8.)
  in
  let e2 = Solver.equation Expr.(var "x" + const 0.) (Expr.const 4.) in
  let x = Solver.solve_system_1d ~var:"x" ~env:Expr.Env.empty [ e1; e2 ] in
  check_close "consistent system" 4. x ~tol:1e-6;
  let bad = Solver.equation (Expr.var "x") (Expr.const 5.) in
  match Solver.solve_system_1d ~var:"x" ~env:Expr.Env.empty [ e1; bad ] with
  | exception Solver.No_solution _ -> ()
  | _ -> Alcotest.fail "expected inconsistency to be detected"

let test_sensitivity () =
  (* f = x^2 at x=3: (x/f) df/dx = (3/9)*6 = 2 (power law exponent). *)
  let f = Expr.(var "x" ** 2.) in
  let env = Expr.Env.of_list [ ("x", 3.) ] in
  check_close "power-law sensitivity" 2.
    (Solver.sensitivity ~var:"x" ~env f)
    ~tol:1e-9

let prop_diff_sum_rule =
  QCheck.Test.make ~name:"d(a+b) = da + db numerically" ~count:200
    (QCheck.triple arb_expr arb_expr (QCheck.float_range 0.5 3.))
    (fun (a, b, x) ->
      let env = Expr.Env.of_list [ ("x", x) ] in
      match
        ( Expr.eval env (Expr.diff "x" (Expr.Add (a, b))),
          Expr.eval env (Expr.Add (Expr.diff "x" a, Expr.diff "x" b)) )
      with
      | exception Expr.Domain_error _ -> QCheck.assume_fail ()
      | lhs, rhs -> F.approx_equal ~rtol:1e-9 ~atol:1e-9 lhs rhs)

let prop_subst_then_eval =
  QCheck.Test.make ~name:"subst x:=c = eval with x=c" ~count:200
    (QCheck.pair arb_expr (QCheck.float_range 0.5 3.))
    (fun (e, c) ->
      let env = Expr.Env.of_list [ ("x", c) ] in
      match Expr.eval env e with
      | exception Expr.Domain_error _ -> QCheck.assume_fail ()
      | direct ->
        let substituted =
          Expr.eval Expr.Env.empty (Expr.subst "x" (Expr.Const c) e)
        in
        F.approx_equal ~rtol:1e-9 ~atol:1e-9 direct substituted)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_symbolic"
    [
      ( "eval",
        [
          Alcotest.test_case "basics" `Quick test_eval_basic;
          Alcotest.test_case "errors" `Quick test_eval_errors;
        ] );
      ( "diff",
        [
          Alcotest.test_case "numeric agreement" `Quick test_diff;
          Alcotest.test_case "constants" `Quick test_diff_constant;
        ] );
      ( "simplify",
        [ Alcotest.test_case "rules" `Quick test_simplify_rules ] );
      qsuite "simplify-properties"
        [ prop_simplify_preserves_value; prop_simplify_idempotent ];
      ( "parser",
        [
          Alcotest.test_case "numbers" `Quick test_parse_numbers;
          Alcotest.test_case "magnitude suffixes" `Quick test_parse_suffixes;
          Alcotest.test_case "expressions" `Quick test_parse_expr;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      qsuite "parser-properties"
        [
          prop_pp_parse_roundtrip; prop_suffix_scaling;
          prop_suffix_case_insensitive; prop_to_exact_roundtrip;
          prop_to_eng_parses_close;
        ];
      qsuite "calculus-properties" [ prop_diff_sum_rule; prop_subst_then_eval ];
      ( "solver",
        [
          Alcotest.test_case "linear" `Quick test_solve_linear;
          Alcotest.test_case "gm equation" `Quick test_solve_gm_equation;
          Alcotest.test_case "unbound" `Quick test_solve_unbound;
          Alcotest.test_case "system" `Quick test_solve_system;
          Alcotest.test_case "sensitivity" `Quick test_sensitivity;
        ] );
    ]
