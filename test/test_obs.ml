(* Tests for Ape_obs: registry semantics, span hierarchy, per-domain
   sink merging through Pool, the metamorphic bit-identity guarantee
   (observation on/off and jobs=1/N never change numeric results), the
   JSON export, and the CLI exit-code contract on a singular deck. *)

module Obs = Ape_obs
module B = Ape_circuit.Builder
module Dc = Ape_spice.Dc
module Ac = Ape_spice.Ac
module Pool = Ape_util.Pool

(* Every test leaves the registry disabled so suites running after this
   one see the default-off behaviour. *)
let with_obs f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:Obs.disable f

let counter_value snap name =
  Option.value ~default:0 (List.assoc_opt name snap.Obs.counters)

(* ---------- registry ---------- *)

let test_registry_idempotent () =
  with_obs @@ fun () ->
  let a = Obs.counter "test.obs.idem" in
  let b = Obs.counter "test.obs.idem" in
  Obs.incr a;
  Obs.incr b;
  Obs.add a 3;
  let snap = Obs.snapshot () in
  Alcotest.(check int)
    "same name accumulates into one counter" 5
    (counter_value snap "test.obs.idem")

let test_registry_kind_mismatch () =
  ignore (Obs.counter "test.obs.kind");
  match Obs.gauge "test.obs.kind" with
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"
  | exception Invalid_argument _ -> ()

let test_disabled_is_noop () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.obs.off" in
  let g = Obs.gauge "test.obs.off.g" in
  let h = Obs.histogram "test.obs.off.h" in
  Obs.incr c;
  Obs.set g 1.0;
  Obs.observe h 1e-3;
  Alcotest.(check int)
    "disabled recording leaves nothing" 0
    (counter_value (Obs.snapshot ()) "test.obs.off");
  Alcotest.(check bool)
    "disabled gauge unwritten" true
    (List.assoc_opt "test.obs.off.g" (Obs.snapshot ()).Obs.gauges = None);
  Alcotest.(check bool)
    "disabled histogram empty" true
    (List.assoc_opt "test.obs.off.h" (Obs.snapshot ()).Obs.histograms = None)

let test_reset_clears () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.obs.reset" in
  Obs.incr c;
  Obs.reset ();
  Alcotest.(check int)
    "reset zeroes the accumulator" 0
    (counter_value (Obs.snapshot ()) "test.obs.reset")

let test_histogram_summary () =
  with_obs @@ fun () ->
  let h = Obs.histogram "test.obs.hist" in
  let samples = [ 1e-6; 1e-5; 1e-4; 1e-4 ] in
  List.iter (Obs.observe h) samples;
  match List.assoc_opt "test.obs.hist" (Obs.snapshot ()).Obs.histograms with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some s ->
    let sum = List.fold_left ( +. ) 0. samples in
    Alcotest.(check int) "count" (List.length samples) s.Obs.s_count;
    Alcotest.(check (float 1e-12)) "sum" sum s.Obs.s_sum;
    Alcotest.(check (float 1e-12))
      "mean" (sum /. float_of_int (List.length samples)) s.Obs.s_mean;
    Alcotest.(check (float 0.)) "min" 1e-6 s.Obs.s_min;
    Alcotest.(check (float 0.)) "max" 1e-4 s.Obs.s_max;
    Alcotest.(check bool) "std positive" true (s.Obs.s_std > 0.);
    (* Three distinct decades -> three non-empty buckets, counts 1/1/2. *)
    Alcotest.(check (list int))
      "bucket counts" [ 1; 1; 2 ]
      (List.map snd s.Obs.s_buckets)

(* ---------- spans ---------- *)

let test_span_hierarchy () =
  with_obs @@ fun () ->
  let r =
    Obs.span "outer" (fun () ->
        Obs.span "inner" (fun () -> 21) + Obs.span "inner" (fun () -> 21))
  in
  Alcotest.(check int) "span returns the thunk's value" 42 r;
  let spans = (Obs.snapshot ()).Obs.spans in
  let count path =
    match List.assoc_opt path spans with
    | Some s -> s.Obs.s_count
    | None -> 0
  in
  Alcotest.(check int) "outer recorded once" 1 (count "outer");
  Alcotest.(check int) "nested path recorded twice" 2 (count "outer/inner")

let test_span_exception_safe () =
  with_obs @@ fun () ->
  (match Obs.span "boom" (fun () -> failwith "expected") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure _ -> ());
  (* The stack must have been popped: a sibling span is not nested
     under the failed one. *)
  Obs.span "after" (fun () -> ());
  let spans = (Obs.snapshot ()).Obs.spans in
  Alcotest.(check bool)
    "failed span still timed" true
    (List.mem_assoc "boom" spans);
  Alcotest.(check bool)
    "stack popped on exception" true
    (List.mem_assoc "after" spans)

(* ---------- per-domain sinks and Pool merging ---------- *)

let test_pool_merges_worker_sinks () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.obs.pool" in
  let results = Pool.map ~jobs:4 100 (fun i -> Obs.incr c; i * i) in
  Alcotest.(check int) "map results intact" (99 * 99) results.(99);
  Alcotest.(check int)
    "all worker increments merged" 100
    (counter_value (Obs.snapshot ()) "test.obs.pool")

(* ---------- metamorphic bit-identity ---------- *)

let golden_decks () =
  let dir =
    List.find Sys.file_exists
      [ Filename.concat "golden" "decks"; Filename.concat "test" "golden/decks" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let bits = Int64.bits_of_float

let same_solution (a : Ac.solution) (b : Ac.solution) =
  Array.length a.Ac.x = Array.length b.Ac.x
  && Array.for_all2
       (fun (p : Complex.t) (q : Complex.t) ->
         Int64.equal (bits p.Complex.re) (bits q.Complex.re)
         && Int64.equal (bits p.Complex.im) (bits q.Complex.im))
       a.Ac.x b.Ac.x

let deck_measurements file =
  let text = In_channel.with_open_text file In_channel.input_all in
  let nl = Ape_circuit.Spice_parser.parse ~title:file text in
  match Dc.solve nl with
  | exception Dc.No_convergence _ -> None
  | op ->
    let p = Ac.prepare op in
    Some
      ( Array.copy op.Dc.x,
        List.map (Ac.solve_prepared p) [ 0.; 1.; 1e3; 4.567e4; 1e6; 1e9 ] )

let test_golden_decks_obs_on_off_identical () =
  let verified = ref 0 in
  List.iter
    (fun file ->
      Obs.disable ();
      let off = deck_measurements file in
      let on = with_obs (fun () -> deck_measurements file) in
      match (off, on) with
      | None, None -> ()
      | Some (x_off, ac_off), Some (x_on, ac_on) ->
        incr verified;
        Alcotest.(check bool)
          (file ^ ": DC solution bit-identical") true
          (Array.for_all2
             (fun a b -> Int64.equal (bits a) (bits b))
             x_off x_on);
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: AC at %g Hz bit-identical" file a.Ac.freq)
              true (same_solution a b))
          ac_off ac_on
      | _ ->
        Alcotest.fail (file ^ ": convergence differs with observation on"))
    (golden_decks ());
  Alcotest.(check bool) "verified several decks" true (!verified >= 3)

let test_sweep_jobs_identical_with_obs_on () =
  (* jobs=1 vs jobs=3 with recording enabled: worker sinks flush at the
     join, and the numeric sweep stays bit-identical. *)
  with_obs @@ fun () ->
  let file = List.hd (golden_decks ()) in
  let text = In_channel.with_open_text file In_channel.input_all in
  let op = Dc.solve (Ape_circuit.Spice_parser.parse ~title:file text) in
  let p = Ac.prepare op in
  let grid = Ac.sweep_frequencies ~points_per_decade:7 ~fstart:1. ~fstop:1e8 () in
  let s1 = Ac.sweep_prepared ~jobs:1 p grid in
  let s3 = Ac.sweep_prepared ~jobs:3 p grid in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "%g Hz: jobs=1 = jobs=3" a.Ac.freq)
        true (same_solution a b))
    s1.Ac.points s3.Ac.points;
  Alcotest.(check bool)
    "worker domains were spawned and merged" true
    (counter_value (Obs.snapshot ()) "pool.domain_spawns" >= 2)

(* ---------- JSON export ---------- *)

let test_json_smoke () =
  with_obs @@ fun () ->
  Obs.incr (Obs.counter "test.obs.json");
  Obs.set (Obs.gauge "test.obs.json.g") 2.5;
  Obs.observe (Obs.histogram "test.obs.json.h") 1e-3;
  Obs.span "test_json" (fun () -> ());
  let doc = Obs.render_json (Obs.snapshot ()) in
  let contains needle =
    let nl = String.length needle and dl = String.length doc in
    let rec go i = i + nl <= dl && (String.sub doc i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (contains "\"schema\": \"ape-obs/1\"");
  List.iter
    (fun n -> Alcotest.(check bool) n true (contains n))
    [ "test.obs.json"; "test.obs.json.g"; "test.obs.json.h"; "test_json" ];
  let balance opens closes =
    String.fold_left
      (fun acc c -> if c = opens then acc + 1 else if c = closes then acc - 1 else acc)
      0 doc
  in
  Alcotest.(check int) "braces balanced" 0 (balance '{' '}');
  Alcotest.(check int) "brackets balanced" 0 (balance '[' ']')

(* ---------- CLI exit codes ---------- *)

let ape_exe () =
  (* dune runtest runs in test/, `dune exec test/test_obs.exe` (ci.sh)
     in the project root. *)
  List.find_opt Sys.file_exists
    [
      Filename.concat ".." (Filename.concat "bin" "ape.exe");
      Filename.concat "bin" "ape.exe";
      Filename.concat "_build" (Filename.concat "default" "bin/ape.exe");
    ]

let run_cli exe args =
  Sys.command
    (Filename.quote_command exe ~stdout:Filename.null ~stderr:Filename.null
       args)

let test_cli_singular_deck_exits_nonzero () =
  match ape_exe () with
  | None -> Alcotest.fail "bin/ape.exe not built"
  | Some exe ->
    let deck = Filename.temp_file "ape_singular" ".sp" in
    Fun.protect ~finally:(fun () -> Sys.remove deck) @@ fun () ->
    Out_channel.with_open_text deck (fun oc ->
        output_string oc
          "* two parallel sources disagree: no DC solution exists\n\
           V1 a 0 5\n\
           V2 a 0 3\n\
           R1 a 0 1k\n\
           .end\n");
    Alcotest.(check int) "sim on singular deck exits 1" 1
      (run_cli exe [ "sim"; deck ])

let test_cli_valid_deck_exits_zero () =
  match ape_exe () with
  | None -> Alcotest.fail "bin/ape.exe not built"
  | Some exe ->
    let deck = Filename.temp_file "ape_rc" ".sp" in
    Fun.protect ~finally:(fun () -> Sys.remove deck) @@ fun () ->
    Out_channel.with_open_text deck (fun oc ->
        output_string oc
          "* rc divider\nV1 in 0 DC 1 AC 1\nR1 in out 1k\nC1 out 0 1u\n.end\n");
    Alcotest.(check int) "sim on a healthy deck exits 0" 0
      (run_cli exe [ "sim"; deck; "--out"; "out" ]);
    Alcotest.(check int) "sim --trace exits 0" 0
      (run_cli exe [ "sim"; deck; "--trace" ])

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "idempotent by name" `Quick
            test_registry_idempotent;
          Alcotest.test_case "kind mismatch raises" `Quick
            test_registry_kind_mismatch;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "reset clears" `Quick test_reset_clears;
          Alcotest.test_case "histogram summary" `Quick test_histogram_summary;
        ] );
      ( "spans",
        [
          Alcotest.test_case "hierarchy paths" `Quick test_span_hierarchy;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
        ] );
      ( "domains",
        [
          Alcotest.test_case "pool merges worker sinks" `Quick
            test_pool_merges_worker_sinks;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "golden decks obs on/off" `Quick
            test_golden_decks_obs_on_off_identical;
          Alcotest.test_case "sweep jobs=1 vs 3, obs on" `Quick
            test_sweep_jobs_identical_with_obs_on;
        ] );
      ( "export",
        [ Alcotest.test_case "json smoke" `Quick test_json_smoke ] );
      ( "cli",
        [
          Alcotest.test_case "singular deck exits 1" `Quick
            test_cli_singular_deck_exits_nonzero;
          Alcotest.test_case "healthy deck exits 0" `Quick
            test_cli_valid_deck_exits_zero;
        ] );
    ]
