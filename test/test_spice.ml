(* Tests for Ape_spice: DC Newton, AC sweeps against analytic transfer
   functions, transient integration, AWE moment matching and measurement
   extraction. *)

module N = Ape_circuit.Netlist
module B = Ape_circuit.Builder
module Dc = Ape_spice.Dc
module Ac = Ape_spice.Ac
module Tr = Ape_spice.Transient
module Awe = Ape_spice.Awe
module Measure = Ape_spice.Measure
module F = Ape_util.Float_ext
module Proc = Ape_process.Process

let proc = Proc.c12

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.8g vs %.8g" msg expected actual)
    true
    (F.approx_equal ~rtol:tol ~atol:tol expected actual)

(* ---------- DC ---------- *)

let test_dc_divider () =
  let b = B.create ~title:"div" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.resistor b ~a:"vdd" ~b:"mid" 2e3;
  B.resistor b ~a:"mid" ~b:"0" 3e3;
  let op = Dc.solve (B.finish b) in
  check_close "divider" 3.0 (Dc.voltage op "mid") ~tol:1e-9;
  (match Dc.branch_current op "V1" with
  | Some i -> check_close "source current" 1e-3 (Float.abs i) ~tol:1e-9
  | None -> Alcotest.fail "missing branch current");
  check_close "power" 5e-3 (Dc.static_power op ~supply:"V1") ~tol:1e-9

let test_dc_isource () =
  (* 1 mA into a 1 kΩ to ground: 1 V at the node.  Isource p=vdd pushes
     into n=node. *)
  let b = B.create ~title:"isrc" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.isource b ~p:"vdd" ~n:"node" 1e-3;
  B.resistor b ~a:"node" ~b:"0" 1e3;
  let op = Dc.solve (B.finish b) in
  check_close "isource node" 1.0 (Dc.voltage op "node") ~tol:1e-6

let test_dc_vcvs () =
  let b = B.create ~title:"vcvs" in
  B.vsource b ~p:"in" ~n:"0" 0.5;
  B.vcvs b ~p:"out" ~n:"0" ~cp:"in" ~cn:"0" 10.;
  B.resistor b ~a:"out" ~b:"0" 1e3;
  let op = Dc.solve (B.finish b) in
  check_close "vcvs gain" 5.0 (Dc.voltage op "out") ~tol:1e-9

let test_dc_diode_mosfet () =
  let b = B.create ~title:"diode" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.resistor b ~a:"vdd" ~b:"d" 100e3;
  B.nmos b proc ~d:"d" ~g:"d" ~s:"0" ~w:10e-6 ~l:2.4e-6;
  let op = Dc.solve (B.finish b) in
  let vd = Dc.voltage op "d" in
  Alcotest.(check bool) "diode voltage plausible" true (vd > 0.8 && vd < 2.0);
  (* KCL: resistor current equals transistor current. *)
  match Dc.mosfet_regions op with
  | [ (_, region, ids) ] ->
    Alcotest.(check bool) "saturated" true (region = Ape_device.Mos.Saturation);
    check_close "KCL" ((5. -. vd) /. 100e3) ids ~tol:1e-4
  | _ -> Alcotest.fail "expected one mosfet"

let test_dc_multiplier_differential () =
  (* M=2 on a 4e-6 device must be bit-identical to a single 8e-6
     device everywhere in the engine (doubling a float is exact). *)
  let deck m_clause =
    Printf.sprintf
      "VDD vdd 0 DC 5\nVIN g 0 DC 1.5\nRL vdd out 10k\n\
       M1 out g 0 0 NMOS %s L=2e-6\n"
      m_clause
  in
  let solve d = Dc.solve (Ape_circuit.Spice_parser.parse ~title:"m" d) in
  let a = solve (deck "W=4e-6 M=2") and b = solve (deck "W=8e-6") in
  List.iter
    (fun node ->
      Alcotest.(check (float 0.))
        ("V(" ^ node ^ ")")
        (Dc.voltage b node) (Dc.voltage a node))
    [ "vdd"; "g"; "out" ]

let test_dc_switch () =
  let net ctrl_v =
    let b = B.create ~title:"sw" in
    B.vsource b ~p:"in" ~n:"0" 1.0;
    B.vsource b ~p:"ctrl" ~n:"0" ctrl_v;
    B.switch b ~ron:100. ~roff:1e12 ~vthreshold:2.5 ~a:"in" ~b:"out" ~ctrl:"ctrl";
    B.resistor b ~a:"out" ~b:"0" 100.;
    B.finish b
  in
  let on = Dc.solve (net 5.) and off = Dc.solve (net 0.) in
  check_close "switch on divides" 0.5 (Dc.voltage on "out") ~tol:1e-6;
  Alcotest.(check bool) "switch off isolates" true
    (Dc.voltage off "out" < 1e-6)

let test_dc_diff_pair_convergence () =
  (* A full differential stage must converge from the generic initial
     guess. *)
  let d =
    Ape_estimator.Diff_pair.design proc
      (Ape_estimator.Diff_pair.spec ~av:500. Ape_estimator.Diff_pair.Cmos_mirror
         ~itail:2e-6)
  in
  let frag = Ape_estimator.Diff_pair.fragment proc d in
  let nl = Ape_estimator.Fragment.with_supply ~vdd:5. frag in
  let nl =
    N.append nl
      [
        N.Vsource { name = "VP"; p = "inp"; n = "0"; dc = 2.5; ac = 0. };
        N.Vsource { name = "VN"; p = "inn"; n = "0"; dc = 2.5; ac = 0. };
      ]
  in
  let op = Dc.solve nl in
  Alcotest.(check bool) "converged in < 100 iters" true (op.Dc.iterations < 100)

(* ---------- AC ---------- *)

let rc_lowpass () =
  let b = B.create ~title:"rc" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.resistor b ~a:"in" ~b:"out" 1e3;
  B.capacitor b ~a:"out" ~b:"0" 1e-6;
  B.finish b

let test_ac_rc_analytic () =
  let op = Dc.solve (rc_lowpass ()) in
  let fc = 1. /. (2. *. Float.pi *. 1e3 *. 1e-6) in
  List.iter
    (fun f ->
      let mag = Ac.magnitude_at ~node:"out" op f in
      let expected = 1. /. Float.sqrt (1. +. ((f /. fc) ** 2.)) in
      check_close (Printf.sprintf "|H| at %g Hz" f) expected mag ~tol:1e-6)
    [ 1.; 10.; fc; 1e3; 1e4 ]

let test_ac_phase () =
  let op = Dc.solve (rc_lowpass ()) in
  let fc = 1. /. (2. *. Float.pi *. 1e3 *. 1e-6) in
  check_close "phase at fc" (-45.) (Measure.phase_at ~out:"out" op fc)
    ~tol:1e-3

let test_ac_sweep_shape () =
  let op = Dc.solve (rc_lowpass ()) in
  let sweep = Ac.sweep ~points_per_decade:5 ~fstart:1. ~fstop:1e5 op in
  let mags =
    List.map (fun (_, v) -> Complex.norm v) (Ac.transfer ~node:"out" sweep)
  in
  (* Low-pass: monotone non-increasing. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone rolloff" true (monotone mags)

let test_measure_f3db_ugf () =
  (* Amplifying RC: VCVS gain 10 into RC, f3db = fc, UGF = fc*sqrt(100-1). *)
  let b = B.create ~title:"amp_rc" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.vcvs b ~p:"x" ~n:"0" ~cp:"in" ~cn:"0" 10.;
  B.resistor b ~a:"x" ~b:"out" 1e3;
  B.capacitor b ~a:"out" ~b:"0" 1e-9;
  let op = Dc.solve (B.finish b) in
  let fc = 1. /. (2. *. Float.pi *. 1e3 *. 1e-9) in
  check_close "dc gain" 10. (Measure.dc_gain ~out:"out" op) ~tol:1e-9;
  (match Measure.f_minus_3db ~fmin:10. ~fmax:1e8 ~out:"out" op with
  | Some f -> check_close "f3db" fc f ~tol:1e-3
  | None -> Alcotest.fail "no f3db");
  match Measure.unity_gain_frequency ~fmin:10. ~fmax:1e8 ~out:"out" op with
  | Some f -> check_close "ugf" (fc *. Float.sqrt 99.) f ~tol:1e-3
  | None -> Alcotest.fail "no ugf"

let test_measure_bandpass () =
  (* CR-RC band-pass with buffers: peak near 1/(2 pi RC). *)
  let b = B.create ~title:"bp" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.capacitor b ~a:"in" ~b:"hp" 100e-9;
  B.resistor b ~a:"hp" ~b:"0" 1e3;
  B.vcvs b ~p:"buf" ~n:"0" ~cp:"hp" ~cn:"0" 1.;
  B.resistor b ~a:"buf" ~b:"out" 1e3;
  B.capacitor b ~a:"out" ~b:"0" 100e-9;
  let op = Dc.solve (B.finish b) in
  match Measure.bandpass_characteristics ~fmin:10. ~fmax:1e5 ~out:"out" op with
  | Some bp ->
    let f0 = 1. /. (2. *. Float.pi *. 1e3 *. 100e-9) in
    check_close "f0" f0 bp.Measure.f_center ~tol:0.02;
    check_close "peak gain" 0.5 bp.Measure.peak_gain ~tol:0.01
  | None -> Alcotest.fail "no bandpass found"

(* ---------- Transient ---------- *)

let test_transient_rc_step () =
  let op = Dc.solve (rc_lowpass ()) in
  let tau = 1e-3 in
  let result =
    Tr.run
      ~stimulus:[ ("V1", Tr.step ~t0:0. ~high:1. ()) ]
      ~tstop:(5. *. tau) ~dt:(tau /. 200.) op
  in
  List.iter
    (fun mult ->
      let t = mult *. tau in
      let expected = 1. -. Float.exp (-.mult) in
      check_close
        (Printf.sprintf "v(out) at %g tau" mult)
        expected
        (Tr.value_at result "out" t)
        ~tol:0.01)
    [ 0.5; 1.; 2.; 3. ]

let test_transient_trapezoidal () =
  let op = Dc.solve (rc_lowpass ()) in
  let tau = 1e-3 in
  let result =
    Tr.run ~method_:Tr.Trapezoidal
      ~stimulus:[ ("V1", Tr.step ~t0:0. ~high:1. ()) ]
      ~tstop:(3. *. tau) ~dt:(tau /. 100.) op
  in
  check_close "trap at 1 tau" (1. -. Float.exp (-1.))
    (Tr.value_at result "out" tau)
    ~tol:0.01

let test_transient_helpers () =
  let op = Dc.solve (rc_lowpass ()) in
  let tau = 1e-3 in
  let result =
    Tr.run
      ~stimulus:[ ("V1", Tr.step ~t0:0. ~high:1. ()) ]
      ~tstop:(6. *. tau) ~dt:(tau /. 100.) op
  in
  (match Tr.crossing_time result "out" ~level:0.5 with
  | Some t -> check_close "50% crossing = ln 2 tau" (Float.log 2. *. tau) t ~tol:0.02
  | None -> Alcotest.fail "no crossing");
  (match Tr.settling_time result "out" ~final:1.0 ~band:0.02 with
  | Some t ->
    Alcotest.(check bool) "2% settling near 3.9 tau" true
      (t > 3. *. tau && t < 4.5 *. tau)
  | None -> Alcotest.fail "no settling");
  let sr = Tr.max_slope result "out" in
  check_close "max slope = 1/tau" (1. /. tau) sr ~tol:0.05

let test_transient_convergence_order () =
  (* Timestep halving on the RC driven by a smooth sine (a step input
     would clip trapezoidal to first order at the discontinuity): the
     t=tau error must shrink ~2x for backward Euler (first order) and
     ~4x for trapezoidal (second order).  With omega*tau = 1 and
     v_out(0) = 0 the closed form is
     v_out(t) = (sin wt - cos wt + e^{-t/tau}) / 2. *)
  let tau = 1e-3 in
  let w = 1. /. tau in
  let freq = w /. (2. *. Float.pi) in
  let exact t =
    0.5 *. (Float.sin (w *. t) -. Float.cos (w *. t) +. Float.exp (-.t /. tau))
  in
  let error_at_tau ~method_ ~dt =
    let op = Dc.solve (rc_lowpass ()) in
    let r =
      Tr.run ~method_
        ~stimulus:[ ("V1", Tr.sine ~ampl:1. ~freq ()) ]
        ~tstop:(1.2 *. tau) ~dt op
    in
    Float.abs (Tr.value_at r "out" tau -. exact tau)
  in
  let ratio method_ =
    (* tau is an exact grid point for both steps: no interpolation
       error pollutes the order estimate. *)
    let coarse = error_at_tau ~method_ ~dt:(tau /. 50.) in
    let fine = error_at_tau ~method_ ~dt:(tau /. 100.) in
    Alcotest.(check bool) "errors above the Newton floor" true (fine > 1e-8);
    coarse /. fine
  in
  let be = ratio Tr.Backward_euler in
  Alcotest.(check bool)
    (Printf.sprintf "BE halving ratio ~2 (got %.2f)" be)
    true
    (be > 1.6 && be < 2.5);
  let trap = ratio Tr.Trapezoidal in
  Alcotest.(check bool)
    (Printf.sprintf "trapezoidal halving ratio ~4 (got %.2f)" trap)
    true
    (trap > 3.2 && trap < 5.)

let test_transient_step_acceptance () =
  (* Step-cutting regression, pinned through the transient.* counters.
     A fast 4 V sine moves the source by up to ~2.5 V per step; Newton's
     1 V update clamp then needs 4 iterations on the steep steps, so
     max_newton=3 forces a cut there while the halved sub-steps (~1.25 V)
     converge in exactly 3. *)
  let deck () =
    let b = B.create ~title:"cutter" in
    B.vsource b ~p:"in" ~n:"0" 0.;
    B.resistor b ~a:"in" ~b:"out" 1e3;
    B.capacitor b ~a:"out" ~b:"0" 1e-9;
    B.finish b
  in
  let counters () =
    let run () =
      let op = Dc.solve (deck ()) in
      ignore
        (Tr.run ~max_newton:3
           ~stimulus:[ ("V1", Tr.sine ~ampl:4. ~freq:1e3 ()) ]
           ~tstop:1e-3 ~dt:1e-4 op)
    in
    Ape_obs.enable ();
    Ape_obs.reset ();
    Fun.protect ~finally:Ape_obs.disable run;
    let snap = Ape_obs.snapshot () in
    let get name =
      Option.value ~default:0 (List.assoc_opt name snap.Ape_obs.counters)
    in
    ( get "transient.steps",
      get "transient.solves",
      get "transient.step_cuts",
      get "transient.newton_iters" )
  in
  let steps, solves, cuts, iters = counters () in
  Alcotest.(check int) "requested top-level steps" 10 steps;
  Alcotest.(check bool)
    (Printf.sprintf "steep steps were cut (got %d cuts)" cuts)
    true (cuts > 0);
  (* Each cut replaces one failed solve with two sub-step solves, so the
     controller's accounting always satisfies this identity. *)
  Alcotest.(check int)
    "solves = steps + 2*cuts" (steps + (2 * cuts)) solves;
  Alcotest.(check bool) "iterations recorded" true (iters >= solves);
  (* The controller is deterministic: a second run pins the same trace. *)
  Alcotest.(check (pair (pair int int) (pair int int)))
    "acceptance trace reproducible"
    ((steps, solves), (cuts, iters))
    (let s, v, c, i = counters () in
     ((s, v), (c, i)))

let test_waveforms () =
  let p = Tr.pulse ~delay:1e-6 ~rise:1e-9 ~low:0. ~high:5. ~width:1e-6 ~period:4e-6 () in
  check_close "pulse before delay" 0. (p 0.);
  check_close "pulse high" 5. (p 1.5e-6);
  check_close "pulse low again" 0. (p 2.5e-6);
  check_close "pulse periodic" 5. (p 5.5e-6);
  let s = Tr.sine ~offset:1. ~ampl:2. ~freq:1e3 () in
  check_close "sine at 0" 1. (s 0.);
  check_close "sine peak" 3. (s 0.25e-3) ~tol:1e-6

(* ---------- AWE ---------- *)

let test_awe_rc_pole () =
  let op = Dc.solve (rc_lowpass ()) in
  let approx = Awe.pade ~q:1 ~out:"out" op in
  check_close "dc value" 1. approx.Awe.dc_value ~tol:1e-9;
  match Awe.dominant_pole_hz approx with
  | Some f ->
    check_close "rc pole" (1. /. (2. *. Float.pi *. 1e-3)) f ~tol:1e-6
  | None -> Alcotest.fail "no pole"

let test_awe_two_pole () =
  (* Two cascaded (buffered) RC sections: poles at 1/(2pi R1C1), 1/(2pi R2C2). *)
  let b = B.create ~title:"rc2" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.resistor b ~a:"in" ~b:"m" 1e3;
  B.capacitor b ~a:"m" ~b:"0" 1e-6;
  B.vcvs b ~p:"buf" ~n:"0" ~cp:"m" ~cn:"0" 1.;
  B.resistor b ~a:"buf" ~b:"out" 10e3;
  B.capacitor b ~a:"out" ~b:"0" 1e-6;
  let op = Dc.solve (B.finish b) in
  let approx = Awe.pade ~q:2 ~out:"out" op in
  let poles =
    List.map (fun p -> Complex.norm p /. (2. *. Float.pi)) approx.Awe.poles
    |> List.sort compare
  in
  (match poles with
  | [ p1; p2 ] ->
    check_close "slow pole" (1. /. (2. *. Float.pi *. 1e-2)) p1 ~tol:1e-3;
    check_close "fast pole" (1. /. (2. *. Float.pi *. 1e-3)) p2 ~tol:1e-3
  | _ -> Alcotest.fail "expected two poles");
  (* The approximant evaluates close to the direct AC solution. *)
  List.iter
    (fun f ->
      let direct = Ac.magnitude_at ~node:"out" op f in
      let reduced = Complex.norm (Awe.eval approx f) in
      check_close (Printf.sprintf "awe vs ac at %g" f) direct reduced
        ~tol:0.02)
    [ 1.; 10.; 100. ]

let test_awe_moments_rc () =
  (* H(s) = 1/(1 + s*tau): the k-th moment is (-tau)^k exactly. *)
  let op = Dc.solve (rc_lowpass ()) in
  let tau = 1e-3 in
  let m = Awe.moments ~count:4 ~out:"out" op in
  Alcotest.(check int) "four moments" 4 (Array.length m);
  Array.iteri
    (fun k mk ->
      check_close
        (Printf.sprintf "moment %d = (-tau)^%d" k k)
        ((-.tau) ** float_of_int k)
        mk ~tol:1e-9)
    m

let test_awe_unity_crossing_analytic () =
  (* Single-pole amplifier A0 = 100, fc = 1 kHz: |H| = 1 exactly at
     fc * sqrt(A0^2 - 1). *)
  let a0 = 100. and r = 1e3 and c = 159.154943e-9 in
  let b = B.create ~title:"1pole" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.vcvs b ~p:"amp" ~n:"0" ~cp:"in" ~cn:"0" a0;
  B.resistor b ~a:"amp" ~b:"out" r;
  B.capacitor b ~a:"out" ~b:"0" c;
  let op = Dc.solve (B.finish b) in
  let approx = Awe.pade ~q:1 ~out:"out" op in
  let fc = 1. /. (2. *. Float.pi *. r *. c) in
  let expected = fc *. Float.sqrt ((a0 *. a0) -. 1.) in
  (match Awe.unity_crossing_hz approx with
  | Some f -> check_close "unity crossing" expected f ~tol:1e-3
  | None -> Alcotest.fail "no unity crossing");
  match Awe.unity_gain_frequency_hz approx with
  | Some f -> check_close "single-pole UGF = A0*fc" (a0 *. fc) f ~tol:1e-3
  | None -> Alcotest.fail "no UGF estimate"

let test_noise_input_referred_divider () =
  (* Equal divider: output noise 4kT*(R/2), gain 1/2, so the input-
     referred density is sqrt(4kT*R/2)/(1/2) = 2*sqrt(2kT*R). *)
  let r = 10e3 in
  let b = B.create ~title:"divnoise" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.resistor b ~a:"in" ~b:"out" r;
  B.resistor b ~a:"out" ~b:"0" r;
  let op = Dc.solve (B.finish b) in
  let kT = 1.380649e-23 *. 300. in
  let expected = 2. *. Float.sqrt (2. *. kT *. r) in
  check_close "input-referred divider noise" expected
    (Ape_spice.Noise.input_referred ~out:"out" ~freq:1e3 op)
    ~tol:0.02

let test_transient_two_pole_step () =
  (* Buffered RC cascade, taus 1 ms and 0.1 ms.  Closed-form step
     response: v(t) = 1 - (t1*e^{-t/t1} - t2*e^{-t/t2}) / (t1 - t2). *)
  let t1 = 1e-3 and t2 = 1e-4 in
  let b = B.create ~title:"rc2step" in
  B.vsource b ~p:"in" ~n:"0" 0.;
  B.resistor b ~a:"in" ~b:"m" 1e3;
  B.capacitor b ~a:"m" ~b:"0" 1e-6;
  B.vcvs b ~p:"buf" ~n:"0" ~cp:"m" ~cn:"0" 1.;
  B.resistor b ~a:"buf" ~b:"out" 1e3;
  B.capacitor b ~a:"out" ~b:"0" 100e-9;
  let op = Dc.solve (B.finish b) in
  let r =
    Tr.run
      ~stimulus:[ ("V1", Tr.step ~t0:0. ~high:1. ()) ]
      ~tstop:(3. *. t1) ~dt:(t2 /. 25.) op
  in
  List.iter
    (fun t ->
      let exact =
        1.
        -. ((t1 *. Float.exp (-.t /. t1)) -. (t2 *. Float.exp (-.t /. t2)))
           /. (t1 -. t2)
      in
      check_close
        (Printf.sprintf "two-pole step at t=%g" t)
        exact
        (Tr.value_at r "out" t)
        ~tol:0.01)
    [ 2e-4; 5e-4; 1e-3; 2e-3 ]

(* ---------- typed engine errors ---------- *)

let test_engine_error_missing_branch () =
  let op = Dc.solve (rc_lowpass ()) in
  match
    Ape_spice.Engine.branch_id_exn op.Dc.index ~analysis:"ac" "VNOPE"
  with
  | _ -> Alcotest.fail "expected Engine_error"
  | exception Ape_spice.Engine.Engine_error { analysis; node; detail } ->
    Alcotest.(check string) "analysis tag" "ac" analysis;
    Alcotest.(check (option string)) "node" (Some "VNOPE") node;
    Alcotest.(check bool) "detail non-empty" true (String.length detail > 0)

let test_no_convergence_is_typed () =
  (* A MOSFET bench given one Newton iteration cannot converge; the
     failure must surface as No_convergence naming the netlist. *)
  let b = B.create ~title:"hopeless" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"d" ~g:"d" ~s:"0" ~w:10e-6 ~l:2.4e-6;
  B.resistor b ~a:"vdd" ~b:"d" 10e3;
  match Dc.solve ~max_iter:1 (B.finish b) with
  | _ -> Alcotest.fail "expected No_convergence"
  | exception Dc.No_convergence msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool)
      ("message names the analysis and netlist: " ^ msg)
      true
      (contains msg "dc(" && contains msg "hopeless")

let test_awe_ugf_estimate () =
  let b = B.create ~title:"amp" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.vcvs b ~p:"x" ~n:"0" ~cp:"in" ~cn:"0" 100.;
  B.resistor b ~a:"x" ~b:"out" 1e3;
  B.capacitor b ~a:"out" ~b:"0" 1e-9;
  let op = Dc.solve (B.finish b) in
  let approx = Awe.pade ~q:1 ~out:"out" op in
  match Awe.unity_gain_frequency_hz approx with
  | Some f ->
    let fc = 1. /. (2. *. Float.pi *. 1e-6) in
    check_close "single-pole ugf = A0 * f3db" (100. *. fc) f ~tol:1e-3
  | None -> Alcotest.fail "no ugf"

(* ---------- noise ---------- *)

let four_kt = 4. *. 1.380649e-23 *. 300.15

let test_noise_divider_analytic () =
  (* Output noise of a resistive divider: 4kT·(R1 || R2). *)
  let b = B.create ~title:"div" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.resistor b ~a:"in" ~b:"out" 10e3;
  B.resistor b ~a:"out" ~b:"0" 10e3;
  let op = Dc.solve (B.finish b) in
  let total, contributions =
    Ape_spice.Noise.output_noise ~out:"out" ~freq:1e3 op
  in
  check_close "divider 4kT(R1||R2)" (four_kt *. 5e3) total ~tol:1e-6;
  Alcotest.(check int) "two contributors" 2 (List.length contributions);
  (* Equal resistors contribute equally. *)
  match contributions with
  | [ c1; c2 ] ->
    check_close "split evenly" c1.Ape_spice.Noise.psd c2.Ape_spice.Noise.psd
      ~tol:1e-9
  | _ -> Alcotest.fail "unexpected contribution list"

let test_noise_rc_filtered () =
  (* kT/C check: integrated noise of an RC is sqrt(kT/C) regardless of
     R. *)
  let make r =
    let b = B.create ~title:"rc" in
    B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
    B.resistor b ~a:"in" ~b:"out" r;
    B.capacitor b ~a:"out" ~b:"0" 1e-9;
    Dc.solve (B.finish b)
  in
  let ktc = Float.sqrt (1.380649e-23 *. 300.15 /. 1e-9) in
  List.iter
    (fun r ->
      let vrms =
        Ape_spice.Noise.integrated_output ~out:"out" ~fstart:1.
          ~fstop:(100. /. (2. *. Float.pi *. r *. 1e-9))
          ~points_per_decade:10 (make r)
      in
      Alcotest.(check bool)
        (Printf.sprintf "kT/C within 10%% for R=%g (got %g vs %g)" r vrms ktc)
        true
        (F.rel_error ktc vrms < 0.1))
    [ 1e3; 100e3 ]

let test_noise_mosfet_thermal () =
  (* A diode-connected MOSFET's output noise: roughly
     4kT·(2/3)·gm·(1/gm)² + resistor term. *)
  let b = B.create ~title:"mosn" in
  B.vsource b ~p:"vdd" ~n:"0" ~ac:1. 5.;
  B.resistor b ~a:"vdd" ~b:"d" 100e3;
  B.nmos b proc ~d:"d" ~g:"d" ~s:"0" ~w:20e-6 ~l:2.4e-6;
  let op = Dc.solve (B.finish b) in
  let total, contributions =
    Ape_spice.Noise.output_noise ~out:"d" ~freq:1e6 op
  in
  Alcotest.(check bool) "positive noise" true (total > 0.);
  Alcotest.(check bool) "mosfet contributes" true
    (List.exists
       (fun c -> c.Ape_spice.Noise.element = "M1" && c.Ape_spice.Noise.psd > 0.)
       contributions)

let test_noise_flicker_rolloff () =
  (* 1/f: the MOSFET contribution at 10 Hz exceeds the one at 1 MHz. *)
  let b = B.create ~title:"mosn" in
  B.vsource b ~p:"vdd" ~n:"0" ~ac:1. 5.;
  B.resistor b ~a:"vdd" ~b:"d" 100e3;
  B.nmos b proc ~d:"d" ~g:"d" ~s:"0" ~w:20e-6 ~l:2.4e-6;
  let op = Dc.solve (B.finish b) in
  let mos_psd freq =
    let _, contributions = Ape_spice.Noise.output_noise ~out:"d" ~freq op in
    (List.find (fun c -> c.Ape_spice.Noise.element = "M1") contributions)
      .Ape_spice.Noise.psd
  in
  Alcotest.(check bool) "flicker dominates at low frequency" true
    (mos_psd 10. > mos_psd 1e6)

(* ---------- adjoint noise ---------- *)

let noise_golden_ops () =
  let dir =
    List.find Sys.file_exists
      [ Filename.concat "golden" "decks"; Filename.concat "test" "golden/decks" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.filter_map (fun f ->
         let file = Filename.concat dir f in
         let text = In_channel.with_open_text file In_channel.input_all in
         let deck =
           Ape_circuit.Spice_parser.parse ~process:proc ~title:file text
         in
         match Dc.solve deck with
         | exception Dc.No_convergence _ -> None
         | op ->
           if Ape_spice.Engine.node_id op.Dc.index "out" = None then None
           else Some (file, deck))

let test_noise_adjoint_matches_direct () =
  (* Reciprocity differential: one adjoint solve per frequency must
     agree with the historical one-solve-per-source reference to
     rounding, per element, on every golden deck and under both
     engines.  1e-10 relative is ~5 orders of slack over the observed
     worst case while still catching a misplaced transpose. *)
  let module Backend = Ape_spice.Backend in
  let tol = 1e-10 in
  let checked = ref 0 in
  List.iter
    (fun engine ->
      Backend.use engine @@ fun () ->
      List.iter
        (fun (file, deck) ->
          let op = Dc.solve deck in
          let prep = Ac.prepare op in
          List.iter
            (fun freq ->
              incr checked;
              let t_adj, c_adj =
                Ape_spice.Noise.output_noise_prepared ~out:"out" ~freq prep
              in
              let t_dir, c_dir =
                Ape_spice.Noise.output_noise_direct_prepared ~out:"out" ~freq
                  prep
              in
              if Float.abs (t_adj -. t_dir) > tol *. Float.max t_dir 1e-300
              then
                Alcotest.failf "%s @ %g Hz: adjoint total %g vs direct %g" file
                  freq t_adj t_dir;
              Alcotest.(check int)
                "same contribution count" (List.length c_dir)
                (List.length c_adj);
              List.iter
                (fun (d : Ape_spice.Noise.contribution) ->
                  let a =
                    List.find
                      (fun (a : Ape_spice.Noise.contribution) ->
                        a.Ape_spice.Noise.element = d.Ape_spice.Noise.element)
                      c_adj
                  in
                  let pd = d.Ape_spice.Noise.psd
                  and pa = a.Ape_spice.Noise.psd in
                  if Float.abs (pa -. pd) > tol *. Float.max pd 1e-300 then
                    Alcotest.failf "%s @ %g Hz: %s adjoint %g vs direct %g"
                      file freq d.Ape_spice.Noise.element pa pd)
                c_dir)
            [ 1e2; 1e5 ])
        (noise_golden_ops ()))
    [ Backend.Dense; Backend.Sparse ];
  Alcotest.(check bool) "checked several decks" true (!checked >= 6)

let test_noise_sparse_engine_counters () =
  (* Regression for the engine split: under the sparse backend, noise
     must factor through the sparse refactor path — exactly one adjoint
     solve per frequency, sparse counters ticking, and no dense LU. *)
  let module Backend = Ape_spice.Backend in
  Backend.use Backend.Sparse @@ fun () ->
  let file, deck = List.hd (noise_golden_ops ()) in
  ignore file;
  let op = Dc.solve deck in
  let prep = Ac.prepare op in
  Ape_obs.enable ();
  Ape_obs.reset ();
  ignore (Ape_spice.Noise.output_noise_prepared ~out:"out" ~freq:1e3 prep);
  let snap = Ape_obs.snapshot () in
  Ape_obs.disable ();
  let c name =
    Option.value ~default:0 (List.assoc_opt name snap.Ape_obs.counters)
  in
  Alcotest.(check int) "one adjoint solve" 1 (c "noise.adjoint_solves");
  Alcotest.(check bool) "sparse refactor ticked" true (c "sparse.refactor" > 0);
  Alcotest.(check int) "no dense LU" 0
    (c "matrix.lu_factor" + c "matrix.lu_factor_in_place"
    + c "matrix.csplit_factor")

(* ---------- dc sweep ---------- *)

let test_sweep_transfer () =
  let b = B.create ~title:"div" in
  B.vsource b ~p:"in" ~n:"0" 0.;
  B.resistor b ~a:"in" ~b:"out" 1e3;
  B.resistor b ~a:"out" ~b:"0" 1e3;
  let nl = B.finish b in
  let pts =
    Ape_spice.Sweep.transfer ~source:"V1" ~out:"out"
      ~values:[ 0.; 1.; 2.; 3. ] nl
  in
  List.iter
    (fun (vin, vout) -> check_close "halving" (vin /. 2.) vout ~tol:1e-9)
    pts

let test_sweep_crossing () =
  let b = B.create ~title:"div" in
  B.vsource b ~p:"in" ~n:"0" 0.;
  B.resistor b ~a:"in" ~b:"out" 1e3;
  B.resistor b ~a:"out" ~b:"0" 1e3;
  let nl = B.finish b in
  (match
     Ape_spice.Sweep.crossing ~source:"V1" ~out:"out" ~level:1.25 ~lo:0.
       ~hi:5. nl
   with
  | Some v -> check_close "crossing at 2.5" 2.5 v ~tol:1e-6
  | None -> Alcotest.fail "crossing not found");
  Alcotest.(check bool) "no crossing above range" true
    (Ape_spice.Sweep.crossing ~source:"V1" ~out:"out" ~level:10. ~lo:0.
       ~hi:5. nl
    = None)

(* ---------- prepared AC engine ---------- *)

(* Bitwise agreement (up to -0. = 0.) between two AC solutions: the
   prepared path must not change a single arithmetic operation relative
   to the re-stamping path. *)
let same_solution (a : Ac.solution) (b : Ac.solution) =
  a.Ac.freq = b.Ac.freq
  && Array.length a.Ac.x = Array.length b.Ac.x
  && Array.for_all2
       (fun (u : Complex.t) (v : Complex.t) ->
         u.Complex.re = v.Complex.re && u.Complex.im = v.Complex.im)
       a.Ac.x b.Ac.x

let golden_decks () =
  (* dune runtest runs in test/, `dune exec test/test_spice.exe` (ci.sh)
     in the project root. *)
  let dir =
    List.find Sys.file_exists
      [ Filename.concat "golden" "decks"; Filename.concat "test" "golden/decks" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let test_prepared_matches_solve_at_golden () =
  (* Dense engine pinned: [solve_at] is the always-dense reference, and
     the bit-identity contract is dense-only (test_sparse.ml pins the
     sparse engine's tolerance). *)
  Ape_spice.Backend.use Ape_spice.Backend.Dense @@ fun () ->
  let freqs = [ 0.; 1.; 120.; 1e3; 4.567e4; 1e6; 1e9 ] in
  let verified = ref 0 in
  List.iter
    (fun file ->
      let text = In_channel.with_open_text file In_channel.input_all in
      let nl = Ape_circuit.Spice_parser.parse ~title:file text in
      match Dc.solve nl with
      | exception Dc.No_convergence _ -> ()
      | op ->
        incr verified;
        let p = Ac.prepare op in
        List.iter
          (fun f ->
            let reference = Ac.solve_at op f in
            Alcotest.(check bool)
              (Printf.sprintf "%s: prepared = solve_at at %g Hz" file f)
              true
              (same_solution reference (Ac.solve_prepared p f));
            Alcotest.(check bool)
              (Printf.sprintf "%s: fresh = solve_at at %g Hz" file f)
              true
              (same_solution reference (Ac.solve_fresh p f)))
          freqs)
    (golden_decks ());
  Alcotest.(check bool) "solved several golden decks" true (!verified >= 3)

let test_prepared_sweep_jobs_identical () =
  let op = Dc.solve (rc_lowpass ()) in
  let p = Ac.prepare op in
  let freqs = Ac.sweep_frequencies ~points_per_decade:7 ~fstart:1. ~fstop:1e6 () in
  let seq = Ac.sweep_prepared ~jobs:1 p freqs in
  let par = Ac.sweep_prepared ~jobs:4 p freqs in
  Alcotest.(check int) "same point count" (List.length seq.Ac.points)
    (List.length par.Ac.points);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=1 = jobs=4 at %g Hz" a.Ac.freq)
        true (same_solution a b))
    seq.Ac.points par.Ac.points

(* A MOSFET circuit exercises the finite-difference Jacobian inside the
   preparation; random frequencies cover the assembly at arbitrary ω. *)
let mos_amp_op () =
  let b = B.create ~title:"csamp" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 1.2;
  B.nmos b proc ~d:"out" ~g:"in" ~s:"0" ~w:20e-6 ~l:2.4e-6;
  B.resistor b ~a:"vdd" ~b:"out" 47e3;
  B.capacitor b ~a:"out" ~b:"0" 1e-12;
  Dc.solve (B.finish b)

let prop_prepared_matches_solve_at =
  (* Bit-identity only holds on the dense engine ([solve_at] is always
     dense); under APE_ENGINE=sparse the sparse-specific differential
     suite in test_sparse.ml covers the prepared path. *)
  QCheck.Test.make ~name:"prepared solve bit-identical to solve_at" ~count:60
    (QCheck.float_range (-1.) 9.) (fun logf ->
      Ape_spice.Backend.use Ape_spice.Backend.Dense @@ fun () ->
      let f = 10. ** logf in
      let op = mos_amp_op () in
      let p = Ac.prepare op in
      same_solution (Ac.solve_at op f) (Ac.solve_prepared p f))

let prop_assembled_matrix_matches_direct_stamping =
  QCheck.Test.make ~name:"G + jωC assembly matches direct stamping" ~count:60
    (QCheck.float_range (-1.) 9.) (fun logf ->
      let module Rmat = Ape_util.Matrix.Rmat in
      let module Cmat = Ape_util.Matrix.Cmat in
      let freq = 10. ** logf in
      let op = mos_amp_op () in
      let a = Ac.matrix_at (Ac.prepare op) freq in
      let netlist = op.Dc.netlist and index = op.Dc.index in
      let n = Ape_spice.Engine.size index in
      let _, g =
        Ape_spice.Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x
      in
      let c = Ape_spice.Engine.stamp_capacitances netlist index op.Dc.x in
      let omega = 2. *. Float.pi *. freq in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let entry = Cmat.get a i j in
          if
            not
              (entry.Complex.re = Rmat.get g i j
              && entry.Complex.im = omega *. Rmat.get c i j)
          then ok := false
        done
      done;
      !ok)

(* Two buffered poles at ~0.016 Hz and a positive DC gain of 2: the
   phase at 1 Hz is already ≈ −178°, so inferring the sign from a 1 Hz
   phase probe (the old dc_gain_signed) misread this circuit as
   inverting.  The ω → 0 solve is immune to pole positions. *)
let subhertz_positive_nl () =
  let b = B.create ~title:"subhertz" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.resistor b ~a:"in" ~b:"p1" 1e6;
  B.capacitor b ~a:"p1" ~b:"0" 10e-6;
  B.vcvs b ~p:"b1" ~n:"0" ~cp:"p1" ~cn:"0" 1.;
  B.resistor b ~a:"b1" ~b:"p2" 1e6;
  B.capacitor b ~a:"p2" ~b:"0" 10e-6;
  B.vcvs b ~p:"out" ~n:"0" ~cp:"p2" ~cn:"0" 2.;
  B.resistor b ~a:"out" ~b:"0" 1e3;
  B.finish b

let test_signed_gain_subhertz_poles () =
  let op = Dc.solve (subhertz_positive_nl ()) in
  (* Sanity: the old 1 Hz probe really sits beyond 90° of lag. *)
  let ph1 = Measure.phase_at ~out:"out" op 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "1 Hz phase beyond ±90° (%.1f°)" ph1)
    true
    (Float.abs ph1 > 90.);
  (* gmin (1e-12 S) loads the two 1 MΩ stages by ~1 ppm each. *)
  check_close "positive gain recovered" 2.0
    (Measure.dc_gain_signed ~out:"out" op)
    ~tol:1e-5;
  (* And an actually inverting stage still reports negative. *)
  let b = B.create ~title:"inv" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.vcvs b ~p:"out" ~n:"0" ~cp:"0" ~cn:"in" 3.;
  B.resistor b ~a:"out" ~b:"0" 1e3;
  let opi = Dc.solve (B.finish b) in
  check_close "inverting gain" (-3.)
    (Measure.dc_gain_signed ~out:"out" opi)
    ~tol:1e-9

(* Three coincident poles behind a gain of 1000: |H| = 1 at
   f = fc·√99 where the lag is 3·atan(√99) ≈ 252.8° — past 180°, so
   the wrapped phase flips sign and the old phase margin came out
   +287° instead of the true −72.8°. *)
let three_pole_nl () =
  let fc = 1e3 in
  let r = 1e3 in
  let c = 1. /. (2. *. Float.pi *. fc *. r) in
  let b = B.create ~title:"3pole" in
  B.vsource b ~p:"in" ~n:"0" ~ac:1. 0.;
  B.vcvs b ~p:"amp" ~n:"0" ~cp:"in" ~cn:"0" 1000.;
  B.resistor b ~a:"amp" ~b:"p1" r;
  B.capacitor b ~a:"p1" ~b:"0" c;
  B.vcvs b ~p:"b1" ~n:"0" ~cp:"p1" ~cn:"0" 1.;
  B.resistor b ~a:"b1" ~b:"p2" r;
  B.capacitor b ~a:"p2" ~b:"0" c;
  B.vcvs b ~p:"b2" ~n:"0" ~cp:"p2" ~cn:"0" 1.;
  B.resistor b ~a:"b2" ~b:"out" r;
  B.capacitor b ~a:"out" ~b:"0" c;
  B.finish b

let test_phase_margin_unwrapped () =
  let op = Dc.solve (three_pole_nl ()) in
  match Measure.phase_margin ~fmin:1. ~fmax:1e8 ~out:"out" op with
  | None -> Alcotest.fail "no unity crossing found"
  | Some pm ->
    (* 180 − 3·atan(√99) in degrees. *)
    let expected =
      180. -. (3. *. Float.atan (Float.sqrt 99.) *. 180. /. Float.pi)
    in
    Alcotest.(check bool)
      (Printf.sprintf "phase margin is negative (%.2f°)" pm)
      true (pm < 0.);
    check_close "unwrapped phase margin" expected pm ~tol:1e-3

let test_unwrapped_phase_matches_wrapped_when_no_wrap () =
  (* Single pole: lag never exceeds 90°, so the unwrapped phase must
     equal the principal value exactly. *)
  let op = Dc.solve (rc_lowpass ()) in
  let p = Ape_spice.Ac.prepare op in
  List.iter
    (fun f ->
      let wrapped = Measure.Prepared.phase_at ~out:"out" p f in
      let unwrapped = Measure.Prepared.unwrapped_phase_at ~out:"out" p f in
      Alcotest.(check (float 0.))
        (Printf.sprintf "no-wrap identity at %g Hz" f)
        wrapped unwrapped)
    [ 1.; 100.; 159.; 1e4; 1e6 ]

(* The endpoint solves of Sweep.crossing thread a warm-start; the
   result must be the same whether the reference evaluates lo or hi
   first. *)
let nmos_inverter_nl () =
  let b = B.create ~title:"inv" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.vsource b ~p:"in" ~n:"0" 0.;
  B.resistor b ~a:"vdd" ~b:"out" 10e3;
  B.nmos b proc ~d:"out" ~g:"in" ~s:"0" ~w:20e-6 ~l:2.4e-6;
  B.finish b

let test_sweep_crossing_order_independent () =
  let nl = nmos_inverter_nl () in
  let crossing_ref ~hi_first =
    (* Same warm-started bisection as Sweep.crossing, with an explicit
       endpoint evaluation order. *)
    let warm = ref None in
    let solve v =
      let b = B.create ~title:"inv" in
      B.vsource b ~p:"vdd" ~n:"0" 5.;
      B.vsource b ~p:"in" ~n:"0" v;
      B.resistor b ~a:"vdd" ~b:"out" 10e3;
      B.nmos b proc ~d:"out" ~g:"in" ~s:"0" ~w:20e-6 ~l:2.4e-6;
      let nl = B.finish b in
      let op =
        match !warm with
        | None -> Dc.solve nl
        | Some x0 -> (
          match Dc.solve ~x0 nl with
          | op -> op
          | exception Dc.No_convergence _ -> Dc.solve nl)
      in
      warm := Some op.Dc.x;
      Dc.voltage op "out" -. 2.5
    in
    let f_lo, f_hi =
      if hi_first then begin
        let f_hi = solve 5. in
        let f_lo = solve 0. in
        (f_lo, f_hi)
      end
      else begin
        let f_lo = solve 0. in
        let f_hi = solve 5. in
        (f_lo, f_hi)
      end
    in
    assert (f_lo *. f_hi < 0.);
    let rec bisect lo hi f_lo k =
      if k = 0 then 0.5 *. (lo +. hi)
      else begin
        let mid = 0.5 *. (lo +. hi) in
        let f_mid = solve mid in
        if f_mid = 0. then mid
        else if f_lo *. f_mid < 0. then bisect lo mid f_lo (k - 1)
        else bisect mid hi f_mid (k - 1)
      end
    in
    bisect 0. 5. f_lo 40
  in
  let lo_first = crossing_ref ~hi_first:false in
  let hi_first = crossing_ref ~hi_first:true in
  check_close "reference orders agree" lo_first hi_first ~tol:1e-9;
  match
    Ape_spice.Sweep.crossing ~source:"V2" ~out:"out" ~level:2.5 ~lo:0. ~hi:5.
      nl
  with
  | None -> Alcotest.fail "crossing not found"
  | Some v -> check_close "Sweep.crossing matches reference" lo_first v ~tol:1e-9

(* ---------- properties ---------- *)

let test_transient_matches_ac_steady_state () =
  (* Drive the RC with a sine at fc: after the transient dies, the
     output amplitude must equal the AC magnitude at that frequency. *)
  let op = Dc.solve (rc_lowpass ()) in
  let fc = 1. /. (2. *. Float.pi *. 1e-3) in
  let ac_mag = Ac.magnitude_at ~node:"out" op fc in
  let period = 1. /. fc in
  let result =
    Tr.run
      ~stimulus:[ ("V1", Tr.sine ~ampl:1. ~freq:fc ()) ]
      ~tstop:(10. *. period) ~dt:(period /. 200.) op
  in
  (* Peak over the last two periods. *)
  let ys = Tr.samples result "out" and ts = result.Tr.times in
  let peak = ref 0. in
  Array.iteri
    (fun i t -> if t > 8. *. period then peak := Float.max !peak (Float.abs ys.(i)))
    ts;
  check_close "steady-state amplitude = |H(fc)|" ac_mag !peak ~tol:0.01

let test_estimator_cross_process () =
  (* The whole estimate-vs-simulate story holds on the second built-in
     deck too. *)
  let p08 = Proc.c08 in
  let d =
    Ape_estimator.Diff_pair.design p08
      (Ape_estimator.Diff_pair.spec ~av:400.
         Ape_estimator.Diff_pair.Cmos_mirror ~itail:2e-6)
  in
  let sim = Ape_estimator.Verify.sim_diff_pair p08 d in
  (match (d.Ape_estimator.Diff_pair.perf.Ape_estimator.Perf.gain,
          sim.Ape_estimator.Perf.gain) with
  | Some est, Some meas ->
    Alcotest.(check bool)
      (Printf.sprintf "c08 gain within 50%% (est %.1f sim %.1f)" est meas)
      true
      (F.rel_error est meas < 0.5)
  | _ -> Alcotest.fail "missing gains");
  match (d.Ape_estimator.Diff_pair.perf.Ape_estimator.Perf.dc_power,
         sim.Ape_estimator.Perf.dc_power) with
  | est, meas ->
    Alcotest.(check bool) "c08 power within 10%" true
      (F.rel_error est meas < 0.1)

let prop_ac_rc_any_freq =
  QCheck.Test.make ~name:"RC low-pass matches analytic response" ~count:60
    (QCheck.float_range 0.5 6.) (fun logf ->
      let f = 10. ** logf in
      let op = Dc.solve (rc_lowpass ()) in
      let fc = 1. /. (2. *. Float.pi *. 1e-3) in
      let mag = Ac.magnitude_at ~node:"out" op f in
      let expected = 1. /. Float.sqrt (1. +. ((f /. fc) ** 2.)) in
      F.approx_equal ~rtol:1e-6 ~atol:1e-9 expected mag)

let prop_dc_divider_ratio =
  QCheck.Test.make ~name:"two-resistor divider always splits by ratio"
    ~count:100
    QCheck.(pair (float_range 2. 6.) (float_range 2. 6.))
    (fun (lr1, lr2) ->
      let r1 = 10. ** lr1 and r2 = 10. ** lr2 in
      let b = B.create ~title:"div" in
      B.vsource b ~p:"vdd" ~n:"0" 5.;
      B.resistor b ~a:"vdd" ~b:"mid" r1;
      B.resistor b ~a:"mid" ~b:"0" r2;
      let op = Dc.solve (B.finish b) in
      F.approx_equal ~rtol:1e-6 ~atol:1e-9
        (5. *. r2 /. (r1 +. r2))
        (Dc.voltage op "mid"))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_spice"
    [
      ( "dc",
        [
          Alcotest.test_case "divider" `Quick test_dc_divider;
          Alcotest.test_case "current source" `Quick test_dc_isource;
          Alcotest.test_case "vcvs" `Quick test_dc_vcvs;
          Alcotest.test_case "diode mosfet" `Quick test_dc_diode_mosfet;
          Alcotest.test_case "switch" `Quick test_dc_switch;
          Alcotest.test_case "M= multiplier differential" `Quick
            test_dc_multiplier_differential;
          Alcotest.test_case "diff pair convergence" `Quick
            test_dc_diff_pair_convergence;
        ] );
      ( "ac",
        [
          Alcotest.test_case "rc analytic" `Quick test_ac_rc_analytic;
          Alcotest.test_case "phase" `Quick test_ac_phase;
          Alcotest.test_case "sweep shape" `Quick test_ac_sweep_shape;
          Alcotest.test_case "f3db/ugf" `Quick test_measure_f3db_ugf;
          Alcotest.test_case "bandpass" `Quick test_measure_bandpass;
        ] );
      ( "transient",
        [
          Alcotest.test_case "rc step BE" `Quick test_transient_rc_step;
          Alcotest.test_case "rc step trapezoidal" `Quick
            test_transient_trapezoidal;
          Alcotest.test_case "two-pole step analytic" `Quick
            test_transient_two_pole_step;
          Alcotest.test_case "helpers" `Quick test_transient_helpers;
          Alcotest.test_case "timestep-halving order" `Quick
            test_transient_convergence_order;
          Alcotest.test_case "step acceptance pinned" `Quick
            test_transient_step_acceptance;
          Alcotest.test_case "waveforms" `Quick test_waveforms;
        ] );
      ( "awe",
        [
          Alcotest.test_case "rc pole" `Quick test_awe_rc_pole;
          Alcotest.test_case "two poles" `Quick test_awe_two_pole;
          Alcotest.test_case "ugf estimate" `Quick test_awe_ugf_estimate;
          Alcotest.test_case "rc moments analytic" `Quick test_awe_moments_rc;
          Alcotest.test_case "unity crossing analytic" `Quick
            test_awe_unity_crossing_analytic;
        ] );
      ( "errors",
        [
          Alcotest.test_case "missing branch is typed" `Quick
            test_engine_error_missing_branch;
          Alcotest.test_case "no-convergence is typed" `Quick
            test_no_convergence_is_typed;
        ] );
      ( "noise",
        [
          Alcotest.test_case "divider analytic" `Quick
            test_noise_divider_analytic;
          Alcotest.test_case "kT/C" `Quick test_noise_rc_filtered;
          Alcotest.test_case "mosfet thermal" `Quick test_noise_mosfet_thermal;
          Alcotest.test_case "flicker rolloff" `Quick
            test_noise_flicker_rolloff;
          Alcotest.test_case "input-referred divider" `Quick
            test_noise_input_referred_divider;
          Alcotest.test_case "adjoint matches direct on golden decks" `Quick
            test_noise_adjoint_matches_direct;
          Alcotest.test_case "sparse engine counters during noise" `Quick
            test_noise_sparse_engine_counters;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "transfer" `Quick test_sweep_transfer;
          Alcotest.test_case "crossing" `Quick test_sweep_crossing;
          Alcotest.test_case "crossing order independent" `Quick
            test_sweep_crossing_order_independent;
        ] );
      ( "prepared",
        [
          Alcotest.test_case "golden decks bit-identical" `Quick
            test_prepared_matches_solve_at_golden;
          Alcotest.test_case "parallel sweep identical" `Quick
            test_prepared_sweep_jobs_identical;
          Alcotest.test_case "sub-hertz signed gain" `Quick
            test_signed_gain_subhertz_poles;
          Alcotest.test_case "phase margin unwrapped" `Quick
            test_phase_margin_unwrapped;
          Alcotest.test_case "unwrap no-wrap identity" `Quick
            test_unwrapped_phase_matches_wrapped_when_no_wrap;
        ] );
      qsuite "prepared-properties"
        [
          prop_prepared_matches_solve_at;
          prop_assembled_matrix_matches_direct_stamping;
        ];
      ( "consistency",
        [
          Alcotest.test_case "transient vs AC steady state" `Quick
            test_transient_matches_ac_steady_state;
          Alcotest.test_case "cross-process estimator" `Quick
            test_estimator_cross_process;
        ] );
      qsuite "properties" [ prop_ac_rc_any_freq; prop_dc_divider_ratio ];
    ]
