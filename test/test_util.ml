(* Unit and property tests for Ape_util: units, float helpers, intervals,
   matrices, polynomials, root finding, RNG, strings, tables. *)

module U = Ape_util.Units
module F = Ape_util.Float_ext
module I = Ape_util.Interval
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat
module Poly = Ape_util.Poly
module Root = Ape_util.Rootfind
module Rng = Ape_util.Rng
module Strings = Ape_util.Strings
module Table = Ape_util.Table

let check_float = Alcotest.(check (float 1e-9))
let checkf msg expected actual = check_float msg expected actual
let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.8g vs %.8g" msg expected actual)
    true
    (F.approx_equal ~rtol:tol ~atol:tol expected actual)

(* ---------- Units ---------- *)

let test_eng_format () =
  Alcotest.(check string) "mega" "4.67M" (U.to_eng 4.67e6);
  Alcotest.(check string) "micro" "13u" (U.to_eng 1.3e-5);
  Alcotest.(check string) "unit" "5" (U.to_eng 5.);
  Alcotest.(check string) "negative" "-2.5m" (U.to_eng (-2.5e-3));
  Alcotest.(check string) "zero" "0" (U.to_eng 0.);
  Alcotest.(check string) "kilo trim" "10k" (U.to_eng 1e4);
  Alcotest.(check string) "with unit" "2.64MHz" (U.to_eng_unit "Hz" 2.64e6)

let test_constants () =
  checkf "um2" 1e-12 U.um2;
  check_close "thermal voltage at 300.15K" 0.02585
    (U.thermal_voltage ()) ~tol:1e-3;
  check_close "eps_ox" 3.9 (U.eps_ox /. U.eps_0)

(* ---------- Float_ext ---------- *)

let test_float_helpers () =
  Alcotest.(check bool) "approx eq" true (F.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "approx ne" false (F.approx_equal 1.0 1.1);
  checkf "clamp hi" 2. (F.clamp ~lo:0. ~hi:2. 5.);
  checkf "clamp lo" 0. (F.clamp ~lo:0. ~hi:2. (-1.));
  checkf "lerp mid" 1.5 (F.lerp 1. 2. 0.5);
  Alcotest.(check int) "linspace length" 5 (List.length (F.linspace 0. 1. 5));
  checkf "linspace last" 1. (List.nth (F.linspace 0. 1. 5) 4);
  check_close "logspace mid" 10. (List.nth (F.logspace 1. 100. 3) 1);
  checkf "db of 10" 20. (F.db_of_gain 10.);
  check_close "gain of 20dB" 10. (F.gain_of_db 20.);
  checkf "mean" 2. (F.mean [ 1.; 2.; 3. ]);
  check_close "geometric mean" 2. (F.geometric_mean [ 1.; 4. ]);
  checkf "rel error" 0.1 (F.rel_error 10. 11.)

let test_float_errors () =
  Alcotest.check_raises "clamp bad" (Invalid_argument "Float_ext.clamp: lo > hi")
    (fun () -> ignore (F.clamp ~lo:2. ~hi:1. 0.));
  Alcotest.check_raises "mean empty" (Invalid_argument "Float_ext.mean: empty")
    (fun () -> ignore (F.mean []))

(* ---------- Interval ---------- *)

let test_interval_basic () =
  let iv = I.make 1. 3. in
  checkf "lo" 1. (I.lo iv);
  checkf "hi" 3. (I.hi iv);
  checkf "mid" 2. (I.mid iv);
  checkf "width" 2. (I.width iv);
  Alcotest.(check bool) "contains" true (I.contains iv 2.5);
  Alcotest.(check bool) "not contains" false (I.contains iv 3.5);
  checkf "clamp" 3. (I.clamp iv 4.);
  let c = I.of_center ~pct:0.2 10. in
  checkf "center lo" 8. (I.lo c);
  checkf "center hi" 12. (I.hi c);
  (* Negative centre keeps bounds ordered. *)
  let n = I.of_center ~pct:0.2 (-10.) in
  Alcotest.(check bool) "neg ordered" true (I.lo n < I.hi n)

let test_interval_ops () =
  let a = I.make 1. 2. and b = I.make (-1.) 3. in
  checkf "add lo" 0. (I.lo (I.add a b));
  checkf "add hi" 5. (I.hi (I.add a b));
  checkf "mul lo" (-2.) (I.lo (I.mul a b));
  checkf "mul hi" 6. (I.hi (I.mul a b));
  Alcotest.(check bool) "intersect none" true
    (I.intersect (I.make 0. 1.) (I.make 2. 3.) = None);
  (match I.intersect a b with
  | Some iv ->
    checkf "intersect lo" 1. (I.lo iv);
    checkf "intersect hi" 2. (I.hi iv)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.check_raises "div by zero-containing" Division_by_zero (fun () ->
      ignore (I.div a b))

let interval_gen =
  QCheck.Gen.(
    map2
      (fun a b -> I.make (Float.min a b) (Float.max a b))
      (float_range (-100.) 100.)
      (float_range (-100.) 100.))

let arb_interval = QCheck.make interval_gen

let prop_interval_mul_sound =
  QCheck.Test.make ~name:"interval mul contains pointwise products"
    ~count:200
    (QCheck.triple arb_interval arb_interval (QCheck.float_range 0. 1.))
    (fun (a, b, t) ->
      let x = F.lerp (I.lo a) (I.hi a) t in
      let y = F.lerp (I.lo b) (I.hi b) (1. -. t) in
      I.contains (I.mul a b) (x *. y))

let prop_interval_hull =
  QCheck.Test.make ~name:"hull contains both intervals" ~count:200
    (QCheck.pair arb_interval arb_interval) (fun (a, b) ->
      let h = I.hull a b in
      I.contains h (I.lo a) && I.contains h (I.hi b))

(* ---------- Matrix ---------- *)

let test_matrix_solve () =
  let a = Rmat.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Rmat.solve a [| 5.; 10. |] in
  check_close "x0" 1. x.(0);
  check_close "x1" 3. x.(1)

let test_matrix_identity () =
  let i = Rmat.identity 4 in
  let b = [| 1.; 2.; 3.; 4. |] in
  let x = Rmat.solve i b in
  Array.iteri (fun k v -> check_close "identity solve" b.(k) v) x

let test_matrix_singular () =
  let a = Rmat.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Ape_util.Matrix.Singular (fun () ->
      ignore (Rmat.solve a [| 1.; 1. |]))

let test_matrix_complex () =
  let j = { Complex.re = 0.; im = 1. } in
  let a =
    Cmat.of_arrays
      [| [| Complex.one; j |]; [| Complex.neg j; Complex.one |] |]
  in
  (* Well-conditioned Hermitian-ish system. *)
  let a2 = Cmat.copy a in
  Cmat.set a2 0 0 { Complex.re = 3.; im = 0. };
  let b = [| Complex.one; Complex.zero |] in
  let x = Cmat.solve a2 b in
  let res = Cmat.residual_norm a2 x b in
  Alcotest.(check bool) "complex residual tiny" true (res < 1e-12)

let prop_lu_random =
  QCheck.Test.make ~name:"LU solves random diagonally-dominant systems"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 9) (float_range (-1.) 1.))
    (fun coeffs ->
      let n = 3 in
      let m = Rmat.create n n in
      List.iteri (fun k v -> Rmat.set m (k / n) (k mod n) v) coeffs;
      for i = 0 to n - 1 do
        Rmat.add_to m i i 5.
      done;
      let b = Array.init n (fun i -> float_of_int (i + 1)) in
      let x = Rmat.solve m b in
      Rmat.residual_norm m x b < 1e-9)

(* Dense Csplit adjoint reference: one factorisation must serve both
   A x = b and Aᵀ y = b.  Check the transposed solve against the functor
   path on the explicitly transposed matrix. *)
let prop_csplit_solve_transposed =
  QCheck.Test.make ~name:"Csplit solve_transposed solves the transpose"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.return 24) (float_range (-1.) 1.))
    (fun coeffs ->
      let n = 3 in
      let module Cs = Ape_util.Matrix.Csplit in
      let cs = Cs.create n in
      let vals = Array.of_list coeffs in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let k = 2 * ((i * n) + j) in
          cs.Cs.re.(i).(j) <- vals.(k);
          cs.Cs.im.(i).(j) <- vals.(k + 1)
        done;
        cs.Cs.re.(i).(i) <- cs.Cs.re.(i).(i) +. 5.
      done;
      (* at = Aᵀ through the functor path, before factoring clobbers cs. *)
      let at = Cmat.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Cmat.set at j i { Complex.re = cs.Cs.re.(i).(j); im = cs.Cs.im.(i).(j) }
        done
      done;
      let b =
        Array.init n (fun i ->
            { Complex.re = vals.(18 + (2 * i)); im = vals.(19 + (2 * i)) })
      in
      let perm = Array.make n 0 in
      Cs.factor_in_place cs perm;
      let y = Cs.solve_transposed cs perm b in
      let x = Cmat.solve at b in
      let err = ref 0. in
      Array.iteri
        (fun i yi -> err := Float.max !err (Complex.norm (Complex.sub yi x.(i))))
        y;
      !err < 1e-10)

let test_mat_mul () =
  let a = Rmat.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Rmat.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Rmat.mat_mul a b in
  checkf "c00" 19. (Rmat.get c 0 0);
  checkf "c11" 50. (Rmat.get c 1 1);
  let v = Rmat.mat_vec a [| 1.; 1. |] in
  checkf "matvec" 3. v.(0)

(* ---------- Poly ---------- *)

let test_poly_eval () =
  let p = Poly.of_coeffs [| 1.; 2.; 3. |] in
  checkf "eval at 2" 17. (Poly.eval p 2.);
  Alcotest.(check int) "degree" 2 (Poly.degree p);
  let d = Poly.derivative p in
  checkf "derivative at 1" 8. (Poly.eval d 1.)

let test_poly_roots () =
  let p = Poly.of_real_roots [ 1.; 2.; 3. ] in
  let roots = Poly.real_roots p in
  Alcotest.(check int) "three real roots" 3 (List.length roots);
  List.iter2
    (fun expected actual -> check_close "root" expected actual ~tol:1e-5)
    [ 1.; 2.; 3. ] roots

let test_poly_complex_roots () =
  (* x^2 + 1 = 0 -> +/- i *)
  let p = Poly.of_coeffs [| 1.; 0.; 1. |] in
  let roots = Poly.roots p in
  Alcotest.(check int) "two roots" 2 (List.length roots);
  List.iter
    (fun (z : Complex.t) ->
      check_close "re" 0. z.re ~tol:1e-6;
      check_close "|im|" 1. (Float.abs z.im) ~tol:1e-6)
    roots

let test_butterworth () =
  let poles = Poly.butterworth_poles 4 in
  Alcotest.(check int) "four poles" 4 (List.length poles);
  List.iter
    (fun (p : Complex.t) ->
      check_close "unit magnitude" 1. (Complex.norm p) ~tol:1e-9;
      Alcotest.(check bool) "left half plane" true (p.re < 0.))
    poles

let prop_poly_mul_eval =
  QCheck.Test.make ~name:"eval(p*q) = eval p * eval q" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 4) (float_range (-3.) 3.))
        (list_of_size (Gen.int_range 1 4) (float_range (-3.) 3.))
        (float_range (-2.) 2.))
    (fun (ca, cb, x) ->
      let pa = Poly.of_coeffs (Array.of_list ca) in
      let pb = Poly.of_coeffs (Array.of_list cb) in
      F.approx_equal ~rtol:1e-9 ~atol:1e-9
        (Poly.eval (Poly.mul pa pb) x)
        (Poly.eval pa x *. Poly.eval pb x))

(* ---------- Rootfind ---------- *)

let test_bisect () =
  let root = Root.bisect (fun x -> (x *. x) -. 2.) 0. 2. in
  check_close "sqrt 2" (Float.sqrt 2.) root ~tol:1e-9

let test_brent () =
  let root = Root.brent (fun x -> Float.cos x -. x) 0. 1. in
  check_close "dottie number" 0.7390851332151607 root ~tol:1e-9

let test_newton () =
  let root =
    Root.newton ~f:(fun x -> (x *. x) -. 2.) ~df:(fun x -> 2. *. x) 1.
  in
  check_close "sqrt 2 newton" (Float.sqrt 2.) root ~tol:1e-9

let test_no_bracket () =
  Alcotest.check_raises "no bracket" Root.No_bracket (fun () ->
      ignore (Root.brent (fun x -> (x *. x) +. 1.) (-1.) 1.))

let test_expand_bracket () =
  let lo, hi = Root.expand_bracket (fun x -> x -. 100.) 0. 1. in
  Alcotest.(check bool) "bracket found" true (lo <= 100. && hi >= 100.)

let test_solve_increasing () =
  let x = Root.solve_increasing (fun x -> x *. x *. x) ~target:8. 0.1 1. in
  check_close "cube root" 2. x ~tol:1e-6

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 10 do
    checkf "same stream" (Rng.uniform a 0. 1.) (Rng.uniform b 0. 1.)
  done

let test_rng_ranges () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    let u = Rng.uniform rng 2. 5. in
    Alcotest.(check bool) "uniform in range" true (u >= 2. && u < 5.);
    let l = Rng.log_uniform rng 1e-6 1e-3 in
    Alcotest.(check bool) "log uniform in range" true
      (l >= 1e-6 && l <= 1e-3)
  done

let test_rng_gauss_moments () =
  let rng = Rng.create 11 in
  let n = 5000 in
  let samples = List.init n (fun _ -> Rng.gauss rng ~mean:2. ~sigma:0.5) in
  let mean = F.mean samples in
  Alcotest.(check bool) "gauss mean near 2" true (Float.abs (mean -. 2.) < 0.05)

let correlation xs ys =
  let n = Array.length xs in
  let mx = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let my = Array.fold_left ( +. ) 0. ys /. float_of_int n in
  let sxy = ref 0. and sxx = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  !sxy /. Float.sqrt (!sxx *. !syy)

(* MC correctness leans on per-sample stream independence: sibling
   streams from any seed must be uncorrelated.  1000 paired uniforms
   have correlation std ~1/sqrt(1000) ~ 0.032, so |r| < 0.15 is a ~5
   sigma acceptance band — tight enough to catch seed-sharing bugs,
   loose enough to never flake. *)
let prop_rng_split_independent =
  QCheck.Test.make ~name:"split siblings uncorrelated" ~count:30
    QCheck.small_nat (fun seed ->
      let parent = Rng.create seed in
      let a = Rng.split parent and b = Rng.split parent in
      let n = 1000 in
      let xs = Array.init n (fun _ -> Rng.uniform a 0. 1.) in
      let ys = Array.init n (fun _ -> Rng.uniform b 0. 1.) in
      Float.abs (correlation xs ys) < 0.15)

let prop_rng_split_n_independent =
  QCheck.Test.make ~name:"split_n children pairwise uncorrelated" ~count:10
    QCheck.small_nat (fun seed ->
      let children = Rng.split_n (Rng.create seed) 4 in
      let n = 1000 in
      let draws =
        Array.map (fun c -> Array.init n (fun _ -> Rng.uniform c 0. 1.)) children
      in
      let ok = ref true in
      Array.iteri
        (fun i xi ->
          Array.iteri
            (fun j xj ->
              if i < j && Float.abs (correlation xi xj) >= 0.15 then
                ok := false)
            draws)
        draws;
      !ok)

let test_rng_split_n_keyed () =
  (* Child i must depend only on (parent state, i): consuming a prefix
     of the array or asking for more children must not change it. *)
  let child_draw ~of_n i =
    let c = (Rng.split_n (Rng.create 42) of_n).(i) in
    Rng.uniform c 0. 1.
  in
  checkf "child 0 stable" (child_draw ~of_n:1 0) (child_draw ~of_n:8 0);
  checkf "child 2 stable" (child_draw ~of_n:3 2) (child_draw ~of_n:16 2);
  Alcotest.(check bool) "children differ" true
    (child_draw ~of_n:8 0 <> child_draw ~of_n:8 1)

(* ---------- Strings / Table ---------- *)

let test_strings () =
  Alcotest.(check string) "replace all" "a-b-c"
    (Strings.replace_all ~pattern:"_" ~with_:"-" "a_b_c");
  Alcotest.(check string) "fixpoint" "K=V"
    (Strings.replace_fixpoint ~pattern:" =" ~with_:"=" "K   =V");
  Alcotest.(check (list string)) "split words" [ "a"; "b"; "c" ]
    (Strings.split_words "  a b\tc ");
  Alcotest.(check bool) "prefix ci" true
    (Strings.starts_with_ci ~prefix:".model" ".MODEL FOO")

let test_table () =
  let out =
    Table.render ~header:[ "a"; "b" ] [ [ "1"; "22" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "has rule" true (String.length out > 0);
  (* Rows padded to header width must not raise; check cell formats. *)
  Alcotest.(check string) "pct" "13.8%" (Table.cell_pct 0.138);
  Alcotest.(check string) "fixed" "206.20" (Table.cell_fixed 206.2)

let test_eng_edge_cases () =
  Alcotest.(check string) "nan" "nan" (U.to_eng Float.nan);
  Alcotest.(check string) "inf" "inf" (U.to_eng Float.infinity);
  Alcotest.(check string) "-inf" "-inf" (U.to_eng Float.neg_infinity);
  (* Beyond the prefix ladder: clamps to the extreme prefixes. *)
  Alcotest.(check bool) "tiny uses atto" true
    (String.length (U.to_eng 1e-20) > 0);
  Alcotest.(check string) "digits control" "1.235k" (U.to_eng ~digits:4 1234.56)

let test_linspace_errors () =
  Alcotest.check_raises "linspace n<2"
    (Invalid_argument "Float_ext.linspace: n < 2") (fun () ->
      ignore (F.linspace 0. 1. 1));
  Alcotest.check_raises "logspace non-positive"
    (Invalid_argument "Float_ext.logspace: bounds <= 0") (fun () ->
      ignore (F.logspace 0. 1. 3))

let prop_interval_sample_inside =
  QCheck.Test.make ~name:"interval samples stay inside" ~count:200
    arb_interval (fun iv ->
      let rng = Rng.create 5 in
      I.contains iv (I.sample (Rng.state rng) iv))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose is an involution" ~count:100
    QCheck.(list_of_size (Gen.return 6) (float_range (-5.) 5.))
    (fun coeffs ->
      let m = Rmat.create 2 3 in
      List.iteri (fun k v -> Rmat.set m (k / 3) (k mod 3) v) coeffs;
      Rmat.to_arrays (Rmat.transpose (Rmat.transpose m)) = Rmat.to_arrays m)

let prop_poly_of_roots_vanishes =
  QCheck.Test.make ~name:"poly of roots vanishes at each root" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 4) (float_range (-3.) 3.))
    (fun roots ->
      let p = Poly.of_real_roots roots in
      List.for_all (fun r -> Float.abs (Poly.eval p r) < 1e-9) roots)

(* ---------- Pool ---------- *)

module Pool = Ape_util.Pool

exception Boom of int

(* A raise inside a submitted thunk must re-raise at await — on the
   caller, not the worker — and must not wedge the pool: later tasks
   and the shutdown join still complete. *)
let test_pool_exception_propagation () =
  Pool.with_pool ~workers:2 (fun pool ->
      let bad = Pool.submit pool (fun () -> raise (Boom 42)) in
      let good = Pool.submit pool (fun () -> 17) in
      Alcotest.check_raises "thunk exception re-raised at await" (Boom 42)
        (fun () -> ignore (Pool.await bad));
      Alcotest.(check int) "pool still serves tasks" 17 (Pool.await good));
  (* with_pool returning at all is the no-deadlock assertion: shutdown
     joined both workers after a task raised. *)
  Alcotest.(check pass) "join after raise" () ()

let test_pool_map_exception_no_deadlock () =
  Alcotest.check_raises "map re-raises after joining all chunks" (Boom 3)
    (fun () ->
      ignore
        (Pool.map ~jobs:3 64 (fun i -> if i = 3 then raise (Boom 3) else i)))

let test_pool_inline_when_no_workers () =
  Pool.with_pool ~workers:0 (fun pool ->
      Alcotest.(check int) "zero workers" 0 (Pool.size pool);
      let t = Pool.submit pool (fun () -> 5) in
      Alcotest.(check int) "inline execution" 5 (Pool.await t))

let test_pool_submit_after_shutdown () =
  let pool = Pool.create ~workers:1 in
  Pool.shutdown pool;
  Alcotest.check_raises "submit refused"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

(* The daemon's signal handler and its normal exit path may both call
   shutdown; the second (and third) call must be a silent no-op, not a
   second Domain.join (which raises). *)
let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 in
  let t = Pool.submit pool (fun () -> 7) in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Pool.shutdown ~cancel_pending:true pool;
  Alcotest.(check int) "work done before first shutdown" 7 (Pool.await t);
  (* Also from another domain, racing a third call. *)
  let pool2 = Pool.create ~workers:1 in
  let closer = Domain.spawn (fun () -> Pool.shutdown pool2) in
  Pool.shutdown pool2;
  Domain.join closer;
  Alcotest.(check pass) "no raise on double shutdown" () ()

let test_pool_cancellation () =
  (* One worker held inside a task while more work queues up: shutdown
     with cancel_pending completes the queued task with Cancelled even
     though no worker ever picks it up. *)
  let started = Semaphore.Binary.make false in
  let gate = Semaphore.Binary.make false in
  let pool = Pool.create ~workers:1 in
  let blocker =
    Pool.submit pool (fun () ->
        Semaphore.Binary.release started;
        Semaphore.Binary.acquire gate)
  in
  (* Only submit the victim once the single worker is provably inside
     the blocker, so it must stay queued. *)
  Semaphore.Binary.acquire started;
  let queued = Pool.submit pool (fun () -> 1) in
  let closer =
    Domain.spawn (fun () -> Pool.shutdown ~cancel_pending:true pool)
  in
  (* shutdown drains the queue before joining workers, so this await
     wakes with Cancelled while the worker is still blocked. *)
  (match Pool.await queued with
  | _ -> Alcotest.fail "queued task should have been cancelled"
  | exception Pool.Cancelled -> ());
  Semaphore.Binary.release gate;
  Domain.join closer;
  Pool.await blocker;
  Alcotest.(check pass) "cancelled cleanly" () ()

let test_pool_reuse_across_rounds () =
  (* The persistent pool serves many submission rounds; results arrive
     in submission order per round. *)
  Pool.with_pool ~workers:2 (fun pool ->
      for round = 0 to 4 do
        let tasks =
          Array.init 8 (fun i -> Pool.submit pool (fun () -> (round * 8) + i))
        in
        Array.iteri
          (fun i t ->
            Alcotest.(check int) "round result" ((round * 8) + i)
              (Pool.await t))
          tasks
      done)

let prop_pool_map_jobs_invariant =
  QCheck.Test.make ~name:"map results independent of jobs" ~count:50
    QCheck.(pair (int_range 0 40) (int_range 1 6))
    (fun (n, jobs) ->
      let f i = (i * i) + 1 in
      Pool.map ~jobs n f = Array.init n f)

(* ---------- Matrix edge cases: 0x0 and 1x1 systems ---------- *)

(* A ground-only netlist produces a 0-unknown MNA system; the dense
   layer must treat it as trivially nonsingular rather than tripping the
   pivot test or indexing out of bounds. *)
let test_matrix_empty () =
  let m = Rmat.create 0 0 in
  let lu = Rmat.lu_factor m in
  Alcotest.(check int) "empty solve" 0 (Array.length (Rmat.lu_solve lu [||]));
  Alcotest.(check int) "empty matvec" 0 (Array.length (Rmat.mat_vec m [||]));
  Alcotest.(check int) "empty solve direct" 0
    (Array.length (Rmat.solve m [||]));
  let t = Rmat.transpose m in
  Alcotest.(check int) "empty transpose rows" 0 (Rmat.rows t);
  let c = Ape_util.Matrix.Csplit.create 0 in
  Ape_util.Matrix.Csplit.factor_in_place c [||];
  Alcotest.(check int) "empty csplit solve" 0
    (Array.length (Ape_util.Matrix.Csplit.solve c [||] [||]));
  Alcotest.check_raises "negative dim" (Invalid_argument "Matrix.create")
    (fun () -> ignore (Rmat.create (-1) 2));
  Alcotest.check_raises "lu_solve size" (Invalid_argument "Matrix.lu_solve")
    (fun () -> ignore (Rmat.lu_solve lu [| 1. |]))

let test_matrix_one () =
  let m = Rmat.of_arrays [| [| 4. |] |] in
  let x = Rmat.solve m [| 8. |] in
  checkf "1x1 solve" 2. x.(0);
  checkf "1x1 matvec" 4. (Rmat.mat_vec m [| 1. |]).(0);
  let z = Rmat.of_arrays [| [| 0. |] |] in
  Alcotest.check_raises "1x1 singular" Ape_util.Matrix.Singular (fun () ->
      ignore (Rmat.solve z [| 1. |]))

(* ---------- Interval monotonicity properties ---------- *)

let prop_interval_add_sub_sound =
  QCheck.Test.make ~name:"add/sub contain pointwise results" ~count:200
    (QCheck.triple arb_interval arb_interval (QCheck.float_range 0. 1.))
    (fun (a, b, t) ->
      let x = F.lerp (I.lo a) (I.hi a) t in
      let y = F.lerp (I.lo b) (I.hi b) (1. -. t) in
      I.contains (I.add a b) (x +. y) && I.contains (I.sub a b) (x -. y))

let prop_interval_map_monotone =
  QCheck.Test.make
    ~name:"map_monotone image contains pointwise images (inc and dec)"
    ~count:200
    (QCheck.pair arb_interval (QCheck.float_range 0. 1.))
    (fun (a, t) ->
      let x = F.lerp (I.lo a) (I.hi a) t in
      (* exp is increasing, neg is decreasing: both directions must come
         out with sorted bounds containing every pointwise image. *)
      let inc = I.map_monotone Float.exp a in
      let dec = I.map_monotone (fun v -> -.v) a in
      I.lo inc <= I.hi inc
      && I.lo dec <= I.hi dec
      && I.contains inc (Float.exp x)
      && I.contains dec (-.x))

let prop_interval_width_monotone =
  QCheck.Test.make ~name:"add widens: width(a+b) = width a + width b"
    ~count:200
    (QCheck.pair arb_interval arb_interval)
    (fun (a, b) ->
      Float.abs (I.width (I.add a b) -. (I.width a +. I.width b)) <= 1e-9)

(* ---------- Poly root/eval round-trip ---------- *)

let prop_poly_roots_roundtrip =
  (* Distinct well-separated roots: of_real_roots -> real_roots recovers
     them (sorted), and the polynomial vanishes at each recovered root. *)
  QCheck.Test.make ~name:"of_real_roots -> real_roots round-trips"
    ~count:100
    QCheck.(list_of_size (Gen.int_range 1 5) (int_range (-20) 20))
    (fun ints ->
      let roots =
        List.sort_uniq compare ints |> List.map float_of_int
      in
      let p = Poly.of_real_roots roots in
      let found = Poly.real_roots p in
      List.length found = List.length roots
      && List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-4) roots found
      && List.for_all (fun r -> Float.abs (Poly.eval p r) < 1e-6) found)

let prop_poly_eval_roundtrip =
  QCheck.Test.make ~name:"coeffs -> eval agrees with Horner by hand"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-3.) 3.))
    (fun coeffs ->
      let p = Poly.of_coeffs (Array.of_list coeffs) in
      let x = 0.7 in
      let by_hand =
        List.fold_right (fun c acc -> c +. (x *. acc)) coeffs 0.
      in
      Float.abs (Poly.eval p x -. by_hand) <= 1e-9 *. Float.max 1. (Float.abs by_hand))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_util"
    [
      ( "units",
        [
          Alcotest.test_case "eng format" `Quick test_eng_format;
          Alcotest.test_case "eng edge cases" `Quick test_eng_edge_cases;
          Alcotest.test_case "constants" `Quick test_constants;
        ] );
      ( "float_ext",
        [
          Alcotest.test_case "helpers" `Quick test_float_helpers;
          Alcotest.test_case "errors" `Quick test_float_errors;
          Alcotest.test_case "range errors" `Quick test_linspace_errors;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basic;
          Alcotest.test_case "operations" `Quick test_interval_ops;
        ] );
      qsuite "interval-properties"
        [ prop_interval_mul_sound; prop_interval_hull;
          prop_interval_sample_inside; prop_interval_add_sub_sound;
          prop_interval_map_monotone; prop_interval_width_monotone ];
      ( "matrix",
        [
          Alcotest.test_case "solve 2x2" `Quick test_matrix_solve;
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "singular" `Quick test_matrix_singular;
          Alcotest.test_case "complex" `Quick test_matrix_complex;
          Alcotest.test_case "mat mul" `Quick test_mat_mul;
          Alcotest.test_case "empty system" `Quick test_matrix_empty;
          Alcotest.test_case "1x1 system" `Quick test_matrix_one;
        ] );
      qsuite "matrix-properties"
        [ prop_lu_random; prop_transpose_involution; prop_csplit_solve_transposed ];
      ( "poly",
        [
          Alcotest.test_case "eval/derivative" `Quick test_poly_eval;
          Alcotest.test_case "real roots" `Quick test_poly_roots;
          Alcotest.test_case "complex roots" `Quick test_poly_complex_roots;
          Alcotest.test_case "butterworth" `Quick test_butterworth;
        ] );
      qsuite "poly-properties"
        [ prop_poly_mul_eval; prop_poly_of_roots_vanishes;
          prop_poly_roots_roundtrip; prop_poly_eval_roundtrip ];
      ( "rootfind",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "brent" `Quick test_brent;
          Alcotest.test_case "newton" `Quick test_newton;
          Alcotest.test_case "no bracket" `Quick test_no_bracket;
          Alcotest.test_case "expand bracket" `Quick test_expand_bracket;
          Alcotest.test_case "solve increasing" `Quick test_solve_increasing;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          Alcotest.test_case "gauss moments" `Quick test_rng_gauss_moments;
          Alcotest.test_case "split_n keyed by index" `Quick
            test_rng_split_n_keyed;
        ] );
      qsuite "rng-properties"
        [ prop_rng_split_independent; prop_rng_split_n_independent ];
      ( "pool",
        [
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "map raise no deadlock" `Quick
            test_pool_map_exception_no_deadlock;
          Alcotest.test_case "inline with 0 workers" `Quick
            test_pool_inline_when_no_workers;
          Alcotest.test_case "submit after shutdown" `Quick
            test_pool_submit_after_shutdown;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent;
          Alcotest.test_case "cancellation" `Quick test_pool_cancellation;
          Alcotest.test_case "reuse across rounds" `Quick
            test_pool_reuse_across_rounds;
        ] );
      qsuite "pool-properties" [ prop_pool_map_jobs_invariant ];
      ( "strings-table",
        [
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "table" `Quick test_table;
        ] );
    ]
