(* Tests for Ape_process: model cards, built-in processes and the .MODEL
   deck parser. *)

module Card = Ape_process.Model_card
module Proc = Ape_process.Process
module Cp = Ape_process.Card_parser
module F = Ape_util.Float_ext

let check_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.8g vs %.8g" msg expected actual)
    true
    (F.approx_equal ~rtol:tol ~atol:tol expected actual)

(* ---------- model cards ---------- *)

let test_default_cards () =
  let n = Card.default_nmos and p = Card.default_pmos in
  Alcotest.(check bool) "nmos polarity" true (Card.polarity n = 1.);
  Alcotest.(check bool) "pmos polarity" true (Card.polarity p = -1.);
  Alcotest.(check bool) "pmos vto negative" true (p.Card.vto < 0.);
  Alcotest.(check bool) "kp ordering" true (n.Card.kp > p.Card.kp);
  check_close "cox consistency kp = u0*cox" n.Card.kp
    (n.Card.u0 *. Card.cox n) ~tol:1e-6

let test_vth_body_effect () =
  let n = Card.default_nmos in
  let v0 = Card.vth n ~vsb:0. in
  check_close "zero-bias vth" (Float.abs n.Card.vto) v0 ~tol:1e-9;
  (* Monotonically increasing with vsb. *)
  let rec check_monotone prev = function
    | [] -> ()
    | vsb :: rest ->
      let v = Card.vth n ~vsb in
      Alcotest.(check bool)
        (Printf.sprintf "vth monotone at vsb=%g" vsb)
        true (v > prev);
      check_monotone v rest
  in
  check_monotone v0 [ 0.5; 1.0; 2.0; 3.0 ]

let test_lambda_scaling () =
  let n = Card.default_nmos in
  let l1 = Card.lambda_at n n.Card.lref in
  check_close "lambda at lref" n.Card.lambda l1;
  check_close "lambda halves at 2 lref" (n.Card.lambda /. 2.)
    (Card.lambda_at n (2. *. n.Card.lref));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Model_card.lambda_at: l <= 0") (fun () ->
      ignore (Card.lambda_at n 0.))

let test_with_level () =
  let n = Card.with_level Card.Level3 Card.default_nmos in
  Alcotest.(check bool) "level retagged" true (n.Card.level = Card.Level3);
  check_close "parameters preserved" Card.default_nmos.Card.kp n.Card.kp

(* ---------- processes ---------- *)

let test_builtin_processes () =
  let p12 = Proc.c12 and p08 = Proc.c08 in
  Alcotest.(check bool) "c12 lmin" true (p12.Proc.lmin = 1.2e-6);
  Alcotest.(check bool) "c08 shorter" true (p08.Proc.lmin < p12.Proc.lmin);
  Alcotest.(check bool) "c08 stronger kp" true
    (p08.Proc.nmos.Card.kp > p12.Proc.nmos.Card.kp);
  Alcotest.(check bool) "card selector" true
    (Proc.card p12 Card.Nmos == p12.Proc.nmos)

let test_passive_areas () =
  let p = Proc.c12 in
  let a10k = Proc.resistor_area p 10e3 in
  let a20k = Proc.resistor_area p 20e3 in
  check_close "resistor area linear" 2. (a20k /. a10k);
  let c1 = Proc.capacitor_area p 1e-12 in
  check_close "cap density" (1e-12 /. p.Proc.cap_density) c1;
  Alcotest.check_raises "negative resistor"
    (Invalid_argument "Process.resistor_area: negative") (fun () ->
      ignore (Proc.resistor_area p (-1.)))

(* ---------- card parser ---------- *)

let test_parse_card_basic () =
  let card =
    Cp.parse_card
      ".MODEL TESTN NMOS (LEVEL=1 VTO=0.7 KP=80E-6 GAMMA=0.45 LAMBDA=0.04 \
       TOX=20N)"
  in
  Alcotest.(check string) "name" "TESTN" card.Card.name;
  Alcotest.(check bool) "type" true (card.Card.mos_type = Card.Nmos);
  check_close "vto" 0.7 card.Card.vto;
  check_close "kp" 80e-6 card.Card.kp;
  check_close "gamma" 0.45 card.Card.gamma;
  check_close "tox" 20e-9 card.Card.tox;
  (* KP given: u0 rederived against the card's cox. *)
  check_close "u0 consistent" card.Card.kp (card.Card.u0 *. Card.cox card)
    ~tol:1e-6

let test_parse_card_spaces_and_continuation () =
  let card =
    Cp.parse_card
      ".MODEL P1 PMOS (LEVEL = 2 VTO = -0.8\n+ KP= 25U THETA =0.1)"
  in
  Alcotest.(check bool) "pmos" true (card.Card.mos_type = Card.Pmos);
  Alcotest.(check bool) "level 2" true (card.Card.level = Card.Level2);
  check_close "vto" (-0.8) card.Card.vto;
  check_close "kp suffix" 25e-6 card.Card.kp;
  check_close "theta" 0.1 card.Card.theta

let test_inline_comments_and_orphans () =
  (* '$'/';' open a comment only at a token boundary. *)
  let card =
    Cp.parse_card ".MODEL N1 NMOS (VTO=0.7 $ trailing note\n+ KP=80U) ; tail"
  in
  check_close "vto" 0.7 card.Card.vto;
  check_close "kp" 80e-6 card.Card.kp;
  Alcotest.(check string)
    "'$' glued to a token is kept" "A$B 1"
    (Cp.join_lines "A$B 1");
  (* a '+' line with nothing to continue is a hard error, not a card *)
  match Cp.join_lines "+ KP=1" with
  | exception Cp.Bad_card _ -> ()
  | _ -> Alcotest.fail "expected Bad_card for orphan '+'"

let test_parse_card_errors () =
  let expect_bad s =
    match Cp.parse_card s with
    | exception Cp.Bad_card _ -> ()
    | _ -> Alcotest.fail ("expected Bad_card for " ^ s)
  in
  expect_bad "VTO=1";
  expect_bad ".MODEL X NPN (VTO=1)";
  expect_bad ".MODEL X NMOS (LEVEL=9)";
  expect_bad ".MODEL X NMOS (VTO=abc)"

let test_roundtrip () =
  let original = Card.default_nmos in
  let reparsed = Cp.parse_card (Card.to_spice original) in
  check_close "vto roundtrip" original.Card.vto reparsed.Card.vto;
  check_close "kp roundtrip" original.Card.kp reparsed.Card.kp ~tol:1e-6;
  check_close "lambda roundtrip" original.Card.lambda reparsed.Card.lambda;
  check_close "cgso roundtrip" original.Card.cgso reparsed.Card.cgso;
  check_close "lref roundtrip" original.Card.lref reparsed.Card.lref

let test_parse_deck () =
  let deck =
    "* a small deck\n\
     .MODEL MYN NMOS (VTO=0.72 KP=70U)\n\
     * comment line\n\
     .MODEL MYP PMOS (VTO=-0.82 KP=24U)\n"
  in
  let cards = Cp.parse_deck deck in
  Alcotest.(check int) "two cards" 2 (List.length cards);
  let process = Cp.process_of_deck ~name:"mine" deck in
  Alcotest.(check string) "process name" "mine" process.Proc.name;
  check_close "nmos vto" 0.72 process.Proc.nmos.Card.vto;
  check_close "pmos vto" (-0.82) process.Proc.pmos.Card.vto

let test_deck_missing_polarity () =
  match Cp.process_of_deck ".MODEL ONLYN NMOS (VTO=0.7)" with
  | exception Cp.Bad_card _ -> ()
  | _ -> Alcotest.fail "expected Bad_card for missing PMOS"

let test_corners () =
  let p = Proc.c12 in
  let slow = Proc.corner Proc.Slow p and fast = Proc.corner Proc.Fast p in
  Alcotest.(check bool) "slow weaker" true
    (slow.Proc.nmos.Card.kp < p.Proc.nmos.Card.kp);
  Alcotest.(check bool) "fast stronger" true
    (fast.Proc.nmos.Card.kp > p.Proc.nmos.Card.kp);
  Alcotest.(check bool) "slow raises |vto| nmos" true
    (slow.Proc.nmos.Card.vto > p.Proc.nmos.Card.vto);
  (* PMOS vto is negative: slow pushes it more negative. *)
  Alcotest.(check bool) "slow raises |vto| pmos" true
    (slow.Proc.pmos.Card.vto < p.Proc.pmos.Card.vto);
  Alcotest.(check bool) "typical is identity" true
    (Proc.corner Proc.Typical p == p);
  check_close "kp/u0 stay consistent" slow.Proc.nmos.Card.kp
    (slow.Proc.nmos.Card.u0 *. Card.cox slow.Proc.nmos) ~tol:1e-6

let prop_vth_nonnegative_shift =
  QCheck.Test.make ~name:"body effect never reduces vth" ~count:200
    (QCheck.float_range 0. 4.) (fun vsb ->
      Card.vth Card.default_nmos ~vsb
      >= Card.vth Card.default_nmos ~vsb:0. -. 1e-12)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_process"
    [
      ( "model-cards",
        [
          Alcotest.test_case "defaults" `Quick test_default_cards;
          Alcotest.test_case "body effect" `Quick test_vth_body_effect;
          Alcotest.test_case "lambda scaling" `Quick test_lambda_scaling;
          Alcotest.test_case "with_level" `Quick test_with_level;
        ] );
      ( "processes",
        [
          Alcotest.test_case "builtins" `Quick test_builtin_processes;
          Alcotest.test_case "passive areas" `Quick test_passive_areas;
          Alcotest.test_case "corners" `Quick test_corners;
        ] );
      ( "card-parser",
        [
          Alcotest.test_case "basic card" `Quick test_parse_card_basic;
          Alcotest.test_case "spaces/continuations" `Quick
            test_parse_card_spaces_and_continuation;
          Alcotest.test_case "inline comments/orphan '+'" `Quick
            test_inline_comments_and_orphans;
          Alcotest.test_case "errors" `Quick test_parse_card_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "deck" `Quick test_parse_deck;
          Alcotest.test_case "missing polarity" `Quick
            test_deck_missing_polarity;
        ] );
      qsuite "properties" [ prop_vth_nonnegative_shift ];
    ]
