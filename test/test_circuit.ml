(* Tests for Ape_circuit: netlist construction/validation, hierarchical
   instantiation, the builder and the SPICE netlist parser. *)

module N = Ape_circuit.Netlist
module B = Ape_circuit.Builder
module Sp = Ape_circuit.Spice_parser
module Proc = Ape_process.Process

let proc = Proc.c12

let divider () =
  let b = B.create ~title:"divider" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.resistor b ~a:"vdd" ~b:"mid" 1e3;
  B.resistor b ~a:"mid" ~b:"0" 1e3;
  B.finish b

(* ---------- construction & validation ---------- *)

let test_builder_names () =
  let nl = divider () in
  Alcotest.(check (list string))
    "element names"
    [ "V1"; "R1"; "R2" ]
    (List.map N.element_name (N.elements nl));
  Alcotest.(check (list string)) "nodes" [ "mid"; "vdd" ] (N.nodes nl)

let test_ground_aliases () =
  Alcotest.(check bool) "0" true (N.is_ground "0");
  Alcotest.(check bool) "gnd" true (N.is_ground "gnd");
  Alcotest.(check bool) "GND" true (N.is_ground "GND");
  Alcotest.(check bool) "vdd" false (N.is_ground "vdd")

let expect_invalid nl =
  match N.validate nl with
  | exception N.Invalid_netlist _ -> ()
  | () -> Alcotest.fail "expected Invalid_netlist"

let test_validate_duplicate () =
  expect_invalid
    (N.make ~title:"dup"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 1. };
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 2. };
       ])

let test_validate_no_ground () =
  expect_invalid
    (N.make ~title:"floating"
       [
         N.Resistor { name = "R1"; a = "a"; b = "b"; r = 1. };
         N.Resistor { name = "R2"; a = "b"; b = "a"; r = 1. };
       ])

let test_validate_dangling () =
  expect_invalid
    (N.make ~title:"dangling"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 1. };
         N.Resistor { name = "R2"; a = "a"; b = "loose"; r = 1. };
       ])

let test_validate_bad_values () =
  expect_invalid
    (N.make ~title:"bad r"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = -5. };
         N.Resistor { name = "R2"; a = "a"; b = "0"; r = 5. };
       ])

let test_gate_area_and_counts () =
  let b = B.create ~title:"mos" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:20e-6 ~l:1e-6;
  let nl = B.finish b in
  Alcotest.(check int) "mosfets" 2 (N.mosfet_count nl);
  Alcotest.(check int) "devices" 3 (N.device_count nl);
  Alcotest.(check (float 1e-18)) "gate area" 40e-12 (N.gate_area nl)

(* ---------- instantiate / rename ---------- *)

let test_instantiate () =
  let child = divider () in
  let spliced =
    N.instantiate ~prefix:"u1" ~port_map:[ ("vdd", "supply") ] child
  in
  let names = List.map N.element_name spliced in
  Alcotest.(check (list string))
    "prefixed names"
    [ "u1.V1"; "u1.R1"; "u1.R2" ]
    names;
  let all_nodes = List.concat_map N.element_nodes spliced in
  Alcotest.(check bool) "mapped port" true (List.mem "supply" all_nodes);
  Alcotest.(check bool) "internal prefixed" true (List.mem "u1.mid" all_nodes);
  Alcotest.(check bool) "ground untouched" true (List.mem "0" all_nodes);
  Alcotest.(check bool) "old name gone" false (List.mem "vdd" all_nodes)

let test_rename_node () =
  let nl = N.rename_node ~from:"mid" ~to_:"center" (divider ()) in
  Alcotest.(check bool) "renamed" true (List.mem "center" (N.nodes nl));
  Alcotest.(check bool) "old gone" false (List.mem "mid" (N.nodes nl))

let test_merge_append () =
  let a = divider () in
  let extra = [ N.Capacitor { name = "C9"; a = "mid"; b = "0"; c = 1e-12 } ] in
  let nl = N.append a extra in
  Alcotest.(check int) "appended" 4 (N.device_count nl)

let test_retarget_process () =
  let b = B.create ~title:"mos" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  B.pmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~vdd_node:"vdd" ~w:10e-6 ~l:2e-6;
  let nl = B.finish b in
  let p08 = Ape_process.Process.c08 in
  let retargeted = N.retarget_process p08 nl in
  List.iter
    (fun e ->
      match e with
      | N.Mosfet { card; geom; _ } ->
        (match card.Ape_process.Model_card.mos_type with
        | Ape_process.Model_card.Nmos ->
          Alcotest.(check string) "nmos card swapped" "CMOSN08"
            card.Ape_process.Model_card.name
        | Ape_process.Model_card.Pmos ->
          Alcotest.(check string) "pmos card swapped" "CMOSP08"
            card.Ape_process.Model_card.name);
        Alcotest.(check (float 1e-12)) "geometry untouched" 10e-6
          geom.Ape_device.Mos.w
      | _ -> ())
    (N.elements retargeted)

(* ---------- SPICE output / parser ---------- *)

let test_to_spice_contains_model () =
  let b = B.create ~title:"tb" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  let s = N.to_spice (B.finish b) in
  Alcotest.(check bool) "has .MODEL" true
    (Ape_util.Strings.starts_with_ci ~prefix:"* tb" s);
  Alcotest.(check bool) "model card present" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (Ape_util.Strings.starts_with_ci ~prefix:".model"))

let sample_netlist =
  "* common source amplifier\n\
   .MODEL MYN NMOS (VTO=0.7 KP=80U LAMBDA=0.04)\n\
   VDD vdd 0 DC 5\n\
   VIN in 0 DC 1.1 AC 1\n\
   RL vdd out 50k\n\
   M1 out in 0 0 MYN W=20u L=2.4u\n\
   CL out 0 1p\n\
   .END\n"

let test_parse_netlist () =
  let nl = Sp.parse ~title:"cs" sample_netlist in
  Alcotest.(check int) "element count" 5 (N.device_count nl);
  Alcotest.(check int) "one mosfet" 1 (N.mosfet_count nl);
  let m =
    List.find
      (fun e -> match e with N.Mosfet _ -> true | _ -> false)
      (N.elements nl)
  in
  (match m with
  | N.Mosfet { card; geom; _ } ->
    Alcotest.(check string) "model resolved" "MYN" card.Ape_process.Model_card.name;
    Alcotest.(check (float 1e-12)) "width" 20e-6 geom.Ape_device.Mos.w
  | _ -> Alcotest.fail "expected mosfet")

let test_parse_builtin_models () =
  let nl =
    Sp.parse ~title:"builtin"
      "VDD vdd 0 5\nM1 vdd vdd 0 0 NMOS W=10u L=2u\n"
  in
  Alcotest.(check int) "parsed" 2 (N.device_count nl)

let test_parse_sources () =
  let nl =
    Sp.parse ~title:"src"
      "V1 a 0 DC 2.5 AC 1\nI1 a 0 DC 10u\nR1 a 0 1k\n"
  in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { dc; ac; _ } ->
        Alcotest.(check (float 1e-9)) "v dc" 2.5 dc;
        Alcotest.(check (float 1e-9)) "v ac" 1. ac
      | N.Isource { dc; _ } -> Alcotest.(check (float 1e-12)) "i dc" 10e-6 dc
      | _ -> ())
    (N.elements nl)

let test_parse_switch_and_vcvs () =
  let nl =
    Sp.parse ~title:"misc"
      "V1 a 0 5\n\
       W1 a b ctrl RON=500 ROFF=1G VT=2.0\n\
       E1 b 0 a 0 10\n\
       V2 ctrl 0 5\n\
       R1 b 0 1k\n"
  in
  Alcotest.(check int) "count" 5 (N.device_count nl);
  List.iter
    (fun e ->
      match e with
      | N.Switch { ron; vthreshold; _ } ->
        Alcotest.(check (float 1e-9)) "ron" 500. ron;
        Alcotest.(check (float 1e-9)) "vt" 2.0 vthreshold
      | N.Vcvs { gain; _ } -> Alcotest.(check (float 1e-9)) "gain" 10. gain
      | _ -> ())
    (N.elements nl)

let test_parse_errors () =
  let expect_bad s =
    match Sp.parse ~title:"bad" s with
    | exception Sp.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected Parse_error for: " ^ s)
  in
  expect_bad "M1 d g s b NOSUCHMODEL W=1u L=1u\nV1 d 0 5\n";
  expect_bad "R1 a 0\nV1 a 0 5\n";
  expect_bad "M1 d g s 0 NMOS L=1u\nV1 d 0 5\nR1 g 0 1k\nR2 s 0 1k\n";
  expect_bad "Q1 a b c\nV1 a 0 5\n"

let test_parse_roundtrip () =
  (* to_spice output must be parseable and structurally identical. *)
  let b = B.create ~title:"rt" in
  B.vsource b ~p:"vdd" ~n:"0" ~ac:1. 5.;
  B.nmos b proc ~d:"out" ~g:"vdd" ~s:"0" ~w:12e-6 ~l:3.6e-6;
  B.resistor b ~a:"vdd" ~b:"out" 10e3;
  B.capacitor b ~a:"out" ~b:"0" 2e-12;
  let nl = B.finish b in
  let reparsed = Sp.parse ~title:"rt" (N.to_spice nl) in
  Alcotest.(check int) "same element count" (N.device_count nl)
    (N.device_count reparsed);
  Alcotest.(check int) "same mosfets" (N.mosfet_count nl)
    (N.mosfet_count reparsed);
  Alcotest.(check (float 1e-18)) "same gate area" (N.gate_area nl)
    (N.gate_area reparsed)

let golden_decks () =
  let dir = Filename.concat "golden" "decks" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let test_golden_deck_roundtrip () =
  (* For every checked-in deck: parse -> print -> re-parse -> re-print
     must reach a byte-identical fixpoint (exact float printing), and
     the two parses must agree structurally. *)
  let decks = golden_decks () in
  Alcotest.(check bool) "golden decks present" true (List.length decks >= 4);
  List.iter
    (fun file ->
      let text = In_channel.with_open_text file In_channel.input_all in
      let nl1 = Sp.parse ~title:file text in
      let printed1 = N.to_spice nl1 in
      let nl2 = Sp.parse ~title:file printed1 in
      let printed2 = N.to_spice nl2 in
      Alcotest.(check string) (file ^ ": print/parse fixpoint") printed1
        printed2;
      Alcotest.(check bool)
        (file ^ ": identical elements")
        true
        (N.elements nl1 = N.elements nl2))
    decks

(* ---------- ingestion front end ---------- *)

module Tk = Ape_circuit.Token

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let find_element nl name =
  List.find_opt (fun e -> N.element_name e = name) (N.elements nl)

let resistance nl name =
  match find_element nl name with
  | Some (N.Resistor { r; _ }) -> r
  | _ -> Alcotest.fail ("no resistor " ^ name)

let test_inline_comment_dialects () =
  let deck = "V1 a 0 5 $ supply\nR1 a 0 1k ; load\n.END\n" in
  let nl = Sp.parse ~title:"ng" deck in
  Alcotest.(check int) "ngspice strips $ and ;" 2 (N.device_count nl);
  (* hspice: '$' comments, ';' does not *)
  let r = Sp.parse_result ~dialect:Sp.Hspice ~title:"hs" deck in
  Alcotest.(check bool) "hspice rejects ';' tail" true (Sp.errors r <> []);
  (* spice2: neither *)
  let r = Sp.parse_result ~dialect:Sp.Spice2 ~title:"s2" deck in
  Alcotest.(check bool) "spice2 rejects '$' tail" true (Sp.errors r <> [])

let test_orphan_continuation () =
  let r = Sp.parse_result ~title:"o" "+ R1 a b 1k\nV1 a 0 5\nR1 a 0 1k\n" in
  match Sp.errors r with
  | [ d ] ->
    Alcotest.(check bool) "message" true (contains d.Sp.msg "continuation");
    Alcotest.(check int) "line" 1 d.Sp.span.Tk.first.Tk.line
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 error, got %d" (List.length ds))

let test_source_value_clauses () =
  (* A bare value after an explicit DC/AC clause is an error: it used
     to silently overwrite the DC value. *)
  (match Sp.parse ~title:"bad" "V1 1 0 DC 0 5\nR1 1 0 1k\n" with
  | exception Sp.Parse_error d ->
    Alcotest.(check bool) "points at 5" true (contains d.Sp.msg "trailing")
  | _ -> Alcotest.fail "expected Parse_error for 'DC 0 5'");
  (* ...but a leading bare value with a later AC clause is fine. *)
  let nl = Sp.parse ~title:"ok" "V1 1 0 5 AC 1\nR1 1 0 1k\n" in
  (match find_element nl "V1" with
  | Some (N.Vsource { dc; ac; _ }) ->
    Alcotest.(check (float 0.)) "dc" 5. dc;
    Alcotest.(check (float 0.)) "ac" 1. ac
  | _ -> Alcotest.fail "no V1");
  (* clause order doesn't matter *)
  let nl = Sp.parse ~title:"ok2" "V1 1 0 AC 1 DC 2\nR1 1 0 1k\n" in
  match find_element nl "V1" with
  | Some (N.Vsource { dc; ac; _ }) ->
    Alcotest.(check (float 0.)) "dc" 2. dc;
    Alcotest.(check (float 0.)) "ac" 1. ac
  | _ -> Alcotest.fail "no V1"

let test_equals_whitespace_and_multiplier () =
  let nl =
    Sp.parse ~title:"eq"
      "V1 d 0 5\nR1 g 0 1k\nM1 d g 0 0 NMOS W = 4e-6 L =2e-6 M= 2\n"
  in
  match find_element nl "M1" with
  | Some (N.Mosfet { geom; m; _ }) ->
    Alcotest.(check (float 0.)) "w" 4e-6 geom.Ape_device.Mos.w;
    Alcotest.(check (float 0.)) "l" 2e-6 geom.Ape_device.Mos.l;
    Alcotest.(check (float 0.)) "m" 2. m;
    (* the multiplier scales the effective gate area... *)
    Alcotest.(check (float 1e-24)) "gate area" (2. *. 4e-6 *. 2e-6)
      (N.gate_area nl);
    (* ...and survives printing and re-parsing *)
    let nl2 = Sp.parse ~title:"eq" (N.to_spice nl) in
    (match find_element nl2 "M1" with
    | Some (N.Mosfet { m; _ }) -> Alcotest.(check (float 0.)) "m reparsed" 2. m
    | _ -> Alcotest.fail "no M1 after roundtrip")
  | _ -> Alcotest.fail "no M1"

let test_subckt_flatten () =
  let nl =
    Sp.parse ~title:"sub"
      ".SUBCKT div a b\n\
       R1 a mid 1k\n\
       R2 mid b 1k\n\
       .ENDS\n\
       V1 in 0 5\n\
       X1 in 0 div\n"
  in
  Alcotest.(check (list string))
    "flattened names (device letter first)"
    [ "V1"; "R.X1.R1"; "R.X1.R2" ]
    (List.map N.element_name (N.elements nl));
  (match find_element nl "R.X1.R1" with
  | Some (N.Resistor { a; b; _ }) ->
    Alcotest.(check string) "port mapped" "in" a;
    Alcotest.(check string) "internal node renamed" "X1.mid" b
  | _ -> Alcotest.fail "no R.X1.R1");
  match find_element nl "R.X1.R2" with
  | Some (N.Resistor { a; b; _ }) ->
    Alcotest.(check string) "internal node" "X1.mid" a;
    Alcotest.(check string) "ground stays ground" "0" b
  | _ -> Alcotest.fail "no R.X1.R2"

let test_subckt_params () =
  let nl =
    Sp.parse ~title:"p"
      ".PARAM base=1k\n\
       .SUBCKT dv a rtop={2*base} rbot=500\n\
       R1 a m {rtop}\n\
       R2 m 0 {rbot}\n\
       .ENDS\n\
       V1 t 0 5\n\
       X1 t dv rtop=3k\n\
       X2 t dv\n"
  in
  Alcotest.(check (float 0.)) "override" 3e3 (resistance nl "R.X1.R1");
  Alcotest.(check (float 0.)) "default kept" 500. (resistance nl "R.X1.R2");
  Alcotest.(check (float 0.)) "default expr" (2. *. 1e3)
    (resistance nl "R.X2.R1")

let test_nested_subckt () =
  let nl =
    Sp.parse ~title:"n"
      ".SUBCKT inner a\n\
       R1 a 0 1k\n\
       .ENDS\n\
       .SUBCKT outer b\n\
       X1 b inner\n\
       R2 b 0 2k\n\
       .ENDS\n\
       V1 t 0 5\n\
       X9 t outer\n"
  in
  Alcotest.(check (list string))
    "two-level flattening"
    [ "V1"; "R.X9.X1.R1"; "R.X9.R2" ]
    (List.map N.element_name (N.elements nl))

let test_hier_golden_differential () =
  (* The hand-flattened deck and the hierarchical one must parse to
     structurally identical netlists (same elements, same order, same
     bit-exact values). *)
  let dir = List.fold_left Filename.concat "golden" [ "decks"; "hier" ] in
  let parse f =
    let path = Filename.concat dir f in
    Sp.parse ~path ~title:""
      (In_channel.with_open_text path In_channel.input_all)
  in
  let hier = parse "two_stage.sp" and flat = parse "two_stage_flat.sp" in
  Alcotest.(check bool) "identical elements" true
    (N.elements hier = N.elements flat);
  Alcotest.(check (list string)) "identical nodes" (N.nodes flat)
    (N.nodes hier)

let test_include_cycle () =
  let a = Filename.temp_file "ape_inc_a" ".sp" in
  let b = Filename.temp_file "ape_inc_b" ".sp" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove a;
      Sys.remove b)
    (fun () ->
      Out_channel.with_open_text a (fun oc ->
          Printf.fprintf oc ".include %s\nV1 x 0 5\nR1 x 0 1k\n" b);
      Out_channel.with_open_text b (fun oc ->
          Printf.fprintf oc ".include %s\n" a);
      let r =
        Sp.parse_result ~path:a ~title:""
          (In_channel.with_open_text a In_channel.input_all)
      in
      Alcotest.(check bool) "cycle reported" true
        (List.exists (fun d -> contains d.Sp.msg "circular") (Sp.errors r));
      (* recovery: the rest of the deck still parsed *)
      Alcotest.(check int) "elements kept" 2
        (N.device_count r.Sp.netlist))

let test_missing_include () =
  let r =
    Sp.parse_result ~title:"" ".include /nonexistent/deck.sp\nV1 a 0 5\nR1 a 0 1k\n"
  in
  Alcotest.(check bool) "reported" true
    (List.exists (fun d -> contains d.Sp.msg "cannot read") (Sp.errors r))

let test_analyses_and_title () =
  let r =
    Sp.parse_result ~title:"x"
      ".TITLE hello\nV1 a 0 5\nR1 a 0 1k\n.OP\n.AC DEC 10 1 1meg\n.END\n"
  in
  Alcotest.(check int) "clean" 0 (List.length r.Sp.diagnostics);
  Alcotest.(check (list string)) "analyses recorded" [ "op"; "ac" ]
    (List.map (fun d -> d.Sp.d_name) r.Sp.analyses);
  Alcotest.(check (list string)) "ac args verbatim" [ "DEC"; "10"; "1"; "1meg" ]
    (List.nth r.Sp.analyses 1).Sp.d_args;
  Alcotest.(check string) ".TITLE wins" "hello" r.Sp.netlist.N.title;
  (* canonical output is a fixpoint of convert *)
  let c1 = Sp.to_canonical r in
  let c2 = Sp.to_canonical (Sp.parse_result ~title:"" c1) in
  Alcotest.(check string) "canonical fixpoint" c1 c2

let test_warnings_not_errors () =
  let r =
    Sp.parse_result ~title:"w"
      "V1 a 0 5\nR1 a 0 1k\nM1 a a 0 0 NMOS W=1u L=1u AD=2p\n.OPTIONS \
       reltol=1e-4\n.END\n"
  in
  Alcotest.(check int) "no errors" 0 (List.length (Sp.errors r));
  Alcotest.(check int) "warnings recorded" 2 (List.length (Sp.warnings r))

let test_diag_spans () =
  (* Spans survive continuation joining: the bad token sits on the
     '+' line and the diagnostic must point there. *)
  let r = Sp.parse_result ~title:"s" "V1 a 0 5\nR1 a 0\n+ oops\n" in
  match Sp.errors r with
  | [ d ] ->
    Alcotest.(check int) "line" 3 d.Sp.span.Tk.first.Tk.line;
    Alcotest.(check int) "col" 3 d.Sp.span.Tk.first.Tk.col;
    Alcotest.(check (option string)) "source quoted" (Some "+ oops") d.Sp.source
  | ds -> Alcotest.fail (Printf.sprintf "expected 1 error, got %d" (List.length ds))

let test_bad_corpus () =
  (* Every malformed deck must fail with exactly the frozen
     diagnostics: file, span, caret position and message. *)
  let dir = List.fold_left Filename.concat "golden" [ "decks"; "bad" ] in
  let decks =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sp")
    |> List.sort compare
  in
  Alcotest.(check bool) "corpus present" true (List.length decks >= 8);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let r =
        Sp.parse_result ~path ~title:""
          (In_channel.with_open_text path In_channel.input_all)
      in
      Alcotest.(check bool) (f ^ ": has errors") true (Sp.errors r <> []);
      let rendered = String.concat "" (List.map Sp.render r.Sp.diagnostics) in
      let expect =
        In_channel.with_open_text
          (Filename.concat dir (Filename.chop_suffix f ".sp" ^ ".expect"))
          In_channel.input_all
      in
      Alcotest.(check string) (f ^ ": exact diagnostics") expect rendered)
    decks

let prop_print_parse_print_fixpoint =
  QCheck.Test.make ~name:"print→parse→print fixpoint" ~count:100
    QCheck.(
      triple (float_range 0.5 9.5e8) (float_range 1e-15 1e-6) (int_range 1 6))
    (fun (r, c, n) ->
      let b = B.create ~title:"qc" in
      B.vsource b ~p:"n0" ~n:"0" ~ac:1. 5.;
      for i = 1 to n do
        B.resistor b
          ~a:(Printf.sprintf "n%d" (i - 1))
          ~b:(Printf.sprintf "n%d" i)
          (r *. float_of_int i);
        B.capacitor b ~a:(Printf.sprintf "n%d" i) ~b:"0" c
      done;
      let nl = B.finish b in
      let p1 = N.to_spice nl in
      let p2 = N.to_spice (Sp.parse ~title:"qc" p1) in
      p1 = p2)

let prop_instantiate_preserves_count =
  QCheck.Test.make ~name:"instantiate preserves element count" ~count:50
    QCheck.(string_gen_of_size (Gen.return 3) Gen.printable)
    (fun prefix ->
      QCheck.assume
        (String.length prefix > 0
        && String.for_all
             (fun c ->
               (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
             prefix);
      let child = divider () in
      List.length (N.instantiate ~prefix ~port_map:[] child)
      = N.device_count child)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "builder names" `Quick test_builder_names;
          Alcotest.test_case "ground aliases" `Quick test_ground_aliases;
          Alcotest.test_case "counts/area" `Quick test_gate_area_and_counts;
          Alcotest.test_case "merge/append" `Quick test_merge_append;
        ] );
      ( "validation",
        [
          Alcotest.test_case "duplicate names" `Quick test_validate_duplicate;
          Alcotest.test_case "no ground" `Quick test_validate_no_ground;
          Alcotest.test_case "dangling node" `Quick test_validate_dangling;
          Alcotest.test_case "bad values" `Quick test_validate_bad_values;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "rename" `Quick test_rename_node;
          Alcotest.test_case "retarget process" `Quick test_retarget_process;
        ] );
      qsuite "hierarchy-properties" [ prop_instantiate_preserves_count ];
      ( "spice-io",
        [
          Alcotest.test_case "to_spice" `Quick test_to_spice_contains_model;
          Alcotest.test_case "parse netlist" `Quick test_parse_netlist;
          Alcotest.test_case "builtin models" `Quick test_parse_builtin_models;
          Alcotest.test_case "sources" `Quick test_parse_sources;
          Alcotest.test_case "switch/vcvs" `Quick test_parse_switch_and_vcvs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "golden deck roundtrips" `Quick
            test_golden_deck_roundtrip;
        ] );
      ( "ingestion",
        [
          Alcotest.test_case "inline comment dialects" `Quick
            test_inline_comment_dialects;
          Alcotest.test_case "orphan continuation" `Quick
            test_orphan_continuation;
          Alcotest.test_case "source value clauses" `Quick
            test_source_value_clauses;
          Alcotest.test_case "spaced '=' and M=" `Quick
            test_equals_whitespace_and_multiplier;
          Alcotest.test_case "subckt flattening" `Quick test_subckt_flatten;
          Alcotest.test_case "subckt parameters" `Quick test_subckt_params;
          Alcotest.test_case "nested subckt" `Quick test_nested_subckt;
          Alcotest.test_case "hier/flat differential" `Quick
            test_hier_golden_differential;
          Alcotest.test_case "include cycle" `Quick test_include_cycle;
          Alcotest.test_case "missing include" `Quick test_missing_include;
          Alcotest.test_case "analyses/title" `Quick test_analyses_and_title;
          Alcotest.test_case "warnings stay warnings" `Quick
            test_warnings_not_errors;
          Alcotest.test_case "diagnostic spans" `Quick test_diag_spans;
          Alcotest.test_case "malformed corpus" `Quick test_bad_corpus;
        ] );
      qsuite "ingestion-properties" [ prop_print_parse_print_fixpoint ];
    ]
