(* Tests for Ape_circuit: netlist construction/validation, hierarchical
   instantiation, the builder and the SPICE netlist parser. *)

module N = Ape_circuit.Netlist
module B = Ape_circuit.Builder
module Sp = Ape_circuit.Spice_parser
module Proc = Ape_process.Process

let proc = Proc.c12

let divider () =
  let b = B.create ~title:"divider" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.resistor b ~a:"vdd" ~b:"mid" 1e3;
  B.resistor b ~a:"mid" ~b:"0" 1e3;
  B.finish b

(* ---------- construction & validation ---------- *)

let test_builder_names () =
  let nl = divider () in
  Alcotest.(check (list string))
    "element names"
    [ "V1"; "R1"; "R2" ]
    (List.map N.element_name (N.elements nl));
  Alcotest.(check (list string)) "nodes" [ "mid"; "vdd" ] (N.nodes nl)

let test_ground_aliases () =
  Alcotest.(check bool) "0" true (N.is_ground "0");
  Alcotest.(check bool) "gnd" true (N.is_ground "gnd");
  Alcotest.(check bool) "GND" true (N.is_ground "GND");
  Alcotest.(check bool) "vdd" false (N.is_ground "vdd")

let expect_invalid nl =
  match N.validate nl with
  | exception N.Invalid_netlist _ -> ()
  | () -> Alcotest.fail "expected Invalid_netlist"

let test_validate_duplicate () =
  expect_invalid
    (N.make ~title:"dup"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 1. };
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 2. };
       ])

let test_validate_no_ground () =
  expect_invalid
    (N.make ~title:"floating"
       [
         N.Resistor { name = "R1"; a = "a"; b = "b"; r = 1. };
         N.Resistor { name = "R2"; a = "b"; b = "a"; r = 1. };
       ])

let test_validate_dangling () =
  expect_invalid
    (N.make ~title:"dangling"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = 1. };
         N.Resistor { name = "R2"; a = "a"; b = "loose"; r = 1. };
       ])

let test_validate_bad_values () =
  expect_invalid
    (N.make ~title:"bad r"
       [
         N.Resistor { name = "R1"; a = "a"; b = "0"; r = -5. };
         N.Resistor { name = "R2"; a = "a"; b = "0"; r = 5. };
       ])

let test_gate_area_and_counts () =
  let b = B.create ~title:"mos" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:20e-6 ~l:1e-6;
  let nl = B.finish b in
  Alcotest.(check int) "mosfets" 2 (N.mosfet_count nl);
  Alcotest.(check int) "devices" 3 (N.device_count nl);
  Alcotest.(check (float 1e-18)) "gate area" 40e-12 (N.gate_area nl)

(* ---------- instantiate / rename ---------- *)

let test_instantiate () =
  let child = divider () in
  let spliced =
    N.instantiate ~prefix:"u1" ~port_map:[ ("vdd", "supply") ] child
  in
  let names = List.map N.element_name spliced in
  Alcotest.(check (list string))
    "prefixed names"
    [ "u1.V1"; "u1.R1"; "u1.R2" ]
    names;
  let all_nodes = List.concat_map N.element_nodes spliced in
  Alcotest.(check bool) "mapped port" true (List.mem "supply" all_nodes);
  Alcotest.(check bool) "internal prefixed" true (List.mem "u1.mid" all_nodes);
  Alcotest.(check bool) "ground untouched" true (List.mem "0" all_nodes);
  Alcotest.(check bool) "old name gone" false (List.mem "vdd" all_nodes)

let test_rename_node () =
  let nl = N.rename_node ~from:"mid" ~to_:"center" (divider ()) in
  Alcotest.(check bool) "renamed" true (List.mem "center" (N.nodes nl));
  Alcotest.(check bool) "old gone" false (List.mem "mid" (N.nodes nl))

let test_merge_append () =
  let a = divider () in
  let extra = [ N.Capacitor { name = "C9"; a = "mid"; b = "0"; c = 1e-12 } ] in
  let nl = N.append a extra in
  Alcotest.(check int) "appended" 4 (N.device_count nl)

let test_retarget_process () =
  let b = B.create ~title:"mos" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  B.pmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~vdd_node:"vdd" ~w:10e-6 ~l:2e-6;
  let nl = B.finish b in
  let p08 = Ape_process.Process.c08 in
  let retargeted = N.retarget_process p08 nl in
  List.iter
    (fun e ->
      match e with
      | N.Mosfet { card; geom; _ } ->
        (match card.Ape_process.Model_card.mos_type with
        | Ape_process.Model_card.Nmos ->
          Alcotest.(check string) "nmos card swapped" "CMOSN08"
            card.Ape_process.Model_card.name
        | Ape_process.Model_card.Pmos ->
          Alcotest.(check string) "pmos card swapped" "CMOSP08"
            card.Ape_process.Model_card.name);
        Alcotest.(check (float 1e-12)) "geometry untouched" 10e-6
          geom.Ape_device.Mos.w
      | _ -> ())
    (N.elements retargeted)

(* ---------- SPICE output / parser ---------- *)

let test_to_spice_contains_model () =
  let b = B.create ~title:"tb" in
  B.vsource b ~p:"vdd" ~n:"0" 5.;
  B.nmos b proc ~d:"vdd" ~g:"vdd" ~s:"0" ~w:10e-6 ~l:2e-6;
  let s = N.to_spice (B.finish b) in
  Alcotest.(check bool) "has .MODEL" true
    (Ape_util.Strings.starts_with_ci ~prefix:"* tb" s);
  Alcotest.(check bool) "model card present" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (Ape_util.Strings.starts_with_ci ~prefix:".model"))

let sample_netlist =
  "* common source amplifier\n\
   .MODEL MYN NMOS (VTO=0.7 KP=80U LAMBDA=0.04)\n\
   VDD vdd 0 DC 5\n\
   VIN in 0 DC 1.1 AC 1\n\
   RL vdd out 50k\n\
   M1 out in 0 0 MYN W=20u L=2.4u\n\
   CL out 0 1p\n\
   .END\n"

let test_parse_netlist () =
  let nl = Sp.parse ~title:"cs" sample_netlist in
  Alcotest.(check int) "element count" 5 (N.device_count nl);
  Alcotest.(check int) "one mosfet" 1 (N.mosfet_count nl);
  let m =
    List.find
      (fun e -> match e with N.Mosfet _ -> true | _ -> false)
      (N.elements nl)
  in
  (match m with
  | N.Mosfet { card; geom; _ } ->
    Alcotest.(check string) "model resolved" "MYN" card.Ape_process.Model_card.name;
    Alcotest.(check (float 1e-12)) "width" 20e-6 geom.Ape_device.Mos.w
  | _ -> Alcotest.fail "expected mosfet")

let test_parse_builtin_models () =
  let nl =
    Sp.parse ~title:"builtin"
      "VDD vdd 0 5\nM1 vdd vdd 0 0 NMOS W=10u L=2u\n"
  in
  Alcotest.(check int) "parsed" 2 (N.device_count nl)

let test_parse_sources () =
  let nl =
    Sp.parse ~title:"src"
      "V1 a 0 DC 2.5 AC 1\nI1 a 0 DC 10u\nR1 a 0 1k\n"
  in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { dc; ac; _ } ->
        Alcotest.(check (float 1e-9)) "v dc" 2.5 dc;
        Alcotest.(check (float 1e-9)) "v ac" 1. ac
      | N.Isource { dc; _ } -> Alcotest.(check (float 1e-12)) "i dc" 10e-6 dc
      | _ -> ())
    (N.elements nl)

let test_parse_switch_and_vcvs () =
  let nl =
    Sp.parse ~title:"misc"
      "V1 a 0 5\n\
       W1 a b ctrl RON=500 ROFF=1G VT=2.0\n\
       E1 b 0 a 0 10\n\
       V2 ctrl 0 5\n\
       R1 b 0 1k\n"
  in
  Alcotest.(check int) "count" 5 (N.device_count nl);
  List.iter
    (fun e ->
      match e with
      | N.Switch { ron; vthreshold; _ } ->
        Alcotest.(check (float 1e-9)) "ron" 500. ron;
        Alcotest.(check (float 1e-9)) "vt" 2.0 vthreshold
      | N.Vcvs { gain; _ } -> Alcotest.(check (float 1e-9)) "gain" 10. gain
      | _ -> ())
    (N.elements nl)

let test_parse_errors () =
  let expect_bad s =
    match Sp.parse ~title:"bad" s with
    | exception Sp.Parse_error _ -> ()
    | _ -> Alcotest.fail ("expected Parse_error for: " ^ s)
  in
  expect_bad "M1 d g s b NOSUCHMODEL W=1u L=1u\nV1 d 0 5\n";
  expect_bad "R1 a 0\nV1 a 0 5\n";
  expect_bad "M1 d g s 0 NMOS L=1u\nV1 d 0 5\nR1 g 0 1k\nR2 s 0 1k\n";
  expect_bad "Q1 a b c\nV1 a 0 5\n"

let test_parse_roundtrip () =
  (* to_spice output must be parseable and structurally identical. *)
  let b = B.create ~title:"rt" in
  B.vsource b ~p:"vdd" ~n:"0" ~ac:1. 5.;
  B.nmos b proc ~d:"out" ~g:"vdd" ~s:"0" ~w:12e-6 ~l:3.6e-6;
  B.resistor b ~a:"vdd" ~b:"out" 10e3;
  B.capacitor b ~a:"out" ~b:"0" 2e-12;
  let nl = B.finish b in
  let reparsed = Sp.parse ~title:"rt" (N.to_spice nl) in
  Alcotest.(check int) "same element count" (N.device_count nl)
    (N.device_count reparsed);
  Alcotest.(check int) "same mosfets" (N.mosfet_count nl)
    (N.mosfet_count reparsed);
  Alcotest.(check (float 1e-18)) "same gate area" (N.gate_area nl)
    (N.gate_area reparsed)

let golden_decks () =
  let dir = Filename.concat "golden" "decks" in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let test_golden_deck_roundtrip () =
  (* For every checked-in deck: parse -> print -> re-parse -> re-print
     must reach a byte-identical fixpoint (exact float printing), and
     the two parses must agree structurally. *)
  let decks = golden_decks () in
  Alcotest.(check bool) "golden decks present" true (List.length decks >= 4);
  List.iter
    (fun file ->
      let text = In_channel.with_open_text file In_channel.input_all in
      let nl1 = Sp.parse ~title:file text in
      let printed1 = N.to_spice nl1 in
      let nl2 = Sp.parse ~title:file printed1 in
      let printed2 = N.to_spice nl2 in
      Alcotest.(check string) (file ^ ": print/parse fixpoint") printed1
        printed2;
      Alcotest.(check bool)
        (file ^ ": identical elements")
        true
        (N.elements nl1 = N.elements nl2))
    decks

let prop_instantiate_preserves_count =
  QCheck.Test.make ~name:"instantiate preserves element count" ~count:50
    QCheck.(string_gen_of_size (Gen.return 3) Gen.printable)
    (fun prefix ->
      QCheck.assume
        (String.length prefix > 0
        && String.for_all
             (fun c ->
               (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
             prefix);
      let child = divider () in
      List.length (N.instantiate ~prefix ~port_map:[] child)
      = N.device_count child)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_circuit"
    [
      ( "netlist",
        [
          Alcotest.test_case "builder names" `Quick test_builder_names;
          Alcotest.test_case "ground aliases" `Quick test_ground_aliases;
          Alcotest.test_case "counts/area" `Quick test_gate_area_and_counts;
          Alcotest.test_case "merge/append" `Quick test_merge_append;
        ] );
      ( "validation",
        [
          Alcotest.test_case "duplicate names" `Quick test_validate_duplicate;
          Alcotest.test_case "no ground" `Quick test_validate_no_ground;
          Alcotest.test_case "dangling node" `Quick test_validate_dangling;
          Alcotest.test_case "bad values" `Quick test_validate_bad_values;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "instantiate" `Quick test_instantiate;
          Alcotest.test_case "rename" `Quick test_rename_node;
          Alcotest.test_case "retarget process" `Quick test_retarget_process;
        ] );
      qsuite "hierarchy-properties" [ prop_instantiate_preserves_count ];
      ( "spice-io",
        [
          Alcotest.test_case "to_spice" `Quick test_to_spice_contains_model;
          Alcotest.test_case "parse netlist" `Quick test_parse_netlist;
          Alcotest.test_case "builtin models" `Quick test_parse_builtin_models;
          Alcotest.test_case "sources" `Quick test_parse_sources;
          Alcotest.test_case "switch/vcvs" `Quick test_parse_switch_and_vcvs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "golden deck roundtrips" `Quick
            test_golden_deck_roundtrip;
        ] );
    ]
