(* Tests for Ape_estimator — the paper's core claim at every level:
   closed-form estimates agree with detailed simulation within
   engineering tolerances, and every design elaborates into a valid,
   solvable netlist. *)

module E = Ape_estimator
module N = Ape_circuit.Netlist
module F = Ape_util.Float_ext
module Proc = Ape_process.Process

let proc = Proc.c12

let within msg tol reference measured =
  Alcotest.(check bool)
    (Printf.sprintf "%s: est %.6g vs sim %.6g (tol %.0f%%)" msg reference
       measured (100. *. tol))
    true
    (F.rel_error reference measured <= tol)

let within_opt msg tol reference measured =
  match (reference, measured) with
  | Some r, Some m -> within msg tol r m
  | _ -> Alcotest.fail (msg ^ ": missing value")

(* ---------- level 2: bias components ---------- *)

let test_dc_volt () =
  let d = E.Bias.Dc_volt.design proc { E.Bias.Dc_volt.vout = 2.5; i = 100e-6 } in
  let sim = E.Verify.sim_dc_volt proc d in
  within_opt "DCVolt output voltage" 0.05 d.E.Bias.Dc_volt.perf.E.Perf.gain
    sim.E.Perf.gain;
  within "DCVolt power" 0.08 d.E.Bias.Dc_volt.perf.E.Perf.dc_power
    sim.E.Perf.dc_power;
  within_opt "DCVolt current" 0.08 d.E.Bias.Dc_volt.perf.E.Perf.current
    sim.E.Perf.current

let test_dc_volt_stacked () =
  (* A 4.2 V output needs a two-diode stack. *)
  let d = E.Bias.Dc_volt.design proc { E.Bias.Dc_volt.vout = 4.2; i = 50e-6 } in
  Alcotest.(check int) "two diodes" 2 (List.length d.E.Bias.Dc_volt.stack);
  let sim = E.Verify.sim_dc_volt proc d in
  within_opt "stacked output" 0.08 (Some 4.2) sim.E.Perf.gain

let test_dc_volt_infeasible () =
  match E.Bias.Dc_volt.design proc { E.Bias.Dc_volt.vout = 0.3; i = 1e-6 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected infeasible vout"

let mirror_case topology rout_tol =
  let d =
    E.Bias.Current_mirror.design proc
      (E.Bias.Current_mirror.spec ~topology ~iout:100e-6 ())
  in
  let sim = E.Verify.sim_mirror proc d in
  within_opt
    (E.Bias.mirror_topology_name topology ^ " current")
    0.08
    d.E.Bias.Current_mirror.perf.E.Perf.current sim.E.Perf.current;
  within "mirror power" 0.05 d.E.Bias.Current_mirror.perf.E.Perf.dc_power
    sim.E.Perf.dc_power;
  match sim.E.Perf.zout with
  | Some z ->
    Alcotest.(check bool)
      (E.Bias.mirror_topology_name topology ^ " rout within band")
      true
      (F.rel_error d.E.Bias.Current_mirror.rout z <= rout_tol)
  | None -> Alcotest.fail "no rout measured"

let test_mirror_simple () = mirror_case E.Bias.Simple 0.2
let test_mirror_cascode () = mirror_case E.Bias.Cascode 0.5
let test_mirror_wilson () = mirror_case E.Bias.Wilson 0.6

let test_mirror_ratio () =
  (* 10:1 ratio mirror sinks ~10x the reference. *)
  let d =
    E.Bias.Current_mirror.design proc
      (E.Bias.Current_mirror.spec ~iin:10e-6 ~iout:100e-6 ())
  in
  let sim = E.Verify.sim_mirror proc d in
  within_opt "ratioed output current" 0.1 (Some 100e-6) sim.E.Perf.current;
  (* Power is paid in the reference branch only. *)
  within "ratioed power" 0.1 (5. *. 10e-6)
    d.E.Bias.Current_mirror.perf.E.Perf.dc_power

let test_mirror_ordering () =
  (* Output resistance: cascode/wilson >> simple; area grows with device
     count. *)
  let design t =
    E.Bias.Current_mirror.design proc
      (E.Bias.Current_mirror.spec ~topology:t ~iout:100e-6 ())
  in
  let s = design E.Bias.Simple
  and c = design E.Bias.Cascode
  and w = design E.Bias.Wilson in
  Alcotest.(check bool) "cascode rout >> simple" true
    (c.E.Bias.Current_mirror.rout > 10. *. s.E.Bias.Current_mirror.rout);
  Alcotest.(check bool) "wilson rout >> simple" true
    (w.E.Bias.Current_mirror.rout > 5. *. s.E.Bias.Current_mirror.rout);
  Alcotest.(check bool) "cascode area > simple" true
    (c.E.Bias.Current_mirror.perf.E.Perf.gate_area
    > s.E.Bias.Current_mirror.perf.E.Perf.gate_area)

(* ---------- level 2: gain stages ---------- *)

let stage_case kind av i ~gain_tol =
  let d = E.Gain_stage.design proc (E.Gain_stage.spec ~av ~cl:1e-12 kind ~i) in
  let sim = E.Verify.sim_gain_stage proc d in
  within "stage power" 0.05 d.E.Gain_stage.perf.E.Perf.dc_power
    sim.E.Perf.dc_power;
  within_opt
    (E.Gain_stage.kind_name kind ^ " gain")
    gain_tol d.E.Gain_stage.perf.E.Perf.gain sim.E.Perf.gain;
  (d, sim)

let test_gain_nmos () =
  ignore (stage_case E.Gain_stage.Gain_nmos 8.5 120e-6 ~gain_tol:0.4)

let test_gain_cmos () =
  let d, sim = stage_case E.Gain_stage.Gain_cmos 19. 120e-6 ~gain_tol:0.25 in
  within_opt "GainCMOS ugf" 0.35 d.E.Gain_stage.ugf sim.E.Perf.ugf

let test_gain_cmosh () =
  ignore (stage_case E.Gain_stage.Gain_cmosh 5.1 45e-6 ~gain_tol:0.25)

let test_follower () =
  let d =
    E.Gain_stage.design proc
      (E.Gain_stage.spec E.Gain_stage.Follower_stage ~i:100e-6)
  in
  let sim = E.Verify.sim_gain_stage proc d in
  within_opt "follower gain" 0.03 d.E.Gain_stage.perf.E.Perf.gain
    sim.E.Perf.gain;
  Alcotest.(check bool) "follower gain < 1" true
    (match sim.E.Perf.gain with Some s -> s < 1. | None -> false);
  within_opt "follower zout" 0.3 (Some d.E.Gain_stage.zout) sim.E.Perf.zout

(* ---------- level 2: differential pairs ---------- *)

let test_diff_cmos () =
  let d =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:1000. E.Diff_pair.Cmos_mirror ~itail:1e-6)
  in
  let sim = E.Verify.sim_diff_pair proc d in
  within_opt "DiffCMOS gain" 0.45 d.E.Diff_pair.perf.E.Perf.gain
    sim.E.Perf.gain;
  within "DiffCMOS power" 0.08 d.E.Diff_pair.perf.E.Perf.dc_power
    sim.E.Perf.dc_power;
  Alcotest.(check bool) "gain positive (mirror load)" true
    (match sim.E.Perf.gain with Some g -> g > 0. | None -> false);
  Alcotest.(check bool) "CMRR large" true
    (match sim.E.Perf.cmrr with Some c -> c > 1e4 | None -> false)

let test_diff_nmos () =
  let d =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:4. E.Diff_pair.Nmos_diode ~itail:1e-6)
  in
  let sim = E.Verify.sim_diff_pair proc d in
  Alcotest.(check bool) "gain negative (diode load, paper convention)" true
    (match sim.E.Perf.gain with Some g -> g < 0. | None -> false);
  within_opt "DiffNMOS gain magnitude" 0.45
    (Option.map Float.abs d.E.Diff_pair.perf.E.Perf.gain)
    (Option.map Float.abs sim.E.Perf.gain)

let test_diff_noise () =
  (* Estimated input-referred noise within a factor 2 of the measured
     MNA noise analysis. *)
  let d =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:300. E.Diff_pair.Cmos_mirror ~itail:4e-6)
  in
  let sim = E.Verify.sim_diff_pair proc d in
  match (d.E.Diff_pair.perf.E.Perf.noise, sim.E.Perf.noise) with
  | Some est, Some meas ->
    Alcotest.(check bool)
      (Printf.sprintf "noise within x2 (est %.3g, sim %.3g)" est meas)
      true
      (meas /. est < 2.0 && meas /. est > 0.5)
  | _ -> Alcotest.fail "noise estimates missing"

let test_diff_mismatch_mc () =
  (* Pelgrom offset estimate within a factor ~2 of a Monte-Carlo
     measurement with per-device threshold jitter. *)
  let d =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:300. E.Diff_pair.Cmos_mirror ~itail:4e-6)
  in
  let mc = E.Verify.monte_carlo_offset ~runs:25 ~seed:3 proc d in
  match d.E.Diff_pair.perf.E.Perf.offset_sigma with
  | Some est ->
    Alcotest.(check bool)
      (Printf.sprintf "offset sigma within x2.5 (est %.3g, MC %.3g)" est mc)
      true
      (mc /. est < 2.5 && mc /. est > 0.4)
  | None -> Alcotest.fail "offset sigma missing"

let test_mismatch_scales_with_area () =
  (* Bigger devices match better: sigma falls when the same circuit is
     drawn at a longer channel. *)
  let sigma l =
    let d =
      E.Diff_pair.design ~l proc
        (E.Diff_pair.spec ~av:100. E.Diff_pair.Cmos_mirror ~itail:4e-6)
    in
    Option.get d.E.Diff_pair.perf.E.Perf.offset_sigma
  in
  Alcotest.(check bool) "sigma shrinks with area" true
    (sigma 9.6e-6 < sigma 2.4e-6)

let test_diff_tail_topologies () =
  (* Wilson tail improves CMRR over the simple tail. *)
  let cmrr topo =
    let d =
      E.Diff_pair.design proc
        (E.Diff_pair.spec ~av:500. ~tail_topology:topo
           E.Diff_pair.Cmos_mirror ~itail:2e-6)
    in
    d.E.Diff_pair.cmrr
  in
  Alcotest.(check bool) "wilson tail raises est CMRR" true
    (cmrr E.Bias.Wilson > 3. *. cmrr E.Bias.Simple)

(* ---------- level 3: opamps ---------- *)

let opamp_case ?(gain_tol = 0.1) ?(ugf_tol = 0.5) ?(power_tol = 0.08) spec =
  let d = E.Opamp.design proc spec in
  let sim = E.Verify.sim_opamp ~slew:false proc d in
  within_opt "opamp gain" gain_tol d.E.Opamp.perf.E.Perf.gain sim.E.Perf.gain;
  within "opamp power" power_tol d.E.Opamp.perf.E.Perf.dc_power
    sim.E.Perf.dc_power;
  within_opt "opamp ugf" ugf_tol d.E.Opamp.perf.E.Perf.ugf sim.E.Perf.ugf;
  (d, sim)

let test_opamp_single_stage () =
  let d, sim =
    opamp_case (E.Opamp.spec ~av:300. ~ugf:3e6 ~ibias:1e-6 ~cl:10e-12 ())
  in
  Alcotest.(check bool) "single stage" true (d.E.Opamp.stage2 = None);
  Alcotest.(check bool) "meets gain spec in sim" true
    (match sim.E.Perf.gain with Some g -> g >= 300. | None -> false)

let test_opamp_buffered () =
  let d, sim =
    opamp_case
      (E.Opamp.spec ~buffer:true ~zout:1e3 ~bias_topology:E.Bias.Wilson
         ~av:206. ~ugf:1.3e6 ~ibias:1e-6 ~cl:10e-12 ())
  in
  Alcotest.(check bool) "has buffer" true (d.E.Opamp.buffer <> None);
  match sim.E.Perf.zout with
  | Some z -> Alcotest.(check bool) "zout <= spec" true (z <= 1e3)
  | None -> Alcotest.fail "no zout"

let test_opamp_two_stage () =
  let d, _ =
    opamp_case ~gain_tol:0.25 ~power_tol:0.2
      (E.Opamp.spec ~force_stage2:true ~av:5000. ~ugf:1e6 ~ibias:1e-6
         ~cl:10e-12 ())
  in
  Alcotest.(check bool) "has second stage" true (d.E.Opamp.stage2 <> None);
  Alcotest.(check bool) "gain exceeds single-stage ceiling" true
    (d.E.Opamp.gain > 2000.)

let test_opamp_infeasible () =
  match E.Opamp.design proc (E.Opamp.spec ~av:(-5.) ~ugf:1e6 ~ibias:1e-6 ()) with
  | exception E.Opamp.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_opamp_slew_spec () =
  (* A slew-rate spec must raise the tail current. *)
  let base = E.Opamp.design proc (E.Opamp.spec ~av:100. ~ugf:1e6 ~ibias:1e-6 ()) in
  let fast =
    E.Opamp.design proc
      (E.Opamp.spec ~sr:20e6 ~av:100. ~ugf:1e6 ~ibias:1e-6 ())
  in
  Alcotest.(check bool) "slew spec raises tail" true
    (fast.E.Opamp.diff.E.Diff_pair.spec.E.Diff_pair.itail
    > base.E.Opamp.diff.E.Diff_pair.spec.E.Diff_pair.itail);
  Alcotest.(check bool) "slew estimate meets spec" true
    (fast.E.Opamp.slew_rate >= 20e6 *. 0.9)

(* ---------- level 4: modules ---------- *)

let test_module_sh () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Sample_hold_m
         (E.Sample_hold.spec ~gain:2.0 ~bandwidth:20e3 ~sr:1e4 ()))
  in
  let sim = E.Verify.sim_module proc d in
  within_opt "s&h gain" 0.06 (Some 2.0) sim.E.Verify.perf.E.Perf.gain;
  (match sim.E.Verify.perf.E.Perf.bandwidth with
  | Some bw -> Alcotest.(check bool) "s&h bw meets spec" true (bw >= 20e3)
  | None -> Alcotest.fail "no bandwidth");
  match sim.E.Verify.response_time with
  | Some t -> Alcotest.(check bool) "acquisition < 1 ms" true (t < 1e-3)
  | None -> Alcotest.fail "no response time"

let test_module_lpf () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Lowpass_m { E.Filter.order = 4; f_cutoff = 1e3; r_base = 1e6 })
  in
  let sim = E.Verify.sim_module proc d in
  within_opt "lpf f3db" 0.25 (Some 1e3) sim.E.Verify.perf.E.Perf.bandwidth;
  (* Butterworth selectivity: -20 dB within a factor ~1.8 of fc. *)
  match sim.E.Verify.f_20db with
  | Some f -> Alcotest.(check bool) "f-20dB close to 1.78 kHz" true
      (F.rel_error 1.78e3 f < 0.15)
  | None -> Alcotest.fail "no f-20dB"

let test_module_bpf () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Bandpass_m
         { E.Filter.f_center = 1e3; q = 1.; gain = 1.5; c_base = 10e-9 })
  in
  let sim = E.Verify.sim_module proc d in
  within_opt "bpf f0" 0.1 (Some 1e3) sim.E.Verify.f0;
  within_opt "bpf gain" 0.15 (Some 1.5) sim.E.Verify.perf.E.Perf.gain

let test_module_adc () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Flash_adc_m (E.Data_conv.Flash_adc.spec ~bits:4 ~delay:5e-6 ()))
  in
  let sim = E.Verify.sim_module proc d in
  (match sim.E.Verify.dc_code_error with
  | Some err -> Alcotest.(check bool) "mid-code trip < 0.5 LSB" true (err < 0.5)
  | None -> Alcotest.fail "no code error");
  match sim.E.Verify.response_time with
  | Some t -> Alcotest.(check bool) "delay <= spec" true (t <= 5e-6)
  | None -> Alcotest.fail "no delay"

let test_module_dac () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Dac_m (E.Data_conv.Dac.spec ~bits:4 ~settling:5e-6 ()))
  in
  let sim = E.Verify.sim_module proc d in
  (match sim.E.Verify.dc_code_error with
  | Some err -> Alcotest.(check bool) "mid-code error < 0.5 LSB" true (err < 0.5)
  | None -> Alcotest.fail "no code error");
  match sim.E.Verify.response_time with
  | Some t -> Alcotest.(check bool) "settling < 5x estimate" true
      (t < 5. *. (match d with
                  | E.Module_lib.D_dac dd -> dd.E.Data_conv.Dac.settling_est
                  | _ -> 0.))
  | None -> Alcotest.fail "no settling"

let test_module_inverting () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Closed_loop_m
         (E.Closed_loop.spec ~bandwidth:100e3
            (E.Closed_loop.Inverting { gain = 10. })))
  in
  let sim = E.Verify.sim_module proc d in
  within_opt "inverting gain" 0.08 (Some (-10.)) sim.E.Verify.perf.E.Perf.gain

let test_module_integrator () =
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Closed_loop_m
         (E.Closed_loop.spec ~bandwidth:50e3
            (E.Closed_loop.Integrator { f_unity = 10e3 })))
  in
  let sim = E.Verify.sim_module proc d in
  (* Unity crossing near the designed f_unity. *)
  within_opt "integrator unity frequency" 0.1 (Some 10e3)
    sim.E.Verify.perf.E.Perf.bandwidth

let test_module_audio () =
  let d = E.Module_lib.design proc (E.Module_lib.Audio_amp { gain = 100.; bandwidth = 20e3 }) in
  let sim = E.Verify.sim_module proc d in
  within_opt "audio gain" 0.35 (Some 100.) sim.E.Verify.perf.E.Perf.gain;
  match sim.E.Verify.perf.E.Perf.bandwidth with
  | Some bw -> Alcotest.(check bool) "bandwidth above 8 kHz" true (bw > 8e3)
  | None -> Alcotest.fail "no bandwidth"

(* ---------- symbolic equations (DESIGN.md D5) ---------- *)

let test_equations_cross_check () =
  (* The paper's symbolic equations (2)-(4) must agree with the
     hand-coded estimation-view functions. *)
  let nmos = proc.Proc.nmos in
  let kp = nmos.Ape_process.Model_card.kp in
  let env =
    Ape_symbolic.Expr.Env.of_list
      [
        ("kp", kp); ("w_over_l", 12.); ("ids", 25e-6); ("gm", 1e-4);
        ("gamma", nmos.Ape_process.Model_card.gamma);
        ("phi", nmos.Ape_process.Model_card.phi); ("vsb", 1.0);
        ("lambda", Ape_process.Model_card.lambda_at nmos 2.4e-6);
        ("vds", 2.5);
      ]
  in
  let eval e = Ape_symbolic.Expr.eval env e in
  ignore kp;
  within "eq2 = est_gm" 1e-9
    (Ape_device.Mos.est_gm nmos ~w_over_l:12. ~ids:25e-6)
    (eval E.Equations.eq2_gm);
  within "eq3 = est_gmb" 1e-9
    (Ape_device.Mos.est_gmb nmos ~gm:1e-4 ~vsb:1.0)
    (eval E.Equations.eq3_gmb);
  within "eq4 = est_gds" 1e-9
    (Ape_device.Mos.est_gds nmos ~l:2.4e-6 ~ids:25e-6 ~vds:2.5)
    (eval E.Equations.eq4_gd)

let test_equations_diffcmos () =
  (* Equations (5)-(7) must agree with the values Diff_pair computes. *)
  let d =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:500. E.Diff_pair.Cmos_mirror ~itail:2e-6)
  in
  let env =
    Ape_symbolic.Expr.Env.of_list
      [
        ("gmi", d.E.Diff_pair.pair.Ape_device.Mos.gm);
        ("gdi", d.E.Diff_pair.pair.Ape_device.Mos.gds);
        ("gml", d.E.Diff_pair.load_dev.Ape_device.Mos.gm);
        ("gdl", d.E.Diff_pair.load_dev.Ape_device.Mos.gds);
        ("g0", 1. /. d.E.Diff_pair.tail.E.Bias.Current_mirror.rout);
      ]
  in
  let eval e = Ape_symbolic.Expr.eval env e in
  within "eq5 = Adm" 1e-9 d.E.Diff_pair.gain (eval E.Equations.eq5_adm);
  within "eq6 = |Acm|" 1e-9 d.E.Diff_pair.acm
    (Float.abs (eval E.Equations.eq6_acm));
  within "eq7 = CMRR" 1e-9 d.E.Diff_pair.cmrr (eval E.Equations.eq7_cmrr)

let test_equations_inversion () =
  (* Solving eq2 for W/L symbolically equals the closed form. *)
  let kp = proc.Proc.nmos.Ape_process.Model_card.kp in
  let wl = E.Equations.solve_wl_for_gm ~kp ~gm:150e-6 ~ids:20e-6 in
  within "symbolic W/L inversion" 1e-6
    (Ape_device.Mos.size_for_gm_id proc.Proc.nmos ~gm:150e-6 ~ids:20e-6)
    wl;
  (* Square-law sensitivity of gm to Id is exactly 1/2. *)
  within "gm sensitivity to Id" 1e-9 0.5
    (E.Equations.sensitivity_gm_to_ids ~kp ~w_over_l:10. ~ids:5e-6)

(* ---------- structural invariants ---------- *)

let all_module_specs =
  [
    E.Module_lib.Audio_amp { gain = 100.; bandwidth = 20e3 };
    E.Module_lib.Sample_hold_m (E.Sample_hold.spec ~gain:2. ~bandwidth:20e3 ~sr:1e4 ());
    E.Module_lib.Flash_adc_m (E.Data_conv.Flash_adc.spec ~bits:3 ~delay:5e-6 ());
    E.Module_lib.Dac_m (E.Data_conv.Dac.spec ~bits:4 ~settling:5e-6 ());
    E.Module_lib.Lowpass_m { E.Filter.order = 4; f_cutoff = 1e3; r_base = 1e6 };
    E.Module_lib.Bandpass_m { E.Filter.f_center = 1e3; q = 1.; gain = 1.5; c_base = 10e-9 };
    E.Module_lib.Closed_loop_m
      (E.Closed_loop.spec ~bandwidth:50e3 (E.Closed_loop.Inverting { gain = 5. }));
    E.Module_lib.Comparator_m (E.Data_conv.Comparator.spec ~delay:1e-6 ());
  ]

let test_all_fragments_valid () =
  (* Every module elaborates into a netlist whose supply-completed form
     passes structural validation. *)
  List.iter
    (fun spec ->
      let d = E.Module_lib.design proc spec in
      let frag = E.Module_lib.fragment proc d in
      let nl = E.Fragment.with_supply ~vdd:5. frag in
      (* Attach trivial drives on the input ports so validation's
         two-connection rule holds, then validate. *)
      let drives =
        List.filter_map
          (fun (role, node) ->
            if role = "vdd" || role = "out" || role = "vref" then None
            else if String.length role >= 1 then
              Some
                (N.Resistor
                   { name = "RT" ^ role; a = node; b = "0"; r = 1e9 })
            else None)
          frag.E.Fragment.ports
      in
      let nl = N.append nl drives in
      match N.validate nl with
      | () -> ()
      | exception N.Invalid_netlist msg ->
        Alcotest.fail (E.Module_lib.name d ^ ": invalid netlist: " ^ msg))
    all_module_specs

let test_perf_positive () =
  List.iter
    (fun spec ->
      let d = E.Module_lib.design proc spec in
      let p = E.Module_lib.perf d in
      Alcotest.(check bool)
        (E.Module_lib.name d ^ " positive area")
        true (p.E.Perf.gate_area > 0.);
      Alcotest.(check bool)
        (E.Module_lib.name d ^ " positive power")
        true (p.E.Perf.dc_power > 0.);
      Alcotest.(check bool)
        (E.Module_lib.name d ^ " total >= gate area")
        true
        (p.E.Perf.total_area >= p.E.Perf.gate_area))
    all_module_specs

let test_hierarchy_composition () =
  (* Figure 2: a level-4 module netlist strictly contains its level-3
     opamp's devices, which contain level-2 parts. *)
  let d =
    E.Module_lib.design proc
      (E.Module_lib.Closed_loop_m
         (E.Closed_loop.spec ~bandwidth:50e3 (E.Closed_loop.Inverting { gain = 5. })))
  in
  let frag = E.Module_lib.fragment proc d in
  let names = List.map N.element_name (N.elements frag.E.Fragment.netlist) in
  Alcotest.(check bool) "contains opamp instance" true
    (List.exists (fun n -> String.length n > 4 && String.sub n 0 4 = "op1.") names);
  Alcotest.(check bool) "opamp contains diff instance" true
    (List.exists
       (fun n -> String.length n > 7 && String.sub n 0 7 = "op1.d1.")
       names);
  Alcotest.(check bool) "diff contains tail mirror instance" true
    (List.exists
       (fun n ->
         String.length n > 12 && String.sub n 0 12 = "op1.d1.tail.")
       names)

(* ---------- level 4: ideal-vs-nonideal correction bounds ---------- *)

let test_closed_loop_correction_bounds () =
  let spec =
    E.Closed_loop.spec ~bandwidth:20e3 (E.Closed_loop.Inverting { gain = 10. })
  in
  let d = E.Closed_loop.design proc spec in
  let ideal = Float.abs d.E.Closed_loop.gain_ideal in
  let est = Float.abs d.E.Closed_loop.gain_est in
  Alcotest.(check bool)
    "finite loop gain shrinks the ideal gain" true (est < ideal);
  (* The sizing rule A >= 20*NG caps the static error at ~5 %. *)
  Alcotest.(check bool)
    (Printf.sprintf "correction within 5%% (est %.3f of ideal %.1f)" est ideal)
    true
    (est >= 0.95 *. ideal);
  (* UGF is sized at 1.3x NG*bandwidth, so the closed-loop bandwidth
     must cover the spec with margin. *)
  Alcotest.(check bool)
    "closed-loop bandwidth covers the spec" true
    (d.E.Closed_loop.bandwidth_est >= spec.E.Closed_loop.bandwidth);
  Alcotest.(check bool)
    "opamp gain respects the 20x noise-gain rule" true
    (Float.abs d.E.Closed_loop.opamp.E.Opamp.gain
    >= 20.
       *. (1. +. 10.)
       *. 0.99)

let test_closed_loop_invalid () =
  (match
     E.Closed_loop.design proc
       (E.Closed_loop.spec ~bandwidth:20e3
          (E.Closed_loop.Non_inverting { gain = 0.5 }))
   with
  | _ -> Alcotest.fail "noise gain < 1 must be rejected"
  | exception Invalid_argument _ -> ());
  match E.Sample_hold.design proc (E.Sample_hold.spec ~gain:0.5 ~bandwidth:20e3 ~sr:1e4 ()) with
  | _ -> Alcotest.fail "S&H gain < 1 must be rejected"
  | exception Invalid_argument _ -> ()

let test_sample_hold_response_bounds () =
  let s = E.Sample_hold.spec ~gain:2. ~bandwidth:20e3 ~sr:1e4 () in
  let d = E.Sample_hold.design proc s in
  let tau_switch = s.E.Sample_hold.r_on *. s.E.Sample_hold.c_hold in
  Alcotest.(check bool)
    "response covers the 1% switch acquisition" true
    (d.E.Sample_hold.response_time_est > 4.6 *. tau_switch);
  within_opt "non-inverting gain correction" 0.05 (Some s.E.Sample_hold.gain)
    d.E.Sample_hold.perf.E.Perf.gain;
  (* A slower switch can only lengthen the acquisition. *)
  let slow =
    E.Sample_hold.design proc
      (E.Sample_hold.spec ~r_on:1e5 ~gain:2. ~bandwidth:20e3 ~sr:1e4 ())
  in
  Alcotest.(check bool)
    "response monotone in switch resistance" true
    (slow.E.Sample_hold.response_time_est
    > d.E.Sample_hold.response_time_est)

let test_audio_amp_correction () =
  let d =
    E.Audio_amp.design proc { E.Audio_amp.gain = 100.; bandwidth = 20e3 }
  in
  (* The trim divider is solved to land exactly on the spec gain... *)
  Alcotest.(check (float 1e-9)) "trimmed gain is exact" 100.
    d.E.Audio_amp.gain_est;
  (* ...which requires the untrimmed core to exceed it. *)
  Alcotest.(check bool)
    "raw core gain above the trimmed target" true
    (d.E.Audio_amp.opamp.E.Opamp.gain > 100.);
  Alcotest.(check bool) "trim resistance positive" true (d.E.Audio_amp.r_trim > 0.);
  Alcotest.(check bool)
    "bandwidth estimate covers the spec" true
    (d.E.Audio_amp.bandwidth_est >= 20e3);
  match E.Audio_amp.design proc { E.Audio_amp.gain = 1.; bandwidth = 20e3 } with
  | _ -> Alcotest.fail "gain <= 1 must be rejected"
  | exception Invalid_argument _ -> ()

let prop_opamp_monotone_gm =
  QCheck.Test.make ~name:"higher UGF spec needs at least as much gm"
    ~count:12
    (QCheck.float_range 1e6 8e6)
    (fun ugf ->
      let d1 = E.Opamp.design proc (E.Opamp.spec ~av:100. ~ugf ~ibias:1e-6 ()) in
      let d2 =
        E.Opamp.design proc (E.Opamp.spec ~av:100. ~ugf:(1.5 *. ugf) ~ibias:1e-6 ())
      in
      d2.E.Opamp.diff.E.Diff_pair.gm >= d1.E.Opamp.diff.E.Diff_pair.gm *. 0.99)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_estimator"
    [
      ( "level2-bias",
        [
          Alcotest.test_case "DCVolt" `Quick test_dc_volt;
          Alcotest.test_case "DCVolt stacked" `Quick test_dc_volt_stacked;
          Alcotest.test_case "DCVolt infeasible" `Quick test_dc_volt_infeasible;
          Alcotest.test_case "simple mirror" `Quick test_mirror_simple;
          Alcotest.test_case "cascode mirror" `Quick test_mirror_cascode;
          Alcotest.test_case "wilson mirror" `Quick test_mirror_wilson;
          Alcotest.test_case "ratioed mirror" `Quick test_mirror_ratio;
          Alcotest.test_case "topology ordering" `Quick test_mirror_ordering;
        ] );
      ( "level2-stages",
        [
          Alcotest.test_case "GainNMOS" `Quick test_gain_nmos;
          Alcotest.test_case "GainCMOS" `Quick test_gain_cmos;
          Alcotest.test_case "GainCMOSH" `Quick test_gain_cmosh;
          Alcotest.test_case "Follower" `Quick test_follower;
        ] );
      ( "level2-diff",
        [
          Alcotest.test_case "DiffCMOS" `Quick test_diff_cmos;
          Alcotest.test_case "DiffNMOS" `Quick test_diff_nmos;
          Alcotest.test_case "tail topologies" `Quick test_diff_tail_topologies;
          Alcotest.test_case "noise est vs sim" `Quick test_diff_noise;
          Alcotest.test_case "mismatch vs Monte-Carlo" `Quick
            test_diff_mismatch_mc;
          Alcotest.test_case "mismatch area scaling" `Quick
            test_mismatch_scales_with_area;
        ] );
      ( "level3-opamp",
        [
          Alcotest.test_case "single stage" `Quick test_opamp_single_stage;
          Alcotest.test_case "buffered" `Quick test_opamp_buffered;
          Alcotest.test_case "two stage" `Quick test_opamp_two_stage;
          Alcotest.test_case "infeasible" `Quick test_opamp_infeasible;
          Alcotest.test_case "slew spec" `Quick test_opamp_slew_spec;
        ] );
      ( "level4-modules",
        [
          Alcotest.test_case "sample&hold" `Quick test_module_sh;
          Alcotest.test_case "lpf" `Quick test_module_lpf;
          Alcotest.test_case "bpf" `Quick test_module_bpf;
          Alcotest.test_case "flash adc" `Quick test_module_adc;
          Alcotest.test_case "dac" `Quick test_module_dac;
          Alcotest.test_case "inverting amp" `Quick test_module_inverting;
          Alcotest.test_case "integrator" `Quick test_module_integrator;
          Alcotest.test_case "audio amp" `Quick test_module_audio;
        ] );
      ( "level4-corrections",
        [
          Alcotest.test_case "closed-loop finite-gain bound" `Quick
            test_closed_loop_correction_bounds;
          Alcotest.test_case "closed-loop invalid specs" `Quick
            test_closed_loop_invalid;
          Alcotest.test_case "sample&hold response bounds" `Quick
            test_sample_hold_response_bounds;
          Alcotest.test_case "audio amp trim correction" `Quick
            test_audio_amp_correction;
        ] );
      ( "symbolic-equations",
        [
          Alcotest.test_case "eq2-4 cross-check" `Quick
            test_equations_cross_check;
          Alcotest.test_case "eq5-7 vs Diff_pair" `Quick
            test_equations_diffcmos;
          Alcotest.test_case "symbolic inversion" `Quick
            test_equations_inversion;
        ] );
      ( "structure",
        [
          Alcotest.test_case "fragments valid" `Quick test_all_fragments_valid;
          Alcotest.test_case "perf positive" `Quick test_perf_positive;
          Alcotest.test_case "hierarchy composition" `Quick
            test_hierarchy_composition;
        ] );
      qsuite "properties" [ prop_opamp_monotone_gm ];
    ]
