(* Differential test harness for the sparse MNA engine.

   [Ape_util.Sparse] has no bit-identity contract with the dense LU
   (the elimination order differs), so these tests pin the actual
   guarantees: sparse solves agree with [Matrix] dense solves to tight
   tolerances on random MNA-shaped systems; the engine-switched AC/DC/
   transient paths agree with the dense reference on every golden deck;
   refactorisation replays are exact; parallel sweeps are bit-identical
   to sequential ones for any [~jobs]; and the Newton counter
   invariants survive the engine swap. *)

module Sp = Ape_util.Sparse
module Rmat = Ape_util.Matrix.Rmat
module Cmat = Ape_util.Matrix.Cmat
module N = Ape_circuit.Netlist
module Dc = Ape_spice.Dc
module Ac = Ape_spice.Ac
module Tr = Ape_spice.Transient
module Backend = Ape_spice.Backend

let proc = Ape_process.Process.c12

(* ---------- pattern / builder ---------- *)

let test_builder_basics () =
  let b = Sp.Builder.create 3 in
  Sp.Builder.add b 0 0;
  Sp.Builder.add b 2 1;
  Sp.Builder.add b 0 0;
  (* duplicate collapses *)
  Sp.Builder.add b 1 2;
  Sp.Builder.add b 2 2;
  let p = Sp.Builder.compile b in
  Alcotest.(check int) "dim" 3 (Sp.dim p);
  Alcotest.(check int) "nnz (dups collapsed)" 4 (Sp.nnz p);
  (* Slots are column-major, rows ascending within a column. *)
  let seen = ref [] in
  Sp.iter p (fun slot row col -> seen := (slot, row, col) :: !seen);
  Alcotest.(check (list (triple int int int)))
    "iter order"
    [ (0, 0, 0); (1, 2, 1); (2, 1, 2); (3, 2, 2) ]
    (List.rev !seen);
  Alcotest.(check int) "slot lookup" 2 (Sp.slot p ~row:1 ~col:2);
  Alcotest.check_raises "absent entry" Not_found (fun () ->
      ignore (Sp.slot p ~row:1 ~col:0));
  Alcotest.(check bool) "builder range check" true
    (match Sp.Builder.add b 3 0 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_min_degree_permutation () =
  let b = Sp.Builder.create 5 in
  (* Arrow matrix: dense last row/col + diagonal. *)
  for i = 0 to 4 do
    Sp.Builder.add b i i;
    Sp.Builder.add b 4 i;
    Sp.Builder.add b i 4
  done;
  let q = Sp.min_degree (Sp.Builder.compile b) in
  Alcotest.(check int) "length" 5 (Array.length q);
  let seen = Array.make 5 false in
  Array.iter (fun j -> seen.(j) <- true) q;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen);
  (* The dense hub must be eliminated last: anything else fills in. *)
  Alcotest.(check int) "hub last" 4 q.(4)

(* ---------- degenerate systems ---------- *)

let test_empty_system () =
  let p = Sp.Builder.compile (Sp.Builder.create 0) in
  Alcotest.(check int) "0 dim" 0 (Sp.dim p);
  let v = Sp.Real.create p in
  let f = Sp.Real.factor v in
  Alcotest.(check int) "0x0 solve" 0 (Array.length (Sp.Real.solve f [||]));
  Sp.Real.refactor f v;
  Alcotest.(check int) "lnz" 0 (Sp.Real.lnz f);
  Alcotest.(check int) "unz" 0 (Sp.Real.unz f)

let test_one_by_one () =
  let b = Sp.Builder.create 1 in
  Sp.Builder.add b 0 0;
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  Sp.Real.add_slot v 0 4.;
  let f = Sp.Real.factor v in
  Alcotest.(check (float 1e-12)) "1x1 solve" 2. (Sp.Real.solve f [| 8. |]).(0);
  Sp.Real.set_slot v 0 0.;
  Alcotest.check_raises "numerically singular 1x1" Sp.Singular (fun () ->
      ignore (Sp.Real.factor v))

let test_structurally_singular () =
  (* Column 1 has no entries: no pivot can exist. *)
  let b = Sp.Builder.create 2 in
  Sp.Builder.add b 0 0;
  Sp.Builder.add b 1 0;
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  Sp.Real.add_slot v (Sp.slot p ~row:0 ~col:0) 1.;
  Sp.Real.add_slot v (Sp.slot p ~row:1 ~col:0) 2.;
  Alcotest.check_raises "empty column" Sp.Singular (fun () ->
      ignore (Sp.Real.factor v))

let test_numerically_singular () =
  let b = Sp.Builder.create 2 in
  List.iter
    (fun (r, c) -> Sp.Builder.add b r c)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  let set r c x = Sp.Real.set_slot v (Sp.slot p ~row:r ~col:c) x in
  (* Rank 1: [[1; 2]; [2; 4]]. *)
  set 0 0 1.;
  set 0 1 2.;
  set 1 0 2.;
  set 1 1 4.;
  Alcotest.check_raises "rank deficient" Sp.Singular (fun () ->
      ignore (Sp.Real.factor v))

let test_unstable_refactor () =
  let b = Sp.Builder.create 2 in
  List.iter
    (fun (r, c) -> Sp.Builder.add b r c)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  let set r c x = Sp.Real.set_slot v (Sp.slot p ~row:r ~col:c) x in
  set 0 0 2.;
  set 0 1 1.;
  set 1 0 1.;
  set 1 1 2.;
  let f = Sp.Real.factor v in
  (* New values make the frozen (0,0) pivot vanish relative to its
     column: the replay must refuse rather than divide by ~0. *)
  set 0 0 1e-20;
  set 0 1 1.;
  set 1 0 1.;
  set 1 1 1.;
  Alcotest.check_raises "frozen pivot degenerated" Sp.Unstable (fun () ->
      Sp.Real.refactor f v);
  (* A fresh pivoting factorisation handles the same values fine. *)
  let f2 = Sp.Real.factor v in
  let x = Sp.Real.solve f2 [| 1.; 1. |] in
  Alcotest.(check bool) "fresh factor recovers" true
    (Float.abs (x.(0) -. 0.) < 1e-9 && Float.abs (x.(1) -. 1.) < 1e-9)

let test_clone_independent () =
  let b = Sp.Builder.create 2 in
  List.iter
    (fun (r, c) -> Sp.Builder.add b r c)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  let set r c x = Sp.Real.set_slot v (Sp.slot p ~row:r ~col:c) x in
  set 0 0 4.;
  set 0 1 1.;
  set 1 0 1.;
  set 1 1 3.;
  let f = Sp.Real.factor v in
  let x_before = Sp.Real.solve f [| 1.; 2. |] in
  let g = Sp.Real.clone f in
  (* Refactor only the clone with different values. *)
  set 0 0 10.;
  Sp.Real.refactor g v;
  let x_after = Sp.Real.solve f [| 1.; 2. |] in
  Alcotest.(check bool) "original factor untouched by clone refactor" true
    (x_before.(0) = x_after.(0) && x_before.(1) = x_after.(1));
  let y = Sp.Real.solve g [| 1.; 2. |] in
  Alcotest.(check bool) "clone solves the new values" true
    (Float.abs ((10. *. y.(0)) +. y.(1) -. 1.) < 1e-9)

(* ---------- random MNA-shaped systems vs the dense reference ---------- *)

(* MNA shape: strong banded diagonal block (node conductances) plus a
   few off-band couplings and zero-diagonal "branch" rows coupled like a
   voltage source (the part that forces real pivoting). *)
let mna_system_gen =
  QCheck.Gen.(
    int_range 2 12 >>= fun n_nodes ->
    int_range 0 (min 2 (n_nodes - 1)) >>= fun n_branch ->
    let n = n_nodes + n_branch in
    list_size (return (n_nodes * 3)) (float_range 0.1 2.) >>= fun offs ->
    int_range 0 (n_nodes - 1) >>= fun b0 ->
    (* Distinct branch nodes by construction: two sources on the same
       node would make the system exactly singular (identical rows). *)
    let bnodes = List.init n_branch (fun k -> (b0 + k) mod n_nodes) in
    return (n_nodes, n, offs, bnodes))

let build_mna (n_nodes, n, offs, bnodes) =
  let dense = Rmat.create n n in
  (* Banded conductance block, diagonally dominant. *)
  List.iteri
    (fun k g ->
      let i = k mod n_nodes in
      let j = (i + 1 + (k / n_nodes)) mod n_nodes in
      if i <> j then begin
        Rmat.add_to dense i j (-.g);
        Rmat.add_to dense j i (-.g);
        Rmat.add_to dense i i g;
        Rmat.add_to dense j j g
      end)
    offs;
  for i = 0 to n_nodes - 1 do
    Rmat.add_to dense i i 1.
  done;
  (* Voltage-source-like branch rows: zero diagonal, +-1 couplings. *)
  List.iteri
    (fun k node ->
      let br = n_nodes + k in
      Rmat.add_to dense node br 1.;
      Rmat.add_to dense br node 1.)
    bnodes;
  let b = Sp.Builder.create n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Rmat.get dense i j <> 0. then Sp.Builder.add b i j
    done
  done;
  let p = Sp.Builder.compile b in
  let v = Sp.Real.create p in
  Sp.iter p (fun s row col -> Sp.Real.set_slot v s (Rmat.get dense row col));
  (dense, p, v)

let rel_err x y =
  let scale =
    Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 1e-30 x
  in
  let worst = ref 0. in
  Array.iteri
    (fun i v -> worst := Float.max !worst (Float.abs (v -. y.(i)) /. scale))
    x;
  !worst

let prop_sparse_matches_dense =
  QCheck.Test.make ~name:"sparse LU matches dense LU within 1e-10" ~count:200
    (QCheck.make mna_system_gen) (fun sys ->
      let dense, _, v = build_mna sys in
      let n = Rmat.rows dense in
      let b = Array.init n (fun i -> Float.sin (float_of_int (i + 1))) in
      let x_dense = Rmat.solve dense b in
      let x_sparse = Sp.Real.solve (Sp.Real.factor v) b in
      rel_err x_dense x_sparse <= 1e-10)

let prop_refactor_matches_fresh =
  QCheck.Test.make
    ~name:"numeric refactor equals dense solve on perturbed values"
    ~count:200 (QCheck.make mna_system_gen) (fun sys ->
      let dense, p, v = build_mna sys in
      let n = Rmat.rows dense in
      let f = Sp.Real.factor v in
      (* Perturb every entry by a smooth +-10% and replay numerics
         only. *)
      Sp.iter p (fun s row col ->
          let x = Rmat.get dense row col in
          let x' = x *. (1. +. (0.1 *. Float.sin (float_of_int (s + 1)))) in
          Rmat.set dense row col x';
          Sp.Real.set_slot v s x');
      match Sp.Real.refactor f v with
      | exception Sp.Unstable -> QCheck.assume_fail ()
      | () ->
        let b = Array.init n (fun i -> Float.cos (float_of_int i)) in
        let x_dense = Rmat.solve dense b in
        let x_sparse = Sp.Real.solve f b in
        rel_err x_dense x_sparse <= 1e-10)

let prop_csplit_matches_cmat =
  QCheck.Test.make ~name:"complex sparse LU matches Cmat within 1e-10"
    ~count:200 (QCheck.make mna_system_gen) (fun sys ->
      let dense, p, _ = build_mna sys in
      let n = Rmat.rows dense in
      let a = Cmat.create n n in
      let v = Sp.Csplit.create p in
      Sp.iter p (fun s row col ->
          let re = Rmat.get dense row col in
          let im = 0.3 *. Float.sin (float_of_int (s + 2)) in
          Cmat.set a row col { Complex.re; im };
          Sp.Csplit.set_slot v s re im);
      let b =
        Array.init n (fun i ->
            { Complex.re = 1. /. float_of_int (i + 1); im = 0.5 })
      in
      let x_dense = Cmat.solve a b in
      let x_sparse = Sp.Csplit.solve (Sp.Csplit.factor v) b in
      let scale =
        Array.fold_left
          (fun acc (z : Complex.t) -> Float.max acc (Complex.norm z))
          1e-30 x_dense
      in
      let worst = ref 0. in
      Array.iteri
        (fun i (z : Complex.t) ->
          worst :=
            Float.max !worst (Complex.norm (Complex.sub z x_sparse.(i)) /. scale))
        x_dense;
      !worst <= 1e-10)

(* ---------- frequency panels ---------- *)

(* The panel contract is bit-identity, not tolerance: each lane must
   replay the scalar refactor/solve floating-point sequence exactly, and
   a lane must drop its [ok] flag precisely when the scalar replay would
   raise.  These properties drive random MNA systems (with synthetic
   capacitances) through both paths and compare bitwise. *)

let bitwise_eq (a : Complex.t array) (b : Complex.t array) =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Complex.t) (y : Complex.t) ->
         x.Complex.re = y.Complex.re && x.Complex.im = y.Complex.im)
       a b

let prop_panel_bitwise_scalar =
  QCheck.Test.make ~name:"panel lanes replay scalar refactor bit-for-bit"
    ~count:150
    (QCheck.make QCheck.Gen.(pair mna_system_gen (int_range 1 6)))
    (fun (sys, k) ->
      let dense, p, _ = build_mna sys in
      let n = Rmat.rows dense in
      let g = Sp.Real.create p and c = Sp.Real.create p in
      Sp.iter p (fun s row col ->
          Sp.Real.set_slot g s (Rmat.get dense row col);
          Sp.Real.set_slot c s
            (1e-9 *. Float.abs (Float.sin (float_of_int (s + 1)))));
      let omegas =
        Array.init k (fun kk -> 6.28e3 *. (7.3 ** float_of_int kk))
      in
      let vals = Sp.Csplit.create p in
      Sp.Csplit.assemble_gc vals ~g ~c ~omega:omegas.(0);
      let base = Sp.Csplit.factor vals in
      let b =
        Array.init n (fun i ->
            { Complex.re = Float.sin (float_of_int (i + 1)); im = 0.25 })
      in
      let pv = Sp.Csplit.Panel.create p ~k in
      Sp.Csplit.Panel.assemble_gc pv ~g ~c ~omegas;
      let pf = Sp.Csplit.Panel.prepare base ~k in
      Sp.Csplit.Panel.refactor pf pv;
      let xs = Sp.Csplit.Panel.solve pf b in
      let ok = ref true in
      for kk = 0 to k - 1 do
        Sp.Csplit.assemble_gc vals ~g ~c ~omega:omegas.(kk);
        let fc = Sp.Csplit.clone base in
        (match Sp.Csplit.refactor fc vals with
        | exception (Sp.Unstable | Sp.Singular) ->
          if Sp.Csplit.Panel.ok pf kk then ok := false
        | () ->
          if not (Sp.Csplit.Panel.ok pf kk) then ok := false
          else if not (bitwise_eq (Sp.Csplit.solve fc b) xs.(kk)) then
            ok := false)
      done;
      !ok)

let test_panel_unstable_lane () =
  (* Same 2x2 degeneration as [test_unstable_refactor], injected into
     the middle lane of a 3-wide panel: that lane must drop its [ok]
     flag while its neighbours still replay the scalar path exactly. *)
  let bld = Sp.Builder.create 2 in
  List.iter
    (fun (r, c) -> Sp.Builder.add bld r c)
    [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let p = Sp.Builder.compile bld in
  let coords = [| (0, 0); (0, 1); (1, 0); (1, 1) |] in
  let lane_vals =
    [| [| 2.; 1.; 1.; 2. |];  (* good *)
       [| 1e-20; 1.; 1.; 1. |];  (* frozen (0,0) pivot degenerates *)
       [| 3.; 1.; 1.; 4. |] |]  (* good *)
  in
  let set_lane_scalar v lane =
    Array.iteri
      (fun i (r, c) ->
        Sp.Csplit.set_slot v (Sp.slot p ~row:r ~col:c) lane_vals.(lane).(i) 0.)
      coords
  in
  let v = Sp.Csplit.create p in
  set_lane_scalar v 0;
  let base = Sp.Csplit.factor v in
  let pv = Sp.Csplit.Panel.create p ~k:3 in
  Sp.Csplit.Panel.use_lanes pv 3;
  Array.iteri
    (fun lane vals ->
      Array.iteri
        (fun i (r, c) ->
          Sp.Csplit.Panel.set_slot pv (Sp.slot p ~row:r ~col:c) ~lane vals.(i)
            0.)
        coords)
    lane_vals;
  let pf = Sp.Csplit.Panel.prepare base ~k:3 in
  Sp.Csplit.Panel.refactor pf pv;
  Alcotest.(check (list bool))
    "ok flags" [ true; false; true ]
    (List.init 3 (Sp.Csplit.Panel.ok pf));
  let b = [| { Complex.re = 1.; im = 0.5 }; { Complex.re = -2.; im = 0. } |] in
  let xs = Sp.Csplit.Panel.solve pf b in
  List.iter
    (fun lane ->
      set_lane_scalar v lane;
      let fc = Sp.Csplit.clone base in
      Sp.Csplit.refactor fc v;
      Alcotest.(check bool)
        (Printf.sprintf "lane %d bitwise equals scalar replay" lane)
        true
        (bitwise_eq (Sp.Csplit.solve fc b) xs.(lane)))
    [ 0; 2 ];
  set_lane_scalar v 1;
  Alcotest.check_raises "bad lane's values refuse the scalar replay too"
    Sp.Unstable (fun () -> Sp.Csplit.refactor (Sp.Csplit.clone base) v)

let prop_csplit_transposed =
  QCheck.Test.make ~name:"Csplit.solve_transposed solves the adjoint system"
    ~count:200 (QCheck.make mna_system_gen) (fun sys ->
      let dense, p, _ = build_mna sys in
      let n = Rmat.rows dense in
      let a = Cmat.create n n in
      let v = Sp.Csplit.create p in
      Sp.iter p (fun s row col ->
          let re = Rmat.get dense row col in
          let im = 0.3 *. Float.sin (float_of_int (s + 2)) in
          Cmat.set a row col { Complex.re; im };
          Sp.Csplit.set_slot v s re im);
      let b =
        Array.init n (fun i ->
            { Complex.re = Float.cos (float_of_int i); im = 0.1 })
      in
      let y = Sp.Csplit.solve_transposed (Sp.Csplit.factor v) b in
      (* Residual of Aᵀy = b against the dense assembly. *)
      let scale =
        Array.fold_left
          (fun acc (z : Complex.t) -> Float.max acc (Complex.norm z))
          1e-30 b
      in
      let worst = ref 0. in
      for i = 0 to n - 1 do
        let acc = ref Complex.zero in
        for j = 0 to n - 1 do
          acc := Complex.add !acc (Complex.mul (Cmat.get a j i) y.(j))
        done;
        worst :=
          Float.max !worst (Complex.norm (Complex.sub !acc b.(i)) /. scale)
      done;
      !worst <= 1e-9)

let prop_real_transposed =
  QCheck.Test.make ~name:"Real.solve_transposed solves the adjoint system"
    ~count:200 (QCheck.make mna_system_gen) (fun sys ->
      let dense, _, v = build_mna sys in
      let n = Rmat.rows dense in
      let b = Array.init n (fun i -> Float.sin (float_of_int (2 * i) +. 1.)) in
      let y = Sp.Real.solve_transposed (Sp.Real.factor v) b in
      let at = Rmat.create n n in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Rmat.set at i j (Rmat.get dense j i)
        done
      done;
      rel_err (Rmat.solve at b) y <= 1e-9)

(* ---------- golden decks: engine-switched analyses ---------- *)

let golden_decks () =
  let dir =
    List.find Sys.file_exists
      [ Filename.concat "golden" "decks"; Filename.concat "test" "golden/decks" ]
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".sp")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let parse_deck file =
  let text = In_channel.with_open_text file In_channel.input_all in
  Ape_circuit.Spice_parser.parse ~process:proc ~title:file text

let test_golden_sweep_differential () =
  (* Documented tolerance: the engines share stamp values bit-for-bit
     but eliminate in different orders, so solutions agree only to
     rounding.  1e-8 relative is ~6 orders of slack over the observed
     worst case (~1e-15) while still catching any structural bug. *)
  let tol = 1e-8 in
  let freqs = Ac.sweep_frequencies ~fstart:1e2 ~fstop:1e9 () in
  let checked = ref 0 in
  List.iter
    (fun file ->
      match parse_deck file with
      | exception _ -> ()
      | deck -> (
        match Dc.solve deck with
        | exception Dc.No_convergence _ -> ()
        | _ ->
          incr checked;
          let points engine =
            Backend.use engine (fun () ->
                let op = Dc.solve deck in
                (Ac.sweep_prepared (Ac.prepare op) freqs).Ac.points)
          in
          List.iter2
            (fun (d : Ac.solution) (s : Ac.solution) ->
              let scale =
                Array.fold_left
                  (fun acc (z : Complex.t) -> Float.max acc (Complex.norm z))
                  1e-12 d.Ac.x
              in
              Array.iteri
                (fun i (z : Complex.t) ->
                  let err = Complex.norm (Complex.sub z s.Ac.x.(i)) /. scale in
                  if err > tol then
                    Alcotest.failf "%s: dense/sparse drift %g at %g Hz (x%d)"
                      file err d.Ac.freq i)
                d.Ac.x)
            (points Backend.Dense) (points Backend.Sparse)))
    (golden_decks ());
  Alcotest.(check bool) "checked several decks" true (!checked >= 3)

let test_golden_sweep_jobs_bitwise () =
  (* Under the sparse engine, parallel sweeps must stay bit-identical
     to sequential ones: every domain refactors its own clone of the
     shared symbolic factor with identical arithmetic. *)
  Backend.use Backend.Sparse @@ fun () ->
  let freqs = Ac.sweep_frequencies ~fstart:1e2 ~fstop:1e9 () in
  List.iter
    (fun file ->
      match Dc.solve (parse_deck file) with
      | exception Dc.No_convergence _ -> ()
      | op ->
        let p = Ac.prepare op in
        let s1 = (Ac.sweep_prepared ~jobs:1 p freqs).Ac.points in
        let s3 = (Ac.sweep_prepared ~jobs:3 p freqs).Ac.points in
        List.iter2
          (fun (a : Ac.solution) (b : Ac.solution) ->
            Array.iteri
              (fun i (u : Complex.t) ->
                let v = b.Ac.x.(i) in
                if not (u.Complex.re = v.Complex.re && u.Complex.im = v.Complex.im)
                then
                  Alcotest.failf "%s: jobs=1 vs jobs=3 differ at %g Hz" file
                    a.Ac.freq)
              a.Ac.x)
          s1 s3)
    (golden_decks ())

let test_golden_sweep_panel_width_bitwise () =
  (* Whatever the panel width — including widths that leave a partial
     trailing panel — a sparse sweep must reproduce the per-frequency
     path bit for bit. *)
  Backend.use Backend.Sparse @@ fun () ->
  let freqs = Ac.sweep_frequencies ~fstart:1e2 ~fstop:1e9 () in
  let k0 = Ac.panel_width () in
  Fun.protect ~finally:(fun () -> Ac.set_panel_width k0) @@ fun () ->
  List.iter
    (fun file ->
      match Dc.solve (parse_deck file) with
      | exception Dc.No_convergence _ -> ()
      | op ->
        let p = Ac.prepare op in
        let points k =
          Ac.set_panel_width k;
          (Ac.sweep_prepared p freqs).Ac.points
        in
        let reference = points 1 in
        List.iter
          (fun k ->
            List.iter2
              (fun (a : Ac.solution) (b : Ac.solution) ->
                Array.iteri
                  (fun i (u : Complex.t) ->
                    let v = b.Ac.x.(i) in
                    if
                      not
                        (u.Complex.re = v.Complex.re
                        && u.Complex.im = v.Complex.im)
                    then
                      Alcotest.failf "%s: width 1 vs %d differ at %g Hz" file k
                        a.Ac.freq)
                  a.Ac.x)
              reference (points k))
          [ 3; 8; 16 ])
    (golden_decks ())

let test_golden_dc_differential () =
  List.iter
    (fun file ->
      let deck = parse_deck file in
      let solve engine =
        Backend.use engine (fun () ->
            match Dc.solve deck with
            | exception Dc.No_convergence _ -> None
            | op -> Some op.Dc.x)
      in
      match (solve Backend.Dense, solve Backend.Sparse) with
      | Some xd, Some xs ->
        if rel_err xd xs > 1e-6 then
          Alcotest.failf "%s: DC dense/sparse drift %g" file (rel_err xd xs)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: engines disagree about convergence" file)
    (golden_decks ())

(* ---------- transient invariants under the sparse engine ---------- *)

let counter snap name =
  try List.assoc name snap.Ape_obs.counters with Not_found -> 0

let test_transient_counters_sparse () =
  Backend.use Backend.Sparse @@ fun () ->
  let deck = parse_deck (List.hd (golden_decks ())) in
  Ape_obs.enable ();
  Ape_obs.reset ();
  let op = Dc.solve deck in
  let source =
    List.find_map
      (fun e -> match e with N.Vsource { name; _ } -> Some name | _ -> None)
      (N.elements deck)
    |> Option.get
  in
  let stim = [ (source, Tr.step ~t0:1e-7 ~high:1. ()) ] in
  let _ = Tr.run ~stimulus:stim ~tstop:2e-6 ~dt:2e-8 op in
  let snap = Ape_obs.snapshot () in
  Ape_obs.disable ();
  let steps = counter snap "transient.steps"
  and solves = counter snap "transient.solves"
  and cuts = counter snap "transient.step_cuts" in
  Alcotest.(check bool) "ran steps" true (steps > 0);
  (* Same accounting as the dense engine (locked since the step-cutting
     controller landed): each cut retries as two half-steps. *)
  Alcotest.(check int) "solves = steps + 2*cuts" (steps + (2 * cuts)) solves;
  Alcotest.(check bool) "sparse engine actually used" true
    (counter snap "sparse.symbolic" > 0)

let test_transient_waveform_differential () =
  let deck = parse_deck (List.hd (golden_decks ())) in
  let source =
    List.find_map
      (fun e -> match e with N.Vsource { name; _ } -> Some name | _ -> None)
      (N.elements deck)
    |> Option.get
  in
  let stim = [ (source, Tr.step ~t0:1e-7 ~high:1. ()) ] in
  let run engine =
    Backend.use engine (fun () ->
        let op = Dc.solve deck in
        Tr.run ~stimulus:stim ~tstop:2e-6 ~dt:2e-8 op)
  in
  let rd = run Backend.Dense and rs = run Backend.Sparse in
  List.iter2
    (fun (name, yd) (name', ys) ->
      Alcotest.(check string) "node order" name name';
      Array.iteri
        (fun k v ->
          if Float.abs (v -. ys.(k)) > 1e-6 *. Float.max 1. (Float.abs v) then
            Alcotest.failf "node %s sample %d: dense %g vs sparse %g" name k v
              ys.(k))
        yd)
    rd.Tr.nodes rs.Tr.nodes

(* ---------- metamorphic: ape verify under the sparse engine ---------- *)

let test_verify_golden_under_sparse () =
  (* The full differential-verification catalog, gated against the same
     golden tables the dense engine maintains: switching the linear
     solver must not change any published behaviour.  (CMRR is compared
     at its documented looser tolerance — see Golden.compare_rows.) *)
  let module C = Ape_check in
  let golden_dir =
    List.find Sys.file_exists [ "golden"; Filename.concat "test" "golden" ]
  in
  Backend.use Backend.Sparse @@ fun () ->
  let outcome =
    C.Check.run ~slew:false ~golden_dir ~levels:[ C.Tolerance.Basic ] proc
  in
  List.iter
    (fun (r : C.Check.level_result) ->
      List.iter
        (fun (d : C.Golden.drift) ->
          Alcotest.failf "golden drift under sparse: %s/%s: %s" d.C.Golden.case
            d.C.Golden.attr d.C.Golden.what)
        r.C.Check.drifts)
    outcome.C.Check.results;
  Alcotest.(check bool) "tolerance gates pass" true
    (C.Check.failures outcome = [])

(* ---------- suite ---------- *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_sparse"
    [
      ( "pattern",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basics;
          Alcotest.test_case "min_degree permutation" `Quick
            test_min_degree_permutation;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "0x0 system" `Quick test_empty_system;
          Alcotest.test_case "1x1 system" `Quick test_one_by_one;
          Alcotest.test_case "structurally singular" `Quick
            test_structurally_singular;
          Alcotest.test_case "numerically singular" `Quick
            test_numerically_singular;
          Alcotest.test_case "unstable refactor" `Quick test_unstable_refactor;
          Alcotest.test_case "clone independence" `Quick test_clone_independent;
        ] );
      qsuite "differential-properties"
        [
          prop_sparse_matches_dense; prop_refactor_matches_fresh;
          prop_csplit_matches_cmat; prop_csplit_transposed;
          prop_real_transposed;
        ];
      ( "panel",
        List.map QCheck_alcotest.to_alcotest [ prop_panel_bitwise_scalar ]
        @ [
            Alcotest.test_case "injected unstable lane" `Quick
              test_panel_unstable_lane;
          ] );
      ( "golden-decks",
        [
          Alcotest.test_case "AC sweep dense vs sparse" `Quick
            test_golden_sweep_differential;
          Alcotest.test_case "sparse sweep jobs bitwise" `Quick
            test_golden_sweep_jobs_bitwise;
          Alcotest.test_case "sparse sweep panel width bitwise" `Quick
            test_golden_sweep_panel_width_bitwise;
          Alcotest.test_case "DC dense vs sparse" `Quick
            test_golden_dc_differential;
        ] );
      ( "transient",
        [
          Alcotest.test_case "counter invariant under sparse" `Quick
            test_transient_counters_sparse;
          Alcotest.test_case "waveform dense vs sparse" `Quick
            test_transient_waveform_differential;
        ] );
      ( "verify",
        [
          Alcotest.test_case "golden tables unchanged under sparse" `Slow
            test_verify_golden_under_sparse;
        ] );
    ]
