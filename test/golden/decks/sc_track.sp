* switched track stage with a buffered hold node
VIN in 0 DC 2.5 AC 0.5
VCK ck 0 DC 5
W1 in hold ck RON=2k ROFF=1T VT=2.5
CH hold 0 10p
E1 out 0 hold 0 2
RL out 0 100k
.END
