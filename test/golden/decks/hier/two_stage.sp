.TITLE two-stage resistive amplifier
* Demonstrates the ingestion front end: .PARAM expressions, .INCLUDE,
* parameterized .SUBCKT instances and recorded analysis directives.
* Flatten it with:  ape convert examples/decks/two_stage.sp
.PARAM wbase=2u
.INCLUDE cs_stage.inc

VDD vdd 0 DC 5
VIN in 0 DC 1.5 AC 1

* First stage: 4x the base width; second stage: 2x, explicit load.
X1 in n1 vdd csamp w={4*wbase} rload=20k
X2 n1 out vdd csamp w={2*wbase} rload=40k

CL out 0 1p

.OP
.AC DEC 10 1k 100meg
.END
