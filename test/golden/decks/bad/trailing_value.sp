* a bare value after an explicit DC clause used to silently win
V1 1 0 DC 0 5
R1 1 0 1k
.END
