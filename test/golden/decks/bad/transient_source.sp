V1 in 0 SIN(0 1 1k)
R1 in 0 1k
.END
