.PARAM x={1+}
R1 a 0 {nope}
V1 a 0 5
.END
