.SUBCKT loop a b
X1 a b loop
.ENDS
X1 n1 0 loop
V1 n1 0 5
.END
