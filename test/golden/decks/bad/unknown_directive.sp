.wibble 3 4
V1 a 0 5
R1 a 0 1k
.END
