.SUBCKT amp in out
R1 in out 1k
V1 x 0 5
.END
