+ R1 a b 1k
V1 a 0 5
R1 a 0 1k
.END
