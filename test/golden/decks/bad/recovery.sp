* several independent mistakes; all of them must be reported
M1 d g s b NOSUCH W=1u L=1u
R1 a 0
M2 d g s 0 NMOS L=1u
V1 d 0 5
.END
