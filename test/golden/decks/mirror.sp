* simple NMOS current mirror on the process default card
VDD vdd 0 DC 5
IB vdd ref DC 20u
M1 ref ref 0 0 NMOS W=10u L=2.4u
M2 out ref 0 0 NMOS W=10u L=2.4u
RL vdd out 10k
.END
