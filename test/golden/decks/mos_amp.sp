* common-source NMOS amplifier with an explicit model card
.MODEL NCS NMOS (LEVEL=1 VTO=0.62 KP=1.1e-4 GAMMA=0.4 PHI=0.65 LAMBDA=0.04 TOX=2.0e-8 CGSO=2.1e-10 CGDO=2.1e-10 CJ=3e-4 MJ=0.5 PB=0.8)
VDD vdd 0 DC 5
VIN g 0 DC 1.2 AC 1m
M1 d g 0 0 NCS W=20u L=1.2u
RD vdd d 47k
CL d 0 1p
.END
