(* Tests for lib/mc: deterministic parallel map, Welford statistics,
   synthetic-yield calibration, jobs-independence of whole reports, and
   corner-vs-3-sigma bracketing of the variation model. *)

module Rng = Ape_util.Rng
module Mc = Ape_mc
module Stats = Ape_mc.Stats
module Pool = Ape_mc.Pool
module Run = Ape_mc.Run
module Variation = Ape_mc.Variation
module Proc = Ape_process.Process
module Card = Ape_process.Model_card
module E = Ape_estimator

let proc = Proc.c12
let check_float = Alcotest.(check (float 1e-12))

let check_bits msg a b =
  Alcotest.(check int64)
    (Printf.sprintf "%s: %.17g vs %.17g" msg a b)
    (Int64.bits_of_float a) (Int64.bits_of_float b)

(* ---------- Pool ---------- *)

let test_pool_matches_sequential () =
  let f i = (i * i) + 1 in
  let expected = Array.init 100 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs 100 f))
    [ 1; 2; 3; 4; 7; 100; 200 ]

let test_pool_empty_and_small () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "single" [| 0 |] (Pool.map ~jobs:4 1 (fun i -> i))

let test_pool_exception () =
  Alcotest.check_raises "worker exception resurfaces" (Failure "boom")
    (fun () ->
      ignore (Pool.map ~jobs:4 50 (fun i -> if i = 37 then failwith "boom" else i)))

(* ---------- Stats ---------- *)

let naive_variance xs =
  let n = float_of_int (Array.length xs) in
  let mean = Array.fold_left ( +. ) 0. xs /. n in
  Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)

let test_welford_vs_naive () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let s = Stats.create () in
  Array.iter (Stats.add s) xs;
  check_float "mean" 5.0 (Stats.mean s);
  check_float "variance" (naive_variance xs) (Stats.variance s);
  (* Welford's advantage: a huge common offset must not destroy the
     variance (the naive sum-of-squares formulation loses all digits
     here; the two-pass naive form above survives, Welford must too). *)
  let offset = 1e9 in
  let s2 = Stats.create () in
  Array.iter (fun x -> Stats.add s2 (x +. offset)) xs;
  Alcotest.(check bool)
    "variance stable under 1e9 offset" true
    (Float.abs (Stats.variance s2 -. Stats.variance s) < 1e-4);
  check_float "min" 2.0 (Stats.min_value s);
  check_float "max" 9.0 (Stats.max_value s);
  Alcotest.(check int) "count" 8 (Stats.count s)

let test_stats_quantiles () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ];
  check_float "q0 = min" 1. (Stats.quantile s 0.);
  check_float "q1 = max" 9. (Stats.quantile s 1.);
  check_float "median interpolates" 3.5 (Stats.quantile s 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0,1]") (fun () ->
      ignore (Stats.quantile s 1.5))

let test_stats_histogram () =
  let s = Stats.create () in
  for i = 0 to 99 do
    Stats.add s (float_of_int i)
  done;
  let h = Stats.histogram ~bins:10 s in
  Alcotest.(check int) "bins" 10 (Array.length h);
  Array.iter
    (fun b -> Alcotest.(check int) "uniform fill" 10 b.Stats.b_count)
    h;
  check_float "first lo" 0. h.(0).Stats.b_lo;
  check_float "last hi" 99. h.(9).Stats.b_hi;
  let constant = Stats.create () in
  List.iter (Stats.add constant) [ 5.; 5.; 5. ];
  let hc = Stats.histogram ~bins:4 constant in
  Alcotest.(check int) "identical samples in bin 0" 3 hc.(0).Stats.b_count

(* ---------- Run: synthetic yield with known pass probability ---------- *)

let test_synthetic_yield () =
  (* metric ~ N(0,1); P(x <= 1.6449) = 0.95.  2000 samples give a
     binomial std of ~0.5 %, so +/-2 % is a 4-sigma band. *)
  let config = { Run.samples = 2000; jobs = 1; seed = 7 } in
  let measure rng _i = [ ("x", Rng.gauss rng ~mean:0. ~sigma:1.) ] in
  let report =
    Run.run ~checks:[ Run.at_most "x" 1.6448536 ] config ~measure
  in
  Alcotest.(check bool)
    (Printf.sprintf "yield %.3f near 0.95" report.Run.yield)
    true
    (Float.abs (report.Run.yield -. 0.95) < 0.02);
  let m = Option.get (Run.metric report "x") in
  Alcotest.(check bool) "mean near 0" true
    (Float.abs (Stats.mean m.Run.m_stats) < 0.07);
  Alcotest.(check bool) "std near 1" true
    (Float.abs (Stats.std m.Run.m_stats -. 1.) < 0.07)

let test_run_failures () =
  let config = { Run.samples = 10; jobs = 2; seed = 1 } in
  let measure _rng i =
    if i mod 2 = 0 then failwith "dead die" else [ ("x", 1.0) ]
  in
  let report =
    Run.run ~checks:[ Run.at_least "x" 0.5 ] config ~measure
  in
  Alcotest.(check int) "failures" 5 report.Run.failures;
  Alcotest.(check int) "passes" 5 report.Run.pass;
  check_float "failed dies stay in the denominator" 0.5 report.Run.yield;
  (match report.Run.failure_example with
  | Some (0, msg) ->
    Alcotest.(check bool) "message kept" true
      (String.length msg > 0)
  | other ->
    Alcotest.failf "expected failure example at sample 0, got %s"
      (match other with None -> "none" | Some (i, _) -> string_of_int i))

(* ---------- Determinism: whole report invariant under jobs ---------- *)

let opamp_report jobs =
  let spec = E.Opamp.spec ~av:200. ~ugf:2e6 ~ibias:1e-6 ~cl:10e-12 () in
  let measure, checks =
    Mc.Scenario.opamp ~level:Mc.Scenario.Estimate proc spec
  in
  Run.run ~checks { Run.samples = 160; jobs; seed = 1999 } ~measure

let test_determinism_across_jobs () =
  let base = opamp_report 1 in
  List.iter
    (fun jobs ->
      let r = opamp_report jobs in
      Alcotest.(check int)
        (Printf.sprintf "pass count jobs=%d" jobs)
        base.Run.pass r.Run.pass;
      Alcotest.(check int)
        (Printf.sprintf "failures jobs=%d" jobs)
        base.Run.failures r.Run.failures;
      List.iter2
        (fun (bm : Run.metric_summary) (rm : Run.metric_summary) ->
          Alcotest.(check string) "metric order" bm.Run.m_name rm.Run.m_name;
          let tag what = Printf.sprintf "%s %s jobs=%d" bm.Run.m_name what jobs in
          check_bits (tag "mean") (Stats.mean bm.Run.m_stats)
            (Stats.mean rm.Run.m_stats);
          check_bits (tag "variance")
            (Stats.variance bm.Run.m_stats)
            (Stats.variance rm.Run.m_stats);
          check_bits (tag "min")
            (Stats.min_value bm.Run.m_stats)
            (Stats.min_value rm.Run.m_stats);
          check_bits (tag "max")
            (Stats.max_value bm.Run.m_stats)
            (Stats.max_value rm.Run.m_stats);
          check_bits (tag "q95")
            (Stats.quantile bm.Run.m_stats 0.95)
            (Stats.quantile rm.Run.m_stats 0.95);
          Alcotest.(check int) (tag "worst sample") bm.Run.m_min.Run.sample
            rm.Run.m_min.Run.sample)
        base.Run.metrics r.Run.metrics)
    [ 2; 3; 4; 8 ]

(* ---------- Variation model ---------- *)

let test_shared_oxide () =
  let p = Variation.sample (Rng.create 5) Variation.default in
  check_float "tox factor shared across polarities"
    p.Proc.nmos.Card.tox_factor p.Proc.pmos.Card.tox_factor

let test_perturb_consistency () =
  let rng = Rng.create 9 in
  let p = Variation.perturb rng Variation.default proc in
  (* KP = u0 * Cox must survive perturbation in both cards. *)
  List.iter
    (fun (card : Card.t) ->
      Alcotest.(check bool)
        (card.Card.name ^ ": kp = u0 * cox")
        true
        (Float.abs ((card.Card.u0 *. Card.cox card /. card.Card.kp) -. 1.)
        < 1e-9))
    [ p.Proc.nmos; p.Proc.pmos ];
  Alcotest.(check bool) "pmos vto stays negative" true (p.Proc.pmos.Card.vto < 0.)

let test_corner_brackets_3sigma () =
  (* Process.corner's Slow/Fast (KP x0.85/x1.15, |VTO| +/-0.1 V) must
     bracket mean +/- 3 sigma of the sampled distribution — the corners
     are the pessimistic envelope of the statistical model. *)
  let n = 400 in
  let streams = Rng.split_n (Rng.create 2026) n in
  let kp = Stats.create () and vto = Stats.create () in
  Array.iter
    (fun rng ->
      let p = Variation.perturb rng Variation.default proc in
      Stats.add kp p.Proc.nmos.Card.kp;
      Stats.add vto p.Proc.nmos.Card.vto)
    streams;
  let slow = Proc.corner Proc.Slow proc and fast = Proc.corner Proc.Fast proc in
  let check_brackets name stats lo hi =
    let m = Stats.mean stats and s = Stats.std stats in
    Alcotest.(check bool)
      (Printf.sprintf "%s: [%g, %g] brackets mean %g +/- 3*%g" name lo hi m s)
      true
      (lo <= m -. (3. *. s) && m +. (3. *. s) <= hi)
  in
  check_brackets "nmos kp" kp slow.Proc.nmos.Card.kp fast.Proc.nmos.Card.kp;
  check_brackets "nmos vto" vto fast.Proc.nmos.Card.vto slow.Proc.nmos.Card.vto

let test_pelgrom_mismatch () =
  let card = proc.Proc.nmos in
  let sigma = Variation.sigma_delta_vto card ~w:10e-6 ~l:2e-6 in
  check_float "pelgrom sigma"
    (card.Card.avt /. Float.sqrt (10e-6 *. 2e-6))
    sigma;
  Alcotest.(check bool) "bigger devices match better" true
    (Variation.sigma_delta_vto card ~w:40e-6 ~l:2e-6 < sigma);
  let rng = Rng.create 3 in
  let n = 3000 in
  let sum2 = ref 0. in
  for _ = 1 to n do
    let d = Variation.mismatch_vto rng card ~w:10e-6 ~l:2e-6 in
    sum2 := !sum2 +. (d *. d)
  done;
  let measured = Float.sqrt (!sum2 /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "sampled sigma %.3g near %.3g" measured sigma)
    true
    (Float.abs ((measured /. sigma) -. 1.) < 0.08)

(* ---------- Report rendering ---------- *)

let contains ~substring s =
  let n = String.length s and m = String.length substring in
  let rec loop i = i + m <= n && (String.sub s i m = substring || loop (i + 1)) in
  loop 0

let test_report_renders () =
  let report = opamp_report 2 in
  let text =
    Mc.Report.to_string ~histograms:[ "gain"; "nonexistent" ] report
  in
  Alcotest.(check bool) "mentions yield" true (contains ~substring:"yield" text);
  Alcotest.(check bool) "mentions gain" true (contains ~substring:"gain" text);
  Alcotest.(check bool) "missing metric handled" true
    (contains ~substring:"no samples" text)

let () =
  Alcotest.run "mc"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "empty and small" `Quick test_pool_empty_and_small;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford vs naive" `Quick test_welford_vs_naive;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "run",
        [
          Alcotest.test_case "synthetic yield" `Quick test_synthetic_yield;
          Alcotest.test_case "failed samples" `Quick test_run_failures;
          Alcotest.test_case "determinism across jobs" `Quick
            test_determinism_across_jobs;
        ] );
      ( "variation",
        [
          Alcotest.test_case "shared oxide" `Quick test_shared_oxide;
          Alcotest.test_case "kp/u0/tox consistency" `Quick
            test_perturb_consistency;
          Alcotest.test_case "corners bracket 3 sigma" `Quick
            test_corner_brackets_3sigma;
          Alcotest.test_case "pelgrom mismatch" `Quick test_pelgrom_mismatch;
        ] );
      ( "report",
        [ Alcotest.test_case "renders" `Quick test_report_renders ] );
    ]
