#!/bin/sh
# Tier-1 verification, mechanically: what every PR must keep green.
# Usage: ./ci.sh
set -eu

echo "== dune build @all =="
dune build @all

echo "== dune runtest (dense engine) =="
dune runtest

echo "== dune runtest (sparse engine) =="
# dune caches runtest results without tracking env vars: force a re-run.
APE_ENGINE=sparse dune runtest --force

echo "== ape verify (APE vs SPICE differential gate, both engines) =="
dune exec bin/ape.exe -- verify --golden test/golden
dune exec bin/ape.exe -- verify --engine sparse --golden test/golden

echo "== prepared-solve AC equivalence (bit-identity vs solve_at) =="
dune exec test/test_spice.exe -- test prepared

echo "== observability bit-identity (obs on/off, pool jobs 1 vs N) =="
dune exec test/test_obs.exe -- test bit-identity

echo "== ape stats --json CI artifact (verify workload) =="
dune exec bin/ape.exe -- stats --workload verify --quick --json > ape_stats.json
grep -q '"schema": "ape-obs/1"' ape_stats.json
echo "wrote ape_stats.json"

echo "== observability overhead gate (<= 2% on the 181-point sweep) =="
dune exec bench/main.exe -- obs-overhead
awk -F': *|,' '/"overhead_pct"/ { pct = $2 }
  /"bit_identical"/ { bit = $2 }
  END {
    if (bit != "true") { print "FAIL: results not bit-identical"; exit 1 }
    if (pct + 0. > 2.0) { printf "FAIL: obs overhead %.2f%% > 2%%\n", pct; exit 1 }
    printf "obs overhead %.2f%% <= 2%% OK\n", pct
  }' BENCH_obs.json

echo "== ape synth determinism (3 chains: jobs 1 vs jobs 3, fixed seed) =="
# Wall time and cache hit counts legitimately vary with scheduling; every
# other line (result, evaluations, exchange counts, sized values) must be
# bit-identical whatever the worker count.
dune exec bin/ape.exe -- synth --gain 200 --ugf 2meg --seed 7 --chains 3 --jobs 1 \
  | grep -v '^time:' | grep -v '^cache:' > /tmp/ape_synth_jobs1.txt
dune exec bin/ape.exe -- synth --gain 200 --ugf 2meg --seed 7 --chains 3 --jobs 3 \
  | grep -v '^time:' | grep -v '^cache:' > /tmp/ape_synth_jobs3.txt
diff /tmp/ape_synth_jobs1.txt /tmp/ape_synth_jobs3.txt
rm -f /tmp/ape_synth_jobs1.txt /tmp/ape_synth_jobs3.txt

echo "== parallel-tempering bench (>= 2x time-to-target at 4 chains) =="
dune exec bench/main.exe -- anneal
awk -F': *|,' '/"target_reached"/ { reached = $2 }
  /"speedup"/ { speedup = $2 }
  END {
    if (reached != "true") { print "FAIL: tempered run missed the target cost"; exit 1 }
    if (speedup + 0. < 2.0) { printf "FAIL: tempering speedup %.2fx < 2x\n", speedup; exit 1 }
    printf "tempering speedup %.2fx >= 2x OK\n", speedup
  }' BENCH_anneal.json
echo "archived BENCH_anneal.json"

echo "== ape serve smoke (30 jobs x 2 passes through one daemon) =="
dune exec bin/ape.exe -- serve --jobs 4 \
  examples/jobs/smoke30.jobs examples/jobs/smoke30.jobs > /tmp/ape_serve_smoke.jsonl
# Exit 0 above already means no failed/unmet/overloaded record; assert it
# explicitly anyway, plus a warm cache on the second pass.
if grep -q '"status":"failed"\|"status":"parse-error"\|"status":"unmet"' \
    /tmp/ape_serve_smoke.jsonl; then
  echo "FAIL: smoke batch produced failing records"; exit 1
fi
records=$(grep -c '"schema"' /tmp/ape_serve_smoke.jsonl)
[ "$records" -eq 62 ] || { echo "FAIL: expected 62 records, got $records"; exit 1; }
hits=$(tail -n 1 /tmp/ape_serve_smoke.jsonl | sed 's/.*"cache_hits":\([0-9]*\).*/\1/')
[ "$hits" -gt 0 ] || { echo "FAIL: second pass had no cache hits"; exit 1; }
echo "smoke OK: 62 records, second-pass cache hits $hits"
rm -f /tmp/ape_serve_smoke.jsonl

echo "== ape serve determinism (fixed-seed batch, jobs 1 vs jobs 3) =="
dune exec bin/ape.exe -- serve --deterministic --jobs 1 \
  examples/jobs/determinism.jobs > /tmp/ape_serve_det1.jsonl
dune exec bin/ape.exe -- serve --deterministic --jobs 3 \
  examples/jobs/determinism.jobs > /tmp/ape_serve_det3.jsonl
diff /tmp/ape_serve_det1.jsonl /tmp/ape_serve_det3.jsonl
rm -f /tmp/ape_serve_det1.jsonl /tmp/ape_serve_det3.jsonl

echo "== serve bench (warm cache >= 2x cold-start-per-job) =="
dune exec bench/main.exe -- serve
awk -F': *|,' '/"speedup"/ { speedup = $2 }
  /"warm_cache_hit_rate"/ { rate = $2 }
  END {
    if (rate + 0. <= 0.) { print "FAIL: warm pass hit no cache"; exit 1 }
    if (speedup + 0. < 2.0) { printf "FAIL: serve speedup %.2fx < 2x\n", speedup; exit 1 }
    printf "serve warm/cold speedup %.2fx >= 2x OK\n", speedup
  }' BENCH_serve.json
echo "archived BENCH_serve.json"

echo "== sparse engine differential (ape sim --deterministic, dense vs sparse) =="
dune exec bin/ape.exe -- sim examples/jobs/rc.sp --out out --deterministic \
  --engine dense > /tmp/ape_sim_dense.txt
dune exec bin/ape.exe -- sim examples/jobs/rc.sp --out out --deterministic \
  --engine sparse > /tmp/ape_sim_sparse.txt
diff /tmp/ape_sim_dense.txt /tmp/ape_sim_sparse.txt
rm -f /tmp/ape_sim_dense.txt /tmp/ape_sim_sparse.txt

echo "== sparse engine bench (>= 3x on the 200-section ladder sweep) =="
dune exec bench/main.exe -- sparse
awk -F': *|,' '/"speedup"/ && !/"curve"/ { speedup = $2 }
  /"max_rel_err"/ { err = $2 }
  /"unstable_refactorizations"/ { unstable = $2 }
  END {
    if (err + 0. > 1e-8) { printf "FAIL: dense/sparse drift %g > 1e-8\n", err; exit 1 }
    if (unstable + 0. != 0) { printf "FAIL: %d unstable refactorizations\n", unstable; exit 1 }
    if (speedup + 0. < 3.0) { printf "FAIL: sparse speedup %.2fx < 3x\n", speedup; exit 1 }
    printf "sparse speedup %.2fx >= 3x, max drift %g OK\n", speedup, err
  }' BENCH_sparse.json
echo "archived BENCH_sparse.json"

echo "== blocked sweep bench (>= 2x vs per-frequency at 200 sections) =="
dune exec bench/main.exe -- sweep
awk -F': *|,' '/"blocked_speedup"/ { sp = $2 }
  /"panel_bit_identical"/ { bit = $2 }
  /"fresh_workspaces_per_sweep"/ { fresh = $2 }
  /"blocked_workspaces_per_sweep"/ { blocked = $2 }
  /"noise_direct_solves"/ { direct = $2 }
  /"noise_adjoint_solves"/ { adj = $2 }
  END {
    if (bit != "true") { print "FAIL: panel results not bit-identical"; exit 1 }
    if (sp + 0. < 2.0) { printf "FAIL: blocked speedup %.2fx < 2x\n", sp; exit 1 }
    if (adj + 0 != 1) { printf "FAIL: %d adjoint solves at one frequency (want 1)\n", adj; exit 1 }
    if (direct + 0 < 2) { printf "FAIL: direct reference made only %d solves\n", direct; exit 1 }
    if (blocked + 0 >= fresh + 0) {
      printf "FAIL: blocked sweep cloned %d workspaces (fresh path: %d)\n", blocked, fresh; exit 1 }
    printf "blocked %.2fx >= 2x, adjoint solves %d, workspaces %d -> %d OK\n", sp, adj, fresh, blocked
  }' BENCH_sweep.json
echo "archived BENCH_sweep.json"

echo "== panel solver bit-identity (panel-vs-scalar, unstable lanes, adjoint) =="
dune exec test/test_sparse.exe -- test panel
dune exec test/test_sparse.exe -- test golden-decks

echo "== panel width differential (ape sim --deterministic, width 1 vs default) =="
APE_PANEL_WIDTH=1 dune exec bin/ape.exe -- sim examples/jobs/rc.sp --out out \
  --deterministic --engine sparse > /tmp/ape_sim_w1.txt
dune exec bin/ape.exe -- sim examples/jobs/rc.sp --out out \
  --deterministic --engine sparse > /tmp/ape_sim_wk.txt
diff /tmp/ape_sim_w1.txt /tmp/ape_sim_wk.txt
rm -f /tmp/ape_sim_w1.txt /tmp/ape_sim_wk.txt

echo "== ape convert round-trip (fixpoint over the golden corpus) =="
# convert(a) -> b, convert(b) -> c: b and c must be byte-identical, and a
# clean deck must produce zero diagnostics on stderr.
for deck in test/golden/decks/*.sp examples/decks/two_stage.sp; do
  dune exec bin/ape.exe -- convert "$deck" --out /tmp/ape_conv_b.sp \
    2> /tmp/ape_conv_diag.txt
  [ -s /tmp/ape_conv_diag.txt ] && {
    echo "FAIL: $deck produced diagnostics:"; cat /tmp/ape_conv_diag.txt; exit 1; }
  dune exec bin/ape.exe -- convert /tmp/ape_conv_b.sp --out /tmp/ape_conv_c.sp
  diff /tmp/ape_conv_b.sp /tmp/ape_conv_c.sp \
    || { echo "FAIL: $deck does not reach a convert fixpoint"; exit 1; }
done
rm -f /tmp/ape_conv_b.sp /tmp/ape_conv_c.sp /tmp/ape_conv_diag.txt
echo "convert fixpoint OK"

echo "== ape convert malformed corpus (exit 1 + span diagnostics) =="
for deck in test/golden/decks/bad/*.sp; do
  if dune exec bin/ape.exe -- convert "$deck" \
      > /dev/null 2> /tmp/ape_conv_err.txt; then
    echo "FAIL: $deck was accepted"; exit 1
  fi
  grep -q "error:" /tmp/ape_conv_err.txt \
    || { echo "FAIL: $deck produced no error diagnostic"; exit 1; }
done
rm -f /tmp/ape_conv_err.txt
echo "malformed corpus OK"

echo "== subckt flattening differential (hier vs hand-flat, both engines) =="
# The flattened example deck is the exact convert output of the
# hierarchical one, and both must simulate bit-identically.
dune exec bin/ape.exe -- convert examples/decks/two_stage.sp \
  > /tmp/ape_flat_now.sp
diff examples/decks/two_stage_flat.sp /tmp/ape_flat_now.sp \
  || { echo "FAIL: checked-in flat deck is stale; regenerate with ape convert"; exit 1; }
rm -f /tmp/ape_flat_now.sp
for engine in dense sparse; do
  dune exec bin/ape.exe -- sim examples/decks/two_stage.sp --out out \
    --deterministic --engine "$engine" > /tmp/ape_hier.txt
  dune exec bin/ape.exe -- sim examples/decks/two_stage_flat.sp --out out \
    --deterministic --engine "$engine" > /tmp/ape_flat.txt
  diff /tmp/ape_hier.txt /tmp/ape_flat.txt \
    || { echo "FAIL: hier/flat mismatch under --engine $engine"; exit 1; }
done
rm -f /tmp/ape_hier.txt /tmp/ape_flat.txt
echo "hier/flat differential OK"

echo "== ape mc determinism (jobs 1 vs jobs 4) =="
dune exec bin/ape.exe -- mc opamp --gain 200 --ugf 2meg --samples 200 --jobs 1 \
  | grep -v '^Monte Carlo:' > /tmp/ape_mc_jobs1.txt
dune exec bin/ape.exe -- mc opamp --gain 200 --ugf 2meg --samples 200 --jobs 4 \
  | grep -v '^Monte Carlo:' > /tmp/ape_mc_jobs4.txt
diff /tmp/ape_mc_jobs1.txt /tmp/ape_mc_jobs4.txt
rm -f /tmp/ape_mc_jobs1.txt /tmp/ape_mc_jobs4.txt

echo "== ape calibrate determinism (8-point grid, jobs 1 vs jobs 3) =="
# The card is fitted from Pool-mapped grid samples with per-point split
# RNG streams; the printed card must be byte-identical for any worker
# count.
dune exec bin/ape.exe -- calibrate --points 8 --seed 5 --jobs 1 \
  --out /tmp/ape_card_jobs1.calib > /dev/null
dune exec bin/ape.exe -- calibrate --points 8 --seed 5 --jobs 3 \
  --out /tmp/ape_card_jobs3.calib > /dev/null
diff /tmp/ape_card_jobs1.calib /tmp/ape_card_jobs3.calib

echo "== ape verify --calibration (calibrated run against the goldens) =="
# Golden tables persist the raw estimates, so a calibrated run must
# still match them; hardening guarantees no gated attribute worsens.
dune exec bin/ape.exe -- verify --calibration /tmp/ape_card_jobs1.calib \
  --golden test/golden
rm -f /tmp/ape_card_jobs1.calib /tmp/ape_card_jobs3.calib

echo "== calibration bench (calibrated catalog error <= raw) =="
dune exec bench/main.exe -- calib
awk -F': *|,' '/"raw_max_err"/ { raw = $2 }
  /"cal_max_err"/ { cal = $2 }
  /"improved"/ { improved = $2 }
  END {
    if (cal + 0. > raw + 0.) {
      printf "FAIL: calibrated max error %.4f > raw %.4f\n", cal, raw; exit 1 }
    if (improved != "true") { print "FAIL: card did not improve the catalog"; exit 1 }
    printf "calibrated max error %.4f <= raw %.4f OK\n", cal, raw
  }' BENCH_calib.json
echo "archived BENCH_calib.json"

echo "CI OK"
