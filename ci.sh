#!/bin/sh
# Tier-1 verification, mechanically: what every PR must keep green.
# Usage: ./ci.sh
set -eu

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== ape verify (APE vs SPICE differential gate) =="
dune exec bin/ape.exe -- verify --golden test/golden

echo "== prepared-solve AC equivalence (bit-identity vs solve_at) =="
dune exec test/test_spice.exe -- test prepared

echo "== ape mc determinism (jobs 1 vs jobs 4) =="
dune exec bin/ape.exe -- mc opamp --gain 200 --ugf 2meg --samples 200 --jobs 1 \
  | grep -v '^Monte Carlo:' > /tmp/ape_mc_jobs1.txt
dune exec bin/ape.exe -- mc opamp --gain 200 --ugf 2meg --samples 200 --jobs 4 \
  | grep -v '^Monte Carlo:' > /tmp/ape_mc_jobs4.txt
diff /tmp/ape_mc_jobs1.txt /tmp/ape_mc_jobs4.txt
rm -f /tmp/ape_mc_jobs1.txt /tmp/ape_mc_jobs4.txt

echo "CI OK"
