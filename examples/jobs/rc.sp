* two-section RC ladder (serve example deck)
V1 in 0 DC 0 AC 1
R1 in mid 1k
C1 mid 0 1u
R2 mid out 10k
C2 out 0 100n
.END
