(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md experiment index) and registers one
   Bechamel micro-benchmark per table for the estimation workloads.

   Usage:
     dune exec bench/main.exe            # all tables + quick micro pass
     dune exec bench/main.exe table4     # one experiment
     dune exec bench/main.exe micro      # bechamel micro-benchmarks only
   Set APE_BENCH_FAST=1 for a reduced annealing budget. *)

module E = Ape_estimator
module S = Ape_synth
module Units = Ape_util.Units
module Table = Ape_util.Table

let proc = Ape_process.Process.c12
let pf = Printf.printf

let fast_mode =
  match Sys.getenv_opt "APE_BENCH_FAST" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let synth_schedule =
  if fast_mode then S.Anneal.quick_schedule
  else
    {
      S.Anneal.t_start = 1.0;
      t_end = 1e-3;
      cooling = 0.88;
      moves_per_stage = 25;
      max_evaluations = 1_500;
    }

let um2 x = Printf.sprintf "%.1f" (x /. 1e-12)
let eng = Units.to_eng
let opt f = function Some x -> f x | None -> "-"

let heading title =
  pf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 2: estimation vs simulation for basic analog circuits.        *)
(* ------------------------------------------------------------------ *)

type basic_case = {
  bc_name : string;
  bc_est : E.Perf.t;
  bc_sim : E.Perf.t;
}

let table2_cases () =
  let dc_volt =
    let d =
      E.Bias.Dc_volt.design proc { E.Bias.Dc_volt.vout = 2.5; i = 100e-6 }
    in
    {
      bc_name = "DCVolt";
      bc_est = d.E.Bias.Dc_volt.perf;
      bc_sim = E.Verify.sim_dc_volt proc d;
    }
  in
  let mirror topology =
    let d =
      E.Bias.Current_mirror.design proc
        (E.Bias.Current_mirror.spec ~topology ~iout:100e-6 ())
    in
    {
      bc_name = E.Bias.mirror_topology_name topology;
      bc_est = d.E.Bias.Current_mirror.perf;
      bc_sim = E.Verify.sim_mirror proc d;
    }
  in
  let stage kind av i =
    let d =
      E.Gain_stage.design proc (E.Gain_stage.spec ~av ~cl:1e-12 kind ~i)
    in
    {
      bc_name = E.Gain_stage.kind_name kind;
      bc_est = d.E.Gain_stage.perf;
      bc_sim = E.Verify.sim_gain_stage proc d;
    }
  in
  let diff load av =
    let d =
      E.Diff_pair.design proc
        (E.Diff_pair.spec ~av ~cl:1e-12 load ~itail:1e-6)
    in
    {
      bc_name = E.Diff_pair.load_name load;
      bc_est = d.E.Diff_pair.perf;
      bc_sim = E.Verify.sim_diff_pair proc d;
    }
  in
  [
    dc_volt;
    mirror E.Bias.Simple;
    mirror E.Bias.Wilson;
    mirror E.Bias.Cascode;
    stage E.Gain_stage.Gain_nmos 8.5 120e-6;
    stage E.Gain_stage.Gain_cmos 19. 120e-6;
    stage E.Gain_stage.Gain_cmosh 5.1 45e-6;
    stage E.Gain_stage.Follower_stage 0.8 100e-6;
    diff E.Diff_pair.Nmos_diode 4.;
    diff E.Diff_pair.Cmos_mirror 1000.;
  ]

let run_table2 () =
  heading
    "Table 2: Estimation vs SPICE-substitute simulation, basic analog \
     circuits";
  let cases = table2_cases () in
  let row c =
    let pick f = (f c.bc_est, f c.bc_sim) in
    let cell (e, s) fmt = Printf.sprintf "%s / %s" (opt fmt e) (opt fmt s) in
    [
      c.bc_name;
      Printf.sprintf "%s / %s"
        (um2 c.bc_est.E.Perf.gate_area)
        (um2 c.bc_sim.E.Perf.gate_area);
      cell (pick (fun p -> p.E.Perf.ugf)) (fun x -> eng x ^ "Hz");
      Printf.sprintf "%s / %s"
        (eng c.bc_est.E.Perf.dc_power)
        (eng c.bc_sim.E.Perf.dc_power);
      cell (pick (fun p -> p.E.Perf.gain)) (fun x -> Printf.sprintf "%.3g" x);
      cell (pick (fun p -> p.E.Perf.current)) (fun x -> eng x ^ "A");
    ]
  in
  print_string
    (Table.render
       ~header:
         [
           "Topology";
           "GateArea um^2 (est/sim)";
           "UGF (est/sim)";
           "DC Power W (est/sim)";
           "Gain (est/sim)";
           "Current (est/sim)";
         ]
       (List.map row cases))

(* ------------------------------------------------------------------ *)
(* Table 3: estimation vs simulation for operational amplifiers.       *)
(* ------------------------------------------------------------------ *)

let table3_specs () =
  [
    ( "OpAmp1",
      E.Opamp.spec ~buffer:true ~zout:1e3 ~bias_topology:E.Bias.Wilson
        ~av:206. ~ugf:1.3e6 ~ibias:1e-6 ~cl:10e-12 () );
    ( "OpAmp2",
      E.Opamp.spec ~buffer:true ~zout:1e3 ~bias_topology:E.Bias.Wilson
        ~av:374. ~ugf:8e6 ~ibias:2e-6 ~cl:10e-12 () );
    ( "OpAmp3",
      E.Opamp.spec ~buffer:true ~zout:2e3 ~bias_topology:E.Bias.Wilson
        ~av:167. ~ugf:12.4e6 ~ibias:1.5e-6 ~cl:10e-12 () );
    ( "OpAmp4",
      E.Opamp.spec ~bias_topology:E.Bias.Simple ~av:514. ~ugf:2.6e6
        ~ibias:1e-6 ~cl:10e-12 () );
  ]

let run_table3 () =
  heading "Table 3: Estimation vs simulation, operational amplifiers";
  let rows =
    List.map
      (fun (name, spec) ->
        let d = E.Opamp.design proc spec in
        let est = d.E.Opamp.perf in
        let sim = E.Verify.sim_opamp proc d in
        let pair f fmt =
          Printf.sprintf "%s / %s" (opt fmt (f est)) (opt fmt (f sim))
        in
        [
          name;
          E.Opamp.describe d;
          Printf.sprintf "%s / %s"
            (eng est.E.Perf.dc_power)
            (eng sim.E.Perf.dc_power);
          pair (fun p -> p.E.Perf.gain) (fun x -> Printf.sprintf "%.0f" x);
          pair (fun p -> p.E.Perf.ugf) (fun x -> eng x);
          pair (fun p -> p.E.Perf.current) (fun x -> eng x);
          pair (fun p -> p.E.Perf.zout) (fun x -> eng x);
          Printf.sprintf "%s / %s"
            (um2 est.E.Perf.gate_area)
            (um2 sim.E.Perf.gate_area);
          pair
            (fun p -> p.E.Perf.cmrr)
            (fun x -> Printf.sprintf "%.0f" (Ape_util.Float_ext.db_of_gain x));
          pair (fun p -> p.E.Perf.slew_rate) (fun x -> eng x);
        ])
      (table3_specs ())
  in
  print_string
    (Table.render
       ~header:
         [
           "ckt";
           "topology";
           "Power (e/s)";
           "Adm (e/s)";
           "UGF (e/s)";
           "Ibias (e/s)";
           "Zout (e/s)";
           "Area um2 (e/s)";
           "CMRR dB (e/s)";
           "SlewRate (e/s)";
         ]
       rows)

(* ------------------------------------------------------------------ *)
(* Tables 1 and 4: synthesis without/with APE initial design points.   *)
(* ------------------------------------------------------------------ *)

(* The paper's ten specs (Table 1, left).  Area budgets are re-derived
   for our process deck as 1.3x the APE estimate (the paper's budgets
   are tied to its 1990s MOSIS deck); see EXPERIMENTS.md. *)
let opamp_rows () =
  let base =
    [
      ("oa0", 200., 1.3e6, 1e-6, E.Bias.Wilson, true, Some 1e3);
      ("oa1", 70., 3.0e6, 2e-6, E.Bias.Wilson, true, Some 1e3);
      ("oa2", 100., 2.5e6, 1.5e-6, E.Bias.Wilson, true, Some 2e3);
      ("oa3", 250., 8.0e6, 1e-6, E.Bias.Simple, false, None);
      ("oa4", 150., 3.0e6, 100e-6, E.Bias.Simple, false, None);
      ("oa5", 200., 8.0e6, 10e-6, E.Bias.Simple, false, None);
      ("oa6", 50., 10.0e6, 10e-6, E.Bias.Simple, false, None);
      ("oa7", 200., 3.0e6, 1e-6, E.Bias.Simple, true, Some 1e3);
      ("oa8", 100., 2.0e6, 1e-6, E.Bias.Simple, true, Some 10e3);
      ("oa9", 200., 5.0e6, 10e-6, E.Bias.Simple, true, Some 10e3);
    ]
  in
  List.map
    (fun (name, gain, ugf, ibias, curr_src, buffer, zout) ->
      let proto =
        {
          S.Opamp_problem.name;
          gain;
          ugf;
          area = 1.;
          ibias;
          curr_src;
          buffer;
          zout;
          cl = 10e-12;
        }
      in
      let ape = S.Opamp_problem.ape_design proc proto in
      {
        proto with
        S.Opamp_problem.area = 1.3 *. ape.E.Opamp.perf.E.Perf.gate_area;
      })
    base

let synth_table mode title =
  heading title;
  let rng = Ape_util.Rng.create 1999 in
  let results =
    List.map
      (fun row -> S.Driver.run ~schedule:synth_schedule ~rng proc ~mode row)
      (opamp_rows ())
  in
  let rows =
    List.map
      (fun (r : S.Driver.result) ->
        [
          r.S.Driver.row.S.Opamp_problem.name;
          Printf.sprintf "%.0f" r.S.Driver.row.S.Opamp_problem.gain;
          eng r.S.Driver.row.S.Opamp_problem.ugf;
          um2 r.S.Driver.row.S.Opamp_problem.area;
          opt (Printf.sprintf "%.2f") r.S.Driver.gain;
          opt eng r.S.Driver.ugf;
          um2 r.S.Driver.area;
          eng r.S.Driver.power;
          Printf.sprintf "%.2f" r.S.Driver.stats.S.Anneal.seconds;
          string_of_int r.S.Driver.stats.S.Anneal.evaluations;
          r.S.Driver.comment;
        ])
      results
  in
  print_string
    (Table.render
       ~header:
         [
           "ckt";
           "Gain*";
           "UGF*";
           "Area* um2";
           "Gain";
           "UGF";
           "Area um2";
           "power";
           "CPU s";
           "evals";
           "Comments";
         ]
       rows);
  let met =
    List.length (List.filter (fun r -> r.S.Driver.meets_spec) results)
  in
  pf "-> %d/10 meet spec  (* = required)\n" met;
  results

let run_table1 () =
  ignore
    (synth_table S.Opamp_problem.Wide
       "Table 1: ASTRX/OBLX-substitute standalone (wide intervals, random \
        start)")

let run_table4 () =
  let t1 =
    synth_table S.Opamp_problem.Wide
      "Table 1 (rerun for speed-up baseline): standalone synthesis"
  in
  let rng = Ape_util.Rng.create 2024 in
  heading
    "Table 4: synthesis from APE initial design points (+/-20% intervals)";
  let results =
    List.map
      (fun row ->
        S.Driver.run ~schedule:synth_schedule ~rng proc
          ~mode:(S.Opamp_problem.Ape_centered 0.2) row)
      (opamp_rows ())
  in
  let rows =
    List.map2
      (fun (r : S.Driver.result) (base : S.Driver.result) ->
        let speedup =
          let tb = base.S.Driver.stats.S.Anneal.seconds in
          let ta = r.S.Driver.stats.S.Anneal.seconds in
          if tb > 0. then (tb -. ta) /. tb else 0.
        in
        [
          r.S.Driver.row.S.Opamp_problem.name;
          opt (Printf.sprintf "%.2f") r.S.Driver.gain;
          opt eng r.S.Driver.ugf;
          um2 r.S.Driver.area;
          eng r.S.Driver.power;
          Printf.sprintf "%.2f" r.S.Driver.stats.S.Anneal.seconds;
          Table.cell_pct speedup;
          r.S.Driver.comment;
        ])
      results t1
  in
  print_string
    (Table.render
       ~header:
         [
           "ckt";
           "Gain";
           "UGF";
           "Area um2";
           "power";
           "CPU s";
           "speed-up";
           "Comments";
         ]
       rows);
  let met =
    List.length (List.filter (fun r -> r.S.Driver.meets_spec) results)
  in
  pf "-> %d/10 meet spec\n" met

(* ------------------------------------------------------------------ *)
(* Table 5: the five analog-module design examples, four ways.         *)
(* ------------------------------------------------------------------ *)

let table5_cases () =
  [
    ( S.Module_problem.M_sh { gain = 2.0; bandwidth = 20e3; sr = 1e4 },
      [ ("gain", "2.0"); ("BW", "20kHz"); ("SR", "1e4 V/s") ] );
    ( S.Module_problem.M_audio { gain = 100.; bandwidth = 20e3 },
      [ ("gain", "100"); ("BW", "20kHz") ] );
    ( S.Module_problem.M_adc { bits = 4; delay = 5e-6 },
      [ ("bits", "4"); ("delay", "5us") ] );
    ( S.Module_problem.M_lpf { order = 4; f_cutoff = 1e3 },
      [ ("type", "SK flat"); ("order", "4"); ("f-3dB", "1kHz") ] );
    ( S.Module_problem.M_bpf { f_center = 1e3; q = 1.; gain = 1.5 },
      [ ("type", "MFB flat"); ("order", "2"); ("f0", "1kHz") ] );
  ]

let metric_keys = function
  | S.Module_problem.M_sh _ -> [ ("gain", "gain"); ("bandwidth", "BW") ]
  | S.Module_problem.M_audio _ -> [ ("gain", "gain"); ("bandwidth", "BW") ]
  | S.Module_problem.M_adc _ -> [ ("delay", "delay") ]
  | S.Module_problem.M_lpf _ ->
    [ ("gain", "gain"); ("f3db", "f-3dB"); ("f20db", "f-20dB") ]
  | S.Module_problem.M_bpf _ ->
    [ ("f0", "f0"); ("gain", "gain"); ("bandwidth", "BW") ]

let est_metrics kind design =
  let p = E.Module_lib.perf design in
  let common =
    [
      ("gain", p.E.Perf.gain);
      ("bandwidth", p.E.Perf.bandwidth);
      ("area", Some p.E.Perf.gate_area);
    ]
  in
  let extra =
    match design with
    | E.Module_lib.D_lpf d ->
      [
        ("f3db", Some d.E.Filter.f3db_est);
        ("f20db", Some d.E.Filter.f20db_est);
      ]
    | E.Module_lib.D_bpf d -> [ ("f0", Some d.E.Filter.f0_est) ]
    | E.Module_lib.D_adc d ->
      [ ("delay", Some d.E.Data_conv.Flash_adc.delay_est) ]
    | E.Module_lib.D_sh d ->
      [ ("response", Some d.E.Sample_hold.response_time_est) ]
    | E.Module_lib.D_audio _ | E.Module_lib.D_dac _ | E.Module_lib.D_closed _
    | E.Module_lib.D_comp _ ->
      []
  in
  ignore kind;
  List.filter_map
    (fun (k, v) -> Option.map (fun v -> (k, v)) v)
    (common @ extra)

let sim_metrics (sim : E.Verify.module_sim) =
  let p = sim.E.Verify.perf in
  List.filter_map
    (fun (k, v) -> Option.map (fun v -> (k, v)) v)
    [
      ("gain", p.E.Perf.gain);
      ("bandwidth", p.E.Perf.bandwidth);
      ("f3db", p.E.Perf.bandwidth);
      ("f20db", sim.E.Verify.f_20db);
      ("f0", sim.E.Verify.f0);
      ("delay", sim.E.Verify.response_time);
      ("area", Some p.E.Perf.gate_area);
    ]

let synth_metrics (r : S.Module_problem.result) =
  match r.S.Module_problem.measured with
  | None -> []
  | Some m ->
    List.filter_map
      (fun key -> Option.map (fun v -> (key, v)) (S.Cost.find m key))
      [ "gain"; "bandwidth"; "f3db"; "f20db"; "f0"; "delay"; "area" ]

let run_table5 () =
  heading "Table 5: analog library module design examples";
  let rng = Ape_util.Rng.create 77 in
  List.iter
    (fun (kind, spec_rows) ->
      let name = S.Module_problem.kind_name kind in
      let t0 = Unix.gettimeofday () in
      let design = S.Module_problem.ape_module proc kind in
      let ape_seconds = Unix.gettimeofday () -. t0 in
      let est = est_metrics kind design in
      let sim = sim_metrics (E.Verify.sim_module proc design) in
      let area_budget = 1.4 *. (E.Module_lib.perf design).E.Perf.gate_area in
      let standalone =
        S.Module_problem.run ~schedule:synth_schedule ~rng proc
          ~mode:S.Module_problem.Wide ~area_max:area_budget kind
      in
      let with_ape =
        S.Module_problem.run ~schedule:synth_schedule ~rng proc
          ~mode:(S.Module_problem.Ape_centered 0.2) ~area_max:area_budget
          kind
      in
      let sa_m = synth_metrics standalone
      and ape_m = synth_metrics with_ape in
      pf "\n[%s]  spec: %s\n" name
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) spec_rows));
      let metric_of key l = List.assoc_opt key l in
      let fmt = opt (fun v -> eng v) in
      let rows =
        List.map
          (fun (key, label) ->
            [
              label;
              fmt (metric_of key sa_m);
              fmt (metric_of key est);
              fmt (metric_of key sim);
              fmt (metric_of key ape_m);
            ])
          (metric_keys kind)
        @ [
            [
              "area um2";
              opt (fun v -> um2 v) (metric_of "area" sa_m);
              opt (fun v -> um2 v) (metric_of "area" est);
              opt (fun v -> um2 v) (metric_of "area" sim);
              opt (fun v -> um2 v) (metric_of "area" ape_m);
            ];
            [
              "CPU s";
              Printf.sprintf "%.2f"
                standalone.S.Module_problem.stats.S.Anneal.seconds;
              Printf.sprintf "%.3f (APE)" ape_seconds;
              "";
              Printf.sprintf "%.2f"
                with_ape.S.Module_problem.stats.S.Anneal.seconds;
            ];
            [
              "verdict";
              (if standalone.S.Module_problem.meets_spec then "Meets spec"
               else if standalone.S.Module_problem.works then "violates spec"
               else "Doesn't Work");
              "";
              "";
              (if with_ape.S.Module_problem.meets_spec then "Meets spec"
               else if with_ape.S.Module_problem.works then "violates spec"
               else "Doesn't Work");
            ];
          ]
      in
      print_string
        (Table.render
           ~header:[ "param"; "ASTRX alone"; "APE est"; "APE sim"; "APE+A/O" ]
           rows))
    (table5_cases ())

(* ------------------------------------------------------------------ *)
(* Figure 2 / Figure 3: realized hierarchy and elaborated structures.  *)
(* ------------------------------------------------------------------ *)

let run_hierarchy () =
  heading "Figure 2: the realized APE hierarchy (levels, components, devices)";
  pf
    "level 1  CMOS transistor models   (Ape_device.Mos: Level1/2/3/BSIM1 \
     cards, sizing by gm/Id, Id/Vov)\n";
  pf
    "level 2  basic analog components  DCVolt, CurrMirr, Cascode, Wilson, \
     GainNMOS, GainCMOS, GainCMOSH, Follower, DiffNMOS, DiffCMOS\n";
  pf
    "level 3  operational amplifiers   tail {Mirror|Cascode|Wilson} x load \
     {DiffCMOS|DiffNMOS} x [CS2] x [buffer]\n";
  pf
    "level 4  analog modules           audio amp, S&H, flash ADC, DAC, SK \
     LPF, MFB BPF, inverting amp, integrator, adder, comparator\n\n";
  pf
    "Figure 3: elaborated module structures (devices from full netlist \
     elaboration)\n";
  let show kind =
    let d = S.Module_problem.ape_module proc kind in
    let frag = E.Module_lib.fragment proc d in
    let nl = frag.E.Fragment.netlist in
    pf "  %-6s %3d MOSFETs, %3d elements, gate area %s um^2\n"
      (S.Module_problem.kind_name kind)
      (Ape_circuit.Netlist.mosfet_count nl)
      (Ape_circuit.Netlist.device_count nl)
      (um2 (Ape_circuit.Netlist.gate_area nl))
  in
  List.iter (fun (kind, _) -> show kind) (table5_cases ())

(* ------------------------------------------------------------------ *)
(* CPU-time claim (paper 5): APE runs in ~0.1 s for all designs.       *)
(* ------------------------------------------------------------------ *)

let run_ape_timing () =
  heading "APE estimation cost (paper: 0.12 s for all ten opamps)";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun row -> ignore (S.Opamp_problem.ape_design proc row))
    (opamp_rows ());
  let t_opamps = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun (kind, _) -> ignore (S.Module_problem.ape_module proc kind))
    (table5_cases ());
  let t_modules = Unix.gettimeofday () -. t0 in
  pf "ten opamp estimations:   %.4f s\n" t_opamps;
  pf "five module estimations: %.4f s\n" t_modules

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out.                  *)
(* ------------------------------------------------------------------ *)

let run_ablation () =
  heading "Ablation D4: interval width around the APE point (row oa5)";
  let row = List.nth (opamp_rows ()) 5 in
  (* Random start *inside* each window (the centre start of Table 4
     would trivialise the width axis). *)
  let rows =
    List.map
      (fun pct ->
        let rng = Ape_util.Rng.create 7 in
        let design = S.Opamp_problem.ape_design proc row in
        let problem =
          S.Opamp_problem.build proc
            ~mode:(S.Opamp_problem.Ape_centered pct) row design
        in
        let x0 =
          Array.init problem.S.Opamp_problem.dim (fun _ ->
              Ape_util.Rng.uniform rng 0. 1.)
        in
        let best, stats =
          S.Anneal.optimize ~schedule:synth_schedule ~stop_below:0.05 ~rng
            ~dim:problem.S.Opamp_problem.dim
            ~cost:problem.S.Opamp_problem.cost ~x0 ()
        in
        let _, measured = problem.S.Opamp_problem.final best in
        [
          Printf.sprintf "+/-%.0f%%" (100. *. pct);
          S.Driver.comment_of row measured;
          string_of_int stats.S.Anneal.evaluations;
          Printf.sprintf "%.2f" stats.S.Anneal.seconds;
        ])
      [ 0.05; 0.1; 0.2; 0.5; 1.0 ]
  in
  let wide =
    let rng = Ape_util.Rng.create 7 in
    let r =
      S.Driver.run ~schedule:synth_schedule ~rng proc
        ~mode:S.Opamp_problem.Wide row
    in
    [
      "wide+random";
      r.S.Driver.comment;
      string_of_int r.S.Driver.stats.S.Anneal.evaluations;
      Printf.sprintf "%.2f" r.S.Driver.stats.S.Anneal.seconds;
    ]
  in
  print_string
    (Table.render
       ~header:[ "intervals"; "outcome"; "evals"; "CPU s" ]
       (rows @ [ wide ]));

  heading
    "Ablation D3: relaxed AWE evaluation vs full Newton+AC measurement      (cost evaluations/second)";
  let design = S.Opamp_problem.ape_design proc row in
  let problem =
    S.Opamp_problem.build proc ~mode:(S.Opamp_problem.Ape_centered 0.2) row
      design
  in
  let rng = Ape_util.Rng.create 11 in
  let points =
    List.init 50 (fun _ ->
        Array.init problem.S.Opamp_problem.dim (fun _ ->
            Ape_util.Rng.uniform rng 0. 1.))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    List.iter f points;
    Unix.gettimeofday () -. t0
  in
  let t_relaxed = time (fun p -> ignore (problem.S.Opamp_problem.cost p)) in
  let t_full = time (fun p -> ignore (problem.S.Opamp_problem.final p)) in
  pf "relaxed (KCL + AWE):        %6.2f ms/eval
"
    (1000. *. t_relaxed /. 50.);
  pf "full (Newton DC + AC scan): %6.2f ms/eval
" (1000. *. t_full /. 50.);
  pf "speed ratio: %.1fx
" (t_full /. Float.max 1e-9 t_relaxed);

  heading
    "Extension: estimator robustness across process corners (oa2 design      re-simulated)";
  let row2 = List.nth (opamp_rows ()) 2 in
  let design2 = S.Opamp_problem.ape_design proc row2 in
  let frag = E.Opamp.fragment proc design2 in
  let base = E.Fragment.with_supply ~vdd:5.0 frag in
  let vcm = design2.E.Opamp.input_cm in
  let base =
    Ape_circuit.Netlist.append base
      [
        Ape_circuit.Netlist.Vsource
          { name = "VINP"; p = "inp"; n = "0"; dc = vcm; ac = 0.5 };
        Ape_circuit.Netlist.Vsource
          { name = "VINN"; p = "inn"; n = "0"; dc = vcm; ac = -0.5 };
        Ape_circuit.Netlist.Capacitor
          { name = "CLX"; a = "out"; b = "0"; c = 10e-12 };
      ]
  in
  let rows =
    List.map
      (fun c ->
        let p = Ape_process.Process.corner c proc in
        let nl = Ape_circuit.Netlist.retarget_process p base in
        match Ape_spice.Dc.solve nl with
        | exception Ape_spice.Dc.No_convergence _ ->
          [ Ape_process.Process.corner_name c; "-"; "-"; "-" ]
        | op ->
          [
            Ape_process.Process.corner_name c;
            Printf.sprintf "%.1f" (Ape_spice.Measure.dc_gain ~out:"out" op);
            opt eng
              (Ape_spice.Measure.unity_gain_frequency ~fmin:1e3 ~fmax:1e9
                 ~out:"out" op);
            eng (Ape_spice.Dc.static_power op ~supply:"VDD");
          ])
      [ Ape_process.Process.Typical; Ape_process.Process.Slow;
        Ape_process.Process.Fast ]
  in
  print_string
    (Table.render ~header:[ "corner"; "gain"; "UGF"; "power" ] rows)

(* ------------------------------------------------------------------ *)
(* Monte Carlo throughput: samples/sec at 1, 2 and 4 domains.          *)
(* ------------------------------------------------------------------ *)

let run_mc () =
  let module Mc = Ape_mc in
  heading "Monte Carlo throughput (opamp estimate workload, lib/mc)";
  pf "host reports %d recommended domain(s)\n\n" (Mc.Pool.recommended_jobs ());
  let spec = E.Opamp.spec ~av:200. ~ugf:2e6 ~ibias:1e-6 ~cl:10e-12 () in
  let samples = if fast_mode then 500 else 2_000 in
  let measure, checks = Mc.Scenario.opamp ~level:Mc.Scenario.Estimate proc spec in
  let reports =
    List.map
      (fun jobs ->
        (* Warm domain spawn/JIT effects out of the first timing. *)
        let cfg = { Mc.Run.samples; jobs; seed = 1999 } in
        ignore (Mc.Run.run ~checks { cfg with Mc.Run.samples = 100 } ~measure);
        (jobs, Mc.Run.run ~checks cfg ~measure))
      [ 1; 2; 4 ]
  in
  let base_seconds =
    match reports with (_, r) :: _ -> r.Mc.Run.seconds | [] -> 0.
  in
  print_string
    (Table.render
       ~header:[ "jobs"; "samples"; "seconds"; "samples/s"; "speedup"; "yield" ]
       (List.map
          (fun (jobs, (r : Mc.Run.report)) ->
            [
              string_of_int jobs;
              string_of_int samples;
              Printf.sprintf "%.3f" r.Mc.Run.seconds;
              eng (float_of_int samples /. Float.max 1e-9 r.Mc.Run.seconds);
              Printf.sprintf "%.2fx" (base_seconds /. Float.max 1e-9 r.Mc.Run.seconds);
              Printf.sprintf "%.1f %%" (100. *. r.Mc.Run.yield);
            ])
          reports));
  (* Determinism spot check: every jobs value must produce bit-identical
     statistics (the test suite enforces this on small runs too). *)
  let gain_means =
    List.map
      (fun (_, r) ->
        match Mc.Run.metric r "gain" with
        | Some m -> Int64.bits_of_float (Mc.Stats.mean m.Mc.Run.m_stats)
        | None -> 0L)
      reports
  in
  (match gain_means with
  | first :: rest ->
    pf "gain mean bit-identical across jobs: %b\n"
      (List.for_all (Int64.equal first) rest)
  | [] -> ());
  match reports with
  | (_, r) :: _ -> print_string (Mc.Report.metric_table r)
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Prepared-solve AC engine: solves/sec with per-call restamping vs    *)
(* the stamp-once prepared path, plus the synthesis-loop view (shared  *)
(* preparation across measurements, estimation-cache hit rate), the    *)
(* blocked frequency-panel engine vs the per-frequency sparse path,    *)
(* and the adjoint-vs-direct noise solve counts.                       *)
(* Emits BENCH_sweep.json for the CI record.                           *)
(* ------------------------------------------------------------------ *)

(* The RC ladder the sparse gates run on (shared with run_sparse). *)
let ladder_deck n =
  let open Ape_circuit.Netlist in
  let node i = Printf.sprintf "n%d" i in
  let sections =
    List.concat
      (List.init n (fun i ->
           [
             Resistor
               {
                 name = Printf.sprintf "r%d" i;
                 a = node i;
                 b = node (i + 1);
                 r = 1e3;
               };
             Capacitor
               {
                 name = Printf.sprintf "c%d" i;
                 a = node (i + 1);
                 b = ground;
                 c = 1e-9;
               };
           ]))
  in
  make
    ~title:(Printf.sprintf "rc ladder, %d sections" n)
    (Vsource { name = "vin"; p = node 0; n = ground; dc = 1.0; ac = 1.0 }
    :: sections)

let sweep_testbench () =
  let row = List.nth (opamp_rows ()) 2 in
  let design = S.Opamp_problem.ape_design proc row in
  let frag = E.Opamp.fragment proc design in
  let base = E.Fragment.with_supply ~vdd:5.0 frag in
  let vcm = design.E.Opamp.input_cm in
  let nl =
    Ape_circuit.Netlist.append base
      [
        Ape_circuit.Netlist.Vsource
          { name = "VINP"; p = "inp"; n = "0"; dc = vcm; ac = 0.5 };
        Ape_circuit.Netlist.Vsource
          { name = "VINN"; p = "inn"; n = "0"; dc = vcm; ac = -0.5 };
        Ape_circuit.Netlist.Capacitor
          { name = "CLSW"; a = "out"; b = "0"; c = 10e-12 };
      ]
  in
  (row, Ape_spice.Dc.solve nl)

let run_sweep () =
  heading "Prepared-solve AC engine: restamp-per-frequency vs stamp-once";
  let module Ac = Ape_spice.Ac in
  let module Measure = Ape_spice.Measure in
  let row, op = sweep_testbench () in
  let grid =
    Ac.sweep_frequencies ~points_per_decade:20 ~fstart:1. ~fstop:1e9 ()
  in
  let n_grid = List.length grid in
  let repeats = if fast_mode then 3 else 10 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Warm both paths once so allocation/GC start-up is off the clock. *)
  List.iter (fun f -> ignore (Ac.solve_at op f)) grid;
  let t_restamp =
    time (fun () ->
        for _ = 1 to repeats do
          List.iter (fun f -> ignore (Ac.solve_at op f)) grid
        done)
  in
  let prep = Ac.prepare op in
  List.iter (fun f -> ignore (Ac.solve_prepared prep f)) grid;
  let t_prepared =
    time (fun () ->
        for _ = 1 to repeats do
          List.iter (fun f -> ignore (Ac.solve_prepared prep f)) grid
        done)
  in
  let solves = float_of_int (repeats * n_grid) in
  let rate t = solves /. Float.max 1e-9 t in
  let speedup = rate t_prepared /. rate t_restamp in
  print_string
    (Table.render
       ~header:[ "path"; "solves"; "seconds"; "solves/s" ]
       [
         [
           "restamp (solve_at)"; string_of_int (repeats * n_grid);
           Printf.sprintf "%.3f" t_restamp; eng (rate t_restamp);
         ];
         [
           "prepared (stamp once)"; string_of_int (repeats * n_grid);
           Printf.sprintf "%.3f" t_prepared; eng (rate t_prepared);
         ];
       ]);
  pf "prepared speedup: %.1fx  (grid: %d points, 1 Hz .. 1 GHz)\n" speedup
    n_grid;

  (* The synthesis view: one measurement set = DC gain + UGF + f-3dB on
     one operating point.  Before, every Measure call built its own
     stamps; after, one preparation serves the whole set. *)
  let sets = if fast_mode then 50 else 200 in
  let measure_per_call () =
    ignore (Measure.dc_gain ~out:"out" op);
    ignore (Measure.unity_gain_frequency ~fmin:1e3 ~fmax:1e9 ~out:"out" op);
    ignore (Measure.f_minus_3db ~fmax:1e9 ~out:"out" op)
  in
  let measure_shared () =
    let p = Ac.prepare op in
    ignore (Measure.Prepared.dc_gain ~out:"out" p);
    ignore
      (Measure.Prepared.unity_gain_frequency ~fmin:1e3 ~fmax:1e9 ~out:"out" p);
    ignore (Measure.Prepared.f_minus_3db ~fmax:1e9 ~out:"out" p)
  in
  measure_per_call ();
  measure_shared ();
  (* Best of three trials: a single GC major slice can swamp these
     sub-second loops. *)
  let best f =
    List.fold_left
      (fun acc _ -> Float.min acc (time f))
      Float.infinity [ 1; 2; 3 ]
  in
  let t_per_call =
    best (fun () -> for _ = 1 to sets do measure_per_call () done)
  in
  let t_shared =
    best (fun () -> for _ = 1 to sets do measure_shared () done)
  in
  pf "\nmeasurement sets (gain+UGF+f3dB), %d repetitions:\n" sets;
  pf "  one preparation per Measure call: %.3f s\n" t_per_call;
  pf "  one shared preparation per set:   %.3f s  (%.2fx)\n" t_shared
    (t_per_call /. Float.max 1e-9 t_shared);

  (* Estimation cache over a real annealing run: how often the annealer
     revisits a quantised sizing point.  Random start, no early stop, so
     the full move budget exercises the cache. *)
  let rng = Ape_util.Rng.create 7 in
  let design = S.Opamp_problem.ape_design proc row in
  let problem =
    S.Opamp_problem.build proc ~mode:(S.Opamp_problem.Ape_centered 0.2) row
      design
  in
  let x0 =
    Array.init problem.S.Opamp_problem.dim (fun _ ->
        Ape_util.Rng.uniform rng 0. 1.)
  in
  let _best, stats =
    S.Anneal.optimize ~schedule:synth_schedule ~rng
      ~dim:problem.S.Opamp_problem.dim ~cost:problem.S.Opamp_problem.cost ~x0
      ()
  in
  let lookups = S.Est_cache.lookups problem.S.Opamp_problem.cache
  and hits = S.Est_cache.hits problem.S.Opamp_problem.cache in
  let hit_rate = float_of_int hits /. Float.max 1. (float_of_int lookups) in
  pf "\nannealing estimation cache (row oa2, %d evaluations):\n"
    stats.S.Anneal.evaluations;
  pf "  lookups %d, hits %d, hit rate %.1f %%\n" lookups hits
    (100. *. hit_rate);

  (* Blocked frequency panels vs the per-frequency sparse path, on the
     same 200-section ladder and grid the sparse bench gates on.  The
     preparation dispatches on the backend it was built under, so one
     sparse prepare serves every width. *)
  let module Backend = Ape_spice.Backend in
  let k0 = Ac.panel_width () in
  let gate_n = if fast_mode then 120 else 200 in
  let ladder_grid =
    Ac.sweep_frequencies ~points_per_decade:10 ~fstart:1e2 ~fstop:1e8 ()
  in
  let ladder_pts = List.length ladder_grid in
  let panel_passes = if fast_mode then 20 else 40 in
  let ladder_prep =
    Backend.use Backend.Sparse (fun () ->
        Ac.prepare (Ape_spice.Dc.solve (ladder_deck gate_n)))
  in
  let rate_at_width width =
    Ac.set_panel_width width;
    ignore (Ac.sweep_prepared ladder_prep ladder_grid);
    let t =
      time (fun () ->
          for _ = 1 to panel_passes do
            ignore (Ac.sweep_prepared ladder_prep ladder_grid)
          done)
    in
    float_of_int (panel_passes * ladder_pts) /. Float.max 1e-9 t
  in
  let scalar_rate = rate_at_width 1 in
  let width_curve =
    List.map (fun w -> (w, rate_at_width w)) [ 2; 4; 8; 16; 32 ]
  in
  let blocked_rate = List.assoc 8 width_curve in
  let blocked_speedup = blocked_rate /. Float.max 1e-9 scalar_rate in
  pf "\nblocked frequency panels (%d-section ladder, %d-point grid):\n"
    gate_n ladder_pts;
  print_string
    (Table.render
       ~header:[ "panel width"; "solves/s"; "vs scalar" ]
       (List.map
          (fun (w, r) ->
            [
              string_of_int w; eng r;
              Printf.sprintf "%.2fx" (r /. Float.max 1e-9 scalar_rate);
            ])
          ((1, scalar_rate) :: width_curve)));
  (* Panel-vs-scalar bit identity over the whole sweep. *)
  let points_at width =
    Ac.set_panel_width width;
    (Ac.sweep_prepared ladder_prep ladder_grid).Ac.points
  in
  let bit_identical =
    List.for_all2
      (fun (a : Ac.solution) (b : Ac.solution) ->
        a.Ac.freq = b.Ac.freq
        && Array.for_all2
             (fun (x : Complex.t) (y : Complex.t) ->
               x.Complex.re = y.Complex.re && x.Complex.im = y.Complex.im)
             a.Ac.x b.Ac.x)
      (points_at 1) (points_at 8)
  in
  pf "panel vs per-frequency bit-identical: %b\n" bit_identical;
  (* The path this PR replaces — a fresh workspace clone per frequency
     (the old parallel sweep branch) — as a second baseline. *)
  let per_freq_rate =
    List.iter (fun f -> ignore (Ac.solve_fresh ladder_prep f)) ladder_grid;
    let t =
      time (fun () ->
          for _ = 1 to panel_passes do
            List.iter
              (fun f -> ignore (Ac.solve_fresh ladder_prep f))
              ladder_grid
          done)
    in
    float_of_int (panel_passes * ladder_pts) /. Float.max 1e-9 t
  in
  pf "fresh-workspace-per-point path: %s solves/s (blocked is %.2fx)\n"
    (eng per_freq_rate) (blocked_rate /. Float.max 1e-9 per_freq_rate);
  (* Workspace churn: the old path cloned per frequency; the blocked
     sweep reuses the preparation's cached workspace (zero clones after
     warm-up) or, parallel, at most one clone per worker domain.
     Counters are deterministic where Gc.allocated_bytes — per-domain
     and blind to Bigarray payloads — is not. *)
  Ac.set_panel_width 8;
  ignore (Ac.sweep_prepared ladder_prep ladder_grid);
  let obs_was = Ape_obs.enabled () in
  Ape_obs.enable ();
  let count_workspaces f =
    Ape_obs.reset ();
    f ();
    Option.value ~default:0
      (List.assoc_opt "ac.workspaces" (Ape_obs.snapshot ()).Ape_obs.counters)
  in
  let fresh_workspaces =
    count_workspaces (fun () ->
        List.iter (fun f -> ignore (Ac.solve_fresh ladder_prep f)) ladder_grid)
  in
  let blocked_workspaces =
    count_workspaces (fun () ->
        ignore (Ac.sweep_prepared ladder_prep ladder_grid))
  in
  if not obs_was then Ape_obs.disable ();
  assert (blocked_workspaces < fresh_workspaces);
  (* On-heap allocation per point, minimum over passes (a GC slice or
     domain-counter fold can inflate one pass, never deflate it). *)
  let alloc_min f =
    let best = ref infinity in
    for _ = 1 to 5 do
      let a0 = Gc.allocated_bytes () in
      f ();
      let a = Gc.allocated_bytes () -. a0 in
      if a < !best then best := a
    done;
    !best
  in
  let fresh_alloc =
    alloc_min (fun () ->
        List.iter (fun f -> ignore (Ac.solve_fresh ladder_prep f)) ladder_grid)
  in
  let blocked_alloc =
    alloc_min (fun () -> ignore (Ac.sweep_prepared ladder_prep ladder_grid))
  in
  let per_pt b = b /. float_of_int (max 1 ladder_pts) in
  pf
    "workspace clones per %d-point sweep: fresh-per-point %d, blocked %d\n"
    ladder_pts fresh_workspaces blocked_workspaces;
  pf "allocation per point: fresh-workspace %.0f B, blocked %.0f B (%.1fx less)\n"
    (per_pt fresh_alloc) (per_pt blocked_alloc)
    (fresh_alloc /. Float.max 1. blocked_alloc);
  Ac.set_panel_width k0;

  (* Adjoint noise: one transposed solve per frequency for all sources
     vs the historical one-solve-per-source path, counter-verified. *)
  let noise_sources =
    List.length (Ape_spice.Noise.noise_sources op 1e3)
  in
  let obs_was = Ape_obs.enabled () in
  Ape_obs.enable ();
  Ape_obs.reset ();
  let nprep = Ac.prepare op in
  ignore
    (Ape_spice.Noise.output_noise_direct_prepared ~out:"out" ~freq:1e3 nprep);
  ignore (Ape_spice.Noise.output_noise_prepared ~out:"out" ~freq:1e3 nprep);
  let snap = Ape_obs.snapshot () in
  let cval name =
    Option.value ~default:0 (List.assoc_opt name snap.Ape_obs.counters)
  in
  let direct_solves = cval "noise.direct_solves" in
  let adjoint_solves = cval "noise.adjoint_solves" in
  if not obs_was then Ape_obs.disable ();
  pf "\nnoise at one frequency (%d sources): direct %d solves, adjoint %d\n"
    noise_sources direct_solves adjoint_solves;

  let oc = open_out "BENCH_sweep.json" in
  Printf.fprintf oc
    "{\n\
    \  \"grid_points\": %d,\n\
    \  \"repeats\": %d,\n\
    \  \"restamp_solves_per_sec\": %.1f,\n\
    \  \"prepared_solves_per_sec\": %.1f,\n\
    \  \"prepared_speedup\": %.2f,\n\
    \  \"measure_sets\": %d,\n\
    \  \"measure_per_call_prep_sec\": %.4f,\n\
    \  \"measure_shared_prep_sec\": %.4f,\n\
    \  \"anneal_cache_lookups\": %d,\n\
    \  \"anneal_cache_hits\": %d,\n\
    \  \"anneal_cache_hit_rate\": %.4f,\n\
    \  \"panel_sections\": %d,\n\
    \  \"panel_grid_points\": %d,\n\
    \  \"panel_scalar_solves_per_sec\": %.1f,\n\
    \  \"panel_width_curve\": [%s],\n\
    \  \"panel_blocked_solves_per_sec\": %.1f,\n\
    \  \"panel_per_freq_solves_per_sec\": %.1f,\n\
    \  \"blocked_speedup\": %.2f,\n\
    \  \"panel_bit_identical\": %b,\n\
    \  \"fresh_workspaces_per_sweep\": %d,\n\
    \  \"blocked_workspaces_per_sweep\": %d,\n\
    \  \"fresh_alloc_bytes_per_point\": %.0f,\n\
    \  \"blocked_alloc_bytes_per_point\": %.0f,\n\
    \  \"noise_sources\": %d,\n\
    \  \"noise_direct_solves\": %d,\n\
    \  \"noise_adjoint_solves\": %d\n\
     }\n"
    n_grid repeats (rate t_restamp) (rate t_prepared) speedup sets t_per_call
    t_shared lookups hits hit_rate gate_n ladder_pts scalar_rate
    (String.concat ", "
       (List.map
          (fun (w, r) ->
            Printf.sprintf "{\"width\": %d, \"solves_per_sec\": %.1f}" w r)
          ((1, scalar_rate) :: width_curve)))
    blocked_rate per_freq_rate blocked_speedup bit_identical fresh_workspaces
    blocked_workspaces (per_pt fresh_alloc) (per_pt blocked_alloc)
    noise_sources direct_solves adjoint_solves;
  close_out oc;
  pf "\nwrote BENCH_sweep.json\n"

(* ------------------------------------------------------------------ *)
(* Observability overhead: the same prepared 181-point sweep with the  *)
(* metrics registry disabled vs enabled.  Two gates ride on this       *)
(* experiment: the solutions must stay bit-identical, and ci.sh        *)
(* rejects an overhead above 2%.  Emits BENCH_obs.json.                *)
(* ------------------------------------------------------------------ *)

let run_obs_overhead () =
  heading
    "Observability overhead: 181-point prepared sweep, registry off vs on";
  let module Ac = Ape_spice.Ac in
  let _row, op = sweep_testbench () in
  let prep = Ac.prepare op in
  let grid =
    Ac.sweep_frequencies ~points_per_decade:20 ~fstart:1. ~fstop:1e9 ()
  in
  let n_grid = List.length grid in
  let sweep_once () = List.map (fun f -> Ac.solve_prepared prep f) grid in
  (* Calibrate the repeat count so one trial runs ~0.4 s: long enough to
     drown scheduler noise, short enough for five trials per setting. *)
  Ape_obs.disable ();
  ignore (sweep_once ());
  let t1 =
    let t0 = Unix.gettimeofday () in
    ignore (sweep_once ());
    Unix.gettimeofday () -. t0
  in
  let target = if fast_mode then 0.1 else 0.4 in
  let repeats =
    max 3 (int_of_float (Float.round (target /. Float.max 1e-6 t1)))
  in
  let trials = 5 in
  let time_trials () =
    (* Best of [trials]: a GC major slice or a preempt inflates a trial,
       never deflates one, so the minimum is the honest estimate. *)
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to repeats do
        ignore (sweep_once ())
      done;
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let sols_off = sweep_once () in
  let t_off = time_trials () in
  Ape_obs.enable ();
  Ape_obs.reset ();
  ignore (sweep_once ());
  let sols_on = sweep_once () in
  let t_on = time_trials () in
  Ape_obs.disable ();
  let identical =
    List.for_all2
      (fun (a : Ac.solution) (b : Ac.solution) ->
        a.Ac.freq = b.Ac.freq
        && Array.for_all2
             (fun (p : Complex.t) (q : Complex.t) ->
               Int64.equal
                 (Int64.bits_of_float p.Complex.re)
                 (Int64.bits_of_float q.Complex.re)
               && Int64.equal
                    (Int64.bits_of_float p.Complex.im)
                    (Int64.bits_of_float q.Complex.im))
             a.Ac.x b.Ac.x)
      sols_off sols_on
  in
  let solves = float_of_int (repeats * n_grid) in
  let rate t = solves /. Float.max 1e-9 t in
  let overhead_pct = 100. *. (t_on -. t_off) /. Float.max 1e-9 t_off in
  print_string
    (Table.render
       ~header:[ "registry"; "solves"; "seconds (best of 5)"; "solves/s" ]
       [
         [
           "disabled"; string_of_int (repeats * n_grid);
           Printf.sprintf "%.4f" t_off; eng (rate t_off);
         ];
         [
           "enabled"; string_of_int (repeats * n_grid);
           Printf.sprintf "%.4f" t_on; eng (rate t_on);
         ];
       ]);
  pf "solutions bit-identical with registry on: %b\n" identical;
  pf "observability overhead: %+.2f %%  (grid: %d points, 1 Hz .. 1 GHz)\n"
    overhead_pct n_grid;
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"grid_points\": %d,\n\
    \  \"repeats\": %d,\n\
    \  \"trials\": %d,\n\
    \  \"off_seconds\": %.6f,\n\
    \  \"on_seconds\": %.6f,\n\
    \  \"off_solves_per_sec\": %.1f,\n\
    \  \"on_solves_per_sec\": %.1f,\n\
    \  \"overhead_pct\": %.4f,\n\
    \  \"bit_identical\": %b\n\
     }\n"
    n_grid repeats trials t_off t_on (rate t_off) (rate t_on) overhead_pct
    identical;
  close_out oc;
  pf "wrote BENCH_obs.json\n";
  if not identical then begin
    pf "FAIL: instrumentation changed numeric results\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel tempering: sequential vs multi-chain wall time to reach    *)
(* the same cost target on an opamp synthesis workload.  The target is *)
(* the sequential engine's own final cost, so the question is exactly  *)
(* "how much sooner does the tempered ensemble find something at least *)
(* this good".  Emits BENCH_anneal.json; ci.sh gates on the speedup.   *)
(* ------------------------------------------------------------------ *)

let run_anneal () =
  heading "Parallel tempering: time to the sequential engine's final cost";
  let env_int name default =
    match Sys.getenv_opt name with Some s -> int_of_string s | None -> default
  in
  let row = List.nth (opamp_rows ()) (env_int "APE_BENCH_ROW" 6) in
  let seed = env_int "APE_BENCH_SEED" 1 in
  let chains = env_int "APE_BENCH_CHAINS" 4 in
  let mode = S.Opamp_problem.Wide in
  let schedule =
    if fast_mode then S.Anneal.quick_schedule else S.Anneal.default_schedule
  in
  let design = S.Opamp_problem.strawman_design proc row in
  (* A fresh problem per engine run: each gets its own cache, so the
     before/after hit rates are honest. *)
  let fresh () = S.Opamp_problem.build proc ~mode row design in
  let sequential ~stop_below =
    let problem = fresh () in
    let rng = Ape_util.Rng.create seed in
    let x0 = problem.S.Opamp_problem.start rng in
    let _best, stats =
      S.Anneal.optimize ~schedule ~stop_below ~rng
        ~dim:problem.S.Opamp_problem.dim ~cost:problem.S.Opamp_problem.cost
        ~x0 ()
    in
    (stats, problem.S.Opamp_problem.cache)
  in
  (* Pass 1: the full sequential anneal fixes the target cost. *)
  let final_stats, _ = sequential ~stop_below:neg_infinity in
  let target = final_stats.S.Anneal.best_cost *. 1.0001 in
  pf "sequential final cost (%d evaluations): %.6f\n"
    final_stats.S.Anneal.evaluations final_stats.S.Anneal.best_cost;
  (* Pass 2: the same trajectory again, stopping the moment the target
     is reached — the sequential time-to-target. *)
  let seq_stats, seq_cache = sequential ~stop_below:target in
  let seq_hit_rate = S.Est_cache.hit_rate seq_cache in
  pf "sequential time-to-target: %.3f s (%d evaluations, cache %.1f%%)\n"
    seq_stats.S.Anneal.seconds seq_stats.S.Anneal.evaluations
    (100. *. seq_hit_rate);
  (* Pass 3: the tempered ensemble races to the same target, all
     replicas sharing one sharded cache. *)
  let problem = fresh () in
  let rng = Ape_util.Rng.create seed in
  let _best, pt_stats =
    S.Anneal.optimize_tempered ~schedule ~stop_below:target
      ~tempering:{ S.Anneal.default_tempering with chains }
      ~rng ~dim:problem.S.Opamp_problem.dim
      ~cost:problem.S.Opamp_problem.cost
      ~start:problem.S.Opamp_problem.start ()
  in
  let pt_cache = problem.S.Opamp_problem.cache in
  let pt_hit_rate = S.Est_cache.hit_rate pt_cache in
  let reached = pt_stats.S.Anneal.best_cost < target in
  let speedup =
    seq_stats.S.Anneal.seconds /. Float.max 1e-9 pt_stats.S.Anneal.seconds
  in
  pf "%d-chain time-to-target:   %.3f s (%d evaluations, cache %.1f%%, \
      %d/%d exchanges accepted)\n"
    chains pt_stats.S.Anneal.seconds pt_stats.S.Anneal.evaluations
    (100. *. pt_hit_rate) pt_stats.S.Anneal.exchange_accepted
    pt_stats.S.Anneal.exchanges;
  pf "target %s, speedup %.2fx\n"
    (if reached then "reached" else "NOT reached")
    speedup;
  let oc = open_out "BENCH_anneal.json" in
  Printf.fprintf oc
    "{\n\
    \  \"row\": %S,\n\
    \  \"seed\": %d,\n\
    \  \"chains\": %d,\n\
    \  \"max_evaluations\": %d,\n\
    \  \"target_cost\": %.6f,\n\
    \  \"target_reached\": %b,\n\
    \  \"seq_seconds\": %.4f,\n\
    \  \"seq_evaluations\": %d,\n\
    \  \"seq_cache_hit_rate\": %.4f,\n\
    \  \"pt_seconds\": %.4f,\n\
    \  \"pt_evaluations\": %d,\n\
    \  \"pt_cache_hit_rate\": %.4f,\n\
    \  \"pt_exchanges\": %d,\n\
    \  \"pt_exchange_accepted\": %d,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    row.S.Opamp_problem.name seed chains schedule.S.Anneal.max_evaluations
    target reached seq_stats.S.Anneal.seconds seq_stats.S.Anneal.evaluations
    seq_hit_rate pt_stats.S.Anneal.seconds pt_stats.S.Anneal.evaluations
    pt_hit_rate pt_stats.S.Anneal.exchanges pt_stats.S.Anneal.exchange_accepted
    speedup;
  close_out oc;
  pf "wrote BENCH_anneal.json\n"

(* ------------------------------------------------------------------ *)
(* serve: batch-service throughput, cold start vs warm shared cache.   *)
(* Emits BENCH_serve.json; ci.sh gates the speedup at >= 2x.           *)
(* ------------------------------------------------------------------ *)

let run_serve () =
  heading "Serve: 8-synth-job batch, cold start vs warm estimate cache";
  let module Sv = Ape_serve in
  let batch_text =
    (* Two distinct problems x four seeds: the warm pass exercises both
       cross-job sharing (same fingerprint, different seed explores
       overlapping regions) and the bit-identical replay of each
       trajectory. *)
    String.concat "\n"
      (List.concat_map
         (fun (gain, ugf) ->
           List.map
             (fun seed ->
               Printf.sprintf
                 "(job synth (id g%g-s%d) (gain %g) (ugf %g) (seed %d) \
                  (schedule quick))"
                 gain seed gain ugf seed)
             [ 1; 2; 3; 4 ])
         [ (200., 2e6); (150., 1e6) ])
  in
  let batch = Sv.Job.parse_batch batch_text in
  let n_jobs = List.length batch in
  let config =
    { Sv.Scheduler.default with Sv.Scheduler.jobs = 1; queue = 16 }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Cold: every job pays a fresh runner — empty caches, as if each
     request spun up its own process. *)
  let (), cold_seconds =
    time (fun () ->
        List.iter
          (fun input ->
            let runner = Sv.Runner.create proc in
            ignore
              (Sv.Scheduler.run_batch config runner ~batch:"cold"
                 ~emit:ignore [ input ]))
          batch)
  in
  (* Warm: one daemon-lifetime runner; the first pass fills the
     per-fingerprint caches, the measured second pass replays against
     them. *)
  let runner = Sv.Runner.create proc in
  ignore
    (Sv.Scheduler.run_batch config runner ~batch:"warmup" ~emit:ignore batch);
  let summary, warm_seconds =
    time (fun () ->
        Sv.Scheduler.run_batch config runner ~batch:"warm" ~emit:ignore batch)
  in
  let hit_rate =
    if summary.Sv.Record.cache_lookups = 0 then 0.
    else
      float_of_int summary.Sv.Record.cache_hits
      /. float_of_int summary.Sv.Record.cache_lookups
  in
  let cold_rate = float_of_int n_jobs /. Float.max 1e-9 cold_seconds in
  let warm_rate = float_of_int n_jobs /. Float.max 1e-9 warm_seconds in
  let speedup = cold_seconds /. Float.max 1e-9 warm_seconds in
  pf "cold (fresh runner per job): %.3f s  (%.1f jobs/s)\n" cold_seconds
    cold_rate;
  pf "warm (shared runner, 2nd pass): %.3f s  (%.1f jobs/s, cache %.1f%%)\n"
    warm_seconds warm_rate (100. *. hit_rate);
  pf "speedup %.2fx\n" speedup;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"jobs\": %d,\n\
    \  \"cold_seconds\": %.4f,\n\
    \  \"warm_seconds\": %.4f,\n\
    \  \"cold_jobs_per_sec\": %.2f,\n\
    \  \"warm_jobs_per_sec\": %.2f,\n\
    \  \"warm_cache_hit_rate\": %.4f,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    n_jobs cold_seconds warm_seconds cold_rate warm_rate hit_rate speedup;
  close_out oc;
  pf "wrote BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)
(* calib: grid-sample the opamp spec space, fit a calibration card and *)
(* measure the Tables 2/3/5 catalog error with and without it.  ci.sh  *)
(* gates cal_max_err <= raw_max_err (and the jobs-1-vs-3 card diff via *)
(* ape calibrate).  Emits BENCH_calib.json.                            *)
(* ------------------------------------------------------------------ *)

let run_calib () =
  heading "Calibration: grid-fitted card vs raw catalog error";
  let module C = Ape_check in
  let module Cal = Ape_calib in
  let points = if fast_mode then 8 else 16 in
  let spec = { Cal.Grid.default with Cal.Grid.points; seed = 7 } in
  let t0 = Unix.gettimeofday () in
  let grid = Cal.Grid.run proc spec in
  let grid_seconds = Unix.gettimeofday () -. t0 in
  let points_per_s = float_of_int points /. Float.max 1e-9 grid_seconds in
  pf "grid: %d points (%d evaluated, %d skipped) in %.2f s (%.1f pts/s)\n"
    points grid.Cal.Grid.evaluated grid.Cal.Grid.skipped grid_seconds
    points_per_s;
  let card = C.Calibrate.fit ~slew:false ~extra:grid.Cal.Grid.samples proc in
  let non_identity =
    List.length
      (List.filter
         (fun e -> not (Cal.Card.is_identity e.Cal.Card.corr))
         card.Cal.Card.entries)
  in
  pf "card: %d fits (%d non-identity)\n"
    (List.length card.Cal.Card.entries)
    non_identity;
  let outcome = C.Check.run ~slew:false ~calibration:card proc in
  let errors =
    List.filter
      (fun e -> Cal.Fit.calibratable e.C.Golden.e_attr)
      (C.Check.error_table outcome)
  in
  pf "%-8s %-12s %9s %9s\n" "level" "attr" "raw max" "cal max";
  List.iter
    (fun e ->
      pf "%-8s %-12s %8.2f%% %8.2f%%\n" e.C.Golden.e_level e.C.Golden.e_attr
        (100. *. e.C.Golden.raw_max)
        (100. *. e.C.Golden.cal_max))
    errors;
  let max_of f =
    List.fold_left (fun acc e -> Float.max acc (f e)) 0. errors
  in
  let raw_max_err = max_of (fun e -> e.C.Golden.raw_max) in
  let cal_max_err = max_of (fun e -> e.C.Golden.cal_max) in
  let improved = cal_max_err < raw_max_err in
  pf "catalog max error: raw %.2f%% -> calibrated %.2f%% (%s)\n"
    (100. *. raw_max_err) (100. *. cal_max_err)
    (if improved then "improved" else "no improvement");
  let oc = open_out "BENCH_calib.json" in
  Printf.fprintf oc
    "{\n\
    \  \"grid_points\": %d,\n\
    \  \"evaluated\": %d,\n\
    \  \"skipped\": %d,\n\
    \  \"grid_seconds\": %.4f,\n\
    \  \"points_per_sec\": %.2f,\n\
    \  \"fits\": %d,\n\
    \  \"non_identity_fits\": %d,\n\
    \  \"raw_max_err\": %.6f,\n\
    \  \"cal_max_err\": %.6f,\n\
    \  \"improved\": %b\n\
     }\n"
    points grid.Cal.Grid.evaluated grid.Cal.Grid.skipped grid_seconds
    points_per_s
    (List.length card.Cal.Card.entries)
    non_identity raw_max_err cal_max_err improved;
  close_out oc;
  pf "wrote BENCH_calib.json\n"

(* ------------------------------------------------------------------ *)
(* Sparse MNA engine: dense vs symbolic-once/numeric-many sparse LU on *)
(* a generated RC-ladder AC sweep.  The dense LU is O(n^3) per         *)
(* frequency; the sparse refactorisation is O(nnz) on a tridiagonal-   *)
(* shaped system, so the gap widens with the deck.  ci.sh gates the    *)
(* speedup at the largest size at >= 3x and the cross-engine solution  *)
(* disagreement at <= 1e-8.  Emits BENCH_sparse.json.                  *)
(* ------------------------------------------------------------------ *)

let run_sparse () =
  heading "Sparse MNA engine: dense LU vs symbolic-once/numeric-many";
  let module Ac = Ape_spice.Ac in
  let module Dc = Ape_spice.Dc in
  let module Backend = Ape_spice.Backend in
  let grid =
    Ac.sweep_frequencies ~points_per_decade:10 ~fstart:1e2 ~fstop:1e8 ()
  in
  let n_grid = List.length grid in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* Rate of prepared per-frequency solves for one engine on one deck.
     [passes] scales the sparse side up so both sit in a measurable
     time window; the reported figure is solves/second either way. *)
  let rate engine deck ~passes =
    Backend.use engine (fun () ->
        let op = Dc.solve deck in
        let p = Ac.prepare op in
        (* Warm pass: first-touch allocation and symbolic analysis off
           the clock. *)
        List.iter (fun f -> ignore (Ac.solve_prepared p f)) grid;
        let t =
          time (fun () ->
              for _ = 1 to passes do
                List.iter (fun f -> ignore (Ac.solve_prepared p f)) grid
              done)
        in
        float_of_int (passes * n_grid) /. Float.max 1e-9 t)
  in
  let gate_n = if fast_mode then 120 else 200 in
  let sizes =
    List.filter (fun s -> s <= gate_n) [ 8; 16; 32; 64; 128; 200 ]
  in
  let curve =
    List.map
      (fun n ->
        let deck = ladder_deck n in
        let dense = rate Backend.Dense deck ~passes:1 in
        let sparse = rate Backend.Sparse deck ~passes:(if n <= 32 then 20 else 50) in
        (n, dense, sparse, sparse /. dense))
      sizes
  in
  print_string
    (Table.render
       ~header:[ "sections"; "dense solves/s"; "sparse solves/s"; "speedup" ]
       (List.map
          (fun (n, d, s, sp) ->
            [
              string_of_int n; eng d; eng s; Printf.sprintf "%.2fx" sp;
            ])
          curve));
  let crossover =
    List.find_opt (fun (_, _, _, sp) -> sp > 1.) curve
    |> Option.map (fun (n, _, _, _) -> n)
  in
  (match crossover with
  | Some n -> pf "dense/sparse crossover at <= %d sections\n" n
  | None -> pf "no crossover within the measured sizes\n");
  let _, gate_dense, gate_sparse, gate_speedup =
    List.nth curve (List.length curve - 1)
  in

  (* Differential check + instrumentation on the gate deck: the two
     engines must agree on every sweep point, and the sparse counters
     must show one symbolic analysis amortised over the whole sweep. *)
  let deck = ladder_deck gate_n in
  let sweep_of engine =
    Backend.use engine (fun () ->
        let op = Dc.solve deck in
        (Ac.sweep_prepared (Ac.prepare op) grid).Ac.points)
  in
  Ape_obs.enable ();
  Ape_obs.reset ();
  let pts_dense = sweep_of Backend.Dense in
  let pts_sparse = sweep_of Backend.Sparse in
  let snap = Ape_obs.snapshot () in
  Ape_obs.disable ();
  let counter name =
    try List.assoc name snap.Ape_obs.counters with Not_found -> 0
  in
  let gauge name =
    try List.assoc name snap.Ape_obs.gauges with Not_found -> 0.
  in
  let max_rel_err =
    List.fold_left2
      (fun acc (a : Ac.solution) (b : Ac.solution) ->
        let w = ref acc in
        Array.iteri
          (fun i (u : Complex.t) ->
            let v = b.Ac.x.(i) in
            let d = Complex.norm (Complex.sub u v) in
            let scale = Float.max 1e-12 (Complex.norm u) in
            w := Float.max !w (d /. scale))
          a.Ac.x;
        !w)
      0. pts_dense pts_sparse
  in
  pf "gate deck (%d sections, %d unknowns): %d symbolic analyses, %d \
      numeric refactors (%d unstable), nnz %.0f, fill ratio %.2f\n"
    gate_n (gate_n + 2)
    (counter "sparse.symbolic")
    (counter "sparse.refactor")
    (counter "sparse.refactor_unstable")
    (gauge "sparse.nnz") (gauge "sparse.fill_ratio");
  pf "max relative disagreement dense vs sparse over %d points: %.3g\n"
    n_grid max_rel_err;
  pf "sparse speedup at %d sections: %.2fx\n" gate_n gate_speedup;

  let oc = open_out "BENCH_sparse.json" in
  Printf.fprintf oc
    "{\n\
    \  \"gate_sections\": %d,\n\
    \  \"grid_points\": %d,\n\
    \  \"dense_solves_per_sec\": %.1f,\n\
    \  \"sparse_solves_per_sec\": %.1f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"max_rel_err\": %.3g,\n\
    \  \"symbolic_factorizations\": %d,\n\
    \  \"numeric_refactorizations\": %d,\n\
    \  \"unstable_refactorizations\": %d,\n\
    \  \"nnz\": %.0f,\n\
    \  \"fill_ratio\": %.3f,\n\
    \  \"crossover_sections\": %s,\n\
    \  \"curve\": [%s]\n\
     }\n"
    gate_n n_grid gate_dense gate_sparse gate_speedup max_rel_err
    (counter "sparse.symbolic")
    (counter "sparse.refactor")
    (counter "sparse.refactor_unstable")
    (gauge "sparse.nnz") (gauge "sparse.fill_ratio")
    (match crossover with Some n -> string_of_int n | None -> "null")
    (String.concat ", "
       (List.map
          (fun (n, d, s, sp) ->
            Printf.sprintf
              "{\"sections\": %d, \"dense\": %.1f, \"sparse\": %.1f, \
               \"speedup\": %.2f}"
              n d s sp)
          curve));
  close_out oc;
  pf "wrote BENCH_sparse.json\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table.                 *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  [
    Test.make ~name:"table1_ape_front_end"
      (Staged.stage (fun () ->
           ignore (Ape_synth.Opamp_problem.ape_design proc (List.hd (opamp_rows ())))));
    Test.make ~name:"table2_basic_estimates"
      (Staged.stage (fun () ->
           ignore
             (E.Diff_pair.design proc
                (E.Diff_pair.spec ~av:1000. E.Diff_pair.Cmos_mirror
                   ~itail:1e-6))));
    Test.make ~name:"table3_opamp_estimate"
      (Staged.stage (fun () ->
           ignore
             (E.Opamp.design proc
                (E.Opamp.spec ~av:206. ~ugf:1.3e6 ~ibias:1e-6 ()))));
    Test.make ~name:"table4_cost_eval_relaxed"
      (Staged.stage
         (let row = List.hd (opamp_rows ()) in
          let design = Ape_synth.Opamp_problem.ape_design proc row in
          let problem =
            Ape_synth.Opamp_problem.build proc
              ~mode:(Ape_synth.Opamp_problem.Ape_centered 0.2) row design
          in
          let rng = Ape_util.Rng.create 3 in
          let point = problem.Ape_synth.Opamp_problem.start rng in
          fun () -> ignore (problem.Ape_synth.Opamp_problem.cost point)));
    Test.make ~name:"table5_module_estimate"
      (Staged.stage (fun () ->
           ignore
             (Ape_synth.Module_problem.ape_module proc
                (Ape_synth.Module_problem.M_lpf { order = 4; f_cutoff = 1e3 }))));
    Test.make ~name:"ablation_awe_dominant_pole"
      (Staged.stage
         (let row = List.hd (opamp_rows ()) in
          let design = Ape_synth.Opamp_problem.ape_design proc row in
          let frag = E.Opamp.fragment proc design in
          let nl = E.Fragment.with_supply ~vdd:5.0 frag in
          let nl =
            Ape_circuit.Netlist.append nl
              [
                Ape_circuit.Netlist.Vsource
                  { name = "VINP"; p = "inp"; n = "0"; dc = 2.5; ac = 0.5 };
                Ape_circuit.Netlist.Vsource
                  { name = "VINN"; p = "inn"; n = "0"; dc = 2.5; ac = -0.5 };
                Ape_circuit.Netlist.Capacitor
                  { name = "CL"; a = "out"; b = "0"; c = 10e-12 };
              ]
          in
          let op = Ape_spice.Dc.solve nl in
          fun () -> ignore (Ape_spice.Awe.pade ~q:2 ~out:"out" op)));
  ]

let run_micro () =
  heading "Bechamel micro-benchmarks (monotonic clock)";
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:(Some 500) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances test
        |> Analyze.all
             (Analyze.ols ~bootstrap:0 ~r_square:false
                ~predictors:[| Measure.run |])
             Toolkit.Instance.monotonic_clock
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> pf "  %-28s %12.1f ns/run\n" name est
          | Some _ | None -> pf "  %-28s (no estimate)\n" name)
        results)
    (micro_tests ())

(* ------------------------------------------------------------------ *)

let all () =
  run_table2 ();
  run_table3 ();
  run_hierarchy ();
  run_ape_timing ();
  run_table1 ();
  run_table4 ();
  run_table5 ();
  run_ablation ();
  run_mc ();
  run_sweep ();
  run_sparse ();
  run_obs_overhead ();
  run_anneal ();
  run_serve ();
  run_calib ();
  run_micro ()

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table1" -> run_table1 ()
  | "table2" -> run_table2 ()
  | "table3" -> run_table3 ()
  | "table4" -> run_table4 ()
  | "table5" -> run_table5 ()
  | "hierarchy" -> run_hierarchy ()
  | "timing" -> run_ape_timing ()
  | "ablation" -> run_ablation ()
  | "mc" -> run_mc ()
  | "sweep" -> run_sweep ()
  | "sparse" -> run_sparse ()
  | "obs-overhead" -> run_obs_overhead ()
  | "anneal" -> run_anneal ()
  | "serve" -> run_serve ()
  | "calib" -> run_calib ()
  | "micro" -> run_micro ()
  | "all" -> all ()
  | other ->
    pf
      "unknown experiment %s (table1..table5, hierarchy, timing, ablation, \
       mc, sweep, sparse, obs-overhead, anneal, serve, calib, micro, all)\n"
      other;
    exit 1
