(* The VASE synthesis flow (paper Figure 1):
     dune exec examples/vase_flow.exe

   A behavioural system specification is parsed, system constraints are
   transformed onto the module chain (directed-interval gain
   allocation), every module is estimated by APE, and the composed
   system estimate is checked against the requirements — the exact role
   APE plays inside VASE. *)

let pf = Printf.printf
let eng = Ape_util.Units.to_eng
let proc = Ape_process.Process.c12

let spec_text =
  "(system audio_front_end\n\
  \  ;; anti-alias filter, then two gain stages\n\
  \  (chain\n\
  \    (lowpass (order 4) (fc 1k))\n\
  \    (amplifier (gain 40) (bandwidth 20k))\n\
  \    (amplifier (gain 2.5) (bandwidth 20k)))\n\
  \  (require (total_gain 100) (bandwidth 900) (power_max 50m)))"

let () =
  pf "== behavioural specification ==\n%s\n\n" spec_text;
  let system = Ape_vase.System.parse spec_text in
  pf "parsed system '%s' with %d modules\n\n" system.Ape_vase.System.name
    (List.length system.Ape_vase.System.chain);

  pf "== constraint transformation: allocate 40 dB over 2 amplifier \
      stages ==\n";
  (match
     Ape_vase.System.plan_gain_chain proc ~total_gain:100. ~bandwidth:20e3
       ~stages:2
   with
  | Some gains ->
    List.iteri (fun i g -> pf "  stage %d gain allocation: %.2f\n" (i + 1) g) gains
  | None -> pf "  allocation infeasible\n");
  pf "\n";

  pf "== APE estimation of every module ==\n";
  let est = Ape_vase.System.estimate proc system in
  List.iter
    (fun (label, design) ->
      let p = Ape_estimator.Module_lib.perf design in
      pf "  %-12s gain=%-8s bw=%-8s area=%8.0f um^2  power=%s\n" label
        (match p.Ape_estimator.Perf.gain with
        | Some g -> Printf.sprintf "%.2f" g
        | None -> "-")
        (match p.Ape_estimator.Perf.bandwidth with
        | Some b -> eng b
        | None -> "-")
        (p.Ape_estimator.Perf.gate_area /. 1e-12)
        (eng p.Ape_estimator.Perf.dc_power))
    est.Ape_vase.System.designs;
  pf "\n== composed system estimate ==\n";
  pf "  total gain      %.1f\n" est.Ape_vase.System.gain_total;
  pf "  bandwidth       %s (slowest stage)\n"
    (eng est.Ape_vase.System.bandwidth_min);
  pf "  total gate area %.0f um^2\n"
    (est.Ape_vase.System.area_total /. 1e-12);
  pf "  total power     %s\n" (eng est.Ape_vase.System.power_total);
  pf "\n== requirement verdicts ==\n";
  List.iter
    (fun (name, ok) -> pf "  %-12s %s\n" name (if ok then "MET" else "VIOLATED"))
    est.Ape_vase.System.meets
