(* Quickstart: the APE hierarchy in five minutes.
     dune exec examples/quickstart.exe

   Walks bottom-up through the four estimation levels of the paper's
   Figure 2: size a transistor from (gm, Id), build a differential pair
   on a Wilson tail, compose an opamp, and check the estimate against
   the built-in MNA simulator. *)

module E = Ape_estimator
module Mos = Ape_device.Mos
let proc = Ape_process.Process.c12
let pf = Printf.printf
let eng = Ape_util.Units.to_eng

let () =
  pf "== Level 1: size a CMOS transistor from (gm, Id) ==\n";
  (* The paper's leading example: a transconductance and a drain current
     specify the device. *)
  let sized =
    Mos.size ~process:proc proc.Ape_process.Process.nmos
      (Mos.By_gm_id { gm = 100e-6; ids = 10e-6; l = 2.4e-6 })
  in
  pf "  %s\n" (Format.asprintf "%a" Mos.pp_sized sized);
  pf "  parasitics: Cgs=%sF Cgd=%sF Cdb=%sF\n\n"
    (eng sized.Mos.ss.Mos.cgs) (eng sized.Mos.ss.Mos.cgd)
    (eng sized.Mos.ss.Mos.cdb);

  pf "== Level 2: a differential amplifier (DiffCMOS on a Wilson tail) ==\n";
  let diff =
    E.Diff_pair.design proc
      (E.Diff_pair.spec ~av:800. ~tail_topology:E.Bias.Wilson
         E.Diff_pair.Cmos_mirror ~itail:2e-6)
  in
  pf "  estimate: %s\n\n" (Format.asprintf "%a" E.Perf.pp diff.E.Diff_pair.perf);

  pf "== Level 3: an operational amplifier ==\n";
  let opamp =
    E.Opamp.design proc
      (E.Opamp.spec ~av:200. ~ugf:2e6 ~ibias:1e-6 ~cl:10e-12 ())
  in
  pf "  topology: %s\n" (E.Opamp.describe opamp);
  pf "  estimate: %s\n" (Format.asprintf "%a" E.Perf.pp opamp.E.Opamp.perf);

  pf "\n== Verify the estimate against the MNA simulator ==\n";
  let sim = E.Verify.sim_opamp ~slew:false proc opamp in
  pf "  simulated: %s\n" (Format.asprintf "%a" E.Perf.pp sim);

  pf "\n== The elaborated netlist (SPICE syntax) ==\n";
  let frag = E.Opamp.fragment proc opamp in
  print_string (Ape_circuit.Netlist.to_spice frag.E.Fragment.netlist)
