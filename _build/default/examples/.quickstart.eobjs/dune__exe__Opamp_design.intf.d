examples/opamp_design.mli:
