examples/vase_flow.mli:
