examples/filter_design.ml: Ape_circuit Ape_estimator Ape_process Ape_spice Ape_util Float List Printf String
