examples/opamp_design.ml: Ape_estimator Ape_process Ape_synth Ape_util Format List Printf Unix
