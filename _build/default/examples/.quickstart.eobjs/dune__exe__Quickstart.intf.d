examples/quickstart.mli:
