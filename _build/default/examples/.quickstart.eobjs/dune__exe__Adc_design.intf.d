examples/adc_design.mli:
