examples/vase_flow.ml: Ape_estimator Ape_process Ape_util Ape_vase List Printf
