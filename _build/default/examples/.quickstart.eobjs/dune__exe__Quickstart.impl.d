examples/quickstart.ml: Ape_circuit Ape_device Ape_estimator Ape_process Ape_util Format Printf
