(* Data-converter design (paper Figure 3e):
     dune exec examples/adc_design.exe

   Designs the Table-5 4-bit flash ADC and a companion R-2R DAC,
   prints the hierarchy (comparator <- opamp <- diff pair <- mirror),
   checks the converter's static transfer against the elaborated
   transistor-level netlist, and measures the comparator delay. *)

module E = Ape_estimator
module N = Ape_circuit.Netlist
let proc = Ape_process.Process.c12
let pf = Printf.printf
let eng = Ape_util.Units.to_eng

let () =
  pf "== 4-bit flash ADC, conversion delay <= 5 us ==\n";
  let adc =
    E.Data_conv.Flash_adc.design proc
      (E.Data_conv.Flash_adc.spec ~bits:4 ~delay:5e-6 ())
  in
  let comp = adc.E.Data_conv.Flash_adc.comparator in
  pf "  unit comparator: %s\n"
    (E.Opamp.describe comp.E.Data_conv.Comparator.opamp);
  pf "  comparator delay estimate: %ss\n"
    (eng comp.E.Data_conv.Comparator.delay_est);
  pf "  ladder: %sOhm total, window [%g V, %g V]\n"
    (eng adc.E.Data_conv.Flash_adc.spec.E.Data_conv.Flash_adc.r_ladder)
    adc.E.Data_conv.Flash_adc.spec.E.Data_conv.Flash_adc.vref_lo
    adc.E.Data_conv.Flash_adc.spec.E.Data_conv.Flash_adc.vref_hi;
  pf "  estimate: area=%.0f um^2 power=%s\n"
    (adc.E.Data_conv.Flash_adc.perf.E.Perf.gate_area /. 1e-12)
    (eng adc.E.Data_conv.Flash_adc.perf.E.Perf.dc_power);

  let frag = E.Data_conv.Flash_adc.fragment proc adc in
  let nl = E.Fragment.with_supply ~vdd:5. frag in
  pf "  elaboration: %d MOSFETs, %d elements, %d nodes\n"
    (N.mosfet_count nl) (N.device_count nl)
    (List.length (N.nodes nl));

  (* Static transfer: sweep the input over all 16 codes and read the
     thermometer outputs. *)
  pf "\n  static transfer (thermometer code, from the full netlist):\n";
  let nl =
    N.append nl
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = 0.; ac = 0. } ]
  in
  let lsb = 3.0 /. 16. in
  let vref_lo = 1.0 in
  (* Warm-start each solve from the previous code's operating point —
     the continuation a designer's DC sweep would use. *)
  let warm = ref None in
  List.iter
    (fun code ->
      let vin = vref_lo +. ((float_of_int code +. 0.5) *. lsb) in
      let nl = E.Verify.set_source_dc ~name:"VIN" ~dc:vin nl in
      let op = Ape_spice.Dc.solve ?x0:!warm nl in
      warm := Some op.Ape_spice.Dc.x;
      let ones = ref 0 in
      for k = 1 to 15 do
        let node = E.Fragment.port frag (Printf.sprintf "t%d" k) in
        if Ape_spice.Dc.voltage op node > 2.5 then incr ones
      done;
      pf "    vin=%5.3f V  ->  code %2d (%s)\n" vin !ones
        (if !ones = code then "ok" else Printf.sprintf "expected %d" code))
    [ 0; 3; 7; 8; 12; 15 ];

  (* Dynamic: the comparator's measured response. *)
  let sim = E.Verify.sim_module proc (E.Module_lib.D_adc adc) in
  (match sim.E.Verify.response_time with
  | Some t -> pf "\n  measured comparator delay: %ss (spec 5 us)\n" (eng t)
  | None -> pf "\n  comparator delay not measured\n");
  (match sim.E.Verify.dc_code_error with
  | Some e -> pf "  mid-code trip error: %.3f LSB\n" e
  | None -> ());

  pf "\n== 4-bit R-2R DAC, settling <= 5 us ==\n";
  let dac =
    E.Data_conv.Dac.design proc (E.Data_conv.Dac.spec ~bits:4 ~settling:5e-6 ())
  in
  pf "  buffer: %s\n" (E.Opamp.describe dac.E.Data_conv.Dac.buffer);
  pf "  settling estimate: %ss\n" (eng dac.E.Data_conv.Dac.settling_est);
  let sim = E.Verify.sim_module proc (E.Module_lib.D_dac dac) in
  (match sim.E.Verify.perf.E.Perf.gain with
  | Some v -> pf "  mid-code (1000) output: %.4f V (ideal 2.5)\n" v
  | None -> ());
  (match sim.E.Verify.dc_code_error with
  | Some e -> pf "  static error: %.3f LSB\n" e
  | None -> ());
  match sim.E.Verify.response_time with
  | Some t -> pf "  measured settling (1000 -> 0100): %ss\n" (eng t)
  | None -> pf "  settling not measured\n"
