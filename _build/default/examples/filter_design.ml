(* Active-filter design (paper Figure 3c/3d):
     dune exec examples/filter_design.exe

   Designs the Table-5 low-pass (4th-order Sallen-Key Butterworth,
   1 kHz) and band-pass (MFB biquad, 1 kHz) modules, prints the
   estimates, elaborates to transistor level and sweeps the simulated
   response so the Butterworth shape is visible. *)

module E = Ape_estimator
module N = Ape_circuit.Netlist
let proc = Ape_process.Process.c12
let pf = Printf.printf
let eng = Ape_util.Units.to_eng

let sweep_response netlist ~out ~freqs =
  let op = Ape_spice.Dc.solve netlist in
  List.map
    (fun f -> (f, Ape_spice.Measure.gain_at ~out op f))
    freqs

let bar gain gain_max =
  let width = int_of_float (40. *. gain /. gain_max) in
  String.make (max 0 (min 60 width)) '#'

let () =
  pf "== 4th-order Sallen-Key Butterworth low-pass, fc = 1 kHz ==\n";
  let lp =
    E.Filter.design_lp proc { E.Filter.order = 4; f_cutoff = 1e3; r_base = 1e6 }
  in
  List.iteri
    (fun i (s : E.Filter.stage) ->
      pf "  stage %d: Q=%.3f K=%.3f R=%s C=%sF (opamp: %s)\n" (i + 1)
        s.E.Filter.q s.E.Filter.k (eng s.E.Filter.r) (eng s.E.Filter.c)
        (E.Opamp.describe s.E.Filter.opamp))
    lp.E.Filter.stages;
  pf "  est: gain=%.3f f-3dB=%s f-20dB=%s power=%s\n" lp.E.Filter.gain_est
    (eng lp.E.Filter.f3db_est) (eng lp.E.Filter.f20db_est)
    (eng lp.E.Filter.perf.E.Perf.dc_power);

  let frag = E.Filter.fragment_lp proc lp in
  let nl = E.Fragment.with_supply ~vdd:5. frag in
  let nl =
    N.append nl
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = 2.5; ac = 1. } ]
  in
  pf "  elaboration: %d MOSFETs, %d elements\n" (N.mosfet_count nl)
    (N.device_count nl);
  pf "  simulated response:\n";
  let freqs = Ape_util.Float_ext.logspace 50. 20e3 14 in
  let response = sweep_response nl ~out:"out" ~freqs in
  let gmax = List.fold_left (fun m (_, g) -> Float.max m g) 0. response in
  List.iter
    (fun (f, g) ->
      pf "    %8sHz  %6.3f  %s\n" (eng f) g (bar g gmax))
    response;

  pf "\n== MFB band-pass, f0 = 1 kHz, Q = 1 ==\n";
  let bp =
    E.Filter.design_bp proc
      { E.Filter.f_center = 1e3; q = 1.; gain = 1.5; c_base = 10e-9 }
  in
  pf "  R1=%s R2=%s R3=%s C=%sF\n" (eng bp.E.Filter.r1) (eng bp.E.Filter.r2)
    (eng bp.E.Filter.r3) (eng bp.E.Filter.bp_spec.E.Filter.c_base);
  pf "  est: f0=%s gain=%.2f BW=%s\n" (eng bp.E.Filter.f0_est)
    bp.E.Filter.gain_est (eng bp.E.Filter.bw_est);
  let fragb = E.Filter.fragment_bp proc bp in
  let nlb = E.Fragment.with_supply ~vdd:5. fragb in
  let nlb =
    N.append nlb
      [ N.Vsource { name = "VIN"; p = "in"; n = N.ground; dc = 2.5; ac = 1. } ]
  in
  let freqs = Ape_util.Float_ext.logspace 50. 20e3 14 in
  let response = sweep_response nlb ~out:"out" ~freqs in
  let gmax = List.fold_left (fun m (_, g) -> Float.max m g) 0. response in
  pf "  simulated response:\n";
  List.iter
    (fun (f, g) -> pf "    %8sHz  %6.3f  %s\n" (eng f) g (bar g gmax))
    response;
  let op = Ape_spice.Dc.solve nlb in
  match
    Ape_spice.Measure.bandpass_characteristics ~fmin:20. ~fmax:50e3 ~out:"out" op
  with
  | Some c ->
    pf "  measured: f0=%s peak=%.2f BW=%s\n" (eng c.Ape_spice.Measure.f_center)
      c.Ape_spice.Measure.peak_gain
      (eng c.Ape_spice.Measure.bandwidth)
  | None -> pf "  (no band-pass peak found)\n"
