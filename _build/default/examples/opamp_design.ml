(* Opamp design, the paper's §5.1 workflow:
     dune exec examples/opamp_design.exe

   A specification is first estimated and sized by APE (sub-millisecond),
   then polished by the simulated-annealing synthesis engine searching
   ±20 % around the APE point — and, for contrast, the same spec is
   attacked standalone with wide intervals, reproducing the paper's
   Table 1 failure mode. *)

module E = Ape_estimator
module S = Ape_synth
let proc = Ape_process.Process.c12
let pf = Printf.printf
let eng = Ape_util.Units.to_eng
let opt f = function Some x -> f x | None -> "-"

let () =
  let row =
    {
      S.Opamp_problem.name = "demo";
      gain = 180.;
      ugf = 4e6;
      area = 1.;
      (* budget filled below from the APE estimate *)
      ibias = 2e-6;
      curr_src = E.Bias.Wilson;
      buffer = true;
      zout = Some 2e3;
      cl = 10e-12;
    }
  in
  pf "spec: gain>=%.0f  UGF>=%s  Ibias=%s  buffer with Zout<=%s\n\n" row.gain
    (eng row.ugf) (eng row.ibias) (opt eng row.zout);

  (* --- APE front end --- *)
  let t0 = Unix.gettimeofday () in
  let design = S.Opamp_problem.ape_design proc row in
  let ape_ms = 1000. *. (Unix.gettimeofday () -. t0) in
  pf "APE sizing (%.2f ms): %s\n" ape_ms (E.Opamp.describe design);
  pf "  est: %s\n" (Format.asprintf "%a" E.Perf.pp design.E.Opamp.perf);
  let sim = E.Verify.sim_opamp proc design in
  pf "  sim: %s\n\n" (Format.asprintf "%a" E.Perf.pp sim);

  let row =
    { row with S.Opamp_problem.area = 1.3 *. design.E.Opamp.perf.E.Perf.gate_area }
  in
  pf "area budget (1.3x APE estimate): %.0f um^2\n\n"
    (row.S.Opamp_problem.area /. 1e-12);

  (* --- synthesis from the APE initial point, +/-20 % intervals --- *)
  let rng = Ape_util.Rng.create 42 in
  let run mode label =
    let r = S.Driver.run ~schedule:S.Anneal.quick_schedule ~rng proc ~mode row in
    pf "%s: %s\n" label r.S.Driver.comment;
    pf "  gain=%s ugf=%s area=%.0fum^2 power=%s  (%d evaluations, %.2f s)\n"
      (opt (Printf.sprintf "%.1f") r.S.Driver.gain)
      (opt eng r.S.Driver.ugf)
      (r.S.Driver.area /. 1e-12)
      (eng r.S.Driver.power)
      r.S.Driver.stats.S.Anneal.evaluations r.S.Driver.stats.S.Anneal.seconds;
    r
  in
  let ape_r =
    run (S.Opamp_problem.Ape_centered 0.2) "synthesis with APE init (+/-20%)"
  in
  pf "  final unknowns:\n";
  List.iter
    (fun (name, v) -> pf "    %-12s %s\n" name (eng v))
    ape_r.S.Driver.best_values;
  pf "\n";
  ignore (run S.Opamp_problem.Wide "standalone synthesis (wide, random start)")
