(* Tests for Ape_device: the smooth MOS model, region handling, the
   estimation-view equations, sizing round trips and passives. *)

module Mos = Ape_device.Mos
module Passive = Ape_device.Passive
module Card = Ape_process.Model_card
module Proc = Ape_process.Process
module F = Ape_util.Float_ext

let proc = Proc.c12
let nmos = proc.Proc.nmos
let pmos = proc.Proc.pmos
let g = Mos.geom ~w:20e-6 ~l:2.4e-6

let check_close ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.8g vs %.8g" msg expected actual)
    true
    (F.approx_equal ~rtol:tol ~atol:tol expected actual)

(* ---------- geometry ---------- *)

let test_geom () =
  check_close "gate area" 48e-12 (Mos.gate_area g);
  Alcotest.check_raises "bad geom"
    (Invalid_argument "Mos.geom: non-positive dimension") (fun () ->
      ignore (Mos.geom ~w:0. ~l:1e-6))

(* ---------- large signal ---------- *)

let test_regions () =
  let op v_gs v_ds = Mos.operating_point nmos g ~vgs:v_gs ~vds:v_ds ~vsb:0. in
  Alcotest.(check bool) "cutoff" true ((op 0.3 2.).Mos.region = Mos.Cutoff);
  Alcotest.(check bool) "saturation" true
    ((op 1.5 2.).Mos.region = Mos.Saturation);
  Alcotest.(check bool) "triode" true ((op 2.5 0.2).Mos.region = Mos.Triode)

let test_square_law_magnitude () =
  (* Deep in strong inversion the smooth model approaches the square
     law (with CLM and Leff corrections). *)
  let vgs = 2.0 and vds = 2.5 in
  let i = Mos.drain_current nmos g ~vgs ~vds ~vsb:0. in
  let vov = vgs -. Float.abs nmos.Card.vto in
  let leff = 2.4e-6 -. (2. *. nmos.Card.ld) in
  let expected =
    0.5 *. nmos.Card.kp *. (20e-6 /. leff) *. vov *. vov
    *. (1. +. (Card.lambda_at nmos 2.4e-6 *. vds))
  in
  check_close "square law" expected i ~tol:0.02

let test_pmos_sign () =
  (* A conducting PMOS sources current: Id < 0 with physically signed
     terminal voltages. *)
  let i = Mos.drain_current pmos g ~vgs:(-2.) ~vds:(-2.) ~vsb:0. in
  Alcotest.(check bool) "pmos current negative" true (i < -1e-6);
  let i_off = Mos.drain_current pmos g ~vgs:0. ~vds:(-2.) ~vsb:0. in
  Alcotest.(check bool) "pmos off" true (Float.abs i_off < 1e-9)

let test_source_drain_symmetry () =
  (* Swapping source and drain negates the current. *)
  let vg = 3.0 in
  let forward = Mos.drain_current nmos g ~vgs:vg ~vds:1.0 ~vsb:0. in
  (* Swap: the old drain (at +1.0) becomes the source: relative to it,
     vgs' = vg - 1.0, vds' = -1.0, and the new source-to-bulk is 1.0. *)
  let backward =
    Mos.drain_current nmos g ~vgs:(vg -. 1.0) ~vds:(-1.0) ~vsb:1.0
  in
  check_close "antisymmetric" forward (-.backward) ~tol:1e-9

let prop_current_monotone_vgs =
  QCheck.Test.make ~name:"Id monotone in vgs (sat)" ~count:200
    QCheck.(pair (float_range 0. 3.) (float_range 0. 3.))
    (fun (v1, v2) ->
      let lo = Float.min v1 v2 and hi = Float.max v1 v2 in
      Mos.drain_current nmos g ~vgs:hi ~vds:4. ~vsb:0.
      >= Mos.drain_current nmos g ~vgs:lo ~vds:4. ~vsb:0. -. 1e-15)

let prop_current_continuous_at_vdsat =
  QCheck.Test.make ~name:"Id continuous across vdsat" ~count:100
    (QCheck.float_range 1.0 3.0) (fun vgs ->
      let op = Mos.operating_point nmos g ~vgs ~vds:2.0 ~vsb:0. in
      let vdsat = op.Mos.vdsat in
      let below =
        Mos.drain_current nmos g ~vgs ~vds:(vdsat -. 1e-7) ~vsb:0.
      in
      let above =
        Mos.drain_current nmos g ~vgs ~vds:(vdsat +. 1e-7) ~vsb:0.
      in
      F.rel_error below above < 1e-3)

let prop_smooth_subthreshold =
  QCheck.Test.make ~name:"current positive and smooth below threshold"
    ~count:100
    (QCheck.float_range 0.0 0.9)
    (fun vgs ->
      let i = Mos.drain_current nmos g ~vgs ~vds:2.0 ~vsb:0. in
      i >= 0. && i < 1e-3)

(* ---------- small signal ---------- *)

let test_small_signal_consistency () =
  (* The numeric gm must match a direct finite difference of Id. *)
  let vgs = 1.4 and vds = 2.5 in
  let ss = Mos.small_signal nmos g ~vgs ~vds ~vsb:0. in
  let h = 1e-5 in
  let gm_fd =
    (Mos.drain_current nmos g ~vgs:(vgs +. h) ~vds ~vsb:0.
    -. Mos.drain_current nmos g ~vgs:(vgs -. h) ~vds ~vsb:0.)
    /. (2. *. h)
  in
  check_close "gm" gm_fd ss.Mos.gm ~tol:1e-4;
  Alcotest.(check bool) "caps positive" true
    (ss.Mos.cgs > 0. && ss.Mos.cgd > 0. && ss.Mos.cdb > 0.)

let test_est_vs_sim_gm () =
  (* Paper Eq.(2) vs the smooth model at a healthy overdrive: within
     15 %. *)
  let ids = 50e-6 in
  let wl = Mos.size_for_id_vov nmos ~ids ~vov:0.4 in
  let vgs = Mos.operating_vgs nmos ~w_over_l:wl ~ids ~vsb:0. in
  let gm_est = Mos.est_gm nmos ~w_over_l:wl ~ids in
  let g2 = Mos.geom ~w:(wl *. 2.4e-6) ~l:2.4e-6 in
  let ss = Mos.small_signal nmos g2 ~vgs ~vds:2.5 ~vsb:0. in
  (* The paper-faithful Eq.(2) omits CLM (+12%) and the Leff shortening
     (+14%): a ~30% systematic estimate gap is the expected envelope. *)
  Alcotest.(check bool) "gm within 30%" true
    (F.rel_error gm_est ss.Mos.gm < 0.30)

let test_est_equations () =
  check_close "gm formula" (Float.sqrt (2. *. 75e-6 *. 10. *. 1e-5))
    (Mos.est_gm nmos ~w_over_l:10. ~ids:1e-5);
  let gm = 1e-4 in
  let gmb = Mos.est_gmb nmos ~gm ~vsb:1.0 in
  check_close "gmb formula"
    (gm *. nmos.Card.gamma /. (2. *. Float.sqrt (nmos.Card.phi +. 1.0)))
    gmb;
  let gds = Mos.est_gds nmos ~l:2.4e-6 ~ids:1e-5 ~vds:2.5 in
  let lam = Card.lambda_at nmos 2.4e-6 in
  check_close "gds formula" (lam *. 1e-5 /. (1. +. (lam *. 2.5))) gds

(* ---------- sizing ---------- *)

let test_size_roundtrip_current () =
  (* A device sized for (Id, Vov) must conduct Id at its bias point under
     the full simulation model (2% tolerance). *)
  List.iter
    (fun (ids, vov) ->
      let s =
        Mos.size ~vds:2.5 ~process:proc nmos (Mos.By_id_vov { ids; vov; l = 2.4e-6 })
      in
      let i_sim =
        Mos.drain_current nmos s.Mos.geom ~vgs:s.Mos.vgs ~vds:2.5 ~vsb:0.
      in
      Alcotest.(check bool)
        (Printf.sprintf "current realised (Id=%g, Vov=%g): %g vs %g" ids vov
           ids i_sim)
        true
        (F.rel_error ids i_sim < 0.02))
    [ (10e-6, 0.3); (100e-6, 0.5); (1e-6, 0.2); (50e-6, 1.0) ]

let test_size_roundtrip_gm () =
  let gm = 200e-6 and ids = 40e-6 in
  let s =
    Mos.size ~vds:2.5 ~process:proc nmos (Mos.By_gm_id { gm; ids; l = 2.4e-6 })
  in
  check_close "design gm recorded" gm s.Mos.gm ~tol:1e-9;
  let ss =
    Mos.small_signal nmos s.Mos.geom ~vgs:s.Mos.vgs ~vds:2.5 ~vsb:0.
  in
  Alcotest.(check bool) "sim gm within 20%" true
    (F.rel_error gm ss.Mos.gm < 0.20)

let test_size_wmin_stretch () =
  (* A weak-ratio request must stretch L, not silently clamp W. *)
  let s =
    Mos.size ~vds:2.5 ~process:proc nmos
      (Mos.By_id_vov { ids = 0.5e-6; vov = 1.0; l = 2.4e-6 })
  in
  Alcotest.(check bool) "W at minimum" true
    (s.Mos.geom.Mos.w >= proc.Proc.wmin -. 1e-12);
  Alcotest.(check bool) "L stretched" true (s.Mos.geom.Mos.l > 2.4e-6)

let test_size_errors () =
  Alcotest.check_raises "bad gm" (Invalid_argument "Mos.size_for_gm_id")
    (fun () -> ignore (Mos.size_for_gm_id nmos ~gm:0. ~ids:1e-6));
  Alcotest.check_raises "bad vov" (Invalid_argument "Mos.size_for_id_vov")
    (fun () -> ignore (Mos.size_for_id_vov nmos ~ids:1e-6 ~vov:0.))

let test_model_levels () =
  (* Higher levels reduce the current at the same bias (mobility
     degradation / velocity saturation). *)
  let bias card = Mos.drain_current card g ~vgs:2.5 ~vds:2.5 ~vsb:0. in
  let i1 = bias nmos in
  let i2 = bias (Card.with_level Card.Level2 nmos) in
  let i3 = bias (Card.with_level Card.Level3 nmos) in
  Alcotest.(check bool) "level2 <= level1" true (i2 <= i1);
  Alcotest.(check bool) "level3 <= level2" true (i3 <= i2)

(* ---------- passives ---------- *)

let test_passives () =
  let r = Passive.resistor proc 10e3 in
  Alcotest.(check bool) "resistor area positive" true (r.Passive.area > 0.);
  let c = Passive.capacitor proc 1e-12 in
  Alcotest.(check bool) "cap area positive" true (c.Passive.area > 0.);
  check_close "e96 snaps 4.7k" 4.75e3 (Passive.e96_round 4.7e3) ~tol:0.02;
  check_close "e96 snaps 1.0" 1.0 (Passive.e96_round 1.001) ~tol:1e-3;
  Alcotest.check_raises "bad resistor"
    (Invalid_argument "Passive.resistor: non-positive") (fun () ->
      ignore (Passive.resistor proc 0.))

let prop_e96_within_1pct =
  QCheck.Test.make ~name:"e96 rounding within 1.5%" ~count:300
    (QCheck.float_range 1. 1e6) (fun x ->
      F.rel_error x (Passive.e96_round x) < 0.015)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_device"
    [
      ("geometry", [ Alcotest.test_case "geom" `Quick test_geom ]);
      ( "large-signal",
        [
          Alcotest.test_case "regions" `Quick test_regions;
          Alcotest.test_case "square law" `Quick test_square_law_magnitude;
          Alcotest.test_case "pmos sign" `Quick test_pmos_sign;
          Alcotest.test_case "S/D symmetry" `Quick test_source_drain_symmetry;
          Alcotest.test_case "model levels" `Quick test_model_levels;
        ] );
      qsuite "large-signal-properties"
        [
          prop_current_monotone_vgs;
          prop_current_continuous_at_vdsat;
          prop_smooth_subthreshold;
        ];
      ( "small-signal",
        [
          Alcotest.test_case "fd consistency" `Quick
            test_small_signal_consistency;
          Alcotest.test_case "est vs sim gm" `Quick test_est_vs_sim_gm;
          Alcotest.test_case "paper equations" `Quick test_est_equations;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "current roundtrip" `Quick
            test_size_roundtrip_current;
          Alcotest.test_case "gm roundtrip" `Quick test_size_roundtrip_gm;
          Alcotest.test_case "wmin stretch" `Quick test_size_wmin_stretch;
          Alcotest.test_case "errors" `Quick test_size_errors;
        ] );
      ( "passives",
        [ Alcotest.test_case "r/c/e96" `Quick test_passives ] );
      qsuite "passive-properties" [ prop_e96_within_1pct ];
    ]
