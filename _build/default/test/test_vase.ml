(* Tests for Ape_vase: the S-expression reader, the system spec language
   (Figure 1's front end) and the constraint transformation. *)

module Sexp = Ape_vase.Sexp
module System = Ape_vase.System
module Cm = Ape_vase.Constraint_map
module E = Ape_estimator
module F = Ape_util.Float_ext

let proc = Ape_process.Process.c12

(* ---------- sexp ---------- *)

let test_sexp_parse () =
  match Sexp.parse "(a (b 1 2) c) ; comment\n(d)" with
  | [ Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "1"; Sexp.Atom "2" ]; Sexp.Atom "c" ];
      Sexp.List [ Sexp.Atom "d" ] ] ->
    ()
  | other ->
    Alcotest.fail
      ("unexpected parse: "
      ^ String.concat " " (List.map Sexp.to_string other))

let test_sexp_helpers () =
  let items = Sexp.parse "(gain 40) (fc 1k)" in
  Alcotest.(check (option (float 1e-9))) "assoc number" (Some 40.)
    (Sexp.assoc_number "gain" items);
  Alcotest.(check (option (float 1e-3))) "si suffix" (Some 1000.)
    (Sexp.assoc_number "fc" items);
  Alcotest.(check (option (float 1e-9))) "missing" None
    (Sexp.assoc_number "nope" items)

let test_sexp_unbalanced () =
  match Sexp.parse "(a (b)" with
  | _ -> () (* tolerated: open list runs to EOF *)
  | exception Sexp.Parse_error _ -> ()

let test_sexp_roundtrip () =
  let s = "(system x (chain (amplifier (gain 10))))" in
  match Sexp.parse s with
  | [ one ] -> Alcotest.(check string) "roundtrip" s (Sexp.to_string one)
  | _ -> Alcotest.fail "expected one form"

(* ---------- system spec ---------- *)

let audio_spec =
  "(system audio_front_end\n\
  \  (chain\n\
  \    (lowpass (order 4) (fc 1k))\n\
  \    (amplifier (gain 40) (bandwidth 20k))\n\
  \    (amplifier (gain 2.5) (bandwidth 20k)))\n\
  \  (require (total_gain 100) (bandwidth 900)))"

let test_parse_system () =
  let sys = System.parse audio_spec in
  Alcotest.(check string) "name" "audio_front_end" sys.System.name;
  Alcotest.(check int) "three modules" 3 (List.length sys.System.chain);
  Alcotest.(check (option (float 1e-9))) "gain requirement" (Some 100.)
    sys.System.requirements.System.total_gain;
  match (List.hd sys.System.chain).System.spec with
  | E.Module_lib.Lowpass_m lp ->
    Alcotest.(check int) "order" 4 lp.E.Filter.order;
    Alcotest.(check (float 1e-3)) "fc" 1000. lp.E.Filter.f_cutoff
  | _ -> Alcotest.fail "first module should be the lowpass"

let test_parse_system_errors () =
  let expect_bad s =
    match System.parse s with
    | exception (System.Spec_error _ | Sexp.Parse_error _) -> ()
    | _ -> Alcotest.fail ("expected Spec_error for " ^ s)
  in
  expect_bad "(not_a_system x)";
  expect_bad "(system x (chain (warp_drive (gain 1))))";
  expect_bad "(system x (chain (amplifier (gain 10))))" (* missing bandwidth *)

let test_estimate_system () =
  let sys = System.parse audio_spec in
  let est = System.estimate proc sys in
  Alcotest.(check int) "three designs" 3 (List.length est.System.designs);
  (* Gain: lpf pass-band (~2.57) x 40 x 2.5 = ~257 >= 100. *)
  Alcotest.(check bool) "gain total plausible" true
    (est.System.gain_total > 100. && est.System.gain_total < 500.);
  Alcotest.(check bool) "bandwidth from slowest stage" true
    (est.System.bandwidth_min <= 1.05e3);
  Alcotest.(check bool) "area accumulates" true (est.System.area_total > 0.);
  List.iter
    (fun (name, ok) ->
      Alcotest.(check bool) ("requirement " ^ name) true ok)
    est.System.meets

(* ---------- constraint transformation ---------- *)

let test_allocate_bandwidth () =
  (* Two identical first-order stages: each needs BW_total/sqrt(sqrt(2)-1). *)
  let per_stage = Cm.allocate_bandwidth ~total:20e3 ~stages:2 in
  Alcotest.(check bool) "per-stage wider than total" true (per_stage > 20e3);
  Alcotest.(check (float 1.)) "formula"
    (20e3 /. Float.sqrt ((2. ** 0.5) -. 1.))
    per_stage

let test_allocate_gain_even () =
  let limits =
    [
      { Cm.max_gain = 100.; area_per_gain = 1. };
      { Cm.max_gain = 100.; area_per_gain = 1. };
    ]
  in
  match Cm.allocate_gain ~total:100. ~limits with
  | Some [ g1; g2 ] ->
    Alcotest.(check (float 1e-6)) "even split" g1 g2;
    Alcotest.(check bool) "product covers total" true (g1 *. g2 >= 100. *. 0.999)
  | _ -> Alcotest.fail "expected two allocations"

let test_allocate_gain_clamped () =
  let limits =
    [
      { Cm.max_gain = 5.; area_per_gain = 1. };
      { Cm.max_gain = 100.; area_per_gain = 1. };
    ]
  in
  match Cm.allocate_gain ~total:100. ~limits with
  | Some [ g1; g2 ] ->
    Alcotest.(check bool) "stage1 clamped" true (g1 <= 5. +. 1e-9);
    Alcotest.(check bool) "stage2 compensates" true (g2 >= 19.9);
    Alcotest.(check bool) "product covers" true (g1 *. g2 >= 99.)
  | _ -> Alcotest.fail "expected allocation"

let test_allocate_gain_infeasible () =
  let limits = [ { Cm.max_gain = 3.; area_per_gain = 1. } ] in
  Alcotest.(check bool) "infeasible detected" true
    (Cm.allocate_gain ~total:100. ~limits = None)

let prop_allocation_respects_limits =
  QCheck.Test.make ~name:"allocations never exceed stage limits" ~count:50
    QCheck.(pair (float_range 2. 50.) (float_range 2. 50.))
    (fun (m1, m2) ->
      let limits =
        [ { Cm.max_gain = m1; area_per_gain = 1. };
          { Cm.max_gain = m2; area_per_gain = 1. } ]
      in
      let total = 0.8 *. m1 *. m2 in
      match Cm.allocate_gain ~total ~limits with
      | None -> false
      | Some gains ->
        List.for_all2 (fun g l -> g <= l.Cm.max_gain +. 1e-6) gains limits
        && List.fold_left ( *. ) 1. gains >= total *. 0.99)

let test_probe_stage_limit () =
  let limit = Cm.probe_stage_limit ~bandwidth:20e3 proc in
  (* Our single/two-stage opamps deliver gains in the hundreds to tens of
     thousands at audio bandwidths. *)
  Alcotest.(check bool) "probed limit plausible" true
    (limit.Cm.max_gain > 50. && limit.Cm.max_gain < 1e7);
  Alcotest.(check bool) "area density positive" true (limit.Cm.area_per_gain > 0.)

let test_plan_gain_chain () =
  match System.plan_gain_chain proc ~total_gain:1000. ~bandwidth:20e3 ~stages:2 with
  | Some gains ->
    Alcotest.(check int) "two stages" 2 (List.length gains);
    Alcotest.(check bool) "covers total" true
      (List.fold_left ( *. ) 1. gains >= 999.)
  | None -> Alcotest.fail "two-stage 60 dB plan should be feasible"

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "ape_vase"
    [
      ( "sexp",
        [
          Alcotest.test_case "parse" `Quick test_sexp_parse;
          Alcotest.test_case "helpers" `Quick test_sexp_helpers;
          Alcotest.test_case "unbalanced" `Quick test_sexp_unbalanced;
          Alcotest.test_case "roundtrip" `Quick test_sexp_roundtrip;
        ] );
      ( "system",
        [
          Alcotest.test_case "parse" `Quick test_parse_system;
          Alcotest.test_case "errors" `Quick test_parse_system_errors;
          Alcotest.test_case "estimate" `Quick test_estimate_system;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "bandwidth split" `Quick test_allocate_bandwidth;
          Alcotest.test_case "even gain" `Quick test_allocate_gain_even;
          Alcotest.test_case "clamped gain" `Quick test_allocate_gain_clamped;
          Alcotest.test_case "infeasible" `Quick test_allocate_gain_infeasible;
          Alcotest.test_case "probe limit" `Quick test_probe_stage_limit;
          Alcotest.test_case "plan chain" `Quick test_plan_gain_chain;
        ] );
      qsuite "constraint-properties" [ prop_allocation_respects_limits ];
    ]
