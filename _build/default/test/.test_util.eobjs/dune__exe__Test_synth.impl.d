test/test_synth.ml: Alcotest Ape_circuit Ape_device Ape_estimator Ape_process Ape_synth Ape_util Array Float List Printf QCheck QCheck_alcotest
