test/test_util.ml: Alcotest Ape_util Array Complex Float Gen List Printf QCheck QCheck_alcotest String
