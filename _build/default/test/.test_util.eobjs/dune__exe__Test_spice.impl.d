test/test_spice.ml: Alcotest Ape_circuit Ape_device Ape_estimator Ape_process Ape_spice Ape_util Array Complex Float List Printf QCheck QCheck_alcotest
