test/test_symbolic.ml: Alcotest Ape_symbolic Ape_util Float List Printf QCheck QCheck_alcotest
