test/test_circuit.ml: Alcotest Ape_circuit Ape_device Ape_process Ape_util Gen List QCheck QCheck_alcotest String
