test/test_process.ml: Alcotest Ape_process Ape_util Float List Printf QCheck QCheck_alcotest
