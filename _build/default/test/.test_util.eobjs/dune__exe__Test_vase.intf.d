test/test_vase.mli:
