test/test_vase.ml: Alcotest Ape_estimator Ape_process Ape_util Ape_vase Float List QCheck QCheck_alcotest String
