test/test_estimator.ml: Alcotest Ape_circuit Ape_device Ape_estimator Ape_process Ape_symbolic Ape_util Float List Option Printf QCheck QCheck_alcotest String
