test/test_device.ml: Alcotest Ape_device Ape_process Ape_util Float List Printf QCheck QCheck_alcotest
