(** String helpers missing from the standard library (OCaml 5.1). *)

val replace_all : pattern:string -> with_:string -> string -> string
(** Replace every non-overlapping occurrence, left to right.  A single
    pass; apply repeatedly for fixpoint semantics. *)

val replace_fixpoint : pattern:string -> with_:string -> string -> string
(** Apply {!replace_all} until the string stops changing.  The
    replacement must not contain the pattern (checked, raises
    [Invalid_argument]). *)

val split_words : string -> string list
(** Split on runs of blanks (space/tab), dropping empty fields. *)

val starts_with_ci : prefix:string -> string -> bool
(** Case-insensitive prefix test. *)
