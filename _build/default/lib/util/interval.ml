type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point x = make x x

let of_center ?(pct = 0.2) x =
  let a = x *. (1. -. pct) and b = x *. (1. +. pct) in
  make (Float.min a b) (Float.max a b)

let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let mid t = 0.5 *. (t.lo +. t.hi)
let contains t x = t.lo <= x && x <= t.hi
let is_point t = t.lo = t.hi
let clamp t x = Float.min t.hi (Float.max t.lo x)

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo > hi then None else Some (make lo hi)

let hull a b = make (Float.min a.lo b.lo) (Float.max a.hi b.hi)
let neg t = make (-.t.hi) (-.t.lo)
let add a b = make (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = add a (neg b)

let mul a b =
  let p1 = a.lo *. b.lo
  and p2 = a.lo *. b.hi
  and p3 = a.hi *. b.lo
  and p4 = a.hi *. b.hi in
  make
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let inv t =
  if contains t 0. then raise Division_by_zero;
  make (1. /. t.hi) (1. /. t.lo)

let div a b = mul a (inv b)

let scale k t =
  let a = k *. t.lo and b = k *. t.hi in
  make (Float.min a b) (Float.max a b)

let map_monotone f t =
  let a = f t.lo and b = f t.hi in
  make (Float.min a b) (Float.max a b)

let sample st t =
  if is_point t then t.lo
  else t.lo +. (Random.State.float st 1.0 *. width t)

let pp fmt t = Format.fprintf fmt "[%s, %s]" (Units.to_eng t.lo) (Units.to_eng t.hi)
let to_string t = Format.asprintf "%a" pp t
