lib/util/strings.ml: Buffer List String
