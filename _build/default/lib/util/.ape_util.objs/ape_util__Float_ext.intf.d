lib/util/float_ext.mli:
