lib/util/table.mli:
