lib/util/interval.ml: Float Format Random Units
