lib/util/poly.ml: Array Complex Float Format List
