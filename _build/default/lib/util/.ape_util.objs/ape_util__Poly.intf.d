lib/util/poly.mli: Complex Format
