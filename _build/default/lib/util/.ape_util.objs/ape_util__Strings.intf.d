lib/util/strings.mli:
