lib/util/rootfind.mli:
