lib/util/interval.mli: Format Random
