lib/util/float_ext.ml: Float List
