lib/util/matrix.mli: Complex Float Format
