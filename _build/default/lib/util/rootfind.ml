exception No_bracket
exception No_convergence

let bisect ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0. then lo
  else if fhi = 0. then hi
  else if flo *. fhi > 0. then raise No_bracket
  else begin
    let lo = ref lo and hi = ref hi and flo = ref flo in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         let mid = 0.5 *. (!lo +. !hi) in
         let fmid = f mid in
         if fmid = 0. || !hi -. !lo < tol *. (1. +. Float.abs mid) then begin
           result := mid;
           raise Exit
         end;
         if !flo *. fmid < 0. then hi := mid
         else begin
           lo := mid;
           flo := fmid
         end
       done;
       result := 0.5 *. (!lo +. !hi)
     with Exit -> ());
    !result
  end

(* Brent's method as in "Algorithms for Minimization without Derivatives";
   maintains the bracket [a, b] with b the best iterate. *)
let brent ?(tol = 1e-13) ?(max_iter = 100) f a0 b0 =
  let fa0 = f a0 and fb0 = f b0 in
  if fa0 = 0. then a0
  else if fb0 = 0. then b0
  else if fa0 *. fb0 > 0. then raise No_bracket
  else begin
    let a = ref a0 and b = ref b0 and fa = ref fa0 and fb = ref fb0 in
    if Float.abs !fa < Float.abs !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let mflag = ref true and d = ref !a in
    let answer = ref !b in
    (try
       for _ = 1 to max_iter do
         if !fb = 0. || Float.abs (!b -. !a) < tol *. (1. +. Float.abs !b)
         then begin
           answer := !b;
           raise Exit
         end;
         let s =
           if !fa <> !fc && !fb <> !fc then
             (* Inverse quadratic interpolation. *)
             (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
             +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
             +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
           else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
         in
         let cond1 =
           let lo = ((3. *. !a) +. !b) /. 4. in
           not
             ((s > Float.min lo !b && s < Float.max lo !b)
             || (s > Float.min !b lo && s < Float.max !b lo))
         in
         let cond2 = !mflag && Float.abs (s -. !b) >= Float.abs (!b -. !c) /. 2. in
         let cond3 =
           (not !mflag) && Float.abs (s -. !b) >= Float.abs (!c -. !d) /. 2.
         in
         let s =
           if cond1 || cond2 || cond3 then begin
             mflag := true;
             0.5 *. (!a +. !b)
           end
           else begin
             mflag := false;
             s
           end
         in
         let fs = f s in
         d := !c;
         c := !b;
         fc := !fb;
         if !fa *. fs < 0. then begin
           b := s;
           fb := fs
         end
         else begin
           a := s;
           fa := fs
         end;
         if Float.abs !fa < Float.abs !fb then begin
           let t = !a in
           a := !b;
           b := t;
           let t = !fa in
           fa := !fb;
           fb := t
         end
       done;
       answer := !b
     with Exit -> ());
    !answer
  end

let newton ?(tol = 1e-12) ?(max_iter = 60) ~f ~df x0 =
  let rec loop x i =
    if i > max_iter then raise No_convergence;
    let fx = f x in
    let dfx = df x in
    if Float.abs dfx < 1e-300 then raise No_convergence;
    let x' = x -. (fx /. dfx) in
    if Float.abs (x' -. x) < tol *. (1. +. Float.abs x') then x'
    else loop x' (i + 1)
  in
  loop x0 0

let expand_bracket ?(factor = 1.6) ?(max_expand = 60) f lo hi =
  if lo >= hi then invalid_arg "Rootfind.expand_bracket: lo >= hi";
  let rec loop lo hi i =
    if i > max_expand then raise No_bracket;
    let flo = f lo and fhi = f hi in
    if flo *. fhi <= 0. then (lo, hi)
    else begin
      let mid = 0.5 *. (lo +. hi) and half = 0.5 *. (hi -. lo) in
      let grown = half *. factor in
      loop (mid -. grown) (mid +. grown) (i + 1)
    end
  in
  loop lo hi 0

let solve_increasing ?(tol = 1e-12) f ~target lo hi =
  let g x = f x -. target in
  let lo, hi =
    if g lo *. g hi <= 0. then (lo, hi) else expand_bracket g lo hi
  in
  brent ~tol g lo hi
