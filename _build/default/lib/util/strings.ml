let replace_all ~pattern ~with_ s =
  if pattern = "" then invalid_arg "Strings.replace_all: empty pattern";
  let plen = String.length pattern in
  let buf = Buffer.create (String.length s) in
  let i = ref 0 in
  let n = String.length s in
  while !i < n do
    if !i + plen <= n && String.sub s !i plen = pattern then begin
      Buffer.add_string buf with_;
      i := !i + plen
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let contains_sub ~sub s =
  let slen = String.length sub and n = String.length s in
  if slen = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + slen <= n do
      if String.sub s !i slen = sub then found := true else incr i
    done;
    !found
  end

let replace_fixpoint ~pattern ~with_ s =
  if contains_sub ~sub:pattern with_ then
    invalid_arg "Strings.replace_fixpoint: replacement contains pattern";
  let rec loop s =
    let s' = replace_all ~pattern ~with_ s in
    if String.equal s' s then s else loop s'
  in
  loop s

let split_words s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun w -> String.length w > 0)

let starts_with_ci ~prefix s =
  String.length s >= String.length prefix
  && String.equal
       (String.lowercase_ascii (String.sub s 0 (String.length prefix)))
       (String.lowercase_ascii prefix)
