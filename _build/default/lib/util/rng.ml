type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5deece66 |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]

let uniform t lo hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. (Random.State.float t 1.0 *. (hi -. lo))

let log_uniform t lo hi =
  if lo <= 0. || hi <= 0. then invalid_arg "Rng.log_uniform: bounds <= 0";
  Float.exp (uniform t (Float.log lo) (Float.log hi))

let gauss t ~mean ~sigma =
  let u1 = Float.max 1e-300 (Random.State.float t 1.0) in
  let u2 = Random.State.float t 1.0 in
  mean
  +. sigma
     *. Float.sqrt (-2. *. Float.log u1)
     *. Float.cos (2. *. Float.pi *. u2)

let int t n = Random.State.int t n
let bool t = Random.State.bool t

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty";
  arr.(Random.State.int t (Array.length arr))

let state t = t
