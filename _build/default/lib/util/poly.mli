(** Real-coefficient polynomials.

    The AWE (asymptotic waveform evaluation) module builds Padé
    denominators from circuit moments and needs their complex roots; the
    filter designer needs Butterworth prototypes.  Coefficients are stored
    in ascending order: [c.(i)] multiplies [x^i]. *)

type t

val of_coeffs : float array -> t
(** Trailing zero coefficients are trimmed; the zero polynomial is
    represented as [[|0.|]]. *)

val coeffs : t -> float array
val degree : t -> int
val zero : t
val one : t
val x : t
(** The monomial x. *)

val eval : t -> float -> float
val eval_complex : t -> Complex.t -> Complex.t
val derivative : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val of_real_roots : float list -> t
(** Monic polynomial with the given real roots. *)

val roots : ?max_iter:int -> ?tol:float -> t -> Complex.t list
(** All complex roots via the Durand–Kerner (Weierstrass) iteration.
    Degree must be >= 1.  Adequate for the small degrees (<= 8) used
    here. *)

val real_roots : ?tol:float -> t -> float list
(** The roots whose imaginary part is negligible, sorted ascending. *)

val butterworth_poles : int -> Complex.t list
(** [butterworth_poles n] are the [n] left-half-plane poles of the
    normalised (ω = 1 rad/s) Butterworth low-pass prototype. *)

val pp : Format.formatter -> t -> unit
