(** Plain-text table rendering for the benchmark harness.

    The bench executable regenerates the paper's tables as aligned ASCII;
    this module does the layout. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  string list list ->
  string
(** [render ~header rows] lays out the rows under the header with column
    separators and a rule under the header.  Rows shorter than the header
    are padded with empty cells; [align] defaults to [Left] for every
    column. *)

val render_titled :
  ?align:align list ->
  title:string ->
  header:string list ->
  string list list ->
  string
(** Like {!render} with a title line and surrounding rule. *)

val cell_eng : ?digits:int -> float -> string
(** Engineering-notation cell ({!Units.to_eng}). *)

val cell_fixed : ?decimals:int -> float -> string
(** Fixed-point cell, e.g. for the paper's "206.20" style values. *)

val cell_pct : float -> string
(** Percentage cell with sign, e.g. [cell_pct 0.138 = "13.8%"]. *)
