type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row
    else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: align length mismatch"
    | None -> List.init ncols (fun _ -> Left)
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i c -> pad (List.nth aligns i) (List.nth widths i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_titled ?align ~title ~header rows =
  let body = render ?align ~header rows in
  let width =
    String.split_on_char '\n' body
    |> List.fold_left (fun acc line -> max acc (String.length line)) 0
  in
  let rule = String.make (max width (String.length title)) '=' in
  Printf.sprintf "%s\n%s\n%s" title rule body

let cell_eng ?digits x = Units.to_eng ?digits x
let cell_fixed ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct x =
  let v = 100. *. x in
  Printf.sprintf "%.1f%%" v
