(** Seeded random sources for the annealing engine and the property tests.

    A thin wrapper over [Random.State] so every stochastic component takes
    an explicit, reproducible source. *)

type t

val create : int -> t
(** Deterministic source from an integer seed. *)

val split : t -> t
(** Independent child source (used to give each synthesis run its own
    stream). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] in [[lo, hi)]. *)

val log_uniform : t -> float -> float -> float
(** Log-uniform sample; [lo] and [hi] must be positive.  Natural for
    device widths spanning decades. *)

val gauss : t -> mean:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val int : t -> int -> int
(** [int t n] in [[0, n)]. *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val state : t -> Random.State.t
(** The underlying state, for interoperating with [Interval.sample]. *)
