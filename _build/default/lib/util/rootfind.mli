(** One-dimensional root finding.

    The estimator solves its symbolic sizing equations with these; the
    measurement extractor uses them to locate unity-gain and −3 dB
    crossings on AC sweeps. *)

exception No_bracket
(** Raised when a bracketing step cannot find a sign change. *)

exception No_convergence
(** Raised when the iteration budget is exhausted. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f lo hi] finds a root of [f] in [[lo, hi]].  [f lo] and
    [f hi] must have opposite signs (raises {!No_bracket} otherwise).
    [tol] is the absolute x tolerance (default 1e-12 relative to the
    bracket). *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation + secant + bisection.
    Same contract as {!bisect}, converges much faster on smooth
    functions. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** Newton–Raphson from an initial guess.  Raises {!No_convergence} if it
    fails; callers typically fall back to {!brent}. *)

val expand_bracket :
  ?factor:float ->
  ?max_expand:int ->
  (float -> float) ->
  float ->
  float ->
  float * float
(** [expand_bracket f lo hi] geometrically grows the interval outward
    until [f] changes sign across it; raises {!No_bracket} if the budget
    is exhausted. *)

val solve_increasing :
  ?tol:float -> (float -> float) -> target:float -> float -> float -> float
(** [solve_increasing f ~target lo hi] finds [x] with [f x = target] for
    a monotonically increasing [f], expanding the initial bracket when
    needed. *)
